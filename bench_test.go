// bench_test.go provides one benchmark per paper figure, claim and
// ablation — the regeneration harness in testing.B form. Benchmarks use
// reduced horizons/replications so `go test -bench=. -benchmem` completes
// in minutes; cmd/figures runs the full paper-scale versions.
package routesync_test

import (
	"testing"

	"routesync"
	"routesync/internal/experiments"
)

func benchModel() experiments.ModelConfig {
	return experiments.ModelConfig{N: 20, Tp: 121, Tc: 0.11, Tr: 0.1, Seed: 1, Horizon: 5e4}
}

func benchMarkov() experiments.MarkovConfig {
	return experiments.MarkovConfig{Sims: 2, SimHorizon: 1e6}
}

// BenchmarkFig1 regenerates the Berkeley→MIT ping trace (periodic loss
// from synchronized IGRP updates).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, ping := experiments.Fig1(experiments.PathConfig{}, 300)
		if ping.Lost() == 0 {
			b.Fatal("no loss in Fig1 scenario")
		}
	}
}

// BenchmarkFig2 regenerates the RTT autocorrelation.
func BenchmarkFig2(b *testing.B) {
	_, ping := experiments.Fig1(experiments.PathConfig{}, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig2(ping, 150)
	}
}

// BenchmarkFig3 regenerates the audiocast outage trace (periodic loss
// from synchronized RIP updates).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, audio := experiments.Fig3(experiments.PathConfig{}, 180)
		if audio.Lost() == 0 {
			b.Fatal("no loss in Fig3 scenario")
		}
	}
}

// BenchmarkFig4 regenerates the time-offset synchronization trace.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(benchModel())
	}
}

// BenchmarkFig5 regenerates the timer expiration/reset enlargement.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(benchModel(), 30000, 40000)
	}
}

// BenchmarkFig6 regenerates the largest-cluster-per-round graph.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(benchModel())
	}
}

// BenchmarkFig7 regenerates the unsynchronized-start Tr sweep.
func BenchmarkFig7(b *testing.B) {
	cfg := benchModel()
	cfg.Horizon = 2e5
	for i := 0; i < b.N; i++ {
		experiments.Fig7(cfg, []float64{0.6})
	}
}

// BenchmarkFig8 regenerates the synchronized-start Tr sweep.
func BenchmarkFig8(b *testing.B) {
	cfg := benchModel()
	cfg.Horizon = 2e5
	for i := 0; i < b.N; i++ {
		experiments.Fig8(cfg, []float64{2.8}, 2)
	}
}

// BenchmarkFig9 regenerates the transition-probability figure.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(experiments.MarkovConfig{}, 0)
	}
}

// BenchmarkFig10 regenerates the f(i) analysis-vs-simulation figure.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10(benchMarkov(), 0)
	}
}

// BenchmarkFig11 regenerates the g(i) analysis-vs-simulation figure.
func BenchmarkFig11(b *testing.B) {
	cfg := benchMarkov()
	cfg.SimHorizon = 3e6
	for i := 0; i < b.N; i++ {
		experiments.Fig11(cfg, 0)
	}
}

// BenchmarkFig12 regenerates the f(N)/g(1) Tr sweep.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig12(experiments.MarkovConfig{}, 0, 0, 0)
	}
}

// BenchmarkFig13 regenerates the multi-parameter sweep.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig13(experiments.MarkovConfig{}, nil, nil)
	}
}

// BenchmarkFig14 regenerates the fraction-vs-Tr phase transition.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig14(experiments.MarkovConfig{}, 0, 0, 0)
	}
}

// BenchmarkFig15 regenerates the fraction-vs-N phase transition.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig15(experiments.MarkovConfig{}, 0, 0, 0)
	}
}

// BenchmarkClaimPARC regenerates the §1 worked example.
func BenchmarkClaimPARC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ClaimPARC(0, 1)
	}
}

// BenchmarkClaimGuidance regenerates the §5.3 guidance grid.
func BenchmarkClaimGuidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ClaimGuidance()
	}
}

// BenchmarkAblationTimerPolicy regenerates ablation A1.
func BenchmarkAblationTimerPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationTimerPolicy(benchModel())
	}
}

// BenchmarkAblationSolver regenerates ablation A2.
func BenchmarkAblationSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationSolver(experiments.MarkovConfig{}, 0)
	}
}

// BenchmarkAblationDelivery regenerates ablation A3.
func BenchmarkAblationDelivery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationDelivery([]float64{0, 0.2}, 1)
	}
}

// BenchmarkExtCoherence regenerates the order-parameter trace extension.
func BenchmarkExtCoherence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtCoherence(benchModel())
	}
}

// BenchmarkExtStorm regenerates the restart-storm extension.
func BenchmarkExtStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtStorm(6, 1)
	}
}

// BenchmarkExtPerRouterFixed regenerates the §6 fixed-period alternative.
func BenchmarkExtPerRouterFixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtPerRouterFixed([]float64{1, 5}, 1)
	}
}

// BenchmarkExtProtocolComparison regenerates the protocol-profile sweep.
func BenchmarkExtProtocolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtProtocolComparison(0, 0)
	}
}

// BenchmarkExtClientServer regenerates the Sprite client-server convoy.
func BenchmarkExtClientServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtClientServer(10, 1)
	}
}

// BenchmarkExtExternalClock regenerates the external-clock peaks.
func BenchmarkExtExternalClock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtExternalClock(1)
	}
}

// BenchmarkExtTriggered regenerates the triggered-storm extension.
func BenchmarkExtTriggered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtTriggered([]float64{4}, 2e5, 1)
	}
}

// BenchmarkExtTCPSync regenerates the TCP global-synchronization figure.
func BenchmarkExtTCPSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtTCPSync([]int{8}, 1)
	}
}

// BenchmarkSimulateToSync measures raw model throughput: one full
// synchronization run of the paper scenario.
func BenchmarkSimulateToSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := routesync.Simulate(routesync.PaperParams(0.1, int64(i+1)),
			routesync.SimOptions{Horizon: 5e5})
		if err != nil {
			b.Fatal(err)
		}
		_ = rep
	}
}

// BenchmarkAnalyze measures the Markov chain evaluation.
func BenchmarkAnalyze(b *testing.B) {
	p := routesync.PaperParams(0.2, 1)
	for i := 0; i < b.N; i++ {
		if _, err := routesync.Analyze(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtThreshold regenerates the phase-boundary figure.
func BenchmarkExtThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtThreshold([]int{10, 20, 30})
	}
}

// BenchmarkExtMixedPeriods regenerates the heterogeneous-period figure.
func BenchmarkExtMixedPeriods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtMixedPeriods(0.1, 2e5, 1)
	}
}

// BenchmarkAblationQueueing regenerates the loss-vs-delay ablation.
func BenchmarkAblationQueueing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationQueueing(300, 1)
	}
}

// BenchmarkExtLinkState regenerates the link-state synchronization figure
// at reduced scale.
func BenchmarkExtLinkState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ExtLinkState(6, 2e4, 1)
	}
}
