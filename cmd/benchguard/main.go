// Command benchguard compares `go test -bench` output on stdin against a
// committed BENCH_*.json baseline and fails when any matching benchmark
// allocates more per op than the baseline recorded. It guards the
// allocation discipline of the hot paths — the des kernel's 0 allocs/op
// steady state and the periodic engine's fixed footprint — in CI, where
// ns/op is too noisy to gate on but allocs/op is exact.
//
// Usage:
//
//	go test -bench . -benchtime 100x ./internal/bench/ | benchguard -baseline out/BENCH_0002.json
//
// Benchmark names are normalized (the "Benchmark" prefix and the
// "-<GOMAXPROCS>" suffix are stripped) and compared by intersection with
// the baseline: benchmarks missing on either side are skipped, but zero
// matches is an error — it means the naming drifted and the guard is
// watching nothing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineFile is the subset of the BENCH_*.json schema the guard needs.
type baselineFile struct {
	Benchmarks []struct {
		Name        string `json:"name"`
		AllocsPerOp int64  `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkDESScheduleStep-8   15734137   71.20 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+.*?(\d+)\s+allocs/op`)

// gomaxprocsSuffix is the trailing "-<digits>" go test appends to names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// normalize maps both naming schemes onto one key: `go test` prints
// "BenchmarkPeriodicStep/N=20-8" where the JSON records "PeriodicStep/N=20".
func normalize(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// parseBenchOutput extracts normalized name → allocs/op from `go test
// -bench` output. Non-benchmark lines (PASS, ok, goos) are ignored.
func parseBenchOutput(r io.Reader) (map[string]int64, error) {
	out := map[string]int64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		allocs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
		}
		out[normalize(m[1])] = allocs
	}
	return out, sc.Err()
}

func run(baselinePath string, stdin io.Reader, stdout, stderr io.Writer) int {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchguard:", err)
		return 1
	}
	var base baselineFile
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(stderr, "benchguard: parse %s: %v\n", baselinePath, err)
		return 1
	}
	measured, err := parseBenchOutput(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchguard:", err)
		return 1
	}

	matches, regressions := 0, 0
	for _, b := range base.Benchmarks {
		got, ok := measured[normalize(b.Name)]
		if !ok {
			continue
		}
		matches++
		status := "ok"
		if got > b.AllocsPerOp {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(stdout, "%-30s baseline %3d allocs/op, measured %3d  %s\n",
			b.Name, b.AllocsPerOp, got, status)
	}
	if matches == 0 {
		fmt.Fprintf(stderr, "benchguard: no benchmark in the input matched the baseline %s — name drift?\n", baselinePath)
		return 1
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchguard: %d of %d benchmarks regressed allocs/op\n", regressions, matches)
		return 1
	}
	fmt.Fprintf(stdout, "benchguard: %d benchmarks within baseline\n", matches)
	return 0
}

func main() {
	baseline := flag.String("baseline", "out/BENCH_0002.json", "committed BENCH_*.json to guard against")
	flag.Parse()
	os.Exit(run(*baseline, os.Stdin, os.Stdout, os.Stderr))
}
