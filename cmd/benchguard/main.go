// Command benchguard compares `go test -bench` output on stdin against a
// committed BENCH_*.json baseline and fails when any matching benchmark
// allocates more per op than the baseline recorded (plus 1% headroom,
// which rounds to zero for the alloc-free hot paths — a 0 → 1 allocs/op
// slip still fails exactly), allocates more bytes per op than the
// baseline (exact for 0 B/op baselines, 12.5% + 8 bytes headroom
// elsewhere — small baselines truncate per-op and wobble by whole
// objects), or runs slower than the baseline ns/op by more than a
// configurable tolerance. ns/op is noisy in CI, so the time gate only
// trips on regressions past -tolerance (default 25%) — wide enough to
// ride out scheduler jitter, tight enough to catch a hot path falling
// off its complexity class.
//
// Usage:
//
//	go test -bench . -benchtime 100x ./internal/bench/ | benchguard
//
// With no -baseline the guard picks the newest out/BENCH_*.json (the
// zero-padded numbering makes lexicographic order chronological), so the
// CI invocation needs no edit when a PR adds the next snapshot.
//
// Benchmark names are normalized (the "Benchmark" prefix and the
// "-<GOMAXPROCS>" suffix are stripped) and compared by intersection with
// the baseline: benchmarks missing on either side are skipped, but zero
// matches is an error — it means the naming drifted and the guard is
// watching nothing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile is the subset of the BENCH_*.json schema the guard needs.
type baselineFile struct {
	Benchmarks []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// measurement is one parsed benchmark line.
type measurement struct {
	nsPerOp     float64
	bytesPerOp  int64
	allocsPerOp int64
	hasBytes    bool
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkDESScheduleStep-8   15734137   71.20 ns/op   0 B/op   0 allocs/op
//
// The B/op column appears with -benchmem or b.ReportAllocs; when a line
// lacks it, the bytes gate is skipped for that benchmark.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?.*?(\d+)\s+allocs/op`)

// gomaxprocsSuffix is the trailing "-<digits>" go test appends to names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// normalize maps both naming schemes onto one key: `go test` prints
// "BenchmarkPeriodicStep/N=20-8" where the JSON records "PeriodicStep/N=20".
func normalize(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// parseBenchOutput extracts normalized name → (ns/op, allocs/op) from
// `go test -bench` output. Non-benchmark lines (PASS, ok, goos) are
// ignored.
func parseBenchOutput(r io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		allocs, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
		}
		meas := measurement{nsPerOp: ns, allocsPerOp: allocs}
		if m[3] != "" {
			b, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", sc.Text(), err)
			}
			meas.bytesPerOp, meas.hasBytes = b, true
		}
		out[normalize(m[1])] = meas
	}
	return out, sc.Err()
}

// newestBaseline returns the lexicographically last out-dir BENCH_*.json
// — the zero-padded numbering makes that the most recent snapshot — so
// the guard follows the trajectory without CI edits on every PR.
func newestBaseline(dir string) (string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(names) == 0 {
		return "", fmt.Errorf("no BENCH_*.json under %s", dir)
	}
	sort.Strings(names)
	return names[len(names)-1], nil
}

// byteSlack is the headroom the bytes gate allows over a baseline: a
// 0 B/op baseline is exact (a zero-alloc path acquiring any allocation
// fails), others get 12.5% plus 8 bytes so integer-truncated means of
// rare allocations don't flap CI.
func byteSlack(base int64) int64 {
	if base == 0 {
		return 0
	}
	return base/8 + 8
}

func run(baselinePath string, tolerance float64, stdin io.Reader, stdout, stderr io.Writer) int {
	if baselinePath == "" {
		p, err := newestBaseline("out")
		if err != nil {
			fmt.Fprintln(stderr, "benchguard:", err)
			return 1
		}
		baselinePath = p
		fmt.Fprintf(stdout, "benchguard: baseline %s (newest in out/)\n", baselinePath)
	}
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchguard:", err)
		return 1
	}
	var base baselineFile
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(stderr, "benchguard: parse %s: %v\n", baselinePath, err)
		return 1
	}
	measured, err := parseBenchOutput(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchguard:", err)
		return 1
	}

	matches, regressions := 0, 0
	for _, b := range base.Benchmarks {
		got, ok := measured[normalize(b.Name)]
		if !ok {
			continue
		}
		matches++
		status := "ok"
		// 1% headroom on allocs/op: integer division keeps the gate exact
		// for the alloc-free and near-alloc-free hot paths (1% of 0 or of
		// 9 is 0), while the parallel-engine benchmarks — tens of
		// thousands of inherent allocations plus goroutine machinery —
		// wobble by a few counts with scheduler interleaving and must not
		// flap CI.
		switch {
		case got.allocsPerOp > b.AllocsPerOp+b.AllocsPerOp/100:
			status = "REGRESSION(allocs)"
			regressions++
		case got.hasBytes && got.bytesPerOp > b.BytesPerOp+byteSlack(b.BytesPerOp):
			// Exact at 0 B/op — a zero-alloc path acquiring any allocation
			// fails — with 12.5% + 8 bytes of headroom elsewhere: B/op is an
			// integer-truncated mean, so small baselines wobble by whole
			// objects when one rare allocation lands a few more or fewer
			// times per run.
			status = "REGRESSION(bytes)"
			regressions++
		case b.NsPerOp > 0 && got.nsPerOp > b.NsPerOp*(1+tolerance):
			// A baseline recorded before the time gate existed carries
			// ns_per_op 0; skip the time comparison rather than flag it.
			status = "REGRESSION(ns)"
			regressions++
		}
		fmt.Fprintf(stdout, "%-42s baseline %3d allocs/op %6d B/op %10.1f ns/op, measured %3d allocs/op %6d B/op %10.1f ns/op  %s\n",
			b.Name, b.AllocsPerOp, b.BytesPerOp, b.NsPerOp, got.allocsPerOp, got.bytesPerOp, got.nsPerOp, status)
	}
	if matches == 0 {
		fmt.Fprintf(stderr, "benchguard: no benchmark in the input matched the baseline %s — name drift?\n", baselinePath)
		return 1
	}
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchguard: %d of %d benchmarks regressed (allocs/op strict, ns/op tolerance %.0f%%)\n",
			regressions, matches, tolerance*100)
		return 1
	}
	fmt.Fprintf(stdout, "benchguard: %d benchmarks within baseline (ns/op tolerance %.0f%%)\n", matches, tolerance*100)
	return 0
}

func main() {
	baseline := flag.String("baseline", "", "committed BENCH_*.json to guard against (default: newest out/BENCH_*.json)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression before failing")
	flag.Parse()
	os.Exit(run(*baseline, *tolerance, os.Stdin, os.Stdout, os.Stderr))
}
