package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: routesync/internal/bench
cpu: some CPU
BenchmarkDESScheduleStep-8     	15734137	        71.20 ns/op	       0 B/op	       0 allocs/op
BenchmarkDESScheduleCancel-8   	96209042	        12.45 ns/op	       0 B/op	       0 allocs/op
BenchmarkPeriodicStep/N=20-8   	12131853	        94.42 ns/op	      16 B/op	       2 allocs/op
BenchmarkNewInThisPR-8         	  100000	      1000 ns/op	      64 B/op	       9 allocs/op
PASS
ok  	routesync/internal/bench	10.0s
`

func TestNormalize(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkDESScheduleStep-8":  "DESScheduleStep",
		"BenchmarkPeriodicStep/N=20":  "PeriodicStep/N=20",
		"PeriodicStep/N=1000":         "PeriodicStep/N=1000",
		"BenchmarkClusterGrow/N=20-4": "ClusterGrow/N=20",
	} {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchOutput(t *testing.T) {
	m, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"DESScheduleStep":   0,
		"DESScheduleCancel": 0,
		"PeriodicStep/N=20": 2,
		"NewInThisPR":       9,
	}
	if len(m) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(m), len(want), m)
	}
	for name, allocs := range want {
		if m[name] != allocs {
			t.Errorf("%s = %d allocs/op, want %d", name, m[name], allocs)
		}
	}
}

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{
  "benchmarks": [
    {"name": "DESScheduleStep", "allocs_per_op": 0},
    {"name": "DESScheduleCancel", "allocs_per_op": 0},
    {"name": "PeriodicStep/N=20", "allocs_per_op": 2},
    {"name": "OnlyInBaseline", "allocs_per_op": 0}
  ]
}`

func TestGuardPasses(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(writeBaseline(t, baselineJSON), strings.NewReader(sampleBenchOutput), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	// Intersection: three matches; NewInThisPR and OnlyInBaseline skipped.
	if !strings.Contains(out.String(), "3 benchmarks within baseline") {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestGuardCatchesRegression(t *testing.T) {
	regressed := strings.Replace(sampleBenchOutput,
		"BenchmarkDESScheduleStep-8     	15734137	        71.20 ns/op	       0 B/op	       0 allocs/op",
		"BenchmarkDESScheduleStep-8     	15734137	        71.20 ns/op	      16 B/op	       1 allocs/op", 1)
	var out, errb bytes.Buffer
	code := run(writeBaseline(t, baselineJSON), strings.NewReader(regressed), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "DESScheduleStep") || !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("stdout = %q", out.String())
	}
	if !strings.Contains(errb.String(), "1 of 3 benchmarks regressed") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

func TestGuardRejectsEmptyIntersection(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(writeBaseline(t, `{"benchmarks": [{"name": "Unrelated", "allocs_per_op": 0}]}`),
		strings.NewReader(sampleBenchOutput), &out, &errb)
	if code != 1 || !strings.Contains(errb.String(), "no benchmark in the input matched") {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
}

func TestGuardMissingBaseline(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(filepath.Join(t.TempDir(), "nope.json"), strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
