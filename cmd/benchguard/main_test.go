package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: routesync/internal/bench
cpu: some CPU
BenchmarkDESScheduleStep-8     	15734137	        71.20 ns/op	       0 B/op	       0 allocs/op
BenchmarkDESScheduleCancel-8   	96209042	        12.45 ns/op	       0 B/op	       0 allocs/op
BenchmarkPeriodicStep/N=20-8   	12131853	        94.42 ns/op	      16 B/op	       2 allocs/op
BenchmarkNewInThisPR-8         	  100000	      1000 ns/op	      64 B/op	       9 allocs/op
PASS
ok  	routesync/internal/bench	10.0s
`

func TestNormalize(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkDESScheduleStep-8":  "DESScheduleStep",
		"BenchmarkPeriodicStep/N=20":  "PeriodicStep/N=20",
		"PeriodicStep/N=1000":         "PeriodicStep/N=1000",
		"BenchmarkClusterGrow/N=20-4": "ClusterGrow/N=20",
	} {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchOutput(t *testing.T) {
	m, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]measurement{
		"DESScheduleStep":   {nsPerOp: 71.20, bytesPerOp: 0, allocsPerOp: 0, hasBytes: true},
		"DESScheduleCancel": {nsPerOp: 12.45, bytesPerOp: 0, allocsPerOp: 0, hasBytes: true},
		"PeriodicStep/N=20": {nsPerOp: 94.42, bytesPerOp: 16, allocsPerOp: 2, hasBytes: true},
		"NewInThisPR":       {nsPerOp: 1000, bytesPerOp: 64, allocsPerOp: 9, hasBytes: true},
	}
	if len(m) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(m), len(want), m)
	}
	for name, meas := range want {
		if m[name] != meas {
			t.Errorf("%s = %+v, want %+v", name, m[name], meas)
		}
	}
}

func writeBaseline(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{
  "benchmarks": [
    {"name": "DESScheduleStep", "ns_per_op": 70.0, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "DESScheduleCancel", "ns_per_op": 12.0, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "PeriodicStep/N=20", "ns_per_op": 90.0, "bytes_per_op": 16, "allocs_per_op": 2},
    {"name": "OnlyInBaseline", "ns_per_op": 1.0, "allocs_per_op": 0}
  ]
}`

func TestGuardPasses(t *testing.T) {
	var out, errb bytes.Buffer
	// The sample runs a few percent over each ns/op baseline — inside the
	// default tolerance.
	code := run(writeBaseline(t, baselineJSON), 0.25, strings.NewReader(sampleBenchOutput), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	// Intersection: three matches; NewInThisPR and OnlyInBaseline skipped.
	if !strings.Contains(out.String(), "3 benchmarks within baseline") {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestGuardCatchesAllocRegression(t *testing.T) {
	regressed := strings.Replace(sampleBenchOutput,
		"BenchmarkDESScheduleStep-8     	15734137	        71.20 ns/op	       0 B/op	       0 allocs/op",
		"BenchmarkDESScheduleStep-8     	15734137	        71.20 ns/op	      16 B/op	       1 allocs/op", 1)
	var out, errb bytes.Buffer
	code := run(writeBaseline(t, baselineJSON), 0.25, strings.NewReader(regressed), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "DESScheduleStep") || !strings.Contains(out.String(), "REGRESSION(allocs)") {
		t.Fatalf("stdout = %q", out.String())
	}
	if !strings.Contains(errb.String(), "1 of 3 benchmarks regressed") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

func TestGuardCatchesTimeRegression(t *testing.T) {
	// 71.20 → 120 ns/op against a 70.0 baseline: 71% over, past the 25%
	// tolerance; allocs unchanged.
	regressed := strings.Replace(sampleBenchOutput,
		"        71.20 ns/op	       0 B/op	       0 allocs/op",
		"        120.00 ns/op	       0 B/op	       0 allocs/op", 1)
	var out, errb bytes.Buffer
	code := run(writeBaseline(t, baselineJSON), 0.25, strings.NewReader(regressed), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout %q", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION(ns)") {
		t.Fatalf("stdout = %q", out.String())
	}
	// A wider tolerance must accept the same measurement.
	out.Reset()
	errb.Reset()
	if code := run(writeBaseline(t, baselineJSON), 1.0, strings.NewReader(regressed), &out, &errb); code != 0 {
		t.Fatalf("tolerance 1.0: exit %d, stderr %q", code, errb.String())
	}
}

func TestGuardSkipsTimeGateOnZeroBaseline(t *testing.T) {
	// Baselines written before the time gate carry ns_per_op 0 — the guard
	// must not treat every measurement as infinitely regressed.
	base := `{"benchmarks": [{"name": "DESScheduleStep", "allocs_per_op": 0}]}`
	var out, errb bytes.Buffer
	if code := run(writeBaseline(t, base), 0.25, strings.NewReader(sampleBenchOutput), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
}

func TestGuardRejectsEmptyIntersection(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(writeBaseline(t, `{"benchmarks": [{"name": "Unrelated", "allocs_per_op": 0}]}`),
		0.25, strings.NewReader(sampleBenchOutput), &out, &errb)
	if code != 1 || !strings.Contains(errb.String(), "no benchmark in the input matched") {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
}

func TestGuardAllocHeadroom(t *testing.T) {
	// Large inherently-allocating benchmarks (the parallel engine) wobble
	// by a few allocs/op with goroutine scheduling; 1% headroom absorbs
	// that, while 2% still fails. Zero-alloc baselines stay exact — see
	// TestGuardCatchesAllocRegression's 0 → 1 case.
	base := `{"benchmarks": [{"name": "Big", "ns_per_op": 100, "allocs_per_op": 20000}]}`
	line := "BenchmarkBig-8   100   100.0 ns/op   0 B/op   %d allocs/op\n"
	var out, errb bytes.Buffer
	if code := run(writeBaseline(t, base), 0.25,
		strings.NewReader(fmt.Sprintf(line, 20150)), &out, &errb); code != 0 {
		t.Fatalf("+0.75%%: exit %d, stdout %q", code, out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run(writeBaseline(t, base), 0.25,
		strings.NewReader(fmt.Sprintf(line, 20400)), &out, &errb); code != 1 {
		t.Fatalf("+2%%: exit %d, want 1", code)
	}
}

func TestGuardCatchesByteRegression(t *testing.T) {
	// Same allocs/op but more bytes/op: a pooled path quietly replaced by
	// one bigger allocation. Exact at a 0 B/op baseline.
	regressed := strings.Replace(sampleBenchOutput,
		"        71.20 ns/op	       0 B/op	       0 allocs/op",
		"        71.20 ns/op	      24 B/op	       0 allocs/op", 1)
	var out, errb bytes.Buffer
	if code := run(writeBaseline(t, baselineJSON), 0.25, strings.NewReader(regressed), &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout %q", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION(bytes)") {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestGuardByteHeadroom(t *testing.T) {
	// Non-zero baselines get 12.5% + 8 B of headroom: B/op is an
	// integer-truncated mean, so rare allocations wobble it by whole
	// objects between runs.
	base := `{"benchmarks": [{"name": "Wobbly", "ns_per_op": 100, "bytes_per_op": 64, "allocs_per_op": 3}]}`
	line := "BenchmarkWobbly-8   100   100.0 ns/op   %d B/op   3 allocs/op\n"
	var out, errb bytes.Buffer
	if code := run(writeBaseline(t, base), 0.25,
		strings.NewReader(fmt.Sprintf(line, 80)), &out, &errb); code != 0 {
		t.Fatalf("64+16: exit %d, stdout %q", code, out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run(writeBaseline(t, base), 0.25,
		strings.NewReader(fmt.Sprintf(line, 81)), &out, &errb); code != 1 {
		t.Fatalf("64+17: exit %d, want 1", code)
	}
}

func TestGuardSkipsBytesWithoutColumn(t *testing.T) {
	// Output without -benchmem carries no B/op column; the bytes gate
	// must skip rather than read 0 and pass or fail spuriously.
	noBytes := "BenchmarkPeriodicStep/N=20-8   100   94.42 ns/op   2 allocs/op\n"
	var out, errb bytes.Buffer
	if code := run(writeBaseline(t, baselineJSON), 0.25, strings.NewReader(noBytes), &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
}

func TestNewestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_0002.json", "BENCH_0010.json", "BENCH_0004.json", "TIMINGS.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := newestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_0010.json" {
		t.Fatalf("newestBaseline = %q, want BENCH_0010.json", got)
	}
	if _, err := newestBaseline(t.TempDir()); err == nil {
		t.Fatal("empty dir: want error")
	}
}

func TestGuardMissingBaseline(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(filepath.Join(t.TempDir(), "nope.json"), 0.25, strings.NewReader(""), &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
