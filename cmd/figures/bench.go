package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"routesync/internal/bench"
	"routesync/internal/des"
	"routesync/internal/netsim"
	"routesync/internal/runner"
)

// benchFileName is this PR's entry in the benchmark trajectory; the
// number advances with the PR sequence so successive snapshots sit side
// by side in out/.
const benchFileName = "BENCH_0009.json"

// benchResult is one micro-benchmark measurement.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchFile is the BENCH_NNNN.json schema: the hot-path micro-benchmarks
// plus an echo of the latest full-run TIMINGS.json, so one file carries
// both the micro (ns/op, allocs/op) and macro (per-driver wall time)
// trajectory for cross-PR comparison.
type benchFile struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU qualifies the parallel-engine measurements (NetsimScale):
	// the K>1 vs K=1 ratio is only a speedup when cores are available.
	NumCPU     int                 `json:"num_cpu"`
	Benchmarks []benchResult       `json:"benchmarks"`
	Timings    *runner.TimingsFile `json:"timings,omitempty"`
}

// runBench executes the shared micro-benchmark bodies under
// testing.Benchmark and writes <outDir>/BENCH_0002.json.
func runBench(outDir string) error {
	cases := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"DESScheduleStep", bench.DESScheduleStep},
		{"DESScheduleStepObserved", bench.DESScheduleStepObserved},
		{"DESScheduleCancel", bench.DESScheduleCancel},
		{"DESTicker", bench.DESTicker},
		{"TickerStorm", bench.TickerStorm},
		{"DESScheduleFire/backend=heap/depth=1000", func(b *testing.B) { bench.DESScheduleFire(b, des.BackendHeap, 1000) }},
		{"DESScheduleFire/backend=calendar/depth=1000", func(b *testing.B) { bench.DESScheduleFire(b, des.BackendCalendar, 1000) }},
		{"DESScheduleFire/backend=heap/depth=100000", func(b *testing.B) { bench.DESScheduleFire(b, des.BackendHeap, 100000) }},
		{"DESScheduleFire/backend=calendar/depth=100000", func(b *testing.B) { bench.DESScheduleFire(b, des.BackendCalendar, 100000) }},
		{"PeriodicStep/N=20", func(b *testing.B) { bench.PeriodicStep(b, 20) }},
		{"PeriodicStep/N=100", func(b *testing.B) { bench.PeriodicStep(b, 100) }},
		{"PeriodicStep/N=1000", func(b *testing.B) { bench.PeriodicStep(b, 1000) }},
		{"PeriodicStepObserved/N=100", func(b *testing.B) { bench.PeriodicStepObserved(b, 100) }},
		{"PeriodicStepLargeN/N=10000", func(b *testing.B) { bench.PeriodicStepLargeN(b, 10000) }},
		{"PeriodicStepLargeN/N=100000", func(b *testing.B) { bench.PeriodicStepLargeN(b, 100000) }},
		{"ClusterGrow/N=20", func(b *testing.B) { bench.ClusterGrow(b, 20) }},
		{"ClusterGrow/N=1000", func(b *testing.B) { bench.ClusterGrow(b, 1000) }},
		{"ClusterGrowSorted/N=1000", func(b *testing.B) { bench.ClusterGrowSorted(b, 1000) }},
		{"ClusterPartition/N=1000", func(b *testing.B) { bench.ClusterPartition(b, 1000) }},
		{"NetsimForward", bench.NetsimForward},
		{"NetsimScale/N=500/K=1", func(b *testing.B) { bench.NetsimScale(b, 500, 1) }},
		{"NetsimScale/N=500/K=2", func(b *testing.B) { bench.NetsimScale(b, 500, 2) }},
		{"NetsimScale/N=500/K=8", func(b *testing.B) { bench.NetsimScale(b, 500, 8) }},
		{"NetsimScale/N=5000/K=1", func(b *testing.B) { bench.NetsimScale(b, 5000, 1) }},
		{"NetsimScale/N=5000/K=2", func(b *testing.B) { bench.NetsimScale(b, 5000, 2) }},
		{"NetsimScale/N=5000/K=8", func(b *testing.B) { bench.NetsimScale(b, 5000, 8) }},
		{"NetsimChurn/K=1", func(b *testing.B) { bench.NetsimChurn(b, 1) }},
		{"NetsimChurn/K=2", func(b *testing.B) { bench.NetsimChurn(b, 2) }},
		{"NetsimChurn/K=6", func(b *testing.B) { bench.NetsimChurn(b, 6) }},
		{"PathVectorUpdate", bench.PathVectorUpdate},
		{"NetsimBGP/N=1000/K=1", func(b *testing.B) { bench.NetsimBGP(b, 1000, 1) }},
		{"NetsimBGP/N=1000/K=2", func(b *testing.B) { bench.NetsimBGP(b, 1000, 2) }},
		{"NetsimBGP/N=1000/K=8", func(b *testing.B) { bench.NetsimBGP(b, 1000, 8) }},
		{"NetsimExchange/K=2", func(b *testing.B) { bench.NetsimExchange(b, 2) }},
		{"NetsimExchange/K=4", func(b *testing.B) { bench.NetsimExchange(b, 4) }},
		{"NetsimLowLookahead/mode=conservative/K=1", func(b *testing.B) { bench.NetsimLowLookahead(b, netsim.SyncConservative, 1) }},
		{"NetsimLowLookahead/mode=conservative/K=4", func(b *testing.B) { bench.NetsimLowLookahead(b, netsim.SyncConservative, 4) }},
		{"NetsimLowLookahead/mode=optimistic/K=1", func(b *testing.B) { bench.NetsimLowLookahead(b, netsim.SyncOptimistic, 1) }},
		{"NetsimLowLookahead/mode=optimistic/K=4", func(b *testing.B) { bench.NetsimLowLookahead(b, netsim.SyncOptimistic, 4) }},
	}
	bf := benchFile{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		res := benchResult{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		bf.Benchmarks = append(bf.Benchmarks, res)
		fmt.Printf("%-26s %14.1f ns/op %10d B/op %8d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	// Attach the most recent full-run driver timings, if a full run has
	// been recorded in this output directory.
	if buf, err := os.ReadFile(filepath.Join(outDir, "TIMINGS.json")); err == nil {
		var tf runner.TimingsFile
		if json.Unmarshal(buf, &tf) == nil {
			bf.Timings = &tf
		}
	}
	buf, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outDir, benchFileName)
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}
