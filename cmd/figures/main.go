// Command figures regenerates every figure in the paper (1–15), the
// in-text claims, and the DESIGN.md ablations, writing <id>.csv and
// <id>.txt into the output directory and printing the headline notes.
//
// Usage:
//
//	figures [-out dir] [-quick] [-only fig04,fig12] [-jobs n] [-force]
//	figures -bench [-out dir]
//
// The experiments live in the registry under internal/runner (populated
// by internal/experiments); this command is a thin frontend. Every run
// maintains <out>/MANIFEST.json — per-experiment params hash, code
// version, seed, git describe, wall time, and the content hash of each
// emitted file — and experiments whose manifest entry is up to date are
// skipped unless -force, so iterating on one figure no longer costs a
// full regeneration.
//
// -bench skips the figure drivers and instead runs the hot-path
// micro-benchmarks (internal/bench), writing <out>/BENCH_0002.json —
// ns/op and allocs/op per benchmark plus an echo of the latest full-run
// TIMINGS.json, the cross-PR performance-regression trajectory.
// -cpuprofile/-memprofile capture pprof profiles of either mode.
//
// The default (paper-scale) run uses the paper's horizons — notably the
// 10^7-second sweeps of Figures 7 and 8 — and takes a few seconds.
// -quick shrinks horizons and replication counts further.
//
// The drivers are independent, so they run concurrently on at most
// -jobs workers (default: one per CPU). Output is deterministic for any
// -jobs value: every driver derives its randomness from its own seeds,
// results are printed and indexed in registration order, and a full run
// records per-driver wall times in <out>/TIMINGS.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	_ "routesync/internal/experiments" // registers every experiment
	"routesync/internal/runner"
)

func main() { os.Exit(run()) }

// run is main's body; it returns the exit code instead of calling
// os.Exit so the profiling defers below always flush.
func run() int {
	var (
		out      = flag.String("out", "out", "output directory")
		quick    = flag.Bool("quick", false, "reduced horizons and replications")
		only     = flag.String("only", "", "comma-separated figure ids to run (default all)")
		jobs     = flag.Int("jobs", 0, "max concurrent figure drivers (0 = one per CPU)")
		force    = flag.Bool("force", false, "re-run experiments even when their manifest entry is up to date")
		progress = flag.Bool("progress", false, "print live per-experiment engine counters to stderr")
		doBench  = flag.Bool("bench", false, "run hot-path micro-benchmarks and write "+benchFileName+" instead of figures")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				return
			}
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
			}
			f.Close()
		}()
	}

	if *doBench {
		if err := runBench(*out); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		return 0
	}

	opts := runner.Options{
		Tag:    "figures",
		Only:   *only,
		OutDir: *out,
		Quick:  *quick,
		Jobs:   *jobs,
		Force:  *force,
		Write:  true,
		Stdout: os.Stdout,
	}
	if *progress {
		opts.Progress = os.Stderr
	}
	sum, err := runner.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 1
	}
	cached := ""
	if sum.Cached > 0 {
		cached = fmt.Sprintf(", %d cached", sum.Cached)
	}
	fmt.Printf("\nwrote %d figures to %s/ in %v (%d workers%s)\n",
		len(sum.Experiments), *out, sum.Total.Round(time.Millisecond), sum.Workers, cached)
	return 0
}
