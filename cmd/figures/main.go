// Command figures regenerates every figure in the paper (1–15), the
// in-text claims, and the DESIGN.md ablations, writing <id>.csv and
// <id>.txt into the output directory and printing the headline notes.
//
// Usage:
//
//	figures [-out dir] [-quick] [-only fig04,fig12]
//
// The default (paper-scale) run uses the paper's horizons — notably the
// 10^7-second sweeps of Figures 7 and 8 — and takes a few minutes.
// -quick shrinks horizons and replication counts to finish in seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"routesync/internal/experiments"
)

func main() {
	var (
		out   = flag.String("out", "out", "output directory")
		quick = flag.Bool("quick", false, "reduced horizons and replications")
		only  = flag.String("only", "", "comma-separated figure ids to run (default all)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	var index strings.Builder
	index.WriteString("# Regenerated figures\n\n")
	run := func(id string, fn func() *experiments.Result) {
		if len(want) > 0 && !want[id] {
			return
		}
		t0 := time.Now()
		r := fn()
		if err := r.WriteFiles(*out); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s (%s, %v)\n", r.ID, r.Title, time.Since(t0).Round(time.Millisecond))
		fmt.Fprintf(&index, "## %s — %s\n\n", r.ID, r.Title)
		for _, n := range r.Notes {
			fmt.Println("   ", n)
			fmt.Fprintf(&index, "- %s\n", n)
		}
		fmt.Fprintf(&index, "- files: [`%s.csv`](%s.csv), [`%s.txt`](%s.txt)\n\n", r.ID, r.ID, r.ID, r.ID)
	}

	model := experiments.ModelConfig{Horizon: 1e5}
	sweepHorizon := 1e7
	markovCfg := experiments.MarkovConfig{Sims: 20, SimHorizon: 5e6}
	pings := 1000
	audioDur := 600.0
	if *quick {
		sweepHorizon = 1e6
		markovCfg = experiments.MarkovConfig{Sims: 3, SimHorizon: 1e6}
		pings = 300
		audioDur = 180
	}

	var fig1Ping = func() *experiments.Result {
		r, ping := experiments.Fig1(experiments.PathConfig{}, pings)
		if len(want) == 0 || want["fig02"] {
			r2 := experiments.Fig2(ping, 200)
			if err := r2.WriteFiles(*out); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			fmt.Printf("== %s (%s)\n", r2.ID, r2.Title)
			for _, n := range r2.Notes {
				fmt.Println("   ", n)
			}
		}
		return r
	}
	run("fig01", fig1Ping)
	run("fig03", func() *experiments.Result {
		r, _ := experiments.Fig3(experiments.PathConfig{}, audioDur)
		return r
	})
	run("fig04", func() *experiments.Result { return experiments.Fig4(model) })
	run("fig05", func() *experiments.Result { return experiments.Fig5(model, 0, 0) })
	run("fig06", func() *experiments.Result { return experiments.Fig6(model) })
	run("fig07", func() *experiments.Result {
		cfg := model
		cfg.Horizon = sweepHorizon
		r, _ := experiments.Fig7(cfg, nil)
		return r
	})
	run("fig08", func() *experiments.Result {
		cfg := model
		cfg.Horizon = sweepHorizon
		r, _ := experiments.Fig8(cfg, nil, 0)
		return r
	})
	run("fig09", func() *experiments.Result { return experiments.Fig9(markovCfg, 0) })
	run("fig10", func() *experiments.Result { return experiments.Fig10(markovCfg, 0) })
	run("fig11", func() *experiments.Result { return experiments.Fig11(markovCfg, 0) })
	run("fig12", func() *experiments.Result { return experiments.Fig12(markovCfg, 0, 0, 0) })
	run("fig13", func() *experiments.Result { return experiments.Fig13(markovCfg, nil, nil) })
	run("fig14", func() *experiments.Result { return experiments.Fig14(markovCfg, 0, 0, 0) })
	run("fig15", func() *experiments.Result { return experiments.Fig15(markovCfg, 0, 0, 0) })
	run("claim_parc", func() *experiments.Result { return experiments.ClaimPARC(0, 1) })
	run("claim_guidance", func() *experiments.Result { return experiments.ClaimGuidance() })
	run("ablation_timer_policy", func() *experiments.Result { return experiments.AblationTimerPolicy(model) })
	run("ablation_solver", func() *experiments.Result { return experiments.AblationSolver(markovCfg, 0) })
	run("ablation_delivery", func() *experiments.Result { return experiments.AblationDelivery(nil, 1) })
	run("ablation_queueing", func() *experiments.Result { return experiments.AblationQueueing(0, 1) })
	run("ext_coherence", func() *experiments.Result { return experiments.ExtCoherence(model) })
	run("ext_storm", func() *experiments.Result { return experiments.ExtStorm(0, 1) })
	run("ext_nsweep", func() *experiments.Result {
		seeds := 5
		if *quick {
			seeds = 2
		}
		return experiments.ExtNSweep(0, nil, seeds, 3e6, 1)
	})
	run("ext_perrouter_fixed", func() *experiments.Result { return experiments.ExtPerRouterFixed(nil, 1) })
	run("ext_protocols", func() *experiments.Result { return experiments.ExtProtocolComparison(0, 0) })
	run("ext_clientserver", func() *experiments.Result { return experiments.ExtClientServer(0, 1) })
	run("ext_externalclock", func() *experiments.Result { return experiments.ExtExternalClock(1) })
	run("ext_tcpsync", func() *experiments.Result { return experiments.ExtTCPSync(nil, 1) })
	run("ext_threshold", func() *experiments.Result { return experiments.ExtThreshold(nil) })
	run("ext_mixed_periods", func() *experiments.Result { return experiments.ExtMixedPeriods(0.1, 1e6, 1) })
	run("ext_linkstate", func() *experiments.Result {
		horizon := 3e5
		if *quick {
			horizon = 5e4
		}
		return experiments.ExtLinkState(20, horizon, 1)
	})
	run("ext_triggered", func() *experiments.Result {
		horizon := 3e6
		if *quick {
			horizon = 5e5
		}
		return experiments.ExtTriggered(nil, horizon, 1)
	})

	// A partial -only run must not clobber the full index.
	if len(want) == 0 {
		if err := os.WriteFile(filepath.Join(*out, "INDEX.md"), []byte(index.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("\nwrote figures to %s/\n", *out)
}
