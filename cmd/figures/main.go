// Command figures regenerates every figure in the paper (1–15), the
// in-text claims, and the DESIGN.md ablations, writing <id>.csv and
// <id>.txt into the output directory and printing the headline notes.
//
// Usage:
//
//	figures [-out dir] [-quick] [-only fig04,fig12] [-jobs n]
//	figures -bench [-out dir]
//
// -bench skips the figure drivers and instead runs the hot-path
// micro-benchmarks (internal/bench), writing <out>/BENCH_0002.json —
// ns/op and allocs/op per benchmark plus an echo of the latest full-run
// TIMINGS.json, the cross-PR performance-regression trajectory.
// -cpuprofile/-memprofile capture pprof profiles of either mode.
//
// The default (paper-scale) run uses the paper's horizons — notably the
// 10^7-second sweeps of Figures 7 and 8 — and takes a few minutes.
// -quick shrinks horizons and replication counts to finish in seconds.
//
// The drivers are independent, so they run concurrently on at most
// -jobs workers (default: one per CPU). Output is deterministic for any
// -jobs value: every driver derives its randomness from its own seeds,
// results are printed and indexed in registration order, and a full run
// records per-driver wall times in <out>/TIMINGS.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"routesync/internal/experiments"
	"routesync/internal/parallel"
	"routesync/internal/workload"
)

// driver is one registered figure: an id selectable with -only and the
// function that computes it.
type driver struct {
	id string
	fn func() *experiments.Result
}

// driverRun is what one worker hands back to the in-order consumer.
type driverRun struct {
	res     *experiments.Result
	err     error
	seconds float64
}

// driverTiming is one entry of TIMINGS.json.
type driverTiming struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	Series  int     `json:"series"`
	Points  int     `json:"points"`
}

// timingsFile is the TIMINGS.json schema: enough to track pipeline
// speedups across PRs the way the BENCH_*.json trajectories do.
type timingsFile struct {
	Quick        bool           `json:"quick"`
	Jobs         int            `json:"jobs"`
	Workers      int            `json:"workers"`
	TotalSeconds float64        `json:"total_seconds"`
	Drivers      []driverTiming `json:"drivers"`
}

func main() { os.Exit(run()) }

// run is main's body; it returns the exit code instead of calling
// os.Exit so the profiling defers below always flush.
func run() int {
	var (
		out     = flag.String("out", "out", "output directory")
		quick   = flag.Bool("quick", false, "reduced horizons and replications")
		only    = flag.String("only", "", "comma-separated figure ids to run (default all)")
		jobs    = flag.Int("jobs", 0, "max concurrent figure drivers (0 = one per CPU)")
		doBench = flag.Bool("bench", false, "run hot-path micro-benchmarks and write "+benchFileName+" instead of figures")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				return
			}
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
			}
			f.Close()
		}()
	}

	if *doBench {
		if err := runBench(*out); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		return 0
	}

	model := experiments.ModelConfig{Horizon: 1e5}
	sweepHorizon := 1e7
	markovCfg := experiments.MarkovConfig{Sims: 20, SimHorizon: 5e6, Jobs: *jobs}
	pings := 1000
	audioDur := 600.0
	if *quick {
		sweepHorizon = 1e6
		markovCfg = experiments.MarkovConfig{Sims: 3, SimHorizon: 1e6, Jobs: *jobs}
		pings = 300
		audioDur = 180
	}

	// Figures 1 and 2 share one packet-level ping run: fig02 is the
	// autocorrelation of fig01's RTTs. The run is computed once, on
	// demand, by whichever driver gets there first, so `-only fig02`
	// works without also writing fig01.
	var (
		fig1Once sync.Once
		fig1Res  *experiments.Result
		fig1Ping workload.PingResult
	)
	fig1Shared := func() (*experiments.Result, workload.PingResult) {
		fig1Once.Do(func() {
			fig1Res, fig1Ping = experiments.Fig1(experiments.PathConfig{}, pings)
		})
		return fig1Res, fig1Ping
	}

	drivers := []driver{
		{"fig01", func() *experiments.Result {
			r, _ := fig1Shared()
			return r
		}},
		{"fig02", func() *experiments.Result {
			_, ping := fig1Shared()
			return experiments.Fig2(ping, 200)
		}},
		{"fig03", func() *experiments.Result {
			r, _ := experiments.Fig3(experiments.PathConfig{}, audioDur)
			return r
		}},
		{"fig04", func() *experiments.Result { return experiments.Fig4(model) }},
		{"fig05", func() *experiments.Result { return experiments.Fig5(model, 0, 0) }},
		{"fig06", func() *experiments.Result { return experiments.Fig6(model) }},
		{"fig07", func() *experiments.Result {
			cfg := model
			cfg.Horizon = sweepHorizon
			r, _ := experiments.Fig7(cfg, nil)
			return r
		}},
		{"fig08", func() *experiments.Result {
			cfg := model
			cfg.Horizon = sweepHorizon
			r, _ := experiments.Fig8(cfg, nil, 0)
			return r
		}},
		{"fig09", func() *experiments.Result { return experiments.Fig9(markovCfg, 0) }},
		{"fig10", func() *experiments.Result { return experiments.Fig10(markovCfg, 0) }},
		{"fig11", func() *experiments.Result { return experiments.Fig11(markovCfg, 0) }},
		{"fig12", func() *experiments.Result { return experiments.Fig12(markovCfg, 0, 0, 0) }},
		{"fig13", func() *experiments.Result { return experiments.Fig13(markovCfg, nil, nil) }},
		{"fig14", func() *experiments.Result { return experiments.Fig14(markovCfg, 0, 0, 0) }},
		{"fig15", func() *experiments.Result { return experiments.Fig15(markovCfg, 0, 0, 0) }},
		{"claim_parc", func() *experiments.Result { return experiments.ClaimPARC(0, 1) }},
		{"claim_guidance", func() *experiments.Result { return experiments.ClaimGuidance() }},
		{"ablation_timer_policy", func() *experiments.Result { return experiments.AblationTimerPolicy(model) }},
		{"ablation_solver", func() *experiments.Result { return experiments.AblationSolver(markovCfg, 0) }},
		{"ablation_delivery", func() *experiments.Result { return experiments.AblationDelivery(nil, 1) }},
		{"ablation_queueing", func() *experiments.Result { return experiments.AblationQueueing(0, 1) }},
		{"ext_coherence", func() *experiments.Result { return experiments.ExtCoherence(model) }},
		{"ext_storm", func() *experiments.Result { return experiments.ExtStorm(0, 1) }},
		{"ext_nsweep", func() *experiments.Result {
			seeds := 5
			if *quick {
				seeds = 2
			}
			return experiments.ExtNSweep(0, nil, seeds, 3e6, 1)
		}},
		{"ext_perrouter_fixed", func() *experiments.Result { return experiments.ExtPerRouterFixed(nil, 1) }},
		{"ext_protocols", func() *experiments.Result { return experiments.ExtProtocolComparison(0, 0) }},
		{"ext_clientserver", func() *experiments.Result { return experiments.ExtClientServer(0, 1) }},
		{"ext_externalclock", func() *experiments.Result { return experiments.ExtExternalClock(1) }},
		{"ext_tcpsync", func() *experiments.Result { return experiments.ExtTCPSync(nil, 1) }},
		{"ext_threshold", func() *experiments.Result { return experiments.ExtThreshold(nil) }},
		{"ext_mixed_periods", func() *experiments.Result { return experiments.ExtMixedPeriods(0.1, 1e6, 1) }},
		{"ext_linkstate", func() *experiments.Result {
			horizon := 3e5
			if *quick {
				horizon = 5e4
			}
			return experiments.ExtLinkState(20, horizon, 1)
		}},
		{"ext_triggered", func() *experiments.Result {
			horizon := 3e6
			if *quick {
				horizon = 5e5
			}
			return experiments.ExtTriggered(nil, horizon, 1)
		}},
	}

	active, err := selectDrivers(drivers, *only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		return 1
	}
	partial := len(active) != len(drivers)

	var index strings.Builder
	index.WriteString("# Regenerated figures\n\n")
	var perDriver []driverTiming
	failed := false
	t0 := time.Now()
	parallel.RunOrdered(len(active), *jobs, func(i int) driverRun {
		start := time.Now()
		r := active[i].fn()
		err := r.WriteFiles(*out)
		return driverRun{res: r, err: err, seconds: time.Since(start).Seconds()}
	}, func(i int, run driverRun) {
		if run.err != nil {
			fmt.Fprintln(os.Stderr, "figures:", run.err)
			failed = true
			return
		}
		r := run.res
		points := 0
		for _, s := range r.Series {
			points += s.Len()
		}
		perDriver = append(perDriver, driverTiming{
			ID: r.ID, Title: r.Title, Seconds: run.seconds,
			Series: len(r.Series), Points: points,
		})
		fmt.Printf("== %s (%s, %v)\n", r.ID, r.Title,
			time.Duration(run.seconds*float64(time.Second)).Round(time.Millisecond))
		fmt.Fprintf(&index, "## %s — %s\n\n", r.ID, r.Title)
		for _, n := range r.Notes {
			fmt.Println("   ", n)
			fmt.Fprintf(&index, "- %s\n", n)
		}
		fmt.Fprintf(&index, "- files: [`%s.csv`](%s.csv), [`%s.txt`](%s.txt)\n\n", r.ID, r.ID, r.ID, r.ID)
	})
	total := time.Since(t0)
	if failed {
		return 1
	}

	// A partial -only run must not clobber the full-run index or the
	// full-run timing trajectory.
	if !partial {
		if err := os.WriteFile(filepath.Join(*out, "INDEX.md"), []byte(index.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
		tf := timingsFile{
			Quick:        *quick,
			Jobs:         *jobs,
			Workers:      parallel.Workers(*jobs),
			TotalSeconds: total.Seconds(),
			Drivers:      perDriver,
		}
		buf, err := json.MarshalIndent(tf, "", "  ")
		if err == nil {
			err = os.WriteFile(filepath.Join(*out, "TIMINGS.json"), append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			return 1
		}
	}
	fmt.Printf("\nwrote %d figures to %s/ in %v (%d workers)\n",
		len(active), *out, total.Round(time.Millisecond), parallel.Workers(*jobs))
	return 0
}

// selectDrivers filters the registry by the -only flag, preserving
// registration order. Unknown ids are an error, not a silent no-op: a
// typo like `-only fig4` must fail loudly instead of printing "wrote
// figures" having written nothing.
func selectDrivers(drivers []driver, only string) ([]driver, error) {
	if strings.TrimSpace(only) == "" {
		return drivers, nil
	}
	want := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	known := map[string]bool{}
	var active []driver
	for _, d := range drivers {
		known[d.id] = true
		if want[d.id] {
			active = append(active, d)
		}
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		ids := make([]string, len(drivers))
		for i, d := range drivers {
			ids[i] = d.id
		}
		return nil, fmt.Errorf("unknown figure id(s): %s\nknown ids: %s",
			strings.Join(unknown, ", "), strings.Join(ids, ", "))
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("-only selected no figures")
	}
	return active, nil
}
