// Command markovtool evaluates the paper's §5 Markov chain model and
// prints analysis tables: transition probabilities, expected hitting
// times f(i)/g(i), the fraction of time unsynchronized, and parameter
// sweeps over Tr or N.
//
// Usage:
//
//	markovtool [flags]
//
// Examples:
//
//	# the paper's Figure 12 sweep
//	markovtool -sweep tr -lo 0.55 -hi 4.5 -step 0.05
//
//	# the Figure 15 sweep over router count
//	markovtool -sweep n -tr 0.3 -lo 3 -hi 30
//
//	# a single-point table
//	markovtool -tr 0.2
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"routesync/internal/markov"
)

func main() {
	var (
		n     = flag.Int("n", 20, "number of routers")
		tp    = flag.Float64("tp", 121, "mean timer period Tp (seconds)")
		tr    = flag.Float64("tr", 0.1, "random component Tr (seconds)")
		tc    = flag.Float64("tc", 0.11, "per-message processing cost Tc (seconds)")
		f2    = flag.Float64("f2", 0, "f(2) in rounds (0 = estimate from p(1,2))")
		sweep = flag.String("sweep", "", "sweep variable: '', 'tr' (multiples of Tc) or 'n'")
		lo    = flag.Float64("lo", 0.55, "sweep lower bound")
		hi    = flag.Float64("hi", 4.5, "sweep upper bound")
		step  = flag.Float64("step", 0.05, "sweep step (tr sweep only)")
	)
	flag.Parse()

	switch *sweep {
	case "":
		table(*n, *tp, *tr, *tc, *f2)
	case "threshold":
		fmt.Println("N     critical Tr (s)   critical Tr / Tc")
		for k := int(*lo); k <= int(*hi); k++ {
			if k < 2 {
				continue
			}
			trc, ok := markov.CriticalTr(k, *tp, *tc, 0)
			if !ok {
				fmt.Printf("%-4d  (no threshold in (Tc/2, Tp/2])\n", k)
				continue
			}
			fmt.Printf("%-4d  %-16.4f  %.3f\n", k, trc, trc / *tc)
		}
	case "tr":
		fmt.Println("Tr/Tc     f(N) seconds      g(1) seconds      fraction-unsync")
		for m := *lo; m <= *hi+1e-9; m += *step {
			ch := mustChain(*n, *tp, m**tc, *tc, *f2)
			fmt.Printf("%-8.3f  %-16s  %-16s  %.4f\n",
				m, secs(ch.FN()*ch.RoundSeconds()), secs(ch.G1()*ch.RoundSeconds()),
				ch.FractionUnsynchronized())
		}
	case "n":
		fmt.Println("N     f(N) seconds      g(1) seconds      fraction-unsync")
		for k := int(*lo); k <= int(*hi); k++ {
			if k < 2 {
				continue
			}
			ch := mustChain(k, *tp, *tr, *tc, *f2)
			fmt.Printf("%-4d  %-16s  %-16s  %.4f\n",
				k, secs(ch.FN()*ch.RoundSeconds()), secs(ch.G1()*ch.RoundSeconds()),
				ch.FractionUnsynchronized())
		}
	default:
		fmt.Fprintf(os.Stderr, "markovtool: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}

func mustChain(n int, tp, tr, tc, f2 float64) *markov.Chain {
	ch, err := markov.New(markov.Params{N: n, Tp: tp, Tr: tr, Tc: tc, F2: f2})
	if err != nil {
		fmt.Fprintln(os.Stderr, "markovtool:", err)
		os.Exit(1)
	}
	return ch
}

func table(n int, tp, tr, tc, f2 float64) {
	ch := mustChain(n, tp, tr, tc, f2)
	fmt.Printf("N=%d Tp=%g Tr=%g Tc=%g (Tr = %.2f·Tc); p(1,2)=%.4g f(2)=%.4g rounds\n\n",
		n, tp, tr, tc, tr/tc, ch.ResolvedP12(), ch.ResolvedF2())
	f, g := ch.F(), ch.G()
	fmt.Println(" i   p(i,i+1)   p(i,i-1)   f(i) rounds     g(i) rounds")
	for i := 1; i <= n; i++ {
		fmt.Printf("%2d   %.2e  %.2e  %-14s  %-14s\n",
			i, ch.PUp(i), ch.PDown(i), rounds(f[i]), rounds(g[i]))
	}
	fmt.Printf("\nexpected unsync→sync: %s\n", secs(ch.FN()*ch.RoundSeconds()))
	fmt.Printf("expected sync→unsync: %s\n", secs(ch.G1()*ch.RoundSeconds()))
	fmt.Printf("fraction of time unsynchronized: %.4f\n", ch.FractionUnsynchronized())
	if pi := ch.Stationary(); pi != nil {
		best, idx := 0.0, 1
		for i := 1; i <= n; i++ {
			if pi[i] > best {
				best, idx = pi[i], i
			}
		}
		fmt.Printf("stationary mode: cluster size %d (π=%.3f)\n", idx, best)
	}
}

func rounds(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.4g", v)
}

func secs(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case v > 86400*365:
		return fmt.Sprintf("%.3g (%.0fy)", v, v/(86400*365))
	case v > 86400:
		return fmt.Sprintf("%.3g (%.1fd)", v, v/86400)
	case v > 3600:
		return fmt.Sprintf("%.3g (%.1fh)", v, v/3600)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
