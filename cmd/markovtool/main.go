// Command markovtool evaluates the paper's §5 Markov chain model and
// prints analysis tables: transition probabilities, expected hitting
// times f(i)/g(i), the fraction of time unsynchronized, and parameter
// sweeps over Tr or N.
//
// Usage:
//
//	markovtool [flags]
//
// Examples:
//
//	# the paper's Figure 12 sweep
//	markovtool -sweep tr -lo 0.55 -hi 4.5 -step 0.05
//
//	# the Figure 15 sweep over router count
//	markovtool -sweep n -tr 0.3 -lo 3 -hi 30
//
//	# a single-point table
//	markovtool -tr 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"routesync/internal/experiments"
	"routesync/internal/runner"
)

func main() {
	var (
		n     = flag.Int("n", 20, "number of routers")
		tp    = flag.Float64("tp", 121, "mean timer period Tp (seconds)")
		tr    = flag.Float64("tr", 0.1, "random component Tr (seconds)")
		tc    = flag.Float64("tc", 0.11, "per-message processing cost Tc (seconds)")
		f2    = flag.Float64("f2", 0, "f(2) in rounds (0 = estimate from p(1,2))")
		sweep = flag.String("sweep", "", "sweep variable: '', 'threshold', 'tr' (multiples of Tc) or 'n'")
		lo    = flag.Float64("lo", 0.55, "sweep lower bound")
		hi    = flag.Float64("hi", 4.5, "sweep upper bound")
		step  = flag.Float64("step", 0.05, "sweep step (tr sweep only)")
		jobs  = flag.Int("jobs", 0, "max concurrent workers (0 = one per CPU)")
	)
	flag.Parse()

	id := experiments.MarkovSweepExperiment(*sweep)
	if id == "" {
		fmt.Fprintf(os.Stderr, "markovtool: unknown sweep %q (allowed: '', threshold, tr, n)\n", *sweep)
		os.Exit(1)
	}
	sum, err := runner.Run(runner.Options{
		IDs:  []string{id},
		Jobs: *jobs,
		Overrides: experiments.MarkovToolOverrides{
			N: *n, Tp: *tp, Tr: *tr, Tc: *tc, F2: *f2,
			Lo: *lo, Hi: *hi, Step: *step,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "markovtool:", err)
		os.Exit(1)
	}
	fmt.Print(sum.Artifacts[0].ASCII)
}
