// Command netexp runs the packet-level measurement scenarios (the
// paper's §2 evidence) on the netsim substrate: a ping path through
// routers whose synchronized routing updates stall forwarding, and a CBR
// audio stream with periodic outages.
//
// Usage:
//
//	netexp -scenario ping [flags]     # Figures 1 and 2
//	netexp -scenario audio [flags]    # Figure 3
//
// Examples:
//
//	# the Berkeley→MIT ping run: 1000 pings at 1.01 s over IGRP cores
//	netexp -scenario ping -routers 10 -routes 300
//
//	# the same network after the NEARnet software fix (no stalls)
//	netexp -scenario ping -routes 300 -fixed
//
//	# audio with jittered RIP timers: spikes disappear
//	netexp -scenario audio -jitter 15
package main

import (
	"flag"
	"fmt"
	"os"

	"routesync/internal/experiments"
	"routesync/internal/jitter"
	"routesync/internal/routing"
	"routesync/internal/runner"
)

func main() {
	var (
		scenario = flag.String("scenario", "ping", "ping or audio")
		routers  = flag.Int("routers", 10, "routers on the backbone LAN")
		routes   = flag.Int("routes", 300, "synthetic routes per router (table size)")
		perRoute = flag.Float64("per-route", 0.001, "seconds of CPU per route")
		jitterTr = flag.Float64("jitter", 0, "timer jitter half-width in seconds (0 = none)")
		fixed    = flag.Bool("fixed", false, "post-fix routers: forwarding continues during update processing (emulated with negligible per-route cost)")
		pings    = flag.Int("pings", 1000, "ping count (ping scenario)")
		duration = flag.Float64("duration", 600, "stream duration in seconds (audio scenario)")
		seed     = flag.Int64("seed", 1, "random seed")
		plot     = flag.Bool("plot", true, "render ASCII figures")
		jobs     = flag.Int("jobs", 0, "max concurrent workers (0 = one per CPU)")
	)
	flag.Parse()

	id := experiments.NetexpScenarioExperiment(*scenario)
	if id == "" {
		fmt.Fprintf(os.Stderr, "netexp: unknown scenario %q (allowed: ping, audio)\n", *scenario)
		os.Exit(1)
	}

	cfg := experiments.PathConfig{
		Routers:      *routers,
		ExtraRoutes:  *routes,
		PerRouteCost: *perRoute,
		Seed:         *seed,
	}
	if *fixed {
		cfg.PerRouteCost = 1e-9
	}
	if *jitterTr > 0 {
		switch *scenario {
		case "ping":
			cfg.Jitter = jitter.Uniform{Tp: routing.IGRP().Period, Tr: *jitterTr}
		default:
			cfg.Jitter = jitter.Uniform{Tp: routing.RIP().Period, Tr: *jitterTr}
		}
	}

	sum, err := runner.Run(runner.Options{
		IDs:  []string{id},
		Seed: *seed,
		Jobs: *jobs,
		Overrides: experiments.NetexpOverrides{
			Path:     cfg,
			Pings:    *pings,
			Duration: *duration,
			Plot:     *plot,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netexp:", err)
		os.Exit(1)
	}
	fmt.Print(sum.Artifacts[0].ASCII)
}
