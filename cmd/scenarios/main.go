// Command scenarios runs the paper's §1 catalogue of synchronization
// mechanisms beyond routing messages: the TCP window global
// synchronization, the Sprite client–server convoy, and the
// external-clock traffic peaks.
//
// Usage:
//
//	scenarios -which tcp|clientserver|clock|all [flags]
package main

import (
	"flag"
	"fmt"
	"os"

	"routesync/internal/experiments"
	"routesync/internal/runner"
)

func main() {
	var (
		which = flag.String("which", "all", "tcp, clientserver, clock, or all")
		seed  = flag.Int64("seed", 1, "random seed")
		jobs  = flag.Int("jobs", 0, "max concurrent scenarios (0 = one per CPU)")
	)
	flag.Parse()

	var ids []string
	if *which == "all" {
		ids = experiments.ScenarioAll()
	} else if id := experiments.ScenarioExperiment(*which); id != "" {
		ids = []string{id}
	} else {
		fmt.Fprintf(os.Stderr, "scenarios: unknown -which %q (allowed: tcp, clientserver, clock, all)\n", *which)
		os.Exit(1)
	}

	sum, err := runner.Run(runner.Options{
		IDs:  ids,
		Seed: *seed,
		Jobs: *jobs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		os.Exit(1)
	}
	for _, art := range sum.Artifacts {
		fmt.Print(art.ASCII)
	}
}
