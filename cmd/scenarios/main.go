// Command scenarios runs the paper's §1 catalogue of synchronization
// mechanisms beyond routing messages: the TCP window global
// synchronization, the Sprite client–server convoy, and the
// external-clock traffic peaks.
//
// Usage:
//
//	scenarios -which tcp|clientserver|clock|all [flags]
package main

import (
	"flag"
	"fmt"
	"os"

	"routesync/internal/scenarios"
	"routesync/internal/trace"
)

func main() {
	var (
		which = flag.String("which", "all", "tcp, clientserver, clock, or all")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	ran := false
	if *which == "tcp" || *which == "all" {
		runTCP(*seed)
		ran = true
	}
	if *which == "clientserver" || *which == "all" {
		runClientServer(*seed)
		ran = true
	}
	if *which == "clock" || *which == "all" {
		runClock(*seed)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "scenarios: unknown -which %q\n", *which)
		os.Exit(2)
	}
}

func runTCP(seed int64) {
	fmt.Println("== TCP window synchronization [ZhC190] and the randomized-gateway fix [FJ92]")
	tail := scenarios.RunTCPSync(scenarios.TCPSyncConfig{Seed: seed})
	random := scenarios.RunTCPSync(scenarios.TCPSyncConfig{RandomDrop: true, Seed: seed})
	fmt.Print(trace.Table(
		[]string{"gateway", "correlation", "cuts/congestion", "utilization"},
		[][]string{
			{"drop-tail", fmt.Sprintf("%.2f", tail.SawtoothCorrelation),
				fmt.Sprintf("%.1f", tail.CutsPerCongestion), fmt.Sprintf("%.2f", tail.Utilization)},
			{"randomized", fmt.Sprintf("%.2f", random.SawtoothCorrelation),
				fmt.Sprintf("%.1f", random.CutsPerCongestion), fmt.Sprintf("%.2f", random.Utilization)},
		}))
	fmt.Println()
}

func runClientServer(seed int64) {
	fmt.Println("== Sprite client-server recovery convoy [Ba92]")
	for _, tr := range []float64{0.05, 15} {
		cs := scenarios.NewClientServer(scenarios.ClientServerConfig{
			N: 20, Tp: 30, Tr: tr, Tc: 0.1, Seed: seed,
		})
		cs.RunUntil(60)
		cs.Sim().Schedule(60.5, "fail", func() { cs.FailServer(65) })
		cs.RunUntil(600)
		fmt.Printf("Tr=%-5.2fs: phase coherence %.2f, largest convoy %d\n",
			tr, cs.OrderParameter(), cs.LargestConvoy())
	}
	fmt.Println()
}

func runClock(seed int64) {
	fmt.Println("== synchronization to an external clock [Pa93a]")
	cfg := scenarios.ExternalClockConfig{Seed: seed}
	clocked := scenarios.RunExternalClock(cfg)
	baseline := scenarios.UniformBaseline(cfg)
	fmt.Print(trace.Bars(
		[]string{"on-the-hour peak/mean", "uniform peak/mean"},
		[]float64{clocked.PeakToMean, baseline.PeakToMean}, 40))
	fmt.Println()
}
