// Command syncsim runs the Periodic Messages model from the command line:
// simulate N weakly-coupled routing timers and report whether — and how
// fast — they synchronize or desynchronize.
//
// Usage:
//
//	syncsim [flags]
//
// Examples:
//
//	# the paper's Figure 4 scenario: 20 routers, Tp=121s, Tc=0.11s, Tr=0.1s
//	syncsim -n 20 -tp 121 -tc 0.11 -tr 0.1 -horizon 1e5 -plot
//
//	# break-up of a synchronized start with strong jitter (Figure 8)
//	syncsim -start sync -tr 0.308 -horizon 1e7
package main

import (
	"flag"
	"fmt"
	"os"

	"routesync/internal/core"
	"routesync/internal/experiments"
	"routesync/internal/runner"
)

func main() {
	var (
		n        = flag.Int("n", 20, "number of routers")
		tp       = flag.Float64("tp", 121, "mean timer period Tp (seconds)")
		tr       = flag.Float64("tr", 0.1, "random component half-width Tr (seconds)")
		tc       = flag.Float64("tc", 0.11, "per-message processing cost Tc (seconds)")
		seed     = flag.Int64("seed", 1, "random seed")
		horizon  = flag.Float64("horizon", 1e6, "simulation horizon (seconds)")
		start    = flag.String("start", "unsync", "initial state: unsync or sync")
		thresh   = flag.Int("broken-threshold", 2, "largest cluster size at or below which a synchronized system counts as broken")
		plot     = flag.Bool("plot", false, "render the largest-cluster-per-round trace")
		analyze  = flag.Bool("analyze", true, "also print the Markov chain prediction")
		ensemble = flag.Int("ensemble", 0, "run this many replications in parallel and print quantiles instead of a single run")
		jobs     = flag.Int("jobs", 0, "max concurrent replications (0 = one per CPU)")
	)
	flag.Parse()

	// Unknown -start values are an error, not silently "unsync": a typo
	// like `-start synced` must fail loudly instead of simulating the
	// wrong scenario.
	var startSync bool
	switch *start {
	case "unsync":
		startSync = false
	case "sync":
		startSync = true
	default:
		fmt.Fprintf(os.Stderr, "syncsim: unknown -start %q (allowed: unsync, sync)\n", *start)
		os.Exit(1)
	}

	ov := experiments.SyncsimOverrides{
		Params:            core.Params{N: *n, Tp: *tp, Tr: *tr, Tc: *tc, Seed: *seed},
		Horizon:           *horizon,
		StartSynchronized: startSync,
		BrokenThreshold:   *thresh,
		Plot:              *plot,
		Analyze:           *analyze,
		Ensemble:          *ensemble,
	}
	id := "syncsim_run"
	if *ensemble > 0 {
		id = "syncsim_ensemble"
	}
	sum, err := runner.Run(runner.Options{
		IDs:       []string{id},
		Seed:      *seed,
		Jobs:      *jobs,
		Overrides: ov,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "syncsim:", err)
		os.Exit(1)
	}
	fmt.Print(sum.Artifacts[0].ASCII)
}
