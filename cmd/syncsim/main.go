// Command syncsim runs the Periodic Messages model from the command line:
// simulate N weakly-coupled routing timers and report whether — and how
// fast — they synchronize or desynchronize.
//
// Usage:
//
//	syncsim [flags]
//
// Examples:
//
//	# the paper's Figure 4 scenario: 20 routers, Tp=121s, Tc=0.11s, Tr=0.1s
//	syncsim -n 20 -tp 121 -tc 0.11 -tr 0.1 -horizon 1e5 -plot
//
//	# break-up of a synchronized start with strong jitter (Figure 8)
//	syncsim -start sync -tr 0.308 -horizon 1e7
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"routesync"
	"routesync/internal/trace"
)

func main() {
	var (
		n        = flag.Int("n", 20, "number of routers")
		tp       = flag.Float64("tp", 121, "mean timer period Tp (seconds)")
		tr       = flag.Float64("tr", 0.1, "random component half-width Tr (seconds)")
		tc       = flag.Float64("tc", 0.11, "per-message processing cost Tc (seconds)")
		seed     = flag.Int64("seed", 1, "random seed")
		horizon  = flag.Float64("horizon", 1e6, "simulation horizon (seconds)")
		start    = flag.String("start", "unsync", "initial state: unsync or sync")
		thresh   = flag.Int("broken-threshold", 2, "largest cluster size at or below which a synchronized system counts as broken")
		plot     = flag.Bool("plot", false, "render the largest-cluster-per-round trace")
		analyze  = flag.Bool("analyze", true, "also print the Markov chain prediction")
		ensemble = flag.Int("ensemble", 0, "run this many replications in parallel and print quantiles instead of a single run")
	)
	flag.Parse()

	p := routesync.Params{N: *n, Tp: *tp, Tr: *tr, Tc: *tc, Seed: *seed}
	if *ensemble > 0 {
		res, err := routesync.SimulateEnsemble(p, *ensemble, *horizon, *start == "sync")
		if err != nil {
			fmt.Fprintln(os.Stderr, "syncsim:", err)
			os.Exit(1)
		}
		what := "synchronize"
		if *start == "sync" {
			what = "break up"
		}
		fmt.Printf("ensemble of %d replications (horizon %.3g s): %d reached %s\n",
			res.Replications, *horizon, res.Reached, what)
		if res.Reached > 0 {
			fmt.Printf("  time to %s: mean %s, median %s, p10 %s, p90 %s\n",
				what, fmtSeconds(res.Mean), fmtSeconds(res.Median),
				fmtSeconds(res.P10), fmtSeconds(res.P90))
		}
		return
	}
	opt := routesync.SimOptions{
		Horizon:           *horizon,
		StartSynchronized: *start == "sync",
		BrokenThreshold:   *thresh,
		RecordTrace:       *plot,
	}
	rep, err := routesync.Simulate(p, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "syncsim:", err)
		os.Exit(1)
	}

	fmt.Printf("parameters: N=%d Tp=%gs Tr=%gs Tc=%gs seed=%d (Tr = %.2f·Tc)\n",
		p.N, p.Tp, p.Tr, p.Tc, p.Seed, p.Tr/p.Tc)
	if opt.StartSynchronized {
		if rep.Broken {
			fmt.Printf("synchronization broken after %.0f rounds (%.3g s)\n", rep.BreakRounds, rep.BreakTime)
		} else {
			fmt.Printf("synchronization NOT broken within %.3g s\n", *horizon)
		}
	} else {
		if rep.Synchronized {
			fmt.Printf("fully synchronized after %.0f rounds (%.3g s)\n", rep.SyncRounds, rep.SyncTime)
		} else {
			fmt.Printf("NOT synchronized within %.3g s\n", *horizon)
		}
	}
	fmt.Printf("cluster events processed: %d\n", rep.Events)

	if *plot && rep.LargestTrace.Len() > 0 {
		fmt.Println(trace.Render(trace.PlotOptions{
			Title:  "largest cluster per round",
			XLabel: "time (s)", YLabel: "cluster size",
			YMin: 0, YMax: float64(p.N),
		}, rep.LargestTrace.Downsample(1+rep.LargestTrace.Len()/2000)))
	}

	if *analyze {
		a, err := routesync.Analyze(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "syncsim: analyze:", err)
			os.Exit(1)
		}
		fmt.Printf("\nMarkov chain model (paper §5):\n")
		fmt.Printf("  expected time to synchronize:   %s\n", fmtSeconds(a.ExpectedSyncSeconds))
		fmt.Printf("  expected time to desynchronize: %s\n", fmtSeconds(a.ExpectedUnsyncSeconds))
		fmt.Printf("  fraction of time unsynchronized: %.3f (%s)\n", a.FractionUnsynchronized, a.Regime)
	}
}

func fmtSeconds(s float64) string {
	switch {
	case math.IsInf(s, 1):
		return "infinite"
	case s > 86400*365:
		return fmt.Sprintf("%.3g s (%.3g years)", s, s/(86400*365))
	case s > 3600:
		return fmt.Sprintf("%.3g s (%.1f hours)", s, s/3600)
	default:
		return fmt.Sprintf("%.3g s", s)
	}
}
