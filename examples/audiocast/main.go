// Audiocast: reproduce the paper's Figure 3 — the November 1992 packet
// video workshop audiocast whose audio died for several seconds every 30
// seconds, in lock-step with synchronized RIP routing updates.
//
// Run with:
//
//	go run ./examples/audiocast
package main

import (
	"fmt"

	"routesync/internal/experiments"
	"routesync/internal/jitter"
	"routesync/internal/workload"
)

func main() {
	fmt.Println("=== synchronized RIP updates under a 50 packets/s audio stream")
	r, audio := experiments.Fig3(experiments.PathConfig{}, 600)
	fmt.Println(r.RenderASCII())

	big, small := 0, 0
	for _, o := range audio.Outages() {
		if o.Duration > 0.5 {
			big++
		} else {
			small++
		}
	}
	fmt.Printf("outage census: %d long periodic spikes, %d isolated blips\n", big, small)
	fmt.Printf("overall loss: %.1f%% — \"during these events the packet loss rate ranges from 50 to 95%%\"\n\n",
		100*audio.LossRate())
	// Loss rate inside one spike window vs outside:
	outs := audio.Outages()
	for _, o := range outs {
		if o.Duration > 0.5 {
			rate := audio.LossRateIn(o.Start-0.5, o.Start+o.Duration+0.5)
			fmt.Printf("first long spike: t=%.1fs, %.1fs long, %.0f%% loss in its window\n",
				o.Start, o.Duration, 100*rate)
			break
		}
	}

	fmt.Println("\n=== the same stream with jittered RIP timers (Tr = Tp/2)")
	cfg := experiments.PathConfig{Jitter: jitter.HalfSpread{Tp: 30}, BackgroundLoss: 0.002}
	_, audio2 := experiments.Fig3(cfg, 600)
	// Jitter does not reduce the routers' total update-processing time —
	// it decorrelates it. The win is burstiness: the worst outage shrinks
	// from the full synchronized busy window (all routers' updates back
	// to back) to a single router's update.
	fmt.Printf("worst outage with synchronized timers: %.2f s\n", maxOutage(audio))
	fmt.Printf("worst outage with jittered timers:     %.2f s\n", maxOutage(audio2))
	fmt.Println("total loss is similar (the CPU work hasn't gone anywhere), but the")
	fmt.Println("multi-second audio dropouts are gone — exactly the paper's point about")
	fmt.Println("correlated versus independent losses")
}

func maxOutage(a workload.AudioResult) float64 {
	worst := 0.0
	for _, o := range a.Outages() {
		if o.Duration > worst {
			worst = o.Duration
		}
	}
	return worst
}
