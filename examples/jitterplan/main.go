// Jitterplan: size the timer jitter for a real deployment — the paper's
// Xerox PARC worked example.
//
// The PARC network's cisco routers needed roughly 1 ms per route to
// process a routing message, and carried about 300 routes, so each update
// cost ~300 ms of CPU. The paper's §1 conclusion: "the routers would have
// to add at least a second of randomness to their update intervals to
// prevent synchronization." This example reproduces that number and shows
// what happens above and below it.
//
// Run with:
//
//	go run ./examples/jitterplan
package main

import (
	"fmt"
	"log"

	"routesync"
)

func main() {
	const (
		routers      = 20
		period       = 90.0  // IGRP updates every 90 seconds
		routes       = 300   // routing table size
		perRouteCost = 0.001 // 1 ms per route (the paper's measurement)
	)
	tc := routes * perRouteCost

	plan, err := routesync.PlanJitter(routers, period, tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d routers, %.0f s period, %.0f ms per update\n",
		routers, period, tc*1000)
	fmt.Printf("paper guidance: add at least %.1f s of jitter (10·Tc); %.1f s (Tp/2) is always safe\n\n",
		plan.MinTr, plan.SafeTr)

	fmt.Println("Tr (s)   fraction of time unsynchronized   verdict")
	for _, tr := range []float64{0.2, 0.5, 0.8, 1.0, 1.5, 3.0, 45.0} {
		p := routesync.Params{N: routers, Tp: period, Tr: tr, Tc: tc, Seed: 1}
		a, err := routesync.Analyze(p)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "synchronizes — add more jitter"
		if a.FractionUnsynchronized > 0.95 {
			verdict = "safe"
		} else if a.FractionUnsynchronized > 0.5 {
			verdict = "marginal"
		}
		fmt.Printf("%-7.1f  %-33.3f %s\n", tr, a.FractionUnsynchronized, verdict)
	}
	fmt.Printf("\nthe 1/2 crossing sits near 1 s — the paper's \"at least a second of randomness\"\n")
}
