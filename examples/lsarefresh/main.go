// Lsarefresh: the paper's warning applied to a protocol family it never
// names — link-state routing. A link-state router refreshes its LSAs
// periodically; an implementation that re-arms the refresh timer only
// after the flooding work drains has exactly the paper's weak coupling,
// and a LAN full of such routers marches into lock-step like any RIP
// deployment.
//
// Run with:
//
//	go run ./examples/lsarefresh
package main

import (
	"fmt"

	"routesync/internal/experiments"
)

func main() {
	fmt.Println("20 link-state routers on one LAN, 121 s LSA refresh, 110 ms of")
	fmt.Println("flooding work per LSA; random initial phases")
	fmt.Println()
	fmt.Println("running ~3x10^5 simulated seconds for each timer policy (takes ~1 min)...")
	fmt.Println()
	r := experiments.ExtLinkState(20, 3e5, 1)
	for _, n := range r.Notes {
		fmt.Println(" ", n)
	}
	fmt.Println()
	fmt.Println("the left series collapses by three orders of magnitude: with 0.1 s of")
	fmt.Println("incidental jitter every router ends up flooding its LSAs in the same")
	fmt.Println("instant — the reason OSPF implementations jitter their refresh timers")
}
