// Nearnet: reproduce the paper's Figure 1/2 measurement end to end on the
// packet simulator — the May 1992 Berkeley→MIT ping runs that kept losing
// packets every ~90 seconds because NEARnet's core routers stalled while
// processing synchronized IGRP updates.
//
// The example runs the scenario three ways:
//  1. pre-fix routers, synchronized updates (the measured pathology),
//  2. the same network with jittered timers (the paper's fix), and
//  3. the software fix NEARnet actually deployed (forwarding continues
//     during update processing).
//
// Run with:
//
//	go run ./examples/nearnet
package main

import (
	"fmt"
	"math"

	"routesync/internal/experiments"
	"routesync/internal/jitter"
	"routesync/internal/stats"
)

func main() {
	fmt.Println("=== 1. synchronized IGRP updates, pre-fix routers (the measured pathology)")
	r1, ping := experiments.Fig1(experiments.PathConfig{}, 1000)
	fmt.Println(r1.RenderASCII())

	acf := stats.Autocorrelation(ping.RTTsFilled(2.0), 200)
	peak := stats.PeakLag(acf, 45, 200)
	fmt.Printf("autocorrelation peak at lag %d pings — the update period showing through\n", peak)
	fmt.Printf("(the paper measured lag 89; the coupled-timer period here is Tp+N·Tc ≈ 93 s → lag ≈ 92)\n\n")

	fmt.Println("=== 2. the same network with jittered timers (Tr = Tp/2)")
	cfg := experiments.PathConfig{
		Jitter: jitter.HalfSpread{Tp: 90},
	}
	_, ping2 := experiments.Fig1(cfg, 1000)
	fmt.Printf("loss rate with jitter: %.2f%% (was %.2f%%) — jitter does not reduce the\n",
		100*ping2.LossRate(), 100*ping.LossRate())
	fmt.Println("routers' total processing time, it decorrelates it: the worst run of")
	fmt.Printf("consecutive lost pings shrinks from %d to %d\n",
		worstRun(ping.RTTs), worstRun(ping2.RTTs))
	fmt.Println()

	fmt.Println("=== 3. the NEARnet software fix: forwarding during update processing")
	cfgFixed := experiments.PathConfig{PerRouteCost: 1e-9}
	_, ping3 := experiments.Fig1(cfgFixed, 1000)
	fmt.Printf("loss rate with fixed forwarding path: %.2f%%\n", 100*ping3.LossRate())
	fmt.Println("(the paper notes the underlying synchronized updates remain — the")
	fmt.Println("load is still there, only the forwarding stall is gone)")
}

// worstRun returns the longest run of consecutive lost pings (NaN RTTs).
func worstRun(rtts []float64) int {
	worst, cur := 0, 0
	for _, v := range rtts {
		if math.IsNaN(v) {
			cur++
			if cur > worst {
				worst = cur
			}
		} else {
			cur = 0
		}
	}
	return worst
}
