// Phasetransition: the paper's headline theoretical result, interactive —
// the transition from unsynchronized to synchronized traffic "is not one
// of gradual degradation but is instead a very abrupt 'phase transition':
// in general, the addition of a single router will convert a completely
// unsynchronized traffic stream into a completely synchronized one."
//
// The example sweeps both control knobs: the random component Tr
// (Figure 14) and the router count N (Figure 15), printing the fraction
// of time the system spends unsynchronized, and cross-checks one point of
// each sweep by simulation.
//
// Run with:
//
//	go run ./examples/phasetransition
package main

import (
	"fmt"
	"log"
	"strings"

	"routesync"
)

func bar(frac float64) string {
	n := int(frac*40 + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", 40-n)
}

func main() {
	fmt.Println("=== sweep 1: random component Tr (N = 20, Tp = 121 s, Tc = 0.11 s)")
	fmt.Println("Tr/Tc   fraction unsynchronized")
	for _, m := range []float64{0.6, 1.0, 1.4, 1.6, 1.8, 1.85, 1.9, 1.95, 2.0, 2.2, 2.6, 3.0} {
		p := routesync.PaperParams(m*0.11, 1)
		a, err := routesync.Analyze(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f  %s %.3f\n", m, bar(a.FractionUnsynchronized), a.FractionUnsynchronized)
	}
	fmt.Println("\nthe rise from ~0 to ~1 happens within ~0.1·Tc — an abrupt transition,")
	fmt.Println("not gradual clumping")

	fmt.Println("\n=== sweep 2: number of routers (Tr = 0.3 s)")
	fmt.Println("N     fraction unsynchronized")
	prev := 1.0
	flip := -1
	for n := 10; n <= 30; n++ {
		p := routesync.Params{N: n, Tp: 121, Tr: 0.3, Tc: 0.11, Seed: 1}
		a, err := routesync.Analyze(p)
		if err != nil {
			log.Fatal(err)
		}
		if prev > 0.5 && a.FractionUnsynchronized <= 0.5 {
			flip = n
		}
		prev = a.FractionUnsynchronized
		fmt.Printf("%-4d  %s %.3f\n", n, bar(a.FractionUnsynchronized), a.FractionUnsynchronized)
	}
	if flip > 0 {
		fmt.Printf("\nadding router number %d flips the network from predominately\n", flip)
		fmt.Println("unsynchronized to predominately synchronized — one router is the")
		fmt.Println("difference between a healthy network and a synchronized one")
	}

	fmt.Println("\n=== simulation cross-check at the transition edges")
	lo := routesync.PaperParams(0.6*0.11, 3)
	rep, err := routesync.Simulate(lo, routesync.SimOptions{Horizon: 1e6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Tr=0.6·Tc: simulation synchronized=%v after %.0f rounds (analysis says it must)\n",
		rep.Synchronized, rep.SyncRounds)
	hi := routesync.PaperParams(3*0.11, 3)
	rep2, err := routesync.Simulate(hi, routesync.SimOptions{Horizon: 1e6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Tr=3.0·Tc: simulation synchronized=%v (analysis says it must not)\n",
		rep2.Synchronized)
}
