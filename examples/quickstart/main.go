// Quickstart: watch twenty "independent" routing timers synchronize, then
// apply the paper's jitter recommendation and watch the synchronization
// dissolve.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"routesync"
)

func main() {
	// The paper's Figure 4 scenario: 20 routers, 121-second timers,
	// 0.11 s of processing per routing message, and only 0.1 s of
	// incidental randomness.
	params := routesync.PaperParams(0.1, 1)

	rep, err := routesync.Simulate(params, routesync.SimOptions{Horizon: 1e6})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Synchronized {
		fmt.Printf("with Tr = 0.1 s the %d routers fully synchronized after %.0f rounds (%.1f hours)\n",
			params.N, rep.SyncRounds, rep.SyncTime/3600)
	} else {
		fmt.Println("unexpected: the routers did not synchronize — try a longer horizon")
	}

	// What does the analysis say about this configuration?
	a, err := routesync.Analyze(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the Markov chain model classifies this as the %s regime: "+
		"the system spends %.1f%% of its time unsynchronized\n",
		a.Regime, 100*a.FractionUnsynchronized)

	// Now apply the paper's medicine: draw each timer interval from
	// U[0.5·Tp, 1.5·Tp], i.e. Tr = Tp/2.
	plan, err := routesync.PlanJitter(params.N, params.Tp, params.Tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended jitter: at least %.1f s (10·Tc); %.1f s (Tp/2) is always safe\n",
		plan.MinTr, plan.SafeTr)
	if tr, ok, err := routesync.CriticalJitter(params.N, params.Tp, params.Tc); err == nil && ok {
		fmt.Printf("the phase transition for this deployment sits at Tr = %.2f s — the\n", tr)
		fmt.Printf("0.1 s of incidental noise above is %.0fx too little\n", tr/params.Tr)
	}

	cured := params
	cured.Tr = plan.SafeTr
	rep2, err := routesync.Simulate(cured, routesync.SimOptions{
		Horizon:           1e6,
		StartSynchronized: true, // even from a synchronized restart...
	})
	if err != nil {
		log.Fatal(err)
	}
	if rep2.Broken {
		fmt.Printf("with Tr = Tp/2, a fully synchronized start breaks up within %.1f rounds (%.0f s)\n",
			rep2.BreakRounds+1, rep2.BreakTime)
	} else {
		fmt.Println("unexpected: strong jitter failed to break synchronization")
	}
}
