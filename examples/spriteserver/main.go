// Spriteserver: the paper's §1 client–server anecdote — "in the Sprite
// operating system clients check with the file server every 30 seconds;
// in an early version of the system, when the file server recovered after
// a failure ... a number of clients would become synchronized in their
// recovery procedures" [Ba92].
//
// The same weak coupling as the routing model (a client re-arms its poll
// timer only when the server's response arrives) turns one server outage
// into a permanent convoy — unless the clients jitter their poll timers.
//
// Run with:
//
//	go run ./examples/spriteserver
package main

import (
	"fmt"

	"routesync/internal/scenarios"
)

func report(label string, cs *scenarios.ClientServer) {
	maxRun := 0
	for _, n := range cs.BusyRuns {
		if n > maxRun {
			maxRun = n
		}
	}
	fmt.Printf("%-28s largest convoy %2d, phase coherence %.2f, biggest busy run %2d\n",
		label, cs.LargestConvoy(), cs.OrderParameter(), maxRun)
}

func main() {
	fmt.Println("20 clients poll a file server every 30 s; each request costs the")
	fmt.Println("server 100 ms; the server fails for 65 s one minute in")
	fmt.Println()

	// Tight timers: the Sprite pathology.
	tight := scenarios.NewClientServer(scenarios.ClientServerConfig{
		N: 20, Tp: 30, Tr: 0.05, Tc: 0.1, Seed: 1,
	})
	tight.RunUntil(60)
	report("tight timers, pre-failure:", tight)
	tight.Sim().Schedule(60.5, "fail", func() { tight.FailServer(65) })
	tight.RunUntil(600)
	report("tight timers, post-recovery:", tight)
	fmt.Println()

	// Jittered timers: the paper's cure, applied to polling.
	jittered := scenarios.NewClientServer(scenarios.ClientServerConfig{
		N: 20, Tp: 30, Tr: 15, Tc: 0.1, Seed: 1,
	})
	jittered.RunUntil(60)
	jittered.Sim().Schedule(60.5, "fail", func() { jittered.FailServer(65) })
	jittered.RunUntil(600)
	report("jittered timers (Tr=Tp/2):", jittered)
	fmt.Println()
	fmt.Println("the recovery storm still happens (the backlog must drain), but with")
	fmt.Println("jitter the clients disperse again within a few polls instead of")
	fmt.Println("hammering the server in lock-step forever")
}
