// Tcpglobalsync: the paper's §1 opening example — "a well-known example
// of unintended synchronization is the synchronization of the window
// increase/decrease cycles of separate TCP connections sharing a common
// bottleneck gateway [ZhC190]" — and its fix, "adding randomization to
// the gateway's algorithm for choosing packets to drop during periods of
// congestion [FJ92]".
//
// Ten AIMD flows share one bottleneck. With a drop-tail gateway every
// congestion event cuts every flow: the sawtooths phase-lock and the link
// periodically drains empty. With randomized drops the cycles decorrelate
// and utilization rises.
//
// Run with:
//
//	go run ./examples/tcpglobalsync
package main

import (
	"fmt"

	"routesync/internal/scenarios"
	"routesync/internal/trace"
)

func main() {
	tail := scenarios.RunTCPSync(scenarios.TCPSyncConfig{Seed: 2})
	random := scenarios.RunTCPSync(scenarios.TCPSyncConfig{RandomDrop: true, Seed: 2})

	fmt.Println("10 TCP-like flows, bottleneck capacity 100 packets/RTT, 2000 RTTs")
	fmt.Println()
	fmt.Println(trace.Table(
		[]string{"gateway", "sawtooth correlation", "flows cut per congestion", "utilization"},
		[][]string{
			{"drop-tail", fmt.Sprintf("%.2f", tail.SawtoothCorrelation),
				fmt.Sprintf("%.1f", tail.CutsPerCongestion),
				fmt.Sprintf("%.2f", tail.Utilization)},
			{"randomized [FJ92]", fmt.Sprintf("%.2f", random.SawtoothCorrelation),
				fmt.Sprintf("%.1f", random.CutsPerCongestion),
				fmt.Sprintf("%.2f", random.Utilization)},
		}))
	fmt.Println("drop-tail cuts every flow at once — the windows march in phase")
	fmt.Println("(correlation ~1) and the link empties after each synchronized")
	fmt.Println("backoff; randomized dropping cuts one or two flows per event and")
	fmt.Println("the aggregate stays smooth — the same inject-randomness medicine")
	fmt.Println("the paper prescribes for routing timers")
}
