module routesync

go 1.22
