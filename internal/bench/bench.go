// Package bench holds the micro-benchmark bodies for the hot paths the
// figure pipeline leans on: des event scheduling, periodic cluster
// stepping, and cluster growth. Each body is an exported func(*testing.B)
// so the same code runs both under `go test -bench` (via the wrappers in
// bench_test.go) and under `figures -bench`, which feeds the bodies to
// testing.Benchmark and writes the results to out/BENCH_NNNN.json — the
// cross-PR regression trajectory.
package bench

import (
	"sort"
	"sync/atomic"
	"testing"

	"routesync/internal/cluster"
	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/periodic"
	"routesync/internal/rng"
)

// benchObserver mirrors the runner's Metrics shape — lock-free atomic
// counters — so the observed-mode benchmarks price the hook cost the
// real pipeline pays, without this package depending on the runner layer.
type benchObserver struct {
	scheduled, fired, cancelled, rounds atomic.Uint64
}

func (o *benchObserver) EventScheduled(at des.Time, depth int) { o.scheduled.Add(1) }
func (o *benchObserver) EventFired(at des.Time, depth int)     { o.fired.Add(1) }
func (o *benchObserver) EventCancelled(at des.Time, depth int) { o.cancelled.Add(1) }
func (o *benchObserver) RoundCompleted(now float64, size int)  { o.rounds.Add(1) }

// DESScheduleStep measures the des kernel's steady state: one Step plus
// one Schedule per iteration against a warm event pool. With the
// free-list pool this must run at 0 allocs/op — every fired event's slot
// is recycled by the next Schedule.
func DESScheduleStep(b *testing.B) {
	sim := des.New()
	nop := func() {}
	const depth = 64 // pending events held across iterations
	at := des.Time(0)
	for i := 0; i < depth; i++ {
		at += 1
		sim.Schedule(at, "bench", nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
		at += 1
		sim.Schedule(at, "bench", nop)
	}
}

// DESScheduleCancel measures schedule-then-cancel churn — the routing
// agents' timer re-arm pattern — which must likewise recycle slots
// without allocating.
func DESScheduleCancel(b *testing.B) {
	sim := des.New()
	nop := func() {}
	// Warm the pool: the first schedule ever allocates the slot, and at
	// b.N == 1 that cold start would read as 1 alloc/op.
	sim.Cancel(sim.Schedule(1e9, "warm", nop))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := sim.Schedule(des.Time(i)+1e9, "bench", nop)
		sim.Cancel(ev)
	}
}

// DESScheduleStepObserved is DESScheduleStep with a counting observer
// installed: the steady state must stay at 0 allocs/op, paying only the
// atomic increments per event.
func DESScheduleStepObserved(b *testing.B) {
	sim := des.New()
	sim.SetObserver(&benchObserver{})
	nop := func() {}
	const depth = 64
	at := des.Time(0)
	for i := 0; i < depth; i++ {
		at += 1
		sim.Schedule(at, "bench", nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
		at += 1
		sim.Schedule(at, "bench", nop)
	}
}

// DESScheduleFire measures the kernel's steady state — one Step plus one
// Schedule per iteration — at a configurable pending-event depth on a
// chosen queue backend. The prefill scatters expiries uniformly over a
// window of mean spacing one, and each fired event is replaced by a new
// one at a uniform offset past the horizon, so depth stays constant and
// the queue keeps its spread. This is the backend crossover benchmark:
// the heap pays O(log depth) per op while the calendar queue stays O(1)
// amortized, which is the whole case for the calendar backend at
// large-N populations.
func DESScheduleFire(b *testing.B, backend des.Backend, depth int) {
	sim := des.NewBackend(backend)
	nop := func() {}
	r := rng.New(11)
	window := float64(depth)
	for i := 0; i < depth; i++ {
		sim.Schedule(des.Time(r.Uniform(0, window)), "bench", nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
		sim.Schedule(sim.Now()+des.Time(r.Uniform(0, window)), "bench", nop)
	}
}

// DESTicker measures one ticker firing: the kernel pops the tick event
// and the ticker re-arms. The hoisted fire closure keeps the re-arm from
// allocating a fresh func every period.
func DESTicker(b *testing.B) {
	sim := des.New()
	period := func() des.Time { return 1 }
	tick := sim.NewTicker("bench-tick", period, func() {})
	_ = tick
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// TickerStorm measures a population of tickers interleaving — the shape
// of every netsim experiment, where each router holds a refresh timer.
// One iteration is one tick firing somewhere in the population.
func TickerStorm(b *testing.B) {
	sim := des.New()
	const n = 100
	for i := 0; i < n; i++ {
		p := 1 + des.Time(i)*0.01 // spread periods so firings interleave
		period := func() des.Time { return p }
		sim.NewTicker("bench-tick", period, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// PeriodicStep measures one cluster firing of the Periodic Messages model
// at population n. The heap engine makes this O(k log N) in the cluster
// size k rather than O(N log N) in the population. The configuration
// pins the system in the desynchronized steady state so k measures the
// engine, not the physics: Tp scales with n (n=20 gives the paper's
// 121 s) to hold the expiry density per Tc window constant — at the
// paper's fixed Tp = 121 an n=1000 system saturates (N·Tc ≈ Tp) — and
// Tr = Tp/20 is jitter far above the synchronization threshold, since a
// benchmark long enough to synchronize would silently switch to
// measuring O(N) clusters on every engine.
func PeriodicStep(b *testing.B, n int) {
	sys := periodic.New(PeriodicBenchConfig(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

// PeriodicStepObserved is PeriodicStep with a counting observer: the
// hook adds one branch and one atomic add per cluster firing, and must
// not change the engine's allocs/op.
func PeriodicStepObserved(b *testing.B, n int) {
	cfg := PeriodicBenchConfig(n)
	cfg.Observer = &benchObserver{}
	sys := periodic.New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

// PeriodicStepLargeN is PeriodicStep at populations past the EngineAuto
// threshold, where the structure-of-arrays bucket engine takes over: one
// cluster firing at N = 10k–100k, still 0 allocs/op in steady state.
// The engine is pinned explicitly so the benchmark keeps measuring the
// bucket path even if the auto threshold moves.
func PeriodicStepLargeN(b *testing.B, n int) {
	cfg := PeriodicBenchConfig(n)
	cfg.Engine = periodic.EngineBucket
	sys := periodic.New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

// PeriodicBenchConfig returns the scaled configuration PeriodicStep
// benchmarks run under.
func PeriodicBenchConfig(n int) periodic.Config {
	tp := 6.05 * float64(n)
	return periodic.Config{
		N:      n,
		Tc:     0.11,
		Jitter: jitter.Uniform{Tp: tp, Tr: tp / 20},
		Seed:   1,
	}
}

// benchMembers builds a deterministic scattered expiry set.
func benchMembers(n int) []cluster.Member {
	r := rng.New(7)
	ms := make([]cluster.Member, n)
	for i := range ms {
		ms[i] = cluster.Member{ID: i, Expiry: r.Uniform(0, 121)}
	}
	return ms
}

// ClusterGrow measures the reference copy+sort+scan cluster computation.
func ClusterGrow(b *testing.B, n int) {
	ms := benchMembers(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Grow(ms, 0.11)
	}
}

// ClusterGrowSorted measures the pre-sorted fast path: a single linear
// admission scan, no copy, no allocation.
func ClusterGrowSorted(b *testing.B, n int) {
	ms := benchMembers(n)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Expiry != ms[j].Expiry {
			return ms[i].Expiry < ms[j].Expiry
		}
		return ms[i].ID < ms[j].ID
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.GrowSorted(ms, 0.11)
	}
}

// ClusterPartition measures the full pending-state decomposition used by
// LargestPending sampling.
func ClusterPartition(b *testing.B, n int) {
	ms := benchMembers(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Partition(ms, 0.11)
	}
}
