package bench

import (
	"fmt"
	"testing"

	"routesync/internal/des"
	"routesync/internal/netsim"
)

// Wrappers exposing the shared benchmark bodies to `go test -bench`.
// `figures -bench` runs the same bodies via testing.Benchmark.

func BenchmarkDESScheduleStep(b *testing.B)         { DESScheduleStep(b) }
func BenchmarkDESScheduleStepObserved(b *testing.B) { DESScheduleStepObserved(b) }
func BenchmarkDESScheduleCancel(b *testing.B)       { DESScheduleCancel(b) }
func BenchmarkDESTicker(b *testing.B)               { DESTicker(b) }

func BenchmarkDESScheduleFire(b *testing.B) {
	for _, backend := range []des.Backend{des.BackendHeap, des.BackendCalendar} {
		for _, depth := range []int{1000, 100000} {
			b.Run(fmt.Sprintf("backend=%s/depth=%d", backend, depth), func(b *testing.B) {
				DESScheduleFire(b, backend, depth)
			})
		}
	}
}
func BenchmarkTickerStorm(b *testing.B) { TickerStorm(b) }

func BenchmarkPeriodicStep(b *testing.B) {
	for _, n := range []int{20, 100, 1000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) { PeriodicStep(b, n) })
	}
}

func BenchmarkPeriodicStepObserved(b *testing.B) {
	for _, n := range []int{20, 100, 1000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) { PeriodicStepObserved(b, n) })
	}
}

func BenchmarkPeriodicStepLargeN(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) { PeriodicStepLargeN(b, n) })
	}
}

func BenchmarkClusterGrow(b *testing.B) {
	for _, n := range []int{20, 1000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) { ClusterGrow(b, n) })
	}
}

func BenchmarkClusterGrowSorted(b *testing.B) {
	for _, n := range []int{20, 1000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) { ClusterGrowSorted(b, n) })
	}
}

func BenchmarkClusterPartition(b *testing.B) {
	for _, n := range []int{20, 1000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) { ClusterPartition(b, n) })
	}
}

func BenchmarkNetsimForward(b *testing.B) { NetsimForward(b) }

func BenchmarkNetsimScale(b *testing.B) {
	for _, k := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("N=500/K=%d", k), func(b *testing.B) { NetsimScale(b, 500, k) })
	}
}

func BenchmarkNetsimChurn(b *testing.B) {
	for _, k := range []int{1, 2, 6} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) { NetsimChurn(b, k) })
	}
}

func BenchmarkPathVectorUpdate(b *testing.B) { PathVectorUpdate(b) }

func BenchmarkNetsimBGP(b *testing.B) {
	for _, k := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("N=1000/K=%d", k), func(b *testing.B) { NetsimBGP(b, 1000, k) })
	}
}

func BenchmarkNetsimLowLookahead(b *testing.B) {
	for _, mode := range []netsim.SyncMode{netsim.SyncConservative, netsim.SyncOptimistic} {
		for _, k := range []int{1, 4} {
			b.Run(fmt.Sprintf("mode=%s/K=%d", mode, k), func(b *testing.B) { NetsimLowLookahead(b, mode, k) })
		}
	}
}

func BenchmarkNetsimExchange(b *testing.B) {
	for _, k := range []int{2, 4} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) { NetsimExchange(b, k) })
	}
}
