package bench

import (
	"testing"

	"routesync/internal/experiments"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/pathvector"
)

// PathVectorUpdate measures the path-vector update hot path in
// isolation: two ASes exchanging full refresh rounds through per-peer
// MRAI batching. One op is one refresh period — each side fires its
// periodic timer, encodes its adj-out into the kernel's scratch buffer,
// the peer decodes, runs best-path selection, and the MRAI timer batches
// and flushes the resulting advertisements. Adj-in slots reuse their
// path storage, the dirty/advertised sets are single-word bitsets, and
// the flush encodes into the kernel scratch, so warm rounds run at
// 0 allocs/op — the number benchguard gates.
func PathVectorUpdate(b *testing.B) {
	const warmup, period = 200.0, 30.0
	net := netsim.NewNetwork(1)
	cpu := &netsim.CPUConfig{Mode: netsim.CPUModeLegacy, InputQueueCap: 64}
	na := net.NewNode("asA", cpu)
	nb := net.NewNode("asB", cpu)
	l := net.Connect(na, nb, netsim.LinkConfig{Delay: 0.01, Bandwidth: 10e6, QueueCap: 64})
	origins := []netsim.NodeID{na.ID, nb.ID}
	for i, nd := range []*netsim.Node{na, nb} {
		ag := pathvector.NewAgent(nd, pathvector.Config{
			Origins:       origins,
			Peers:         []pathvector.PeerConfig{{Link: l, Rel: pathvector.RelPeer}},
			RefreshPeriod: period,
			Jitter:        jitter.Uniform{Tp: period, Tr: period / 2},
			MRAI:          2,
			MRAIJitter:    jitter.Uniform{Tp: 2, Tr: 1},
			PrepareCost:   0.002,
			ProcessCost:   0.0005,
			Seed:          int64(i) + 1,
		})
		ag.Start(1)
	}
	net.RunUntil(warmup)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.RunUntil(net.Now() + period)
	}
}

// NetsimBGP measures one steady-state second of the ext_bgp scenario —
// `ases` path-vector speakers on a preferential-attachment AS graph,
// MRAI 5 s with uniform jitter — on k logical processes. The 400-second
// untimed warmup covers initial convergence, the probe withdrawal at
// 0.45·horizon and the path-exploration storm it triggers, so measured
// windows are steady refresh + MRAI traffic on warm pools; the flush
// recorders are pre-sized for the whole horizon, so recording never
// allocates. As with NetsimScale, the K=1 vs K=n ns/op ratio is the
// engine's speedup on the AS-level workload.
//
// K=1 runs at 0 allocs/op. K>1 carries a small alloc floor (~60/op at
// K=2) that is structural, not a leak in the update path: valley-free
// export is asymmetric — providers advertise full tables to customers
// every period while non-origin stubs export nothing back — so packet
// slots migrate one way across the partition boundary and the sending
// LP keeps minting replacements (the per-LP pool's "round-trip traffic
// keeps the pools balanced" assumption does not hold here). The drift
// is bounded by the horizon and invisible to results; rebalancing the
// free lists at the window barrier would remove it if it ever matters.
func NetsimBGP(b *testing.B, ases, k int) {
	const horizon, warmup = 700.0, 400.0
	build := func() *experiments.BGPScenario {
		sc := experiments.BuildBGP(ases, k, 5, "uniform", 1, horizon, nil)
		sc.Net.RunUntil(warmup)
		return sc
	}
	sc := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sc.Net.Now()+1 > sc.Horizon {
			b.StopTimer()
			sc = build()
			b.StartTimer()
		}
		sc.Net.RunUntil(sc.Net.Now() + 1)
	}
}
