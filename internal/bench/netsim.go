package bench

import (
	"testing"

	"routesync/internal/experiments"
	"routesync/internal/netsim"
)

// NetsimForward measures the packet-forwarding hot path: one op injects a
// packet at one end of a five-node chain and runs it to delivery — four
// store-and-forward hops, each a serialization event plus an arrival
// event. With the ring-buffered in-flight queues and hoisted arrival
// closures the steady state allocates only the packet itself.
func NetsimForward(b *testing.B) {
	net := netsim.NewNetwork(1)
	nodes := net.BuildChain(
		[]string{"src", "r1", "r2", "r3", "dst"}, nil,
		netsim.LinkConfig{Delay: 0.0005, Bandwidth: 1e9, QueueCap: 64},
	)
	src, dst := nodes[0], nodes[len(nodes)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := net.NewPacket(netsim.KindData, src.ID, dst.ID, 64)
		net.Inject(pkt)
		net.RunUntil(net.Now() + 1)
	}
}

// NetsimScale measures one full run of the ext_netscale scenario —
// `routers` routers of real periodic routing updates plus the crossing
// ping stream, one RIP period plus convergence slack of simulated time —
// on k logical processes. Build time is excluded; the measured region is
// exactly the conservative parallel engine executing the workload, so
// the K=1 vs K=n ratio in BENCH_*.json is the engine's speedup on the
// recording machine (see the num_cpu field: on a single-core machine the
// ratio can only be ≤ 1, with the gap measuring synchronization
// overhead).
func NetsimScale(b *testing.B, routers, k int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sc := experiments.BuildNetScale(routers, 25, k, 1, 40, nil)
		b.StartTimer()
		sc.Run()
	}
}

// NetsimChurn measures one full run of the ext_churn scenario — every
// router speaking the compressed periodic protocol while the fault layer
// flaps backbone links and crash/reboots interior routers — on k logical
// processes. Relative to NetsimScale this adds the fault event layer and
// the AoI monitor's route-change hooks to the measured region, so the
// trajectory tracks what failure instrumentation costs the engine.
func NetsimChurn(b *testing.B, k int) {
	pol := experiments.ChurnPolicy{Triggered: true, HoldDown: 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sc := experiments.BuildChurn(6, 8, k, 1, 40, pol, 120, nil)
		b.StartTimer()
		sc.Run()
	}
}
