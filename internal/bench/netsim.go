package bench

import (
	"testing"

	"routesync/internal/experiments"
	"routesync/internal/netsim"
)

// NetsimForward measures the packet-forwarding hot path: one op injects a
// packet at one end of a five-node chain and runs it to delivery — four
// store-and-forward hops, each a serialization event plus an arrival
// event. With the slot-pooled packet lifecycle, ring-buffered in-flight
// queues and hoisted arrival closures the steady state runs at
// 0 allocs/op and 0 B/op: the packet slot released at delivery is the
// slot the next op draws.
func NetsimForward(b *testing.B) {
	net := netsim.NewNetwork(1)
	nodes := net.BuildChain(
		[]string{"src", "r1", "r2", "r3", "dst"}, nil,
		netsim.LinkConfig{Delay: 0.0005, Bandwidth: 1e9, QueueCap: 64},
	)
	src, dst := nodes[0], nodes[len(nodes)-1]
	// Warm the pools: the first packet ever mints its slot, and the event
	// pool and in-flight rings grow to their working depth.
	warm := net.NewPacket(netsim.KindData, src.ID, dst.ID, 64)
	net.Inject(warm)
	net.RunUntil(net.Now() + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := net.NewPacket(netsim.KindData, src.ID, dst.ID, 64)
		net.Inject(pkt)
		net.RunUntil(net.Now() + 1)
	}
}

// The scenario benchmarks below share one shape: build and warm the
// scenario off the clock, make each op one simulated second
// (RunUntil(now+1)), and rebuild — untimed — whenever the next window
// would pass the horizon. Measuring warm windows instead of whole runs
// makes the 0 allocs/op pool discipline a gateable number: convergence
// transients (tables, scratch and pools growing to their high-water
// marks) happen during the untimed warmup.

// NetsimScale measures one steady-state second of the ext_netscale
// scenario — `routers` routers of real periodic routing updates plus the
// crossing ping stream — on k logical processes. The scenario is built
// and run 400 simulated seconds off the clock: periodic-only good news
// crosses one hop per period, so full table convergence takes several
// periods times the domain diameter. Each op is then RunUntil(now+1), a
// window of periodic updates, pings and (for k ≥ 2) barrier exchanges.
// With the pooled packet path this is 0 allocs/op, and the K=1 vs K=n
// ns/op ratio in BENCH_*.json is the engine's speedup on the recording
// machine (see num_cpu).
func NetsimScale(b *testing.B, routers, k int) {
	const horizon, warmup = 700.0, 400.0
	build := func() *experiments.NetScaleScenario {
		sc := experiments.BuildNetScale(routers, 25, k, 1, horizon, nil)
		sc.Net.RunUntil(warmup)
		return sc
	}
	sc := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sc.Net.Now()+1 > sc.Horizon {
			b.StopTimer()
			sc = build()
			b.StartTimer()
		}
		sc.Net.RunUntil(sc.Net.Now() + 1)
	}
}

// NetsimChurn measures one steady-state second of the ext_churn scenario
// — every router speaking the compressed periodic protocol while the
// fault layer flaps backbone links and crash/reboots interior routers —
// on k logical processes. The monitor-free builder keeps measurement
// bookkeeping out of the measured region; the 400-second untimed warmup
// covers convergence and enough fault cycles to reach every high-water
// mark, so each measured window exercises triggered updates, hold-down
// and crash recovery — the faults stay active until horizon−40 — on
// warm pools at 0 allocs/op.
func NetsimChurn(b *testing.B, k int) {
	pol := experiments.ChurnPolicy{Triggered: true, HoldDown: 20}
	const horizon, warmup = 700.0, 400.0
	build := func() *experiments.ChurnScenario {
		sc := experiments.BuildChurnBench(6, 8, k, 1, 40, pol, horizon, nil)
		sc.Net.RunUntil(warmup)
		return sc
	}
	sc := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sc.Net.Now()+1 > sc.Horizon {
			b.StopTimer()
			sc = build()
			b.StartTimer()
		}
		sc.Net.RunUntil(sc.Net.Now() + 1)
	}
}

// NetsimLowLookahead measures one steady-state second of the metro-LAN
// scenario — broadcast segments joined by 100 µs bridges, the lookahead
// regime where conservative windowing degenerates — under the given
// synchronization mode on k logical processes. The conservative/optimistic
// ns/op pair at K=4 in BENCH_*.json is the Time-Warp engine's payoff on
// this topology; the optimistic rows exercise checkpoint saves, rollback
// replay and serial-instant commits every window, all on warm pools at
// 0 allocs/op (snapshot buffers, outboxes and the packet pool reach their
// high-water marks during the untimed warmup).
func NetsimLowLookahead(b *testing.B, mode netsim.SyncMode, k int) {
	const horizon, warmup = 1400.0, 600.0
	build := func() *experiments.MetroLANScenario {
		sc := experiments.BuildMetroLAN(8, 6, k, 1, horizon, nil, netsim.WithSyncMode(mode))
		sc.Net.RunUntil(warmup)
		return sc
	}
	sc := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sc.Net.Now()+1 > sc.Horizon {
			b.StopTimer()
			sc = build()
			b.StartTimer()
		}
		sc.Net.RunUntil(sc.Net.Now() + 1)
	}
}

// NetsimExchange measures the partition boundary machinery specifically:
// a small (100-router) instance of the scale scenario on k ≥ 2 logical
// processes, where each one-second op crosses dozens of YAWNS barriers
// (the backbone lookahead is 10 ms). Outboxes drain in place and every
// boundary arrival rides a pooled slot with a pre-built closure, so warm
// windows exchange their whole batch at 0 allocs/op.
func NetsimExchange(b *testing.B, k int) {
	const horizon, warmup = 700.0, 400.0
	build := func() *experiments.NetScaleScenario {
		sc := experiments.BuildNetScale(100, 25, k, 1, horizon, nil)
		sc.Net.RunUntil(warmup)
		return sc
	}
	sc := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sc.Net.Now()+1 > sc.Horizon {
			b.StopTimer()
			sc = build()
			b.StartTimer()
		}
		sc.Net.RunUntil(sc.Net.Now() + 1)
	}
}
