// Package cluster implements cluster identification for the Periodic
// Messages model (paper §4): a cluster is a maximal set of routers whose
// timer expirations fall inside one shared busy window, which grows by Tc
// for every member because each member's routing message costs every other
// router Tc seconds of processing.
//
// The package also provides round bookkeeping — "the largest cluster in the
// current round of N routing messages" is the quantity plotted in the
// paper's cluster graphs (Figs 6–8).
package cluster

import "sort"

// bucketSortMinLen is the input size at which SortMembers switches from
// comparison sorting to the linear-time bucket path. Below it the
// constant factors of bucketing lose to sort.Slice.
const bucketSortMinLen = 2048

// Member pairs a router id with its timer-expiry time.
type Member struct {
	ID     int
	Expiry float64
}

// Cluster is one synchronized group: the members whose expiries share a
// busy window. Members are ordered by expiry time (first = cluster head,
// the node that "breaks away from the head of the cluster" in §5.1 when
// break-up occurs).
type Cluster struct {
	Members []Member
	// Start is the first expiry (when the busy window opens).
	Start float64
	// End is Start + len(Members)·Tc (when all members reset timers).
	End float64
}

// Size returns the number of members.
func (c Cluster) Size() int { return len(c.Members) }

// IDs returns the member router ids in expiry order.
func (c Cluster) IDs() []int {
	ids := make([]int, len(c.Members))
	for i, m := range c.Members {
		ids[i] = m.ID
	}
	return ids
}

// Grow computes the cluster seeded by the earliest expiry in pending,
// applying the fixed-point rule: sort expiries ascending; with k current
// members and window [t, t+k·Tc), admit the next expiry iff it is
// < t + k·Tc, which extends the window to t+(k+1)·Tc. pending must be
// non-empty; Tc must be > 0 for any multi-member cluster to form (Tc = 0
// yields only exact ties).
//
// Grow does not mutate pending. It is the reference implementation — the
// heap-based engine in internal/periodic is differential-tested against
// it — and is equivalent to sorting pending and calling GrowSorted.
func Grow(pending []Member, tc float64) Cluster {
	if len(pending) == 0 {
		panic("cluster: Grow with no pending members")
	}
	sorted := append([]Member(nil), pending...)
	SortMembers(sorted)
	return GrowSorted(sorted, tc)
}

// GrowSorted is Grow's fast path for input already sorted by (Expiry, ID)
// ascending: no copy, no sort — one linear scan. The returned Cluster's
// Members slice aliases sorted; callers that mutate the input afterwards
// must copy first.
func GrowSorted(sorted []Member, tc float64) Cluster {
	if len(sorted) == 0 {
		panic("cluster: GrowSorted with no pending members")
	}
	t := sorted[0].Expiry
	k := 1
	for k < len(sorted) {
		if sorted[k].Expiry < t+float64(k)*tc || sorted[k].Expiry == t {
			k++
			continue
		}
		break
	}
	return Cluster{
		Members: sorted[:k],
		Start:   t,
		End:     t + float64(k)*tc,
	}
}

// SortMembers orders members in place by (Expiry, ID) ascending — the model's
// deterministic firing order. Large inputs take a linear-time
// range-partitioned bucket sort (the large-N engine and LargestPending
// sort full router populations every query); small or degenerate inputs
// take a comparison sort. Both paths produce the identical total order,
// so the choice is invisible to callers.
func SortMembers(ms []Member) {
	if len(ms) >= bucketSortMinLen && bucketSort(ms) {
		return
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Expiry != ms[j].Expiry {
			return ms[i].Expiry < ms[j].Expiry
		}
		return ms[i].ID < ms[j].ID // deterministic tie-break
	})
}

// memberLess is the (Expiry, ID) order shared by every sort path.
func memberLess(a, b Member) bool {
	if a.Expiry != b.Expiry {
		return a.Expiry < b.Expiry
	}
	return a.ID < b.ID
}

// bucketSort sorts ms by distributing members into len(ms) equal-width
// expiry ranges (a counting-sort scatter), then ordering each range.
// Because the bucket index is a monotone function of the expiry, the
// concatenation of sorted buckets is globally sorted. Returns false —
// input untouched — when the expiries are non-finite or span zero, where
// range partitioning is meaningless; the caller falls back to the
// comparison sort.
func bucketSort(ms []Member) bool {
	lo, hi := ms[0].Expiry, ms[0].Expiry
	for _, m := range ms {
		if m.Expiry-m.Expiry != 0 { // NaN or ±Inf
			return false
		}
		if m.Expiry < lo {
			lo = m.Expiry
		}
		if m.Expiry > hi {
			hi = m.Expiry
		}
	}
	span := hi - lo
	if !(span > 0) {
		return false // all expiries tie; nothing to partition by
	}
	nb := len(ms)
	scale := float64(nb) / span
	bucketOf := func(e float64) int {
		b := int((e - lo) * scale)
		if b >= nb {
			b = nb - 1 // e == hi
		}
		return b
	}
	count := make([]int32, nb+1)
	for _, m := range ms {
		count[bucketOf(m.Expiry)+1]++
	}
	for b := 1; b <= nb; b++ {
		count[b] += count[b-1]
	}
	pos := count[:nb]
	tmp := make([]Member, nb)
	for _, m := range ms {
		b := bucketOf(m.Expiry)
		tmp[pos[b]] = m
		pos[b]++
	}
	// pos[b] now holds each bucket's end offset; walk the ranges and sort
	// them. Average occupancy is one, so nearly every range is trivial;
	// skewed distributions can still pile members into one range, where an
	// insertion sort would go quadratic — hand those to sort.Slice.
	start := 0
	for b := 0; b < nb; b++ {
		end := int(pos[b])
		if n := end - start; n > 1 {
			run := tmp[start:end]
			if n <= 32 {
				for i := 1; i < n; i++ {
					for j := i; j > 0 && memberLess(run[j], run[j-1]); j-- {
						run[j], run[j-1] = run[j-1], run[j]
					}
				}
			} else {
				sort.Slice(run, func(i, j int) bool { return memberLess(run[i], run[j]) })
			}
		}
		start = end
	}
	copy(ms, tmp)
	return true
}

// Partition decomposes a full set of expiries into consecutive clusters by
// sorting once and repeatedly applying GrowSorted to the remaining tail.
// It is used for post-hoc analysis of a round's state (e.g. counting
// clusters, sizes). The returned clusters' Members slices share one
// backing array private to this call.
func Partition(pending []Member, tc float64) []Cluster {
	rest := append([]Member(nil), pending...)
	SortMembers(rest)
	var out []Cluster
	for len(rest) > 0 {
		c := GrowSorted(rest, tc)
		out = append(out, c)
		rest = rest[c.Size():]
	}
	return out
}

// Largest returns the maximum cluster size in a partition, or 0 for an
// empty partition.
func Largest(parts []Cluster) int {
	best := 0
	for _, c := range parts {
		if c.Size() > best {
			best = c.Size()
		}
	}
	return best
}

// RoundTracker accumulates the largest cluster observed per round window.
// The paper plots one point per "round" — roughly one Tp+Tc interval in
// which each of the N routers transmits once.
type RoundTracker struct {
	window  float64
	current int64 // current round index
	largest int
	times   []float64
	sizes   []int
	started bool
}

// NewRoundTracker creates a tracker with the given round window (usually
// Tp + Tc).
func NewRoundTracker(window float64) *RoundTracker {
	if window <= 0 {
		panic("cluster: round window must be positive")
	}
	return &RoundTracker{window: window}
}

// Observe records a cluster of the given size at time t. Observations must
// arrive in nondecreasing time order.
func (rt *RoundTracker) Observe(t float64, size int) {
	idx := int64(t / rt.window)
	if !rt.started {
		rt.started = true
		rt.current = idx
		rt.largest = size
		return
	}
	if idx != rt.current {
		rt.flush()
		rt.current = idx
		rt.largest = size
		return
	}
	if size > rt.largest {
		rt.largest = size
	}
}

func (rt *RoundTracker) flush() {
	rt.times = append(rt.times, float64(rt.current)*rt.window)
	rt.sizes = append(rt.sizes, rt.largest)
}

// Finish flushes the in-progress round and returns the (time, largest
// cluster) series. The tracker may not be reused afterwards.
func (rt *RoundTracker) Finish() (times []float64, sizes []int) {
	if rt.started {
		rt.flush()
		rt.started = false
	}
	return rt.times, rt.sizes
}
