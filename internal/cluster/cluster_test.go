package cluster

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"routesync/internal/rng"
)

func TestGrowSingle(t *testing.T) {
	c := Grow([]Member{{ID: 3, Expiry: 10}}, 0.11)
	if c.Size() != 1 || c.Start != 10 || c.End != 10.11 {
		t.Fatalf("Grow single = %+v", c)
	}
}

func TestGrowPair(t *testing.T) {
	// Paper §4 Figure 5 scenario: node B's timer expires while node A is
	// still in its Tc busy period, so both join one cluster and reset at
	// t + 2·Tc.
	const tc = 0.11
	c := Grow([]Member{
		{ID: 0, Expiry: 100.00},
		{ID: 1, Expiry: 100.05}, // inside [100, 100.11)
		{ID: 2, Expiry: 140.00}, // far away
	}, tc)
	if c.Size() != 2 {
		t.Fatalf("size = %d, want 2", c.Size())
	}
	if c.End != 100+2*tc {
		t.Fatalf("End = %v, want %v", c.End, 100+2*tc)
	}
	if ids := c.IDs(); ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestGrowWindowExtension(t *testing.T) {
	// The window grows by Tc per member: expiry at 100.15 is outside the
	// one-member window [100, 100.11) but inside the two-member window
	// [100, 100.22) once 100.05 has joined.
	const tc = 0.11
	c := Grow([]Member{
		{ID: 0, Expiry: 100.00},
		{ID: 1, Expiry: 100.05},
		{ID: 2, Expiry: 100.15},
		{ID: 3, Expiry: 100.30}, // inside three-member window [100, 100.33)
		{ID: 4, Expiry: 100.45}, // outside four-member window [100, 100.44)
	}, tc)
	if c.Size() != 4 {
		t.Fatalf("size = %d, want 4 (%+v)", c.Size(), c)
	}
}

func TestGrowBoundaryExclusive(t *testing.T) {
	// An expiry exactly at the window end does not join.
	c := Grow([]Member{{ID: 0, Expiry: 0}, {ID: 1, Expiry: 0.11}}, 0.11)
	if c.Size() != 1 {
		t.Fatalf("boundary expiry joined: size = %d", c.Size())
	}
}

func TestGrowZeroTcExactTies(t *testing.T) {
	c := Grow([]Member{
		{ID: 2, Expiry: 5}, {ID: 0, Expiry: 5}, {ID: 1, Expiry: 5.0001},
	}, 0)
	if c.Size() != 2 {
		t.Fatalf("zero-Tc cluster size = %d, want 2 (exact ties only)", c.Size())
	}
	if ids := c.IDs(); ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("tie-break by ID failed: %v", ids)
	}
}

func TestGrowPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Grow(empty) did not panic")
		}
	}()
	Grow(nil, 0.1)
}

func TestGrowDoesNotMutateInput(t *testing.T) {
	in := []Member{{ID: 1, Expiry: 9}, {ID: 0, Expiry: 3}}
	Grow(in, 0.1)
	if in[0].ID != 1 || in[1].ID != 0 {
		t.Fatal("Grow mutated its input")
	}
}

// TestGrowProperties: every member expiry lies in [Start, End); every
// non-member expiry is >= the final window end; End-Start = size·Tc.
func TestGrowProperties(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		tc := r.Uniform(0.01, 0.5)
		n := 1 + r.Intn(40)
		members := make([]Member, n)
		for i := range members {
			members[i] = Member{ID: i, Expiry: r.Uniform(0, 20)}
		}
		c := Grow(members, tc)
		if d := (c.End - c.Start) - float64(c.Size())*tc; d > 1e-12 || d < -1e-12 {
			return false
		}
		inCluster := make(map[int]bool)
		for _, m := range c.Members {
			inCluster[m.ID] = true
			if m.Expiry < c.Start || m.Expiry >= c.End {
				return false
			}
		}
		for _, m := range members {
			if !inCluster[m.ID] && m.Expiry < c.End && m.Expiry != c.Start {
				// a non-member strictly inside the final window would
				// violate the fixed point (== Start ties join, handled
				// above via the membership map)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPartitionCoversAll(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		tc := r.Uniform(0.01, 0.3)
		n := 1 + r.Intn(50)
		members := make([]Member, n)
		for i := range members {
			members[i] = Member{ID: i, Expiry: r.Uniform(0, 10)}
		}
		parts := Partition(members, tc)
		total := 0
		seen := make(map[int]bool)
		for _, c := range parts {
			total += c.Size()
			for _, m := range c.Members {
				if seen[m.ID] {
					return false // duplicated member
				}
				seen[m.ID] = true
			}
		}
		return total == n
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPartitionOrdering(t *testing.T) {
	members := []Member{
		{ID: 0, Expiry: 0}, {ID: 1, Expiry: 0.05}, // cluster 1
		{ID: 2, Expiry: 5},                                               // lone
		{ID: 3, Expiry: 9}, {ID: 4, Expiry: 9.02}, {ID: 5, Expiry: 9.15}, // cluster 3
	}
	parts := Partition(members, 0.11)
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(parts))
	}
	sizes := []int{parts[0].Size(), parts[1].Size(), parts[2].Size()}
	if sizes[0] != 2 || sizes[1] != 1 || sizes[2] != 3 {
		t.Fatalf("sizes = %v, want [2 1 3]", sizes)
	}
	if Largest(parts) != 3 {
		t.Fatalf("Largest = %d", Largest(parts))
	}
}

func TestLargestEmpty(t *testing.T) {
	if Largest(nil) != 0 {
		t.Fatal("Largest(nil) != 0")
	}
}

func TestRoundTracker(t *testing.T) {
	rt := NewRoundTracker(10)
	rt.Observe(1, 2)
	rt.Observe(3, 5)
	rt.Observe(9, 1)
	rt.Observe(12, 4) // new round
	rt.Observe(25, 7) // skips round 2... lands in round 2 (20-30)
	times, sizes := rt.Finish()
	if len(times) != 3 {
		t.Fatalf("rounds = %d, want 3", len(times))
	}
	if sizes[0] != 5 || sizes[1] != 4 || sizes[2] != 7 {
		t.Fatalf("sizes = %v", sizes)
	}
	if times[0] != 0 || times[1] != 10 || times[2] != 20 {
		t.Fatalf("times = %v", times)
	}
}

func TestRoundTrackerEmpty(t *testing.T) {
	rt := NewRoundTracker(5)
	times, sizes := rt.Finish()
	if len(times) != 0 || len(sizes) != 0 {
		t.Fatal("empty tracker produced rounds")
	}
}

func TestRoundTrackerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	NewRoundTracker(0)
}

func BenchmarkGrow20(b *testing.B) {
	r := rng.New(1)
	members := make([]Member, 20)
	for i := range members {
		members[i] = Member{ID: i, Expiry: r.Uniform(0, 121)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Grow(members, 0.11)
	}
}

// TestBucketSortMatchesComparison cross-checks the large-input bucket
// path of SortMembers against the comparison sort on adversarial expiry
// distributions: uniform, heavy exact ties, skew (most mass in one
// range), already sorted, reversed, and sizes straddling the path
// threshold.
func TestBucketSortMatchesComparison(t *testing.T) {
	r := rng.New(11)
	gen := map[string]func(n int) []Member{
		"uniform": func(n int) []Member {
			ms := make([]Member, n)
			for i := range ms {
				ms[i] = Member{ID: i, Expiry: r.Uniform(0, 1000)}
			}
			return ms
		},
		"ties": func(n int) []Member {
			ms := make([]Member, n)
			for i := range ms {
				ms[i] = Member{ID: i, Expiry: float64(r.Intn(5))}
			}
			return ms
		},
		"skew": func(n int) []Member {
			ms := make([]Member, n)
			for i := range ms {
				e := r.Uniform(0, 1) // nearly all in the lowest bucket...
				if i == 0 {
					e = 1e9 // ...except one far outlier stretching the range
				}
				ms[i] = Member{ID: i, Expiry: e}
			}
			return ms
		},
		"sorted": func(n int) []Member {
			ms := make([]Member, n)
			for i := range ms {
				ms[i] = Member{ID: i, Expiry: float64(i) * 0.001}
			}
			return ms
		},
		"reversed": func(n int) []Member {
			ms := make([]Member, n)
			for i := range ms {
				ms[i] = Member{ID: i, Expiry: float64(n-i) * 0.001}
			}
			return ms
		},
	}
	for name, g := range gen {
		for _, n := range []int{bucketSortMinLen - 1, bucketSortMinLen, 3 * bucketSortMinLen} {
			ms := g(n)
			want := append([]Member(nil), ms...)
			sort.Slice(want, func(i, j int) bool { return memberLess(want[i], want[j]) })
			SortMembers(ms)
			for i := range ms {
				if ms[i] != want[i] {
					t.Fatalf("%s/n=%d: index %d = %+v, want %+v", name, n, i, ms[i], want[i])
				}
			}
		}
	}
}

// TestBucketSortDegenerate checks the fallbacks: all-equal expiries and
// non-finite values must still come out fully sorted by (Expiry, ID).
func TestBucketSortDegenerate(t *testing.T) {
	n := bucketSortMinLen
	allEqual := make([]Member, n)
	for i := range allEqual {
		allEqual[i] = Member{ID: n - i, Expiry: 7}
	}
	SortMembers(allEqual)
	for i := range allEqual {
		if allEqual[i].ID != i+1 {
			t.Fatalf("all-equal: index %d has ID %d", i, allEqual[i].ID)
		}
	}

	withInf := make([]Member, n)
	for i := range withInf {
		withInf[i] = Member{ID: i, Expiry: float64(n - i)}
	}
	withInf[3].Expiry = math.Inf(1)
	withInf[5].Expiry = math.Inf(-1)
	SortMembers(withInf)
	for i := 1; i < n; i++ {
		if memberLess(withInf[i], withInf[i-1]) {
			t.Fatalf("with-inf: out of order at %d: %+v after %+v", i, withInf[i], withInf[i-1])
		}
	}
}
