// Package core assembles the paper's primary contribution behind one
// coherent API: simulate a population of weakly-coupled periodic routing
// timers (the Periodic Messages model), analyze it with the Markov chain
// model, compare the two, and plan how much timer jitter a deployment
// needs. The root package routesync re-exports this API publicly.
package core

import (
	"errors"
	"fmt"
	"math"

	"routesync/internal/jitter"
	"routesync/internal/markov"
	"routesync/internal/periodic"
	"routesync/internal/stats"
)

// Params describes a network of periodic routing processes, in the
// paper's notation: N routers sending updates every Tp ± Tr seconds,
// spending Tc seconds of processing per routing message.
type Params struct {
	// N is the number of routers on the shared network.
	N int
	// Tp is the nominal update period in seconds.
	Tp float64
	// Tr is the half-width of the uniform random component added to the
	// timer: each interval is drawn from U[Tp−Tr, Tp+Tr].
	Tr float64
	// Tc is the CPU time, in seconds, to prepare or process one routing
	// message.
	Tc float64
	// Seed drives all simulation randomness; equal Params replay
	// identically.
	Seed int64
}

// PaperParams returns the parameters used throughout the paper's
// simulations: N = 20, Tp = 121 s, Tc = 0.11 s, with the caller's Tr.
func PaperParams(tr float64, seed int64) Params {
	return Params{N: 20, Tp: 121, Tr: tr, Tc: 0.11, Seed: seed}
}

// ErrBadParams reports invalid Params.
var ErrBadParams = errors.New("core: invalid parameters")

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("%w: N=%d", ErrBadParams, p.N)
	case p.Tp <= 0:
		return fmt.Errorf("%w: Tp=%g", ErrBadParams, p.Tp)
	case p.Tr < 0 || p.Tr >= p.Tp:
		return fmt.Errorf("%w: Tr=%g (need 0 <= Tr < Tp)", ErrBadParams, p.Tr)
	case p.Tc < 0:
		return fmt.Errorf("%w: Tc=%g", ErrBadParams, p.Tc)
	case p.Tp <= float64(p.N)*p.Tc:
		return fmt.Errorf("%w: Tp=%g <= N*Tc=%g (saturated)", ErrBadParams, p.Tp, float64(p.N)*p.Tc)
	}
	return nil
}

func (p Params) config(start periodic.StartState) periodic.Config {
	return periodic.Config{
		N:      p.N,
		Tc:     p.Tc,
		Jitter: jitter.Uniform{Tp: p.Tp, Tr: p.Tr},
		Start:  start,
		Seed:   p.Seed,
	}
}

// SimOptions tunes Simulate.
type SimOptions struct {
	// Horizon bounds the run in simulated seconds; zero means 10^6.
	Horizon float64
	// StartSynchronized begins with every timer in phase (the state a
	// restart storm or triggered-update wave leaves behind); the default
	// spreads initial phases uniformly.
	StartSynchronized bool
	// BrokenThreshold is the largest-pending-cluster size at or below
	// which a synchronized system counts as broken up; zero means 2.
	BrokenThreshold int
	// RecordTrace adds the largest-cluster-per-round series to the
	// report (costs memory on long horizons).
	RecordTrace bool
}

// SimReport is the outcome of one simulation run.
type SimReport struct {
	Params Params
	// Synchronized tells whether a cluster of size N formed.
	Synchronized bool
	// SyncTime/SyncRounds locate the first full synchronization.
	SyncTime   float64
	SyncRounds float64
	// Broken tells whether (from a synchronized start) the system
	// dispersed to clusters at or below the threshold.
	Broken bool
	// BreakTime/BreakRounds locate the break-up.
	BreakTime   float64
	BreakRounds float64
	// Events is the number of cluster firings processed.
	Events uint64
	// LargestTrace is the (time, largest cluster) series when requested.
	LargestTrace stats.Series
}

// Simulate runs the Periodic Messages model once. From an unsynchronized
// start it reports if/when the system fully synchronized; from a
// synchronized start, if/when it broke up.
func Simulate(p Params, opt SimOptions) (*SimReport, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opt.Horizon == 0 {
		opt.Horizon = 1e6
	}
	if opt.BrokenThreshold == 0 {
		opt.BrokenThreshold = 2
	}
	start := periodic.StartUnsynchronized
	if opt.StartSynchronized {
		start = periodic.StartSynchronized
	}
	rep := &SimReport{Params: p}

	if opt.RecordTrace {
		s := periodic.New(p.config(start))
		times, sizes := s.LargestPerRound(opt.Horizon)
		rep.LargestTrace.Name = "largest cluster"
		for i := range times {
			rep.LargestTrace.Append(times[i], float64(sizes[i]))
		}
	}

	s := periodic.New(p.config(start))
	if opt.StartSynchronized {
		res := s.RunUntilBroken(opt.BrokenThreshold, opt.Horizon)
		rep.Broken = res.Reached
		rep.BreakTime = res.Time
		rep.BreakRounds = res.Rounds
		rep.Events = res.Events
		rep.Synchronized = true
		return rep, nil
	}
	res := s.RunUntilSynchronized(opt.Horizon)
	rep.Synchronized = res.Reached
	rep.SyncTime = res.Time
	rep.SyncRounds = res.Rounds
	rep.Events = res.Events
	return rep, nil
}

// Analysis is the Markov chain model's prediction for a parameter set.
type Analysis struct {
	Params Params
	// ExpectedSyncSeconds is (Tp+Tc)·f(N): expected time from fully
	// unsynchronized to fully synchronized. +Inf when Tr makes cluster
	// growth impossible.
	ExpectedSyncSeconds float64
	// ExpectedUnsyncSeconds is (Tp+Tc)·g(1): expected time from fully
	// synchronized to fully unsynchronized. +Inf when Tr <= Tc/2.
	ExpectedUnsyncSeconds float64
	// FractionUnsynchronized estimates the long-run fraction of time the
	// system spends unsynchronized (paper §5.3, Figs 14–15).
	FractionUnsynchronized float64
	// Stationary is the equilibrium distribution over largest-cluster
	// sizes 1..N (index 0 unused), exact for the birth–death chain.
	Stationary []float64
	// Regime classifies the parameters into the paper's three regions.
	Regime Regime
}

// Regime names the paper's randomization regions (Fig 12).
type Regime string

// Regimes.
const (
	RegimeLow      Regime = "low-randomization"      // synchronizes easily, stays synchronized
	RegimeModerate Regime = "moderate-randomization" // slow in both directions
	RegimeHigh     Regime = "high-randomization"     // desynchronizes easily, stays unsynchronized
)

// Analyze evaluates the Markov chain model for the parameters.
func Analyze(p Params) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.N < 2 {
		return nil, fmt.Errorf("%w: analysis needs N >= 2", ErrBadParams)
	}
	ch, err := markov.New(markov.Params{N: p.N, Tp: p.Tp, Tr: p.Tr, Tc: p.Tc})
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		Params:                 p,
		ExpectedSyncSeconds:    ch.FN() * ch.RoundSeconds(),
		ExpectedUnsyncSeconds:  ch.G1() * ch.RoundSeconds(),
		FractionUnsynchronized: ch.FractionUnsynchronized(),
		Stationary:             ch.Stationary(),
	}
	switch {
	case a.FractionUnsynchronized < 0.1:
		a.Regime = RegimeLow
	case a.FractionUnsynchronized > 0.9:
		a.Regime = RegimeHigh
	default:
		a.Regime = RegimeModerate
	}
	return a, nil
}

// Comparison pits the analysis against simulation replications, the
// validation the paper performs in Figures 10–11.
type Comparison struct {
	Params Params
	// AnalysisSyncSeconds is the chain's expected synchronization time.
	AnalysisSyncSeconds float64
	// SimMeanSyncSeconds averages the replications that synchronized.
	SimMeanSyncSeconds float64
	// SimSynchronized counts replications that synchronized in time.
	SimSynchronized int
	// Replications is the number of simulation runs.
	Replications int
	// Ratio is analysis/simulation (NaN when unavailable). The paper
	// reports 2–3×; see EXPERIMENTS.md for our measured ratios.
	Ratio float64
}

// Compare runs `replications` simulations and sets the analysis
// prediction beside their mean.
func Compare(p Params, replications int, horizon float64) (*Comparison, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if replications <= 0 {
		replications = 5
	}
	if horizon == 0 {
		horizon = 2e6
	}
	a, err := Analyze(p)
	if err != nil {
		return nil, err
	}
	c := &Comparison{
		Params:              p,
		AnalysisSyncSeconds: a.ExpectedSyncSeconds,
		Replications:        replications,
		Ratio:               math.NaN(),
	}
	var sum float64
	for i := 0; i < replications; i++ {
		pp := p
		pp.Seed = p.Seed + int64(i)
		rep, err := Simulate(pp, SimOptions{Horizon: horizon})
		if err != nil {
			return nil, err
		}
		if rep.Synchronized {
			c.SimSynchronized++
			sum += rep.SyncTime
		}
	}
	if c.SimSynchronized > 0 {
		c.SimMeanSyncSeconds = sum / float64(c.SimSynchronized)
		if c.SimMeanSyncSeconds > 0 && !math.IsInf(c.AnalysisSyncSeconds, 1) {
			c.Ratio = c.AnalysisSyncSeconds / c.SimMeanSyncSeconds
		}
	}
	return c, nil
}

// JitterPlan is the actionable output for protocol designers: how much
// randomness a deployment needs, with the model evidence attached.
type JitterPlan struct {
	// MinTr is 10·Tc — the paper's §5.3 "quick break-up" floor.
	MinTr float64
	// SafeTr is Tp/2 — the paper's §6 recommendation (timer drawn from
	// U[0.5·Tp, 1.5·Tp]) that eliminates synchronization outright.
	SafeTr float64
	// FractionAtMin / FractionAtSafe are the chain's predicted fractions
	// of time unsynchronized at those settings.
	FractionAtMin  float64
	FractionAtSafe float64
	// FractionAtZero is the prediction with no jitter beyond OS noise
	// (evaluated at a nominal Tr = Tc/2 + epsilon).
	FractionAtZero float64
}

// CriticalJitter returns the phase-transition threshold for a deployment:
// the random component Tr at which the network flips from predominately
// synchronized to predominately unsynchronized (the paper's §1 "clearly
// defined transition threshold"). A false second return means the system
// is on one side of the transition for every Tr in (Tc/2, Tp/2] — zero
// when any randomness suffices, +Inf when none does within the bracket.
func CriticalJitter(n int, tp, tc float64) (float64, bool, error) {
	if n < 2 || tp <= 0 || tc <= 0 {
		return 0, false, fmt.Errorf("%w: CriticalJitter(n=%d, tp=%g, tc=%g)", ErrBadParams, n, tp, tc)
	}
	tr, ok := markov.CriticalTr(n, tp, tc, 0)
	return tr, ok, nil
}

// EnsembleSummary reports a replicated simulation study.
type EnsembleSummary = periodic.EnsembleResult

// SimulateEnsemble runs replications independent simulations in parallel
// (seeds p.Seed, p.Seed+1, ...) and summarizes the time to full
// synchronization (unsynchronized start) or to break-up (synchronized
// start, largest cluster <= 2).
func SimulateEnsemble(p Params, replications int, horizon float64, startSynchronized bool) (*EnsembleSummary, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if replications < 1 {
		return nil, fmt.Errorf("%w: replications=%d", ErrBadParams, replications)
	}
	if horizon == 0 {
		horizon = 1e6
	}
	cfg := p.config(periodic.StartUnsynchronized)
	var res periodic.EnsembleResult
	if startSynchronized {
		res = periodic.EnsembleBreak(cfg, 2, replications, horizon)
	} else {
		res = periodic.EnsembleSync(cfg, replications, horizon)
	}
	return &res, nil
}

// PlanJitter evaluates the paper's guidance for a deployment of n
// routers with period tp and per-message cost tc.
func PlanJitter(n int, tp, tc float64) (*JitterPlan, error) {
	if n < 2 || tp <= 0 || tc <= 0 {
		return nil, fmt.Errorf("%w: PlanJitter(n=%d, tp=%g, tc=%g)", ErrBadParams, n, tp, tc)
	}
	rec := jitter.Recommend(tp, tc)
	plan := &JitterPlan{MinTr: rec.MinTr, SafeTr: rec.SafeTr}
	frac := func(tr float64) float64 {
		if tr >= tp {
			tr = 0.99 * tp
		}
		ch, err := markov.New(markov.Params{N: n, Tp: tp, Tr: tr, Tc: tc})
		if err != nil {
			return math.NaN()
		}
		return ch.FractionUnsynchronized()
	}
	plan.FractionAtMin = frac(rec.MinTr)
	plan.FractionAtSafe = frac(rec.SafeTr)
	plan.FractionAtZero = frac(tc/2 + 1e-6)
	return plan, nil
}
