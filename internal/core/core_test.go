package core

import (
	"errors"
	"math"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	good := PaperParams(0.1, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: 0, Tp: 121, Tr: 0.1, Tc: 0.11},
		{N: 20, Tp: 0, Tr: 0.1, Tc: 0.11},
		{N: 20, Tp: 121, Tr: -1, Tc: 0.11},
		{N: 20, Tp: 121, Tr: 122, Tc: 0.11},
		{N: 20, Tp: 121, Tr: 0.1, Tc: -0.11},
		{N: 100, Tp: 10, Tr: 0.1, Tc: 0.2}, // saturated
	}
	for _, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("Validate(%+v) = %v, want ErrBadParams", p, err)
		}
	}
}

func TestSimulateSynchronizes(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	rep, err := Simulate(PaperParams(0.1, 1), SimOptions{Horizon: 3e5, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Synchronized {
		t.Fatal("paper parameters did not synchronize within 3e5 s")
	}
	if rep.SyncRounds <= 0 || rep.SyncTime <= 0 || rep.Events == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.LargestTrace.Len() == 0 {
		t.Fatal("trace not recorded")
	}
	_, hi := rep.LargestTrace.YRange()
	if hi != 20 {
		t.Fatalf("trace max = %v, want 20", hi)
	}
}

func TestSimulateBreakup(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	p := PaperParams(2.8*0.11, 2)
	rep, err := Simulate(p, SimOptions{Horizon: 3e6, StartSynchronized: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Broken {
		t.Fatal("high-jitter synchronized start did not break up")
	}
	if !rep.Synchronized {
		t.Fatal("synchronized start must report Synchronized=true")
	}
}

func TestSimulateInvalidParams(t *testing.T) {
	if _, err := Simulate(Params{}, SimOptions{}); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeRegimes(t *testing.T) {
	low, err := Analyze(PaperParams(0.6*0.11, 1))
	if err != nil {
		t.Fatal(err)
	}
	if low.Regime != RegimeLow {
		t.Fatalf("Tr=0.6Tc regime = %s, want low", low.Regime)
	}
	high, err := Analyze(PaperParams(3*0.11, 1))
	if err != nil {
		t.Fatal(err)
	}
	if high.Regime != RegimeHigh {
		t.Fatalf("Tr=3Tc regime = %s, want high", high.Regime)
	}
	if !(low.ExpectedSyncSeconds < high.ExpectedSyncSeconds) {
		t.Fatal("sync time should grow with Tr")
	}
	if !(low.ExpectedUnsyncSeconds > high.ExpectedUnsyncSeconds) {
		t.Fatal("unsync time should shrink with Tr")
	}
	if len(low.Stationary) != 21 {
		t.Fatalf("stationary len = %d", len(low.Stationary))
	}
}

func TestAnalyzeModerateRegimeExists(t *testing.T) {
	// Somewhere between the extremes the fraction is intermediate.
	found := false
	for tr := 0.15; tr < 0.30; tr += 0.005 {
		a, err := Analyze(PaperParams(tr, 1))
		if err != nil {
			t.Fatal(err)
		}
		if a.Regime == RegimeModerate {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no moderate regime found in sweep — transition impossibly sharp")
	}
}

func TestCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulations")
	}
	c, err := Compare(PaperParams(0.1, 1), 3, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	if c.SimSynchronized != 3 {
		t.Fatalf("only %d/3 replications synchronized", c.SimSynchronized)
	}
	if math.IsNaN(c.Ratio) || c.Ratio < 1 {
		t.Fatalf("ratio = %v, want analysis >= sims (the chain over-predicts)", c.Ratio)
	}
}

func TestPlanJitter(t *testing.T) {
	// The paper's PARC worked example: Tp=90, Tc=0.3.
	plan, err := PlanJitter(20, 90, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MinTr != 3 || plan.SafeTr != 45 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.FractionAtMin < 0.95 {
		t.Fatalf("fraction at MinTr = %v, want ~1", plan.FractionAtMin)
	}
	if plan.FractionAtSafe < 0.95 {
		t.Fatalf("fraction at SafeTr = %v, want ~1", plan.FractionAtSafe)
	}
	if plan.FractionAtZero > 0.1 {
		t.Fatalf("fraction without jitter = %v, want ~0 (synchronized)", plan.FractionAtZero)
	}
}

func TestPlanJitterValidation(t *testing.T) {
	for _, f := range []func() (*JitterPlan, error){
		func() (*JitterPlan, error) { return PlanJitter(1, 90, 0.3) },
		func() (*JitterPlan, error) { return PlanJitter(20, 0, 0.3) },
		func() (*JitterPlan, error) { return PlanJitter(20, 90, 0) },
	} {
		if _, err := f(); !errors.Is(err, ErrBadParams) {
			t.Errorf("err = %v, want ErrBadParams", err)
		}
	}
}

func TestDeterministicReports(t *testing.T) {
	a, _ := Simulate(PaperParams(0.1, 7), SimOptions{Horizon: 5e4})
	b, _ := Simulate(PaperParams(0.1, 7), SimOptions{Horizon: 5e4})
	if a.Synchronized != b.Synchronized || a.SyncTime != b.SyncTime || a.Events != b.Events {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestCriticalJitter(t *testing.T) {
	tr, ok, err := CriticalJitter(20, 121, 0.11)
	if err != nil || !ok {
		t.Fatalf("err=%v ok=%v", err, ok)
	}
	if tr < 0.15 || tr > 0.26 {
		t.Fatalf("critical Tr = %v, want ~0.21 (1.9·Tc)", tr)
	}
	if _, _, err := CriticalJitter(1, 121, 0.11); !errors.Is(err, ErrBadParams) {
		t.Fatalf("bad params err = %v", err)
	}
}

func TestSimulateEnsemble(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated runs")
	}
	res, err := SimulateEnsemble(PaperParams(0.1, 1), 4, 2e6, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached < 3 {
		t.Fatalf("only %d/4 synchronized", res.Reached)
	}
	broke, err := SimulateEnsemble(PaperParams(1.1, 1), 4, 1e6, true)
	if err != nil {
		t.Fatal(err)
	}
	if broke.Reached != 4 {
		t.Fatalf("only %d/4 broke up at 10·Tc", broke.Reached)
	}
	if _, err := SimulateEnsemble(PaperParams(0.1, 1), 0, 1e4, false); !errors.Is(err, ErrBadParams) {
		t.Fatalf("bad replications err = %v", err)
	}
}
