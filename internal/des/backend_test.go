package des

import (
	"fmt"
	"math"
	"os"
	"testing"

	"routesync/internal/rng"
)

// This file differential-tests the two event-queue backends: any
// schedule/cancel/reschedule program must produce bit-identical firing
// order and bit-identical observer callback streams on the heap and the
// calendar queue. The programs lean on the adversarial cases — heavy
// same-instant ties, stale-handle Cancels, re-entrant scheduling from
// callbacks, far-future outliers that force the calendar's fallback scan,
// and enough churn to trigger calendar resizes in both directions.

// obsRecord is one observer callback, recorded for comparison.
type obsRecord struct {
	kind  byte // 's'cheduled, 'f'ired, 'c'ancelled
	at    Time
	depth int
}

// recordingObserver appends every callback to a shared log.
type recordingObserver struct {
	log []obsRecord
}

func (o *recordingObserver) EventScheduled(at Time, depth int) {
	o.log = append(o.log, obsRecord{'s', at, depth})
}
func (o *recordingObserver) EventFired(at Time, depth int) {
	o.log = append(o.log, obsRecord{'f', at, depth})
}
func (o *recordingObserver) EventCancelled(at Time, depth int) {
	o.log = append(o.log, obsRecord{'c', at, depth})
}

// firing is one delivered event, as seen by its callback.
type firing struct {
	label   string
	at      Time
	pending int
}

// program is a deterministic schedule/cancel/reschedule script driven by
// its own RNG stream; replay runs it on a simulator and returns the
// delivery order plus the observer log.
type program struct {
	seed int64
	ops  int
}

func (p program) replay(s *Simulator) ([]firing, []obsRecord) {
	r := rng.New(p.seed)
	obs := &recordingObserver{}
	s.SetObserver(obs)
	var fired []firing
	var handles []Event

	// randomAt biases toward ties: a third of schedules land exactly on
	// an already-used timestamp (often "now"), the rest spread over a few
	// decades of simulated time with an occasional far outlier.
	randomAt := func() Time {
		switch r.Intn(6) {
		case 0:
			return s.Now() // immediate tie with the clock
		case 1:
			if len(handles) > 0 {
				if at := handles[r.Intn(len(handles))].At(); !math.IsInf(at, 1) {
					return at // exact tie with a pending event
				}
			}
			return s.Now() + Time(r.Intn(10))
		case 2:
			return s.Now() + 1e9*r.Float64() // far-future outlier
		default:
			return s.Now() + 100*r.Float64()
		}
	}

	schedule := func(i int) {
		label := fmt.Sprintf("ev%d", i)
		at := randomAt()
		var ev Event
		ev = s.Schedule(at, label, func() {
			fired = append(fired, firing{label, s.Now(), s.Pending()})
			// Re-entrant scheduling from a callback, sometimes at the
			// exact current instant (a same-step tie).
			if r.Intn(3) == 0 {
				nested := fmt.Sprintf("%s.n", label)
				s.Schedule(randomAt(), nested, func() {
					fired = append(fired, firing{nested, s.Now(), s.Pending()})
				})
			}
			_ = ev
		})
		handles = append(handles, ev)
	}

	for i := 0; i < p.ops; i++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			schedule(i)
		case 4:
			// Cancel a random handle — often stale by now.
			if len(handles) > 0 {
				s.Cancel(handles[r.Intn(len(handles))])
			}
		case 5:
			// Reschedule: cancel a live handle and re-insert at a new time.
			if len(handles) > 0 {
				h := handles[r.Intn(len(handles))]
				if s.Cancel(h) {
					schedule(i)
				}
			}
		case 6:
			s.RunCount(uint64(r.Intn(8)))
		case 7:
			s.RunUntil(s.Now() + 50*r.Float64())
		default:
			s.Step()
		}
	}
	s.Run()
	return fired, obs.log
}

// diffBackends replays one program on both backends and reports the first
// divergence, if any.
func diffBackends(t *testing.T, p program) {
	t.Helper()
	hFired, hLog := p.replay(NewBackend(BackendHeap))
	cFired, cLog := p.replay(NewBackend(BackendCalendar))

	if len(hFired) != len(cFired) {
		t.Fatalf("seed %d: heap fired %d events, calendar %d", p.seed, len(hFired), len(cFired))
	}
	for i := range hFired {
		if hFired[i] != cFired[i] {
			t.Fatalf("seed %d: firing %d diverged:\n  heap:     %+v\n  calendar: %+v",
				p.seed, i, hFired[i], cFired[i])
		}
	}
	if len(hLog) != len(cLog) {
		t.Fatalf("seed %d: heap observed %d callbacks, calendar %d", p.seed, len(hLog), len(cLog))
	}
	for i := range hLog {
		if hLog[i] != cLog[i] {
			t.Fatalf("seed %d: observer callback %d diverged:\n  heap:     %+v\n  calendar: %+v",
				p.seed, i, hLog[i], cLog[i])
		}
	}
}

// TestBackendEquivalence replays random programs on both backends and
// requires bit-identical firing order and observer streams. CI runs this
// under -race as the designated backend-equivalence gate.
func TestBackendEquivalence(t *testing.T) {
	ops := 400
	if testing.Short() {
		ops = 120
	}
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			diffBackends(t, program{seed: seed, ops: ops})
		})
	}
}

// TestBackendEquivalenceTieStorm schedules many events at few distinct
// timestamps so nearly every comparison is decided by the FIFO sequence
// number, then drains and compares.
func TestBackendEquivalenceTieStorm(t *testing.T) {
	run := func(s *Simulator) []firing {
		var fired []firing
		r := rng.New(7)
		for i := 0; i < 500; i++ {
			at := Time(r.Intn(4)) // only 4 distinct instants
			label := fmt.Sprintf("t%d", i)
			s.Schedule(at, label, func() {
				fired = append(fired, firing{label, s.Now(), s.Pending()})
			})
		}
		s.Run()
		return fired
	}
	h := run(NewBackend(BackendHeap))
	c := run(NewBackend(BackendCalendar))
	if len(h) != len(c) {
		t.Fatalf("heap fired %d, calendar %d", len(h), len(c))
	}
	for i := range h {
		if h[i] != c[i] {
			t.Fatalf("firing %d diverged: heap %+v calendar %+v", i, h[i], c[i])
		}
	}
}

// checkCalendarInvariants walks the calendar structure and reports the
// first violated invariant: location fields match actual position,
// buckets are sorted and consistent with vbFor under the current width,
// no pending day precedes the scan cursor, and the size counter matches.
func checkCalendarInvariants(s *Simulator) string {
	c := &s.cal
	if c.buckets == nil {
		return ""
	}
	total := 0
	for b, list := range c.buckets {
		for idx, slot := range list {
			ev := &s.pool[slot]
			if int(ev.bucket) != b || int(ev.index) != idx {
				return fmt.Sprintf("slot %d (%s at %v): location (%d,%d) but stored at (%d,%d)",
					slot, ev.label, ev.at, ev.bucket, ev.index, b, idx)
			}
			vb := c.vbFor(ev.at)
			if int(vb)&c.mask != b {
				return fmt.Sprintf("slot %d (%s at %v): vb %d maps to bucket %d, stored in %d (width %v)",
					slot, ev.label, ev.at, vb, int(vb)&c.mask, b, c.width)
			}
			if vb < c.curVB {
				return fmt.Sprintf("slot %d (%s at %v): day %d precedes cursor %d (width %v)",
					slot, ev.label, ev.at, vb, c.curVB, c.width)
			}
			if idx > 0 && !s.less(list[idx-1], slot) {
				return fmt.Sprintf("bucket %d out of order at index %d", b, idx)
			}
			total++
		}
	}
	if total != c.size {
		return fmt.Sprintf("size %d but %d events in buckets", c.size, total)
	}
	return ""
}

// TestBackendEquivalenceDeep drives a deep queue (20k initial events with
// sub-bucket spacing plus chained re-scheduling from callbacks) through
// several calendar resizes, validating structural invariants after every
// firing. This workload caught a real bug during development: deciding
// day membership with a reconstructed boundary (at < (day+1)*width)
// instead of vbFor lets floating-point rounding hide an event for a full
// calendar cycle.
func TestBackendEquivalenceDeep(t *testing.T) {
	count := 20000
	if testing.Short() {
		count = 4000
	}
	run := func(s *Simulator, check bool) []firing {
		var fired []firing
		r := rng.New(99)
		var chain func(label string) func()
		chain = func(label string) func() {
			return func() {
				fired = append(fired, firing{label, s.Now(), s.Pending()})
				if r.Intn(2) == 0 {
					nl := label + "."
					s.Schedule(s.Now()+0.0005*r.Float64(), nl, chain(nl))
				}
				if check {
					if msg := checkCalendarInvariants(s); msg != "" {
						t.Fatalf("after firing %d (%s): %s", len(fired)-1, label, msg)
					}
				}
			}
		}
		for i := 0; i < count; i++ {
			s.Schedule(float64(i)*0.001, fmt.Sprintf("e%d", i), chain(fmt.Sprintf("e%d", i)))
		}
		s.Run()
		return fired
	}
	h := run(NewBackend(BackendHeap), false)
	c := run(NewBackend(BackendCalendar), true)
	if len(h) != len(c) {
		t.Fatalf("heap fired %d, calendar %d", len(h), len(c))
	}
	for i := range h {
		if h[i] != c[i] {
			t.Fatalf("firing %d diverged: heap %+v calendar %+v", i, h[i], c[i])
		}
	}
}

// TestParseBackend covers the name round-trip and the error case.
func TestParseBackend(t *testing.T) {
	for _, b := range []Backend{BackendHeap, BackendCalendar} {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Fatalf("ParseBackend(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := ParseBackend("splay"); err == nil {
		t.Fatal("ParseBackend accepted an unknown backend name")
	}
}

// TestDefaultBackendEnv checks the environment override and its fallback
// on unrecognized values.
func TestDefaultBackendEnv(t *testing.T) {
	cases := []struct {
		env  string
		want Backend
	}{
		{"", BackendHeap},
		{"heap", BackendHeap},
		{"calendar", BackendCalendar},
		{"bogus", BackendHeap},
	}
	for _, c := range cases {
		t.Setenv(BackendEnv, c.env)
		if got := DefaultBackend(); got != c.want {
			t.Errorf("DefaultBackend with %s=%q = %v, want %v", BackendEnv, c.env, got, c.want)
		}
		if got := New().Backend(); got != c.want {
			t.Errorf("New().Backend() with %s=%q = %v, want %v", BackendEnv, c.env, got, c.want)
		}
	}
	os.Unsetenv(BackendEnv)
}
