package des

import (
	"fmt"
	"os"
	"sort"
)

// Backend selects the event-queue data structure behind a Simulator. Both
// backends implement the same contract — events fire in (time, insertion
// order) — and are differential-tested to deliver bit-identical orderings
// for any schedule/cancel program, so the choice is purely a performance
// knob: the indexed binary heap pays O(log n) per operation with a small
// constant, the calendar queue O(1) amortized once the queue is deep
// enough for bucketing to pay for itself (tens of thousands of pending
// events; see the DESScheduleFire benchmarks).
type Backend int

const (
	// BackendHeap is the indexed binary min-heap — the reference backend
	// and the default.
	BackendHeap Backend = iota
	// BackendCalendar is the Brown-style calendar queue: bucketed by time
	// with adaptive bucket width, O(1) amortized schedule/fire at any
	// queue depth, stable FIFO tie-breaking via the same insertion
	// sequence numbers the heap uses.
	BackendCalendar
)

// String returns the backend name used by ROUTESYNC_DES_BACKEND and the
// manifest metrics block.
func (b Backend) String() string {
	switch b {
	case BackendHeap:
		return "heap"
	case BackendCalendar:
		return "calendar"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend maps a backend name to its Backend value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "heap":
		return BackendHeap, nil
	case "calendar":
		return BackendCalendar, nil
	default:
		return BackendHeap, fmt.Errorf("des: unknown backend %q (want \"heap\" or \"calendar\")", s)
	}
}

// BackendEnv is the environment variable consulted by DefaultBackend.
const BackendEnv = "ROUTESYNC_DES_BACKEND"

// DefaultBackend returns the backend New uses: BackendHeap unless
// ROUTESYNC_DES_BACKEND names another. An unrecognized value falls back
// to the heap rather than failing — the variable is a performance knob,
// never a correctness one.
func DefaultBackend() Backend {
	if v := os.Getenv(BackendEnv); v != "" {
		if b, err := ParseBackend(v); err == nil {
			return b
		}
	}
	return BackendHeap
}

// calendar is the calendar-queue state embedded in a Simulator. Buckets
// partition time into consecutive "days" of one width each; day d maps to
// physical bucket d mod nbuckets, so one physical bucket holds every
// year's day-d events. Each bucket is kept sorted by (at, seq); curVB is
// a lower bound on every pending event's virtual day, which lets the
// dequeue scan walk days in increasing time order and stop at the first
// bucket head that belongs to the day being visited.
type calendar struct {
	buckets [][]int32
	mask    int   // len(buckets)-1; len is a power of two
	width   Time  // seconds per day
	curVB   int64 // scan cursor: no pending event has a virtual day below this
	size    int

	// resize scratch, reused so steady state never allocates
	slots []int32
	times []float64
}

// calMinBuckets is the initial and minimum bucket count. calInitWidth
// seeds the width before the first resize gathers a real sample.
const (
	calMinBuckets = 64
	calInitWidth  = Time(1)
)

// calMaxVB caps virtual-day indices so day arithmetic near +Inf or
// astronomically large timestamps cannot overflow. Events clamped to the
// cap are only ever dequeued through the direct-search fallback, which
// compares times, not days.
const calMaxVB = int64(1) << 62

// vbFor maps a timestamp to its virtual day under the current width.
func (c *calendar) vbFor(at Time) int64 {
	q := at / c.width
	if !(q < float64(calMaxVB)) {
		return calMaxVB
	}
	return int64(q)
}

// calInit sets up the empty calendar. Called lazily by the first push so
// heap-backed simulators never pay for it.
func (c *calendar) init() {
	c.buckets = make([][]int32, calMinBuckets)
	c.mask = calMinBuckets - 1
	c.width = calInitWidth
	c.curVB = 0
	c.size = 0
}

// calPush inserts a pooled slot, keeping its bucket sorted by (at, seq).
func (s *Simulator) calPush(slot int32) {
	c := &s.cal
	if c.buckets == nil {
		c.init()
	}
	if c.size >= 2*(c.mask+1) {
		s.calResize(2 * (c.mask + 1))
	}
	ev := &s.pool[slot]
	vb := c.vbFor(ev.at)
	if vb < c.curVB {
		// Legal when the clock sits before the current minimum: the new
		// event becomes the earliest pending day, so the scan cursor must
		// regress or the dequeue scan would fire a later event first.
		c.curVB = vb
	}
	b := int(vb) & c.mask
	list := c.buckets[b]
	i := len(list)
	for i > 0 && s.less(slot, list[i-1]) {
		i--
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = slot
	c.buckets[b] = list
	ev.bucket = int32(b)
	ev.index = int32(i)
	for j := i + 1; j < len(list); j++ {
		s.pool[list[j]].index = int32(j)
	}
	c.size++
}

// calRemove deletes a queued slot from its bucket, preserving order.
func (s *Simulator) calRemove(slot int32) {
	c := &s.cal
	ev := &s.pool[slot]
	b, i := int(ev.bucket), int(ev.index)
	list := c.buckets[b]
	copy(list[i:], list[i+1:])
	list = list[:len(list)-1]
	c.buckets[b] = list
	for j := i; j < len(list); j++ {
		s.pool[list[j]].index = int32(j)
	}
	c.size--
	if n := c.mask + 1; c.size < n/4 && n > calMinBuckets {
		s.calResize(n / 2)
	}
}

// calPeek locates the earliest pending slot — (at, seq) order, identical
// to the heap's — and advances the scan cursor to its day. Returns -1 on
// an empty queue. Amortized O(1): the cursor only moves forward (except
// for the calPush regression above), so days are visited once each.
func (s *Simulator) calPeek() int32 {
	c := &s.cal
	if c.size == 0 {
		return -1
	}
	n := c.mask + 1
	for i := 0; i < n; i++ {
		day := c.curVB + int64(i)
		list := c.buckets[int(day)&c.mask]
		if len(list) == 0 {
			continue
		}
		head := list[0]
		// A head whose own day is the day being visited is the minimum:
		// its day is >= curVB (cursor invariant) and congruent to this
		// bucket, and only one such day fits in the current scan window.
		// Membership is decided by vbFor — the same arithmetic that
		// bucketed the event — never by a reconstructed day boundary,
		// which can disagree with vbFor by one day through floating-point
		// rounding and silently skip a pending event.
		if c.vbFor(s.pool[head].at) <= day {
			c.curVB = day
			return head
		}
	}
	// No event within one full calendar cycle of the cursor: the queue is
	// sparse relative to the bucket span (or holds far-future outliers).
	// Fall back to a direct search over bucket heads — each bucket is
	// sorted, so its head is its minimum — and jump the cursor.
	best := int32(-1)
	for _, list := range c.buckets {
		if len(list) == 0 {
			continue
		}
		if best < 0 || s.less(list[0], best) {
			best = list[0]
		}
	}
	c.curVB = c.vbFor(s.pool[best].at)
	return best
}

// calResize re-buckets every pending event into newN buckets with a width
// re-estimated from the current time distribution (Brown's adaptive
// rule: a small multiple of the typical inter-event gap, measured over
// the interquartile span to shrug off outliers).
func (s *Simulator) calResize(newN int) {
	c := &s.cal
	c.slots = c.slots[:0]
	for _, list := range c.buckets {
		c.slots = append(c.slots, list...)
	}
	c.times = c.times[:0]
	for _, slot := range c.slots {
		if at := s.pool[slot].at; at-at == 0 { // finite
			c.times = append(c.times, at)
		}
	}
	if w := estimateWidth(c.times); w > 0 {
		c.width = w
	}
	if len(c.buckets) == newN {
		for i := range c.buckets {
			c.buckets[i] = c.buckets[i][:0]
		}
	} else {
		c.buckets = make([][]int32, newN)
	}
	c.mask = newN - 1
	// Rebuild the cursor invariant from scratch: the new width changes
	// every day index, so recompute the minimum pending day directly.
	c.curVB = calMaxVB
	for _, slot := range c.slots {
		if vb := c.vbFor(s.pool[slot].at); vb < c.curVB {
			c.curVB = vb
		}
	}
	if c.size == 0 {
		c.curVB = 0
	}
	old := c.slots
	c.size = 0
	for _, slot := range old {
		s.calPushResized(slot)
	}
}

// calPushResized is calPush without the resize re-entry check, used while
// re-bucketing (size is rebuilt incrementally and must not trigger a
// nested resize).
func (s *Simulator) calPushResized(slot int32) {
	c := &s.cal
	ev := &s.pool[slot]
	b := int(c.vbFor(ev.at)) & c.mask
	list := c.buckets[b]
	i := len(list)
	for i > 0 && s.less(slot, list[i-1]) {
		i--
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = slot
	c.buckets[b] = list
	ev.bucket = int32(b)
	ev.index = int32(i)
	for j := i + 1; j < len(list); j++ {
		s.pool[list[j]].index = int32(j)
	}
	c.size++
}

// estimateWidth picks a bucket width from a sample of event times: three
// times the mean gap across the interquartile span, so a typical day
// holds a handful of events. Returns 0 (keep the old width) when the
// sample is too small or degenerate (all ties, no finite spread).
func estimateWidth(times []float64) Time {
	if len(times) < 2 {
		return 0
	}
	sort.Float64s(times)
	lo, hi := len(times)/4, len(times)-1-len(times)/4
	if hi <= lo {
		lo, hi = 0, len(times)-1
	}
	span := times[hi] - times[lo]
	if !(span > 0) {
		return 0
	}
	w := 3 * span / float64(hi-lo)
	if !(w > 0) || w != w {
		return 0
	}
	return w
}
