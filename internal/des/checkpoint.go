package des

import (
	"fmt"
	"math"
)

// This file implements checkpoint/rewind for the event kernel — the
// primitive behind optimistic (Time-Warp-style) parallel execution in
// internal/netsim. A Checkpoint captures the complete simulator state at
// a quiescent point (between runs): the clock, the insertion-sequence and
// processed counters, the free list, the generation counter of every pool
// slot, and a flat copy of every pending event. Rewind restores all of it
// exactly:
//
//   - pending events return to their original pool slots with their saved
//     generations, so Event handles held in external state that was
//     checkpointed alongside the simulator (agent timers, workload
//     closures) remain valid after the rewind;
//   - slots that were free at the checkpoint get their saved generations
//     back, so re-running the same program after a rewind assigns the
//     same (slot, generation) pairs it would have the first time;
//   - slots created after the checkpoint join the free list — handles to
//     them live only in state the rewind discards.
//
// Replaying the same schedule/cancel program after a rewind is therefore
// bit-identical to never having run past the checkpoint: the (at, key,
// seq) order is restored verbatim and new insertions continue from the
// saved sequence counter. A Checkpoint owns reusable buffers — saving
// into the same Checkpoint every round allocates nothing once the buffers
// reach their high-water sizes.

// savedEvent is one pending event in a Checkpoint, pinned to its pool slot.
type savedEvent struct {
	slot  int32
	at    Time
	key   uint64
	seq   uint64
	fn    func()
	label string
}

// Checkpoint is a reusable snapshot of one Simulator's complete state.
// The zero value is ready to use. A Checkpoint is bound to the simulator
// that last saved into it.
type Checkpoint struct {
	sim       *Simulator
	now       Time
	seq       uint64
	processed uint64
	lastFired Time
	poolLen   int
	free      []int32
	gens      []uint32
	events    []savedEvent
}

// Save captures the simulator's current state into cp, reusing cp's
// buffers. It panics if called from within a running event.
func (s *Simulator) Save(cp *Checkpoint) {
	if s.running {
		panic("des: Save from within a running event")
	}
	cp.sim = s
	cp.now = s.now
	cp.seq = s.seq
	cp.processed = s.processed
	cp.lastFired = s.lastFired
	cp.poolLen = len(s.pool)
	cp.free = append(cp.free[:0], s.free...)
	cp.gens = cp.gens[:0]
	for i := range s.pool {
		cp.gens = append(cp.gens, s.pool[i].gen)
	}
	cp.events = cp.events[:0]
	if s.backend == BackendCalendar {
		for _, list := range s.cal.buckets {
			for _, slot := range list {
				cp.saveEvent(s, slot)
			}
		}
	} else {
		for _, slot := range s.queue {
			cp.saveEvent(s, slot)
		}
	}
}

func (cp *Checkpoint) saveEvent(s *Simulator, slot int32) {
	ev := &s.pool[slot]
	cp.events = append(cp.events, savedEvent{
		slot: slot, at: ev.at, key: ev.key, seq: ev.seq,
		fn: ev.fn, label: ev.label,
	})
}

// Pending returns the number of events the checkpoint holds.
func (cp *Checkpoint) Pending() int { return len(cp.events) }

// Now returns the clock value the checkpoint was taken at.
func (cp *Checkpoint) Now() Time { return cp.now }

// Rewind restores the simulator to the state captured by cp. Every event
// scheduled since the save is discarded, every event that fired since is
// re-queued at its original slot with its original generation, and the
// clock, sequence and processed counters return to their saved values.
// It panics if cp was saved from a different simulator or if called from
// within a running event.
func (s *Simulator) Rewind(cp *Checkpoint) {
	if cp.sim != s {
		panic("des: Rewind with a checkpoint from a different simulator")
	}
	if s.running {
		panic("des: Rewind from within a running event")
	}
	// Empty the queue wholesale: restored events are re-pushed below, and
	// everything else is dropped.
	if s.backend == BackendCalendar {
		c := &s.cal
		for i := range c.buckets {
			c.buckets[i] = c.buckets[i][:0]
		}
		c.size = 0
		c.curVB = 0
	} else {
		s.queue = s.queue[:0]
	}
	// Reset every slot: saved generations for slots that existed at the
	// save; callbacks dropped so rewound closures are not pinned.
	for i := range s.pool {
		ev := &s.pool[i]
		ev.index = -1
		ev.fn = nil
		ev.label = ""
		if i < cp.poolLen {
			ev.gen = cp.gens[i]
		}
	}
	// Free list: the saved list, plus every slot minted after the save
	// (handles to those live only in discarded state).
	s.free = append(s.free[:0], cp.free...)
	for i := cp.poolLen; i < len(s.pool); i++ {
		s.free = append(s.free, int32(i))
	}
	// Re-queue the saved pending events at their original slots. Queue
	// internals (heap shape, calendar layout) may differ from the original
	// run, but the fire order is (at, key, seq), which is restored exactly.
	for i := range cp.events {
		se := &cp.events[i]
		ev := &s.pool[se.slot]
		ev.at = se.at
		ev.key = se.key
		ev.seq = se.seq
		ev.fn = se.fn
		ev.label = se.label
		s.qPush(se.slot)
	}
	s.now = cp.now
	s.seq = cp.seq
	s.processed = cp.processed
	s.lastFired = cp.lastFired
	s.stopped = false
}

// LastFired returns the timestamp of the most recently executed event, or
// -Inf if no event has fired. The optimistic coordinator compares it
// against the commit bound to decide whether a logical process ran past
// the bound and must roll back.
func (s *Simulator) LastFired() Time { return s.lastFired }

// NextOrd returns the (time, key) ordering coordinates of the earliest
// pending event. ok is false when the queue is empty. Together with
// globally unique keys this lets a coordinator pick the globally minimal
// event across several simulators without executing anything.
func (s *Simulator) NextOrd() (at Time, key uint64, ok bool) {
	slot := s.qPeek()
	if slot < 0 {
		return 0, 0, false
	}
	ev := &s.pool[slot]
	return ev.at, ev.key, true
}

// SyncClock moves the clock to t without executing anything — in either
// direction, provided the move crosses no event: no event fired after t
// and no event is pending before t. The optimistic coordinator uses it at
// a barrier to park every logical process exactly at the commit bound
// (speculative clocks regress to it; lagging clocks advance to it), so
// arrivals exchanged at the barrier can never land in any simulator's
// past. It panics on a move that would cross an event.
func (s *Simulator) SyncClock(t Time) {
	if s.running {
		panic("des: SyncClock from within a running event")
	}
	if math.IsNaN(t) {
		panic("des: SyncClock with NaN time")
	}
	if t < s.lastFired {
		panic(fmt.Sprintf("des: SyncClock(%v) before last fired event at %v", t, s.lastFired))
	}
	if at := s.NextAt(); at < t {
		panic(fmt.Sprintf("des: SyncClock(%v) past pending event at %v", t, at))
	}
	s.now = t
}
