package des

import (
	"fmt"
	"math"
	"testing"

	"routesync/internal/rng"
)

// ckpFiring is one observed event execution, the unit the differential tests
// compare: if two runs fire the same (time, key, label) sequence and end
// with the same clock/seq/processed state, they are behaviorally
// bit-identical.
type ckpFiring struct {
	at    Time
	key   uint64
	label string
}

// ckpProgram is a deterministic random schedule/cancel/run program. Both
// the reference and the speculating simulator execute the identical
// committed op stream; the speculating one additionally checkpoints,
// runs speculative garbage, and rewinds at random points.
type ckpProgram struct {
	sim   *Simulator
	log   *[]ckpFiring
	held  []Event // handles for random cancels
	labNo int
}

// op applies one random committed operation. The random draws are passed
// in pre-drawn so the op stream is identical across simulators sharing a
// seed regardless of what each simulator does with them.
func (p *ckpProgram) op(kind, a, b int64) {
	switch kind % 4 {
	case 0, 1: // schedule (weighted: keeps the queue populated)
		at := p.sim.Now() + float64(a%50)/10
		key := uint64(b % 7) // deliberate key collisions to exercise seq ties
		p.labNo++
		label := fmt.Sprintf("ev%d", p.labNo)
		log := p.log
		e := p.sim.ScheduleKeyed(at, key, label, func() {
			*log = append(*log, ckpFiring{at: at, key: key, label: label})
		})
		p.held = append(p.held, e)
	case 2: // cancel a random held handle (often already stale)
		if len(p.held) > 0 {
			p.sim.Cancel(p.held[a%int64(len(p.held))])
		}
	case 3: // run a short window
		p.sim.RunUntil(p.sim.Now() + float64(a%30)/10)
	}
}

// TestCheckpointRewindDifferential fuzzes checkpoint/rewind on both
// backends: a reference simulator executes a random committed program
// straight through; a speculating simulator executes the same program but
// randomly checkpoints, runs a burst of speculative operations (extra
// schedules, cancels, run windows), then rewinds and continues the
// committed stream. The fired-event logs and final (now, seq, processed)
// state must match exactly — rewinding plus resuming is bit-identical to
// never having speculated.
func TestCheckpointRewindDifferential(t *testing.T) {
	for _, backend := range []Backend{BackendHeap, BackendCalendar} {
		t.Run(backend.String(), func(t *testing.T) {
			for trial := 0; trial < 60; trial++ {
				seed := int64(trial + 1)
				refLog := runCkpTrial(t, backend, seed, false)
				specLog := runCkpTrial(t, backend, seed, true)
				if len(refLog) != len(specLog) {
					t.Fatalf("seed %d: fired %d events with speculation, %d without",
						seed, len(specLog), len(refLog))
				}
				for i := range refLog {
					if refLog[i] != specLog[i] {
						t.Fatalf("seed %d: ckpFiring %d diverged: %+v vs %+v",
							seed, i, refLog[i], specLog[i])
					}
				}
			}
		})
	}
}

// runCkpTrial executes one random program and returns its ckpFiring log.
// With speculate set, checkpoint/speculate/rewind cycles are interleaved
// between committed ops; the committed op stream is drawn from its own
// rng stream so it is identical either way.
func runCkpTrial(t *testing.T, backend Backend, seed int64, speculate bool) []ckpFiring {
	t.Helper()
	sim := NewBackend(backend)
	var log []ckpFiring
	ops := rng.New(seed)            // committed op stream (shared)
	spec := rng.New(seed ^ 0x5EC04) // speculation decisions (spec run only)
	p := &ckpProgram{sim: sim, log: &log}
	cp := &Checkpoint{}

	for i := 0; i < 120; i++ {
		p.op(ops.Next(), ops.Next(), ops.Next())
		if speculate && spec.Intn(4) == 0 {
			// Checkpoint, run speculative garbage, rewind. The garbage
			// shares no rng state with the committed stream.
			sim.Save(cp)
			preLog := len(log)
			burst := 1 + spec.Intn(8)
			for j := 0; j < burst; j++ {
				switch spec.Intn(4) {
				case 0, 1:
					at := sim.Now() + float64(spec.Intn(40))/10
					sim.ScheduleKeyed(at, uint64(spec.Intn(5)), "spec", func() {
						log = append(log, ckpFiring{at: at, key: 99, label: "spec"})
					})
				case 2:
					if len(p.held) > 0 {
						sim.Cancel(p.held[spec.Intn(len(p.held))])
					}
				case 3:
					sim.RunUntil(sim.Now() + float64(spec.Intn(25))/10)
				}
			}
			sim.Rewind(cp)
			// Everything the speculation fired is rolled back.
			log = log[:preLog]
			if sim.Now() != cp.Now() {
				t.Fatalf("rewind left clock at %v, checkpoint at %v", sim.Now(), cp.Now())
			}
			if sim.Pending() != cp.Pending() {
				t.Fatalf("rewind left %d pending, checkpoint had %d", sim.Pending(), cp.Pending())
			}
		}
	}
	sim.Run()
	return log
}

// TestCheckpointHandleValidity checks the handle contract across a
// rewind: a handle to an event pending at the save is valid again after
// the rewind even if the event fired (and its slot was recycled) during
// speculation; a handle taken during speculation is stale after the
// rewind.
func TestCheckpointHandleValidity(t *testing.T) {
	for _, backend := range []Backend{BackendHeap, BackendCalendar} {
		t.Run(backend.String(), func(t *testing.T) {
			sim := NewBackend(backend)
			fired := 0
			committed := sim.Schedule(5, "committed", func() { fired++ })
			cp := &Checkpoint{}
			sim.Save(cp)

			// Speculate: fire the committed event, recycle its slot.
			specEv := sim.Schedule(7, "spec", func() {})
			sim.RunUntil(6)
			if committed.Scheduled() {
				t.Fatal("committed event still scheduled after ckpFiring")
			}
			reused := sim.Schedule(9, "reuse", func() {}) // likely reuses the freed slot

			sim.Rewind(cp)
			if fired != 1 {
				t.Fatalf("speculation fired %d events, want 1", fired)
			}
			if !committed.Scheduled() {
				t.Fatal("committed handle must be valid again after rewind")
			}
			if committed.At() != 5 || committed.Label() != "committed" {
				t.Fatalf("restored event = (%v, %q), want (5, committed)", committed.At(), committed.Label())
			}
			if specEv.Scheduled() || reused.Scheduled() {
				t.Fatal("handles taken during speculation must be stale after rewind")
			}
			if sim.Cancel(specEv) || sim.Cancel(reused) {
				t.Fatal("cancelling a speculative handle after rewind must be a no-op")
			}
			// Replay: the committed event fires again, exactly once.
			sim.Run()
			if fired != 2 {
				t.Fatalf("replay fired %d total, want 2", fired)
			}
		})
	}
}

// TestSyncClock exercises the bidirectional clock move and its guards.
func TestSyncClock(t *testing.T) {
	sim := New()
	sim.Schedule(10, "ev", func() {})
	sim.SyncClock(8) // advance toward the pending event
	if sim.Now() != 8 {
		t.Fatalf("Now() = %v, want 8", sim.Now())
	}
	sim.SyncClock(3) // regress: no event fired yet
	if sim.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", sim.Now())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SyncClock past a pending event must panic")
			}
		}()
		sim.SyncClock(11)
	}()
	sim.Run()
	if sim.LastFired() != 10 {
		t.Fatalf("LastFired() = %v, want 10", sim.LastFired())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SyncClock before the last fired event must panic")
			}
		}()
		sim.SyncClock(9)
	}()
	sim.SyncClock(10) // exactly at the last fired event is legal
}

// TestNextOrd checks the ordering-coordinate accessor.
func TestNextOrd(t *testing.T) {
	sim := New()
	if _, _, ok := sim.NextOrd(); ok {
		t.Fatal("NextOrd on empty queue must report !ok")
	}
	sim.ScheduleKeyed(5, 7, "late", func() {})
	sim.ScheduleKeyed(3, 9, "early", func() {})
	at, key, ok := sim.NextOrd()
	if !ok || at != 3 || key != 9 {
		t.Fatalf("NextOrd = (%v, %d, %v), want (3, 9, true)", at, key, ok)
	}
}

// TestCheckpointSteadyStateAllocs verifies that a save/speculate/rewind
// round allocates nothing once the checkpoint buffers are warm — the
// contract behind the optimistic mode's 0 allocs/op bench gate.
func TestCheckpointSteadyStateAllocs(t *testing.T) {
	sim := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		sim.ScheduleKeyed(float64(i), uint64(i), "warm", fn)
	}
	cp := &Checkpoint{}
	sim.Save(cp)
	sim.Rewind(cp) // warm both buffer sets
	allocs := testing.AllocsPerRun(100, func() {
		sim.Save(cp)
		sim.RunUntil(sim.Now() + 4)
		sim.Rewind(cp)
	})
	if allocs > 0 {
		t.Fatalf("save/run/rewind cycle allocates %v/op, want 0", allocs)
	}
	if sim.Pending() != 64 {
		t.Fatalf("pending = %d, want 64", sim.Pending())
	}
	if !math.IsInf(sim.LastFired(), -1) {
		t.Fatalf("LastFired = %v after rewind to pre-run state, want -Inf", sim.LastFired())
	}
}
