// Package des provides a deterministic discrete-event simulation kernel:
// a simulation clock, a binary-heap event queue with stable FIFO
// tie-breaking, and cancellable timers.
//
// Every simulator in this repository — the Periodic Messages model in
// internal/periodic and the packet-level network simulator in
// internal/netsim — runs on this kernel. Determinism matters: given the
// same seed and the same event program, a simulation must replay exactly,
// so events scheduled for the same instant fire in scheduling order.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulation time in seconds. Using a named float64 keeps call
// sites honest about units without the overhead of a struct.
type Time = float64

// Event is a scheduled callback. The zero Event is inert.
type Event struct {
	at    Time
	seq   uint64 // insertion order; breaks ties deterministically
	index int    // heap index, -1 when not queued
	fn    func()
	label string
}

// At returns the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Label returns the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Scheduled reports whether the event is still pending in its queue.
func (e *Event) Scheduled() bool { return e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns a clock and an event queue. It is not safe for concurrent
// use; a simulation is a single logical thread of control.
type Simulator struct {
	now       Time
	queue     eventHeap
	seq       uint64
	processed uint64
	running   bool
	stopped   bool
}

// New returns a Simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Schedule queues fn to run at absolute time at. It panics if at precedes
// the current clock (scheduling into the past is always a bug) or is NaN.
// The label is kept for diagnostics and error messages.
func (s *Simulator) Schedule(at Time, label string, fn func()) *Event {
	if math.IsNaN(at) {
		panic("des: Schedule with NaN time")
	}
	if at < s.now {
		panic(fmt.Sprintf("des: Schedule(%q) at %v before now %v", label, at, s.now))
	}
	if fn == nil {
		panic("des: Schedule with nil fn")
	}
	e := &Event{at: at, seq: s.seq, fn: fn, label: label}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After queues fn to run delay seconds from now. Negative delays panic.
func (s *Simulator) After(delay Time, label string, fn func()) *Event {
	return s.Schedule(s.now+delay, label, fn)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already fired or was already cancelled is a no-op and returns false.
func (s *Simulator) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&s.queue, e.index)
	return true
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It returns false when the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the number of events processed by this call.
func (s *Simulator) Run() uint64 {
	return s.RunUntil(math.Inf(1))
}

// RunUntil executes events with timestamps <= horizon (or until Stop or an
// empty queue) and then advances the clock to min(horizon, next event time).
// It returns the number of events processed by this call.
func (s *Simulator) RunUntil(horizon Time) uint64 {
	if s.running {
		panic("des: RunUntil re-entered from within an event")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	var n uint64
	for len(s.queue) > 0 && !s.stopped {
		if s.queue[0].at > horizon {
			break
		}
		s.Step()
		n++
	}
	if !s.stopped && !math.IsInf(horizon, 1) && s.now < horizon {
		// Advance the clock to the horizon so repeated RunUntil calls
		// observe monotonic time even across idle gaps.
		s.now = horizon
	}
	return n
}

// RunCount executes at most n events. It returns the number processed,
// which is less than n only if the queue drained or Stop was called.
func (s *Simulator) RunCount(n uint64) uint64 {
	if s.running {
		panic("des: RunCount re-entered from within an event")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	var done uint64
	for done < n && len(s.queue) > 0 && !s.stopped {
		s.Step()
		done++
	}
	return done
}

// Stop halts the enclosing Run/RunUntil/RunCount after the current event
// returns. Calling Stop outside an event is harmless.
func (s *Simulator) Stop() { s.stopped = true }

// Ticker schedules fn repeatedly. The next interval is obtained from the
// period callback after each firing, which is how jittered routing timers
// are expressed (the period callback draws from the jitter policy).
type Ticker struct {
	sim    *Simulator
	event  *Event
	period func() Time
	fn     func()
	label  string
	stopit bool
}

// NewTicker creates and starts a ticker whose first firing is period() from
// now and which re-arms itself with a fresh period() after each firing.
func (s *Simulator) NewTicker(label string, period func() Time, fn func()) *Ticker {
	t := &Ticker{sim: s, period: period, fn: fn, label: label}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	d := t.period()
	if d < 0 {
		panic("des: ticker period() returned negative delay")
	}
	t.event = t.sim.After(d, t.label, func() {
		t.fn()
		if !t.stopit {
			t.arm()
		}
	})
}

// Stop cancels future firings. If called from within fn it prevents the
// re-arm; otherwise it cancels the pending event.
func (t *Ticker) Stop() {
	t.stopit = true
	t.sim.Cancel(t.event)
}

// Reset cancels the pending firing and re-arms with a fresh period() from
// the current instant. This models a router resetting its routing timer.
func (t *Ticker) Reset() {
	t.sim.Cancel(t.event)
	t.stopit = false
	t.arm()
}

// NextAt returns the absolute time of the pending firing, or +Inf if the
// ticker is stopped.
func (t *Ticker) NextAt() Time {
	if t.event == nil || !t.event.Scheduled() {
		return math.Inf(1)
	}
	return t.event.At()
}
