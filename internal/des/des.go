// Package des provides a deterministic discrete-event simulation kernel:
// a simulation clock, an event queue with stable FIFO tie-breaking, and
// cancellable timers. Two queue backends are available — an indexed
// binary heap (the default and reference) and a Brown-style calendar
// queue for deep queues — selected per Simulator or via the
// ROUTESYNC_DES_BACKEND environment variable; see Backend.
//
// Every simulator in this repository — the Periodic Messages model in
// internal/periodic and the packet-level network simulator in
// internal/netsim — runs on this kernel. Determinism matters: given the
// same seed and the same event program, a simulation must replay exactly,
// so events scheduled for the same instant fire in scheduling order —
// or, for events carrying a logical priority key (ScheduleKeyed), in key
// order, which makes the schedule reproducible even across differently
// partitioned parallel runs. RunBefore exposes the half-open execution
// window that conservative parallel simulation is built on.
//
// The kernel is steady-state allocation-free: events live in a pooled slot
// array owned by the Simulator and are recycled through a free list, so a
// long simulation allocates only while the pool grows to the peak
// concurrent event count. Event handles are generation-counted values —
// a handle to an event that has fired or been cancelled is recognized as
// stale (Scheduled reports false, Cancel is a no-op) even if its slot has
// been reused, so callers may retain handles without lifetime discipline.
package des

import (
	"fmt"
	"math"
)

// Time is simulation time in seconds. Using a named float64 keeps call
// sites honest about units without the overhead of a struct.
type Time = float64

// Event is a generation-counted handle to a scheduled callback. It is a
// small value, cheap to copy and store. The zero Event is inert: it is
// never Scheduled and cancelling it is a no-op.
type Event struct {
	sim  *Simulator
	slot int32
	gen  uint32
}

// event is the pooled storage behind an Event handle.
type event struct {
	at     Time
	key    uint64 // logical priority at equal times; 0 for unkeyed events
	seq    uint64 // insertion order; breaks remaining ties deterministically
	gen    uint32 // bumped on release; stale handles mismatch
	index  int32  // heap index or position within bucket, -1 when not queued
	bucket int32  // calendar backend: physical bucket holding the event
	fn     func()
	label  string
}

// live reports whether the handle still refers to a pending event.
func (e Event) live() (*event, bool) {
	if e.sim == nil || int(e.slot) >= len(e.sim.pool) {
		return nil, false
	}
	ev := &e.sim.pool[e.slot]
	if ev.gen != e.gen || ev.index < 0 {
		return nil, false
	}
	return ev, true
}

// At returns the time the event is scheduled for, or +Inf if the event
// already fired or was cancelled.
func (e Event) At() Time {
	if ev, ok := e.live(); ok {
		return ev.at
	}
	return math.Inf(1)
}

// Label returns the diagnostic label given at scheduling time, or "" if
// the event already fired or was cancelled.
func (e Event) Label() string {
	if ev, ok := e.live(); ok {
		return ev.label
	}
	return ""
}

// Scheduled reports whether the event is still pending in its queue.
func (e Event) Scheduled() bool {
	_, ok := e.live()
	return ok
}

// Observer receives kernel lifecycle notifications. All methods are called
// synchronously from within the simulation thread; implementations must not
// call back into the Simulator. depth is the queue length after the
// operation. A nil observer (the default) costs a single predictable branch
// per operation and zero allocations; implementations that only bump
// counters keep the hot paths allocation-free, since the arguments are
// scalars and the interface call does not escape them.
type Observer interface {
	// EventScheduled fires after Schedule/After queues an event.
	EventScheduled(at Time, depth int)
	// EventFired fires when Step dequeues an event, before its callback runs.
	EventFired(at Time, depth int)
	// EventCancelled fires when Cancel removes a pending event.
	EventCancelled(at Time, depth int)
}

// Simulator owns a clock and an event queue. It is not safe for concurrent
// use; a simulation is a single logical thread of control.
type Simulator struct {
	now       Time
	pool      []event
	free      []int32  // recycled pool slots
	queue     []int32  // BackendHeap: binary min-heap of pool slots
	cal       calendar // BackendCalendar state
	backend   Backend
	seq       uint64
	processed uint64
	// lastFired is the timestamp of the most recently executed event
	// (-Inf before the first); checkpoint/rewind and the optimistic
	// coordinator use it to detect execution past a commit bound.
	lastFired Time
	running   bool
	stopped   bool
	obs       Observer
}

// New returns a Simulator with the clock at zero, using DefaultBackend.
func New() *Simulator {
	return NewBackend(DefaultBackend())
}

// NewBackend returns a Simulator with the clock at zero using the given
// event-queue backend.
func NewBackend(b Backend) *Simulator {
	return &Simulator{backend: b, lastFired: math.Inf(-1)}
}

// Backend returns the event-queue backend this Simulator runs on.
func (s *Simulator) Backend() Backend { return s.backend }

// SetObserver installs obs (nil to remove). Observation is off by default.
func (s *Simulator) SetObserver(obs Observer) { s.obs = obs }

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int {
	if s.backend == BackendCalendar {
		return s.cal.size
	}
	return len(s.queue)
}

// qPush queues a pooled slot on the active backend.
func (s *Simulator) qPush(slot int32) {
	if s.backend == BackendCalendar {
		s.calPush(slot)
		return
	}
	s.queue = append(s.queue, slot)
	s.siftUp(len(s.queue) - 1)
}

// qPeek returns the slot of the earliest pending event, -1 when empty.
func (s *Simulator) qPeek() int32 {
	if s.backend == BackendCalendar {
		return s.calPeek()
	}
	if len(s.queue) == 0 {
		return -1
	}
	return s.queue[0]
}

// qRemove unqueues a pending slot (it stays pooled; release is separate).
func (s *Simulator) qRemove(slot int32) {
	if s.backend == BackendCalendar {
		s.calRemove(slot)
		return
	}
	s.removeAt(int(s.pool[slot].index))
}

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// less orders slots by (time, key, insertion order) — the contract shared
// by both queue backends. Unkeyed events carry key 0, so programs that
// never call ScheduleKeyed get pure (time, insertion order) FIFO exactly
// as before. Keyed events order by their logical key at equal times,
// which is what makes an ordering reproducible across differently-
// partitioned simulations: the key is derived from the event's *origin*
// (who scheduled it), not from when it happened to be inserted into this
// particular queue.
func (s *Simulator) less(a, b int32) bool {
	ea, eb := &s.pool[a], &s.pool[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	if ea.key != eb.key {
		return ea.key < eb.key
	}
	return ea.seq < eb.seq
}

func (s *Simulator) siftUp(i int) {
	q := s.queue
	slot := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(slot, q[parent]) {
			break
		}
		q[i] = q[parent]
		s.pool[q[i]].index = int32(i)
		i = parent
	}
	q[i] = slot
	s.pool[slot].index = int32(i)
}

func (s *Simulator) siftDown(i int) {
	q := s.queue
	n := len(q)
	slot := q[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && s.less(q[r], q[child]) {
			child = r
		}
		if !s.less(q[child], slot) {
			break
		}
		q[i] = q[child]
		s.pool[q[i]].index = int32(i)
		i = child
	}
	q[i] = slot
	s.pool[slot].index = int32(i)
}

// removeAt deletes the heap entry at index i, restoring heap order.
func (s *Simulator) removeAt(i int) {
	n := len(s.queue) - 1
	last := s.queue[n]
	s.queue = s.queue[:n]
	if i == n {
		return
	}
	s.queue[i] = last
	s.pool[last].index = int32(i)
	if i > 0 && s.less(last, s.queue[(i-1)/2]) {
		s.siftUp(i)
	} else {
		s.siftDown(i)
	}
}

// release returns a slot to the free list, invalidating outstanding
// handles and dropping the callback reference for the garbage collector.
func (s *Simulator) release(slot int32) {
	ev := &s.pool[slot]
	ev.gen++
	ev.index = -1
	ev.fn = nil
	ev.label = ""
	s.free = append(s.free, slot)
}

// Schedule queues fn to run at absolute time at. It panics if at precedes
// the current clock (scheduling into the past is always a bug) or is NaN.
// The label is kept for diagnostics and error messages.
func (s *Simulator) Schedule(at Time, label string, fn func()) Event {
	return s.ScheduleKeyed(at, 0, label, fn)
}

// ScheduleKeyed queues fn to run at absolute time at with a logical
// priority key: at equal timestamps events fire in ascending key order
// (ties on equal keys fall back to insertion order). Callers that need an
// event ordering independent of *when* events were inserted — the
// partitioned network simulator, where the same packet arrival may be
// queued at transmission time (sequential run) or at a window barrier
// (partitioned run) — derive the key from the event's origin and a
// per-origin sequence number, making the fire order a pure function of
// the simulated system. Keyed and unkeyed events may share a queue;
// unkeyed events carry key 0 and therefore sort first at their timestamp.
func (s *Simulator) ScheduleKeyed(at Time, key uint64, label string, fn func()) Event {
	if math.IsNaN(at) {
		panic("des: Schedule with NaN time")
	}
	if at < s.now {
		panic(fmt.Sprintf("des: Schedule(%q) at %v before now %v", label, at, s.now))
	}
	if fn == nil {
		panic("des: Schedule with nil fn")
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.pool = append(s.pool, event{index: -1})
		slot = int32(len(s.pool) - 1)
	}
	ev := &s.pool[slot]
	ev.at = at
	ev.key = key
	ev.seq = s.seq
	ev.fn = fn
	ev.label = label
	s.seq++
	s.qPush(slot)
	if s.obs != nil {
		s.obs.EventScheduled(at, s.Pending())
	}
	return Event{sim: s, slot: slot, gen: ev.gen}
}

// After queues fn to run delay seconds from now. Negative delays panic.
func (s *Simulator) After(delay Time, label string, fn func()) Event {
	return s.Schedule(s.now+delay, label, fn)
}

// AfterKeyed queues fn to run delay seconds from now with a logical
// priority key; see ScheduleKeyed.
func (s *Simulator) AfterKeyed(delay Time, key uint64, label string, fn func()) Event {
	return s.ScheduleKeyed(s.now+delay, key, label, fn)
}

// NextAt returns the timestamp of the earliest pending event, or +Inf when
// the queue is empty. The partitioned runtime uses this to pick the next
// synchronization window without executing anything.
func (s *Simulator) NextAt() Time {
	slot := s.qPeek()
	if slot < 0 {
		return math.Inf(1)
	}
	return s.pool[slot].at
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already fired or was already cancelled is a no-op and returns false.
func (s *Simulator) Cancel(e Event) bool {
	ev, ok := e.live()
	if !ok || e.sim != s {
		return false
	}
	at := ev.at
	s.qRemove(e.slot)
	s.release(e.slot)
	if s.obs != nil {
		s.obs.EventCancelled(at, s.Pending())
	}
	return true
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It returns false when the queue is empty.
func (s *Simulator) Step() bool {
	slot := s.qPeek()
	if slot < 0 {
		return false
	}
	s.qRemove(slot)
	ev := &s.pool[slot]
	s.now = ev.at
	s.lastFired = ev.at
	fn := ev.fn
	s.release(slot)
	s.processed++
	if s.obs != nil {
		s.obs.EventFired(s.now, s.Pending())
	}
	fn()
	return true
}

// Run executes events until the queue drains or Stop is called. It returns
// the number of events processed by this call.
func (s *Simulator) Run() uint64 {
	return s.RunUntil(math.Inf(1))
}

// RunUntil executes events with timestamps <= horizon (or until Stop or an
// empty queue) and then advances the clock to min(horizon, next event time).
// It returns the number of events processed by this call.
func (s *Simulator) RunUntil(horizon Time) uint64 {
	if s.running {
		panic("des: RunUntil re-entered from within an event")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	var n uint64
	for !s.stopped {
		slot := s.qPeek()
		if slot < 0 || s.pool[slot].at > horizon {
			break
		}
		s.Step()
		n++
	}
	if !s.stopped && !math.IsInf(horizon, 1) && s.now < horizon {
		// Advance the clock to the horizon so repeated RunUntil calls
		// observe monotonic time even across idle gaps.
		s.now = horizon
	}
	return n
}

// RunBefore executes events with timestamps strictly less than horizon (or
// until Stop or an empty queue) and then advances the clock to horizon.
// The half-open window [now, horizon) is the primitive behind conservative
// parallel execution: a logical process granted a window may safely run
// every event before the window's end, while events *at* the end belong to
// the next window (a boundary arrival injected at the barrier could still
// land exactly at horizon and must order against them). It returns the
// number of events processed by this call. horizon must be finite.
func (s *Simulator) RunBefore(horizon Time) uint64 {
	if s.running {
		panic("des: RunBefore re-entered from within an event")
	}
	if math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		panic("des: RunBefore horizon must be finite")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()

	var n uint64
	for !s.stopped {
		slot := s.qPeek()
		if slot < 0 || s.pool[slot].at >= horizon {
			break
		}
		s.Step()
		n++
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
	return n
}

// RunCount executes at most n events. It returns the number processed,
// which is less than n only if the queue drained or Stop was called.
func (s *Simulator) RunCount(n uint64) uint64 {
	if s.running {
		panic("des: RunCount re-entered from within an event")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	var done uint64
	for done < n && s.Pending() > 0 && !s.stopped {
		s.Step()
		done++
	}
	return done
}

// Stop halts the enclosing Run/RunUntil/RunCount after the current event
// returns. Calling Stop outside an event is harmless.
func (s *Simulator) Stop() { s.stopped = true }

// Ticker schedules fn repeatedly. The next interval is obtained from the
// period callback after each firing, which is how jittered routing timers
// are expressed (the period callback draws from the jitter policy).
//
// The re-arm closure is allocated once at construction, so a running
// ticker adds no per-firing garbage beyond the kernel's pooled event.
type Ticker struct {
	sim    *Simulator
	event  Event
	period func() Time
	fn     func()
	fire   func() // hoisted re-arm closure, allocated once
	label  string
	stopit bool
}

// NewTicker creates and starts a ticker whose first firing is period() from
// now and which re-arms itself with a fresh period() after each firing.
func (s *Simulator) NewTicker(label string, period func() Time, fn func()) *Ticker {
	t := &Ticker{sim: s, period: period, fn: fn, label: label}
	t.fire = func() {
		t.fn()
		if !t.stopit {
			t.arm()
		}
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	d := t.period()
	if d < 0 {
		panic("des: ticker period() returned negative delay")
	}
	t.event = t.sim.After(d, t.label, t.fire)
}

// Stop cancels future firings. If called from within fn it prevents the
// re-arm; otherwise it cancels the pending event.
func (t *Ticker) Stop() {
	t.stopit = true
	t.sim.Cancel(t.event)
}

// Reset cancels the pending firing and re-arms with a fresh period() from
// the current instant. This models a router resetting its routing timer.
func (t *Ticker) Reset() {
	t.sim.Cancel(t.event)
	t.stopit = false
	t.arm()
}

// NextAt returns the absolute time of the pending firing, or +Inf if the
// ticker is stopped.
func (t *Ticker) NextAt() Time {
	return t.event.At()
}
