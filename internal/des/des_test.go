package des

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"routesync/internal/rng"
)

func TestScheduleAndRunOrder(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(3, "c", func() { got = append(got, 3) })
	s.Schedule(1, "a", func() { got = append(got, 1) })
	s.Schedule(2, "b", func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", s.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(5, "tie", func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of insertion order at %d: %v", i, got[i])
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(10, "x", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	s.Schedule(5, "past", func() {})
}

func TestScheduleNaNPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling NaN did not panic")
		}
	}()
	s.Schedule(math.NaN(), "nan", func() {})
}

func TestScheduleNilFnPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn did not panic")
		}
	}()
	s.Schedule(1, "nil", nil)
}

func TestAfter(t *testing.T) {
	s := New()
	var at Time
	s.Schedule(10, "outer", func() {
		s.After(2.5, "inner", func() { at = s.Now() })
	})
	s.Run()
	if at != 12.5 {
		t.Fatalf("After fired at %v, want 12.5", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(1, "x", func() { fired = true })
	if !s.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(e) {
		t.Fatal("double Cancel returned true")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Cancel(Event{}) {
		t.Fatal("Cancel of the zero Event returned true")
	}
}

// TestStaleHandleAfterReuse checks generation counting: a handle to a
// fired event must stay stale even after its pool slot is recycled by a
// later Schedule.
func TestStaleHandleAfterReuse(t *testing.T) {
	s := New()
	first := s.Schedule(1, "first", func() {})
	s.Run()
	if first.Scheduled() {
		t.Fatal("fired event still reports Scheduled")
	}
	// The pool has exactly one slot; this reuses it.
	second := s.Schedule(2, "second", func() {})
	if first.Scheduled() {
		t.Fatal("stale handle went live after slot reuse")
	}
	if s.Cancel(first) {
		t.Fatal("stale handle cancelled the recycled slot's event")
	}
	if !second.Scheduled() {
		t.Fatal("fresh handle not scheduled")
	}
	if !math.IsInf(first.At(), 1) || first.Label() != "" {
		t.Fatalf("stale handle At/Label = %v/%q, want +Inf/\"\"", first.At(), first.Label())
	}
	s.Run()
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	events := make([]Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		events[i] = s.Schedule(Time(i), "e", func() { got = append(got, i) })
	}
	s.Cancel(events[4])
	s.Cancel(events[7])
	s.Run()
	if len(got) != 8 {
		t.Fatalf("got %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("events out of order after cancel: %v", got)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 10, 20} {
		at := at
		s.Schedule(at, "e", func() { fired = append(fired, at) })
	}
	n := s.RunUntil(5)
	if n != 3 {
		t.Fatalf("RunUntil(5) processed %d, want 3", n)
	}
	if s.Now() != 5 {
		t.Fatalf("clock at %v after RunUntil(5), want 5", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	n = s.RunUntil(100)
	if n != 2 {
		t.Fatalf("second RunUntil processed %d, want 2", n)
	}
	if s.Now() != 100 {
		t.Fatalf("clock = %v, want 100", s.Now())
	}
}

func TestRunUntilEmptyAdvancesClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("clock = %v, want 42", s.Now())
	}
}

func TestRunCount(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.Schedule(Time(i), "e", func() { count++ })
	}
	if n := s.RunCount(4); n != 4 || count != 4 {
		t.Fatalf("RunCount(4) = %d, count = %d", n, count)
	}
	if n := s.RunCount(100); n != 6 || count != 10 {
		t.Fatalf("RunCount(100) = %d, count = %d", n, count)
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(Time(i), "e", func() {
			count++
			if i == 4 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 5 {
		t.Fatalf("processed %d events before Stop, want 5", count)
	}
	// A subsequent Run picks up the remainder.
	s.Run()
	if count != 10 {
		t.Fatalf("total %d events, want 10", count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	var got []Time
	s.Schedule(1, "a", func() {
		got = append(got, s.Now())
		s.After(1, "b", func() { got = append(got, s.Now()) })
		s.Schedule(1.5, "c", func() { got = append(got, s.Now()) })
	})
	s.Run()
	want := []Time{1, 1.5, 2}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	s := New()
	s.Schedule(1, "a", func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		s.Run()
	})
	s.Run()
}

// TestHeapOrderingProperty drives the queue with random timestamps and
// checks events always pop in nondecreasing time order.
func TestHeapOrderingProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		s := New()
		n := 5 + r.Intn(200)
		for i := 0; i < n; i++ {
			s.Schedule(r.Uniform(0, 1000), "e", func() {})
		}
		last := Time(-1)
		ok := true
		for s.Pending() > 0 {
			s.Step()
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		}
		return ok
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestInterleavedScheduleCancelProperty randomly schedules and cancels and
// verifies the processed+cancelled+pending accounting stays consistent.
func TestInterleavedScheduleCancelProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		s := New()
		var live []Event
		scheduled, cancelled := 0, 0
		for i := 0; i < 300; i++ {
			if len(live) > 0 && r.Bernoulli(0.3) {
				idx := r.Intn(len(live))
				if s.Cancel(live[idx]) {
					cancelled++
				}
				live = append(live[:idx], live[idx+1:]...)
			} else {
				live = append(live, s.Schedule(r.Uniform(0, 100), "e", func() {}))
				scheduled++
			}
		}
		s.Run()
		return int(s.Processed()) == scheduled-cancelled
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTickerJitteredPeriods(t *testing.T) {
	s := New()
	r := rng.New(1)
	var fires []Time
	tk := s.NewTicker("rt", func() Time { return r.Uniform(120.89, 121.11) }, func() {
		fires = append(fires, s.Now())
	})
	s.RunUntil(1000)
	tk.Stop()
	if len(fires) < 7 || len(fires) > 9 {
		t.Fatalf("got %d firings in 1000s with ~121s period, want ~8", len(fires))
	}
	for i := 1; i < len(fires); i++ {
		gap := fires[i] - fires[i-1]
		if gap < 120.89 || gap >= 121.11 {
			t.Fatalf("gap %d = %v outside jitter window", i, gap)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := New()
	count := 0
	var tk *Ticker
	tk = s.NewTicker("t", func() Time { return 1 }, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.RunUntil(100)
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3", count)
	}
}

func TestTickerReset(t *testing.T) {
	s := New()
	var fires []Time
	tk := s.NewTicker("t", func() Time { return 10 }, func() {
		fires = append(fires, s.Now())
	})
	// Reset at t=5; next firing should be at 15, not 10.
	s.Schedule(5, "reset", func() { tk.Reset() })
	s.RunUntil(16)
	tk.Stop()
	if len(fires) != 1 || fires[0] != 15 {
		t.Fatalf("fires = %v, want [15]", fires)
	}
}

func TestTickerNextAt(t *testing.T) {
	s := New()
	tk := s.NewTicker("t", func() Time { return 7 }, func() {})
	if tk.NextAt() != 7 {
		t.Fatalf("NextAt = %v, want 7", tk.NextAt())
	}
	tk.Stop()
	if !math.IsInf(tk.NextAt(), 1) {
		t.Fatalf("NextAt after Stop = %v, want +Inf", tk.NextAt())
	}
}

func TestTickerNegativePeriodPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative ticker period did not panic")
		}
	}()
	s.NewTicker("bad", func() Time { return -1 }, func() {})
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		r := rng.New(1)
		for j := 0; j < 1000; j++ {
			s.Schedule(r.Uniform(0, 1000), "e", func() {})
		}
		s.Run()
	}
}
