package des

import (
	"math"
	"testing"

	"routesync/internal/rng"
)

// Keyed events at the same timestamp must fire in key order regardless of
// insertion order, on both backends — this is the property the partitioned
// netsim runtime depends on for K-independence.
func TestKeyedOrderAtEqualTime(t *testing.T) {
	for _, b := range []Backend{BackendHeap, BackendCalendar} {
		s := NewBackend(b)
		var got []uint64
		// Insert in a scrambled key order.
		for _, k := range []uint64{7, 2, 9, 1, 5, 3, 8, 4, 6} {
			k := k
			s.ScheduleKeyed(10, k, "keyed", func() { got = append(got, k) })
		}
		s.Run()
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("%v: keyed events out of key order: %v", b, got)
			}
		}
	}
}

// Equal keys fall back to insertion order, and unkeyed events (key 0) sort
// before every keyed event at the same instant.
func TestKeyedTiesAndUnkeyedFirst(t *testing.T) {
	s := New()
	var got []string
	s.ScheduleKeyed(1, 4, "k4-a", func() { got = append(got, "k4-a") })
	s.ScheduleKeyed(1, 4, "k4-b", func() { got = append(got, "k4-b") })
	s.ScheduleKeyed(1, 2, "k2", func() { got = append(got, "k2") })
	s.Schedule(1, "unkeyed", func() { got = append(got, "unkeyed") })
	s.Run()
	want := []string{"unkeyed", "k2", "k4-a", "k4-b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// The ordering of keyed events must not depend on insertion order even
// across interleaved times and keys: two simulators fed the same events in
// different insertion orders replay identically.
func TestKeyedInsertionOrderIndependence(t *testing.T) {
	type ev struct {
		at  Time
		key uint64
	}
	r := rng.New(42)
	var evs []ev
	for i := 0; i < 400; i++ {
		evs = append(evs, ev{at: Time(r.Intn(20)), key: uint64(1 + r.Intn(50))})
	}
	run := func(order []int) []ev {
		s := New()
		var got []ev
		for _, idx := range order {
			e := evs[idx]
			s.ScheduleKeyed(e.at, e.key, "p", func() { got = append(got, e) })
		}
		s.Run()
		return got
	}
	fwd := make([]int, len(evs))
	rev := make([]int, len(evs))
	for i := range evs {
		fwd[i] = i
		rev[i] = len(evs) - 1 - i
	}
	a, b := run(fwd), run(rev)
	for i := range a {
		// Equal (at, key) pairs are insertion-ordered and may legitimately
		// swap; netsim guarantees unique keys per (node, time), so only
		// compare the (at, key) sequence.
		if a[i] != b[i] {
			t.Fatalf("event %d differs across insertion orders: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestNextAt(t *testing.T) {
	s := New()
	if !math.IsInf(s.NextAt(), 1) {
		t.Fatalf("NextAt on empty queue = %v, want +Inf", s.NextAt())
	}
	s.Schedule(7, "a", func() {})
	s.Schedule(3, "b", func() {})
	if s.NextAt() != 3 {
		t.Fatalf("NextAt = %v, want 3", s.NextAt())
	}
	if s.Processed() != 0 {
		t.Fatal("NextAt must not execute events")
	}
}

func TestRunBeforeIsStrict(t *testing.T) {
	s := New()
	var got []Time
	for _, at := range []Time{1, 2, 3, 3, 4} {
		at := at
		s.Schedule(at, "e", func() { got = append(got, at) })
	}
	n := s.RunBefore(3)
	if n != 2 {
		t.Fatalf("RunBefore(3) processed %d events, want 2 (strictly before)", n)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v after RunBefore(3), want 3", s.Now())
	}
	// An event injected exactly at the old horizon must still be runnable
	// (this is how barrier arrivals land at a window boundary).
	s.Schedule(3, "boundary", func() { got = append(got, -3) })
	s.RunBefore(5)
	want := []Time{1, 2, 3, 3, -3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestRunBeforeEmptyAdvancesClock(t *testing.T) {
	s := New()
	s.RunBefore(12)
	if s.Now() != 12 {
		t.Fatalf("clock = %v, want 12", s.Now())
	}
}

func TestRunBeforeInfinitePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("RunBefore(+Inf) did not panic")
		}
	}()
	s.RunBefore(math.Inf(1))
}

func TestAfterKeyed(t *testing.T) {
	s := New()
	var got []string
	s.Schedule(5, "warp", func() {
		s.AfterKeyed(0, 2, "b", func() { got = append(got, "b") })
		s.AfterKeyed(0, 1, "a", func() { got = append(got, "a") })
	})
	s.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("AfterKeyed order %v, want [a b]", got)
	}
}
