package des

import "testing"

// countObserver is a minimal Observer for hook-order and alloc tests.
type countObserver struct {
	scheduled, fired, cancelled int
	maxDepth                    int
	lastAt                      Time
}

func (o *countObserver) EventScheduled(at Time, depth int) {
	o.scheduled++
	o.lastAt = at
	if depth > o.maxDepth {
		o.maxDepth = depth
	}
}
func (o *countObserver) EventFired(at Time, depth int)     { o.fired++; o.lastAt = at }
func (o *countObserver) EventCancelled(at Time, depth int) { o.cancelled++; o.lastAt = at }

func TestObserverCounts(t *testing.T) {
	sim := New()
	obs := &countObserver{}
	sim.SetObserver(obs)

	nop := func() {}
	sim.Schedule(1, "a", nop)
	ev := sim.Schedule(2, "b", nop)
	sim.Schedule(3, "c", nop)
	if obs.scheduled != 3 {
		t.Fatalf("scheduled = %d, want 3", obs.scheduled)
	}
	if obs.maxDepth != 3 {
		t.Fatalf("maxDepth = %d, want 3", obs.maxDepth)
	}

	sim.Cancel(ev)
	if obs.cancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", obs.cancelled)
	}
	// The cancel notification carries the cancelled event's time.
	if obs.lastAt != 2 {
		t.Fatalf("cancel lastAt = %v, want 2", obs.lastAt)
	}

	for sim.Step() {
	}
	if obs.fired != 2 {
		t.Fatalf("fired = %d, want 2 (one cancelled)", obs.fired)
	}
}

func TestObserverFiredBeforeCallback(t *testing.T) {
	// The fire notification must precede the event callback, so a callback
	// that schedules follow-up work observes its own firing first.
	sim := New()
	obs := &countObserver{}
	sim.SetObserver(obs)
	firedAtCallback := -1
	sim.Schedule(1, "probe", func() { firedAtCallback = obs.fired })
	sim.Step()
	if firedAtCallback != 1 {
		t.Fatalf("callback saw fired = %d, want 1", firedAtCallback)
	}
}

// TestStepNoObserverAllocs is the alloc guard for the nil-observer hot
// path: adding the observer hooks must not regress the kernel's
// steady-state 0 allocs/op.
func TestStepNoObserverAllocs(t *testing.T) {
	sim := New()
	nop := func() {}
	at := Time(0)
	for i := 0; i < 64; i++ {
		at += 1
		sim.Schedule(at, "warm", nop)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sim.Step()
		at += 1
		sim.Schedule(at, "warm", nop)
	})
	if allocs != 0 {
		t.Fatalf("nil-observer schedule+step = %v allocs/op, want 0", allocs)
	}
}

// TestStepObservedAllocs pins the observed path too: a value-free
// observer like countObserver adds counting work but no allocation.
func TestStepObservedAllocs(t *testing.T) {
	sim := New()
	sim.SetObserver(&countObserver{})
	nop := func() {}
	at := Time(0)
	for i := 0; i < 64; i++ {
		at += 1
		sim.Schedule(at, "warm", nop)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sim.Step()
		at += 1
		sim.Schedule(at, "warm", nop)
	})
	if allocs != 0 {
		t.Fatalf("observed schedule+step = %v allocs/op, want 0", allocs)
	}
}

func TestCancelNoObserverAllocs(t *testing.T) {
	sim := New()
	nop := func() {}
	// Warm the event pool so the measured loop recycles slots.
	ev := sim.Schedule(1e9, "warm", nop)
	sim.Cancel(ev)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		ev := sim.Schedule(Time(i)+1e9, "churn", nop)
		sim.Cancel(ev)
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel = %v allocs/op, want 0", allocs)
	}
}
