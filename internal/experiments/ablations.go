package experiments

import (
	"math"

	"routesync/internal/jitter"
	"routesync/internal/markov"
	"routesync/internal/netsim"
	"routesync/internal/periodic"
	"routesync/internal/routing"
	"routesync/internal/stats"
	"routesync/internal/trace"
)

// AblationTimerPolicy (DESIGN.md A1) contrasts the paper's
// reset-after-processing timer with the RFC 1058 reset-on-expiry
// alternative: the former synchronizes from an unsynchronized start and
// (with enough jitter) breaks up a synchronized one; the latter does
// neither — it is immune to coupling but cannot repair synchronization
// caused by simultaneous restarts when the period is deterministic.
func AblationTimerPolicy(c ModelConfig) *Result {
	c = c.Defaults()
	r := &Result{
		ID:    "ablation_timer_policy",
		Title: "timer reset policy: coupled (paper) vs clock-driven (RFC 1058)",
		Plot: trace.PlotOptions{
			XLabel: "time (s)", YLabel: "largest cluster size",
			YMin: 0, YMax: float64(c.N),
		},
	}
	for _, mode := range []periodic.TimerReset{periodic.ResetAfterProcessing, periodic.ResetOnExpiry} {
		cfg := periodic.Config{
			N: c.N, Tc: c.Tc,
			Jitter:   jitter.Uniform{Tp: c.Tp, Tr: c.Tr},
			Reset:    mode,
			Seed:     c.Seed,
			Observer: c.Obs,
		}
		s := periodic.New(cfg)
		times, sizes := s.LargestPerRound(c.Horizon)
		ser := stats.Series{Name: mode.String()}
		for i := range times {
			ser.Append(times[i], float64(sizes[i]))
		}
		r.Series = append(r.Series, ser.Downsample(1+ser.Len()/2000))

		s2 := periodic.New(cfg)
		res := s2.RunUntilSynchronized(c.Horizon)
		if res.Reached {
			r.Notef("%s: synchronized after %.0f rounds", mode, res.Rounds)
		} else {
			r.Notef("%s: never synchronized within %.1es", mode, c.Horizon)
		}
	}
	return r
}

// AblationSolver (DESIGN.md A2) compares the exact birth–death hitting
// times with the paper's printed Eq 3–6 recursion under both t(j,·)
// variants. With the conditional wait time the recursion is exact; with
// the printed t values it understates the times by a bounded factor.
func AblationSolver(c MarkovConfig, tr float64) *Result {
	c = c.Defaults()
	if tr == 0 {
		tr = 0.2
	}
	ch, err := markov.New(markov.Params{N: c.N, Tp: c.Tp, Tr: tr, Tc: c.Tc, F2: c.F2})
	if err != nil {
		panic(err)
	}
	exact := ch.F()
	cond := ch.PaperF(markov.TConditional)
	printed := ch.PaperF(markov.TPrinted)
	exSer := stats.Series{Name: "exact birth-death"}
	condSer := stats.Series{Name: "Eq3 + conditional t"}
	prSer := stats.Series{Name: "Eq3 + printed t"}
	maxCondDiff, maxRatio := 0.0, 0.0
	for i := 2; i <= c.N; i++ {
		exSer.Append(float64(i), exact[i])
		condSer.Append(float64(i), cond[i])
		prSer.Append(float64(i), printed[i])
		if exact[i] > 0 && !math.IsInf(exact[i], 1) {
			d := math.Abs(cond[i]-exact[i]) / exact[i]
			if d > maxCondDiff {
				maxCondDiff = d
			}
			if ratio := exact[i] / printed[i]; ratio > maxRatio {
				maxRatio = ratio
			}
		}
	}
	r := &Result{
		ID:     "ablation_solver",
		Title:  "Markov solvers: exact vs the paper's printed recursion",
		Series: []stats.Series{exSer, condSer, prSer},
		Plot: trace.PlotOptions{
			XLabel: "cluster size i", YLabel: "f(i) rounds (log)", LogY: true,
		},
	}
	r.Notef("conditional-t recursion matches exact solver within %.2g relative", maxCondDiff)
	r.Notef("printed-t recursion understates f(i) by up to %.2f×", maxRatio)
	return r
}

// AblationDelivery (DESIGN.md A3) probes the paper's §4
// immediate-notification assumption on the packet substrate: two coupled
// routers with deterministic timers are started 50 ms apart and the
// propagation delay of their shared LAN is swept. Lock-step survives as
// long as a neighbor's update (sent at timer expiry) arrives inside the
// local busy window; once the delay exceeds the processing window the
// coupling — and with it the paper's mechanism — disappears.
func AblationDelivery(delays []float64, seed int64) *Result {
	if len(delays) == 0 {
		delays = []float64{0, 0.01, 0.05, 0.2, 0.5}
	}
	const proc = 0.3 // seconds of CPU per message
	ser := stats.Series{Name: "send-time spread after 10 rounds"}
	r := &Result{
		ID:    "ablation_delivery",
		Title: "propagation delay vs timer coupling (two routers, 50 ms apart)",
		Plot: trace.PlotOptions{
			XLabel: "LAN propagation delay (s)", YLabel: "final send spread (s)",
		},
	}
	for _, d := range delays {
		net := netsim.NewNetwork(seed + 1)
		a := net.NewNode("a", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
		b := net.NewNode("b", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
		net.NewLAN([]*netsim.Node{a, b}, netsim.LANConfig{Delay: d})
		cfg := routing.Config{
			Profile: routing.RIP(),
			Jitter:  jitter.None{Tp: 30},
			Costs:   routing.Costs{MinPrepare: proc, MinProcess: proc},
			Seed:    seed,
		}
		agA := routing.NewAgent(a, cfg)
		agB := routing.NewAgent(b, cfg)
		var lastA, lastB float64
		agA.OnSend = func(t float64, trig bool) {
			if !trig {
				lastA = t
			}
		}
		agB.OnSend = func(t float64, trig bool) {
			if !trig {
				lastB = t
			}
		}
		agA.Start(1.0)
		agB.Start(1.05)
		net.RunUntil(10 * 30.9)
		spread := math.Abs(lastA - lastB)
		ser.Append(d, spread)
		r.Notef("delay %.3fs: final spread %.3fs (%s)", d, spread,
			lockLabel(spread))
	}
	r.Series = []stats.Series{ser}
	return r
}

func lockLabel(spread float64) string {
	if spread < 1e-9 {
		return "lock-step"
	}
	return "uncoupled"
}

// AblationQueueing contrasts router input-buffer policies during update
// stalls in the Figure 1 scenario: no buffering (every packet arriving
// during a stall dies — pure loss) versus a small input queue drained
// serially at a per-packet forwarding cost (some packets survive with
// inflated RTTs — the paper's Figure 1 shows both tall RTT spikes and
// drops). The trade is visible as loss rate versus worst-case RTT.
func AblationQueueing(pings int, seed int64) *Result {
	if pings == 0 {
		pings = 500
	}
	res := &Result{
		ID:    "ablation_queueing",
		Title: "router input buffering during update stalls: loss vs delay",
		Plot: trace.PlotOptions{
			XLabel: "ping number", YLabel: "rtt (s, drops at -0.1)",
		},
	}
	type variant struct {
		name  string
		queue int
		fcost float64
	}
	for _, v := range []variant{
		{"drop-all", 0, 0},
		{"queue-8-serial", 8, 0.02},
	} {
		cfg := PathConfig{InputQueueCap: v.queue, ForwardCost: v.fcost, Seed: seed}
		r, ping := Fig1(cfg, pings)
		r.Series[0].Name = v.name
		res.Series = append(res.Series, r.Series[0])
		res.Notef("%s: loss %.1f%%, median rtt %.3fs, p99 rtt %.3fs",
			v.name, 100*ping.LossRate(), ping.RTTQuantile(0.5), ping.RTTQuantile(0.99))
	}
	res.Notef("buffering converts some losses into delay spikes; the periodic signature remains either way")
	return res
}
