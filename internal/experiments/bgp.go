package experiments

import (
	"fmt"
	"math"
	"sort"

	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/parallel"
	"routesync/internal/pathvector"
	"routesync/internal/stats"
	"routesync/internal/trace"
)

// ext_bgp replays the paper's question one protocol layer up: in a
// path-vector internetwork the MRAI batching timer is itself a periodic
// timer, weakly coupled to its neighbors' timers through the updates it
// batches, so MRAI rounds can synchronize into network-wide update
// bursts exactly as RIP periods synchronize in §4. The experiment sweeps
// AS-level preferential-attachment topologies from 1k to 10k ASes under
// none/uniform jitter × MRAI {0, 5 s, 30 s} and measures (a) round
// synchronization as the largest-cluster fraction of per-AS flush phases
// (the paper's Figure-4 metric applied to MRAI rounds), (b) update-burst
// size distributions (p95-to-mean bin ratio), and (c) the length of the
// path-exploration storm a prefix withdrawal triggers. Runs execute on
// the conservative parallel engine; all reported metrics are invariant
// across the partition count K and both DES backends.

// BGPConfig parameterizes ExtBGP.
type BGPConfig struct {
	// Sizes lists the AS counts to sweep; nil means 1000 → 10000.
	Sizes []int
	// MRAIs lists the MRAI settings in seconds (0 disables batching);
	// nil means {0, 5, 30}.
	MRAIs []float64
	// Horizon is the simulated duration per run; zero means 160 s.
	Horizon float64
	// Jobs requests K logical processes (0: one per CPU). Results do not
	// depend on it.
	Jobs int
	// Seed drives topology and jitter randomness.
	Seed int64
	// Obs observes every partition's simulator.
	Obs des.Observer
}

// bgpJitters is the jitter axis: the deterministic baseline and the
// paper's ±Tp/2 uniform randomization, applied to both the refresh
// period and the MRAI interval.
var bgpJitters = []string{"none", "uniform"}

// bgpRefreshPeriod is the periodic re-advertisement interval Tp.
const bgpRefreshPeriod = 30.0

// bgpOrigins is the bounded prefix set size (see package pathvector:
// RIB state stays Θ(origins·degree) per AS instead of Θ(N)).
const bgpOrigins = 32

// BGPScenario is one built instance of the BGP scale scenario, exposed
// so the benchmark harness times exactly what the experiment runs.
type BGPScenario struct {
	Net    *netsim.Network
	Graph  *netsim.ASGraph
	Agents []*pathvector.Agent
	// FlushTimes[i] collects agent i's update-flush instants; each slice
	// is appended only from the logical process owning that AS and is
	// pre-sized for the horizon, so recording never allocates during the
	// run.
	FlushTimes [][]float64
	// StormLast[i] / StormCount[i] record agent i's last best-route
	// change for the probe origin after the withdrawal (-1: none) and
	// how many such changes it made — the path-exploration storm.
	StormLast  []float64
	StormCount []int
	// Origins is the shared bounded prefix set every agent carries.
	Origins []netsim.NodeID
	// ASes and Partitions give the scale; MRAI the batching interval.
	ASes, Partitions int
	MRAI             float64
	// Horizon is the run length; WithdrawAt when the probe origin
	// withdraws its prefix. ProbeOrigin is the withdrawn AS (the seed
	// clique's first member — a transit hub, so the storm has fanout).
	Horizon, WithdrawAt float64
	ProbeOrigin         netsim.NodeID
}

// Run executes the scenario to its horizon.
func (s *BGPScenario) Run() { s.Net.RunUntil(s.Horizon) }

// BuildBGP wires one BGP scale run: a preferential-attachment AS graph
// (M=2) with Gao–Rexford relations from the generator's edge labels,
// one path-vector agent per AS, synchronized starts (the post-restart
// condition), a scheduled probe-prefix withdrawal, and per-AS flush and
// storm recorders. jit selects the jitter arm ("none" or "uniform").
func BuildBGP(ases, k int, mrai float64, jit string, seed int64, horizon float64, obs des.Observer) *BGPScenario {
	if k < 1 {
		k = 1
	}
	if k > ases {
		k = ases
	}
	nw := netsim.NewNetwork(seed)
	if obs != nil {
		nw.SetObserver(obs)
	}
	g := nw.BuildPreferentialAttachment(netsim.PreferentialAttachmentConfig{
		N: ases, M: 2,
		Link: netsim.LinkConfig{Delay: 0.01, Bandwidth: 10e6, QueueCap: 64},
		CPU:  &netsim.CPUConfig{Mode: netsim.CPUModeLegacy, InputQueueCap: 64},
		Seed: seed,
	})

	// Peer lists per AS, in edge-creation order (deterministic).
	peers := make([][]pathvector.PeerConfig, ases)
	degree := make([]int, ases)
	for _, e := range g.Edges {
		a, b := int(e.A.ID), int(e.B.ID)
		relA, relB := pathvector.RelPeer, pathvector.RelPeer
		if e.Rel == netsim.EdgeProviderCustomer {
			relA, relB = pathvector.RelCustomer, pathvector.RelProvider
		}
		peers[a] = append(peers[a], pathvector.PeerConfig{Link: e.Link, Rel: relA})
		peers[b] = append(peers[b], pathvector.PeerConfig{Link: e.Link, Rel: relB})
		degree[a]++
		degree[b]++
	}

	// Bounded origin set spread across the id space: the clique hubs and
	// a sample of later (stub-ward) ASes.
	nOrig := bgpOrigins
	if nOrig > ases {
		nOrig = ases
	}
	origins := make([]netsim.NodeID, nOrig)
	for i := range origins {
		origins[i] = g.Nodes[i*ases/nOrig].ID
	}

	blockSize := (ases + k - 1) / k
	// Pinned conservative: the path-vector agents do not register
	// rollback checkpoints yet, so the optimistic engine (including an
	// ambient ROUTESYNC_SYNC_MODE=optimistic sweep) must not speculate
	// through their RIB state. Lifting this needs pathvector (and
	// linkstate) Checkpointable implementations.
	nw.Partition(k, netsim.OwnerByBlock(blockSize, k, k), netsim.WithSyncMode(netsim.SyncConservative))

	sc := &BGPScenario{
		Net: nw, Graph: g,
		Origins: origins,
		ASes:    ases, Partitions: k,
		MRAI:        mrai,
		Horizon:     horizon,
		WithdrawAt:  0.45 * horizon,
		ProbeOrigin: origins[0],
		StormLast:   make([]float64, ases),
		StormCount:  make([]int, ases),
	}
	for i := range sc.StormLast {
		sc.StormLast[i] = -1
	}

	var refreshJit, mraiJit jitter.Policy
	switch jit {
	case "none":
		refreshJit = jitter.None{Tp: bgpRefreshPeriod}
		if mrai > 0 {
			mraiJit = jitter.None{Tp: mrai}
		}
	case "uniform":
		refreshJit = jitter.Uniform{Tp: bgpRefreshPeriod, Tr: bgpRefreshPeriod / 2}
		if mrai > 0 {
			mraiJit = jitter.Uniform{Tp: mrai, Tr: mrai / 2}
		}
	default:
		panic("experiments: unknown BGP jitter arm " + jit)
	}

	sc.Agents = make([]*pathvector.Agent, ases)
	sc.FlushTimes = make([][]float64, ases)
	for i, nd := range g.Nodes {
		cfg := pathvector.Config{
			Origins:       origins,
			Peers:         peers[i],
			RefreshPeriod: bgpRefreshPeriod,
			Jitter:        refreshJit,
			MRAI:          mrai,
			MRAIJitter:    mraiJit,
			PrepareCost:   0.002,
			ProcessCost:   0.0005,
			Seed:          seed*31 + int64(nd.ID),
		}
		ag := pathvector.NewAgent(nd, cfg)
		sc.Agents[i] = ag
		// Worst-case flushes: one per peer per refresh (plus storm
		// rounds); pre-sizing keeps the recorders allocation-free.
		sc.FlushTimes[i] = make([]float64, 0, degree[i]*(int(horizon/(bgpRefreshPeriod/2))+8)+32)
		slot := i
		ag.OnFlush = func(t float64, _ netsim.NodeID, _, _ int) {
			sc.FlushTimes[slot] = append(sc.FlushTimes[slot], t)
		}
		agent := ag
		ag.OnBestChange = func(origin netsim.NodeID, _ []netsim.NodeID) {
			if origin != sc.ProbeOrigin {
				return
			}
			if now := agent.Node().Now(); now >= sc.WithdrawAt {
				sc.StormLast[slot] = now
				sc.StormCount[slot]++
			}
		}
		// Synchronized start: the paper's post-restart condition the
		// jitter must break up.
		ag.Start(1)
	}
	probe := sc.Agents[int(sc.ProbeOrigin)]
	probe.Node().Schedule(sc.WithdrawAt, "bgp-probe-withdraw", func() { probe.WithdrawLocal() })
	return sc
}

// measureWindow is the steady-state window metrics are taken over:
// after initial convergence, before the withdrawal.
func (s *BGPScenario) measureWindow() (lo, hi float64) {
	return 0.2 * s.Horizon, s.WithdrawAt
}

// SyncClusterFraction measures MRAI-round synchronization: the largest
// fraction of ASes whose last steady-state flush falls inside any
// (period/30)-wide window of phase mod period, where period is the MRAI
// (or the refresh period when batching is off). 1 means the rounds are
// in lockstep; ~1/30 means uniformly spread.
func (s *BGPScenario) SyncClusterFraction() float64 {
	period := s.MRAI
	if period <= 0 {
		period = bgpRefreshPeriod
	}
	lo, hi := s.measureWindow()
	var phases []float64
	for _, ts := range s.FlushTimes {
		last := -1.0
		for _, t := range ts {
			if t >= lo && t < hi {
				last = t
			}
		}
		if last >= 0 {
			phases = append(phases, math.Mod(last, period))
		}
	}
	return largestPhaseCluster(phases, period, period/30)
}

// BurstRatio measures update burstiness: flush counts over 1 s bins of
// the steady-state window, reported as the peak bin over the mean bin.
// Near 1 means a steady trickle; when MRAI rounds synchronize, the
// whole window's updates land in a few bins and the ratio approaches
// the bin count. (The peak, not a percentile: under full
// synchronization almost every bin is empty, so any fixed percentile
// reads 0 exactly when the traffic is at its burstiest.)
func (s *BGPScenario) BurstRatio() float64 {
	lo, hi := s.measureWindow()
	n := int(hi - lo)
	if n < 1 {
		return 0
	}
	bins := make([]float64, n)
	total := 0.0
	for _, ts := range s.FlushTimes {
		for _, t := range ts {
			if t >= lo && t < hi {
				if b := int(t - lo); b < n {
					bins[b]++
					total++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	peak := 0.0
	for _, b := range bins {
		if b > peak {
			peak = b
		}
	}
	return peak / (total / float64(n))
}

// StormLength is the path-exploration storm duration: the time from the
// probe withdrawal to the last best-route change it causes anywhere.
func (s *BGPScenario) StormLength() float64 {
	last := -1.0
	for _, t := range s.StormLast {
		if t > last {
			last = t
		}
	}
	if last < 0 {
		return 0
	}
	return last - s.WithdrawAt
}

// StormChanges is the mean number of post-withdrawal best-route changes
// per AS — how much path exploration the withdrawal caused.
func (s *BGPScenario) StormChanges() float64 {
	total := 0
	for _, c := range s.StormCount {
		total += c
	}
	return float64(total) / float64(s.ASes)
}

// ReachFraction is the fraction of ASes that currently have a route to
// origin — the policy-reachability sanity metric (valley-free paths
// exist to everywhere in the generated graphs, so pre-withdrawal this
// should be 1).
func (s *BGPScenario) ReachFraction(origin netsim.NodeID) float64 {
	n := 0
	for _, ag := range s.Agents {
		if ok, _ := ag.Reachable(origin); ok {
			n++
		}
	}
	return float64(n) / float64(len(s.Agents))
}

// largestPhaseCluster returns the largest fraction of phases (each in
// [0, period)) falling inside any window-wide circular interval.
func largestPhaseCluster(phases []float64, period, window float64) float64 {
	if len(phases) == 0 {
		return 0
	}
	sort.Float64s(phases)
	n := len(phases)
	ext := append(phases, make([]float64, n)...)
	for i := 0; i < n; i++ {
		ext[n+i] = phases[i] + period
	}
	best, lo := 0, 0
	for hi := 0; hi < 2*n; hi++ {
		for ext[hi]-ext[lo] > window {
			lo++
		}
		if c := hi - lo + 1; c > best && c <= n {
			best = c
		}
	}
	return float64(best) / float64(n)
}

// ExtBGP sweeps the BGP scenario over cfg.Sizes × jitter arms × MRAI
// settings and reports, per size: MRAI-round synchronization, update
// burstiness, and path-exploration storm length. All series are
// independent of cfg.Jobs and of the DES backend.
func ExtBGP(cfg BGPConfig) *Result {
	if cfg.Sizes == nil {
		cfg.Sizes = []int{1000, 2500, 5000, 10000}
	}
	if cfg.MRAIs == nil {
		cfg.MRAIs = []float64{0, 5, 30}
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 160
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	k := parallel.Workers(cfg.Jobs)

	res := &Result{
		ID:    "ext_bgp",
		Title: "MRAI round synchronization on internet-scale path-vector topologies (K-invariant results)",
		Plot: trace.PlotOptions{
			XLabel: "ASes", YLabel: "value",
		},
	}
	var series []stats.Series
	for _, jit := range bgpJitters {
		for _, mrai := range cfg.MRAIs {
			tag := fmt.Sprintf("jit=%s mrai=%gs", jit, mrai)
			sync := stats.Series{Name: "round sync cluster (" + tag + ")"}
			burst := stats.Series{Name: "peak/mean burst (" + tag + ")"}
			storm := stats.Series{Name: "storm length s (" + tag + ")"}
			for _, size := range cfg.Sizes {
				sc := BuildBGP(size, k, mrai, jit, cfg.Seed, cfg.Horizon, cfg.Obs)
				sc.Run()
				n := float64(sc.ASes)
				cl := sc.SyncClusterFraction()
				br := sc.BurstRatio()
				sl := sc.StormLength()
				sync.Append(n, cl)
				burst.Append(n, br)
				storm.Append(n, sl)
				// A storm still in flight at the horizon is censored: some
				// ASes still hold a stale route to the withdrawn prefix, so
				// the reported length is a lower bound.
				censored := ""
				if sc.ReachFraction(sc.ProbeOrigin) > 0 {
					censored = ", censored at run end"
				}
				// No K, wall time, or backend here: artifacts must be
				// identical for every -jobs value and both DES backends.
				res.Notef("N=%d %s: round cluster %.0f%%, peak/mean burst %.1f, storm %.1fs (%.2f changes/AS%s), reach(probe) post-withdraw %.0f%%",
					sc.ASes, tag, 100*cl, br, sl, sc.StormChanges(), censored, 100*sc.ReachFraction(sc.ProbeOrigin))
			}
			series = append(series, sync, burst, storm)
		}
	}
	res.Series = series
	return res
}
