package experiments

import (
	"reflect"
	"testing"
)

// TestBGPKInvariant: the path-vector scale scenario's observable outcome
// — every AS's flush timeline, the storm recorders, and the derived
// synchronization/burst/storm metrics — is identical for any partition
// count. This is the property that lets ext_bgp emit Jobs-independent
// artifacts. CI runs it under -race on both DES backends (the backend is
// selected by ROUTESYNC_DES_BACKEND).
func TestBGPKInvariant(t *testing.T) {
	type snap struct {
		flushes [][]float64
		last    []float64
		count   []int
		sync    float64
		burst   float64
		storm   float64
		reach   float64
	}
	run := func(k int) snap {
		sc := BuildBGP(220, k, 5, "uniform", 9, 120, nil)
		sc.Run()
		return snap{
			flushes: sc.FlushTimes,
			last:    sc.StormLast,
			count:   sc.StormCount,
			sync:    sc.SyncClusterFraction(),
			burst:   sc.BurstRatio(),
			storm:   sc.StormLength(),
			reach:   sc.ReachFraction(sc.Origins[1]),
		}
	}
	ref := run(1)
	total := 0
	for _, ts := range ref.flushes {
		total += len(ts)
	}
	if total == 0 {
		t.Fatal("no flushes recorded; scenario is wired wrong")
	}
	if ref.storm <= 0 {
		t.Fatal("withdrawal caused no path exploration; probe is inert")
	}
	if ref.reach < 0.95 {
		t.Fatalf("only %.0f%% of ASes reach the second origin; policy routing broken", 100*ref.reach)
	}
	for _, k := range []int{2, 4} {
		got := run(k)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("k=%d: scenario outcome diverges from k=1", k)
		}
	}
}

// TestBGPMRAIDampsBursts: with synchronized starts and no jitter, a
// 30 s MRAI batches the per-peer update stream, so total flush count
// drops sharply versus MRAI off at the same size.
func TestBGPMRAIDampsBursts(t *testing.T) {
	flushes := func(mrai float64) int {
		sc := BuildBGP(150, 2, mrai, "none", 4, 90, nil)
		sc.Run()
		n := 0
		for _, ts := range sc.FlushTimes {
			n += len(ts)
		}
		return n
	}
	off, on := flushes(0), flushes(30)
	if on >= off {
		t.Fatalf("MRAI=30 produced %d flushes, MRAI=0 produced %d; batching is inert", on, off)
	}
}

// TestExtBGPSmoke runs the registered experiment at a toy size and
// checks the artifact contract: three series per jitter × MRAI arm,
// one note per arm × size, no dependence on Jobs.
func TestExtBGPSmoke(t *testing.T) {
	cfg := BGPConfig{
		Sizes:   []int{120, 200},
		MRAIs:   []float64{0, 5},
		Horizon: 90,
		Jobs:    2,
		Seed:    2,
	}
	res := ExtBGP(cfg)
	arms := len(bgpJitters) * len(cfg.MRAIs)
	if len(res.Series) != 3*arms {
		t.Fatalf("series = %d, want %d", len(res.Series), 3*arms)
	}
	for _, s := range res.Series {
		if s.Len() != len(cfg.Sizes) {
			t.Fatalf("series %q has %d points, want %d", s.Name, s.Len(), len(cfg.Sizes))
		}
	}
	if want := arms * len(cfg.Sizes); len(res.Notes) != want {
		t.Fatalf("notes = %d, want %d", len(res.Notes), want)
	}
	// The artifact must be identical whatever parallelism the host offers.
	cfg.Jobs = 1
	again := ExtBGP(cfg)
	if !reflect.DeepEqual(again, res) {
		t.Error("ext_bgp output depends on Jobs")
	}
}
