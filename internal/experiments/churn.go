package experiments

import (
	"math"

	"routesync/internal/des"
	"routesync/internal/faults"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/parallel"
	"routesync/internal/routing"
	"routesync/internal/stats"
	"routesync/internal/trace"
	"routesync/internal/workload"
)

// ext_churn measures routing-state freshness under sustained failure
// pressure: a two-level AS topology where every router (gateways
// included) runs the periodic protocol, while the fault layer flaps
// backbone links and crash/reboots interior routers on seeded
// exponential timelines. The age-of-information monitor rides the
// agents' route-change hooks at the two measured path endpoints and
// reports outage-duration tails, sampled route ages, and the staleness
// failures expose — swept over the link failure rate for each
// combination of hold-down and triggered-update policy.
//
// The run is partitioned into K logical processes along domain
// boundaries, and the flapped backbone links cross partitions for K ≥ 2;
// by the engine's determinism guarantee (property-tested in
// internal/faults) every emitted figure is bit-identical for any K, so
// the CSV carries only simulation metrics, never K or wall time.

// ChurnConfig parameterizes ExtChurn.
type ChurnConfig struct {
	// NumAS and RoutersPerAS set the topology; zero means 6 domains of 8.
	NumAS, RoutersPerAS int
	// MeanUps lists the mean link up-times (s) to sweep; nil means
	// {120, 60, 30}. Smaller means faster flapping.
	MeanUps []float64
	// Horizon is the simulated duration per run; zero means 400 s.
	Horizon float64
	// Jobs requests K logical processes (0: one per CPU). Results do not
	// depend on it.
	Jobs int
	// Seed drives every random stream: timer jitter and fault timelines.
	Seed int64
	// Obs observes every partition's simulator (must be safe for
	// concurrent use; the runner's metrics observer is).
	Obs des.Observer
}

// ChurnPolicy is one point of the protocol-policy matrix the sweep
// crosses with the failure rate.
type ChurnPolicy struct {
	Triggered bool
	HoldDown  float64
}

// Label names the policy in series names and notes.
func (p ChurnPolicy) Label() string {
	t := "periodic-only"
	if p.Triggered {
		t = "triggered"
	}
	if p.HoldDown > 0 {
		return t + " + hold-down"
	}
	return t
}

// churnPolicies is the swept policy matrix: triggered updates on/off ×
// hold-down off/on (20 s, four compressed periods).
var churnPolicies = []ChurnPolicy{
	{Triggered: true, HoldDown: 0},
	{Triggered: true, HoldDown: 20},
	{Triggered: false, HoldDown: 0},
	{Triggered: false, HoldDown: 20},
}

// churnMeanDown is the mean link outage length (s) for every sweep
// point; only the up-time varies.
const churnMeanDown = 12

// churnProfile is the protocol under test: RIP's structure with all
// timers compressed 6× (5 s period, 15 s timeout, 25 s GC) so dozens of
// flap/recovery cycles fit a few-hundred-second run.
func churnProfile(p ChurnPolicy) routing.Profile {
	return routing.Profile{
		Name: "rip-compressed", Period: 5, Infinity: 16,
		TimeoutFactor: 3, GCFactor: 5,
		TriggeredUpdates: p.Triggered, SplitHorizon: true,
		HoldDown: p.HoldDown,
	}
}

// ChurnScenario is one built instance of the churn scenario, exposed so
// tests and the benchmark harness run exactly what the experiment runs.
type ChurnScenario struct {
	Net      *netsim.Network
	Pinger   *workload.Pinger
	Injector *faults.Injector
	Monitor  *faults.Monitor
	Agents   []*routing.Agent
	// NumAS and PerAS give the domain geometry; Partitions the realized K.
	NumAS, PerAS, Partitions int
	// Horizon is the configured run length; call Run to execute it.
	Horizon float64
}

// Run executes the scenario to its horizon.
func (s *ChurnScenario) Run() { s.Net.RunUntil(s.Horizon) }

// churnLink finds the direct link between two nodes (the topology
// builder guarantees adjacent gateways have one).
func churnLink(a, b *netsim.Node) *netsim.Link {
	for _, m := range a.Media() {
		if l, ok := m.(*netsim.Link); ok && l.Peer(a) == b {
			return l
		}
	}
	panic("experiments: no link between nodes")
}

// BuildChurn wires the churn scenario — numAS domains of perAS routers,
// all running the compressed protocol with RequestOnStart recovery,
// partitioned into k logical processes — with flaps on alternating
// backbone ring links, crash/reboot churn on two interior routers, an
// end-to-end ping stream between interior routers of domains 0 and
// numAS/2, and the AoI monitor watching both path endpoints from every
// router. It does not run it.
//
// meanUp sets the mean up-time of both the flapped links and the
// churned routers; outage lengths are fixed (churnMeanDown) so the
// sweep varies only how often failures arrive.
//
// Optional partition options select the synchronization mode (the
// optimistic determinism tests pass netsim.WithSyncMode); by default the
// ambient ROUTESYNC_SYNC_MODE applies.
func BuildChurn(numAS, perAS, k int, seed int64, meanUp float64, pol ChurnPolicy, horizon float64, obs des.Observer, opts ...netsim.PartitionOption) *ChurnScenario {
	return buildChurn(numAS, perAS, k, seed, meanUp, pol, horizon, obs, true, opts...)
}

// BuildChurnBench is BuildChurn without the age-of-information monitor:
// the same topology, agents, faults and ping stream, but no route-change
// observers or sampling events. The benchmark harness uses it to measure
// the simulator itself — monitor bookkeeping appends to result slices on
// every route change, which would show up as measurement allocations.
func BuildChurnBench(numAS, perAS, k int, seed int64, meanUp float64, pol ChurnPolicy, horizon float64, obs des.Observer, opts ...netsim.PartitionOption) *ChurnScenario {
	return buildChurn(numAS, perAS, k, seed, meanUp, pol, horizon, obs, false, opts...)
}

func buildChurn(numAS, perAS, k int, seed int64, meanUp float64, pol ChurnPolicy, horizon float64, obs des.Observer, withMonitor bool, opts ...netsim.PartitionOption) *ChurnScenario {
	if numAS < 4 || perAS < 3 {
		panic("experiments: BuildChurn needs at least 4 domains of 3 routers")
	}
	if k < 1 {
		k = 1
	}
	if k > numAS {
		k = numAS // one domain is the smallest unit of parallelism
	}

	nw := netsim.NewNetwork(seed)
	if obs != nil {
		nw.SetObserver(obs)
	}
	topo := nw.BuildTwoLevelAS(netsim.TwoLevelASConfig{
		NumAS:        numAS,
		RoutersPerAS: perAS,
		IntraLink:    netsim.LinkConfig{Delay: 0.002, Bandwidth: 10e6, QueueCap: 16},
		InterLink:    netsim.LinkConfig{Delay: 0.012, Bandwidth: 1.5e6, QueueCap: 32},
		CPU:          &netsim.CPUConfig{Mode: netsim.CPUModeLegacy, InputQueueCap: 4},
		Chords:       1,
	})
	nw.Partition(k, netsim.OwnerByBlock(perAS, numAS, k), opts...)

	sc := &ChurnScenario{
		Net:        nw,
		NumAS:      numAS,
		PerAS:      perAS,
		Partitions: k,
		Horizon:    horizon,
	}

	// Unlike ext_netscale's static inter-domain routes, every router here
	// speaks the protocol — the whole point is watching the protocol
	// repair state the faults destroy — so gateways run agents too and no
	// static routes are installed.
	cfg := routing.Config{
		Profile:        churnProfile(pol),
		Jitter:         jitter.HalfSpread{Tp: 5},
		Costs:          routing.DefaultCosts(),
		RequestOnStart: true,
	}
	for a := 0; a < numAS; a++ {
		for i := 0; i < perAS; i++ {
			nd := topo.Routers[a][i]
			agCfg := cfg
			agCfg.Seed = seed*31 + int64(nd.ID)
			ag := routing.NewAgent(nd, agCfg)
			// Synchronized start — the paper's post-restart condition the
			// jitter must break up.
			ag.Start(1)
			sc.Agents = append(sc.Agents, ag)
		}
	}

	// Faults over [30, horizon-40): the protocol converges first, and the
	// tail is quiet so censored outages stay rare. Flaps hit alternating
	// backbone ring links plus the skip links (partition-crossing for
	// k ≥ 2; the ring always leaves a detour, but every shortest path
	// between the measured domains crosses at least one flapped link).
	// Churn hits one interior router on each side of the measured path,
	// away from both ping endpoints.
	in := faults.NewInjector(nw, seed*7+3)
	fcfg := faults.FlapConfig{MeanUp: meanUp, MeanDown: churnMeanDown, Start: 30, Horizon: horizon - 40}
	for a := 0; a+1 < numAS; a += 2 {
		in.FlapLink(churnLink(topo.Gateways[a], topo.Gateways[a+1]), fcfg)
	}
	for a := 0; a+4 < numAS; a += 4 {
		in.FlapLink(churnLink(topo.Gateways[a], topo.Gateways[a+4]), fcfg)
	}
	ccfg := faults.ChurnConfig{MeanUp: meanUp, MeanDown: 18, Start: 30, Horizon: horizon - 40, RebootOffset: 0.4}
	churned := []*routing.Agent{
		sc.Agents[1*perAS+perAS/2+1],
		sc.Agents[(numAS-1)*perAS+perAS/2+1],
	}
	for _, ag := range churned {
		in.ChurnAgent(ag, ccfg)
	}
	sc.Injector = in

	// Measured path: interior routers of domain 0 and the antipodal
	// domain, so pings cross the flapped backbone.
	src := topo.Routers[0][perAS/2]
	dst := topo.Routers[numAS/2][perAS/2]
	if withMonitor {
		mon := faults.NewMonitor([]netsim.NodeID{src.ID, dst.ID})
		for _, ag := range sc.Agents {
			mon.Observe(ag)
		}
		mon.ScheduleSampling(20, 7, horizon)
		mon.SampleAtFailures(in.FailureTimes())
		sc.Monitor = mon
	}

	interval := 0.503
	count := int((horizon - 35) / interval)
	if count < 10 {
		count = 10
	}
	sc.Pinger = workload.NewPinger(src, dst, workload.PingConfig{
		Interval: interval,
		Count:    count,
		Timeout:  2,
	})
	sc.Pinger.Start(25)
	return sc
}

// ExtChurn sweeps failure rate × policy and reports, per rate and
// policy: the p95 outage duration at the measured endpoints and the
// mean sampled route age. Notes carry the staleness-at-failure and
// availability aggregates. All output is independent of cfg.Jobs.
func ExtChurn(cfg ChurnConfig) *Result {
	if cfg.NumAS == 0 {
		cfg.NumAS = 6
	}
	if cfg.RoutersPerAS == 0 {
		cfg.RoutersPerAS = 8
	}
	if cfg.MeanUps == nil {
		cfg.MeanUps = []float64{120, 60, 30}
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 400
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	k := parallel.Workers(cfg.Jobs)

	res := &Result{
		ID:    "ext_churn",
		Title: "route freshness under link flaps and router churn (failure rate × policy, K-invariant)",
		Plot: trace.PlotOptions{
			XLabel: "link failures per hour (per flapped link)", YLabel: "seconds",
		},
	}
	var series []stats.Series
	for _, pol := range churnPolicies {
		outage := stats.Series{Name: "p95 outage (s), " + pol.Label()}
		age := stats.Series{Name: "mean route age (s), " + pol.Label()}
		for _, meanUp := range cfg.MeanUps {
			sc := BuildChurn(cfg.NumAS, cfg.RoutersPerAS, k, cfg.Seed, meanUp, pol, cfg.Horizon, cfg.Obs)
			sc.Run()
			rate := 3600 / (meanUp + churnMeanDown)
			mon := sc.Monitor
			durs := mon.OutageDurations()
			p95 := math.NaN()
			if len(durs) > 0 {
				p95 = stats.Quantile(durs, 0.95)
			}
			outage.Append(rate, p95)
			age.Append(rate, stats.Mean(mon.Ages()))
			pr := sc.Pinger.Result()
			res.Notef("%s, %.0f failures/h: %d outages (p95 %.1f s), mean age %.2f s, staleness at failure p50 %.2f s, availability %.4f, resurrections %d, ping loss %.2f%%",
				pol.Label(), rate, len(durs), p95, stats.Mean(mon.Ages()),
				stats.Quantile(mon.StalenessAtFailures(), 0.5), mon.Availability(),
				mon.Resurrections(), 100*pr.LossRate())
		}
		series = append(series, outage, age)
	}
	res.Series = series
	return res
}
