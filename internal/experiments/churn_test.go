package experiments

import (
	"reflect"
	"testing"

	"routesync/internal/netsim"
)

// TestChurnKInvariant: the churn scenario's observable outcome — ping
// RTTs, network counters, outage records, and every AoI aggregate — is
// identical for any partition count, with the fault events themselves
// firing inside parallel windows. This is the property that lets
// ext_churn emit Jobs-independent artifacts.
func TestChurnKInvariant(t *testing.T) {
	type snap struct {
		rtts      []float64
		counts    netsim.Counters
		outages   []float64
		ages      []float64
		staleness []float64
		resurrect int
		avail     float64
	}
	run := func(k int) snap {
		sc := BuildChurn(4, 4, k, 3, 35, ChurnPolicy{Triggered: true, HoldDown: 10}, 150, nil)
		sc.Run()
		// Lost pings record NaN, which DeepEqual never equates; encode them
		// as -1 so identical timelines compare equal.
		rtts := append([]float64(nil), sc.Pinger.Result().RTTs...)
		for i, v := range rtts {
			if v != v {
				rtts[i] = -1
			}
		}
		return snap{
			rtts:      rtts,
			counts:    sc.Net.Counters(),
			outages:   sc.Monitor.OutageDurations(),
			ages:      sc.Monitor.Ages(),
			staleness: sc.Monitor.StalenessAtFailures(),
			resurrect: sc.Monitor.Resurrections(),
			avail:     sc.Monitor.Availability(),
		}
	}
	ref := run(1)
	delivered := 0
	for _, v := range ref.rtts {
		if v >= 0 { // not a loss sentinel
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("every ping lost; scenario is wired wrong")
	}
	if ref.counts.Drops[netsim.DropLinkDown] == 0 {
		t.Fatalf("no link-down drops; flaps are inert: %+v", ref.counts)
	}
	if ref.counts.Drops[netsim.DropNodeDown] == 0 {
		t.Fatalf("no node-down drops; churn is inert: %+v", ref.counts)
	}
	if len(ref.ages) == 0 || len(ref.staleness) == 0 {
		t.Fatalf("degenerate monitor output: %d ages, %d staleness", len(ref.ages), len(ref.staleness))
	}
	if ref.resurrect != 0 {
		t.Fatalf("hold-down violated: %d resurrections", ref.resurrect)
	}
	for _, k := range []int{2, 4} {
		got := run(k)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("k=%d: scenario outcome diverges from k=1", k)
		}
	}
}

// TestExtChurnSmoke runs the registered experiment at a toy size and
// checks the artifact contract: two series per policy (p95 outage, mean
// age), one note per policy × rate, no dependence on Jobs.
func TestExtChurnSmoke(t *testing.T) {
	cfg := ChurnConfig{
		NumAS:        4,
		RoutersPerAS: 4,
		MeanUps:      []float64{45, 30},
		Horizon:      150,
		Jobs:         2,
		Seed:         3,
	}
	res := ExtChurn(cfg)
	if len(res.Series) != 2*len(churnPolicies) {
		t.Fatalf("series = %d, want %d", len(res.Series), 2*len(churnPolicies))
	}
	for _, s := range res.Series {
		if s.Len() != len(cfg.MeanUps) {
			t.Fatalf("series %q has %d points, want %d", s.Name, s.Len(), len(cfg.MeanUps))
		}
	}
	if want := len(churnPolicies) * len(cfg.MeanUps); len(res.Notes) != want {
		t.Fatalf("notes = %d, want %d", len(res.Notes), want)
	}
	// The artifact must be identical whatever parallelism the host offers.
	cfg.Jobs = 1
	again := ExtChurn(cfg)
	if !reflect.DeepEqual(again, res) {
		t.Error("ext_churn output depends on Jobs")
	}
}
