package experiments

import (
	"routesync/internal/jitter"
	"routesync/internal/markov"
	"routesync/internal/stats"
	"routesync/internal/trace"
)

// ClaimPARC reproduces the paper's §1 worked example: the Xerox PARC
// network's cisco routers took roughly 300 ms to process a routing
// message (1 ms per route × 300 routes), so "the routers would have to
// add at least a second of randomness to their update intervals to
// prevent synchronization". The driver sweeps Tr for the PARC parameters
// and reports where the network flips to predominately unsynchronized.
func ClaimPARC(n int, seed int64) *Result {
	if n == 0 {
		n = 20
	}
	const (
		tp = 90.0 // IGRP period on the measured network
		tc = 0.3  // 300 ms measured processing cost
	)
	ser := stats.Series{Name: "fraction unsynchronized"}
	flip := -1.0
	for tr := 0.16; tr <= 2.0+1e-9; tr += 0.02 {
		ch, err := markov.New(markov.Params{N: n, Tp: tp, Tr: tr, Tc: tc})
		if err != nil {
			panic(err)
		}
		f := ch.FractionUnsynchronized()
		ser.Append(tr, f)
		if flip < 0 && f > 0.5 {
			flip = tr
		}
	}
	r := &Result{
		ID:     "claim_parc",
		Title:  "Xerox PARC worked example: randomness needed at Tc = 300 ms",
		Series: []stats.Series{ser},
		Plot: trace.PlotOptions{
			XLabel: "Tr (seconds)", YLabel: "fraction unsynchronized",
			YMin: 0, YMax: 1,
		},
	}
	rec := jitter.Recommend(tp, tc)
	r.Notef("fraction crosses 1/2 near Tr = %.2f s (paper: 'at least a second')", flip)
	r.Notef("Recommend: MinTr = %.1f s (10·Tc), SafeTr = %.1f s (Tp/2)", rec.MinTr, rec.SafeTr)
	return r
}

// ClaimGuidance verifies §5.3's two rules across a parameter grid:
// Tr ≥ 10·Tc keeps the system predominately unsynchronized, and
// Tr = Tp/2 (timer ~ U[0.5·Tp, 1.5·Tp]) does so for any parameters.
func ClaimGuidance() *Result {
	type gridPoint struct {
		n  int
		tp float64
		tc float64
	}
	grid := []gridPoint{
		{10, 30, 0.01}, {20, 30, 0.05}, {30, 30, 0.1},
		{10, 90, 0.1}, {20, 90, 0.3}, {30, 90, 0.5},
		{10, 121, 0.11}, {20, 121, 0.11}, {30, 121, 0.11},
		{20, 180, 1.0}, {30, 120, 0.5},
	}
	tenTc := stats.Series{Name: "Tr = 10·Tc"}
	halfTp := stats.Series{Name: "Tr = Tp/2"}
	r := &Result{
		ID:    "claim_guidance",
		Title: "jitter guidance: fraction unsynchronized across a parameter grid",
		Plot: trace.PlotOptions{
			XLabel: "grid point", YLabel: "fraction unsynchronized",
			YMin: 0, YMax: 1,
		},
	}
	okTen, okHalf := 0, 0
	for i, g := range grid {
		ch1, err := markov.New(markov.Params{N: g.n, Tp: g.tp, Tr: 10 * g.tc, Tc: g.tc})
		if err != nil {
			panic(err)
		}
		f1 := ch1.FractionUnsynchronized()
		tenTc.Append(float64(i), f1)
		if f1 > 0.95 {
			okTen++
		}
		ch2, err := markov.New(markov.Params{N: g.n, Tp: g.tp, Tr: g.tp / 2, Tc: g.tc})
		if err != nil {
			panic(err)
		}
		f2 := ch2.FractionUnsynchronized()
		halfTp.Append(float64(i), f2)
		if f2 > 0.95 {
			okHalf++
		}
	}
	r.Series = []stats.Series{tenTc, halfTp}
	r.Notef("Tr=10·Tc keeps fraction>0.95 at %d/%d grid points", okTen, len(grid))
	r.Notef("Tr=Tp/2 keeps fraction>0.95 at %d/%d grid points", okHalf, len(grid))
	return r
}
