package experiments

import (
	"math"
	"testing"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/rng"
	"routesync/internal/routing"
)

// TestPacketSubstrateSynchronizesLikeModel is the keystone
// cross-validation: the full packet-level distance-vector implementation
// (real wire messages over a simulated LAN, CPU-costed processing, the
// paper's reset-after-processing timers) synchronizes from random phases
// on the same timescale as the abstract Periodic Messages model —
// without sharing any code path with it beyond the DES kernel.
func TestPacketSubstrateSynchronizesLikeModel(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level LAN run (~25 s)")
	}
	const (
		routers = 20
		tp      = 121.0
		tc      = 0.11
		horizon = 2.5e5
	)
	net := netsim.NewNetwork(7)
	offsets := rng.New(7 + 31)
	nodes := make([]*netsim.Node, routers)
	for i := range nodes {
		nodes[i] = net.NewNode("dv", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	}
	net.NewLAN(nodes, netsim.LANConfig{})
	last := make([]float64, routers)
	for i, nd := range nodes {
		i := i
		ag := routing.NewAgent(nd, routing.Config{
			Profile: routing.Profile{
				Name: "dv121", Period: tp, Infinity: 16,
				TimeoutFactor: 6, GCFactor: 10,
			},
			Jitter: jitter.Uniform{Tp: tp, Tr: 0.1},
			Costs: routing.Costs{
				MinPrepare: tc, MinProcess: tc,
				PerRoutePrepare: 0, PerRouteProcess: 0,
			},
			Seed: 7,
		})
		ag.OnSend = func(at float64, trig bool) {
			if !trig {
				last[i] = at
			}
		}
		ag.Start(offsets.Uniform(0, tp))
	}
	net.RunUntil(horizon)

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range last {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	spread := hi - lo
	// Fully synchronized: every router's latest periodic update left
	// within one shared busy window (N·Tc = 2.2 s, tolerance for the
	// triggered-update bookkeeping).
	if spread > routers*tc*2 {
		t.Fatalf("packet-level DV LAN did not synchronize: final send spread %.2f s "+
			"(abstract model synchronizes well inside %.0f s at these parameters)",
			spread, horizon)
	}
}
