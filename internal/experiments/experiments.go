// Package experiments contains one driver per figure in the paper's
// evaluation, plus drivers for its in-text quantitative claims and for
// the ablations listed in DESIGN.md. Each driver returns a Result holding
// typed series, render options and headline notes; cmd/figures renders
// all of them to CSV and ASCII, and bench_test.go wraps each one in a
// benchmark.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"routesync/internal/stats"
	"routesync/internal/trace"
)

// Result is one regenerated figure.
type Result struct {
	// ID is the figure identifier, e.g. "fig04".
	ID string
	// Title describes the figure, mirroring the paper's caption.
	Title string
	// Series holds the figure's data.
	Series []stats.Series
	// Notes records headline measurements ("synchronized after 826
	// rounds") for EXPERIMENTS.md.
	Notes []string
	// Plot carries rendering hints.
	Plot trace.PlotOptions
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// RenderASCII draws the figure as text.
func (r *Result) RenderASCII() string {
	opt := r.Plot
	if opt.Title == "" {
		opt.Title = fmt.Sprintf("%s — %s", r.ID, r.Title)
	}
	var b strings.Builder
	b.WriteString(trace.Render(opt, r.Series...))
	for _, n := range r.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteFiles writes <id>.csv and <id>.txt into dir, creating it if needed.
func (r *Result) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(dir, r.ID+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	if err := trace.WriteCSV(csv, r.Series...); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, r.ID+".txt"), []byte(r.RenderASCII()), 0o644)
}
