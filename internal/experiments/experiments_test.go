package experiments

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"routesync/internal/stats"
)

// quickModel is a scaled-down ModelConfig for fast tests.
func quickModel() ModelConfig {
	return ModelConfig{N: 20, Tp: 121, Tc: 0.11, Tr: 0.1, Seed: 1, Horizon: 1e5}
}

func TestFig1ShowsPeriodicLoss(t *testing.T) {
	r, ping := Fig1(PathConfig{}, 1000)
	if ping.LossRate() < 0.02 || ping.LossRate() > 0.2 {
		t.Fatalf("loss rate = %v, want a few percent like the paper", ping.LossRate())
	}
	if len(r.Series) == 0 || r.Series[0].Len() != 1000 {
		t.Fatalf("series malformed: %+v", r.Series)
	}
	// Losses recur periodically: the gap between loss bursts is close to
	// the IGRP period in pings.
	var lossIdx []int
	for i, y := range r.Series[0].Y {
		if y < 0 {
			lossIdx = append(lossIdx, i)
		}
	}
	if len(lossIdx) < 10 {
		t.Fatalf("only %d lost pings", len(lossIdx))
	}
	// Median gap between consecutive loss *bursts* (gaps > 10 pings).
	var gaps []float64
	for i := 1; i < len(lossIdx); i++ {
		if d := lossIdx[i] - lossIdx[i-1]; d > 10 {
			gaps = append(gaps, float64(d))
		}
	}
	med := stats.Median(gaps)
	if med < 80 || med > 105 {
		t.Fatalf("median loss-burst gap = %v pings, want ~89-93 (90 s IGRP period)", med)
	}
}

func TestFig2PeakNearUpdatePeriod(t *testing.T) {
	_, ping := Fig1(PathConfig{}, 1000)
	r := Fig2(ping, 200)
	// The ACF series must peak in the 85..100 lag window (the effective
	// period is Tp + N·Tc ≈ 93 s with the coupled timers).
	acf := r.Series[0]
	best, bestLag := math.Inf(-1), -1
	for i := 45; i < acf.Len(); i++ {
		if acf.Y[i] > best {
			best, bestLag = acf.Y[i], i
		}
	}
	if bestLag < 85 || bestLag > 100 {
		t.Fatalf("ACF peak at lag %d, want 85..100", bestLag)
	}
	if best < 0.15 {
		t.Fatalf("ACF peak value %v too weak", best)
	}
}

func TestFig3PeriodicOutages(t *testing.T) {
	r, audio := Fig3(PathConfig{}, 600)
	if audio.LossRate() <= 0 {
		t.Fatal("no audio loss at all")
	}
	// Count big spikes; expect roughly one per RIP period (30 s) over
	// 600 s, i.e. ~20, allow broad slack.
	spikes := 0
	for i := 0; i < r.Series[0].Len(); i++ {
		if r.Series[0].Y[i] > 0.5 {
			spikes++
		}
	}
	if spikes < 10 || spikes > 30 {
		t.Fatalf("loss spikes = %d, want ~20 (one per 30 s)", spikes)
	}
	// And isolated single losses exist too (background noise).
	singles := 0
	for _, o := range audio.Outages() {
		if o.Lost == 1 {
			singles++
		}
	}
	if singles == 0 {
		t.Fatal("no isolated single-packet losses (background noise missing)")
	}
}

func TestFig3FixedModeEliminatesSpikes(t *testing.T) {
	// Ablation within the Fig 3 scenario: with CPUModeFixed routers the
	// periodic spikes disappear — only background noise remains. This is
	// the post-fix NEARnet behaviour of §2. We emulate it by zeroing the
	// processing cost, which removes the stall window entirely.
	c := PathConfig{PerRouteCost: 1e-9, BackgroundLoss: 0.002}
	_, audio := Fig3(c, 600)
	for _, o := range audio.Outages() {
		if o.Lost > 3 {
			t.Fatalf("multi-packet outage (%d lost) without CPU stalls", o.Lost)
		}
	}
}

func TestFig4Synchronizes(t *testing.T) {
	r := Fig4(quickModel())
	if len(r.Series) != 1 || r.Series[0].Len() == 0 {
		t.Fatal("empty offset trace")
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "fully synchronized after") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no synchronization note: %v", r.Notes)
	}
}

func TestFig5MarksBalance(t *testing.T) {
	r := Fig5(quickModel(), 30000, 40000)
	if len(r.Series) != 2 {
		t.Fatal("want expiry and reset series")
	}
	if r.Series[0].Len() == 0 || r.Series[0].Len() != r.Series[1].Len() {
		t.Fatalf("marks unbalanced: %d vs %d", r.Series[0].Len(), r.Series[1].Len())
	}
}

func TestFig6ReachesFullCluster(t *testing.T) {
	r := Fig6(quickModel())
	_, hi := r.Series[0].YRange()
	if hi != 20 {
		t.Fatalf("largest cluster max = %v, want 20", hi)
	}
}

func TestFig7MonotoneSyncTimes(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	cfg := quickModel()
	cfg.Horizon = 3e6
	_, pts := Fig7(cfg, []float64{0.6, 1.0})
	if len(pts) != 2 {
		t.Fatalf("pts = %+v", pts)
	}
	if !pts[0].Reached || !pts[1].Reached {
		t.Fatalf("sync not reached: %+v", pts)
	}
	if pts[0].Rounds >= pts[1].Rounds {
		t.Fatalf("sync time should grow with Tr: %+v", pts)
	}
}

func TestFig8MonotoneBreakTimes(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	cfg := quickModel()
	cfg.Horizon = 3e6
	_, pts := Fig8(cfg, []float64{2.5, 2.8}, 2)
	if !pts[0].Reached && !pts[1].Reached {
		t.Fatalf("neither Tr broke synchronization: %+v", pts)
	}
	if pts[1].Reached && pts[0].Reached && pts[1].Rounds > pts[0].Rounds {
		t.Fatalf("break-up should be faster at higher Tr: %+v", pts)
	}
}

func TestFig9Probabilities(t *testing.T) {
	r := Fig9(MarkovConfig{}, 0)
	if len(r.Series) != 3 {
		t.Fatal("want up/down/stay series")
	}
	for _, s := range r.Series {
		for _, y := range s.Y {
			if y < -1e-9 || y > 1+1e-9 {
				t.Fatalf("probability out of range in %s: %v", s.Name, y)
			}
		}
	}
}

func TestFig10AnalysisOverpredicts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation overlay")
	}
	r := Fig10(MarkovConfig{Sims: 3, SimHorizon: 2e6}, 0)
	if len(r.Series) != 2 {
		t.Fatalf("want analysis+sim series, got %d", len(r.Series))
	}
	// The analysis curve must lie to the right of (or equal to) the
	// simulation curve at the top cluster size: the paper's chain
	// over-predicts.
	an, sim := r.Series[0], r.Series[1]
	if an.Len() == 0 || sim.Len() == 0 {
		t.Fatal("empty series")
	}
	if an.X[an.Len()-1] < sim.X[0] {
		t.Fatal("analysis does not over-predict — unexpected inversion")
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation overlay")
	}
	r := Fig11(MarkovConfig{Sims: 3, SimHorizon: 5e6}, 0)
	an := r.Series[0]
	// g(i): smaller target sizes take longer — as y (target size) rises,
	// the time x must not increase.
	for i := 1; i < an.Len(); i++ {
		if an.X[i] > an.X[i-1] {
			t.Fatalf("analysis series not monotone at %d: %+v", i, an)
		}
	}
	if an.X[an.Len()-1] != 0 {
		t.Fatalf("g(N) must be 0, got %v", an.X[an.Len()-1])
	}
}

func TestFig12RegionsAndCross(t *testing.T) {
	r := Fig12(MarkovConfig{}, 0, 0, 0)
	if len(r.Series) != 2 {
		t.Fatalf("without Sims, want 2 series, got %d", len(r.Series))
	}
	fn, g1 := r.Series[0], r.Series[1]
	// Low randomization: f(N) small, g(1) huge. High: reversed.
	if fn.Y[0] > g1.Y[0] {
		t.Fatalf("low-Tr region inverted: f=%v g=%v", fn.Y[0], g1.Y[0])
	}
	last := fn.Len() - 1
	if fn.Y[last] < g1.Y[last] {
		t.Fatalf("high-Tr region inverted: f=%v g=%v", fn.Y[last], g1.Y[last])
	}
	// Clamped at the paper's axis cap.
	for _, y := range append(fn.Y, g1.Y...) {
		if y > AxisCap {
			t.Fatalf("value above axis cap: %v", y)
		}
	}
}

func TestFig12SimulationMarks(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation overlay")
	}
	r := Fig12(MarkovConfig{Sims: 2, SimHorizon: 2e6}, 0, 0, 0)
	if len(r.Series) != 4 {
		t.Fatalf("with Sims, want 4 series, got %d", len(r.Series))
	}
	x, plus := r.Series[2], r.Series[3]
	if x.Len() == 0 || plus.Len() == 0 {
		t.Fatal("no simulation marks produced")
	}
	// Sync times rise with Tr; break times fall with Tr.
	for i := 1; i < x.Len(); i++ {
		if x.Y[i] < x.Y[i-1] {
			t.Fatalf("unsync-start marks not rising: %v", x.Y)
		}
	}
	last := plus.Len() - 1
	if plus.Y[last] > plus.Y[0] {
		t.Fatalf("sync-start marks not falling overall: %v", plus.Y)
	}
}

func TestFig13SeriesCount(t *testing.T) {
	r := Fig13(MarkovConfig{}, []int{10, 20}, []float64{0.11})
	if len(r.Series) != 4 { // f and g per N
		t.Fatalf("series = %d, want 4", len(r.Series))
	}
}

func TestFig14SharpTransition(t *testing.T) {
	r := Fig14(MarkovConfig{}, 0, 0, 0)
	s := r.Series[0]
	lo, hi := s.Y[0], s.Y[s.Len()-1]
	if lo > 0.05 || hi < 0.95 {
		t.Fatalf("transition endpoints: %v → %v", lo, hi)
	}
	// Sharpness: the 0.1→0.9 rise happens within 0.5·Tc.
	var x10, x90 float64 = -1, -1
	for i := 0; i < s.Len(); i++ {
		if x10 < 0 && s.Y[i] > 0.1 {
			x10 = s.X[i]
		}
		if x90 < 0 && s.Y[i] > 0.9 {
			x90 = s.X[i]
		}
	}
	if x90-x10 > 0.5 {
		t.Fatalf("transition width %.2f Tc, want < 0.5 (abrupt phase transition)", x90-x10)
	}
}

func TestFig15SingleRouterFlip(t *testing.T) {
	r := Fig15(MarkovConfig{}, 0, 0, 0)
	s := r.Series[0]
	if s.Y[0] < 0.9 {
		t.Fatalf("small N should be unsynchronized: %v", s.Y[0])
	}
	if s.Y[s.Len()-1] > 0.1 {
		t.Fatalf("large N should be synchronized: %v", s.Y[s.Len()-1])
	}
	// Some single-router step drops the fraction by > 0.5.
	bigDrop := false
	for i := 1; i < s.Len(); i++ {
		if s.Y[i-1]-s.Y[i] > 0.5 {
			bigDrop = true
		}
	}
	if !bigDrop {
		t.Fatal("no single-router phase flip found")
	}
}

func TestClaimPARC(t *testing.T) {
	r := ClaimPARC(0, 1)
	// The 1/2 crossing should sit near 1 second (paper: "at least a
	// second of randomness").
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "crosses 1/2 near Tr") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes = %v", r.Notes)
	}
	s := r.Series[0]
	// At 0.3 s (1·Tc) mostly synchronized; at 1.8 s (6·Tc) unsynchronized.
	for i := 0; i < s.Len(); i++ {
		if s.X[i] < 0.35 && s.Y[i] > 0.5 {
			t.Fatalf("fraction at Tr=%v is %v, want < 0.5", s.X[i], s.Y[i])
		}
		if s.X[i] > 1.8 && s.Y[i] < 0.5 {
			t.Fatalf("fraction at Tr=%v is %v, want > 0.5", s.X[i], s.Y[i])
		}
	}
}

func TestClaimGuidance(t *testing.T) {
	r := ClaimGuidance()
	for _, s := range r.Series {
		for i, y := range s.Y {
			if y < 0.95 {
				t.Fatalf("%s grid point %d: fraction %v < 0.95", s.Name, i, y)
			}
		}
	}
}

func TestAblationTimerPolicy(t *testing.T) {
	r := AblationTimerPolicy(quickModel())
	joined := strings.Join(r.Notes, "\n")
	if !strings.Contains(joined, "reset-after-processing: synchronized") {
		t.Fatalf("paper policy did not synchronize: %v", r.Notes)
	}
	if !strings.Contains(joined, "reset-on-expiry: never synchronized") {
		t.Fatalf("clock-driven policy synchronized: %v", r.Notes)
	}
}

func TestAblationSolver(t *testing.T) {
	r := AblationSolver(MarkovConfig{}, 0)
	if len(r.Series) != 3 {
		t.Fatal("want three solver series")
	}
	joined := strings.Join(r.Notes, "\n")
	if !strings.Contains(joined, "matches exact solver") {
		t.Fatalf("notes = %v", r.Notes)
	}
}

func TestAblationDelivery(t *testing.T) {
	r := AblationDelivery([]float64{0, 0.2}, 1)
	s := r.Series[0]
	if s.Len() != 2 {
		t.Fatalf("series = %+v", s)
	}
	if s.Y[0] > 1e-9 {
		t.Fatalf("zero-delay pair not in lock-step: spread %v", s.Y[0])
	}
	if s.Y[1] < 0.01 {
		t.Fatalf("large-delay pair unexpectedly coupled: spread %v", s.Y[1])
	}
}

func TestResultWriteFiles(t *testing.T) {
	dir := t.TempDir()
	r := Fig9(MarkovConfig{}, 0)
	if err := r.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig09.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "series,x,y\n") {
		t.Fatal("csv header missing")
	}
	txt, err := os.ReadFile(filepath.Join(dir, "fig09.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "fig09") {
		t.Fatal("ascii render missing title")
	}
}

func TestRenderASCIIIncludesNotes(t *testing.T) {
	r := &Result{ID: "x", Title: "t"}
	r.Notef("hello %d", 42)
	out := r.RenderASCII()
	if !strings.Contains(out, "note: hello 42") {
		t.Fatalf("out = %q", out)
	}
}
