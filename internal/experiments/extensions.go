package experiments

import (
	"math"

	"routesync/internal/jitter"
	"routesync/internal/markov"
	"routesync/internal/netsim"
	"routesync/internal/parallel"
	"routesync/internal/periodic"
	"routesync/internal/routing"
	"routesync/internal/stats"
	"routesync/internal/trace"
)

// This file holds extension experiments beyond the paper's figures: the
// "future work" directions §6 sketches (alternate timer disciplines, the
// per-router fixed-period alternative) and continuous order-parameter
// views of the phase transition that 1993-era plotting did not show.

// ExtCoherence traces the Kuramoto order parameter R through a
// synchronization run — a continuous view of Figure 4's discrete cluster
// picture. R sits near 1/√N while unsynchronized and jumps to ~1 at the
// avalanche.
func ExtCoherence(c ModelConfig) *Result {
	c = c.Defaults()
	s := c.system(periodic.StartUnsynchronized)
	times, r := s.CoherenceTrace(c.Horizon, c.Horizon/400)
	ser := stats.Series{Name: "order parameter R"}
	for i := range times {
		ser.Append(times[i], r[i])
	}
	res := &Result{
		ID:     "ext_coherence",
		Title:  "Kuramoto order parameter through synchronization",
		Series: []stats.Series{ser},
		Plot: trace.PlotOptions{
			XLabel: "time (s)", YLabel: "phase coherence R", YMin: 0, YMax: 1,
		},
	}
	if len(r) > 0 {
		res.Notef("R: start %.2f → end %.2f (1/√N = %.2f)", r[0], r[len(r)-1], 1/math.Sqrt(float64(c.N)))
	}
	return res
}

// ExtStorm reproduces the §1 footnote scenario on the packet substrate:
// every router restarts at the same moment (a power failure), leaving the
// network fully synchronized. With deterministic timers the lock-step
// persists; with the paper's U[0.5Tp, 1.5Tp] jitter it dissolves within a
// few rounds. The figure plots the spread of the routers' update times
// per round for both policies.
func ExtStorm(routers int, seed int64) *Result {
	if routers == 0 {
		routers = 10
	}
	res := &Result{
		ID:    "ext_storm",
		Title: "restart storm: update-time spread per round, fixed vs jittered timers",
		Plot: trace.PlotOptions{
			XLabel: "round", YLabel: "max spread of send times (s, log)", LogY: true,
		},
	}
	for _, pol := range []jitter.Policy{jitter.None{Tp: 30}, jitter.HalfSpread{Tp: 30}} {
		net := netsim.NewNetwork(seed)
		nodes := make([]*netsim.Node, routers)
		for i := range nodes {
			nodes[i] = net.NewNode("r", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
		}
		net.NewLAN(nodes, netsim.LANConfig{})
		sends := make([][]float64, routers)
		for i, nd := range nodes {
			i := i
			ag := routing.NewAgent(nd, routing.Config{
				Profile: routing.RIP(),
				Jitter:  pol,
				Costs:   routing.Costs{MinPrepare: 0.11, MinProcess: 0.11},
				Seed:    seed,
			})
			ag.OnSend = func(t float64, trig bool) {
				if !trig {
					sends[i] = append(sends[i], t)
				}
			}
			ag.Start(1.0) // everyone restarts together
		}
		net.RunUntil(30 * 25)
		ser := stats.Series{Name: pol.String()}
		for round := 0; ; round++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			ok := true
			for i := range sends {
				if round >= len(sends[i]) {
					ok = false
					break
				}
				lo = math.Min(lo, sends[i][round])
				hi = math.Max(hi, sends[i][round])
			}
			if !ok {
				break
			}
			spread := hi - lo
			if spread <= 0 {
				spread = 1e-6 // lock-step; keep the log plot finite
			}
			ser.Append(float64(round), spread)
		}
		res.Series = append(res.Series, ser)
		if ser.Len() > 0 {
			res.Notef("%s: spread round 0 = %.2gs, final = %.2gs", pol, ser.Y[0], ser.Y[ser.Len()-1])
		}
	}
	return res
}

// ExtNSweep measures simulated time-to-synchronize versus router count at
// fixed Tr — the simulation companion to Figure 15's analytic phase flip:
// adding routers accelerates synchronization by orders of magnitude. (At
// the figure's own Tr = 0.3 s the absolute times sit beyond any
// simulable horizon on both sides of the flip — equilibrium fractions,
// not first-passage times, are the observable there — so the sweep
// defaults to Tr = 0.1 s where first passage is measurable.)
func ExtNSweep(tr float64, ns []int, seeds int, horizon float64, seed int64) *Result {
	if tr == 0 {
		tr = 0.1
	}
	if len(ns) == 0 {
		ns = []int{10, 15, 20, 25, 30}
	}
	if seeds == 0 {
		seeds = 3
	}
	if horizon == 0 {
		horizon = 3e6
	}
	ser := stats.Series{Name: "mean time to synchronize"}
	res := &Result{
		ID:    "ext_nsweep",
		Title: "simulated time to synchronize vs router count (Tr fixed)",
		Plot: trace.PlotOptions{
			XLabel: "number of routers N", YLabel: "seconds (log)", LogY: true,
		},
	}
	for _, n := range ns {
		// The per-seed replications are independent; run them on the
		// shared job runner (seeded by index, deterministic for any
		// worker count).
		times := parallel.Run(seeds, 0, func(s int) float64 {
			sys := periodic.New(periodic.Config{
				N: n, Tc: 0.11,
				Jitter: jitter.Uniform{Tp: 121, Tr: tr},
				Seed:   seed + int64(s),
			})
			r := sys.RunUntilSynchronized(horizon)
			if !r.Reached {
				return math.Inf(1)
			}
			return r.Time
		})
		var sum float64
		reached := 0
		for _, t := range times {
			if !math.IsInf(t, 1) {
				reached++
				sum += t
			}
		}
		if reached == seeds {
			mean := sum / float64(seeds)
			ser.Append(float64(n), mean)
			res.Notef("N=%d: mean sync %.3gs (%d/%d seeds)", n, mean, reached, seeds)
		} else {
			ser.Append(float64(n), math.Inf(1))
			res.Notef("N=%d: %d/%d seeds synchronized within %.1es", n, reached, seeds, horizon)
		}
	}
	res.Series = []stats.Series{ser.ClampY(AxisCap)}
	return res
}

// ExtPerRouterFixed evaluates the §6 alternative of giving every router
// its own fixed period ("an alternate strategy might be to set the
// routing update interval at each router to a different random value"):
// a synchronized restart disperses linearly as the periods diverge, at a
// rate set by the spread. The paper asks for "further investigation" of
// this strategy; this is it, in simulation.
func ExtPerRouterFixed(spreads []float64, seed int64) *Result {
	if len(spreads) == 0 {
		spreads = []float64{0.5, 1, 2, 5, 10}
	}
	res := &Result{
		ID:    "ext_perrouter_fixed",
		Title: "per-router fixed periods: residual cluster size vs period spread",
		Plot: trace.PlotOptions{
			XLabel: "period spread (s)", YLabel: "largest cluster after 100 rounds",
		},
	}
	ser := stats.Series{Name: "plateau largest cluster"}
	for _, sp := range spreads {
		cfg := periodic.Config{
			N: 20, Tc: 0.11,
			Jitter: jitter.NewPerRouterFixed(121, sp, seed),
			Start:  periodic.StartSynchronized,
			Seed:   seed,
		}
		s := periodic.New(cfg)
		s.RunUntil(100 * 121.11)
		largest := s.LargestPending()
		ser.Append(sp, float64(largest))
		res.Notef("spread %.1fs: largest cluster after 100 rounds = %d", sp, largest)
	}
	res.Series = []stats.Series{ser}
	res.Notef("distinct fixed periods disperse a synchronized start quickly, but routers whose periods landed within Tc of each other cluster permanently — there is no repair mechanism, the §6 drawback")
	return res
}

// ExtProtocolComparison runs the paper's five protocol profiles through
// the Markov model at their own periods and a common Tc, asking which
// deployments sit on the dangerous side of the transition without added
// jitter (Tr = OS noise only, 50 ms).
func ExtProtocolComparison(n int, tc float64) *Result {
	if n == 0 {
		n = 20
	}
	if tc == 0 {
		tc = 0.3 // the PARC-measured 300 ms update cost
	}
	res := &Result{
		ID:    "ext_protocols",
		Title: "protocol profiles: fraction of time unsynchronized without added jitter",
		Plot: trace.PlotOptions{
			XLabel: "profile index", YLabel: "fraction unsynchronized", YMin: 0, YMax: 1,
		},
	}
	ser := stats.Series{Name: "Tr = 50 ms (OS noise only)"}
	serRec := stats.Series{Name: "Tr = 10·Tc (recommended)"}
	profs := []routing.Profile{routing.RIP(), routing.IGRP(), routing.DECnet(), routing.EGP(), routing.Hello()}
	for i, p := range profs {
		noise := analyzeFraction(n, p.Period, 0.05, tc)
		rec := analyzeFraction(n, p.Period, 10*tc, tc)
		ser.Append(float64(i), noise)
		serRec.Append(float64(i), rec)
		res.Notef("%s (Tp=%gs): noise-only fraction %.3f → with 10·Tc jitter %.3f",
			p.Name, p.Period, noise, rec)
	}
	res.Series = []stats.Series{ser, serRec}
	return res
}

// ExtThreshold maps the phase boundary itself: the critical random
// component Tr*(N) at which the fraction of time unsynchronized crosses
// 1/2, for the paper's Tp and Tc. Everything below the curve
// synchronizes; everything above stays unsynchronized. The boundary's
// growth with N is the design cost of scale: every router added to a
// shared network raises the jitter bill.
func ExtThreshold(ns []int) *Result {
	if len(ns) == 0 {
		ns = []int{5, 10, 15, 20, 25, 30, 40, 50, 75, 100}
	}
	ser := stats.Series{Name: "critical Tr (multiples of Tc)"}
	res := &Result{
		ID:    "ext_threshold",
		Title: "the phase boundary: critical Tr vs router count",
		Plot: trace.PlotOptions{
			XLabel: "number of routers N", YLabel: "critical Tr (multiples of Tc)",
		},
	}
	const (
		tp = 121.0
		tc = 0.11
	)
	for _, n := range ns {
		tr, ok := markov.CriticalTr(n, tp, tc, 0)
		if !ok {
			res.Notef("N=%d: no threshold in (Tc/2, Tp/2]", n)
			continue
		}
		ser.Append(float64(n), tr/tc)
		res.Notef("N=%d: critical Tr = %.3f s (%.2f·Tc)", n, tr, tr/tc)
	}
	res.Series = []stats.Series{ser}
	res.Notef("the boundary saturates at exactly 3·Tc: beyond it a size-2 seed cluster has non-positive drift (Eq 2 with i=2: Tc − Tr/3 <= 0) and growth cannot nucleate at any N — within the chain model")
	res.Notef("the §5.3 rule Tr >= 10·Tc clears the boundary for every N in the sweep")
	return res
}

func analyzeFraction(n int, tp, tr, tc float64) float64 {
	ch, err := markov.New(markov.Params{N: n, Tp: tp, Tr: tr, Tc: tc})
	if err != nil {
		return math.NaN()
	}
	return ch.FractionUnsynchronized()
}
