package experiments

import (
	"math"
	"strings"
	"testing"

	"routesync/internal/jitter"
	"routesync/internal/rng"
	"routesync/internal/stats"
)

func TestExtCoherenceRises(t *testing.T) {
	r := ExtCoherence(quickModel())
	s := r.Series[0]
	if s.Len() < 10 {
		t.Fatalf("too few samples: %d", s.Len())
	}
	first, last := s.Y[0], s.Y[s.Len()-1]
	if last < 0.95 {
		t.Fatalf("final order parameter = %v, want ~1", last)
	}
	if first > 0.6 {
		t.Fatalf("initial order parameter = %v, want low", first)
	}
}

func TestExtStormContrast(t *testing.T) {
	r := ExtStorm(6, 1)
	if len(r.Series) != 2 {
		t.Fatalf("want two policies, got %d", len(r.Series))
	}
	fixed, jittered := r.Series[0], r.Series[1]
	// Deterministic timers: lock-step forever (spread stays at the
	// sentinel epsilon).
	for i, y := range fixed.Y {
		if y > 1e-3 {
			t.Fatalf("fixed-timer spread grew at round %d: %v", i, y)
		}
	}
	// Jittered timers: spread grows to a significant fraction of Tp.
	if last := jittered.Y[jittered.Len()-1]; last < 1 {
		t.Fatalf("jittered spread after storm = %v, want > 1 s", last)
	}
}

func TestExtNSweepFasterWithMoreRouters(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	r := ExtNSweep(0.1, []int{12, 30}, 3, 3e6, 1)
	s := r.Series[0]
	if s.Len() != 2 {
		t.Fatalf("series = %+v", s)
	}
	if math.IsInf(s.Y[0], 1) || math.IsInf(s.Y[1], 1) {
		t.Fatalf("sweep did not synchronize: %v", s.Y)
	}
	if !(s.Y[1] < s.Y[0]) {
		t.Fatalf("30 routers (%.3g s) not faster than 12 (%.3g s)", s.Y[1], s.Y[0])
	}
}

func TestExtPerRouterFixedPlateau(t *testing.T) {
	r := ExtPerRouterFixed([]float64{0.5, 10}, 1)
	s := r.Series[0]
	// Small spread (< N·Tc/2): the whole population stays one cluster.
	if s.Y[0] < 15 {
		t.Fatalf("small spread should stay clustered: %v", s.Y[0])
	}
	// Large spread: disperses to small residual clusters, but not
	// necessarily singletons (no repair mechanism).
	if s.Y[1] > 6 {
		t.Fatalf("large spread should disperse: %v", s.Y[1])
	}
	joined := strings.Join(r.Notes, " ")
	if !strings.Contains(joined, "no repair mechanism") {
		t.Fatal("missing drawback note")
	}
}

func TestExtProtocolComparison(t *testing.T) {
	r := ExtProtocolComparison(0, 0)
	if len(r.Series) != 2 {
		t.Fatal("want noise-only and recommended series")
	}
	noise, rec := r.Series[0], r.Series[1]
	for i := 0; i < noise.Len(); i++ {
		if noise.Y[i] > 0.1 {
			t.Fatalf("profile %d with OS noise only should synchronize: %v", i, noise.Y[i])
		}
		if rec.Y[i] < 0.9 {
			t.Fatalf("profile %d with 10·Tc jitter should stay unsynchronized: %v", i, rec.Y[i])
		}
	}
	if noise.Len() != 5 {
		t.Fatalf("profiles = %d, want 5", noise.Len())
	}
}

func TestExtThresholdShape(t *testing.T) {
	r := ExtThreshold([]int{10, 20, 30, 50})
	s := r.Series[0]
	if s.Len() != 4 {
		t.Fatalf("points = %d", s.Len())
	}
	// Monotone nondecreasing in N...
	for i := 1; i < s.Len(); i++ {
		if s.Y[i] < s.Y[i-1]-1e-9 {
			t.Fatalf("threshold fell with N: %v", s.Y)
		}
	}
	// ...and saturating at 3·Tc (the size-2 drift cutoff).
	if math.Abs(s.Y[s.Len()-1]-3.0) > 0.01 {
		t.Fatalf("saturation = %v, want 3·Tc", s.Y[s.Len()-1])
	}
	// The paper's N=20 point sits near the Fig 14 transition (~1.9·Tc).
	if s.Y[1] < 1.5 || s.Y[1] > 2.3 {
		t.Fatalf("N=20 threshold = %v·Tc, want ~1.9", s.Y[1])
	}
}

func TestExtMixedPeriodsNoCrossLock(t *testing.T) {
	r := ExtMixedPeriods(0.1, 3e5, 1)
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	// Mixed co-firings happen (crossings exist) but no persistent
	// cross-population cluster forms: the largest pending cluster never
	// spans a majority of the network.
	largest := r.Series[0]
	_, hi := largest.YRange()
	if hi > 10 {
		t.Fatalf("largest pending cluster = %v, want <= one population", hi)
	}
	mixed := r.Series[1]
	if mixed.Len() == 0 || mixed.Y[mixed.Len()-1] == 0 {
		t.Fatal("no mixed co-firings at all — crossings must occur")
	}
}

func TestExtMixedPeriodsJitterIndependentRate(t *testing.T) {
	// The co-firing count is drift-geometry-dominated: low and high
	// jitter give counts within a factor of two.
	lo := ExtMixedPeriods(0.1, 3e5, 1)
	hi := ExtMixedPeriods(1.1, 3e5, 1)
	cl := lo.Series[1].Y[lo.Series[1].Len()-1]
	ch := hi.Series[1].Y[hi.Series[1].Len()-1]
	if cl == 0 || ch == 0 {
		t.Fatalf("counts: %v vs %v", cl, ch)
	}
	ratio := cl / ch
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("co-firing rate strongly jitter-dependent: %v vs %v", cl, ch)
	}
}

func TestMixedPolicyDispatch(t *testing.T) {
	m := jitter.Mixed{
		Policies: map[int]jitter.Policy{3: jitter.None{Tp: 242}},
		Fallback: jitter.None{Tp: 121},
	}
	r := rng.New(1)
	if d := m.Delay(r, 3); d != 242 {
		t.Fatalf("override delay = %v", d)
	}
	if d := m.Delay(r, 0); d != 121 {
		t.Fatalf("fallback delay = %v", d)
	}
	if m.Mean() != 121 {
		t.Fatalf("mean = %v", m.Mean())
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestAblationQueueing(t *testing.T) {
	r := AblationQueueing(400, 1)
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	// Queueing trades loss for delay: fewer drops, higher p99.
	dropAll, queued := r.Series[0], r.Series[1]
	lossOf := func(s stats.Series) int {
		n := 0
		for _, y := range s.Y {
			if y < 0 {
				n++
			}
		}
		return n
	}
	maxOf := func(s stats.Series) float64 {
		_, hi := s.YRange()
		return hi
	}
	if lossOf(queued) >= lossOf(dropAll) {
		t.Fatalf("queueing did not reduce loss: %d vs %d", lossOf(queued), lossOf(dropAll))
	}
	if maxOf(queued) <= maxOf(dropAll) {
		t.Fatalf("queueing did not produce delay spikes: %v vs %v", maxOf(queued), maxOf(dropAll))
	}
}
