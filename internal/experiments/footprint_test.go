package experiments

import (
	"os"
	"runtime"
	"runtime/debug"
	"testing"
)

// TestSteadyStateFootprint is the GOGC=off smoke: it disables the
// garbage collector, runs a quick ext_netscale configuration well past
// convergence, and asserts the total heap stays under a fixed ceiling.
// With the collector off every allocation is permanent, so a steady
// state that still allocates — a pooled path quietly regressed — grows
// the heap linearly with simulated time and blows through the ceiling;
// the genuinely zero-alloc path costs only its build + warmup high-water
// mark. CI runs this with GOGC=off in the environment as well so the
// test-binary startup matches; the gate itself is SetGCPercent(-1).
//
// Skipped unless ROUTESYNC_FOOTPRINT=1: with the collector off the
// ceiling depends only on the scenario (not machine state), but the
// test pins ~10× the usual package test memory and has its own CI step.
func TestSteadyStateFootprint(t *testing.T) {
	if os.Getenv("ROUTESYNC_FOOTPRINT") == "" {
		t.Skip("set ROUTESYNC_FOOTPRINT=1 (CI runs this step with GOGC=off)")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sc := BuildNetScale(500, 25, 4, 1, 600, nil)
	sc.Run()
	runtime.ReadMemStats(&after)

	grewMB := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	t.Logf("heap growth over build + 600 simulated seconds: %.1f MB", grewMB)
	// Observed ~6 MB for build + convergence + steady windows; the
	// ceiling is ~2.5×. A leak of even one small object per packet event
	// adds tens of MB over this horizon and fails unambiguously.
	const ceilingMB = 16
	if grewMB > ceilingMB {
		t.Errorf("heap grew %.1f MB with GC off, ceiling %d MB — steady state is allocating", grewMB, ceilingMB)
	}
}
