package experiments

import (
	"math"

	"routesync/internal/jitter"
	"routesync/internal/markov"
	"routesync/internal/periodic"
	"routesync/internal/stats"
	"routesync/internal/trace"
)

// ExtLargeN pushes the Periodic Messages model two to four orders of
// magnitude past the paper's populations (§4.3 stops at N=30): an N
// sweep to 100k routers on the structure-of-arrays bucket engine. The
// workload scales the way a growing internetwork would — Tp grows with N
// so the busy fraction N·Tc/Tp stays at the paper's 1.8%, and the random
// component stays at 2.5·Tc, below the 3·Tc nucleation boundary
// (ext_threshold), so the Markov model predicts an eventually
// synchronized equilibrium at every N.
//
// Measured series run from both start states for a fixed number of
// rounds and report the fraction of rounds whose largest firing cluster
// held a majority of the routers, plus the mean normalized largest
// cluster from the unsynchronized start. Set against the equilibrium
// prediction 1 − f(N)/(f(N)+g(1)), the measurement exposes the paper's
// story at scale as metastability: a synchronized start holds its
// majority at every N (the breakup probability (1−Tc/2Tr)^(N−1) vanishes),
// while an unsynchronized start shows no majority within the run even
// though equilibrium favors one — the nucleation time f(N) dwarfs any
// observable horizon.
func ExtLargeN(ns []int, rounds int, seed int64, obs periodic.Observer) *Result {
	if len(ns) == 0 {
		ns = []int{1000, 3162, 10000, 31623, 100000}
	}
	if rounds == 0 {
		rounds = 50
	}
	const (
		tc     = 0.11
		trMult = 2.5
		// tpPerN keeps N·Tc/Tp at the paper's operating point
		// (20·0.11/121): message processing occupies 1.8% of a period.
		tpPerN = 6.05
	)
	res := &Result{
		ID:    "ext_largen",
		Title: "large-N sweep: measured majority fraction vs Markov equilibrium, 1k → 100k routers",
		Plot: trace.PlotOptions{
			XLabel: "number of routers N", YLabel: "fraction of rounds with a majority cluster",
			YMin: 0, YMax: 1,
		},
	}
	serSync := stats.Series{Name: "measured, synchronized start"}
	serUnsync := stats.Series{Name: "measured, unsynchronized start"}
	serPred := stats.Series{Name: "Markov equilibrium 1 − f(N)/(f(N)+g(1))"}
	serLargest := stats.Series{Name: "mean largest cluster / N, unsynchronized start"}

	for _, n := range ns {
		tp := tpPerN * float64(n)
		tr := trMult * tc
		measure := func(start periodic.StartState) (majority, meanLargest float64) {
			sys := periodic.New(periodic.Config{
				N:        n,
				Tc:       tc,
				Jitter:   jitter.Uniform{Tp: tp, Tr: tr},
				Start:    start,
				Seed:     seed,
				Observer: obs,
			})
			_, sizes := sys.LargestPerRound(float64(rounds) * sys.RoundWindow())
			if len(sizes) == 0 {
				return 0, 0
			}
			hits, sum := 0, 0.0
			for _, sz := range sizes {
				if 2*sz > n {
					hits++
				}
				sum += float64(sz)
			}
			return float64(hits) / float64(len(sizes)),
				sum / (float64(len(sizes)) * float64(n))
		}
		syncFrac, _ := measure(periodic.StartSynchronized)
		unsyncFrac, meanLargest := measure(periodic.StartUnsynchronized)
		serSync.Append(float64(n), syncFrac)
		serUnsync.Append(float64(n), unsyncFrac)
		serLargest.Append(float64(n), meanLargest)

		pred := math.NaN()
		if ch, err := markov.New(markov.Params{N: n, Tp: tp, Tr: tr, Tc: tc}); err == nil {
			pred = 1 - ch.FractionUnsynchronized()
			serPred.Append(float64(n), pred)
		}
		res.Notef("N=%d (Tp=%.0fs): majority fraction sync-start %.3f, unsync-start %.3f, equilibrium prediction %.3f, mean largest/N %.4f",
			n, tp, syncFrac, unsyncFrac, pred, meanLargest)
	}
	res.Series = []stats.Series{serSync, serUnsync, serPred, serLargest}
	res.Notef("Tr = %.1f·Tc sits below the 3·Tc nucleation boundary, so equilibrium is synchronized at every N; the unsynchronized start stays without a majority for all %d observed rounds because the nucleation time f(N) exceeds any simulable horizon — scale makes the synchronized state sticky in both directions", trMult, rounds)
	return res
}
