package experiments

import "testing"

// TestExtLargeNMetastability runs a reduced sweep and checks the shape
// that makes the extension worth plotting: below the 3·Tc nucleation
// boundary the Markov equilibrium is fully synchronized at every N, a
// synchronized start holds its majority, and an unsynchronized start
// never nucleates one within the observed rounds.
func TestExtLargeNMetastability(t *testing.T) {
	ns := []int{200, 2000}
	rounds := 8
	if testing.Short() {
		ns = []int{200}
	}
	r := ExtLargeN(ns, rounds, 1, nil)
	if len(r.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(r.Series))
	}
	sync, unsync, pred, largest := r.Series[0], r.Series[1], r.Series[2], r.Series[3]
	for _, s := range []struct {
		name string
		y    []float64
	}{{"sync", sync.Y}, {"unsync", unsync.Y}, {"pred", pred.Y}, {"largest", largest.Y}} {
		if len(s.y) != len(ns) {
			t.Fatalf("%s series has %d points, want %d", s.name, len(s.y), len(ns))
		}
	}
	for i := range ns {
		if sync.Y[i] != 1 {
			t.Errorf("N=%d: synchronized start lost its majority (fraction %v)", ns[i], sync.Y[i])
		}
		if unsync.Y[i] != 0 {
			t.Errorf("N=%d: unsynchronized start nucleated a majority (fraction %v)", ns[i], unsync.Y[i])
		}
		if pred.Y[i] < 0.99 {
			t.Errorf("N=%d: equilibrium prediction %v, want ≈1 below the nucleation boundary", ns[i], pred.Y[i])
		}
		if largest.Y[i] <= 0 || largest.Y[i] > 1 {
			t.Errorf("N=%d: mean largest/N %v out of (0,1]", ns[i], largest.Y[i])
		}
	}
}

// TestExtLargeNDeterministic pins run-to-run reproducibility: two calls
// with the same seed must agree bit for bit (the runner's incremental
// re-run machinery depends on it).
func TestExtLargeNDeterministic(t *testing.T) {
	a := ExtLargeN([]int{300}, 6, 3, nil)
	b := ExtLargeN([]int{300}, 6, 3, nil)
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series count diverged: %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		sa, sb := a.Series[i], b.Series[i]
		for j := range sa.Y {
			if sa.X[j] != sb.X[j] || sa.Y[j] != sb.Y[j] {
				t.Fatalf("series %q point %d diverged: (%v,%v) vs (%v,%v)",
					sa.Name, j, sa.X[j], sa.Y[j], sb.X[j], sb.Y[j])
			}
		}
	}
	for i := range a.Notes {
		if a.Notes[i] != b.Notes[i] {
			t.Fatalf("note %d diverged:\n%s\n%s", i, a.Notes[i], b.Notes[i])
		}
	}
}
