package experiments

import (
	"testing"

	"routesync/internal/routing"
)

// checkNoLeak asserts the pool accounting identity at a quiescent point:
// every live packet slot is either parked inside a simulator structure
// (queue, in-flight window, boundary machinery) or held by an agent
// awaiting CPU processing. Anything else is a leak — a terminal sink
// (delivery, drop, TTL expiry) that forgot to release its slot.
func checkNoLeak(t *testing.T, name string, live, parked int, agents []*routing.Agent) {
	t.Helper()
	pending := 0
	for _, ag := range agents {
		pending += ag.PendingPackets()
	}
	if live != parked+pending {
		t.Errorf("%s: %d live packets but only %d parked + %d agent-pending — %d leaked",
			name, live, parked, pending, live-parked-pending)
	}
}

// TestNetScaleReleasesAllPackets runs a quick ext_netscale configuration
// on 1, 2 and 4 logical processes and checks that every injected packet
// — routing updates, pings, echoes — reaches a releasing sink. The mid-
// run probe catches leaks that quiescence would mask (a slot both leaked
// and never reused looks identical to one parked forever).
func TestNetScaleReleasesAllPackets(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		sc := BuildNetScale(100, 25, k, 1, 90, nil)
		sc.Net.RunUntil(45)
		checkNoLeak(t, "netscale mid-run", sc.Net.LivePackets(), sc.Net.ParkedPackets(), sc.Agents)
		sc.Run()
		checkNoLeak(t, "netscale end", sc.Net.LivePackets(), sc.Net.ParkedPackets(), sc.Agents)
	}
}

// TestChurnReleasesAllPackets does the same for a quick ext_churn
// configuration: link flaps and router crashes exercise the failure
// sinks (drops on down links, queue flushes, agent crash resets), each
// of which must release the slots it terminates.
func TestChurnReleasesAllPackets(t *testing.T) {
	pol := ChurnPolicy{Triggered: true, HoldDown: 20}
	for _, k := range []int{1, 2, 4} {
		sc := BuildChurnBench(6, 8, k, 1, 40, pol, 120, nil)
		sc.Net.RunUntil(60)
		checkNoLeak(t, "churn mid-run", sc.Net.LivePackets(), sc.Net.ParkedPackets(), sc.Agents)
		sc.Run()
		checkNoLeak(t, "churn end", sc.Net.LivePackets(), sc.Net.ParkedPackets(), sc.Agents)
	}
}
