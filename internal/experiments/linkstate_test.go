package experiments

import (
	"strings"
	"testing"
)

// TestExtLinkStateSynchronizes: the paper's mechanism on a link-state
// protocol — low-jitter LSA refreshes lock step, Tp/2 jitter does not.
func TestExtLinkStateSynchronizes(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-level LAN run (~20 s)")
	}
	r := ExtLinkState(20, 2e5, 1)
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	joined := strings.Join(r.Notes, "\n")
	if !strings.Contains(joined, "uniform(Tp=121,Tr=0.1): last-origination spread") ||
		!strings.Contains(strings.SplitN(joined, "\n", 2)[0], "(synchronized)") {
		t.Fatalf("low-jitter run did not synchronize: %v", r.Notes)
	}
	if !strings.Contains(joined, "halfspread(Tp=121)") {
		t.Fatalf("missing halfspread run: %v", r.Notes)
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "halfspread") && strings.Contains(n, "(synchronized)") {
			t.Fatalf("Tp/2 jitter synchronized: %v", n)
		}
	}
	// The low-jitter spread series collapses by orders of magnitude.
	s := r.Series[0]
	if s.Y[0] < 10 || s.Y[s.Len()-1] > 10 {
		t.Fatalf("spread series did not collapse: %v -> %v", s.Y[0], s.Y[s.Len()-1])
	}
}
