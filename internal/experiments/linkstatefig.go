package experiments

import (
	"math"

	"routesync/internal/jitter"
	"routesync/internal/linkstate"
	"routesync/internal/netsim"
	"routesync/internal/rng"
	"routesync/internal/stats"
	"routesync/internal/trace"
)

// ExtLinkState demonstrates that the paper's mechanism is not specific to
// distance-vector protocols: link-state routers whose periodic LSA
// refreshes are re-armed only after flooding work drains (the natural
// implementation) fall into the same lock-step. N link-state routers
// share a LAN with per-LSA processing cost Tc; the figure tracks the
// spread of each round's origination times for low jitter (synchronizes)
// and Tp/2 jitter (does not).
func ExtLinkState(routers int, horizon float64, seed int64) *Result {
	if routers == 0 {
		routers = 10
	}
	if horizon == 0 {
		horizon = 3e5
	}
	const (
		tp = 121.0
		tc = 0.11
	)
	res := &Result{
		ID:    "ext_linkstate",
		Title: "link-state LSA refresh synchronization (same mechanism, different protocol)",
		Plot: trace.PlotOptions{
			XLabel: "time (s)", YLabel: "last-origination spread (s, log)", LogY: true,
		},
	}
	for _, pol := range []jitter.Policy{
		jitter.Uniform{Tp: tp, Tr: 0.1},
		jitter.HalfSpread{Tp: tp},
	} {
		net := netsim.NewNetwork(seed)
		offsets := rng.New(seed + 31)
		nodes := make([]*netsim.Node, routers)
		for i := range nodes {
			nodes[i] = net.NewNode("ls", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
		}
		net.NewLAN(nodes, netsim.LANConfig{})
		last := make([]float64, routers)
		for i, nd := range nodes {
			i := i
			ag := linkstate.NewAgent(nd, linkstate.Config{
				RefreshPeriod: tp,
				Jitter:        pol,
				PrepareCost:   tc,
				ProcessCost:   tc,
				Seed:          seed,
			})
			ag.OnSend = func(t float64) { last[i] = t }
			// Unsynchronized start: random phases over one period (the
			// model's §4 initial condition — equally-spaced offsets would
			// be the most anti-clustered start and suppress nucleation).
			ag.Start(offsets.Uniform(0, tp))
		}

		// Sample the spread of the routers' most recent originations: all
		// within ~N·Tc of each other means one synchronized cluster; ~Tp
		// apart means dispersed phases. (Per-round send indices drift
		// between cluster members and loners, so index-aligned spreads
		// would mislead.)
		ser := stats.Series{Name: pol.String()}
		sampleEvery := 5 * tp
		for t := sampleEvery; t <= horizon; t += sampleEvery {
			net.RunUntil(t)
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range last {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			spread := hi - lo
			if spread <= 0 {
				spread = 1e-6
			}
			ser.Append(t, spread)
		}
		res.Series = append(res.Series, ser)
		if ser.Len() > 0 {
			first, final := ser.Y[0], ser.Y[ser.Len()-1]
			locked := final <= float64(routers)*tc
			res.Notef("%s: last-origination spread %.3gs → %.3gs (%s)",
				pol, first, final, lockWord(locked))
		}
	}
	res.Notef("the coupled refresh timer (re-armed after flooding work) reproduces the paper's clustering on a link-state protocol; OSPF's LSA refresh needs the same jitter discipline")
	return res
}

func lockWord(locked bool) string {
	if locked {
		return "synchronized"
	}
	return "unsynchronized"
}
