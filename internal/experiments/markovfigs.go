package experiments

import (
	"fmt"
	"math"

	"routesync/internal/jitter"
	"routesync/internal/markov"
	"routesync/internal/parallel"
	"routesync/internal/periodic"
	"routesync/internal/stats"
	"routesync/internal/trace"
)

// AxisCap is the paper's Figure 12 y-axis ceiling: 10^12 seconds ("over
// 32 thousand years"). Infinite hitting times render clamped here.
const AxisCap = 1e12

// MarkovConfig parameterizes the §5 analysis figures.
type MarkovConfig struct {
	N    int     // paper: 20
	Tp   float64 // paper: 121
	Tc   float64 // paper: 0.11
	F2   float64 // paper Fig 10: 19 rounds
	Seed int64
	// Sims is the number of simulation replications overlaid on the
	// analysis (paper: 20); zero disables simulation overlays.
	Sims int
	// SimHorizon bounds each simulation run.
	SimHorizon float64
	// Jobs bounds the workers running replications concurrently; zero
	// or negative means one per CPU. Replication s always uses seed
	// Seed+s, so results are identical for every Jobs value.
	Jobs int
	// Obs, when non-nil, observes every simulation replication the
	// driver runs. Instrumentation only; excluded from params hashing.
	Obs periodic.Observer `json:"-"`
}

// Defaults fills zero fields with the paper's values.
func (c MarkovConfig) Defaults() MarkovConfig {
	if c.N == 0 {
		c.N = 20
	}
	if c.Tp == 0 {
		c.Tp = 121
	}
	if c.Tc == 0 {
		c.Tc = 0.11
	}
	if c.F2 == 0 {
		c.F2 = 19
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SimHorizon == 0 {
		c.SimHorizon = 2e6
	}
	return c
}

func (c MarkovConfig) chain(tr float64) *markov.Chain {
	ch, err := markov.New(markov.Params{N: c.N, Tp: c.Tp, Tr: tr, Tc: c.Tc, F2: c.F2})
	if err != nil {
		panic(err)
	}
	return ch
}

// Fig9 renders the Markov chain itself (the paper's Figure 9): the
// up/down transition probabilities per state for a representative Tr.
func Fig9(c MarkovConfig, tr float64) *Result {
	c = c.Defaults()
	if tr == 0 {
		tr = 0.2
	}
	ch := c.chain(tr)
	up := stats.Series{Name: "p(i,i+1)"}
	dn := stats.Series{Name: "p(i,i-1)"}
	stay := stats.Series{Name: "p(i,i)"}
	for i := 1; i <= c.N; i++ {
		up.Append(float64(i), ch.PUp(i))
		dn.Append(float64(i), ch.PDown(i))
		stay.Append(float64(i), ch.PStay(i))
	}
	r := &Result{
		ID:     "fig09",
		Title:  "the Markov chain: transition probabilities by state",
		Series: []stats.Series{up, dn, stay},
		Plot:   trace.PlotOptions{XLabel: "state i (largest cluster size)", YLabel: "probability"},
	}
	r.Notef("Tr=%.3g s (%.2g Tc); p(1,2) estimated as %.3g; rows renormalized when Eq1+Eq2 exceed 1",
		tr, tr/c.Tc, ch.ResolvedP12())
	return r
}

// Fig10 regenerates Figure 10: expected time (seconds) to first reach
// cluster size i starting from size 1, for Tr = 0.1 s — the Markov chain
// prediction f(i)·(Tp+Tc) against simulation replications. The paper
// finds the analysis lands within 2–3× of the simulations.
func Fig10(c MarkovConfig, tr float64) *Result {
	c = c.Defaults()
	if tr == 0 {
		tr = 0.1
	}
	ch := c.chain(tr)
	f := ch.F()
	analysis := stats.Series{Name: "analysis f(i)"}
	for i := 1; i <= c.N; i++ {
		analysis.Append(f[i]*ch.RoundSeconds(), float64(i))
	}
	r := &Result{
		ID:     "fig10",
		Title:  "expected time to reach cluster size i from size 1",
		Series: []stats.Series{analysis.ClampY(AxisCap)},
		Plot:   trace.PlotOptions{XLabel: "time (s)", YLabel: "cluster size i"},
	}
	if c.Sims > 0 {
		avg := simFirstPassageUp(c, tr)
		sim := stats.Series{Name: "simulation mean"}
		for i := 1; i <= c.N; i++ {
			if !math.IsInf(avg[i], 1) {
				sim.Append(avg[i], float64(i))
			}
		}
		r.Series = append(r.Series, sim)
		for _, i := range []int{3, 5, c.N} {
			if i <= c.N && !math.IsInf(avg[i], 1) && avg[i] > 0 {
				ratio := f[i] * ch.RoundSeconds() / avg[i]
				r.Notef("analysis/simulation ratio at i=%d: %.2f (paper reports 2–3× overall)", i, ratio)
			}
		}
		r.Notef("the exact solver of the printed Eq 1–2 chain over-predicts most in the avalanche region, where the paper's single-step assumption is weakest (clusters really merge whole clusters); see EXPERIMENTS.md")
	}
	r.Notef("f(2)=%.0f rounds, p(1,2)=%.3g", ch.ResolvedF2(), ch.ResolvedP12())
	return r
}

// simFirstPassageUp averages FirstPassageUp over c.Sims seeds, running
// the replications on the shared job runner (seed per index, so the
// averages are identical for any worker count).
func simFirstPassageUp(c MarkovConfig, tr float64) []float64 {
	perSim := parallel.Run(c.Sims, c.Jobs, func(s int) []float64 {
		sys := periodic.New(periodic.Config{
			N: c.N, Tc: c.Tc,
			Jitter:   jitter.Uniform{Tp: c.Tp, Tr: tr},
			Seed:     c.Seed + int64(s),
			Observer: c.Obs,
		})
		return sys.FirstPassageUp(c.SimHorizon)
	})
	return averagePassages(perSim, c.N, c.Sims)
}

// simFirstPassageDown is the synchronized-start counterpart used by
// Figure 11.
func simFirstPassageDown(c MarkovConfig, tr float64) []float64 {
	perSim := parallel.Run(c.Sims, c.Jobs, func(s int) []float64 {
		sys := periodic.New(periodic.Config{
			N: c.N, Tc: c.Tc,
			Jitter:   jitter.Uniform{Tp: c.Tp, Tr: tr},
			Start:    periodic.StartSynchronized,
			Seed:     c.Seed + int64(s),
			Observer: c.Obs,
		})
		return sys.FirstPassageDown(c.SimHorizon)
	})
	return averagePassages(perSim, c.N, c.Sims)
}

// averagePassages reduces per-replication first-passage vectors to the
// mean over sizes every run reached; unreached sizes stay +Inf.
func averagePassages(perSim [][]float64, n, sims int) []float64 {
	sum := make([]float64, n+1)
	count := make([]int, n+1)
	for _, times := range perSim {
		for i := 1; i <= n; i++ {
			if !math.IsInf(times[i], 1) {
				sum[i] += times[i]
				count[i]++
			}
		}
	}
	avg := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		if count[i] == sims { // average only sizes every run reached
			avg[i] = sum[i] / float64(count[i])
		} else {
			avg[i] = math.Inf(1)
		}
	}
	return avg
}

// Fig11 regenerates Figure 11: expected time to reach cluster size i
// starting from size N (synchronized), for Tr = 0.3 s.
func Fig11(c MarkovConfig, tr float64) *Result {
	c = c.Defaults()
	if tr == 0 {
		tr = 0.3
	}
	ch := c.chain(tr)
	g := ch.G()
	analysis := stats.Series{Name: "analysis g(i)"}
	for i := 1; i <= c.N; i++ {
		analysis.Append(g[i]*ch.RoundSeconds(), float64(i))
	}
	r := &Result{
		ID:     "fig11",
		Title:  "expected time to reach cluster size i from size N",
		Series: []stats.Series{analysis.ClampY(AxisCap)},
		Plot:   trace.PlotOptions{XLabel: "time (s)", YLabel: "cluster size i"},
	}
	if c.Sims > 0 {
		avg := simFirstPassageDown(c, tr)
		sim := stats.Series{Name: "simulation mean"}
		for i := c.N; i >= 1; i-- {
			if !math.IsInf(avg[i], 1) {
				sim.Append(avg[i], float64(i))
			}
		}
		r.Series = append(r.Series, sim)
		if !math.IsInf(avg[1], 1) && avg[1] > 0 {
			ratio := g[1] * ch.RoundSeconds() / avg[1]
			r.Notef("analysis/simulation ratio at i=1: %.2f (paper: 2–3×)", ratio)
		}
	}
	return r
}

// Fig12 regenerates Figure 12: f(N) and g(1), in seconds on a log axis,
// as Tr sweeps from just above Tc/2 to 4.5·Tc. The three regions the
// paper names — low randomization (easy to synchronize), moderate, high
// (easy to unsynchronize) — appear as the crossing curves. When c.Sims is
// positive, simulation check marks are overlaid like the paper's "X"
// (runs from an unsynchronized start) and "+" (from a synchronized
// start) at the Tr values where the expected times fit in the sim
// horizon.
func Fig12(c MarkovConfig, trOverTcLo, trOverTcHi, step float64) *Result {
	c = c.Defaults()
	if step == 0 {
		trOverTcLo, trOverTcHi, step = 0.55, 4.5, 0.05
	}
	fn := stats.Series{Name: "f(N): unsync→sync"}
	g1 := stats.Series{Name: "g(1): sync→unsync"}
	for m := trOverTcLo; m <= trOverTcHi+1e-9; m += step {
		ch := c.chain(m * c.Tc)
		fn.Append(m, ch.FN()*ch.RoundSeconds())
		g1.Append(m, ch.G1()*ch.RoundSeconds())
	}
	r := &Result{
		ID:     "fig12",
		Title:  "expected time to synchronize / unsynchronize vs Tr",
		Series: []stats.Series{fn.ClampY(AxisCap), g1.ClampY(AxisCap)},
		Plot: trace.PlotOptions{
			XLabel: "Tr (multiples of Tc)", YLabel: "seconds (log)",
			LogY: true,
		},
	}
	if c.Sims > 0 {
		seeds := c.Sims
		if seeds > 3 {
			seeds = 3 // per-point replication; the paper plots single runs
		}
		// Each mark averages up to `seeds` replications; the replications
		// run on the job runner, seeded by index as everywhere else.
		mark := func(m float64, start periodic.StartState,
			run func(sys *periodic.System) periodic.SyncResult) (float64, bool) {
			times := parallel.Run(seeds, c.Jobs, func(s int) float64 {
				sys := periodic.New(periodic.Config{
					N: c.N, Tc: c.Tc,
					Jitter:   jitter.Uniform{Tp: c.Tp, Tr: m * c.Tc},
					Start:    start,
					Seed:     c.Seed + int64(s),
					Observer: c.Obs,
				})
				res := run(sys)
				if !res.Reached {
					return math.Inf(1)
				}
				return res.Time
			})
			var sum float64
			reached := 0
			for _, t := range times {
				if !math.IsInf(t, 1) {
					reached++
					sum += t
				}
			}
			if reached == 0 {
				return 0, false
			}
			return sum / float64(reached), true
		}
		syncMarks := stats.Series{Name: "sim: unsync start (X)"}
		for _, m := range []float64{0.6, 0.8, 1.0} {
			if mean, ok := mark(m, periodic.StartUnsynchronized, func(sys *periodic.System) periodic.SyncResult {
				return sys.RunUntilSynchronized(c.SimHorizon)
			}); ok {
				syncMarks.Append(m, mean)
			}
		}
		breakMarks := stats.Series{Name: "sim: sync start (+)"}
		for _, m := range []float64{2.6, 3.0, 3.5, 4.0} {
			if mean, ok := mark(m, periodic.StartSynchronized, func(sys *periodic.System) periodic.SyncResult {
				return sys.RunUntilBroken(2, c.SimHorizon)
			}); ok {
				breakMarks.Append(m, mean)
			}
		}
		r.Series = append(r.Series, syncMarks, breakMarks)
		r.Notef("simulation marks: %d unsync-start points, %d sync-start points (means of up to %d seeds, horizon %.1es)",
			syncMarks.Len(), breakMarks.Len(), seeds, c.SimHorizon)
	}
	// Locate the crossing (the paper's "moderate randomization" center).
	cross := math.NaN()
	for i := 1; i < fn.Len(); i++ {
		if (fn.Y[i-1]-g1.Y[i-1])*(fn.Y[i]-g1.Y[i]) <= 0 {
			cross = fn.X[i]
			break
		}
	}
	if !math.IsNaN(cross) {
		r.Notef("f(N) and g(1) cross near Tr = %.2f Tc", cross)
	}
	r.Notef("f(N) grows exponentially with Tr in the low/moderate regions (paper §5.3)")
	return r
}

// Fig13 regenerates Figure 13: the Figure 12 curves for N in {10, 20, 30}
// and a second processing cost, verifying the analysis across parameters.
func Fig13(c MarkovConfig, ns []int, tcs []float64) *Result {
	c = c.Defaults()
	if len(ns) == 0 {
		ns = []int{10, 20, 30}
	}
	if len(tcs) == 0 {
		tcs = []float64{0.01, 0.11}
	}
	r := &Result{
		ID:    "fig13",
		Title: "time to synchronize/unsynchronize vs Tr, by N and Tc",
		Plot: trace.PlotOptions{
			XLabel: "Tr (multiples of Tc)", YLabel: "seconds (log)",
			LogY: true,
		},
	}
	for _, tc := range tcs {
		for _, n := range ns {
			cc := c
			cc.N = n
			cc.Tc = tc
			fn := stats.Series{Name: fmt.Sprintf("f(N) N=%d Tc=%.2g", n, tc)}
			g1 := stats.Series{Name: fmt.Sprintf("g(1) N=%d Tc=%.2g", n, tc)}
			for m := 0.55; m <= 8.0+1e-9; m += 0.1 {
				ch := cc.chain(m * tc)
				fn.Append(m, ch.FN()*ch.RoundSeconds())
				g1.Append(m, ch.G1()*ch.RoundSeconds())
			}
			r.Series = append(r.Series, fn.ClampY(AxisCap), g1.ClampY(AxisCap))
		}
	}
	r.Notef("choosing Tr ≥ 10·Tc keeps break-up fast across all parameter sets (paper §5.3)")
	return r
}

// Fig14 regenerates Figure 14: the estimated fraction of time the system
// is unsynchronized, f(N)/(f(N)+g(1)), against Tr — the abrupt
// predominately-synchronized → predominately-unsynchronized transition.
func Fig14(c MarkovConfig, trOverTcLo, trOverTcHi, step float64) *Result {
	c = c.Defaults()
	if step == 0 {
		trOverTcLo, trOverTcHi, step = 0.55, 3.0, 0.025
	}
	ser := stats.Series{Name: "fraction unsynchronized"}
	for m := trOverTcLo; m <= trOverTcHi+1e-9; m += step {
		ch := c.chain(m * c.Tc)
		ser.Append(m, ch.FractionUnsynchronized())
	}
	r := &Result{
		ID:     "fig14",
		Title:  "fraction of time unsynchronized vs random component Tr",
		Series: []stats.Series{ser},
		Plot: trace.PlotOptions{
			XLabel: "Tr (multiples of Tc)", YLabel: "fraction unsynchronized",
			YMin: 0, YMax: 1,
		},
	}
	r.Notef("transition width (0.1→0.9): %s", transitionWidth(ser, 0.1, 0.9))
	return r
}

// Fig15 regenerates Figure 15: the fraction of time unsynchronized as a
// function of the number of routers N, with Tr fixed (paper: 0.3 s).
// Adding a single router flips the network from predominately
// unsynchronized to predominately synchronized.
func Fig15(c MarkovConfig, tr float64, nLo, nHi int) *Result {
	c = c.Defaults()
	if tr == 0 {
		tr = 0.3
	}
	if nHi == 0 {
		nLo, nHi = 3, 28
	}
	ser := stats.Series{Name: "fraction unsynchronized"}
	for n := nLo; n <= nHi; n++ {
		cc := c
		cc.N = n
		ch := cc.chain(tr)
		ser.Append(float64(n), ch.FractionUnsynchronized())
	}
	r := &Result{
		ID:     "fig15",
		Title:  "fraction of time unsynchronized vs number of routers",
		Series: []stats.Series{ser},
		Plot: trace.PlotOptions{
			XLabel: "number of routers N", YLabel: "fraction unsynchronized",
			YMin: 0, YMax: 1,
		},
	}
	// Find the steepest single-router drop.
	worstDrop, atN := 0.0, 0
	for i := 1; i < ser.Len(); i++ {
		if d := ser.Y[i-1] - ser.Y[i]; d > worstDrop {
			worstDrop, atN = d, int(ser.X[i])
		}
	}
	r.Notef("largest single-router drop: %.2f when N reaches %d (the paper's 'addition of a single router' transition)", worstDrop, atN)
	return r
}

func transitionWidth(s stats.Series, lo, hi float64) string {
	xHi, xLo := math.NaN(), math.NaN()
	for i := s.Len() - 1; i >= 0; i-- {
		if s.Y[i] >= hi {
			xHi = s.X[i]
		}
		if s.Y[i] <= lo {
			xLo = s.X[i]
			break
		}
	}
	if math.IsNaN(xHi) || math.IsNaN(xLo) {
		return "not bracketed in sweep"
	}
	return fmt.Sprintf("%.2f Tc (from %.2f to %.2f)", xHi-xLo, xLo, xHi)
}
