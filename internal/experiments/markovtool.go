package experiments

import (
	"fmt"
	"math"
	"strings"

	"routesync/internal/markov"
	"routesync/internal/runner"
)

// MarkovToolOverrides carries cmd/markovtool's flags into the registered
// analysis-table experiments.
type MarkovToolOverrides struct {
	N    int     `json:"n"`
	Tp   float64 `json:"tp"`
	Tr   float64 `json:"tr"`
	Tc   float64 `json:"tc"`
	F2   float64 `json:"f2"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	Step float64 `json:"step"`
}

// markovToolDefaults mirrors the markovtool flag defaults for callers
// that pass a nil override.
func markovToolDefaults() MarkovToolOverrides {
	return MarkovToolOverrides{N: 20, Tp: 121, Tr: 0.1, Tc: 0.11, Lo: 0.55, Hi: 4.5, Step: 0.05}
}

func markovToolOverrides(spec *runner.Spec) MarkovToolOverrides {
	if o, ok := spec.Overrides.(MarkovToolOverrides); ok {
		return o
	}
	return markovToolDefaults()
}

// MarkovSweeps lists the valid -sweep values ("" is the single-point
// table) in the order frontends should print them.
func MarkovSweeps() []string { return []string{"", "threshold", "tr", "n"} }

// MarkovSweepExperiment maps a -sweep flag value to its experiment id,
// or "" for an unknown sweep.
func MarkovSweepExperiment(sweep string) string {
	switch sweep {
	case "":
		return "markov_table"
	case "threshold":
		return "markov_sweep_threshold"
	case "tr":
		return "markov_sweep_tr"
	case "n":
		return "markov_sweep_n"
	default:
		return ""
	}
}

func registerMarkovTool(reg *runner.Registry) {
	reg.Register(runner.Experiment{
		ID:    "markov_table",
		Title: "Markov chain single-point analysis table",
		Tags:  []string{"markovtool"},
		Cost:  runner.CostCheap,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			o := markovToolOverrides(spec)
			ch, err := markov.New(markov.Params{N: o.N, Tp: o.Tp, Tr: o.Tr, Tc: o.Tc, F2: o.F2})
			if err != nil {
				return nil, err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "N=%d Tp=%g Tr=%g Tc=%g (Tr = %.2f·Tc); p(1,2)=%.4g f(2)=%.4g rounds\n\n",
				o.N, o.Tp, o.Tr, o.Tc, o.Tr/o.Tc, ch.ResolvedP12(), ch.ResolvedF2())
			f, g := ch.F(), ch.G()
			fmt.Fprintln(&b, " i   p(i,i+1)   p(i,i-1)   f(i) rounds     g(i) rounds")
			for i := 1; i <= o.N; i++ {
				fmt.Fprintf(&b, "%2d   %.2e  %.2e  %-14s  %-14s\n",
					i, ch.PUp(i), ch.PDown(i), markovRounds(f[i]), markovRounds(g[i]))
			}
			fmt.Fprintf(&b, "\nexpected unsync→sync: %s\n", markovSecs(ch.FN()*ch.RoundSeconds()))
			fmt.Fprintf(&b, "expected sync→unsync: %s\n", markovSecs(ch.G1()*ch.RoundSeconds()))
			fmt.Fprintf(&b, "fraction of time unsynchronized: %.4f\n", ch.FractionUnsynchronized())
			if pi := ch.Stationary(); pi != nil {
				best, idx := 0.0, 1
				for i := 1; i <= o.N; i++ {
					if pi[i] > best {
						best, idx = pi[i], i
					}
				}
				fmt.Fprintf(&b, "stationary mode: cluster size %d (π=%.3f)\n", idx, best)
			}
			return &runner.Artifacts{ASCII: b.String()}, nil
		},
	})
	reg.Register(runner.Experiment{
		ID:    "markov_sweep_threshold",
		Title: "critical Tr threshold vs router count",
		Tags:  []string{"markovtool"},
		Cost:  runner.CostCheap,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			o := markovToolOverrides(spec)
			var b strings.Builder
			fmt.Fprintln(&b, "N     critical Tr (s)   critical Tr / Tc")
			for k := int(o.Lo); k <= int(o.Hi); k++ {
				if k < 2 {
					continue
				}
				trc, ok := markov.CriticalTr(k, o.Tp, o.Tc, 0)
				if !ok {
					fmt.Fprintf(&b, "%-4d  (no threshold in (Tc/2, Tp/2])\n", k)
					continue
				}
				fmt.Fprintf(&b, "%-4d  %-16.4f  %.3f\n", k, trc, trc/o.Tc)
			}
			return &runner.Artifacts{ASCII: b.String()}, nil
		},
	})
	reg.Register(runner.Experiment{
		ID:    "markov_sweep_tr",
		Title: "hitting times and fraction-unsync vs Tr",
		Tags:  []string{"markovtool"},
		Cost:  runner.CostCheap,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			o := markovToolOverrides(spec)
			var b strings.Builder
			fmt.Fprintln(&b, "Tr/Tc     f(N) seconds      g(1) seconds      fraction-unsync")
			for m := o.Lo; m <= o.Hi+1e-9; m += o.Step {
				ch, err := markov.New(markov.Params{N: o.N, Tp: o.Tp, Tr: m * o.Tc, Tc: o.Tc, F2: o.F2})
				if err != nil {
					return nil, err
				}
				fmt.Fprintf(&b, "%-8.3f  %-16s  %-16s  %.4f\n",
					m, markovSecs(ch.FN()*ch.RoundSeconds()), markovSecs(ch.G1()*ch.RoundSeconds()),
					ch.FractionUnsynchronized())
			}
			return &runner.Artifacts{ASCII: b.String()}, nil
		},
	})
	reg.Register(runner.Experiment{
		ID:    "markov_sweep_n",
		Title: "hitting times and fraction-unsync vs router count",
		Tags:  []string{"markovtool"},
		Cost:  runner.CostCheap,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			o := markovToolOverrides(spec)
			var b strings.Builder
			fmt.Fprintln(&b, "N     f(N) seconds      g(1) seconds      fraction-unsync")
			for k := int(o.Lo); k <= int(o.Hi); k++ {
				if k < 2 {
					continue
				}
				ch, err := markov.New(markov.Params{N: k, Tp: o.Tp, Tr: o.Tr, Tc: o.Tc, F2: o.F2})
				if err != nil {
					return nil, err
				}
				fmt.Fprintf(&b, "%-4d  %-16s  %-16s  %.4f\n",
					k, markovSecs(ch.FN()*ch.RoundSeconds()), markovSecs(ch.G1()*ch.RoundSeconds()),
					ch.FractionUnsynchronized())
			}
			return &runner.Artifacts{ASCII: b.String()}, nil
		},
	})
}

// markovRounds formats a hitting time in rounds the way markovtool's
// table always has.
func markovRounds(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.4g", v)
}

// markovSecs formats a duration in seconds with day/hour/year annotations.
func markovSecs(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case v > 86400*365:
		return fmt.Sprintf("%.3g (%.0fy)", v, v/(86400*365))
	case v > 86400:
		return fmt.Sprintf("%.3g (%.1fd)", v, v/86400)
	case v > 3600:
		return fmt.Sprintf("%.3g (%.1fh)", v, v/3600)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
