package experiments

import (
	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/routing"
	"routesync/internal/workload"
)

// The metro-LAN scenario is the low-lookahead stress case for the
// partition engine: broadcast segments joined by ~100 µs bridges, so the
// conservative engine's window size (the lookahead) is four orders of
// magnitude below the routing-protocol period that actually spaces the
// cross-segment traffic. Conservative runs pay a barrier per 100 µs of
// progress near every event cluster; the optimistic engine's adaptive
// leases stretch toward the real traffic gap and commit the same events
// in a tiny fraction of the rounds. The benchmark harness
// (internal/bench.NetsimLowLookahead → out/BENCH_*.json) times this
// build under both modes; the determinism and window-ratio properties
// are tested in internal/netsim and internal/experiments.

// MetroLANScenario is one built instance of the metro-LAN scenario,
// exposed so tests and the benchmark harness run exactly the same thing.
type MetroLANScenario struct {
	Net    *netsim.Network
	Pinger *workload.Pinger
	// Agents lists the attached routing agents (leak audits sum their
	// pending-packet counts).
	Agents []*routing.Agent
	// Segments and PerSeg give the LAN geometry; Partitions the realized K.
	Segments, PerSeg, Partitions int
	// Horizon is the configured run length; call Run to execute it.
	Horizon float64
}

// Run executes the scenario to its horizon.
func (s *MetroLANScenario) Run() { s.Net.RunUntil(s.Horizon) }

// BuildMetroLAN wires the metro-LAN scenario — segments broadcast LANs
// of perSeg routers each, bridged gateway-to-gateway, every router
// speaking a compressed periodic protocol, partitioned into k logical
// processes along segment boundaries — with an end-to-end ping stream
// between interior hosts of segment 0 and the antipodal segment. It does
// not run it.
//
// Optional partition options select the synchronization mode (the
// optimistic determinism tests pass netsim.WithSyncMode); by default the
// ambient ROUTESYNC_SYNC_MODE applies.
func BuildMetroLAN(segments, perSeg, k int, seed int64, horizon float64, obs des.Observer, opts ...netsim.PartitionOption) *MetroLANScenario {
	if segments < 2 || perSeg < 3 {
		panic("experiments: BuildMetroLAN needs at least 2 segments of 3 hosts")
	}
	if k < 1 {
		k = 1
	}
	if k > segments {
		k = segments // one segment is the smallest unit of parallelism
	}

	nw := netsim.NewNetwork(seed)
	if obs != nil {
		nw.SetObserver(obs)
	}
	topo := nw.BuildMetroLAN(netsim.MetroLANConfig{
		Segments:    segments,
		HostsPerSeg: perSeg,
		CPU:         &netsim.CPUConfig{Mode: netsim.CPUModeLegacy, InputQueueCap: 4},
	})
	// Cap the optimistic lease at half a second: cross-segment traffic
	// (pings at ~1 s, routing updates every 2.5–7.5 s across many
	// gateways) rarely leaves longer quiet gaps, so the cap costs no
	// rounds while bounding rollback depth and every speculation
	// buffer's high-water mark. Callers' opts can still override it.
	popts := append([]netsim.PartitionOption{
		netsim.WithOptimisticConfig(netsim.OptimisticConfig{MaxLease: 0.5}),
	}, opts...)
	nw.Partition(k, netsim.OwnerByBlock(perSeg, segments, k), popts...)

	sc := &MetroLANScenario{
		Net:        nw,
		Segments:   segments,
		PerSeg:     perSeg,
		Partitions: k,
		Horizon:    horizon,
	}
	// Compressed protocol (5 s period) so convergence and several full
	// periods fit a short horizon; every router speaks it, gateways
	// included, since the bridges are the only inter-segment paths.
	cfg := routing.Config{
		Profile: routing.Profile{
			Name: "rip-compressed", Period: 5, Infinity: 16,
			TimeoutFactor: 3, GCFactor: 5,
			TriggeredUpdates: true, SplitHorizon: true,
		},
		Jitter: jitter.HalfSpread{Tp: 5},
		Costs:  routing.DefaultCosts(),
	}
	for s := 0; s < segments; s++ {
		for i := 0; i < perSeg; i++ {
			nd := topo.Hosts[s][i]
			agCfg := cfg
			agCfg.Seed = seed*31 + int64(nd.ID)
			ag := routing.NewAgent(nd, agCfg)
			// Staggered steady-state starts spread over one period, so the
			// periodic bursts are desynchronized the way the paper's jitter
			// leaves them.
			ag.Start(1 + 0.101*float64(len(sc.Agents)))
			sc.Agents = append(sc.Agents, ag)
		}
	}

	src := topo.Hosts[0][perSeg/2]
	dst := topo.Hosts[segments/2][perSeg/2]
	interval := 1.01
	count := int((horizon - 8) / interval)
	if count < 10 {
		count = 10
	}
	sc.Pinger = workload.NewPinger(src, dst, workload.PingConfig{
		Interval: interval,
		Count:    count,
		Timeout:  2,
	})
	sc.Pinger.Start(5)
	return sc
}
