package experiments

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"routesync/internal/netsim"
	"routesync/internal/routing"
	"routesync/internal/workload"
)

// metroLANSnap captures everything the metro-LAN scenario computes that a
// user could observe: the end-to-end ping result, network counters, and
// per-agent protocol statistics.
type metroLANSnap struct {
	ping     workload.PingResult
	counters netsim.Counters
	stats    []routing.Stats
}

func runMetroLAN(seg, per, k int, horizon float64, opts ...netsim.PartitionOption) (metroLANSnap, netsim.SyncStats) {
	sc := BuildMetroLAN(seg, per, k, 3, horizon, nil, opts...)
	sc.Run()
	snap := metroLANSnap{ping: sc.Pinger.Result(), counters: sc.Net.Counters()}
	// Lost pings record NaN RTTs, which reflect.DeepEqual treats as
	// unequal to themselves; map them to a comparable sentinel.
	for i, v := range snap.ping.RTTs {
		if math.IsNaN(v) {
			snap.ping.RTTs[i] = -1
		}
	}
	for _, ag := range sc.Agents {
		snap.stats = append(snap.stats, ag.Stats())
	}
	return snap, sc.Net.SyncStats()
}

// TestMetroLANOptimisticKInvariant is the determinism gate for the
// low-lookahead scenario: optimistic runs at every partition count are
// bit-identical to the sequential reference — ping RTT timeline, network
// counters, and every agent's protocol statistics.
func TestMetroLANOptimisticKInvariant(t *testing.T) {
	const seg, per = 8, 6
	const horizon = 15.0
	ref, _ := runMetroLAN(seg, per, 1, horizon)
	if ref.counters.Delivered == 0 || ref.ping.Sent == 0 {
		t.Fatalf("degenerate reference run: %+v", ref.counters)
	}
	if ref.ping.Lost() == ref.ping.Sent {
		t.Fatal("all pings lost; the bridged topology never converged")
	}
	for _, k := range []int{1, 2, 4} {
		name := fmt.Sprintf("optimistic/k=%d", k)
		got, stats := runMetroLAN(seg, per, k, horizon, netsim.WithSyncMode(netsim.SyncOptimistic))
		if stats.Mode != netsim.SyncOptimistic {
			t.Fatalf("%s: mode = %v", name, stats.Mode)
		}
		if !reflect.DeepEqual(got.counters, ref.counters) {
			t.Errorf("%s: counters diverge:\n got %+v\nwant %+v", name, got.counters, ref.counters)
		}
		if !reflect.DeepEqual(got.ping, ref.ping) {
			t.Errorf("%s: ping results diverge:\n got %+v\nwant %+v", name, got.ping, ref.ping)
		}
		if !reflect.DeepEqual(got.stats, ref.stats) {
			t.Errorf("%s: agent stats diverge", name)
		}
	}
}

// TestMetroLANWindowRatio pins the performance property the optimistic
// engine exists for: on the low-lookahead metro-LAN topology, where the
// conservative window (the 100 µs bridge delay) is four orders of
// magnitude below the traffic spacing, the optimistic engine commits the
// same run in at least 10× fewer synchronization rounds at K=4, while
// actually exercising its rollback machinery.
func TestMetroLANWindowRatio(t *testing.T) {
	const seg, per = 16, 6
	const horizon = 20.0
	cons, cstats := runMetroLAN(seg, per, 4, horizon, netsim.WithSyncMode(netsim.SyncConservative))
	opt, ostats := runMetroLAN(seg, per, 4, horizon, netsim.WithSyncMode(netsim.SyncOptimistic))
	if !reflect.DeepEqual(opt.counters, cons.counters) {
		t.Fatalf("modes diverge:\n got %+v\nwant %+v", opt.counters, cons.counters)
	}
	if cstats.Windows == 0 || ostats.Windows == 0 {
		t.Fatalf("degenerate window counts: conservative=%d optimistic=%d", cstats.Windows, ostats.Windows)
	}
	ratio := float64(cstats.Windows) / float64(ostats.Windows)
	t.Logf("conservative windows=%d optimistic windows=%d ratio=%.1f rollbacks=%d",
		cstats.Windows, ostats.Windows, ratio, ostats.Rollbacks)
	if ratio < 10 {
		t.Errorf("window ratio %.1f < 10 (conservative=%d, optimistic=%d)",
			ratio, cstats.Windows, ostats.Windows)
	}
	if ostats.Rollbacks == 0 {
		t.Error("optimistic run had no rollbacks; the scenario no longer stresses speculation")
	}
	if ostats.MaxGVTLag <= 0 {
		t.Errorf("MaxGVTLag = %v, want > 0", ostats.MaxGVTLag)
	}
}
