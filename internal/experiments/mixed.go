package experiments

import (
	"routesync/internal/jitter"
	"routesync/internal/periodic"
	"routesync/internal/stats"
	"routesync/internal/trace"
)

// ExtMixedPeriods asks a question the paper leaves open: do routers with
// *different* periods synchronize? Ten routers tick at Tp and ten at
// 2·Tp on the same network. A fast router that joins a slow cluster
// fires once alone mid-cycle and then lands back on the cluster — every
// second fast round aligns with every slow round, so subharmonic
// lock-step is dynamically possible, and with low jitter the simulation
// finds it: mixed clusters containing both populations form and persist.
func ExtMixedPeriods(tr float64, horizon float64, seed int64) *Result {
	if tr == 0 {
		tr = 0.1
	}
	if horizon == 0 {
		horizon = 1e6
	}
	const (
		n      = 20
		fastTp = 121.0
		slowTp = 242.0
		tc     = 0.11
	)
	policies := make(map[int]jitter.Policy)
	for id := n / 2; id < n; id++ {
		policies[id] = jitter.Uniform{Tp: slowTp, Tr: tr}
	}
	cfg := periodic.Config{
		N:  n,
		Tc: tc,
		Jitter: jitter.Mixed{
			Policies: policies,
			Fallback: jitter.Uniform{Tp: fastTp, Tr: tr},
		},
		Seed: seed,
	}
	s := periodic.New(cfg)

	largest := stats.Series{Name: "largest pending cluster"}
	mixed := stats.Series{Name: "cumulative mixed co-firings"}
	maxMixed := 0
	var events, mixedEvents uint64
	sampleEvery := 10 * fastTp
	next := sampleEvery
	pending := s.NextExpiry()
	for pending <= horizon {
		ev := s.Step()
		pending = ev.Next
		events++
		// Track clusters that span both populations.
		fast, slow := 0, 0
		for _, id := range ev.Members {
			if id < n/2 {
				fast++
			} else {
				slow++
			}
		}
		if fast > 0 && slow > 0 {
			mixedEvents++
			if ev.Size() > maxMixed {
				maxMixed = ev.Size()
			}
		}
		for s.Now() >= next {
			largest.Append(next, float64(s.LargestPending()))
			mixed.Append(next, float64(mixedEvents))
			next += sampleEvery
		}
	}
	res := &Result{
		ID:     "ext_mixed_periods",
		Title:  "heterogeneous periods: routers at Tp and 2·Tp on one network",
		Series: []stats.Series{largest, mixed},
		Plot: trace.PlotOptions{
			XLabel: "time (s)", YLabel: "cluster size / mixed co-firings",
		},
	}
	final := 0
	if largest.Len() > 0 {
		final = int(largest.Y[largest.Len()-1])
	}
	res.Notef("Tr=%.2gs: largest pending cluster at horizon = %d of %d", tr, final, n)
	res.Notef("mixed co-firing events: %d of %d total (largest spanned %d routers)",
		mixedEvents, events, maxMixed)
	res.Notef("the mixed co-firing rate is set by drift geometry — a fast/slow pair's relative offset moves ~Tc per slow round, so every crossing yields ~one co-firing — and is essentially independent of jitter; no persistent cross-population lock forms. Populations with different periods are mutually protected, the dynamics behind §6's different-fixed-periods suggestion")
	return res
}
