package experiments

import (
	"fmt"
	"math"

	"routesync/internal/jitter"
	"routesync/internal/periodic"
	"routesync/internal/stats"
	"routesync/internal/trace"
)

// ModelConfig parameterizes the Periodic Messages model figures (4–8).
// The zero value is replaced by the paper's parameters via Defaults.
type ModelConfig struct {
	N       int     // routers (paper: 20)
	Tp      float64 // mean period (paper: 121 s)
	Tc      float64 // per-message processing (paper: 0.11 s)
	Tr      float64 // random component (paper Fig 4: 0.1 s)
	Seed    int64
	Horizon float64 // simulation horizon in seconds
	// Obs, when non-nil, observes every periodic.System the driver
	// builds. It is instrumentation, not a model parameter: it never
	// affects output and is excluded from params hashing.
	Obs periodic.Observer `json:"-"`
}

// Defaults fills zero fields with the paper's §4 values.
func (c ModelConfig) Defaults() ModelConfig {
	if c.N == 0 {
		c.N = 20
	}
	if c.Tp == 0 {
		c.Tp = 121
	}
	if c.Tc == 0 {
		c.Tc = 0.11
	}
	if c.Tr == 0 {
		c.Tr = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Horizon == 0 {
		c.Horizon = 1e5
	}
	return c
}

func (c ModelConfig) system(start periodic.StartState) *periodic.System {
	return periodic.New(periodic.Config{
		N:        c.N,
		Tc:       c.Tc,
		Jitter:   jitter.Uniform{Tp: c.Tp, Tr: c.Tr},
		Start:    start,
		Seed:     c.Seed,
		Observer: c.Obs,
	})
}

// Fig4 regenerates the paper's Figure 4: the time-offset (time mod Tp+Tc)
// of every routing message in a run that starts unsynchronized and ends
// with all N messages transmitted at the same offset each round.
func Fig4(c ModelConfig) *Result {
	c = c.Defaults()
	s := c.system(periodic.StartUnsynchronized)
	pts := s.OffsetTrace(c.Horizon)
	ser := stats.Series{Name: "routing messages"}
	for _, p := range pts {
		ser.Append(p.Time, p.Offset)
	}
	r := &Result{
		ID:    "fig04",
		Title: "synchronization of periodic routing messages (time-offset trace)",
		Plot: trace.PlotOptions{
			XLabel: "time (s)", YLabel: "time-offset mod Tp+Tc (s)",
		},
		Series: []stats.Series{ser.Downsample(1 + ser.Len()/4000)},
	}
	// Headline: when did the run fully synchronize?
	s2 := c.system(periodic.StartUnsynchronized)
	res := s2.RunUntilSynchronized(c.Horizon * 10)
	if res.Reached {
		r.Notef("fully synchronized after %.0f rounds (%.0f s); paper reports 826 rounds",
			res.Rounds, res.Time)
	} else {
		r.Notef("did not synchronize within %.0f s", c.Horizon*10)
	}
	r.Notef("%d routing messages plotted over %.0f s", ser.Len(), c.Horizon)
	return r
}

// Fig5 regenerates Figure 5: an enlargement showing timer expirations
// ("x" in the paper) and timer resets ("o") as two routers form a cluster
// and break up again.
func Fig5(c ModelConfig, from, to float64) *Result {
	c = c.Defaults()
	if to <= from {
		from, to = 35500, 38500 // the paper's enlargement window
	}
	s := c.system(periodic.StartUnsynchronized)
	marks := s.EventMarks(from, to)
	window := s.RoundWindow()
	expiries := stats.Series{Name: "timer expiration (x)"}
	resets := stats.Series{Name: "timer reset (o)"}
	for _, m := range marks {
		if m.Time < from || m.Time > to {
			continue
		}
		y := math.Mod(m.Time, window)
		if m.Reset {
			resets.Append(m.Time, y)
		} else {
			expiries.Append(m.Time, y)
		}
	}
	r := &Result{
		ID:     "fig05",
		Title:  "enlargement: timer expirations and resets during cluster formation",
		Series: []stats.Series{expiries, resets},
		Plot: trace.PlotOptions{
			XLabel: "time (s)", YLabel: "time-offset (s)",
		},
	}
	r.Notef("%d expirations and %d resets in [%.0f, %.0f]",
		expiries.Len(), resets.Len(), from, to)
	return r
}

// Fig6 regenerates Figure 6: the cluster graph — the largest cluster in
// each round of N routing messages, for the same run as Figure 4.
func Fig6(c ModelConfig) *Result {
	c = c.Defaults()
	s := c.system(periodic.StartUnsynchronized)
	times, sizes := s.LargestPerRound(c.Horizon)
	ser := stats.Series{Name: "largest cluster"}
	for i := range times {
		ser.Append(times[i], float64(sizes[i]))
	}
	r := &Result{
		ID:     "fig06",
		Title:  "cluster graph: largest cluster per round",
		Series: []stats.Series{ser},
		Plot: trace.PlotOptions{
			XLabel: "time (s)", YLabel: "largest cluster size",
			YMin: 0, YMax: float64(c.N),
		},
	}
	last := 0
	if len(sizes) > 0 {
		last = sizes[len(sizes)-1]
	}
	r.Notef("final round largest cluster = %d of %d", last, c.N)
	return r
}

// SweepPoint is one (Tr, outcome) of a Figure 7/8-style sweep.
type SweepPoint struct {
	TrOverTc float64
	// Reached tells whether the condition (synchronization for Fig 7,
	// break-up for Fig 8) was met before the horizon.
	Reached bool
	Rounds  float64
	Seconds float64
}

// Fig7 regenerates Figure 7: runs starting unsynchronized for a range of
// random components Tr (the paper uses 0.6·Tc, 1.0·Tc, 1.4·Tc and a 10^7 s
// horizon); larger Tr takes longer to synchronize. It returns the cluster
// graph of each run plus the synchronization times.
func Fig7(c ModelConfig, trOverTc []float64) (*Result, []SweepPoint) {
	c = c.Defaults()
	if len(trOverTc) == 0 {
		trOverTc = []float64{0.6, 1.0, 1.4}
	}
	r := &Result{
		ID:    "fig07",
		Title: "time to synchronize vs random component (unsynchronized start)",
		Plot: trace.PlotOptions{
			XLabel: "time (s)", YLabel: "largest cluster size",
			YMin: 0, YMax: float64(c.N),
		},
	}
	var pts []SweepPoint
	for _, m := range trOverTc {
		cc := c
		cc.Tr = m * c.Tc
		s := cc.system(periodic.StartUnsynchronized)
		times, sizes := s.LargestPerRound(c.Horizon)
		ser := stats.Series{Name: fmtTr(m)}
		for i := range times {
			ser.Append(times[i], float64(sizes[i]))
		}
		r.Series = append(r.Series, ser.Downsample(1+ser.Len()/2000))

		s2 := cc.system(periodic.StartUnsynchronized)
		res := s2.RunUntilSynchronized(c.Horizon)
		pts = append(pts, SweepPoint{TrOverTc: m, Reached: res.Reached, Rounds: res.Rounds, Seconds: res.Time})
		if res.Reached {
			r.Notef("Tr=%.1fTc: synchronized after %.0f rounds (%.2es)", m, res.Rounds, res.Time)
		} else {
			r.Notef("Tr=%.1fTc: not synchronized within %.1es", m, c.Horizon)
		}
	}
	return r, pts
}

// Fig8 regenerates Figure 8: runs starting synchronized (as after a wave
// of triggered updates) for Tr of 2.3·Tc, 2.5·Tc, 2.8·Tc; larger Tr breaks
// the synchronization faster.
func Fig8(c ModelConfig, trOverTc []float64, brokenThreshold int) (*Result, []SweepPoint) {
	c = c.Defaults()
	if len(trOverTc) == 0 {
		trOverTc = []float64{2.3, 2.5, 2.8}
	}
	if brokenThreshold == 0 {
		brokenThreshold = 2
	}
	r := &Result{
		ID:    "fig08",
		Title: "time to break up vs random component (synchronized start)",
		Plot: trace.PlotOptions{
			XLabel: "time (s)", YLabel: "largest cluster size",
			YMin: 0, YMax: float64(c.N),
		},
	}
	var pts []SweepPoint
	for _, m := range trOverTc {
		cc := c
		cc.Tr = m * c.Tc
		s := cc.system(periodic.StartSynchronized)
		times, sizes := s.LargestPerRound(c.Horizon)
		ser := stats.Series{Name: fmtTr(m)}
		for i := range times {
			ser.Append(times[i], float64(sizes[i]))
		}
		r.Series = append(r.Series, ser.Downsample(1+ser.Len()/2000))

		s2 := cc.system(periodic.StartSynchronized)
		res := s2.RunUntilBroken(brokenThreshold, c.Horizon)
		pts = append(pts, SweepPoint{TrOverTc: m, Reached: res.Reached, Rounds: res.Rounds, Seconds: res.Time})
		if res.Reached {
			r.Notef("Tr=%.1fTc: synchronization broken after %.0f rounds (%.2es)", m, res.Rounds, res.Time)
		} else {
			r.Notef("Tr=%.1fTc: synchronization not broken within %.1es", m, c.Horizon)
		}
	}
	return r, pts
}

func fmtTr(m float64) string {
	return fmt.Sprintf("Tr=%.2gTc", m)
}
