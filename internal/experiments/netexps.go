package experiments

import (
	"math"

	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/rng"
	"routesync/internal/routing"
	"routesync/internal/stats"
	"routesync/internal/trace"
	"routesync/internal/workload"
)

// PathConfig parameterizes the packet-level measurement scenarios
// (Figs 1–3): a host-to-host path whose transit routers sit on a backbone
// LAN full of routers running a periodic distance-vector protocol with
// synchronized updates.
type PathConfig struct {
	// Routers on the backbone LAN (two of them carry the measured path).
	Routers int
	// Profile is the routing protocol (Fig 1: IGRP at 90 s; Fig 3: RIP
	// at 30 s).
	Profile routing.Profile
	// Jitter is the per-router timer policy; nil means no randomness
	// (the pre-fix deployments the paper measured).
	Jitter jitter.Policy
	// ExtraRoutes models table size (paper: ~300 routes at 1 ms each).
	ExtraRoutes int
	// PerRouteCost is seconds of CPU per route (paper: 0.001).
	PerRouteCost float64
	// InputQueueCap is the stalled router's buffer (packets).
	InputQueueCap int
	// ForwardCost is seconds of CPU per forwarded packet on the path
	// routers (see netsim.CPUConfig.ForwardCost); zero means free.
	ForwardCost float64
	// LinkDelay is the per-link propagation delay of the measured path.
	LinkDelay float64
	// BackgroundLoss is a random per-arrival loss probability at the
	// receiving host (Fig 3's isolated single-packet losses).
	BackgroundLoss float64
	// Synchronized starts every router's timer together (the measured
	// networks were synchronized); false draws offsets over one period.
	Synchronized bool
	Seed         int64
	// Obs, when non-nil, observes the network's event kernel.
	// Instrumentation only; excluded from params hashing.
	Obs des.Observer `json:"-"`
}

// Defaults fills zero fields with the Figure 1 scenario.
func (c PathConfig) Defaults() PathConfig {
	if c.Routers == 0 {
		c.Routers = 10
	}
	if c.Profile.Name == "" {
		c.Profile = routing.IGRP()
	}
	if c.ExtraRoutes == 0 {
		c.ExtraRoutes = 300
	}
	if c.PerRouteCost == 0 {
		c.PerRouteCost = 0.001
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = 0.015
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// builtPath is the assembled scenario.
type builtPath struct {
	net      *netsim.Network
	src, dst *netsim.Node
	agents   []*routing.Agent
}

// buildPath wires: src —link— R1 —LAN(R1..Rk)— R2 —link— dst, with every
// router running the routing protocol and legacy CPUs on the path
// routers. Static routes cover the host addresses (hosts do not speak the
// routing protocol).
func buildPath(c PathConfig) *builtPath {
	net := netsim.NewNetwork(c.Seed)
	if c.Obs != nil {
		net.SetObserver(c.Obs)
	}
	cpuCfg := &netsim.CPUConfig{
		Mode:          netsim.CPUModeLegacy,
		InputQueueCap: c.InputQueueCap,
		ForwardCost:   c.ForwardCost,
	}
	routers := make([]*netsim.Node, c.Routers)
	for i := range routers {
		routers[i] = net.NewNode("core", cpuCfg)
	}
	src := net.NewNode("src", nil)
	dst := net.NewNode("dst", nil)
	net.NewLAN(routers, netsim.LANConfig{Delay: 0.001})
	net.Connect(src, routers[0], netsim.LinkConfig{Delay: c.LinkDelay})
	net.Connect(routers[1], dst, netsim.LinkConfig{Delay: c.LinkDelay})
	net.InstallStaticRoutes()
	dst.LossProb = c.BackgroundLoss

	agents := make([]*routing.Agent, c.Routers)
	for i, nd := range routers {
		agents[i] = routing.NewAgent(nd, routing.Config{
			Profile: c.Profile,
			Jitter:  c.Jitter,
			Costs: routing.Costs{
				PerRoutePrepare: c.PerRouteCost,
				PerRouteProcess: c.PerRouteCost,
				MinPrepare:      c.PerRouteCost,
				MinProcess:      c.PerRouteCost,
			},
			TriggeredResetsTimer: true,
			ExtraRoutes:          c.ExtraRoutes,
			Seed:                 c.Seed,
		})
	}
	r := rngOffsets(c)
	for i, a := range agents {
		a.Start(r[i])
	}
	return &builtPath{net: net, src: src, dst: dst, agents: agents}
}

// rngOffsets produces start offsets: all equal when synchronized,
// otherwise spread over one period deterministically from the seed.
func rngOffsets(c PathConfig) []float64 {
	out := make([]float64, c.Routers)
	if c.Synchronized {
		for i := range out {
			out[i] = 1.0
		}
		return out
	}
	// Random phases over one period — the model's unsynchronized
	// initial condition (equally-spaced offsets would be maximally
	// anti-clustered and unrepresentative).
	r := rng.New(c.Seed + 17)
	for i := range out {
		out[i] = r.Uniform(0, c.Profile.Period)
	}
	return out
}

// Fig1 regenerates Figure 1: 1000 pings at 1.01-second intervals across a
// path whose core routers process synchronized IGRP updates with their
// forwarding stalled — periodic clumps of dropped pings roughly every
// 90 s (≈ every 89 pings). Dropped pings plot at −0.1 as in the paper's
// negative-RTT convention.
func Fig1(c PathConfig, pings int) (*Result, workload.PingResult) {
	c = c.Defaults()
	c.Synchronized = true
	if pings == 0 {
		pings = 1000
	}
	b := buildPath(c)
	p := workload.NewPinger(b.src, b.dst, workload.PingConfig{Interval: 1.01, Count: pings})
	warmup := 2 * c.Profile.Period // let the protocol converge first
	p.Start(warmup)
	b.net.RunUntil(warmup + float64(pings)*1.01 + 10)
	res := p.Result()

	ser := stats.Series{Name: "rtt"}
	for i, rtt := range res.RTTs {
		if math.IsNaN(rtt) {
			ser.Append(float64(i), -0.1)
		} else {
			ser.Append(float64(i), rtt)
		}
	}
	r := &Result{
		ID:     "fig01",
		Title:  "ping RTTs across a path with synchronized routing updates (drops at −0.1)",
		Series: []stats.Series{ser},
		Plot:   trace.PlotOptions{XLabel: "ping number", YLabel: "roundtrip time (s)"},
	}
	r.Notef("loss rate %.1f%% (%d of %d); paper: ≥3%%", 100*res.LossRate(), res.Lost(), res.Sent)
	r.Notef("update period %.0f s ≈ every %.0f pings", c.Profile.Period, c.Profile.Period/1.01)
	return r, res
}

// Fig2 regenerates Figure 2: the autocorrelation of the Figure 1
// roundtrip times with dropped packets assigned a 2-second RTT; the peak
// near lag 89 reflects the 90-second update period.
func Fig2(ping workload.PingResult, maxLag int) *Result {
	if maxLag == 0 {
		maxLag = 200
	}
	filled := ping.RTTsFilled(2.0)
	acf := stats.Autocorrelation(filled, maxLag)
	ser := stats.Series{Name: "autocorrelation"}
	for k, v := range acf {
		ser.Append(float64(k), v)
	}
	r := &Result{
		ID:     "fig02",
		Title:  "autocorrelation of roundtrip times (drops filled with 2 s)",
		Series: []stats.Series{ser},
		Plot:   trace.PlotOptions{XLabel: "lag (pings)", YLabel: "autocorrelation"},
	}
	peak := stats.PeakLag(acf, 45, maxLag)
	if peak > 0 {
		r.Notef("autocorrelation peak at lag %d (paper: 89 ≈ 90 s / 1.01 s)", peak)
	}
	return r
}

// Fig3 regenerates Figure 3: audio outage durations over time for a CBR
// stream crossing routers with synchronized RIP updates — strong periodic
// loss spikes every 30 seconds over a floor of isolated random losses.
func Fig3(c PathConfig, duration float64) (*Result, workload.AudioResult) {
	c = c.Defaults()
	if c.Profile.Name != "rip" {
		c.Profile = routing.RIP()
	}
	if c.BackgroundLoss == 0 {
		c.BackgroundLoss = 0.002
	}
	c.Synchronized = true
	if duration == 0 {
		duration = 600 // the paper's 10-minute window
	}
	b := buildPath(c)
	s := workload.NewAudioStream(b.src, b.dst, workload.AudioConfig{Rate: 50, Duration: duration})
	warmup := 2 * c.Profile.Period
	s.Start(warmup)
	b.net.RunUntil(warmup + duration + 10)
	res := s.Result()

	ser := stats.Series{Name: "outage duration"}
	for _, o := range res.Outages() {
		ser.Append(o.Start-warmup, o.Duration)
	}
	r := &Result{
		ID:     "fig03",
		Title:  "audio outage durations with synchronized RIP updates",
		Series: []stats.Series{ser},
		Plot:   trace.PlotOptions{XLabel: "time (s)", YLabel: "outage duration (s)"},
	}
	r.Notef("overall loss %.1f%%; outages: %d", 100*res.LossRate(), len(res.Outages()))
	// Measure loss inside vs outside the periodic busy windows.
	var spikes int
	for _, o := range res.Outages() {
		if o.Duration > 0.5 {
			spikes++
		}
	}
	r.Notef("loss spikes (>0.5 s): %d in %.0f s — about one per %.0f s period",
		spikes, duration, c.Profile.Period)
	return r, res
}
