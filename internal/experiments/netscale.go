package experiments

import (
	"math"
	"sort"

	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/parallel"
	"routesync/internal/routing"
	"routesync/internal/stats"
	"routesync/internal/trace"
	"routesync/internal/workload"
)

// ext_netscale scales the packet-level simulator to thousands of routers
// on the conservative parallel engine: a two-level AS-like topology whose
// domains run real periodic routing updates (RIP profile, legacy CPUs,
// jittered timers) while an end-to-end ping stream crosses the backbone.
// The run is partitioned into K logical processes along domain
// boundaries; by the engine's determinism guarantee the emitted figures
// are bit-identical for every K, so the CSV carries only simulation
// metrics — wall-time and speedup measurements live in the benchmark
// harness (internal/bench.NetsimScale → out/BENCH_*.json), which runs
// the same scenario through BuildNetScale.

// NetScaleConfig parameterizes ExtNetScale.
type NetScaleConfig struct {
	// Sizes lists the router counts to sweep (rounded down to whole
	// domains); nil means 500 → 5000.
	Sizes []int
	// RoutersPerAS sets the domain size; zero means 25.
	RoutersPerAS int
	// Horizon is the simulated duration per size; zero means 150 s
	// (five RIP periods).
	Horizon float64
	// Jobs requests K logical processes (0: one per CPU). Results do not
	// depend on it.
	Jobs int
	// Seed drives topology-independent randomness (timer jitter streams).
	Seed int64
	// Obs observes every partition's simulator (must be safe for
	// concurrent use; the runner's metrics observer is).
	Obs des.Observer
}

// NetScaleScenario is one built instance of the scale scenario, exposed
// so the benchmark harness can time exactly what the experiment runs.
type NetScaleScenario struct {
	Net    *netsim.Network
	Pinger *workload.Pinger
	// SendTimes[i] collects agent i's update transmissions; each slice is
	// only appended from the logical process owning that agent's router
	// and is pre-sized for the horizon, so recording never allocates
	// during the run.
	SendTimes [][]float64
	// Agents lists the attached routing agents (leak audits sum their
	// pending-packet counts).
	Agents []*routing.Agent
	// Routers is the total router count (domains × RoutersPerAS).
	Routers int
	// NumAS and PerAS give the domain geometry; Partitions the realized K.
	NumAS, PerAS, Partitions int
	// Horizon is the configured run length; call Run to execute it.
	Horizon float64
}

// Run executes the scenario to its horizon.
func (s *NetScaleScenario) Run() { s.Net.RunUntil(s.Horizon) }

// BuildNetScale wires the scale scenario for about `routers` routers
// (rounded down to whole domains of perAS) partitioned into k logical
// processes, with agents, ping workload and send recorders attached, but
// does not run it.
//
// Routing runs hierarchically, as real internetworks of this size do:
// each domain's non-gateway routers speak the periodic protocol among
// themselves (gateways hear and discard the updates — modelling the
// boundary where the interior protocol stops), while inter-domain
// forwarding state toward the two measured hosts is installed statically
// via reverse BFS. Every update is still a real packet contending for
// real links and legacy router CPUs, so the scenario exhibits the
// paper's loss mechanism at scale without Θ(N²) routing state.
// Optional partition options select the synchronization mode (the
// optimistic determinism tests pass netsim.WithSyncMode); by default the
// ambient ROUTESYNC_SYNC_MODE applies.
func BuildNetScale(routers, perAS, k int, seed int64, horizon float64, obs des.Observer, opts ...netsim.PartitionOption) *NetScaleScenario {
	if perAS < 3 {
		panic("experiments: BuildNetScale needs domains of at least 3 routers")
	}
	numAS := routers / perAS
	if numAS < 2 {
		numAS = 2
	}
	if k < 1 {
		k = 1
	}
	if k > numAS {
		k = numAS // one domain is the smallest unit of parallelism
	}

	nw := netsim.NewNetwork(seed)
	if obs != nil {
		nw.SetObserver(obs)
	}
	topo := nw.BuildTwoLevelAS(netsim.TwoLevelASConfig{
		NumAS:        numAS,
		RoutersPerAS: perAS,
		IntraLink:    netsim.LinkConfig{Delay: 0.002, Bandwidth: 10e6, QueueCap: 16},
		InterLink:    netsim.LinkConfig{Delay: 0.01, Bandwidth: 1.5e6, QueueCap: 32},
		CPU:          &netsim.CPUConfig{Mode: netsim.CPUModeLegacy, InputQueueCap: 4},
		Chords:       2,
	})
	// The backbone is a ring (plus skip links), so domain numAS-1 sits
	// next to domain 0; the antipodal domain gives the pings a path whose
	// hop count actually grows with N.
	srcRouter := topo.Routers[0][perAS/2]
	dstRouter := topo.Routers[numAS/2][perAS/2]
	hostA := nw.NewNode("hostA", nil)
	hostB := nw.NewNode("hostB", nil)
	nw.Connect(hostA, srcRouter, netsim.LinkConfig{Delay: 0.001, Bandwidth: 10e6, QueueCap: 16})
	nw.Connect(hostB, dstRouter, netsim.LinkConfig{Delay: 0.001, Bandwidth: 10e6, QueueCap: 16})
	// Forwarding state toward the measured hosts only: Θ(N), not the
	// all-pairs Θ(N²) a full InstallStaticRoutes would cost at 5000
	// routers.
	nw.InstallRoutesToward([]netsim.NodeID{hostA.ID, hostB.ID})

	// Partition along domain boundaries; each host joins the partition of
	// the router it hangs off, so its access link never crosses LPs.
	numRouters := numAS * perAS
	base := netsim.OwnerByBlock(perAS, numAS, k)
	nw.Partition(k, func(id netsim.NodeID) int {
		switch {
		case int(id) < numRouters:
			return base(id)
		case id == hostA.ID:
			return base(srcRouter.ID)
		default:
			return base(dstRouter.ID)
		}
	}, opts...)

	sc := &NetScaleScenario{
		Net:        nw,
		Routers:    numRouters,
		NumAS:      numAS,
		PerAS:      perAS,
		Partitions: k,
		Horizon:    horizon,
	}
	cfg := routing.Config{
		Profile: routing.RIP(),
		Jitter:  jitter.HalfSpread{Tp: routing.RIP().Period},
		Costs:   routing.DefaultCosts(),
	}
	// Half-spread jitter draws intervals from [Tp/2, Tp), so an agent
	// sends at most horizon/(Tp/2) updates; sizing the recorders for that
	// up front keeps the run itself allocation-free.
	sendCap := int(horizon/(cfg.Profile.Period/2)) + 4
	for a := 0; a < numAS; a++ {
		for i := 1; i < perAS; i++ { // gateways (i == 0) stay passive
			nd := topo.Routers[a][i]
			agCfg := cfg
			agCfg.Seed = seed*31 + int64(nd.ID)
			ag := routing.NewAgent(nd, agCfg)
			sc.Agents = append(sc.Agents, ag)
			rec := make([]float64, 0, sendCap)
			sc.SendTimes = append(sc.SendTimes, rec)
			slot := len(sc.SendTimes) - 1
			ag.OnSend = func(at float64, trig bool) {
				sc.SendTimes[slot] = append(sc.SendTimes[slot], at)
			}
			// The recorder is append-only from nd's logical process, so
			// its rollback checkpoint is just a length to truncate to.
			saved := 0
			nw.RegisterCheckpoint(nd, netsim.CheckpointFuncs{
				Save:    func() { saved = len(sc.SendTimes[slot]) },
				Restore: func() { sc.SendTimes[slot] = sc.SendTimes[slot][:saved] },
			})
			// Synchronized start — the paper's post-restart condition the
			// jitter must break up.
			ag.Start(1)
		}
	}

	interval := 0.503
	count := int((horizon - 10) / interval)
	if count < 10 {
		count = 10
	}
	sc.Pinger = workload.NewPinger(hostA, hostB, workload.PingConfig{
		Interval: interval,
		Count:    count,
		Timeout:  2,
	})
	sc.Pinger.Start(5)
	return sc
}

// SyncClusterFraction measures timer synchronization at the end of a
// run: the largest fraction of routers whose final update transmissions
// fall inside any window-second interval of phase (mod period). 1 means
// fully synchronized, ~window/period means uniformly spread.
func (s *NetScaleScenario) SyncClusterFraction(period, window float64) float64 {
	var phases []float64
	for _, ts := range s.SendTimes {
		if len(ts) == 0 {
			continue
		}
		phases = append(phases, math.Mod(ts[len(ts)-1], period))
	}
	if len(phases) == 0 {
		return 0
	}
	sort.Float64s(phases)
	// Circular sliding window via duplication.
	n := len(phases)
	ext := append(phases, make([]float64, n)...)
	for i := 0; i < n; i++ {
		ext[n+i] = phases[i] + period
	}
	best, lo := 0, 0
	for hi := 0; hi < 2*n; hi++ {
		for ext[hi]-ext[lo] > window {
			lo++
		}
		if c := hi - lo + 1; c > best && c <= n {
			best = c
		}
	}
	return float64(best) / float64(n)
}

// UpdatesPerRouter is the mean number of update transmissions per active
// router over the run.
func (s *NetScaleScenario) UpdatesPerRouter() float64 {
	if len(s.SendTimes) == 0 {
		return 0
	}
	total := 0
	for _, ts := range s.SendTimes {
		total += len(ts)
	}
	return float64(total) / float64(len(s.SendTimes))
}

// ExtNetScale sweeps the scenario over cfg.Sizes and reports, per size:
// end-to-end ping loss, median RTT, update volume, and the timer
// synchronization metric. All series are independent of cfg.Jobs.
func ExtNetScale(cfg NetScaleConfig) *Result {
	if cfg.Sizes == nil {
		cfg.Sizes = []int{500, 1000, 2000, 5000}
	}
	if cfg.RoutersPerAS == 0 {
		cfg.RoutersPerAS = 25
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 150
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	k := parallel.Workers(cfg.Jobs)

	res := &Result{
		ID:    "ext_netscale",
		Title: "packet-level scale sweep on the parallel engine (K logical processes, K-invariant results)",
		Plot: trace.PlotOptions{
			XLabel: "routers", YLabel: "value",
		},
	}
	loss := stats.Series{Name: "ping loss rate"}
	rtt := stats.Series{Name: "ping p50 RTT (s)"}
	upd := stats.Series{Name: "updates per router"}
	sync := stats.Series{Name: "largest 1s update cluster (fraction)"}
	for _, size := range cfg.Sizes {
		sc := BuildNetScale(size, cfg.RoutersPerAS, k, cfg.Seed, cfg.Horizon, cfg.Obs)
		sc.Run()
		pr := sc.Pinger.Result()
		cl := sc.SyncClusterFraction(routing.RIP().Period, 1)
		n := float64(sc.Routers)
		loss.Append(n, pr.LossRate())
		rtt.Append(n, pr.RTTQuantile(0.5))
		upd.Append(n, sc.UpdatesPerRouter())
		sync.Append(n, cl)
		cnt := sc.Net.Counters()
		// No K, wall time, or lookahead here: artifacts must be identical
		// for every -jobs value (the partition engine guarantees the data
		// is, and lookahead is +Inf at K=1).
		res.Notef("N=%d (%d domains): ping loss %.2f%%, p50 RTT %.1f ms, %.1f updates/router, largest 1s cluster %.0f%%, %d pkts forwarded",
			sc.Routers, sc.NumAS,
			100*pr.LossRate(), 1e3*pr.RTTQuantile(0.5), sc.UpdatesPerRouter(), 100*cl, cnt.Forwarded)
	}
	res.Series = []stats.Series{loss, rtt, upd, sync}
	return res
}
