package experiments

import (
	"reflect"
	"testing"
)

// TestNetScaleKInvariant: the scale scenario's observable outcome (ping
// RTT series, routing send timelines, network counters) is identical for
// any partition count — the property that lets ext_netscale emit
// Jobs-independent artifacts.
func TestNetScaleKInvariant(t *testing.T) {
	type snap struct {
		rtts   []float64
		sends  [][]float64
		counts any
		sync   float64
	}
	run := func(k int) snap {
		sc := BuildNetScale(60, 10, k, 1, 40, nil)
		sc.Run()
		return snap{
			rtts:   sc.Pinger.Result().RTTs,
			sends:  sc.SendTimes,
			counts: sc.Net.Counters(),
			sync:   sc.SyncClusterFraction(30, 1),
		}
	}
	ref := run(1)
	lost := 0
	for _, v := range ref.rtts {
		if v != v { // NaN
			lost++
		}
	}
	if lost == len(ref.rtts) {
		t.Fatal("every ping lost; scenario is wired wrong")
	}
	if ref.sync <= 0 {
		t.Fatal("no sends recorded")
	}
	for _, k := range []int{2, 3, 6} {
		got := run(k)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("k=%d: scenario outcome diverges from k=1", k)
		}
	}
}

// TestExtNetScaleSmoke runs the registered experiment at a toy size.
func TestExtNetScaleSmoke(t *testing.T) {
	res := ExtNetScale(NetScaleConfig{
		Sizes:        []int{60, 120},
		RoutersPerAS: 10,
		Horizon:      40,
		Jobs:         2,
		Seed:         1,
	})
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(res.Series))
	}
	for _, s := range res.Series {
		if s.Len() != 2 {
			t.Fatalf("series %q has %d points, want 2", s.Name, s.Len())
		}
	}
	if len(res.Notes) != 2 {
		t.Fatalf("notes = %v", res.Notes)
	}
}
