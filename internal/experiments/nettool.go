package experiments

import (
	"fmt"
	"strings"

	"routesync/internal/runner"
)

// NetexpOverrides carries cmd/netexp's flags into the registered
// packet-level scenario experiments. Path.Obs is stripped before
// hashing (it is tagged json:"-"), so observer wiring never forces a
// re-run.
type NetexpOverrides struct {
	Path     PathConfig `json:"path"`
	Pings    int        `json:"pings"`
	Duration float64    `json:"duration"`
	Plot     bool       `json:"plot"`
}

// netexpDefaults mirrors the netexp flag defaults.
func netexpDefaults() NetexpOverrides {
	return NetexpOverrides{
		Path:     PathConfig{Routers: 10, ExtraRoutes: 300, PerRouteCost: 0.001, Seed: 1},
		Pings:    1000,
		Duration: 600,
		Plot:     true,
	}
}

func netexpOverrides(spec *runner.Spec) NetexpOverrides {
	if o, ok := spec.Overrides.(NetexpOverrides); ok {
		return o
	}
	return netexpDefaults()
}

// NetexpScenarios lists the valid -scenario values.
func NetexpScenarios() []string { return []string{"ping", "audio"} }

// NetexpScenarioExperiment maps a -scenario flag value to its experiment
// id, or "" for an unknown scenario.
func NetexpScenarioExperiment(scenario string) string {
	switch scenario {
	case "ping":
		return "netexp_ping"
	case "audio":
		return "netexp_audio"
	default:
		return ""
	}
}

// netexpShow renders one figure the way cmd/netexp always has: the full
// ASCII plot, or just the header and notes with -plot=false.
func netexpShow(b *strings.Builder, r *Result, plot bool) {
	if plot {
		fmt.Fprintln(b, r.RenderASCII())
		return
	}
	fmt.Fprintf(b, "== %s — %s\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintln(b, "   ", n)
	}
}

func registerNetexpTool(reg *runner.Registry) {
	reg.Register(runner.Experiment{
		ID:    "netexp_ping",
		Title: "packet-level ping path (Figures 1–2 scenario)",
		Tags:  []string{"netexp"},
		Cost:  runner.CostModerate,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			o := netexpOverrides(spec)
			cfg := o.Path
			cfg.Obs = spec.DESObserver()
			var b strings.Builder
			r1, ping := Fig1(cfg, o.Pings)
			netexpShow(&b, r1, o.Plot)
			r2 := Fig2(ping, 200)
			netexpShow(&b, r2, o.Plot)
			return &runner.Artifacts{ASCII: b.String()}, nil
		},
	})
	reg.Register(runner.Experiment{
		ID:    "netexp_audio",
		Title: "packet-level CBR audio stream (Figure 3 scenario)",
		Tags:  []string{"netexp"},
		Cost:  runner.CostModerate,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			o := netexpOverrides(spec)
			cfg := o.Path
			cfg.Obs = spec.DESObserver()
			var b strings.Builder
			r3, _ := Fig3(cfg, o.Duration)
			netexpShow(&b, r3, o.Plot)
			return &runner.Artifacts{ASCII: b.String()}, nil
		},
	})
}
