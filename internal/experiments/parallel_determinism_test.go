package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// writeFigure renders a Result into its own temp dir and returns the
// bytes of both output files.
func writeFigure(t *testing.T, r *Result) (csv, txt []byte) {
	t.Helper()
	dir := t.TempDir()
	if err := r.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, r.ID+".csv"))
	if err != nil {
		t.Fatal(err)
	}
	txt, err = os.ReadFile(filepath.Join(dir, r.ID+".txt"))
	if err != nil {
		t.Fatal(err)
	}
	return csv, txt
}

func TestFig10ByteIdenticalAcrossJobs(t *testing.T) {
	// The replicated simulation overlay must not depend on how many
	// workers ran the replications: replication s is always seeded
	// Seed+s and the averages are reduced in index order.
	serialCfg := MarkovConfig{Sims: 3, SimHorizon: 2e5, Jobs: 1}
	wideCfg := MarkovConfig{Sims: 3, SimHorizon: 2e5, Jobs: runtime.GOMAXPROCS(0) + 3}
	serialCSV, serialTXT := writeFigure(t, Fig10(serialCfg, 0))
	wideCSV, wideTXT := writeFigure(t, Fig10(wideCfg, 0))
	if !bytes.Equal(serialCSV, wideCSV) {
		t.Fatal("fig10.csv differs between jobs=1 and a wide worker pool")
	}
	if !bytes.Equal(serialTXT, wideTXT) {
		t.Fatal("fig10.txt differs between jobs=1 and a wide worker pool")
	}
}

func TestExtNSweepDeterministicAcrossRuns(t *testing.T) {
	// ExtNSweep's seed replications run on the shared pool with the
	// default (all-CPU) worker count; two invocations must agree byte
	// for byte regardless of scheduling.
	aCSV, aTXT := writeFigure(t, ExtNSweep(0, []int{5, 8}, 2, 2e5, 1))
	bCSV, bTXT := writeFigure(t, ExtNSweep(0, []int{5, 8}, 2, 2e5, 1))
	if !bytes.Equal(aCSV, bCSV) || !bytes.Equal(aTXT, bTXT) {
		t.Fatal("ext_nsweep output differs between two identical runs")
	}
}
