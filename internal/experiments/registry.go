package experiments

import (
	"routesync/internal/runner"
	"routesync/internal/workload"
)

// This file registers every driver in this package — the paper figures,
// claims, ablations, extensions, and the command-line tool experiments —
// with the experiment runner. The cmd/ binaries are thin frontends that
// select from runner.Default by tag or id; all configuration derivation
// (quick-vs-paper horizons, replication counts, observer wiring) lives
// here, next to the drivers it parameterizes.

func init() { RegisterAll(runner.Default) }

// RegisterAll registers every experiment with reg. Exposed (rather than
// registering only into runner.Default) so tests can build fresh
// registries.
func RegisterAll(reg *runner.Registry) {
	registerFigures(reg)
	registerMarkovTool(reg)
	registerNetexpTool(reg)
	registerScenarioTool(reg)
	registerSyncsimTool(reg)
}

// figModel derives the Periodic Messages model configuration used by the
// figure drivers (the paper's defaults; Horizon 1e5 at both scales).
func figModel(spec *runner.Spec) ModelConfig {
	return ModelConfig{Horizon: 1e5, Obs: spec.PeriodicObserver()}
}

// figSweepHorizon is the Figure 7/8 sweep horizon: the paper's 10^7 s,
// or 10^6 s under -quick.
func figSweepHorizon(spec *runner.Spec) float64 {
	if spec.Quick {
		return 1e6
	}
	return 1e7
}

// figMarkov derives the §5 analysis configuration: 20 simulation
// replications over 5·10^6 s at paper scale, 3 over 10^6 s under -quick.
func figMarkov(spec *runner.Spec) MarkovConfig {
	c := MarkovConfig{Sims: 20, SimHorizon: 5e6, Jobs: spec.Jobs, Obs: spec.PeriodicObserver()}
	if spec.Quick {
		c.Sims = 3
		c.SimHorizon = 1e6
	}
	return c
}

// figPings is the Figure 1 ping count (paper: 1000).
func figPings(spec *runner.Spec) int {
	if spec.Quick {
		return 300
	}
	return 1000
}

// figAudioDur is the Figure 3 stream duration (paper: 600 s).
func figAudioDur(spec *runner.Spec) float64 {
	if spec.Quick {
		return 180
	}
	return 600
}

// fig1Out bundles Figure 1's result with the raw ping run Figure 2
// consumes.
type fig1Out struct {
	res  *Result
	ping workload.PingResult
}

// fig1Shared computes the packet-level ping run Figures 1 and 2 share —
// once per runner invocation, by whichever driver gets there first, so
// `-only fig02` works without also writing fig01. The shared run is not
// wired to either spec's observer: attribution would depend on worker
// scheduling.
func fig1Shared(spec *runner.Spec) fig1Out {
	return spec.Shared("fig1-ping", func() any {
		r, ping := Fig1(PathConfig{}, figPings(spec))
		return fig1Out{res: r, ping: ping}
	}).(fig1Out)
}

// fig registers one figure driver under the "figures" tag. The driver's
// Result supplies the title and notes; finishResult writes the files
// when the spec asks for them.
func fig(reg *runner.Registry, id string, cost runner.CostClass, fn func(*runner.Spec) *Result) {
	reg.Register(runner.Experiment{
		ID:   id,
		Tags: []string{"figures"},
		Cost: cost,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			return finishResult(fn(spec), spec)
		},
	})
}

// finishResult converts a figure Result into runner Artifacts, emitting
// <id>.csv and <id>.txt when the spec writes files.
func finishResult(r *Result, spec *runner.Spec) (*runner.Artifacts, error) {
	points := 0
	for _, s := range r.Series {
		points += s.Len()
	}
	art := &runner.Artifacts{
		Title:  r.Title,
		Notes:  r.Notes,
		Series: len(r.Series),
		Points: points,
	}
	if spec.Write {
		if err := r.WriteFiles(spec.OutDir); err != nil {
			return nil, err
		}
		art.Files = []string{r.ID + ".csv", r.ID + ".txt"}
	} else {
		art.ASCII = r.RenderASCII()
	}
	return art, nil
}

// registerFigures registers the paper figures, in-text claims,
// ablations, and extensions in the order cmd/figures has always printed
// them.
func registerFigures(reg *runner.Registry) {
	fig(reg, "fig01", runner.CostModerate, func(spec *runner.Spec) *Result {
		return fig1Shared(spec).res
	})
	fig(reg, "fig02", runner.CostModerate, func(spec *runner.Spec) *Result {
		return Fig2(fig1Shared(spec).ping, 200)
	})
	fig(reg, "fig03", runner.CostModerate, func(spec *runner.Spec) *Result {
		r, _ := Fig3(PathConfig{Obs: spec.DESObserver()}, figAudioDur(spec))
		return r
	})
	fig(reg, "fig04", runner.CostCheap, func(spec *runner.Spec) *Result {
		return Fig4(figModel(spec))
	})
	fig(reg, "fig05", runner.CostCheap, func(spec *runner.Spec) *Result {
		return Fig5(figModel(spec), 0, 0)
	})
	fig(reg, "fig06", runner.CostCheap, func(spec *runner.Spec) *Result {
		return Fig6(figModel(spec))
	})
	fig(reg, "fig07", runner.CostExpensive, func(spec *runner.Spec) *Result {
		cfg := figModel(spec)
		cfg.Horizon = figSweepHorizon(spec)
		r, _ := Fig7(cfg, nil)
		return r
	})
	fig(reg, "fig08", runner.CostExpensive, func(spec *runner.Spec) *Result {
		cfg := figModel(spec)
		cfg.Horizon = figSweepHorizon(spec)
		r, _ := Fig8(cfg, nil, 0)
		return r
	})
	fig(reg, "fig09", runner.CostCheap, func(spec *runner.Spec) *Result {
		return Fig9(figMarkov(spec), 0)
	})
	fig(reg, "fig10", runner.CostExpensive, func(spec *runner.Spec) *Result {
		return Fig10(figMarkov(spec), 0)
	})
	fig(reg, "fig11", runner.CostExpensive, func(spec *runner.Spec) *Result {
		return Fig11(figMarkov(spec), 0)
	})
	fig(reg, "fig12", runner.CostExpensive, func(spec *runner.Spec) *Result {
		return Fig12(figMarkov(spec), 0, 0, 0)
	})
	fig(reg, "fig13", runner.CostCheap, func(spec *runner.Spec) *Result {
		return Fig13(figMarkov(spec), nil, nil)
	})
	fig(reg, "fig14", runner.CostCheap, func(spec *runner.Spec) *Result {
		return Fig14(figMarkov(spec), 0, 0, 0)
	})
	fig(reg, "fig15", runner.CostCheap, func(spec *runner.Spec) *Result {
		return Fig15(figMarkov(spec), 0, 0, 0)
	})
	fig(reg, "claim_parc", runner.CostCheap, func(spec *runner.Spec) *Result {
		return ClaimPARC(0, 1)
	})
	fig(reg, "claim_guidance", runner.CostCheap, func(spec *runner.Spec) *Result {
		return ClaimGuidance()
	})
	fig(reg, "ablation_timer_policy", runner.CostCheap, func(spec *runner.Spec) *Result {
		return AblationTimerPolicy(figModel(spec))
	})
	fig(reg, "ablation_solver", runner.CostCheap, func(spec *runner.Spec) *Result {
		return AblationSolver(figMarkov(spec), 0)
	})
	fig(reg, "ablation_delivery", runner.CostCheap, func(spec *runner.Spec) *Result {
		return AblationDelivery(nil, 1)
	})
	fig(reg, "ablation_queueing", runner.CostCheap, func(spec *runner.Spec) *Result {
		return AblationQueueing(0, 1)
	})
	fig(reg, "ext_coherence", runner.CostCheap, func(spec *runner.Spec) *Result {
		return ExtCoherence(figModel(spec))
	})
	fig(reg, "ext_storm", runner.CostCheap, func(spec *runner.Spec) *Result {
		return ExtStorm(0, 1)
	})
	fig(reg, "ext_nsweep", runner.CostExpensive, func(spec *runner.Spec) *Result {
		seeds := 5
		if spec.Quick {
			seeds = 2
		}
		return ExtNSweep(0, nil, seeds, 3e6, 1)
	})
	fig(reg, "ext_perrouter_fixed", runner.CostCheap, func(spec *runner.Spec) *Result {
		return ExtPerRouterFixed(nil, 1)
	})
	fig(reg, "ext_protocols", runner.CostModerate, func(spec *runner.Spec) *Result {
		return ExtProtocolComparison(0, 0)
	})
	fig(reg, "ext_clientserver", runner.CostCheap, func(spec *runner.Spec) *Result {
		return ExtClientServer(0, 1)
	})
	fig(reg, "ext_externalclock", runner.CostCheap, func(spec *runner.Spec) *Result {
		return ExtExternalClock(1)
	})
	fig(reg, "ext_tcpsync", runner.CostModerate, func(spec *runner.Spec) *Result {
		return ExtTCPSync(nil, 1)
	})
	fig(reg, "ext_threshold", runner.CostCheap, func(spec *runner.Spec) *Result {
		return ExtThreshold(nil)
	})
	fig(reg, "ext_mixed_periods", runner.CostCheap, func(spec *runner.Spec) *Result {
		return ExtMixedPeriods(0.1, 1e6, 1)
	})
	fig(reg, "ext_linkstate", runner.CostModerate, func(spec *runner.Spec) *Result {
		horizon := 3e5
		if spec.Quick {
			horizon = 5e4
		}
		return ExtLinkState(20, horizon, 1)
	})
	fig(reg, "ext_triggered", runner.CostModerate, func(spec *runner.Spec) *Result {
		horizon := 3e6
		if spec.Quick {
			horizon = 5e5
		}
		return ExtTriggered(nil, horizon, 1)
	})
	fig(reg, "ext_netscale", runner.CostExpensive, func(spec *runner.Spec) *Result {
		cfg := NetScaleConfig{Jobs: spec.Jobs, Seed: 1, Obs: spec.DESObserver()}
		if spec.Quick {
			cfg.Sizes = []int{500, 1000}
			cfg.Horizon = 65
		}
		return ExtNetScale(cfg)
	})
	fig(reg, "ext_churn", runner.CostExpensive, func(spec *runner.Spec) *Result {
		cfg := ChurnConfig{Jobs: spec.Jobs, Seed: 1, Obs: spec.DESObserver()}
		if spec.Quick {
			cfg.NumAS = 4
			cfg.RoutersPerAS = 6
			cfg.MeanUps = []float64{60, 30}
			cfg.Horizon = 220
		}
		return ExtChurn(cfg)
	})
	fig(reg, "ext_bgp", runner.CostExpensive, func(spec *runner.Spec) *Result {
		cfg := BGPConfig{Jobs: spec.Jobs, Seed: 1, Obs: spec.DESObserver()}
		if spec.Quick {
			cfg.Sizes = []int{300, 800}
			cfg.MRAIs = []float64{0, 5}
			cfg.Horizon = 120
		}
		return ExtBGP(cfg)
	})
	fig(reg, "ext_largen", runner.CostExpensive, func(spec *runner.Spec) *Result {
		ns, rounds := []int(nil), 0
		if spec.Quick {
			ns, rounds = []int{1000, 3162, 10000}, 12
		}
		return ExtLargeN(ns, rounds, 1, spec.PeriodicObserver())
	})
}
