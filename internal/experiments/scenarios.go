package experiments

import (
	"routesync/internal/scenarios"
	"routesync/internal/stats"
	"routesync/internal/trace"
)

// ExtClientServer regenerates the §1 Sprite client–server anecdote as a
// figure: the clients' phase coherence over time, with a server outage in
// the middle, for tight and jittered poll timers.
func ExtClientServer(n int, seed int64) *Result {
	if n == 0 {
		n = 20
	}
	res := &Result{
		ID:    "ext_clientserver",
		Title: "client-server convoy formation after a server outage",
		Plot: trace.PlotOptions{
			XLabel: "time (s)", YLabel: "client phase coherence R", YMin: 0, YMax: 1,
		},
	}
	for _, tr := range []float64{0.05, 15} {
		cfg := scenarios.ClientServerConfig{N: n, Tp: 30, Tr: tr, Tc: 0.1, Seed: seed}
		cs := scenarios.NewClientServer(cfg)
		name := "Tr=0.05s"
		if tr > 1 {
			name = "Tr=Tp/2"
		}
		ser := stats.Series{Name: name}
		cs.Sim().Schedule(60.5, "fail", func() { cs.FailServer(65) })
		for t := 10.0; t <= 900; t += 10 {
			cs.RunUntil(t)
			ser.Append(t, cs.OrderParameter())
		}
		res.Series = append(res.Series, ser)
		res.Notef("%s: final coherence %.2f, largest convoy %d",
			name, cs.OrderParameter(), cs.LargestConvoy())
	}
	res.Notef("server fails at t=60.5 for 65 s; recovery serves the backlog back to back")
	return res
}

// ExtTCPSync regenerates the §1 TCP window-synchronization example: mean
// pairwise sawtooth correlation and utilization for drop-tail versus the
// [FJ92] randomized gateway, across flow counts.
func ExtTCPSync(flowCounts []int, seed int64) *Result {
	if len(flowCounts) == 0 {
		flowCounts = []int{4, 8, 16, 32}
	}
	res := &Result{
		ID:    "ext_tcpsync",
		Title: "TCP global synchronization: sawtooth correlation, drop-tail vs randomized gateway",
		Plot: trace.PlotOptions{
			XLabel: "flows sharing the bottleneck", YLabel: "mean pairwise correlation",
			YMin: -0.2, YMax: 1,
		},
	}
	tail := stats.Series{Name: "drop-tail"}
	random := stats.Series{Name: "randomized"}
	for _, n := range flowCounts {
		cfg := scenarios.TCPSyncConfig{Flows: n, Capacity: 10 * n, Rounds: 3000, Seed: seed}
		rt := scenarios.RunTCPSync(cfg)
		cfg.RandomDrop = true
		rr := scenarios.RunTCPSync(cfg)
		tail.Append(float64(n), rt.SawtoothCorrelation)
		random.Append(float64(n), rr.SawtoothCorrelation)
		res.Notef("%d flows: correlation %.2f (drop-tail) vs %.2f (randomized); utilization %.2f vs %.2f",
			n, rt.SawtoothCorrelation, rr.SawtoothCorrelation, rt.Utilization, rr.Utilization)
	}
	res.Series = []stats.Series{tail, random}
	return res
}

// ExtExternalClock regenerates the §1 external-clock scenario: the
// aggregate arrival histogram of processes that fire on the hour versus
// the uniform traffic the architect's intuition expects.
func ExtExternalClock(seed int64) *Result {
	cfg := scenarios.ExternalClockConfig{Seed: seed}
	clocked := scenarios.RunExternalClock(cfg)
	baseline := scenarios.UniformBaseline(cfg)
	res := &Result{
		ID:    "ext_externalclock",
		Title: "traffic synchronized to an external clock vs uniform baseline",
		Plot: trace.PlotOptions{
			XLabel: "time (bin)", YLabel: "arrivals per bin",
		},
	}
	mk := func(name string, r scenarios.ExternalClockResult) stats.Series {
		s := stats.Series{Name: name}
		for i, c := range r.Histogram.Counts {
			s.Append(r.Histogram.BinCenter(i), float64(c))
		}
		return s
	}
	res.Series = []stats.Series{mk("on-the-hour", clocked), mk("uniform", baseline)}
	res.Notef("peak-to-mean: clocked %.1f vs uniform %.1f", clocked.PeakToMean, baseline.PeakToMean)
	res.Notef("[Pa93a] DECnet peaks on the hour and half-hour; [Pa93b] hourly weather-map fetches")
	return res
}
