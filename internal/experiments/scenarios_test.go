package experiments

import (
	"strings"
	"testing"
)

func TestExtClientServerContrast(t *testing.T) {
	r := ExtClientServer(20, 1)
	if len(r.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(r.Series))
	}
	tight, jittered := r.Series[0], r.Series[1]
	// After the outage (t > 200) the tight-timer population is coherent
	// and the jittered one is not.
	tightLate, jitteredLate := 0.0, 0.0
	n := 0
	for i := 0; i < tight.Len(); i++ {
		if tight.X[i] > 400 {
			tightLate += tight.Y[i]
			jitteredLate += jittered.Y[i]
			n++
		}
	}
	if n == 0 {
		t.Fatal("no late samples")
	}
	tightLate /= float64(n)
	jitteredLate /= float64(n)
	if tightLate < 0.9 {
		t.Fatalf("tight-timer coherence after outage = %v, want ~1", tightLate)
	}
	if jitteredLate > 0.5 {
		t.Fatalf("jittered coherence after outage = %v, want low", jitteredLate)
	}
}

func TestExtExternalClockGulf(t *testing.T) {
	r := ExtExternalClock(1)
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	found := false
	for _, note := range r.Notes {
		if strings.Contains(note, "peak-to-mean") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes = %v", r.Notes)
	}
	// The clocked histogram's peak dwarfs the uniform one's.
	peak := func(i int) float64 {
		_, hi := r.Series[i].YRange()
		return hi
	}
	if peak(0) < 4*peak(1) {
		t.Fatalf("clocked peak %v not ≫ uniform peak %v", peak(0), peak(1))
	}
}
