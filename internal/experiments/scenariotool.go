package experiments

import (
	"fmt"
	"strings"

	"routesync/internal/runner"
	"routesync/internal/scenarios"
	"routesync/internal/trace"
)

// ScenarioWhich lists the valid -which values for cmd/scenarios, "all"
// excluded (the frontend expands it to the full id list).
func ScenarioWhich() []string { return []string{"tcp", "clientserver", "clock", "all"} }

// ScenarioExperiment maps a -which flag value to its experiment id, or
// "" for an unknown (or "all") selection.
func ScenarioExperiment(which string) string {
	switch which {
	case "tcp":
		return "scenario_tcp"
	case "clientserver":
		return "scenario_clientserver"
	case "clock":
		return "scenario_clock"
	default:
		return ""
	}
}

// ScenarioAll lists the §1 catalogue experiment ids in the order
// `-which all` has always printed them.
func ScenarioAll() []string {
	return []string{"scenario_tcp", "scenario_clientserver", "scenario_clock"}
}

func registerScenarioTool(reg *runner.Registry) {
	reg.Register(runner.Experiment{
		ID:    "scenario_tcp",
		Title: "TCP window global synchronization and the randomized-gateway fix",
		Tags:  []string{"scenarios"},
		Cost:  runner.CostModerate,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			seed := spec.Seed
			var b strings.Builder
			fmt.Fprintln(&b, "== TCP window synchronization [ZhC190] and the randomized-gateway fix [FJ92]")
			tail := scenarios.RunTCPSync(scenarios.TCPSyncConfig{Seed: seed})
			random := scenarios.RunTCPSync(scenarios.TCPSyncConfig{RandomDrop: true, Seed: seed})
			b.WriteString(trace.Table(
				[]string{"gateway", "correlation", "cuts/congestion", "utilization"},
				[][]string{
					{"drop-tail", fmt.Sprintf("%.2f", tail.SawtoothCorrelation),
						fmt.Sprintf("%.1f", tail.CutsPerCongestion), fmt.Sprintf("%.2f", tail.Utilization)},
					{"randomized", fmt.Sprintf("%.2f", random.SawtoothCorrelation),
						fmt.Sprintf("%.1f", random.CutsPerCongestion), fmt.Sprintf("%.2f", random.Utilization)},
				}))
			fmt.Fprintln(&b)
			return &runner.Artifacts{ASCII: b.String()}, nil
		},
	})
	reg.Register(runner.Experiment{
		ID:    "scenario_clientserver",
		Title: "Sprite client-server recovery convoy",
		Tags:  []string{"scenarios"},
		Cost:  runner.CostModerate,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			seed := spec.Seed
			var b strings.Builder
			fmt.Fprintln(&b, "== Sprite client-server recovery convoy [Ba92]")
			for _, tr := range []float64{0.05, 15} {
				cs := scenarios.NewClientServer(scenarios.ClientServerConfig{
					N: 20, Tp: 30, Tr: tr, Tc: 0.1, Seed: seed,
				})
				cs.RunUntil(60)
				cs.Sim().Schedule(60.5, "fail", func() { cs.FailServer(65) })
				cs.RunUntil(600)
				fmt.Fprintf(&b, "Tr=%-5.2fs: phase coherence %.2f, largest convoy %d\n",
					tr, cs.OrderParameter(), cs.LargestConvoy())
			}
			fmt.Fprintln(&b)
			return &runner.Artifacts{ASCII: b.String()}, nil
		},
	})
	reg.Register(runner.Experiment{
		ID:    "scenario_clock",
		Title: "synchronization to an external clock",
		Tags:  []string{"scenarios"},
		Cost:  runner.CostCheap,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			var b strings.Builder
			fmt.Fprintln(&b, "== synchronization to an external clock [Pa93a]")
			cfg := scenarios.ExternalClockConfig{Seed: spec.Seed}
			clocked := scenarios.RunExternalClock(cfg)
			baseline := scenarios.UniformBaseline(cfg)
			b.WriteString(trace.Bars(
				[]string{"on-the-hour peak/mean", "uniform peak/mean"},
				[]float64{clocked.PeakToMean, baseline.PeakToMean}, 40))
			fmt.Fprintln(&b)
			return &runner.Artifacts{ASCII: b.String()}, nil
		},
	})
}
