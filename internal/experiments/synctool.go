package experiments

import (
	"fmt"
	"math"
	"strings"

	"routesync/internal/core"
	"routesync/internal/runner"
	"routesync/internal/trace"
)

// SyncsimOverrides carries cmd/syncsim's flags into the registered
// model-run experiments.
type SyncsimOverrides struct {
	Params            core.Params `json:"params"`
	Horizon           float64     `json:"horizon"`
	StartSynchronized bool        `json:"start_synchronized"`
	BrokenThreshold   int         `json:"broken_threshold"`
	Plot              bool        `json:"plot"`
	Analyze           bool        `json:"analyze"`
	Ensemble          int         `json:"ensemble"`
}

// syncsimDefaults mirrors the syncsim flag defaults.
func syncsimDefaults() SyncsimOverrides {
	return SyncsimOverrides{
		Params:          core.Params{N: 20, Tp: 121, Tr: 0.1, Tc: 0.11, Seed: 1},
		Horizon:         1e6,
		BrokenThreshold: 2,
		Analyze:         true,
	}
}

func syncsimOverrides(spec *runner.Spec) SyncsimOverrides {
	if o, ok := spec.Overrides.(SyncsimOverrides); ok {
		return o
	}
	return syncsimDefaults()
}

func registerSyncsimTool(reg *runner.Registry) {
	reg.Register(runner.Experiment{
		ID:    "syncsim_run",
		Title: "single Periodic Messages model run with Markov analysis",
		Tags:  []string{"syncsim"},
		Cost:  runner.CostModerate,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			o := syncsimOverrides(spec)
			opt := core.SimOptions{
				Horizon:           o.Horizon,
				StartSynchronized: o.StartSynchronized,
				BrokenThreshold:   o.BrokenThreshold,
				RecordTrace:       o.Plot,
			}
			rep, err := core.Simulate(o.Params, opt)
			if err != nil {
				return nil, err
			}
			p := o.Params
			var b strings.Builder
			fmt.Fprintf(&b, "parameters: N=%d Tp=%gs Tr=%gs Tc=%gs seed=%d (Tr = %.2f·Tc)\n",
				p.N, p.Tp, p.Tr, p.Tc, p.Seed, p.Tr/p.Tc)
			if opt.StartSynchronized {
				if rep.Broken {
					fmt.Fprintf(&b, "synchronization broken after %.0f rounds (%.3g s)\n", rep.BreakRounds, rep.BreakTime)
				} else {
					fmt.Fprintf(&b, "synchronization NOT broken within %.3g s\n", o.Horizon)
				}
			} else {
				if rep.Synchronized {
					fmt.Fprintf(&b, "fully synchronized after %.0f rounds (%.3g s)\n", rep.SyncRounds, rep.SyncTime)
				} else {
					fmt.Fprintf(&b, "NOT synchronized within %.3g s\n", o.Horizon)
				}
			}
			fmt.Fprintf(&b, "cluster events processed: %d\n", rep.Events)

			if o.Plot && rep.LargestTrace.Len() > 0 {
				fmt.Fprintln(&b, trace.Render(trace.PlotOptions{
					Title:  "largest cluster per round",
					XLabel: "time (s)", YLabel: "cluster size",
					YMin: 0, YMax: float64(p.N),
				}, rep.LargestTrace.Downsample(1+rep.LargestTrace.Len()/2000)))
			}

			if o.Analyze {
				a, err := core.Analyze(p)
				if err != nil {
					return nil, fmt.Errorf("analyze: %w", err)
				}
				fmt.Fprintf(&b, "\nMarkov chain model (paper §5):\n")
				fmt.Fprintf(&b, "  expected time to synchronize:   %s\n", syncsimSeconds(a.ExpectedSyncSeconds))
				fmt.Fprintf(&b, "  expected time to desynchronize: %s\n", syncsimSeconds(a.ExpectedUnsyncSeconds))
				fmt.Fprintf(&b, "  fraction of time unsynchronized: %.3f (%s)\n", a.FractionUnsynchronized, a.Regime)
			}
			return &runner.Artifacts{ASCII: b.String()}, nil
		},
	})
	reg.Register(runner.Experiment{
		ID:    "syncsim_ensemble",
		Title: "Periodic Messages model ensemble quantiles",
		Tags:  []string{"syncsim"},
		Cost:  runner.CostExpensive,
		Run: func(spec *runner.Spec) (*runner.Artifacts, error) {
			o := syncsimOverrides(spec)
			res, err := core.SimulateEnsemble(o.Params, o.Ensemble, o.Horizon, o.StartSynchronized)
			if err != nil {
				return nil, err
			}
			what := "synchronize"
			if o.StartSynchronized {
				what = "break up"
			}
			var b strings.Builder
			fmt.Fprintf(&b, "ensemble of %d replications (horizon %.3g s): %d reached %s\n",
				res.Replications, o.Horizon, res.Reached, what)
			if res.Reached > 0 {
				fmt.Fprintf(&b, "  time to %s: mean %s, median %s, p10 %s, p90 %s\n",
					what, syncsimSeconds(res.Mean), syncsimSeconds(res.Median),
					syncsimSeconds(res.P10), syncsimSeconds(res.P90))
			}
			return &runner.Artifacts{ASCII: b.String()}, nil
		},
	})
}

// syncsimSeconds formats a duration the way cmd/syncsim always has.
func syncsimSeconds(s float64) string {
	switch {
	case math.IsInf(s, 1):
		return "infinite"
	case s > 86400*365:
		return fmt.Sprintf("%.3g s (%.3g years)", s, s/(86400*365))
	case s > 3600:
		return fmt.Sprintf("%.3g s (%.1f hours)", s, s/3600)
	default:
		return fmt.Sprintf("%.3g s", s)
	}
}
