package experiments

import (
	"routesync/internal/jitter"
	"routesync/internal/periodic"
	"routesync/internal/rng"
	"routesync/internal/stats"
	"routesync/internal/trace"
)

// ExtTriggered studies triggered updates as a synchronization *source*
// (paper §3 step 4: a network change makes every router send immediately,
// collapsing the system into one cluster). Network events arrive as a
// Poisson process; after each event the system is fully synchronized and
// must break up again before the next. The figure reports the long-run
// fraction of time the system spends synchronized as a function of the
// event rate, for a moderate and a strong random component.
//
// The paper argues jitter must handle "the synchronization that could
// result from triggered updates"; this experiment quantifies how much
// event-driven re-synchronization each jitter level can absorb.
func ExtTriggered(eventsPerDay []float64, horizon float64, seed int64) *Result {
	if len(eventsPerDay) == 0 {
		eventsPerDay = []float64{0.5, 1, 2, 4, 8}
	}
	if horizon == 0 {
		horizon = 3e6
	}
	res := &Result{
		ID:    "ext_triggered",
		Title: "triggered-update storms: fraction of time synchronized vs event rate",
		Plot: trace.PlotOptions{
			XLabel: "network events per day", YLabel: "fraction of time largest cluster > N/2",
			YMin: 0, YMax: 1,
		},
	}
	for _, trMult := range []float64{2.8, 10} {
		tr := trMult * 0.11
		ser := stats.Series{Name: fmtTr(trMult)}
		for _, rate := range eventsPerDay {
			frac := triggeredRun(tr, rate, horizon, seed)
			ser.Append(rate, frac)
			res.Notef("Tr=%.2gTc, %.2g events/day: synchronized %.1f%% of the time",
				trMult, rate, 100*frac)
		}
		res.Series = append(res.Series, ser)
	}
	res.Notef("each event collapses the system into one cluster (§3 step 4); larger Tr drains the synchronization faster between events")
	return res
}

// triggeredRun simulates the Periodic Messages model with Poisson
// network events and returns the fraction of samples with a large
// cluster pending.
func triggeredRun(tr, eventsPerDay, horizon float64, seed int64) float64 {
	const n = 20
	sys := periodic.New(periodic.Config{
		N: n, Tc: 0.11,
		Jitter: jitter.Uniform{Tp: 121, Tr: tr},
		Seed:   seed,
	})
	r := rng.New(seed + 777)
	meanGap := 86400 / eventsPerDay
	nextEvent := r.Exponential(meanGap)

	const sampleEvery = 605.55 // 5 rounds
	nextSample := sampleEvery
	synced, samples := 0, 0
	next := sys.NextExpiry()
	for next <= horizon {
		next = sys.Step().Next
		now := sys.Now()
		for nextEvent <= now {
			sys.TriggerUpdate()
			nextEvent += r.Exponential(meanGap)
			next = now // every timer is now pending at the trigger time
		}
		for nextSample <= now {
			samples++
			if sys.LargestPending() > n/2 {
				synced++
			}
			nextSample += sampleEvery
		}
	}
	if samples == 0 {
		return 0
	}
	return float64(synced) / float64(samples)
}
