package experiments

import "testing"

func TestExtTriggeredJitterAbsorbsStorms(t *testing.T) {
	if testing.Short() {
		t.Skip("long storm simulation")
	}
	r := ExtTriggered([]float64{1, 4}, 1e6, 1)
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	moderate, strong := r.Series[0], r.Series[1]
	// With moderate jitter (2.8·Tc, break-up ~1.4 days) a daily event
	// keeps the network synchronized a large fraction of the time.
	if moderate.Y[0] < 0.3 {
		t.Fatalf("moderate jitter at 1 event/day: %v, want substantial sync", moderate.Y[0])
	}
	// With the recommended 10·Tc the same storm leaves almost no
	// synchronized time.
	for i, y := range strong.Y {
		if y > 0.1 {
			t.Fatalf("strong jitter point %d: %v, want < 0.1", i, y)
		}
	}
	// More events → more synchronized time, for the moderate case.
	if moderate.Y[1] < moderate.Y[0] {
		t.Fatalf("sync fraction should grow with event rate: %v", moderate.Y)
	}
}
