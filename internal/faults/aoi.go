package faults

import (
	"math"
	"sort"

	"routesync/internal/netsim"
	"routesync/internal/routing"
)

// Monitor measures routing-state freshness — age of information — at a
// set of observer agents for a fixed destination set. It rides the
// agents' OnRouteChange hooks for event-exact outage/recovery edges and
// reads Route.Updated at scheduled sampling instants for exact ages, so
// it adds no per-update bookkeeping to the protocol hot path.
//
// All mutable per-agent state is touched only by events executing at
// that agent's node, so a monitored run stays race-free and K-invariant
// under partitioning. Attach observers after Partition, before the run;
// read the aggregate accessors after (or between) runs.
type Monitor struct {
	dests   []netsim.NodeID
	destIdx map[netsim.NodeID]int
	agents  []*agentMon
}

// Outage is one loss→recovery cycle of a monitored destination at one
// observer. A destination still down at the end of a run has no Outage
// record (censored); Holes counts its dead samples instead.
type Outage struct {
	Router, Dest       netsim.NodeID
	LostAt, RegainedAt float64
	// Resurrected marks a recovery that violated hold-down: the route
	// came back via a different next hop while the destination was still
	// inside its hold window. A correct hold-down implementation never
	// produces one.
	Resurrected bool
}

// agentMon is one observer's state, confined to its node's logical
// process.
type agentMon struct {
	m  *Monitor
	ag *routing.Agent

	reachable []bool
	everUp    []bool
	firstUpAt []float64
	lostAt    []float64
	lostNext  []netsim.NodeID // next hop in use when the route was lost

	outages   []Outage
	resurrect int

	ages    []float64 // sampled FIB-entry ages, live routes only
	holes   int       // samples that found no live route
	samples int       // total (dest) samples taken
	atFault []float64 // ages sampled at failure instants

	sampleFn func() // hoisted: one closure per observer, not per sample
	faultFn  func()

	// ckpt shadows the rollback state for optimistic partitioned runs.
	// outages/ages/atFault are append-only, so their checkpoints are just
	// lengths to truncate back to; the per-destination edge trackers are
	// mutated in place and need full copies.
	ckpt agentMonCkpt
}

type agentMonCkpt struct {
	reachable []bool
	everUp    []bool
	firstUpAt []float64
	lostAt    []float64
	lostNext  []netsim.NodeID

	outages   int
	resurrect int
	ages      int
	holes     int
	samples   int
	atFault   int
}

// SaveCheckpoint implements netsim.Checkpointable.
func (am *agentMon) SaveCheckpoint() {
	c := &am.ckpt
	c.reachable = append(c.reachable[:0], am.reachable...)
	c.everUp = append(c.everUp[:0], am.everUp...)
	c.firstUpAt = append(c.firstUpAt[:0], am.firstUpAt...)
	c.lostAt = append(c.lostAt[:0], am.lostAt...)
	c.lostNext = append(c.lostNext[:0], am.lostNext...)
	c.outages = len(am.outages)
	c.resurrect = am.resurrect
	c.ages = len(am.ages)
	c.holes = am.holes
	c.samples = am.samples
	c.atFault = len(am.atFault)
}

// RestoreCheckpoint implements netsim.Checkpointable.
func (am *agentMon) RestoreCheckpoint() {
	c := &am.ckpt
	copy(am.reachable, c.reachable)
	copy(am.everUp, c.everUp)
	copy(am.firstUpAt, c.firstUpAt)
	copy(am.lostAt, c.lostAt)
	copy(am.lostNext, c.lostNext)
	am.outages = am.outages[:c.outages]
	am.resurrect = c.resurrect
	am.ages = am.ages[:c.ages]
	am.holes = c.holes
	am.samples = c.samples
	am.atFault = am.atFault[:c.atFault]
}

// NewMonitor creates a monitor for the given destination set.
func NewMonitor(dests []netsim.NodeID) *Monitor {
	m := &Monitor{
		dests:   append([]netsim.NodeID(nil), dests...),
		destIdx: make(map[netsim.NodeID]int, len(dests)),
	}
	for i, d := range m.dests {
		m.destIdx[d] = i
	}
	return m
}

// Dests returns the monitored destination set.
func (m *Monitor) Dests() []netsim.NodeID {
	return append([]netsim.NodeID(nil), m.dests...)
}

// Observe attaches the monitor to ag, chaining any OnRouteChange hook
// already installed. Aggregate accessors iterate observers in attach
// order, so attach in a deterministic order.
func (m *Monitor) Observe(ag *routing.Agent) {
	am := &agentMon{
		m:         m,
		ag:        ag,
		reachable: make([]bool, len(m.dests)),
		everUp:    make([]bool, len(m.dests)),
		firstUpAt: make([]float64, len(m.dests)),
		lostAt:    make([]float64, len(m.dests)),
		lostNext:  make([]netsim.NodeID, len(m.dests)),
	}
	for i := range am.firstUpAt {
		am.firstUpAt[i] = math.NaN()
		am.lostAt[i] = math.NaN()
	}
	am.sampleFn = am.sample
	am.faultFn = am.sampleAtFault
	prev := ag.OnRouteChange
	ag.OnRouteChange = func(dest netsim.NodeID, metric uint32, reachable bool) {
		if prev != nil {
			prev(dest, metric, reachable)
		}
		am.routeChange(dest, reachable)
	}
	ag.Node().Net().RegisterCheckpoint(ag.Node(), am)
	m.agents = append(m.agents, am)
}

// routeChange tracks loss/recovery edges for monitored destinations.
func (am *agentMon) routeChange(dest netsim.NodeID, up bool) {
	i, ok := am.m.destIdx[dest]
	if !ok {
		return
	}
	now := am.ag.Node().Now()
	switch {
	case up && !am.reachable[i]:
		am.reachable[i] = true
		if !am.everUp[i] {
			// First convergence is not an outage recovery.
			am.everUp[i] = true
			am.firstUpAt[i] = now
			return
		}
		o := Outage{Router: am.ag.Node().ID, Dest: dest, LostAt: am.lostAt[i], RegainedAt: now}
		if r := am.ag.Table().Get(dest); r != nil &&
			am.ag.Table().HeldDown(dest, now) && r.NextHop != am.lostNext[i] {
			o.Resurrected = true
			am.resurrect++
		}
		am.outages = append(am.outages, o)
	case !up && am.reachable[i]:
		am.reachable[i] = false
		am.lostAt[i] = now
		if r := am.ag.Table().Get(dest); r != nil {
			am.lostNext[i] = r.NextHop
		}
	}
}

// sample reads the observer's table once: the age (now − Updated) of
// every live monitored route, and a hole for every dead one.
func (am *agentMon) sample() {
	now := am.ag.Node().Now()
	tbl := am.ag.Table()
	inf := tbl.Infinity()
	for _, dest := range am.m.dests {
		if dest == am.ag.Node().ID {
			continue
		}
		am.samples++
		r := tbl.Get(dest)
		if r == nil || r.Metric >= inf {
			am.holes++
			continue
		}
		am.ages = append(am.ages, now-r.Updated)
	}
}

// sampleAtFault records the ages of live monitored routes at a failure
// instant — the staleness the failure exposes.
func (am *agentMon) sampleAtFault() {
	now := am.ag.Node().Now()
	tbl := am.ag.Table()
	inf := tbl.Infinity()
	for _, dest := range am.m.dests {
		if dest == am.ag.Node().ID {
			continue
		}
		r := tbl.Get(dest)
		if r == nil || r.Metric >= inf {
			continue
		}
		am.atFault = append(am.atFault, now-r.Updated)
	}
}

// ScheduleSampling schedules periodic age samples at every attached
// observer at times start, start+every, ... below horizon. Call after
// every observer is attached.
func (m *Monitor) ScheduleSampling(start, every, horizon float64) {
	if every <= 0 {
		panic("faults: sampling interval must be positive")
	}
	for _, am := range m.agents {
		nd := am.ag.Node()
		for t := start; t < horizon; t += every {
			nd.Schedule(t, "aoi-sample", am.sampleFn)
		}
	}
}

// SampleAtFailures schedules a staleness sample at every attached
// observer at each of the given instants (usually
// Injector.FailureTimes()). The sample fires at the failure time with a
// later per-node key, so it reads the table as the failure found it —
// before any reaction can propagate.
func (m *Monitor) SampleAtFailures(times []float64) {
	for _, am := range m.agents {
		nd := am.ag.Node()
		for _, t := range times {
			nd.Schedule(t, "aoi-fault-sample", am.faultFn)
		}
	}
}

// Outages returns every completed outage across observers, sorted by
// (LostAt, Router, Dest).
func (m *Monitor) Outages() []Outage {
	var out []Outage
	for _, am := range m.agents {
		out = append(out, am.outages...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.LostAt != b.LostAt {
			return a.LostAt < b.LostAt
		}
		if a.Router != b.Router {
			return a.Router < b.Router
		}
		return a.Dest < b.Dest
	})
	return out
}

// OutageDurations returns the durations of every completed outage — the
// convergence tail the churn experiments plot as a CDF.
func (m *Monitor) OutageDurations() []float64 {
	var out []float64
	for _, o := range m.Outages() {
		out = append(out, o.RegainedAt-o.LostAt)
	}
	return out
}

// Resurrections counts hold-down violations (see Outage.Resurrected)
// across observers.
func (m *Monitor) Resurrections() int {
	n := 0
	for _, am := range m.agents {
		n += am.resurrect
	}
	return n
}

// Ages returns every periodic age sample of a live route, concatenated
// in observer attach order.
func (m *Monitor) Ages() []float64 {
	var out []float64
	for _, am := range m.agents {
		out = append(out, am.ages...)
	}
	return out
}

// StalenessAtFailures returns the route ages sampled at failure
// instants, concatenated in observer attach order.
func (m *Monitor) StalenessAtFailures() []float64 {
	var out []float64
	for _, am := range m.agents {
		out = append(out, am.atFault...)
	}
	return out
}

// Availability returns the fraction of periodic samples that found a
// live route (NaN before any sample fires).
func (m *Monitor) Availability() float64 {
	samples, holes := 0, 0
	for _, am := range m.agents {
		samples += am.samples
		holes += am.holes
	}
	if samples == 0 {
		return math.NaN()
	}
	return 1 - float64(holes)/float64(samples)
}

// InitialConvergence returns, per observer in attach order, the times
// at which each monitored destination first became reachable; never-
// reached destinations are omitted.
func (m *Monitor) InitialConvergence() []float64 {
	var out []float64
	for _, am := range m.agents {
		for i := range am.firstUpAt {
			if !math.IsNaN(am.firstUpAt[i]) {
				out = append(out, am.firstUpAt[i])
			}
		}
	}
	return out
}
