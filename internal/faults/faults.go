// Package faults is the deterministic failure and churn layer for the
// packet-level simulator: link flaps, node crash/reboot cycles, and
// link-metric changes, injected as first-class keyed DES events so a
// churned run stays bit-identical to its sequential execution for any
// partition count, on both DES backends.
//
// Two rules buy that determinism:
//
//   - Every fault transition is scheduled through the affected nodes
//     (netsim.Node.Schedule), so it carries an (origin node, sequence)
//     ordering key and executes on the owning logical process. A link
//     that crosses a partition boundary flips each endpoint's private
//     view from that endpoint's own event — state never crosses the
//     boundary.
//   - Every random draw comes from a per-target stream derived from the
//     injector seed and the target's identity, and the whole timeline is
//     materialized at install time (single-threaded), so neither the
//     partitioning nor the installation order can reorder draws.
//
// Like workloads and agents, fault processes must be installed after
// netsim.Network.Partition and before the run starts.
//
// On top of the injector, Monitor measures routing-state freshness — the
// age-of-information instrumentation (per-destination FIB-entry age,
// staleness at failure instants, outage and convergence tails) behind
// the churn experiments, following the age-of-information framing of
// "Timely Mobile Routing: An Experimental Study" (see PAPERS.md).
package faults

import (
	"fmt"
	"sort"

	"routesync/internal/netsim"
	"routesync/internal/rng"
)

// Kind classifies injected fault events.
type Kind int

// Fault event kinds.
const (
	LinkDown Kind = iota
	LinkUp
	LinkMetric
	NodeCrash
	NodeReboot
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case LinkMetric:
		return "link-metric"
	case NodeCrash:
		return "node-crash"
	case NodeReboot:
		return "node-reboot"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded fault transition.
type Event struct {
	At   float64
	Kind Kind
	// Link is set for link events, nil otherwise.
	Link *netsim.Link
	// Node is the crashed/rebooted node, or the lower-id endpoint for
	// link events.
	Node netsim.NodeID
	// Metric is the new cost for LinkMetric events.
	Metric uint32
}

// Injector schedules fault processes on one network and records the
// resulting timeline. Install every fault after Partition and before
// the run; the injector itself is then passive (the scheduled events do
// the work), so reading the timeline during or after the run is safe.
type Injector struct {
	net      *netsim.Network
	seed     int64
	timeline []Event
}

// NewInjector creates an injector whose random fault processes draw
// from streams derived from seed.
func NewInjector(net *netsim.Network, seed int64) *Injector {
	return &Injector{net: net, seed: seed}
}

// stream derives the per-target random stream for a fault process: a
// pure function of the injector seed, a per-process salt and the
// target's identity, so install order is irrelevant.
func (in *Injector) stream(salt, a, b int64) *rng.Source {
	return rng.New(in.seed*1000003 ^ salt*0x9E3779B9 ^ (a+1)*8191 ^ (b+1)*131071)
}

func linkNode(l *netsim.Link) netsim.NodeID {
	ends := l.Endpoints()
	id := ends[0].ID
	if ends[1].ID < id {
		id = ends[1].ID
	}
	return id
}

// FailLink schedules a one-shot link failure at absolute time t.
func (in *Injector) FailLink(l *netsim.Link, t float64) {
	l.FailAt(t)
	in.timeline = append(in.timeline, Event{At: t, Kind: LinkDown, Link: l, Node: linkNode(l)})
}

// RestoreLink schedules a one-shot link restore at absolute time t.
func (in *Injector) RestoreLink(l *netsim.Link, t float64) {
	l.RestoreAt(t)
	in.timeline = append(in.timeline, Event{At: t, Kind: LinkUp, Link: l, Node: linkNode(l)})
}

// SetLinkMetric schedules a link-cost change at absolute time t.
// Routing configs pick the new cost up through their LinkCost hook
// (netsim.Link.CostFrom).
func (in *Injector) SetLinkMetric(l *netsim.Link, t float64, metric uint32) {
	l.SetCostAt(t, metric)
	in.timeline = append(in.timeline, Event{At: t, Kind: LinkMetric, Link: l, Node: linkNode(l), Metric: metric})
}

// FlapConfig parameterizes a seeded link-flap process.
type FlapConfig struct {
	// MeanUp and MeanDown are the mean working and outage durations in
	// seconds; both phases are exponentially distributed.
	MeanUp, MeanDown float64
	// Start is when the process begins (the first failure lands an
	// Exp(MeanUp) after it); Horizon bounds the materialized timeline.
	Start, Horizon float64
}

// FlapLink installs a flap process on l: alternating Exp(MeanUp)
// working periods and Exp(MeanDown) outages over [Start, Horizon),
// drawn from a stream keyed by the link's endpoints. An outage that
// would extend past Horizon is left open — the link stays down.
func (in *Injector) FlapLink(l *netsim.Link, cfg FlapConfig) {
	if cfg.MeanUp <= 0 || cfg.MeanDown <= 0 || cfg.Horizon <= cfg.Start {
		panic("faults: invalid flap config")
	}
	ends := l.Endpoints()
	r := in.stream(0x11, int64(ends[0].ID), int64(ends[1].ID))
	t := cfg.Start + r.Exponential(cfg.MeanUp)
	for t < cfg.Horizon {
		in.FailLink(l, t)
		t += r.Exponential(cfg.MeanDown)
		if t >= cfg.Horizon {
			break
		}
		in.RestoreLink(l, t)
		t += r.Exponential(cfg.MeanUp)
	}
}

// Rebootable is any protocol agent the injector can crash and reboot.
// All three protocol families (routing, linkstate, pathvector) satisfy
// it through the shared internal/protocol kernel, so one churn layer
// serves every family.
type Rebootable interface {
	Node() *netsim.Node
	// Crash models a power failure: volatile routing state lost, data
	// plane dead until Restart.
	Crash()
	// Restart reboots a stopped agent with the given start offset.
	Restart(startOffset float64)
}

// CrashAgent schedules ag to crash at absolute time t (power failure:
// volatile routing state lost, data plane dead until reboot).
func (in *Injector) CrashAgent(ag Rebootable, t float64) {
	nd := ag.Node()
	nd.Schedule(t, "fault-crash", func() { ag.Crash() })
	in.timeline = append(in.timeline, Event{At: t, Kind: NodeCrash, Node: nd.ID})
}

// RebootAgent schedules ag to reboot at absolute time t with the given
// start offset (the delay until its first periodic update; with
// RequestOnStart the table request goes out immediately).
func (in *Injector) RebootAgent(ag Rebootable, t, startOffset float64) {
	nd := ag.Node()
	nd.Schedule(t, "fault-reboot", func() { ag.Restart(startOffset) })
	in.timeline = append(in.timeline, Event{At: t, Kind: NodeReboot, Node: nd.ID})
}

// ChurnConfig parameterizes a seeded node crash/reboot process.
type ChurnConfig struct {
	// MeanUp and MeanDown are the mean alive and dead durations in
	// seconds; both phases are exponentially distributed.
	MeanUp, MeanDown float64
	// Start is when the process begins; Horizon bounds the timeline. A
	// crash whose outage would extend past Horizon leaves the node down.
	Start, Horizon float64
	// RebootOffset is the start offset handed to the agent on every
	// reboot.
	RebootOffset float64
}

// ChurnAgent installs a crash/reboot process on ag, drawn from a stream
// keyed by the agent's node.
func (in *Injector) ChurnAgent(ag Rebootable, cfg ChurnConfig) {
	if cfg.MeanUp <= 0 || cfg.MeanDown <= 0 || cfg.Horizon <= cfg.Start {
		panic("faults: invalid churn config")
	}
	r := in.stream(0x22, int64(ag.Node().ID), 0)
	t := cfg.Start + r.Exponential(cfg.MeanUp)
	for t < cfg.Horizon {
		in.CrashAgent(ag, t)
		t += r.Exponential(cfg.MeanDown)
		if t >= cfg.Horizon {
			break
		}
		in.RebootAgent(ag, t, cfg.RebootOffset)
		t += r.Exponential(cfg.MeanUp)
	}
}

// Timeline returns a copy of every installed fault event sorted by time
// (install order breaks ties), for reporting and for staleness-at-
// failure sampling.
func (in *Injector) Timeline() []Event {
	out := append([]Event(nil), in.timeline...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// FailureTimes returns the sorted times at which something breaks (a
// LinkDown or NodeCrash fires) — the instants of interest for
// staleness-at-failure measurement. Duplicate instants are collapsed.
func (in *Injector) FailureTimes() []float64 {
	var ts []float64
	for _, e := range in.Timeline() {
		if e.Kind != LinkDown && e.Kind != NodeCrash {
			continue
		}
		if len(ts) > 0 && ts[len(ts)-1] == e.At {
			continue
		}
		ts = append(ts, e.At)
	}
	return ts
}
