package faults

import (
	"math"
	"reflect"
	"testing"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/routing"
)

// compressedProfile is a RIP-like profile shrunk so flap cycles and
// recovery fit short test runs: 5 s period, 15 s timeout, 25 s GC.
func compressedProfile(holdDown float64) routing.Profile {
	return routing.Profile{
		Name: "test", Period: 5, Infinity: 16,
		TimeoutFactor: 3, GCFactor: 5,
		TriggeredUpdates: true, SplitHorizon: true,
		HoldDown: holdDown,
	}
}

func linkBetween(a, b *netsim.Node) *netsim.Link {
	for _, m := range a.Media() {
		if l, ok := m.(*netsim.Link); ok && l.Peer(a) == b {
			return l
		}
	}
	panic("no link between nodes")
}

// TestFlapTimelineDeterministic: the materialized timeline is a pure
// function of (seed, target identity) — install order does not matter,
// and equal seeds reproduce it exactly.
func TestFlapTimelineDeterministic(t *testing.T) {
	build := func(order []int) []Event {
		n := netsim.NewNetwork(1)
		a := n.NewNode("a", nil)
		b := n.NewNode("b", nil)
		c := n.NewNode("c", nil)
		ab := n.Connect(a, b, netsim.LinkConfig{Delay: 0.01})
		bc := n.Connect(b, c, netsim.LinkConfig{Delay: 0.01})
		links := []*netsim.Link{ab, bc}
		in := NewInjector(n, 42)
		cfg := FlapConfig{MeanUp: 30, MeanDown: 10, Start: 5, Horizon: 300}
		for _, i := range order {
			in.FlapLink(links[i], cfg)
		}
		return in.Timeline()
	}
	fwd := build([]int{0, 1})
	rev := build([]int{1, 0})
	if len(fwd) == 0 {
		t.Fatal("empty flap timeline")
	}
	if !reflect.DeepEqual(stripLinks(fwd), stripLinks(rev)) {
		t.Fatalf("timeline depends on install order:\n fwd %+v\n rev %+v", stripLinks(fwd), stripLinks(rev))
	}
	// Alternating down/up per link, strictly increasing times per link.
	perNode := map[netsim.NodeID][]Event{}
	for _, e := range fwd {
		perNode[e.Node] = append(perNode[e.Node], e)
	}
	for id, evs := range perNode {
		for i, e := range evs {
			wantKind := LinkDown
			if i%2 == 1 {
				wantKind = LinkUp
			}
			if e.Kind != wantKind {
				t.Fatalf("link %d event %d: kind %v, want %v", id, i, e.Kind, wantKind)
			}
			if i > 0 && e.At <= evs[i-1].At {
				t.Fatalf("link %d timeline not increasing: %v", id, evs)
			}
		}
	}
	// FailureTimes: sorted, only the down/crash instants.
	ts := func() []float64 {
		n := netsim.NewNetwork(1)
		a := n.NewNode("a", nil)
		b := n.NewNode("b", nil)
		l := n.Connect(a, b, netsim.LinkConfig{Delay: 0.01})
		in := NewInjector(n, 42)
		in.FlapLink(l, FlapConfig{MeanUp: 30, MeanDown: 10, Start: 5, Horizon: 300})
		return in.FailureTimes()
	}()
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("FailureTimes not strictly increasing: %v", ts)
		}
	}
}

func stripLinks(evs []Event) []Event {
	out := append([]Event(nil), evs...)
	for i := range out {
		out[i].Link = nil
	}
	return out
}

// TestCrashRebootRecovery: a crashed middle router loses its volatile
// state and drops packets; on reboot with RequestOnStart it repopulates
// its table from a neighbor answer instead of waiting out the periodic
// timers, and end-to-end forwarding resumes.
func TestCrashRebootRecovery(t *testing.T) {
	n := netsim.NewNetwork(9)
	a := n.NewNode("a", nil)
	b := n.NewNode("b", nil)
	c := n.NewNode("c", nil)
	n.Connect(a, b, netsim.LinkConfig{Delay: 0.01})
	n.Connect(b, c, netsim.LinkConfig{Delay: 0.01})
	cfg := routing.Config{
		Profile:        compressedProfile(0),
		Jitter:         jitter.HalfSpread{Tp: 5},
		RequestOnStart: true,
		Seed:           3,
	}
	var agents []*routing.Agent
	for i, nd := range []*netsim.Node{a, b, c} {
		ag := routing.NewAgent(nd, cfg)
		ag.Start(0.2 + 0.4*float64(i))
		agents = append(agents, ag)
	}
	mid := agents[1]
	in := NewInjector(n, 1)
	in.CrashAgent(mid, 30)
	in.RebootAgent(mid, 40, 0.3)
	n.RunUntil(30.5)
	if !mid.Node().Failed() {
		t.Fatal("node not failed after CrashAgent fired")
	}
	if got := mid.Table().Len(); got != 0 {
		t.Fatalf("crashed agent still holds %d routes", got)
	}
	if len(mid.Node().FIB) != 0 {
		t.Fatal("crashed agent still holds FIB entries")
	}
	reqs := mid.Stats().RequestsSent
	// Reboot at 40; RequestOnStart pulls the neighbor tables immediately,
	// so recovery completes far faster than a 15 s route timeout.
	n.RunUntil(42)
	if mid.Node().Failed() {
		t.Fatal("node still failed after reboot")
	}
	if mid.Stats().RequestsSent != reqs+1 {
		t.Fatalf("reboot sent %d requests, want exactly one more than %d", mid.Stats().RequestsSent, reqs)
	}
	if r := mid.Table().Get(c.ID); r == nil || r.Metric >= 16 {
		t.Fatalf("mid router did not relearn c within 2 s of reboot: %v", r)
	}
	// End-to-end proof: a → c across the rebooted router.
	got := 0
	c.OnDeliver = map[netsim.Kind]func(*netsim.Packet){
		netsim.KindData: func(*netsim.Packet) { got++ },
	}
	a.Schedule(45, "probe", func() {
		n.Inject(n.NewPacket(netsim.KindData, a.ID, c.ID, 100))
	})
	n.RunUntil(50)
	if got != 1 {
		t.Fatal("forwarding across the rebooted router did not resume")
	}
	if cnt := n.Counters(); cnt.Drops[netsim.DropNodeDown] == 0 {
		t.Fatalf("no node-down drops recorded while crashed: %+v", cnt.Drops)
	}
	if len(in.Timeline()) != 2 {
		t.Fatalf("timeline %v, want crash+reboot", in.Timeline())
	}
}

// TestMonitorTracksOutage: the monitor sees the loss and recovery edges
// of a flapped destination, measures a plausible outage duration, never
// reports a resurrection on a correct hold-down implementation, and
// samples ages bounded by the update period.
func TestMonitorTracksOutage(t *testing.T) {
	n := netsim.NewNetwork(11)
	mk := func(name string) *netsim.Node { return n.NewNode(name, nil) }
	a, b, d := mk("a"), mk("b"), mk("d")
	n.Connect(a, b, netsim.LinkConfig{Delay: 0.01})
	bd := n.Connect(b, d, netsim.LinkConfig{Delay: 0.01})
	cfg := routing.Config{Profile: compressedProfile(10), Jitter: jitter.HalfSpread{Tp: 5}, Seed: 8}
	var agents []*routing.Agent
	for i, nd := range []*netsim.Node{a, b, d} {
		ag := routing.NewAgent(nd, cfg)
		ag.Start(0.1 + 0.3*float64(i))
		agents = append(agents, ag)
	}
	mon := NewMonitor([]netsim.NodeID{d.ID})
	mon.Observe(agents[0])
	in := NewInjector(n, 2)
	in.FailLink(bd, 40)
	in.RestoreLink(bd, 80)
	mon.ScheduleSampling(10, 3, 120)
	mon.SampleAtFailures(in.FailureTimes())
	n.RunUntil(120)

	outs := mon.Outages()
	if len(outs) != 1 {
		t.Fatalf("outages = %+v, want exactly one", outs)
	}
	o := outs[0]
	if o.Router != a.ID || o.Dest != d.ID {
		t.Fatalf("outage endpoints wrong: %+v", o)
	}
	// Lost after the failure plus the 15 s timeout; regained after the
	// restore.
	if o.LostAt < 40 || o.LostAt > 65 {
		t.Errorf("LostAt = %.2f, want within timeout of the failure at 40", o.LostAt)
	}
	if o.RegainedAt < 80 || o.RegainedAt > 110 {
		t.Errorf("RegainedAt = %.2f, want shortly after the restore at 80", o.RegainedAt)
	}
	if mon.Resurrections() != 0 {
		t.Errorf("resurrections = %d, want 0", mon.Resurrections())
	}
	ages := mon.Ages()
	if len(ages) == 0 {
		t.Fatal("no age samples")
	}
	for _, age := range ages {
		if age < 0 || age > 15 {
			t.Fatalf("implausible sampled age %.2f (period 5, timeout 15)", age)
		}
	}
	st := mon.StalenessAtFailures()
	if len(st) != 1 {
		t.Fatalf("staleness samples = %v, want one (route was live at the failure)", st)
	}
	if st[0] < 0 || st[0] > 6 {
		t.Errorf("staleness at failure = %.2f, want within one refresh period-ish", st[0])
	}
	if av := mon.Availability(); math.IsNaN(av) || av <= 0 || av > 1 {
		t.Errorf("availability = %v", av)
	}
	ic := mon.InitialConvergence()
	if len(ic) != 1 || ic[0] > 10 {
		t.Errorf("initial convergence = %v, want one early entry", ic)
	}
}
