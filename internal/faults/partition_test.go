package faults

import (
	"fmt"
	"reflect"
	"testing"

	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/routing"
)

// churnSnap captures everything a churned full-protocol run computes:
// converged tables, agent counters, network counters, and every
// age-of-information aggregate the monitor exposes.
type churnSnap struct {
	tables    [][]routeVal
	stats     []routing.Stats
	counters  netsim.Counters
	outages   []Outage
	ages      []float64
	staleness []float64
	resurrect int
	avail     float64
	initial   []float64
}

type routeVal struct {
	Dest    netsim.NodeID
	Metric  uint32
	NextHop netsim.NodeID
	Updated float64
}

// runChurnedAS runs a 4×4 two-level AS under link flaps on two backbone
// links (partition-crossing for k ≥ 2) and crash/reboot churn on two
// interior routers, partitioned into k logical processes (k == 0:
// unpartitioned), with the AoI monitor attached everywhere.
func runChurnedAS(backend des.Backend, k int) churnSnap {
	const numAS, perAS = 4, 4
	n := netsim.NewNetwork(23)
	n.Sim = des.NewBackend(backend)
	topo := n.BuildTwoLevelAS(netsim.TwoLevelASConfig{
		NumAS:        numAS,
		RoutersPerAS: perAS,
		IntraLink:    netsim.LinkConfig{Delay: 0.002, Bandwidth: 1.5e6, QueueCap: 16},
		InterLink:    netsim.LinkConfig{Delay: 0.012, Bandwidth: 1.5e6, QueueCap: 16},
		CPU:          &netsim.CPUConfig{Mode: netsim.CPUModeLegacy, InputQueueCap: 4},
		Chords:       1,
	})
	if k > 0 {
		n.Partition(k, netsim.OwnerByBlock(perAS, numAS, k))
	}

	cfg := routing.Config{
		Profile:        compressedProfile(10),
		Jitter:         jitter.HalfSpread{Tp: 5},
		Costs:          routing.DefaultCosts(),
		RequestOnStart: true,
		Seed:           13,
	}
	var agents []*routing.Agent
	idx := 0
	for a := 0; a < numAS; a++ {
		for i := 0; i < perAS; i++ {
			ag := routing.NewAgent(topo.Routers[a][i], cfg)
			ag.Start(0.2 + 0.31*float64(idx))
			agents = append(agents, ag)
			idx++
		}
	}

	// Fault processes: flaps on two backbone links, churn on two interior
	// routers — all scheduled through the keyed event layer.
	in := NewInjector(n, 5)
	in.FlapLink(linkBetween(topo.Gateways[0], topo.Gateways[1]),
		FlapConfig{MeanUp: 50, MeanDown: 15, Start: 25, Horizon: 170})
	in.FlapLink(linkBetween(topo.Gateways[2], topo.Gateways[3]),
		FlapConfig{MeanUp: 40, MeanDown: 12, Start: 25, Horizon: 170})
	in.ChurnAgent(agents[0*perAS+2], ChurnConfig{MeanUp: 70, MeanDown: 20, Start: 25, Horizon: 170, RebootOffset: 0.4})
	in.ChurnAgent(agents[3*perAS+1], ChurnConfig{MeanUp: 60, MeanDown: 25, Start: 25, Horizon: 170, RebootOffset: 0.4})

	mon := NewMonitor([]netsim.NodeID{topo.Routers[0][1].ID, topo.Routers[3][2].ID})
	for _, ag := range agents {
		mon.Observe(ag)
	}
	mon.ScheduleSampling(10, 7, 200)
	mon.SampleAtFailures(in.FailureTimes())

	// Uneven slices so fault events straddle RunUntil barriers.
	for _, h := range []float64{24.9, 60, 61, 200} {
		n.RunUntil(h)
	}

	snap := churnSnap{
		counters:  n.Counters(),
		outages:   mon.Outages(),
		ages:      mon.Ages(),
		staleness: mon.StalenessAtFailures(),
		resurrect: mon.Resurrections(),
		avail:     mon.Availability(),
		initial:   mon.InitialConvergence(),
	}
	for _, ag := range agents {
		snap.stats = append(snap.stats, ag.Stats())
		var tbl []routeVal
		for _, r := range ag.Table().Routes() {
			tbl = append(tbl, routeVal{Dest: r.Dest, Metric: r.Metric, NextHop: r.NextHop, Updated: r.Updated})
		}
		snap.tables = append(snap.tables, tbl)
	}
	return snap
}

// TestChurnPartitionDeterminism is the tentpole acceptance property: a
// run under link flaps and node churn — fault events firing inside
// parallel windows, crossing partition boundaries — is bit-identical
// for every partition count on both DES backends, including every
// age-of-information aggregate. Run under -race this also proves the
// fault layer adds no shared mutable state.
func TestChurnPartitionDeterminism(t *testing.T) {
	ref := runChurnedAS(des.BackendHeap, 0)
	if ref.counters.Drops[netsim.DropLinkDown] == 0 {
		t.Fatalf("no link-down drops; flaps are inert: %+v", ref.counters)
	}
	if ref.counters.Drops[netsim.DropNodeDown] == 0 {
		t.Fatalf("no node-down drops; churn is inert: %+v", ref.counters)
	}
	if len(ref.outages) == 0 || len(ref.ages) == 0 || len(ref.staleness) == 0 {
		t.Fatalf("degenerate monitor output: %d outages, %d ages, %d staleness",
			len(ref.outages), len(ref.ages), len(ref.staleness))
	}
	if ref.resurrect != 0 {
		t.Fatalf("hold-down violated: %d resurrections", ref.resurrect)
	}
	for _, backend := range []des.Backend{des.BackendHeap, des.BackendCalendar} {
		for _, k := range []int{1, 2, 4} {
			name := fmt.Sprintf("%v/k=%d", backend, k)
			got := runChurnedAS(backend, k)
			if !reflect.DeepEqual(got.counters, ref.counters) {
				t.Errorf("%s: network counters diverge:\n got %+v\nwant %+v", name, got.counters, ref.counters)
			}
			if !reflect.DeepEqual(got.stats, ref.stats) {
				t.Errorf("%s: agent stats diverge", name)
			}
			if !reflect.DeepEqual(got.tables, ref.tables) {
				t.Errorf("%s: routing tables diverge", name)
			}
			if !reflect.DeepEqual(got.outages, ref.outages) {
				t.Errorf("%s: outage records diverge:\n got %+v\nwant %+v", name, got.outages, ref.outages)
			}
			if !reflect.DeepEqual(got.ages, ref.ages) ||
				!reflect.DeepEqual(got.staleness, ref.staleness) ||
				!reflect.DeepEqual(got.initial, ref.initial) ||
				got.avail != ref.avail || got.resurrect != ref.resurrect {
				t.Errorf("%s: AoI aggregates diverge", name)
			}
		}
	}
}
