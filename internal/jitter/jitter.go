// Package jitter defines routing-timer jitter policies — the knob the
// paper's whole argument turns on. A Policy produces the delay a router
// waits between setting its routing timer and the timer's next expiration.
//
// The paper's §5.3 and §6 distill into concrete guidance, exposed here as
// Recommend: a random component Tr at least ten times the per-message
// processing cost Tc breaks up clusters quickly for a wide parameter range,
// and drawing the whole timer from U[0.5·Tp, 1.5·Tp] (Tr = Tp/2)
// eliminates synchronization outright.
package jitter

import (
	"fmt"

	"routesync/internal/rng"
)

// Policy yields successive routing-timer delays for a router. Policies may
// be stateful per router (see PerRouterFixed) but must be deterministic
// given the rng stream.
type Policy interface {
	// Delay returns the next timer interval in seconds for router id.
	Delay(r *rng.Source, id int) float64
	// Mean returns the expected timer interval (used for round windows).
	Mean() float64
	fmt.Stringer
}

// None is a deterministic timer with no random component: every interval
// is exactly Tp. This is the pathological configuration the paper warns
// about — synchronization, once formed, is permanent.
type None struct {
	Tp float64
}

// Delay implements Policy.
func (p None) Delay(*rng.Source, int) float64 { return p.Tp }

// Mean implements Policy.
func (p None) Mean() float64 { return p.Tp }

func (p None) String() string { return fmt.Sprintf("none(Tp=%g)", p.Tp) }

// Uniform draws each interval from U[Tp−Tr, Tp+Tr] — the paper's Periodic
// Messages model timer (§3 step 3).
type Uniform struct {
	Tp float64 // mean period
	Tr float64 // half-width of the random component
}

// Delay implements Policy.
func (p Uniform) Delay(r *rng.Source, _ int) float64 {
	return r.Uniform(p.Tp-p.Tr, p.Tp+p.Tr)
}

// Mean implements Policy.
func (p Uniform) Mean() float64 { return p.Tp }

func (p Uniform) String() string { return fmt.Sprintf("uniform(Tp=%g,Tr=%g)", p.Tp, p.Tr) }

// HalfSpread draws each interval from U[0.5·Tp, 1.5·Tp], the paper's §6
// recommended "simple way to avoid synchronized routing messages". It is
// exactly Uniform with Tr = Tp/2 and exists as its own type so call sites
// read like the paper.
type HalfSpread struct {
	Tp float64
}

// Delay implements Policy.
func (p HalfSpread) Delay(r *rng.Source, _ int) float64 {
	return r.Uniform(0.5*p.Tp, 1.5*p.Tp)
}

// Mean implements Policy.
func (p HalfSpread) Mean() float64 { return p.Tp }

func (p HalfSpread) String() string { return fmt.Sprintf("halfspread(Tp=%g)", p.Tp) }

// PerRouterFixed gives router i the deterministic period Tp + offset_i,
// with offsets drawn once (uniformly from [−Spread, +Spread]) from a seed.
// This is the "set the routing update interval at each router to a
// different random value" alternative discussed in the paper's §6 — it
// avoids lock-step synchronization but provides no mechanism to break up
// clusters formed by triggered updates, which the tests demonstrate.
type PerRouterFixed struct {
	Tp     float64
	Spread float64
	offset map[int]float64
	src    *rng.Source
}

// NewPerRouterFixed creates the policy; offsets are drawn lazily per
// router id from the given seed so the mapping is stable.
func NewPerRouterFixed(tp, spread float64, seed int64) *PerRouterFixed {
	return &PerRouterFixed{Tp: tp, Spread: spread, offset: make(map[int]float64), src: rng.New(seed)}
}

// Delay implements Policy.
func (p *PerRouterFixed) Delay(_ *rng.Source, id int) float64 {
	off, ok := p.offset[id]
	if !ok {
		off = p.src.Uniform(-p.Spread, p.Spread)
		p.offset[id] = off
	}
	return p.Tp + off
}

// Mean implements Policy.
func (p *PerRouterFixed) Mean() float64 { return p.Tp }

func (p *PerRouterFixed) String() string {
	return fmt.Sprintf("perrouter(Tp=%g,spread=%g)", p.Tp, p.Spread)
}

// Mixed assigns different policies to different routers — heterogeneous
// deployments (e.g. RIP's 30-second timers sharing a LAN with IGRP's
// 90-second timers). Routers without an entry use Fallback.
type Mixed struct {
	Policies map[int]Policy
	Fallback Policy
}

// Delay implements Policy.
func (m Mixed) Delay(r *rng.Source, id int) float64 {
	if p, ok := m.Policies[id]; ok {
		return p.Delay(r, id)
	}
	return m.Fallback.Delay(r, id)
}

// Mean implements Policy; it reports the fallback's mean, which callers
// should treat as nominal only (per-router means differ by design).
func (m Mixed) Mean() float64 { return m.Fallback.Mean() }

func (m Mixed) String() string {
	return fmt.Sprintf("mixed(%d overrides, fallback %s)", len(m.Policies), m.Fallback)
}

// Recommendation is the output of Recommend: how much randomness a
// deployment needs.
type Recommendation struct {
	// MinTr is the smallest random component (seconds) expected to break
	// up synchronization promptly: 10 × Tc (paper §5.3: "for a wide range
	// of parameters, choosing Tr at least ten times greater than Tc
	// ensures that clusters of routing messages will be quickly broken
	// up").
	MinTr float64
	// SafeTr eliminates synchronization for any parameters: Tp/2, i.e.
	// the timer is drawn from U[0.5·Tp, 1.5·Tp] (paper §5.3/§6).
	SafeTr float64
	// Policy is the ready-to-use safe policy.
	Policy Policy
}

// Recommend returns the paper's jitter guidance for a protocol with mean
// period tp and per-message processing cost tc (both seconds). It panics
// for non-positive tp or negative tc.
//
// Worked example (paper §1): Xerox PARC's cisco routers took ~1 ms per
// route × 300 routes = 0.3 s to process an update, so MinTr = 3 s — hence
// the paper's statement that "the routers would have to add at least a
// second of randomness" is comfortably inside this bound.
func Recommend(tp, tc float64) Recommendation {
	if tp <= 0 {
		panic("jitter: Recommend needs tp > 0")
	}
	if tc < 0 {
		panic("jitter: Recommend needs tc >= 0")
	}
	return Recommendation{
		MinTr:  10 * tc,
		SafeTr: tp / 2,
		Policy: HalfSpread{Tp: tp},
	}
}
