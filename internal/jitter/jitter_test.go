package jitter

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"routesync/internal/rng"
)

func TestNone(t *testing.T) {
	p := None{Tp: 121}
	r := rng.New(1)
	for i := 0; i < 10; i++ {
		if d := p.Delay(r, i); d != 121 {
			t.Fatalf("None delay = %v", d)
		}
	}
	if p.Mean() != 121 {
		t.Fatalf("Mean = %v", p.Mean())
	}
	if !strings.Contains(p.String(), "none") {
		t.Fatalf("String = %q", p.String())
	}
}

func TestUniformRange(t *testing.T) {
	p := Uniform{Tp: 121, Tr: 0.11}
	r := rng.New(2)
	var min, max = math.Inf(1), math.Inf(-1)
	for i := 0; i < 20000; i++ {
		d := p.Delay(r, 0)
		if d < 120.89 || d >= 121.11 {
			t.Fatalf("delay %v outside [Tp-Tr, Tp+Tr)", d)
		}
		min, max = math.Min(min, d), math.Max(max, d)
	}
	if min > 120.90 || max < 121.10 {
		t.Fatalf("draws do not cover the window: [%v, %v]", min, max)
	}
	if p.Mean() != 121 {
		t.Fatalf("Mean = %v", p.Mean())
	}
}

func TestUniformMeanEmpirical(t *testing.T) {
	p := Uniform{Tp: 30, Tr: 15}
	r := rng.New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += p.Delay(r, 0)
	}
	if got := sum / n; math.Abs(got-30) > 0.1 {
		t.Fatalf("empirical mean %v, want ~30", got)
	}
}

func TestHalfSpreadMatchesPaper(t *testing.T) {
	// §6: "setting the timer each round to a time from the uniform
	// distribution on [0.5·Tp, 1.5·Tp]".
	p := HalfSpread{Tp: 90}
	r := rng.New(4)
	for i := 0; i < 20000; i++ {
		d := p.Delay(r, 0)
		if d < 45 || d >= 135 {
			t.Fatalf("HalfSpread delay %v outside [45, 135)", d)
		}
	}
	if p.Mean() != 90 {
		t.Fatalf("Mean = %v", p.Mean())
	}
}

func TestHalfSpreadEquivalentToUniformTpHalf(t *testing.T) {
	// HalfSpread{Tp} and Uniform{Tp, Tp/2} draw identically from the same
	// stream.
	h := HalfSpread{Tp: 121}
	u := Uniform{Tp: 121, Tr: 60.5}
	ra, rb := rng.New(5), rng.New(5)
	for i := 0; i < 1000; i++ {
		if h.Delay(ra, 0) != u.Delay(rb, 0) {
			t.Fatal("HalfSpread diverged from Uniform{Tp, Tp/2}")
		}
	}
}

func TestPerRouterFixedStableOffsets(t *testing.T) {
	p := NewPerRouterFixed(121, 5, 7)
	r := rng.New(1)
	d3a := p.Delay(r, 3)
	d5 := p.Delay(r, 5)
	d3b := p.Delay(r, 3)
	if d3a != d3b {
		t.Fatalf("router 3 delay changed: %v vs %v", d3a, d3b)
	}
	if d3a == d5 {
		t.Fatal("distinct routers got identical offsets (possible but vanishingly unlikely)")
	}
	if d3a < 116 || d3a >= 126 {
		t.Fatalf("offset outside spread: %v", d3a)
	}
	if p.Mean() != 121 {
		t.Fatalf("Mean = %v", p.Mean())
	}
}

func TestPerRouterFixedDeterministicAcrossInstances(t *testing.T) {
	a := NewPerRouterFixed(121, 5, 7)
	b := NewPerRouterFixed(121, 5, 7)
	r := rng.New(1)
	for id := 0; id < 10; id++ {
		if a.Delay(r, id) != b.Delay(r, id) {
			t.Fatalf("instances disagree for router %d", id)
		}
	}
}

func TestRecommend(t *testing.T) {
	// The paper's Xerox PARC worked example: 300 routes × 1 ms = 0.3 s
	// processing, so at least ~1 s (here 10·Tc = 3 s) of randomness.
	rec := Recommend(90, 0.3)
	if rec.MinTr != 3 {
		t.Fatalf("MinTr = %v, want 3", rec.MinTr)
	}
	if rec.SafeTr != 45 {
		t.Fatalf("SafeTr = %v, want 45", rec.SafeTr)
	}
	hs, ok := rec.Policy.(HalfSpread)
	if !ok || hs.Tp != 90 {
		t.Fatalf("Policy = %v", rec.Policy)
	}
	// The paper says "at least a second" — our 10·Tc bound must satisfy it.
	if rec.MinTr < 1 {
		t.Fatalf("MinTr %v contradicts the paper's >= 1 s statement", rec.MinTr)
	}
}

func TestRecommendPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Recommend(0, 0.1) },
		func() { Recommend(90, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Recommend input did not panic")
				}
			}()
			f()
		}()
	}
}

// TestPolicyMeansProperty: empirical mean of any policy tracks Mean().
func TestPolicyMeansProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		tp := r.Uniform(10, 200)
		tr := r.Uniform(0, tp/2)
		policies := []Policy{
			None{Tp: tp},
			Uniform{Tp: tp, Tr: tr},
			HalfSpread{Tp: tp},
		}
		for _, p := range policies {
			var sum float64
			const n = 20000
			for i := 0; i < n; i++ {
				sum += p.Delay(r, 0)
			}
			if math.Abs(sum/n-p.Mean())/p.Mean() > 0.02 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	for _, p := range []Policy{
		Uniform{Tp: 121, Tr: 0.1},
		HalfSpread{Tp: 90},
		NewPerRouterFixed(30, 2, 1),
	} {
		if p.String() == "" {
			t.Errorf("%T has empty String()", p)
		}
	}
}

func TestMixedDispatch(t *testing.T) {
	m := Mixed{
		Policies: map[int]Policy{3: None{Tp: 242}, 7: None{Tp: 60}},
		Fallback: None{Tp: 121},
	}
	r := rng.New(1)
	if d := m.Delay(r, 3); d != 242 {
		t.Fatalf("override 3 = %v", d)
	}
	if d := m.Delay(r, 7); d != 60 {
		t.Fatalf("override 7 = %v", d)
	}
	if d := m.Delay(r, 0); d != 121 {
		t.Fatalf("fallback = %v", d)
	}
	if m.Mean() != 121 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if !strings.Contains(m.String(), "2 overrides") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestMixedWithJitteredPolicies(t *testing.T) {
	m := Mixed{
		Policies: map[int]Policy{1: Uniform{Tp: 242, Tr: 1}},
		Fallback: Uniform{Tp: 121, Tr: 1},
	}
	r := rng.New(2)
	for i := 0; i < 1000; i++ {
		if d := m.Delay(r, 1); d < 241 || d >= 243 {
			t.Fatalf("override out of window: %v", d)
		}
		if d := m.Delay(r, 2); d < 120 || d >= 122 {
			t.Fatalf("fallback out of window: %v", d)
		}
	}
}
