package linkstate

import (
	"fmt"
	"sort"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/protocol"
)

// Config assembles a link-state agent.
type Config struct {
	// RefreshPeriod is the LSA re-origination interval Tp in seconds
	// (OSPF: 1800; the experiments use shorter periods to keep
	// simulations tractable — the dynamics scale with Tp).
	RefreshPeriod float64
	// Jitter yields refresh intervals; nil means the deterministic
	// period.
	Jitter jitter.Policy
	// PrepareCost / ProcessCost are seconds of CPU to originate and to
	// handle one LSA (flooding work).
	PrepareCost float64
	ProcessCost float64
	// MaxAgeFactor: LSAs unrefreshed for MaxAgeFactor·RefreshPeriod are
	// withdrawn from the database (OSPF MaxAge); zero means 4.
	MaxAgeFactor float64
	// Seed drives the agent's jitter stream.
	Seed int64
}

// Stats counts agent activity.
type Stats struct {
	Originated uint64
	Received   uint64
	Flooded    uint64
	Malformed  uint64
	SPFRuns    uint64
	AgedOut    uint64
}

type lsdbEntry struct {
	lsa     LSA
	updated float64
}

// spfQE is one BFS queue entry: a node and the first hop that reaches it.
type spfQE struct {
	id    netsim.NodeID
	first netsim.NodeID
}

// lsAux caches the fields of a received LSA's header decoded at
// receive time, so the CPU-completion path needn't re-parse.
type lsAux struct {
	origin netsim.NodeID
	seq    uint32
}

// Agent is one router's link-state process: a link-state protocol
// strategy over the shared protocol kernel, which owns the timer, CPU
// and crash/restart machinery.
type Agent struct {
	k   *protocol.Kernel[lsAux]
	cfg Config

	lsdb  map[netsim.NodeID]lsdbEntry
	seq   uint32
	stats Stats

	// nbrCache holds the sorted adjacency list, valid while nbrVer
	// matches the network topology version. Callers must not mutate it;
	// rebuilds allocate a fresh slice because the previous one may be
	// retained inside LSAs already installed in LSDBs.
	nbrCache []netsim.NodeID
	nbrVer   uint64
	nbrOK    bool

	// fibOK/fibVer record whether the FIB reflects the current LSDB and
	// topology; a refresh LSA whose content is unchanged skips the SPF
	// run entirely when they are current.
	fibOK  bool
	fibVer uint64

	// SPF scratch, reused across runs.
	adjRows  [][]netsim.NodeID
	visited  []bool
	spfQueue []spfQE

	// OnSend, if set, observes every LSA origination (for cluster
	// detection in experiments).
	OnSend func(t float64)
}

// NewAgent creates an agent on node. Call Start to begin originating.
func NewAgent(node *netsim.Node, cfg Config) *Agent {
	if cfg.RefreshPeriod <= 0 {
		panic("linkstate: refresh period must be positive")
	}
	if cfg.PrepareCost < 0 || cfg.ProcessCost < 0 {
		panic("linkstate: negative costs")
	}
	if cfg.Jitter == nil {
		cfg.Jitter = jitter.None{Tp: cfg.RefreshPeriod}
	}
	if cfg.MaxAgeFactor == 0 {
		cfg.MaxAgeFactor = 4
	}
	a := &Agent{
		cfg:  cfg,
		lsdb: make(map[netsim.NodeID]lsdbEntry),
	}
	a.k = protocol.New(protocol.Config{
		Name:       "linkstate",
		Node:       node,
		Seed:       cfg.Seed ^ int64(node.ID)*0x5DEECE66D,
		Jitter:     cfg.Jitter,
		TimerLabel: fmt.Sprintf("lsa-refresh(%s)", node.Name),
		RearmLabel: "lsa-rearm-wait",
		SweepLabel: "lsa-sweep",
		SweepEvery: cfg.RefreshPeriod,
	}, protocol.Hooks[lsAux]{
		Fire:    a.originate,
		Receive: a.receive,
		Process: a.process,
		Sweep:   a.sweep,
		// A power failure loses the in-memory database and the derived
		// caches; the sequence number survives (real implementations
		// persist or recover it so post-reboot LSAs win over stale
		// copies still flooding around).
		ResetVolatile: func() {
			for origin := range a.lsdb {
				delete(a.lsdb, origin)
			}
			a.nbrOK = false
			a.fibOK = false
		},
	})
	return a
}

// Node returns the agent's node.
func (a *Agent) Node() *netsim.Node { return a.k.Node() }

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats { return a.stats }

// Stop halts origination and processing; the LSDB is left for
// inspection. See the kernel's Stop.
func (a *Agent) Stop() { a.k.Stop() }

// Crash models a power failure mid-run: the LSDB, neighbor cache and
// FIB are lost and the node is marked failed until Restart; see the
// kernel's Crash.
func (a *Agent) Crash() { a.k.Crash() }

// Restart reboots a stopped agent and arms the first refresh
// startOffset seconds from now; see the kernel's Restart. The agent's
// first origination floods a fresh LSA whose sequence number continues
// from the previous life, so neighbors adopt it over stale copies.
func (a *Agent) Restart(startOffset float64) {
	a.k.Restart()
	a.Start(startOffset)
}

// neighbors lists the adjacent node ids over all attached media, sorted.
// The result is cached against the network topology version — refresh
// originations on a static topology reuse it — and must not be mutated:
// it is retained inside LSAs installed in LSDBs across the network.
func (a *Agent) neighbors() []netsim.NodeID {
	node := a.k.Node()
	if ver := node.Net().TopologyVersion(); !a.nbrOK || a.nbrVer != ver {
		seen := map[netsim.NodeID]bool{}
		for _, m := range node.Media() {
			switch t := m.(type) {
			case *netsim.Link:
				if !t.Down() {
					seen[t.Peer(node).ID] = true
				}
			case *netsim.LAN:
				for _, member := range t.Members() {
					if member != node {
						seen[member.ID] = true
					}
				}
			}
		}
		out := make([]netsim.NodeID, 0, len(seen))
		for id := range seen {
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		a.nbrCache, a.nbrVer, a.nbrOK = out, ver, true
	}
	return a.nbrCache
}

// fibCurrent reports whether the FIB still reflects the LSDB and the
// live topology.
func (a *Agent) fibCurrent() bool {
	return a.fibOK && a.fibVer == a.k.Node().Net().TopologyVersion()
}

// idsEqual compares two sorted adjacency lists.
func idsEqual(a, b []netsim.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Start arms the first refresh to fire startOffset seconds from now.
func (a *Agent) Start(startOffset float64) {
	a.k.StartTimer(startOffset)
	a.k.ScheduleSweep()
}

// originate builds, installs and floods the router's own LSA, then
// re-arms the refresh timer after the CPU drains — the paper's coupled
// reset discipline carried over to link-state refreshes. A refresh whose
// adjacency is unchanged leaves the FIB alone: the SPF input is
// identical, so the output would be too.
func (a *Agent) originate() {
	node := a.k.Node()
	a.seq++
	nbrs := a.neighbors()
	lsa := LSA{Origin: node.ID, Seq: a.seq, Neighbors: nbrs}
	now := node.Now()
	prev, had := a.lsdb[node.ID]
	a.lsdb[node.ID] = lsdbEntry{lsa: lsa, updated: now}
	a.flood(lsa, nil)
	if !had || !idsEqual(nbrs, prev.lsa.Neighbors) || !a.fibCurrent() {
		a.recompute()
	}
	a.stats.Originated++
	if a.OnSend != nil {
		a.OnSend(now)
	}
	a.k.FinishSend(a.cfg.PrepareCost, true)
}

// flood encodes an LSA into the kernel's scratch buffer and transmits it
// on every medium.
func (a *Agent) flood(lsa LSA, except netsim.Medium) {
	payload, err := EncodeInto(a.k.Enc[:0], lsa)
	if err != nil {
		panic(err) // own adjacency lists are bounded by the topology
	}
	a.k.Enc = payload
	a.floodRaw(payload, except)
}

// floodRaw transmits an already-encoded LSA on every medium except the
// one it arrived on. Re-flooding reuses the incoming payload bytes —
// Encode is canonical, so re-encoding the decoded LSA would reproduce
// them anyway. SetPayload copies them into each outgoing packet's own
// arena, so the source (scratch buffer or an about-to-be-released
// incoming packet) may be reused immediately.
func (a *Agent) floodRaw(payload []byte, except netsim.Medium) {
	node := a.k.Node()
	for i, nm := 0, node.NumMedia(); i < nm; i++ {
		m := node.MediumAt(i)
		if m == except {
			continue
		}
		a.k.Send(m, netsim.Broadcast, payload)
		a.stats.Flooded++
	}
}

// receive handles an incoming LSA: CPU cost, dedup by sequence number,
// store + re-flood + SPF when new. Only the fixed-size header is decoded
// here; the duplicate path — the common case on a broadcast segment —
// never touches the neighbor list. netsim transfers packet ownership
// here; every path ends in ReleasePacket — immediately for malformed
// frames and synchronous processing, or from the kernel's pending FIFO
// once the CPU finishes for queued work.
func (a *Agent) receive(pkt *netsim.Packet, via netsim.Medium) {
	origin, seq, err := PeekHeader(pkt.Payload)
	if err != nil {
		a.stats.Malformed++
		a.k.Node().ReleasePacket(pkt)
		return
	}
	a.stats.Received++
	a.k.Process(pkt, via, lsAux{origin: origin, seq: seq}, a.cfg.ProcessCost)
}

// process is the kernel's processing completion: integrate the LSA
// using the header fields cached at receive time.
func (a *Agent) process(pkt *netsim.Packet, via netsim.Medium, aux lsAux) {
	a.integrate(pkt.Payload, aux.origin, aux.seq, via)
}

// PendingPackets returns the number of received LSAs the agent is
// holding while their processing cost drains through the CPU model —
// packets the agent owns but has not released yet. Leak audits add it to
// netsim's parked counts.
func (a *Agent) PendingPackets() int { return a.k.PendingPackets() }

func (a *Agent) integrate(payload []byte, origin netsim.NodeID, seq uint32, via netsim.Medium) {
	if a.k.Stopped() {
		return
	}
	node := a.k.Node()
	if origin == node.ID {
		return // our own LSA echoed back
	}
	now := node.Now()
	cur, ok := a.lsdb[origin]
	if ok && seq <= cur.lsa.Seq {
		// Stale or duplicate: refresh the age on an exact duplicate (the
		// origin is alive), never re-flood.
		if seq == cur.lsa.Seq {
			cur.updated = now
			a.lsdb[origin] = cur
		}
		return
	}
	if ok && WireNeighborsEqual(payload, cur.lsa.Neighbors) {
		// Refresh: a newer sequence number over unchanged content. The
		// SPF input is identical, so the routes are too — keep the
		// stored neighbor list, bump seq and age, and re-flood.
		cur.lsa.Seq = seq
		cur.updated = now
		a.lsdb[origin] = cur
		a.floodRaw(payload, via)
		if !a.fibCurrent() {
			a.recompute()
		}
		return
	}
	lsa, err := Decode(payload)
	if err != nil {
		a.stats.Malformed++ // unreachable: PeekHeader validated the frame
		return
	}
	a.lsdb[origin] = lsdbEntry{lsa: lsa, updated: now}
	a.floodRaw(payload, via)
	a.recompute()
}

// LSDB returns the database origins currently held, sorted.
func (a *Agent) LSDB() []LSA {
	out := make([]LSA, 0, len(a.lsdb))
	for _, e := range a.lsdb {
		out = append(out, e.lsa)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// Distance returns the computed hop distance to dest, or -1 if
// unreachable in the current LSDB.
func (a *Agent) Distance(dest netsim.NodeID) int {
	dist := a.spf()
	d, ok := dist[dest]
	if !ok {
		return -1
	}
	return d
}

// spf runs BFS over the LSDB adjacency (uniform link cost). Links are
// used only when both endpoints agree (bidirectional check, as in OSPF).
func (a *Agent) spf() map[netsim.NodeID]int {
	self := a.k.Node().ID
	adj := func(id netsim.NodeID) []netsim.NodeID {
		if id == self {
			return a.neighbors()
		}
		if e, ok := a.lsdb[id]; ok {
			return e.lsa.Neighbors
		}
		return nil
	}
	claims := func(id, nb netsim.NodeID) bool {
		for _, x := range adj(id) {
			if x == nb {
				return true
			}
		}
		return false
	}
	dist := map[netsim.NodeID]int{self: 0}
	queue := []netsim.NodeID{self}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj(cur) {
			if _, seen := dist[nb]; seen {
				continue
			}
			if !claims(nb, cur) {
				continue // one-sided adjacency: not yet confirmed
			}
			dist[nb] = dist[cur] + 1
			queue = append(queue, nb)
		}
	}
	return dist
}

// recompute reruns SPF and programs the node FIB with first hops. Like
// spf, an adjacency is used only when both endpoints advertise it (the
// OSPF bidirectional check), so stale one-sided claims — e.g. a live
// neighbor still listing a dead router whose own LSA has aged out —
// never install routes.
//
// The BFS runs over slice-indexed scratch state reused across runs (node
// ids are dense in [0, NumNodes)), not maps: SPF used to dominate the
// link-state experiment's profile through map traffic alone. LSAs naming
// ids outside the network are ignored, as the bidirectional check would
// reject them anyway.
func (a *Agent) recompute() {
	a.stats.SPFRuns++
	node := a.k.Node()
	net := node.Net()
	n := net.NumNodes()
	if cap(a.adjRows) < n {
		a.adjRows = make([][]netsim.NodeID, n)
		a.visited = make([]bool, n)
	}
	adj := a.adjRows[:n]
	visited := a.visited[:n]
	for i := range adj {
		adj[i] = nil
		visited[i] = false
	}
	for origin, e := range a.lsdb {
		if int(origin) >= 0 && int(origin) < n {
			adj[origin] = e.lsa.Neighbors
		}
	}
	// The router's own row comes from the live topology, not its stored
	// LSA, so local changes take effect before the next origination.
	adj[node.ID] = a.neighbors()
	claims := func(id, nb netsim.NodeID) bool {
		for _, x := range adj[id] {
			if x == nb {
				return true
			}
		}
		return false
	}
	inRange := func(id netsim.NodeID) bool { return int(id) >= 0 && int(id) < n }

	queue := a.spfQueue[:0]
	visited[node.ID] = true
	for _, nb := range adj[node.ID] {
		if !inRange(nb) || !claims(nb, node.ID) {
			continue
		}
		visited[nb] = true
		queue = append(queue, spfQE{id: nb, first: nb})
		a.installRoute(nb, nb)
	}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for _, nb := range adj[cur.id] {
			if !inRange(nb) || visited[nb] || !claims(nb, cur.id) {
				continue
			}
			visited[nb] = true
			a.installRoute(nb, cur.first)
			queue = append(queue, spfQE{id: nb, first: cur.first})
		}
	}
	a.spfQueue = queue[:0]
	// Withdraw FIB entries that SPF no longer reaches.
	for dest := range node.FIB {
		if !inRange(dest) || !visited[dest] {
			delete(node.FIB, dest)
		}
	}
	a.fibOK = true
	a.fibVer = net.TopologyVersion()
}

// installRoute programs dest via the medium that reaches firstHop.
func (a *Agent) installRoute(dest, firstHop netsim.NodeID) {
	node := a.k.Node()
	for i, nm := 0, node.NumMedia(); i < nm; i++ {
		m := node.MediumAt(i)
		switch t := m.(type) {
		case *netsim.Link:
			if !t.Down() && t.Peer(node).ID == firstHop {
				node.SetRoute(dest, m, firstHop)
				return
			}
		case *netsim.LAN:
			for j, nj := 0, t.NumMembers(); j < nj; j++ {
				if t.Member(j).ID == firstHop {
					node.SetRoute(dest, m, firstHop)
					return
				}
			}
		}
	}
}

// sweep ages the database: entries unrefreshed past MaxAge are
// withdrawn and routes recomputed. The kernel schedules it every
// RefreshPeriod.
func (a *Agent) sweep() {
	node := a.k.Node()
	now := node.Now()
	maxAge := a.cfg.MaxAgeFactor * a.cfg.RefreshPeriod
	changed := false
	for origin, e := range a.lsdb {
		if origin == node.ID {
			continue
		}
		if now-e.updated > maxAge {
			delete(a.lsdb, origin)
			delete(node.FIB, origin)
			a.stats.AgedOut++
			changed = true
		}
	}
	if changed {
		a.recompute() // also withdraws FIB entries SPF no longer reaches
	}
}
