package linkstate

import (
	"fmt"
	"sort"

	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/rng"
)

// Config assembles a link-state agent.
type Config struct {
	// RefreshPeriod is the LSA re-origination interval Tp in seconds
	// (OSPF: 1800; the experiments use shorter periods to keep
	// simulations tractable — the dynamics scale with Tp).
	RefreshPeriod float64
	// Jitter yields refresh intervals; nil means the deterministic
	// period.
	Jitter jitter.Policy
	// PrepareCost / ProcessCost are seconds of CPU to originate and to
	// handle one LSA (flooding work).
	PrepareCost float64
	ProcessCost float64
	// MaxAgeFactor: LSAs unrefreshed for MaxAgeFactor·RefreshPeriod are
	// withdrawn from the database (OSPF MaxAge); zero means 4.
	MaxAgeFactor float64
	// Seed drives the agent's jitter stream.
	Seed int64
}

// Stats counts agent activity.
type Stats struct {
	Originated uint64
	Received   uint64
	Flooded    uint64
	Malformed  uint64
	SPFRuns    uint64
	AgedOut    uint64
}

type lsdbEntry struct {
	lsa     LSA
	updated float64
}

// Agent is one router's link-state process.
type Agent struct {
	node *netsim.Node
	cfg  Config
	r    *rng.Source

	lsdb    map[netsim.NodeID]lsdbEntry
	seq     uint32
	timerEv *des.Event
	stats   Stats
	stopped bool

	// OnSend, if set, observes every LSA origination (for cluster
	// detection in experiments).
	OnSend func(t float64)
}

// NewAgent creates an agent on node. Call Start to begin originating.
func NewAgent(node *netsim.Node, cfg Config) *Agent {
	if cfg.RefreshPeriod <= 0 {
		panic("linkstate: refresh period must be positive")
	}
	if cfg.PrepareCost < 0 || cfg.ProcessCost < 0 {
		panic("linkstate: negative costs")
	}
	if cfg.Jitter == nil {
		cfg.Jitter = jitter.None{Tp: cfg.RefreshPeriod}
	}
	if cfg.MaxAgeFactor == 0 {
		cfg.MaxAgeFactor = 4
	}
	a := &Agent{
		node: node,
		cfg:  cfg,
		r:    rng.New(cfg.Seed ^ int64(node.ID)*0x5DEECE66D),
		lsdb: make(map[netsim.NodeID]lsdbEntry),
	}
	node.OnRouting = a.receive
	return a
}

// Node returns the agent's node.
func (a *Agent) Node() *netsim.Node { return a.node }

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats { return a.stats }

// Stop halts origination and processing; the LSDB is left for inspection.
func (a *Agent) Stop() {
	a.stopped = true
	if a.timerEv != nil {
		a.node.Net().Sim.Cancel(a.timerEv)
		a.timerEv = nil
	}
	a.node.OnRouting = nil
}

// neighbors lists the adjacent node ids over all attached media, sorted.
func (a *Agent) neighbors() []netsim.NodeID {
	seen := map[netsim.NodeID]bool{}
	for _, m := range a.node.Media() {
		switch t := m.(type) {
		case *netsim.Link:
			if !t.Down() {
				seen[t.Peer(a.node).ID] = true
			}
		case *netsim.LAN:
			for _, member := range t.Members() {
				if member != a.node {
					seen[member.ID] = true
				}
			}
		}
	}
	out := make([]netsim.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Start arms the first refresh to fire startOffset seconds from now.
func (a *Agent) Start(startOffset float64) {
	if startOffset < 0 {
		panic("linkstate: negative start offset")
	}
	sim := a.node.Net().Sim
	a.timerEv = sim.Schedule(sim.Now()+startOffset,
		fmt.Sprintf("lsa-refresh(%s)", a.node.Name), a.onTimer)
	a.scheduleSweep()
}

func (a *Agent) onTimer() {
	if a.stopped {
		return
	}
	a.originate()
}

// originate builds, installs and floods the router's own LSA, then
// re-arms the refresh timer after the CPU drains — the paper's coupled
// reset discipline carried over to link-state refreshes.
func (a *Agent) originate() {
	a.seq++
	lsa := LSA{Origin: a.node.ID, Seq: a.seq, Neighbors: a.neighbors()}
	now := a.node.Net().Sim.Now()
	a.lsdb[a.node.ID] = lsdbEntry{lsa: lsa, updated: now}
	a.flood(lsa, nil)
	a.recompute()
	a.stats.Originated++
	if a.OnSend != nil {
		a.OnSend(now)
	}
	after := a.rearmWhenIdle
	if a.node.CPU != nil && a.cfg.PrepareCost > 0 {
		a.node.CPU.OccupyThen(a.cfg.PrepareCost, after)
		return
	}
	after()
}

func (a *Agent) rearmWhenIdle() {
	if a.stopped {
		return
	}
	sim := a.node.Net().Sim
	if a.node.CPU != nil && a.node.CPU.Busy() {
		sim.Schedule(a.node.CPU.BusyUntil(), "lsa-rearm-wait", a.rearmWhenIdle)
		return
	}
	if a.timerEv != nil {
		sim.Cancel(a.timerEv)
	}
	delay := a.cfg.Jitter.Delay(a.r, int(a.node.ID))
	a.timerEv = sim.Schedule(sim.Now()+delay,
		fmt.Sprintf("lsa-refresh(%s)", a.node.Name), a.onTimer)
}

// flood transmits an LSA on every medium except the one it arrived on.
func (a *Agent) flood(lsa LSA, except netsim.Medium) {
	payload, err := Encode(lsa)
	if err != nil {
		panic(err) // own adjacency lists are bounded by the topology
	}
	net := a.node.Net()
	for _, m := range a.node.Media() {
		if m == except {
			continue
		}
		pkt := net.NewPacket(netsim.KindRouting, a.node.ID, netsim.Broadcast, 28+len(payload))
		pkt.Payload = payload
		a.node.SendOn(m, netsim.Broadcast, pkt)
		a.stats.Flooded++
	}
}

// receive handles an incoming LSA: CPU cost, dedup by sequence number,
// store + re-flood + SPF when new.
func (a *Agent) receive(pkt *netsim.Packet, via netsim.Medium) {
	lsa, err := Decode(pkt.Payload)
	if err != nil {
		a.stats.Malformed++
		return
	}
	a.stats.Received++
	work := func() { a.integrate(lsa, via) }
	if a.node.CPU != nil && a.cfg.ProcessCost > 0 {
		a.node.CPU.OccupyThen(a.cfg.ProcessCost, work)
		return
	}
	work()
}

func (a *Agent) integrate(lsa LSA, via netsim.Medium) {
	if a.stopped {
		return
	}
	if lsa.Origin == a.node.ID {
		return // our own LSA echoed back
	}
	now := a.node.Net().Sim.Now()
	cur, ok := a.lsdb[lsa.Origin]
	if ok && lsa.Seq <= cur.lsa.Seq {
		// Stale or duplicate: refresh the age on an exact duplicate (the
		// origin is alive), never re-flood.
		if lsa.Seq == cur.lsa.Seq {
			cur.updated = now
			a.lsdb[lsa.Origin] = cur
		}
		return
	}
	a.lsdb[lsa.Origin] = lsdbEntry{lsa: lsa, updated: now}
	a.flood(lsa, via)
	a.recompute()
}

// LSDB returns the database origins currently held, sorted.
func (a *Agent) LSDB() []LSA {
	out := make([]LSA, 0, len(a.lsdb))
	for _, e := range a.lsdb {
		out = append(out, e.lsa)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// Distance returns the computed hop distance to dest, or -1 if
// unreachable in the current LSDB.
func (a *Agent) Distance(dest netsim.NodeID) int {
	dist := a.spf()
	d, ok := dist[dest]
	if !ok {
		return -1
	}
	return d
}

// spf runs BFS over the LSDB adjacency (uniform link cost). Links are
// used only when both endpoints agree (bidirectional check, as in OSPF).
func (a *Agent) spf() map[netsim.NodeID]int {
	adj := func(id netsim.NodeID) []netsim.NodeID {
		if id == a.node.ID {
			return a.neighbors()
		}
		if e, ok := a.lsdb[id]; ok {
			return e.lsa.Neighbors
		}
		return nil
	}
	claims := func(id, nb netsim.NodeID) bool {
		for _, x := range adj(id) {
			if x == nb {
				return true
			}
		}
		return false
	}
	dist := map[netsim.NodeID]int{a.node.ID: 0}
	queue := []netsim.NodeID{a.node.ID}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj(cur) {
			if _, seen := dist[nb]; seen {
				continue
			}
			if !claims(nb, cur) {
				continue // one-sided adjacency: not yet confirmed
			}
			dist[nb] = dist[cur] + 1
			queue = append(queue, nb)
		}
	}
	return dist
}

// recompute reruns SPF and programs the node FIB with first hops. Like
// spf, an adjacency is used only when both endpoints advertise it (the
// OSPF bidirectional check), so stale one-sided claims — e.g. a live
// neighbor still listing a dead router whose own LSA has aged out —
// never install routes.
func (a *Agent) recompute() {
	a.stats.SPFRuns++
	adj := func(id netsim.NodeID) []netsim.NodeID {
		if id == a.node.ID {
			return a.neighbors()
		}
		if e, ok := a.lsdb[id]; ok {
			return e.lsa.Neighbors
		}
		return nil
	}
	claims := func(id, nb netsim.NodeID) bool {
		for _, x := range adj(id) {
			if x == nb {
				return true
			}
		}
		return false
	}
	type qe struct {
		id    netsim.NodeID
		first netsim.NodeID
	}
	visited := map[netsim.NodeID]bool{a.node.ID: true}
	var queue []qe
	for _, nb := range adj(a.node.ID) {
		if !claims(nb, a.node.ID) {
			continue
		}
		visited[nb] = true
		queue = append(queue, qe{id: nb, first: nb})
		a.installRoute(nb, nb)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj(cur.id) {
			if visited[nb] || !claims(nb, cur.id) {
				continue
			}
			visited[nb] = true
			a.installRoute(nb, cur.first)
			queue = append(queue, qe{id: nb, first: cur.first})
		}
	}
	// Withdraw FIB entries that SPF no longer reaches.
	for dest := range a.node.FIB {
		if !visited[dest] {
			delete(a.node.FIB, dest)
		}
	}
}

// installRoute programs dest via the medium that reaches firstHop.
func (a *Agent) installRoute(dest, firstHop netsim.NodeID) {
	for _, m := range a.node.Media() {
		switch t := m.(type) {
		case *netsim.Link:
			if !t.Down() && t.Peer(a.node).ID == firstHop {
				a.node.SetRoute(dest, m, firstHop)
				return
			}
		case *netsim.LAN:
			for _, member := range t.Members() {
				if member.ID == firstHop {
					a.node.SetRoute(dest, m, firstHop)
					return
				}
			}
		}
	}
}

// scheduleSweep ages the database: entries unrefreshed past MaxAge are
// withdrawn and routes recomputed.
func (a *Agent) scheduleSweep() {
	if a.stopped {
		return
	}
	sim := a.node.Net().Sim
	sim.Schedule(sim.Now()+a.cfg.RefreshPeriod, "lsa-sweep", func() {
		if a.stopped {
			return
		}
		a.sweep()
		a.scheduleSweep()
	})
}

func (a *Agent) sweep() {
	now := a.node.Net().Sim.Now()
	maxAge := a.cfg.MaxAgeFactor * a.cfg.RefreshPeriod
	changed := false
	for origin, e := range a.lsdb {
		if origin == a.node.ID {
			continue
		}
		if now-e.updated > maxAge {
			delete(a.lsdb, origin)
			delete(a.node.FIB, origin)
			a.stats.AgedOut++
			changed = true
		}
	}
	if changed {
		a.recompute() // also withdraws FIB entries SPF no longer reaches
	}
}
