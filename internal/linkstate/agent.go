package linkstate

import (
	"fmt"
	"sort"

	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/rng"
)

// Config assembles a link-state agent.
type Config struct {
	// RefreshPeriod is the LSA re-origination interval Tp in seconds
	// (OSPF: 1800; the experiments use shorter periods to keep
	// simulations tractable — the dynamics scale with Tp).
	RefreshPeriod float64
	// Jitter yields refresh intervals; nil means the deterministic
	// period.
	Jitter jitter.Policy
	// PrepareCost / ProcessCost are seconds of CPU to originate and to
	// handle one LSA (flooding work).
	PrepareCost float64
	ProcessCost float64
	// MaxAgeFactor: LSAs unrefreshed for MaxAgeFactor·RefreshPeriod are
	// withdrawn from the database (OSPF MaxAge); zero means 4.
	MaxAgeFactor float64
	// Seed drives the agent's jitter stream.
	Seed int64
}

// Stats counts agent activity.
type Stats struct {
	Originated uint64
	Received   uint64
	Flooded    uint64
	Malformed  uint64
	SPFRuns    uint64
	AgedOut    uint64
}

type lsdbEntry struct {
	lsa     LSA
	updated float64
}

// spfQE is one BFS queue entry: a node and the first hop that reaches it.
type spfQE struct {
	id    netsim.NodeID
	first netsim.NodeID
}

// fifo is a growable FIFO with a head index: pops keep the backing
// array, so steady-state push/pop cycles never allocate.
type fifo[T any] struct {
	buf  []T
	head int
}

func (f *fifo[T]) len() int { return len(f.buf) - f.head }

func (f *fifo[T]) push(v T) { f.buf = append(f.buf, v) }

func (f *fifo[T]) pop() T {
	v := f.buf[f.head]
	var zero T
	f.buf[f.head] = zero
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return v
}

// lsItem is one received LSA awaiting CPU processing. The agent owns
// the packet (netsim transferred it at OnRouting) and holds it by
// generation-checked handle until the flooding work completes, then
// releases it.
type lsItem struct {
	ref    netsim.PacketRef
	via    netsim.Medium
	origin netsim.NodeID
	seq    uint32
}

// Agent is one router's link-state process.
type Agent struct {
	node *netsim.Node
	cfg  Config
	r    *rng.Source

	lsdb    map[netsim.NodeID]lsdbEntry
	seq     uint32
	timerEv des.Event
	stats   Stats
	stopped bool

	// refreshLabel and the hoisted closures below keep the per-firing
	// steady state allocation-free: one fmt.Sprintf and two closures per
	// agent lifetime instead of per event.
	refreshLabel string
	rearmFn      func()
	sweepFn      func()
	timerFn      func() // hoisted onTimer method value (re-armed per refresh)
	procFn       func() // hoisted receive-processing completion (pops pendQ)

	// pendQ parks received LSAs while their processing cost drains
	// through the CPU model; CPU completions are FIFO (each OccupyThen
	// lands strictly later than the previous), so procFn pops heads in
	// scheduling order. encScratch backs LSA encoding; the bytes are
	// copied into each packet's pooled payload arena by SetPayload.
	pendQ      fifo[lsItem]
	encScratch []byte

	// nbrCache holds the sorted adjacency list, valid while nbrVer
	// matches the network topology version. Callers must not mutate it;
	// rebuilds allocate a fresh slice because the previous one may be
	// retained inside LSAs already installed in LSDBs.
	nbrCache []netsim.NodeID
	nbrVer   uint64
	nbrOK    bool

	// fibOK/fibVer record whether the FIB reflects the current LSDB and
	// topology; a refresh LSA whose content is unchanged skips the SPF
	// run entirely when they are current.
	fibOK  bool
	fibVer uint64

	// SPF scratch, reused across runs.
	adjRows  [][]netsim.NodeID
	visited  []bool
	spfQueue []spfQE

	// OnSend, if set, observes every LSA origination (for cluster
	// detection in experiments).
	OnSend func(t float64)
}

// NewAgent creates an agent on node. Call Start to begin originating.
func NewAgent(node *netsim.Node, cfg Config) *Agent {
	if cfg.RefreshPeriod <= 0 {
		panic("linkstate: refresh period must be positive")
	}
	if cfg.PrepareCost < 0 || cfg.ProcessCost < 0 {
		panic("linkstate: negative costs")
	}
	if cfg.Jitter == nil {
		cfg.Jitter = jitter.None{Tp: cfg.RefreshPeriod}
	}
	if cfg.MaxAgeFactor == 0 {
		cfg.MaxAgeFactor = 4
	}
	a := &Agent{
		node: node,
		cfg:  cfg,
		r:    rng.New(cfg.Seed ^ int64(node.ID)*0x5DEECE66D),
		lsdb: make(map[netsim.NodeID]lsdbEntry),
	}
	a.refreshLabel = fmt.Sprintf("lsa-refresh(%s)", node.Name)
	a.rearmFn = a.rearmWhenIdle
	a.timerFn = a.onTimer
	a.sweepFn = func() {
		if a.stopped {
			return
		}
		a.sweep()
		a.scheduleSweep()
	}
	a.procFn = func() {
		it := a.pendQ.pop()
		pkt := it.ref.Get()
		a.integrate(pkt.Payload, it.origin, it.seq, it.via)
		a.node.ReleasePacket(pkt)
	}
	node.OnRouting = a.receive
	return a
}

// Node returns the agent's node.
func (a *Agent) Node() *netsim.Node { return a.node }

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats { return a.stats }

// Stop halts origination and processing; the LSDB is left for inspection.
func (a *Agent) Stop() {
	a.stopped = true
	a.node.Cancel(a.timerEv)
	a.timerEv = des.Event{}
	a.node.OnRouting = nil
}

// neighbors lists the adjacent node ids over all attached media, sorted.
// The result is cached against the network topology version — refresh
// originations on a static topology reuse it — and must not be mutated:
// it is retained inside LSAs installed in LSDBs across the network.
func (a *Agent) neighbors() []netsim.NodeID {
	if ver := a.node.Net().TopologyVersion(); !a.nbrOK || a.nbrVer != ver {
		seen := map[netsim.NodeID]bool{}
		for _, m := range a.node.Media() {
			switch t := m.(type) {
			case *netsim.Link:
				if !t.Down() {
					seen[t.Peer(a.node).ID] = true
				}
			case *netsim.LAN:
				for _, member := range t.Members() {
					if member != a.node {
						seen[member.ID] = true
					}
				}
			}
		}
		out := make([]netsim.NodeID, 0, len(seen))
		for id := range seen {
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		a.nbrCache, a.nbrVer, a.nbrOK = out, ver, true
	}
	return a.nbrCache
}

// fibCurrent reports whether the FIB still reflects the LSDB and the
// live topology.
func (a *Agent) fibCurrent() bool {
	return a.fibOK && a.fibVer == a.node.Net().TopologyVersion()
}

// idsEqual compares two sorted adjacency lists.
func idsEqual(a, b []netsim.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Start arms the first refresh to fire startOffset seconds from now.
func (a *Agent) Start(startOffset float64) {
	if startOffset < 0 {
		panic("linkstate: negative start offset")
	}
	a.timerEv = a.node.After(startOffset, a.refreshLabel, a.timerFn)
	a.scheduleSweep()
}

func (a *Agent) onTimer() {
	if a.stopped {
		return
	}
	a.originate()
}

// originate builds, installs and floods the router's own LSA, then
// re-arms the refresh timer after the CPU drains — the paper's coupled
// reset discipline carried over to link-state refreshes. A refresh whose
// adjacency is unchanged leaves the FIB alone: the SPF input is
// identical, so the output would be too.
func (a *Agent) originate() {
	a.seq++
	nbrs := a.neighbors()
	lsa := LSA{Origin: a.node.ID, Seq: a.seq, Neighbors: nbrs}
	now := a.node.Now()
	prev, had := a.lsdb[a.node.ID]
	a.lsdb[a.node.ID] = lsdbEntry{lsa: lsa, updated: now}
	a.flood(lsa, nil)
	if !had || !idsEqual(nbrs, prev.lsa.Neighbors) || !a.fibCurrent() {
		a.recompute()
	}
	a.stats.Originated++
	if a.OnSend != nil {
		a.OnSend(now)
	}
	if a.node.CPU != nil && a.cfg.PrepareCost > 0 {
		a.node.CPU.OccupyThen(a.cfg.PrepareCost, a.rearmFn)
		return
	}
	a.rearmWhenIdle()
}

func (a *Agent) rearmWhenIdle() {
	if a.stopped {
		return
	}
	if a.node.CPU != nil && a.node.CPU.Busy() {
		a.node.Schedule(a.node.CPU.BusyUntil(), "lsa-rearm-wait", a.rearmFn)
		return
	}
	a.node.Cancel(a.timerEv)
	delay := a.cfg.Jitter.Delay(a.r, int(a.node.ID))
	a.timerEv = a.node.After(delay, a.refreshLabel, a.timerFn)
}

// flood encodes an LSA into the agent's scratch buffer and transmits it
// on every medium.
func (a *Agent) flood(lsa LSA, except netsim.Medium) {
	payload, err := EncodeInto(a.encScratch[:0], lsa)
	if err != nil {
		panic(err) // own adjacency lists are bounded by the topology
	}
	a.encScratch = payload
	a.floodRaw(payload, except)
}

// floodRaw transmits an already-encoded LSA on every medium except the
// one it arrived on. Re-flooding reuses the incoming payload bytes —
// Encode is canonical, so re-encoding the decoded LSA would reproduce
// them anyway. SetPayload copies them into each outgoing packet's own
// arena, so the source (scratch buffer or an about-to-be-released
// incoming packet) may be reused immediately.
func (a *Agent) floodRaw(payload []byte, except netsim.Medium) {
	net := a.node.Net()
	for i, nm := 0, a.node.NumMedia(); i < nm; i++ {
		m := a.node.MediumAt(i)
		if m == except {
			continue
		}
		pkt := net.NewPacket(netsim.KindRouting, a.node.ID, netsim.Broadcast, 28+len(payload))
		pkt.SetPayload(payload)
		a.node.SendOn(m, netsim.Broadcast, pkt)
		a.stats.Flooded++
	}
}

// receive handles an incoming LSA: CPU cost, dedup by sequence number,
// store + re-flood + SPF when new. Only the fixed-size header is decoded
// here; the duplicate path — the common case on a broadcast segment —
// never touches the neighbor list. netsim transfers packet ownership
// here; every path ends in ReleasePacket — immediately for malformed
// frames and synchronous processing, or from procFn once the CPU
// finishes for queued work.
func (a *Agent) receive(pkt *netsim.Packet, via netsim.Medium) {
	origin, seq, err := PeekHeader(pkt.Payload)
	if err != nil {
		a.stats.Malformed++
		a.node.ReleasePacket(pkt)
		return
	}
	a.stats.Received++
	if a.node.CPU != nil && a.cfg.ProcessCost > 0 {
		a.pendQ.push(lsItem{ref: pkt.Ref(), via: via, origin: origin, seq: seq})
		a.node.CPU.OccupyThen(a.cfg.ProcessCost, a.procFn)
		return
	}
	a.integrate(pkt.Payload, origin, seq, via)
	a.node.ReleasePacket(pkt)
}

// PendingPackets returns the number of received LSAs the agent is
// holding while their processing cost drains through the CPU model —
// packets the agent owns but has not released yet. Leak audits add it to
// netsim's parked counts.
func (a *Agent) PendingPackets() int { return a.pendQ.len() }

func (a *Agent) integrate(payload []byte, origin netsim.NodeID, seq uint32, via netsim.Medium) {
	if a.stopped {
		return
	}
	if origin == a.node.ID {
		return // our own LSA echoed back
	}
	now := a.node.Now()
	cur, ok := a.lsdb[origin]
	if ok && seq <= cur.lsa.Seq {
		// Stale or duplicate: refresh the age on an exact duplicate (the
		// origin is alive), never re-flood.
		if seq == cur.lsa.Seq {
			cur.updated = now
			a.lsdb[origin] = cur
		}
		return
	}
	if ok && WireNeighborsEqual(payload, cur.lsa.Neighbors) {
		// Refresh: a newer sequence number over unchanged content. The
		// SPF input is identical, so the routes are too — keep the
		// stored neighbor list, bump seq and age, and re-flood.
		cur.lsa.Seq = seq
		cur.updated = now
		a.lsdb[origin] = cur
		a.floodRaw(payload, via)
		if !a.fibCurrent() {
			a.recompute()
		}
		return
	}
	lsa, err := Decode(payload)
	if err != nil {
		a.stats.Malformed++ // unreachable: PeekHeader validated the frame
		return
	}
	a.lsdb[origin] = lsdbEntry{lsa: lsa, updated: now}
	a.floodRaw(payload, via)
	a.recompute()
}

// LSDB returns the database origins currently held, sorted.
func (a *Agent) LSDB() []LSA {
	out := make([]LSA, 0, len(a.lsdb))
	for _, e := range a.lsdb {
		out = append(out, e.lsa)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// Distance returns the computed hop distance to dest, or -1 if
// unreachable in the current LSDB.
func (a *Agent) Distance(dest netsim.NodeID) int {
	dist := a.spf()
	d, ok := dist[dest]
	if !ok {
		return -1
	}
	return d
}

// spf runs BFS over the LSDB adjacency (uniform link cost). Links are
// used only when both endpoints agree (bidirectional check, as in OSPF).
func (a *Agent) spf() map[netsim.NodeID]int {
	adj := func(id netsim.NodeID) []netsim.NodeID {
		if id == a.node.ID {
			return a.neighbors()
		}
		if e, ok := a.lsdb[id]; ok {
			return e.lsa.Neighbors
		}
		return nil
	}
	claims := func(id, nb netsim.NodeID) bool {
		for _, x := range adj(id) {
			if x == nb {
				return true
			}
		}
		return false
	}
	dist := map[netsim.NodeID]int{a.node.ID: 0}
	queue := []netsim.NodeID{a.node.ID}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj(cur) {
			if _, seen := dist[nb]; seen {
				continue
			}
			if !claims(nb, cur) {
				continue // one-sided adjacency: not yet confirmed
			}
			dist[nb] = dist[cur] + 1
			queue = append(queue, nb)
		}
	}
	return dist
}

// recompute reruns SPF and programs the node FIB with first hops. Like
// spf, an adjacency is used only when both endpoints advertise it (the
// OSPF bidirectional check), so stale one-sided claims — e.g. a live
// neighbor still listing a dead router whose own LSA has aged out —
// never install routes.
//
// The BFS runs over slice-indexed scratch state reused across runs (node
// ids are dense in [0, NumNodes)), not maps: SPF used to dominate the
// link-state experiment's profile through map traffic alone. LSAs naming
// ids outside the network are ignored, as the bidirectional check would
// reject them anyway.
func (a *Agent) recompute() {
	a.stats.SPFRuns++
	net := a.node.Net()
	n := net.NumNodes()
	if cap(a.adjRows) < n {
		a.adjRows = make([][]netsim.NodeID, n)
		a.visited = make([]bool, n)
	}
	adj := a.adjRows[:n]
	visited := a.visited[:n]
	for i := range adj {
		adj[i] = nil
		visited[i] = false
	}
	for origin, e := range a.lsdb {
		if int(origin) >= 0 && int(origin) < n {
			adj[origin] = e.lsa.Neighbors
		}
	}
	// The router's own row comes from the live topology, not its stored
	// LSA, so local changes take effect before the next origination.
	adj[a.node.ID] = a.neighbors()
	claims := func(id, nb netsim.NodeID) bool {
		for _, x := range adj[id] {
			if x == nb {
				return true
			}
		}
		return false
	}
	inRange := func(id netsim.NodeID) bool { return int(id) >= 0 && int(id) < n }

	queue := a.spfQueue[:0]
	visited[a.node.ID] = true
	for _, nb := range adj[a.node.ID] {
		if !inRange(nb) || !claims(nb, a.node.ID) {
			continue
		}
		visited[nb] = true
		queue = append(queue, spfQE{id: nb, first: nb})
		a.installRoute(nb, nb)
	}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for _, nb := range adj[cur.id] {
			if !inRange(nb) || visited[nb] || !claims(nb, cur.id) {
				continue
			}
			visited[nb] = true
			a.installRoute(nb, cur.first)
			queue = append(queue, spfQE{id: nb, first: cur.first})
		}
	}
	a.spfQueue = queue[:0]
	// Withdraw FIB entries that SPF no longer reaches.
	for dest := range a.node.FIB {
		if !inRange(dest) || !visited[dest] {
			delete(a.node.FIB, dest)
		}
	}
	a.fibOK = true
	a.fibVer = net.TopologyVersion()
}

// installRoute programs dest via the medium that reaches firstHop.
func (a *Agent) installRoute(dest, firstHop netsim.NodeID) {
	for i, nm := 0, a.node.NumMedia(); i < nm; i++ {
		m := a.node.MediumAt(i)
		switch t := m.(type) {
		case *netsim.Link:
			if !t.Down() && t.Peer(a.node).ID == firstHop {
				a.node.SetRoute(dest, m, firstHop)
				return
			}
		case *netsim.LAN:
			for j, nj := 0, t.NumMembers(); j < nj; j++ {
				if t.Member(j).ID == firstHop {
					a.node.SetRoute(dest, m, firstHop)
					return
				}
			}
		}
	}
}

// scheduleSweep ages the database: entries unrefreshed past MaxAge are
// withdrawn and routes recomputed.
func (a *Agent) scheduleSweep() {
	if a.stopped {
		return
	}
	a.node.After(a.cfg.RefreshPeriod, "lsa-sweep", a.sweepFn)
}

func (a *Agent) sweep() {
	now := a.node.Now()
	maxAge := a.cfg.MaxAgeFactor * a.cfg.RefreshPeriod
	changed := false
	for origin, e := range a.lsdb {
		if origin == a.node.ID {
			continue
		}
		if now-e.updated > maxAge {
			delete(a.lsdb, origin)
			delete(a.node.FIB, origin)
			a.stats.AgedOut++
			changed = true
		}
	}
	if changed {
		a.recompute() // also withdraws FIB entries SPF no longer reaches
	}
}
