// Package linkstate implements a small link-state routing protocol on the
// netsim substrate: periodic link-state advertisement (LSA) origination,
// sequence-numbered flooding, a link-state database, and shortest-path
// (hop count) route computation.
//
// The paper studies distance-vector protocols, but its §1 warning is
// protocol-agnostic: any periodic message source with processing-coupled
// timers can synchronize. Link-state protocols refresh their LSAs
// periodically (OSPF's LSRefreshTime is 30 minutes), and an
// implementation that re-arms the refresh timer only after the CPU
// finishes flooding work has exactly the paper's weak coupling. The
// ExtLinkState experiment shows the same phase transition on this
// protocol; the package otherwise stands on its own as a second,
// independent routing-protocol family for the simulator.
package linkstate

import (
	"encoding/binary"
	"errors"
	"fmt"

	"routesync/internal/netsim"
)

// Wire format constants.
const (
	magic     = 0x4C53 // "LS"
	version   = 1
	headerLen = 16
	neighLen  = 4
)

// MaxNeighbors bounds an LSA's adjacency list.
const MaxNeighbors = 1024

// LSA is one router's link-state advertisement: its identity, a
// monotonically increasing sequence number, and its adjacency list.
type LSA struct {
	Origin    netsim.NodeID
	Seq       uint32
	Neighbors []netsim.NodeID
}

// Errors returned by Decode.
var (
	ErrTruncated  = errors.New("linkstate: truncated LSA")
	ErrBadMagic   = errors.New("linkstate: bad magic")
	ErrBadVersion = errors.New("linkstate: unsupported version")
	ErrTooMany    = errors.New("linkstate: too many neighbors")
)

// Encode serializes an LSA big-endian:
//
//	uint16 magic | uint8 version | uint8 reserved | uint32 origin |
//	uint32 seq | uint16 count | uint16 reserved | count × uint32 neighbor
func Encode(l LSA) ([]byte, error) {
	return EncodeInto(nil, l)
}

// EncodeInto is Encode writing into dst's backing array (grown as
// needed) — agents pass a per-agent scratch buffer so steady-state LSA
// origination allocates nothing. The returned slice aliases dst's array
// when it was large enough; callers keeping the bytes past the next
// encode must copy (netsim.Packet.SetPayload does).
func EncodeInto(dst []byte, l LSA) ([]byte, error) {
	if len(l.Neighbors) > MaxNeighbors {
		return nil, fmt.Errorf("%w: %d", ErrTooMany, len(l.Neighbors))
	}
	n := headerLen + neighLen*len(l.Neighbors)
	if cap(dst) < n {
		dst = make([]byte, n)
	} else {
		dst = dst[:n]
	}
	binary.BigEndian.PutUint16(dst[0:], magic)
	dst[2] = version
	dst[3] = 0 // reserved
	binary.BigEndian.PutUint32(dst[4:], uint32(l.Origin))
	binary.BigEndian.PutUint32(dst[8:], l.Seq)
	binary.BigEndian.PutUint16(dst[12:], uint16(len(l.Neighbors)))
	binary.BigEndian.PutUint16(dst[14:], 0) // reserved
	for i, nb := range l.Neighbors {
		binary.BigEndian.PutUint32(dst[headerLen+neighLen*i:], uint32(nb))
	}
	return dst, nil
}

// Decode parses a wire LSA, validating magic, version and length.
func Decode(buf []byte) (LSA, error) {
	var l LSA
	if len(buf) < headerLen {
		return l, ErrTruncated
	}
	if binary.BigEndian.Uint16(buf[0:]) != magic {
		return l, ErrBadMagic
	}
	if buf[2] != version {
		return l, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	l.Origin = netsim.NodeID(binary.BigEndian.Uint32(buf[4:]))
	l.Seq = binary.BigEndian.Uint32(buf[8:])
	count := int(binary.BigEndian.Uint16(buf[12:]))
	if len(buf) < headerLen+neighLen*count {
		return l, ErrTruncated
	}
	l.Neighbors = make([]netsim.NodeID, count)
	for i := range l.Neighbors {
		l.Neighbors[i] = netsim.NodeID(binary.BigEndian.Uint32(buf[headerLen+neighLen*i:]))
	}
	return l, nil
}

// PeekHeader validates a wire LSA exactly as Decode does and returns its
// origin and sequence number without allocating the neighbor list. The
// flooding hot path uses it to recognize duplicates — the common case on
// a broadcast segment, where every LSA is heard once per neighbor — and
// defer the full Decode to the rare fresh-LSA path.
func PeekHeader(buf []byte) (origin netsim.NodeID, seq uint32, err error) {
	if len(buf) < headerLen {
		return 0, 0, ErrTruncated
	}
	if binary.BigEndian.Uint16(buf[0:]) != magic {
		return 0, 0, ErrBadMagic
	}
	if buf[2] != version {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	count := int(binary.BigEndian.Uint16(buf[12:]))
	if len(buf) < headerLen+neighLen*count {
		return 0, 0, ErrTruncated
	}
	return netsim.NodeID(binary.BigEndian.Uint32(buf[4:])), binary.BigEndian.Uint32(buf[8:]), nil
}

// WireNeighborsEqual reports whether the neighbor list encoded in buf
// (already validated by PeekHeader) equals want, without allocating. A
// refresh LSA that merely bumps the sequence number of unchanged content
// needs no shortest-path recomputation.
func WireNeighborsEqual(buf []byte, want []netsim.NodeID) bool {
	count := int(binary.BigEndian.Uint16(buf[12:]))
	if count != len(want) {
		return false
	}
	for i, nb := range want {
		if netsim.NodeID(binary.BigEndian.Uint32(buf[headerLen+neighLen*i:])) != nb {
			return false
		}
	}
	return true
}

// WireSize returns the encoded length for n neighbors.
func WireSize(n int) int { return headerLen + neighLen*n }
