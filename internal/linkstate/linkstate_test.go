package linkstate

import (
	"errors"
	"testing"
	"testing/quick"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/rng"
)

func TestWireRoundTrip(t *testing.T) {
	l := LSA{Origin: 7, Seq: 42, Neighbors: []netsim.NodeID{1, 3, 9}}
	buf, err := Encode(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != WireSize(3) {
		t.Fatalf("size %d, want %d", len(buf), WireSize(3))
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != 7 || got.Seq != 42 || len(got.Neighbors) != 3 || got.Neighbors[2] != 9 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestWireErrors(t *testing.T) {
	good, _ := Encode(LSA{Origin: 1, Neighbors: []netsim.NodeID{2}})
	if _, err := Decode(good[:4]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Decode(good[:len(good)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
	badV := append([]byte(nil), good...)
	badV[2] = 9
	if _, err := Decode(badV); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Encode(LSA{Neighbors: make([]netsim.NodeID, MaxNeighbors+1)}); !errors.Is(err, ErrTooMany) {
		t.Fatalf("err = %v", err)
	}
}

func TestWireGarbageNeverPanics(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		buf := make([]byte, r.Intn(100))
		for i := range buf {
			buf[i] = byte(r.Intn(256))
		}
		_, _ = Decode(buf)
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// lsChain builds a chain of link-state routers and starts them staggered.
func lsChain(k int, seed int64) (*netsim.Network, []*Agent) {
	net := netsim.NewNetwork(seed)
	nodes := make([]*netsim.Node, k)
	for i := range nodes {
		nodes[i] = net.NewNode("ls", nil)
	}
	for i := 0; i+1 < k; i++ {
		net.Connect(nodes[i], nodes[i+1], netsim.LinkConfig{Delay: 0.001})
	}
	agents := make([]*Agent, k)
	for i, nd := range nodes {
		agents[i] = NewAgent(nd, Config{
			RefreshPeriod: 30,
			Jitter:        jitter.HalfSpread{Tp: 30},
			Seed:          seed,
		})
		agents[i].Start(float64(i) + 1)
	}
	return net, agents
}

func TestFloodingFillsLSDBs(t *testing.T) {
	net, agents := lsChain(5, 1)
	net.RunUntil(60)
	for i, a := range agents {
		if got := len(a.LSDB()); got != 5 {
			t.Fatalf("agent %d LSDB has %d origins, want 5", i, got)
		}
	}
}

func TestSPFDistances(t *testing.T) {
	net, agents := lsChain(5, 2)
	net.RunUntil(60)
	for i, a := range agents {
		for j, b := range agents {
			want := j - i
			if want < 0 {
				want = -want
			}
			if got := a.Distance(b.Node().ID); got != want {
				t.Fatalf("agent %d distance to %d = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestFIBForwardsEndToEnd(t *testing.T) {
	net, agents := lsChain(4, 3)
	net.RunUntil(60)
	got := 0
	far := agents[3].Node()
	far.OnDeliver = map[netsim.Kind]func(*netsim.Packet){
		netsim.KindData: func(*netsim.Packet) { got++ },
	}
	net.Inject(net.NewPacket(netsim.KindData, agents[0].Node().ID, far.ID, 100))
	net.RunUntil(61)
	if got != 1 {
		t.Fatal("packet not delivered over link-state FIB")
	}
}

// TestFloodingTerminates: sequence-number dedup bounds the flooding work;
// a ring topology (a flooding loop risk) must not melt down.
func TestFloodingTerminates(t *testing.T) {
	net := netsim.NewNetwork(4)
	const k = 6
	nodes := make([]*netsim.Node, k)
	for i := range nodes {
		nodes[i] = net.NewNode("ring", nil)
	}
	for i := 0; i < k; i++ {
		net.Connect(nodes[i], nodes[(i+1)%k], netsim.LinkConfig{Delay: 0.001})
	}
	agents := make([]*Agent, k)
	for i, nd := range nodes {
		agents[i] = NewAgent(nd, Config{RefreshPeriod: 30, Jitter: jitter.HalfSpread{Tp: 30}, Seed: 4})
		agents[i].Start(float64(i) + 1)
	}
	net.RunUntil(65) // ~2 refresh rounds
	// Each origination floods at most once per agent per link direction:
	// with k=6 agents and 2 rounds, the total flooded count is bounded.
	var flooded uint64
	for _, a := range agents {
		flooded += a.Stats().Flooded
	}
	// 2 rounds × 6 LSAs; each LSA crosses each agent once (re-flooding on
	// one of 2 media) plus origination on 2; generous bound: 6 LSAs × 12
	// transmissions × 2 rounds (plus the initial round's extra chatter).
	if flooded > 400 {
		t.Fatalf("flooding did not terminate: %d transmissions", flooded)
	}
	// And everyone converged on the ring distances.
	if d := agents[0].Distance(nodes[3].ID); d != 3 {
		t.Fatalf("ring distance = %d, want 3", d)
	}
}

// TestConvergesOnRandomGraphs: link-state SPF matches BFS ground truth.
func TestConvergesOnRandomGraphs(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		net := netsim.NewNetwork(seed)
		count := 4 + r.Intn(7)
		nodes, _ := net.BuildRandomGraph(r, count, r.Intn(count), nil, netsim.LinkConfig{Delay: 0.001})
		agents := make([]*Agent, count)
		for i, nd := range nodes {
			agents[i] = NewAgent(nd, Config{RefreshPeriod: 30, Jitter: jitter.HalfSpread{Tp: 30}, Seed: seed})
			agents[i].Start(r.Uniform(0, 30))
		}
		net.RunUntil(90)
		for i, a := range agents {
			want := net.HopDistances(nodes[i])
			for j, other := range nodes {
				if i == j {
					continue
				}
				if got := a.Distance(other.ID); got != want[other.ID] {
					t.Logf("seed %d: %d→%d = %d, BFS %d", seed, i, j, got, want[other.ID])
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestDeadRouterAgesOut: stop one router; its LSA ages out of the others'
// databases and its routes disappear.
func TestDeadRouterAgesOut(t *testing.T) {
	net, agents := lsChain(3, 5)
	net.RunUntil(60)
	dead := agents[2]
	deadID := dead.Node().ID
	dead.Stop()
	// MaxAge = 4 × 30 = 120 s after the last refresh.
	net.RunUntil(60 + 4*30 + 90)
	if d := agents[0].Distance(deadID); d != -1 {
		t.Fatalf("dead router still reachable at distance %d", d)
	}
	if _, ok := agents[0].Node().FIB[deadID]; ok {
		t.Fatal("FIB entry for dead router survived")
	}
	if agents[0].Stats().AgedOut == 0 {
		t.Fatal("no age-outs recorded")
	}
}

// TestLinkFailureReroutes: a diamond reroutes around a dead link after
// the next refresh announces the new adjacency.
func TestLinkFailureReroutes(t *testing.T) {
	net := netsim.NewNetwork(6)
	src := net.NewNode("src", nil)
	top := net.NewNode("top", nil)
	b1 := net.NewNode("b1", nil)
	dst := net.NewNode("dst", nil)
	lTop := net.Connect(src, top, netsim.LinkConfig{Delay: 0.001})
	net.Connect(top, dst, netsim.LinkConfig{Delay: 0.001})
	net.Connect(src, b1, netsim.LinkConfig{Delay: 0.001})
	net.Connect(b1, dst, netsim.LinkConfig{Delay: 0.001})
	var agents []*Agent
	for i, nd := range []*netsim.Node{src, top, b1, dst} {
		a := NewAgent(nd, Config{RefreshPeriod: 30, Jitter: jitter.HalfSpread{Tp: 30}, Seed: 6})
		a.Start(float64(i) + 1)
		agents = append(agents, a)
	}
	net.RunUntil(60)
	if d := agents[0].Distance(dst.ID); d != 2 {
		t.Fatalf("pre-failure distance = %d", d)
	}
	lTop.SetDown(true)
	// The endpoints notice at their next refresh (adjacency re-read) and
	// flood updated LSAs.
	net.RunUntil(60 + 90)
	if d := agents[0].Distance(dst.ID); d != 2 {
		t.Fatalf("post-failure distance = %d, want 2 via b1", d)
	}
	// And data actually flows via the bottom path.
	got := 0
	dst.OnDeliver = map[netsim.Kind]func(*netsim.Packet){
		netsim.KindData: func(*netsim.Packet) { got++ },
	}
	pkt := net.NewPacket(netsim.KindData, src.ID, dst.ID, 64)
	pkt.RecordRoute = true
	var hops []netsim.Hop
	dst.OnDeliver[netsim.KindData] = func(p *netsim.Packet) { got++; hops = p.Hops }
	net.Inject(pkt)
	net.RunUntil(net.Sim.Now() + 5)
	if got != 1 {
		t.Fatal("packet not delivered after reroute")
	}
	if len(hops) != 2 || hops[0].Node != b1.ID {
		t.Fatalf("path = %+v, want via b1", hops)
	}
}

func TestAgentValidation(t *testing.T) {
	net := netsim.NewNetwork(7)
	nd := net.NewNode("x", nil)
	for _, f := range []func(){
		func() { NewAgent(nd, Config{RefreshPeriod: 0}) },
		func() { NewAgent(nd, Config{RefreshPeriod: 30, PrepareCost: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	a := NewAgent(nd, Config{RefreshPeriod: 30})
	defer func() {
		if recover() == nil {
			t.Error("negative start offset did not panic")
		}
	}()
	a.Start(-1)
}

// TestLSDBsConvergeIdentically: after a quiet period every router holds
// the same database — flooding is eventually consistent.
func TestLSDBsConvergeIdentically(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		net := netsim.NewNetwork(seed)
		count := 3 + r.Intn(6)
		nodes, _ := net.BuildRandomGraph(r, count, r.Intn(count), nil, netsim.LinkConfig{Delay: 0.001})
		agents := make([]*Agent, count)
		for i, nd := range nodes {
			agents[i] = NewAgent(nd, Config{RefreshPeriod: 30, Jitter: jitter.HalfSpread{Tp: 30}, Seed: seed})
			agents[i].Start(r.Uniform(0, 30))
		}
		net.RunUntil(120)
		ref := agents[0].LSDB()
		if len(ref) != count {
			return false
		}
		for _, a := range agents[1:] {
			db := a.LSDB()
			if len(db) != len(ref) {
				return false
			}
			for i := range db {
				if db[i].Origin != ref[i].Origin {
					return false
				}
				if len(db[i].Neighbors) != len(ref[i].Neighbors) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
