package markov

import "math"

// This file implements the paper's Equation 4/6 closed forms — the nested
// sum-of-products solutions of the Eq 3/5 recursions — in log space. The
// printed rendering of Eq 4 in the SIGCOMM proceedings is typographically
// mangled, but the closed form of the birth–death recursion is standard:
//
//	h(i) = 1/p(i) + (q(i)/p(i))·h(i−1)
//	     = Σ_{k=2..i} (1/p(k)) Π_{j=k+1..i} q(j)/p(j)
//	       + f(2)·Π_{j=2..i} q(j)/p(j)
//	f(i) = f(2) + Σ_{k=2..i−1} h(k)
//
// with p(k) = p(k,k+1) and q(k) = p(k,k−1), and symmetrically for g. The
// forward recursions in F and G are the numerically cheap evaluation; the
// closed forms here exist (a) as fidelity to the paper's presentation and
// (b) because the log-space product formulation stays finite-exponent even
// when intermediate products overflow float64, which tests exercise.

// logAdd returns log(exp(a) + exp(b)) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// ClosedFormF evaluates f(i) for i in 1..N via the Equation 4 closed form
// in log space. It returns the same values as F (tests assert agreement)
// and +Inf where growth is impossible.
func (c *Chain) ClosedFormF() []float64 {
	n := c.p.N
	f := make([]float64, n+1)
	if n < 2 {
		return f
	}
	// logRatio[j] = log(q(j)/p(j)); +Inf marks an impossible up-move.
	logRatio := make([]float64, n)
	logInvP := make([]float64, n)
	for j := 2; j <= n-1; j++ {
		if c.up[j] == 0 {
			logRatio[j] = math.Inf(1)
			logInvP[j] = math.Inf(1)
			continue
		}
		if c.dn[j] == 0 {
			logRatio[j] = math.Inf(-1)
		} else {
			logRatio[j] = math.Log(c.dn[j]) - math.Log(c.up[j])
		}
		logInvP[j] = -math.Log(c.up[j])
	}

	f[1] = 0
	f[2] = c.f2
	total := c.f2
	logF2 := math.Log(c.f2)
	for i := 2; i <= n-1; i++ {
		// h(i) in log space: logh = logAdd over k of
		// logInvP[k] + Σ_{j=k+1..i} logRatio[j], plus the f(2) tail.
		logh := math.Inf(-1)
		suffix := 0.0 // Σ_{j=k+1..i} logRatio[j], built from k=i down
		impossible := false
		for k := i; k >= 2; k-- {
			if math.IsInf(logInvP[k], 1) {
				impossible = true
				break
			}
			logh = logAdd(logh, logInvP[k]+suffix)
			if math.IsInf(logRatio[k], 1) {
				impossible = true
				break
			}
			suffix += logRatio[k]
		}
		if impossible {
			for j := i + 1; j <= n; j++ {
				f[j] = math.Inf(1)
			}
			return f
		}
		logh = logAdd(logh, logF2+suffix)
		total += math.Exp(logh)
		f[i+1] = total
	}
	return f
}

// ClosedFormG evaluates g(i) for i in 1..N via the Equation 6 closed form
// in log space:
//
//	d(i) = 1/q(i) + (p(i)/q(i))·d(i+1)
//	     = Σ_{k=i..N} (1/q(k)) Π_{j=i..k−1} p(j)/q(j)
//	g(i) = Σ_{k=i+1..N} d(k)
//
// As the paper notes, g is independent of p(1,2) and f(2).
func (c *Chain) ClosedFormG() []float64 {
	n := c.p.N
	g := make([]float64, n+1)
	if c.dn[n] == 0 {
		for i := 1; i < n; i++ {
			g[i] = math.Inf(1)
		}
		return g
	}
	total := 0.0
	for i := n; i >= 2; i-- {
		// d(i) in log space.
		logd := math.Inf(-1)
		prefix := 0.0 // Σ_{j=i..k−1} log(p(j)/q(j))
		impossible := false
		for k := i; k <= n; k++ {
			if c.dn[k] == 0 {
				impossible = true
				break
			}
			logd = logAdd(logd, -math.Log(c.dn[k])+prefix)
			if c.up[k] == 0 {
				break // products beyond k vanish
			}
			prefix += math.Log(c.up[k]) - math.Log(c.dn[k])
		}
		if impossible {
			for j := 1; j < i; j++ {
				g[j] = math.Inf(1)
			}
			return g
		}
		total += math.Exp(logd)
		g[i-1] = total
	}
	return g
}
