package markov

import (
	"math"
	"testing"
	"testing/quick"

	"routesync/internal/rng"
)

func TestClosedFormFMatchesRecursion(t *testing.T) {
	for _, tr := range []float64{0.07, 0.1, 0.2, 0.3, 0.32} {
		c := mustNew(t, paperParams(tr))
		f, cf := c.F(), c.ClosedFormF()
		for i := 1; i <= 20; i++ {
			if relDiff(f[i], cf[i]) > 1e-9 {
				t.Fatalf("Tr=%v: ClosedFormF(%d)=%v, F=%v", tr, i, cf[i], f[i])
			}
		}
	}
}

func TestClosedFormGMatchesRecursion(t *testing.T) {
	for _, tr := range []float64{0.1, 0.2, 0.3, 0.44} {
		c := mustNew(t, paperParams(tr))
		g, cg := c.G(), c.ClosedFormG()
		for i := 1; i <= 20; i++ {
			if relDiff(g[i], cg[i]) > 1e-9 {
				t.Fatalf("Tr=%v: ClosedFormG(%d)=%v, G=%v", tr, i, cg[i], g[i])
			}
		}
	}
}

func TestClosedFormInfinities(t *testing.T) {
	// Growth impossible beyond the drift cutoff: both forms agree on +Inf.
	c := mustNew(t, paperParams(3.3*0.11))
	f, cf := c.F(), c.ClosedFormF()
	for i := 1; i <= 20; i++ {
		if math.IsInf(f[i], 1) != math.IsInf(cf[i], 1) {
			t.Fatalf("infinity mismatch at %d: %v vs %v", i, f[i], cf[i])
		}
	}
	// Break-up impossible below Tc/2: g infinite in both forms.
	c2 := mustNew(t, paperParams(0.05))
	g, cg := c2.G(), c2.ClosedFormG()
	for i := 1; i < 20; i++ {
		if !math.IsInf(g[i], 1) || !math.IsInf(cg[i], 1) {
			t.Fatalf("expected +Inf g(%d): %v vs %v", i, g[i], cg[i])
		}
	}
}

// TestClosedFormProperty: agreement across random parameters.
func TestClosedFormProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		p := Params{
			N:  3 + r.Intn(40),
			Tp: r.Uniform(20, 300),
			Tr: r.Uniform(0.01, 1.5),
			Tc: r.Uniform(0.01, 0.4),
			F2: r.Uniform(1, 100),
		}
		c, err := New(p)
		if err != nil {
			return false
		}
		f, cf := c.F(), c.ClosedFormF()
		g, cg := c.G(), c.ClosedFormG()
		for i := 1; i <= p.N; i++ {
			if relDiff(f[i], cf[i]) > 1e-6 || relDiff(g[i], cg[i]) > 1e-6 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLogAdd(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{math.Log(2), math.Log(3), math.Log(5)},
		{math.Inf(-1), math.Log(7), math.Log(7)},
		{math.Log(7), math.Inf(-1), math.Log(7)},
		{700, 700, 700 + math.Log(2)}, // would overflow exp()
	}
	for _, c := range cases {
		if got := logAdd(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("logAdd(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestClosedFormSurvivesExtremeProducts: a parameter point where the
// direct product Π q/p overflows float64 but the log-space form stays
// finite and agrees with the (also overflow-prone) recursion when that
// recursion is finite.
func TestClosedFormSurvivesExtremeProducts(t *testing.T) {
	// Large N with strongly down-biased middle states.
	c := mustNew(t, Params{N: 40, Tp: 400, Tr: 0.3, Tc: 0.11, F2: 19})
	cf := c.ClosedFormF()
	f := c.F()
	for i := 1; i <= 40; i++ {
		if relDiff(f[i], cf[i]) > 1e-6 {
			t.Fatalf("disagreement at %d: %v vs %v", i, f[i], cf[i])
		}
	}
}
