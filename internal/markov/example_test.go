package markov_test

import (
	"fmt"

	"routesync/internal/markov"
)

// ExampleChain_FractionUnsynchronized evaluates the paper's Figure 14
// question — what fraction of its life does a network spend
// unsynchronized? — on either side of the phase transition.
func ExampleChain_FractionUnsynchronized() {
	for _, tr := range []float64{0.11, 0.33} { // 1·Tc and 3·Tc
		ch, err := markov.New(markov.Params{N: 20, Tp: 121, Tr: tr, Tc: 0.11})
		if err != nil {
			panic(err)
		}
		fmt.Printf("Tr = %.2f s: fraction unsynchronized %.2f\n",
			tr, ch.FractionUnsynchronized())
	}
	// Output:
	// Tr = 0.11 s: fraction unsynchronized 0.00
	// Tr = 0.33 s: fraction unsynchronized 1.00
}

// ExampleCriticalTr locates the transition threshold for the paper's
// parameters.
func ExampleCriticalTr() {
	tr, ok := markov.CriticalTr(20, 121, 0.11, 0)
	fmt.Printf("found=%v threshold=%.2f s (%.1f x Tc)\n", ok, tr, tr/0.11)
	// Output:
	// found=true threshold=0.21 s (1.9 x Tc)
}
