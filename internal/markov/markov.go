// Package markov implements the paper's §5 Markov chain model of the
// Periodic Messages system. The chain has states 1..N, where state i means
// the largest cluster among the N routing messages has size i. Per round
// the largest cluster grows by one, shrinks by one, or stays.
//
// Transition probabilities follow the paper:
//
//	Eq 1:  p(i,i−1) = (1 − Tc/(2·Tr))^(i−1)            for i > 1
//	Eq 2:  p(i,i+1) = 1 − exp(−((N−i+1)/Tp)·D(i))      for 2 ≤ i ≤ N−1
//	       D(i) = (i−1)·Tc − Tr·(i−1)/(i+1)            (per-round drift)
//
// p(1,2) is a free parameter in the paper (it depends on how often two
// lone routers collide); EstimateP12 provides a documented estimate and
// callers may override it.
//
// Hitting times are solved exactly with the standard birth–death
// first-step recursions (see F and G); the paper's printed Eq 3–6
// recursion, including its printed conditional move times t(j,j±1), is
// also implemented (PaperF, PaperG) for fidelity comparison. With the
// conditional wait time 1/(p↓+p↑) the printed recursion is algebraically
// identical to the exact solver; with the paper's printed
// t = P(move)·E[wait] values it underestimates, which tests quantify.
package markov

import (
	"errors"
	"fmt"
	"math"
)

// Params parameterizes the chain. All times are seconds.
type Params struct {
	// N is the number of routers (chain states 1..N).
	N int
	// Tp is the mean timer period (paper: 121 s).
	Tp float64
	// Tr is the half-width of the timer's random component.
	Tr float64
	// Tc is the per-message processing cost (paper: 0.11 s).
	Tc float64
	// P12 is p(1,2), the probability that two lone routers merge in one
	// round. Zero means "estimate it" (see EstimateP12).
	P12 float64
	// F2 is f(2), the expected rounds for the system to first form a
	// cluster of size 2 from the fully unsynchronized state. The paper
	// uses 19 rounds for its Fig 10 parameters. Zero means 1/p(1,2).
	F2 float64
}

// Chain is a constructed Markov chain model.
type Chain struct {
	p   Params
	up  []float64 // up[i] = p(i,i+1), indices 1..N
	dn  []float64 // dn[i] = p(i,i−1)
	f2  float64   // resolved f(2) in rounds
	p12 float64   // resolved p(1,2)
}

// ErrBadParams reports invalid chain parameters.
var ErrBadParams = errors.New("markov: invalid parameters")

// New validates params and builds the chain.
func New(p Params) (*Chain, error) {
	switch {
	case p.N < 2:
		return nil, fmt.Errorf("%w: N=%d (need at least 2)", ErrBadParams, p.N)
	case p.Tp <= 0:
		return nil, fmt.Errorf("%w: Tp=%g", ErrBadParams, p.Tp)
	case p.Tc < 0:
		return nil, fmt.Errorf("%w: Tc=%g", ErrBadParams, p.Tc)
	case p.Tr < 0:
		return nil, fmt.Errorf("%w: Tr=%g", ErrBadParams, p.Tr)
	case p.P12 < 0 || p.P12 > 1:
		return nil, fmt.Errorf("%w: P12=%g", ErrBadParams, p.P12)
	case p.F2 < 0:
		return nil, fmt.Errorf("%w: F2=%g", ErrBadParams, p.F2)
	}
	c := &Chain{p: p}
	c.p12 = p.P12
	if c.p12 == 0 {
		c.p12 = EstimateP12(p.N, p.Tp, p.Tr, p.Tc)
	}
	c.f2 = p.F2
	if c.f2 == 0 {
		if c.p12 > 0 {
			c.f2 = 1 / c.p12
		} else {
			c.f2 = math.Inf(1)
		}
	}
	c.up = make([]float64, p.N+1)
	c.dn = make([]float64, p.N+1)
	for i := 1; i <= p.N; i++ {
		c.up[i] = c.pUp(i)
		c.dn[i] = c.pDown(i)
		// Eq 1 and Eq 2 are independent estimates; for extreme parameters
		// (e.g. Tr ≫ Tc, where Eq 1 approaches 1) they can sum above 1.
		// Normalize the row so the chain stays stochastic — equivalent to
		// saying the state always moves in such rounds.
		if sum := c.up[i] + c.dn[i]; sum > 1 {
			c.up[i] /= sum
			c.dn[i] /= sum
		}
	}
	return c, nil
}

// Params returns the chain's parameters.
func (c *Chain) Params() Params { return c.p }

// ResolvedP12 returns the p(1,2) actually used (given or estimated).
func (c *Chain) ResolvedP12() float64 { return c.p12 }

// ResolvedF2 returns the f(2) actually used, in rounds.
func (c *Chain) ResolvedF2() float64 { return c.f2 }

// Drift returns the paper's per-round advance of a cluster of size i
// relative to a lone router: (i−1)·Tc − Tr·(i−1)/(i+1) seconds (§5.1).
// Positive drift is what lets big clusters sweep up stragglers.
func (c *Chain) Drift(i int) float64 {
	return float64(i-1)*c.p.Tc - c.p.Tr*float64(i-1)/float64(i+1)
}

// pUp computes p(i,i+1) per Eq 2, clamped to 0 when the drift is
// non-positive (a cluster with negative drift never catches its follower).
func (c *Chain) pUp(i int) float64 {
	if i < 1 || i >= c.p.N {
		return 0
	}
	if i == 1 {
		return c.p12
	}
	d := c.Drift(i)
	if d <= 0 {
		return 0
	}
	rate := float64(c.p.N-i+1) / c.p.Tp
	return 1 - math.Exp(-rate*d)
}

// pDown computes p(i,i−1) per Eq 1. For Tr ≤ Tc/2 the cluster spread
// 2·Tr never exceeds Tc, no member can escape, and the probability is 0
// (the paper's §5 precondition Tr > Tc/2).
func (c *Chain) pDown(i int) float64 {
	if i <= 1 {
		return 0
	}
	if c.p.Tr <= c.p.Tc/2 {
		return 0
	}
	base := 1 - c.p.Tc/(2*c.p.Tr)
	return math.Pow(base, float64(i-1))
}

// PUp returns p(i,i+1).
func (c *Chain) PUp(i int) float64 {
	if i < 1 || i > c.p.N {
		panic("markov: state out of range")
	}
	return c.up[i]
}

// PDown returns p(i,i−1).
func (c *Chain) PDown(i int) float64 {
	if i < 1 || i > c.p.N {
		panic("markov: state out of range")
	}
	return c.dn[i]
}

// PStay returns p(i,i) = 1 − p(i,i−1) − p(i,i+1).
func (c *Chain) PStay(i int) float64 {
	return 1 - c.PUp(i) - c.PDown(i)
}

// RoundSeconds converts rounds to seconds: one round is Tp + Tc (the
// paper's figures plot (Tp+Tc)·f(i)).
func (c *Chain) RoundSeconds() float64 { return c.p.Tp + c.p.Tc }

// HitUp returns h(i), the expected rounds to go from state i to state i+1,
// for i in 1..N−1, from the exact first-step recursion
//
//	h(i) = (1 + p(i,i−1)·h(i−1)) / p(i,i+1),   h(1) = f(2)
//
// Entries are +Inf where growth is impossible (p(i,i+1)=0).
func (c *Chain) HitUp() []float64 {
	h := make([]float64, c.p.N) // h[i] valid for 1..N−1
	if c.p.N < 2 {
		return h
	}
	h[1] = c.f2
	for i := 2; i <= c.p.N-1; i++ {
		if c.up[i] == 0 {
			h[i] = math.Inf(1)
			continue
		}
		prev := h[i-1]
		if math.IsInf(prev, 1) {
			// Once an earlier transition is impossible the chain can
			// still be above it (e.g. started there), so h(i) itself may
			// be finite; the impossible term only matters via the down
			// move. Treat q·Inf as Inf when q > 0.
			if c.dn[i] > 0 {
				h[i] = math.Inf(1)
				continue
			}
			prev = 0
		}
		h[i] = (1 + c.dn[i]*prev) / c.up[i]
	}
	return h
}

// F returns f(i) for i in 1..N: the expected rounds to first reach state i
// starting from state 1, with f(1) = 0 and f(2) as configured.
func (c *Chain) F() []float64 {
	h := c.HitUp()
	f := make([]float64, c.p.N+1)
	for i := 2; i <= c.p.N; i++ {
		f[i] = f[i-1] + h[i-1]
	}
	return f
}

// FN returns f(N) in rounds: expected rounds from fully unsynchronized to
// fully synchronized.
func (c *Chain) FN() float64 { return c.F()[c.p.N] }

// HitDown returns d(i), the expected rounds to go from state i to state
// i−1, for i in 2..N, from the exact recursion
//
//	d(i) = (1 + p(i,i+1)·d(i+1)) / p(i,i−1),   d(N) = 1/p(N,N−1)
//
// Entries are +Inf where break-up is impossible (Tr ≤ Tc/2).
func (c *Chain) HitDown() []float64 {
	d := make([]float64, c.p.N+1) // d[i] valid for 2..N
	if c.dn[c.p.N] == 0 {
		for i := 2; i <= c.p.N; i++ {
			d[i] = math.Inf(1)
		}
		return d
	}
	d[c.p.N] = 1 / c.dn[c.p.N]
	for i := c.p.N - 1; i >= 2; i-- {
		if c.dn[i] == 0 {
			d[i] = math.Inf(1)
			continue
		}
		d[i] = (1 + c.up[i]*d[i+1]) / c.dn[i]
	}
	return d
}

// G returns g(i) for i in 1..N: the expected rounds to first reach state i
// starting from state N, with g(N) = 0.
func (c *Chain) G() []float64 {
	d := c.HitDown()
	g := make([]float64, c.p.N+1)
	for i := c.p.N - 1; i >= 1; i-- {
		g[i] = g[i+1] + d[i+1]
	}
	return g
}

// G1 returns g(1) in rounds: expected rounds from fully synchronized to
// fully unsynchronized.
func (c *Chain) G1() float64 { return c.G()[1] }

// FractionUnsynchronized estimates the long-run fraction of time the
// system spends unsynchronized as f(N)/(f(N)+g(1)) (paper §5.3, Figs
// 14–15). When f(N) is +Inf (growth impossible) the fraction is 1; when
// g(1) is +Inf (break-up impossible) it is 0; when both are infinite the
// system never leaves its initial condition and the estimate is NaN.
func (c *Chain) FractionUnsynchronized() float64 {
	fn, g1 := c.FN(), c.G1()
	switch {
	case math.IsInf(fn, 1) && math.IsInf(g1, 1):
		return math.NaN()
	case math.IsInf(fn, 1):
		return 1
	case math.IsInf(g1, 1):
		return 0
	}
	return fn / (fn + g1)
}

// Stationary returns the equilibrium distribution π(1..N) of the
// birth–death chain via detailed balance: π(i+1)/π(i) = p(i,i+1)/p(i+1,i).
// The paper could "only ... estimate the equilibrium distribution ... by
// further approximating the transition probabilities"; for a birth–death
// chain detailed balance is exact, so this is an extension the model
// structure gives us for free. Log-space accumulation avoids overflow.
// States unreachable from state 1 (zero up-probability en route) get π=0;
// if break-up is impossible the mass collapses onto the top reachable
// block. Returns nil if any ratio is 0/0 (degenerate chain).
func (c *Chain) Stationary() []float64 {
	n := c.p.N
	logpi := make([]float64, n+1)
	logpi[1] = 0
	for i := 1; i < n; i++ {
		up, dn := c.up[i], c.dn[i+1]
		switch {
		case up == 0:
			// states above i unreachable from below
			for j := i + 1; j <= n; j++ {
				logpi[j] = math.Inf(-1)
			}
			i = n // break outer
		case dn == 0:
			// once up, never down: all mass drains upward; stationary
			// distribution concentrates at the absorbing top block
			for j := 1; j <= i; j++ {
				logpi[j] = math.Inf(-1)
			}
			logpi[i+1] = 0
		default:
			logpi[i+1] = logpi[i] + math.Log(up) - math.Log(dn)
		}
	}
	// normalize with log-sum-exp
	max := math.Inf(-1)
	for i := 1; i <= n; i++ {
		if logpi[i] > max {
			max = logpi[i]
		}
	}
	if math.IsInf(max, -1) {
		return nil
	}
	var z float64
	for i := 1; i <= n; i++ {
		z += math.Exp(logpi[i] - max)
	}
	pi := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		pi[i] = math.Exp(logpi[i]-max) / z
	}
	return pi
}

// TransitionMatrix returns the full (N+1)×(N+1) matrix with
// m[i][j] = p(i,j); row/column 0 is unused padding so indices match
// states. This is the paper's Figure 9 in data form.
func (c *Chain) TransitionMatrix() [][]float64 {
	n := c.p.N
	m := make([][]float64, n+1)
	for i := range m {
		m[i] = make([]float64, n+1)
	}
	for i := 1; i <= n; i++ {
		if i > 1 {
			m[i][i-1] = c.dn[i]
		}
		if i < n {
			m[i][i+1] = c.up[i]
		}
		m[i][i] = c.PStay(i)
	}
	return m
}
