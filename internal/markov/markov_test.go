package markov

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"routesync/internal/rng"
)

// paperParams are the parameters used throughout the paper's §5 figures.
func paperParams(tr float64) Params {
	return Params{N: 20, Tp: 121, Tr: tr, Tc: 0.11, F2: 19}
}

func mustNew(t *testing.T, p Params) *Chain {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatalf("New(%+v): %v", p, err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := []Params{
		{N: 1, Tp: 121, Tr: 0.1, Tc: 0.11},
		{N: 20, Tp: 0, Tr: 0.1, Tc: 0.11},
		{N: 20, Tp: 121, Tr: -1, Tc: 0.11},
		{N: 20, Tp: 121, Tr: 0.1, Tc: -0.11},
		{N: 20, Tp: 121, Tr: 0.1, Tc: 0.11, P12: 2},
		{N: 20, Tp: 121, Tr: 0.1, Tc: 0.11, F2: -5},
	}
	for _, p := range bad {
		if _, err := New(p); !errors.Is(err, ErrBadParams) {
			t.Errorf("New(%+v) err = %v, want ErrBadParams", p, err)
		}
	}
}

func TestTransitionProbabilitiesEq1(t *testing.T) {
	// Eq 1 with the paper's parameters and Tr = 0.1:
	// p(i,i−1) = (1 − 0.11/0.2)^(i−1) = 0.45^(i−1).
	c := mustNew(t, paperParams(0.1))
	for i := 2; i <= 20; i++ {
		want := math.Pow(0.45, float64(i-1))
		if got := c.PDown(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("PDown(%d) = %v, want %v", i, got, want)
		}
	}
	if c.PDown(1) != 0 {
		t.Fatal("PDown(1) must be 0")
	}
}

func TestTransitionProbabilitiesEq2(t *testing.T) {
	c := mustNew(t, paperParams(0.1))
	for i := 2; i <= 19; i++ {
		drift := float64(i-1)*0.11 - 0.1*float64(i-1)/float64(i+1)
		want := 1 - math.Exp(-(float64(20-i+1)/121)*drift)
		if got := c.PUp(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("PUp(%d) = %v, want %v", i, got, want)
		}
	}
	if c.PUp(20) != 0 {
		t.Fatal("PUp(N) must be 0")
	}
}

func TestDriftSign(t *testing.T) {
	// Growth from size i is impossible once Tr >= (i+1)·Tc.
	c := mustNew(t, paperParams(3.5*0.11)) // Tr = 3.5·Tc > 3·Tc
	if c.Drift(2) >= 0 {
		t.Fatalf("Drift(2) = %v, want negative at Tr = 3.5 Tc", c.Drift(2))
	}
	if c.PUp(2) != 0 {
		t.Fatalf("PUp(2) = %v, want 0 (negative drift)", c.PUp(2))
	}
	// but larger clusters can still grow
	if c.PUp(10) <= 0 {
		t.Fatalf("PUp(10) = %v, want > 0", c.PUp(10))
	}
}

func TestPDownZeroBelowHalfTc(t *testing.T) {
	// Paper §5: "we assume that Tr > Tc/2; if not, then a cluster never
	// breaks up".
	c := mustNew(t, paperParams(0.05)) // Tr < Tc/2 = 0.055
	for i := 2; i <= 20; i++ {
		if c.PDown(i) != 0 {
			t.Fatalf("PDown(%d) = %v, want 0 for Tr <= Tc/2", i, c.PDown(i))
		}
	}
	if !math.IsInf(c.G1(), 1) {
		t.Fatalf("G1 = %v, want +Inf (break-up impossible)", c.G1())
	}
	if got := c.FractionUnsynchronized(); got != 0 {
		t.Fatalf("fraction unsynchronized = %v, want 0", got)
	}
}

func TestProbabilitiesAreProbabilities(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		p := Params{
			N:  2 + r.Intn(40),
			Tp: r.Uniform(10, 300),
			Tr: r.Uniform(0, 2),
			Tc: r.Uniform(0.001, 0.5),
		}
		c, err := New(p)
		if err != nil {
			return false
		}
		for i := 1; i <= p.N; i++ {
			up, dn, st := c.PUp(i), c.PDown(i), c.PStay(i)
			if up < 0 || up > 1 || dn < 0 || dn > 1 || st < -1e-12 || st > 1+1e-12 {
				return false
			}
			if math.Abs(up+dn+st-1) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFMonotoneAndAnchored(t *testing.T) {
	c := mustNew(t, paperParams(0.1))
	f := c.F()
	if f[1] != 0 {
		t.Fatalf("f(1) = %v", f[1])
	}
	if f[2] != 19 {
		t.Fatalf("f(2) = %v, want configured 19", f[2])
	}
	for i := 2; i <= 20; i++ {
		if f[i] < f[i-1] {
			t.Fatalf("f not monotone at %d: %v < %v", i, f[i], f[i-1])
		}
	}
	if math.IsInf(f[20], 1) {
		t.Fatal("f(N) infinite for Tr = 0.1")
	}
}

func TestGMonotoneAndAnchored(t *testing.T) {
	c := mustNew(t, paperParams(0.3))
	g := c.G()
	if g[20] != 0 {
		t.Fatalf("g(N) = %v", g[20])
	}
	for i := 1; i < 20; i++ {
		if g[i] < g[i+1] {
			t.Fatalf("g not monotone at %d: %v < %v", i, g[i], g[i+1])
		}
	}
	if math.IsInf(g[1], 1) {
		t.Fatal("g(1) infinite for Tr = 0.3")
	}
}

// TestPaperRecursionMatchesExact: with the conditional wait time the
// paper's Eq 3/5 recursions are algebraically identical to the exact
// birth–death solver.
func TestPaperRecursionMatchesExact(t *testing.T) {
	for _, tr := range []float64{0.08, 0.1, 0.2, 0.3} {
		c := mustNew(t, paperParams(tr))
		f, pf := c.F(), c.PaperF(TConditional)
		for i := 1; i <= 20; i++ {
			if relDiff(f[i], pf[i]) > 1e-6 {
				t.Fatalf("Tr=%v: PaperF(%d) = %v, exact = %v", tr, i, pf[i], f[i])
			}
		}
		g, pg := c.G(), c.PaperG(TConditional)
		for i := 1; i <= 20; i++ {
			if relDiff(g[i], pg[i]) > 1e-6 {
				t.Fatalf("Tr=%v: PaperG(%d) = %v, exact = %v", tr, i, pg[i], g[i])
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestPrintedTUnderestimates: the printed t(j,·) formulas are
// P(move)·E[wait] ≤ E[wait], so the printed-variant times are never larger.
func TestPrintedTUnderestimates(t *testing.T) {
	c := mustNew(t, paperParams(0.2))
	f, pf := c.PaperF(TConditional), c.PaperF(TPrinted)
	for i := 3; i <= 20; i++ {
		if pf[i] > f[i]+1e-9 {
			t.Fatalf("printed f(%d) = %v exceeds conditional %v", i, pf[i], f[i])
		}
	}
	g, pg := c.PaperG(TConditional), c.PaperG(TPrinted)
	for i := 1; i <= 18; i++ {
		if pg[i] > g[i]+1e-9 {
			t.Fatalf("printed g(%d) = %v exceeds conditional %v", i, pg[i], g[i])
		}
	}
}

// TestGIndependentOfF2P12: the paper notes g does not depend on p(1,2) or
// f(2).
func TestGIndependentOfF2P12(t *testing.T) {
	a := mustNew(t, Params{N: 20, Tp: 121, Tr: 0.3, Tc: 0.11, F2: 19, P12: 0.05})
	b := mustNew(t, Params{N: 20, Tp: 121, Tr: 0.3, Tc: 0.11, F2: 500, P12: 0.9})
	ga, gb := a.G(), b.G()
	for i := 1; i <= 20; i++ {
		if ga[i] != gb[i] {
			t.Fatalf("g(%d) depends on f2/p12: %v vs %v", i, ga[i], gb[i])
		}
	}
}

// TestFNGrowsWithTr / TestG1ShrinksWithTr: the paper's Figure 12 shape —
// more randomness makes synchronization slower to form and faster to break.
func TestFNGrowsWithTr(t *testing.T) {
	prev := 0.0
	// Note 0.33 = 3·Tc exactly zeroes the size-2 drift and makes FN
	// infinite, so the sweep stays strictly below it.
	for _, tr := range []float64{0.07, 0.11, 0.22, 0.32} {
		c := mustNew(t, paperParams(tr))
		fn := c.FN()
		if math.IsInf(fn, 1) {
			t.Fatalf("FN infinite at Tr=%v", tr)
		}
		if fn <= prev {
			t.Fatalf("FN not increasing at Tr=%v: %v <= %v", tr, fn, prev)
		}
		prev = fn
	}
}

func TestG1ShrinksWithTr(t *testing.T) {
	prev := math.Inf(1)
	for _, tr := range []float64{0.1, 0.2, 0.3, 0.44} {
		c := mustNew(t, paperParams(tr))
		g1 := c.G1()
		if g1 >= prev {
			t.Fatalf("G1 not decreasing at Tr=%v: %v >= %v", tr, g1, prev)
		}
		prev = g1
	}
}

// TestFractionTransition reproduces the Figure 14 shape: the fraction of
// time unsynchronized jumps from ~0 to ~1 over a narrow Tr band.
func TestFractionTransition(t *testing.T) {
	lo := mustNew(t, paperParams(0.6*0.11)) // low randomization region
	hi := mustNew(t, paperParams(3.0*0.11)) // high randomization region
	if f := lo.FractionUnsynchronized(); f > 0.1 {
		t.Fatalf("fraction at Tr=0.6Tc = %v, want ~0 (predominately synchronized)", f)
	}
	if f := hi.FractionUnsynchronized(); f < 0.9 {
		t.Fatalf("fraction at Tr=3Tc = %v, want ~1 (predominately unsynchronized)", f)
	}
}

// TestFractionMonotoneInTr: more randomness never decreases the fraction
// of time unsynchronized.
func TestFractionMonotoneInTr(t *testing.T) {
	prev := -1.0
	for tr := 0.06; tr <= 0.5; tr += 0.02 {
		c := mustNew(t, paperParams(tr))
		f := c.FractionUnsynchronized()
		if math.IsNaN(f) {
			t.Fatalf("NaN fraction at Tr=%v", tr)
		}
		if f < prev-1e-9 {
			t.Fatalf("fraction decreased at Tr=%v: %v < %v", tr, f, prev)
		}
		prev = f
	}
}

// TestFractionTransitionInN reproduces the Figure 15 shape: with Tr fixed
// at 0.3 s, adding routers flips the system from predominately
// unsynchronized to predominately synchronized.
func TestFractionTransitionInN(t *testing.T) {
	frac := func(n int) float64 {
		c := mustNew(t, Params{N: n, Tp: 121, Tr: 0.3, Tc: 0.11, F2: 19})
		return c.FractionUnsynchronized()
	}
	small, large := frac(5), frac(28)
	if small < 0.9 {
		t.Fatalf("fraction at N=5 = %v, want ~1", small)
	}
	if large > 0.1 {
		t.Fatalf("fraction at N=28 = %v, want ~0", large)
	}
	// and monotone in between (up to the p(1,2) estimator's numerical
	// integration wiggle, hence the loose tolerance)
	prev := 2.0
	for n := 4; n <= 28; n += 2 {
		f := frac(n)
		if f > prev+1e-4 {
			t.Fatalf("fraction increased with N at %d: %v > %v", n, f, prev)
		}
		prev = f
	}
}

func TestFNInfiniteAtHighTr(t *testing.T) {
	// Tr >= 3·Tc makes growth from size 2 impossible: f(N) = +Inf and the
	// system is unsynchronized essentially forever (Figure 12's right
	// region, clamped at the paper's 10^12 s axis).
	c := mustNew(t, paperParams(3.3*0.11))
	if !math.IsInf(c.FN(), 1) {
		t.Fatalf("FN = %v, want +Inf at Tr = 3.3 Tc", c.FN())
	}
	if f := c.FractionUnsynchronized(); f != 1 {
		t.Fatalf("fraction = %v, want 1", f)
	}
}

func TestRoundSeconds(t *testing.T) {
	c := mustNew(t, paperParams(0.1))
	if c.RoundSeconds() != 121.11 {
		t.Fatalf("RoundSeconds = %v", c.RoundSeconds())
	}
}

func TestResolvedDefaults(t *testing.T) {
	c := mustNew(t, Params{N: 20, Tp: 121, Tr: 0.1, Tc: 0.11})
	if c.ResolvedP12() <= 0 || c.ResolvedP12() > 1 {
		t.Fatalf("estimated p12 = %v", c.ResolvedP12())
	}
	want := 1 / c.ResolvedP12()
	if math.Abs(c.ResolvedF2()-want) > 1e-9 {
		t.Fatalf("ResolvedF2 = %v, want 1/p12 = %v", c.ResolvedF2(), want)
	}
	// explicit values pass through
	c2 := mustNew(t, Params{N: 20, Tp: 121, Tr: 0.1, Tc: 0.11, P12: 0.25, F2: 40})
	if c2.ResolvedP12() != 0.25 || c2.ResolvedF2() != 40 {
		t.Fatalf("explicit p12/f2 not honored: %v/%v", c2.ResolvedP12(), c2.ResolvedF2())
	}
}

func TestTransitionMatrix(t *testing.T) {
	c := mustNew(t, paperParams(0.2))
	m := c.TransitionMatrix()
	if len(m) != 21 {
		t.Fatalf("matrix size %d", len(m))
	}
	for i := 1; i <= 20; i++ {
		var row float64
		for j := 1; j <= 20; j++ {
			if m[i][j] < 0 {
				t.Fatalf("negative entry m[%d][%d] = %v", i, j, m[i][j])
			}
			if j < i-1 || j > i+1 {
				if m[i][j] != 0 {
					t.Fatalf("non-tridiagonal entry m[%d][%d] = %v", i, j, m[i][j])
				}
			}
			row += m[i][j]
		}
		if math.Abs(row-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, row)
		}
	}
}

func TestStationarySumsToOne(t *testing.T) {
	c := mustNew(t, paperParams(0.2))
	pi := c.Stationary()
	if pi == nil {
		t.Fatal("nil stationary distribution")
	}
	var sum float64
	for i := 1; i <= 20; i++ {
		if pi[i] < 0 {
			t.Fatalf("negative pi[%d] = %v", i, pi[i])
		}
		sum += pi[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("stationary sums to %v", sum)
	}
}

func TestStationaryDetailedBalance(t *testing.T) {
	c := mustNew(t, paperParams(0.25))
	pi := c.Stationary()
	for i := 1; i < 20; i++ {
		lhs := pi[i] * c.PUp(i)
		rhs := pi[i+1] * c.PDown(i+1)
		if relDiff(lhs, rhs) > 1e-6 && math.Max(lhs, rhs) > 1e-300 {
			t.Fatalf("detailed balance violated at %d: %v vs %v", i, lhs, rhs)
		}
	}
}

// TestStationaryMatchesFractionQualitatively: in the high-randomization
// region the stationary mass concentrates on small clusters, and in the
// low region on large ones.
func TestStationaryMatchesFractionQualitatively(t *testing.T) {
	mass := func(tr float64, loStates int) float64 {
		c := mustNew(t, paperParams(tr))
		pi := c.Stationary()
		var m float64
		for i := 1; i <= loStates; i++ {
			m += pi[i]
		}
		return m
	}
	if m := mass(3.0*0.11, 5); m < 0.9 {
		t.Fatalf("high-Tr small-cluster mass = %v, want ~1", m)
	}
	if m := mass(0.6*0.11, 5); m > 0.1 {
		t.Fatalf("low-Tr small-cluster mass = %v, want ~0", m)
	}
}

func TestEstimateP12Behaviour(t *testing.T) {
	// More routers pack the phase space tighter: p(1,2) grows with N.
	pSmall := EstimateP12(5, 121, 0.1, 0.11)
	pLarge := EstimateP12(40, 121, 0.1, 0.11)
	if !(pLarge > pSmall) {
		t.Fatalf("p12 not increasing in N: %v vs %v", pSmall, pLarge)
	}
	// Degenerate inputs
	if EstimateP12(1, 121, 0.1, 0.11) != 0 {
		t.Fatal("p12 with one router should be 0")
	}
	if EstimateP12(20, 0, 0.1, 0.11) != 0 {
		t.Fatal("p12 with Tp=0 should be 0")
	}
	// Tr = 0: pairs merge only if the initial gap is below Tc
	p := EstimateP12(20, 121, 0, 0.11)
	if p <= 0 || p > 1 {
		t.Fatalf("p12 at Tr=0 = %v", p)
	}
}

func TestEstimateP12InUnitRange(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		p := EstimateP12(2+r.Intn(50), r.Uniform(1, 300), r.Uniform(0, 5), r.Uniform(0, 1))
		return p >= 0 && p <= 1
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHitUpDownPositive(t *testing.T) {
	c := mustNew(t, paperParams(0.2))
	h := c.HitUp()
	for i := 1; i <= 19; i++ {
		if !(h[i] > 0) {
			t.Fatalf("h(%d) = %v, want > 0", i, h[i])
		}
	}
	d := c.HitDown()
	for i := 2; i <= 20; i++ {
		if !(d[i] > 0) {
			t.Fatalf("d(%d) = %v, want > 0", i, d[i])
		}
	}
	// d(N) = 1/p(N,N−1) exactly
	if relDiff(d[20], 1/c.PDown(20)) > 1e-12 {
		t.Fatalf("d(N) = %v, want %v", d[20], 1/c.PDown(20))
	}
}
