package markov

import (
	"math"

	"routesync/internal/rng"
)

// This file adds a Monte-Carlo simulator of the chain itself — not of the
// Periodic Messages system, but of the abstract birth–death process the
// paper defines. It closes a three-way validation loop: the exact solver
// (F/G), the paper's printed recursions (PaperF/PaperG), and direct
// stochastic simulation of the chain must all agree; the Periodic
// Messages system simulation is then the only place where a discrepancy
// can carry modeling meaning.

// StepFrom samples the next state from state i using the supplied source.
func (c *Chain) StepFrom(i int, r *rng.Source) int {
	if i < 1 || i > c.p.N {
		panic("markov: state out of range")
	}
	u := r.Float64()
	if u < c.up[i] {
		return i + 1
	}
	if u < c.up[i]+c.dn[i] {
		return i - 1
	}
	return i
}

// MCResult is a Monte-Carlo hitting-time estimate.
type MCResult struct {
	// MeanRounds is the sample mean of the hitting time, in rounds.
	MeanRounds float64
	// StdErr is the standard error of the mean.
	StdErr float64
	// Reached counts trials that hit the target before maxRounds.
	Reached int
	// Trials is the number of trials run.
	Trials int
}

// MCHitTime estimates the expected rounds for the chain to first reach
// state `to` starting from state `from`, by simulating `trials`
// trajectories capped at maxRounds each. Trials that do not reach the
// target are excluded from the mean (and visible via Reached < Trials).
func (c *Chain) MCHitTime(from, to, trials int, maxRounds uint64, seed int64) MCResult {
	if from < 1 || from > c.p.N || to < 1 || to > c.p.N {
		panic("markov: state out of range")
	}
	if trials < 1 {
		panic("markov: need at least one trial")
	}
	r := rng.New(seed)
	var sum, sumSq float64
	reached := 0
	for t := 0; t < trials; t++ {
		state := from
		var rounds uint64
		for state != to && rounds < maxRounds {
			state = c.StepFrom(state, r)
			rounds++
		}
		if state == to {
			reached++
			x := float64(rounds)
			sum += x
			sumSq += x * x
		}
	}
	res := MCResult{Reached: reached, Trials: trials}
	if reached > 0 {
		mean := sum / float64(reached)
		res.MeanRounds = mean
		if reached > 1 {
			variance := (sumSq - sum*sum/float64(reached)) / float64(reached-1)
			if variance > 0 {
				res.StdErr = math.Sqrt(variance / float64(reached))
			}
		}
	} else {
		res.MeanRounds = math.Inf(1)
	}
	return res
}

// Evolve propagates a distribution over states through `rounds`
// transitions of the chain: dist' = dist·P, repeated. dist is indexed
// 1..N (index 0 ignored) and must sum to ~1 over those entries. The
// returned distribution is freshly allocated. This is the transient
// counterpart of Stationary — it answers "where is the system likely to
// be t rounds after a restart?" without simulation.
func (c *Chain) Evolve(dist []float64, rounds uint64) []float64 {
	n := c.p.N
	if len(dist) != n+1 {
		panic("markov: Evolve distribution length must be N+1")
	}
	cur := append([]float64(nil), dist...)
	next := make([]float64, n+1)
	for t := uint64(0); t < rounds; t++ {
		for i := range next {
			next[i] = 0
		}
		for i := 1; i <= n; i++ {
			p := cur[i]
			if p == 0 {
				continue
			}
			next[i] += p * c.PStay(i)
			if i > 1 {
				next[i-1] += p * c.dn[i]
			}
			if i < n {
				next[i+1] += p * c.up[i]
			}
		}
		cur, next = next, cur
	}
	return cur
}

// PointMass returns the distribution concentrated on one state, shaped
// for Evolve.
func (c *Chain) PointMass(state int) []float64 {
	if state < 1 || state > c.p.N {
		panic("markov: state out of range")
	}
	d := make([]float64, c.p.N+1)
	d[state] = 1
	return d
}

// MCOccupancy estimates the long-run fraction of rounds spent in states
// <= loStates by simulating one long trajectory from the given start
// state (with a 10% burn-in discarded). It is the Monte-Carlo
// counterpart of both Stationary and FractionUnsynchronized.
func (c *Chain) MCOccupancy(start, loStates int, rounds uint64, seed int64) float64 {
	if start < 1 || start > c.p.N {
		panic("markov: state out of range")
	}
	r := rng.New(seed)
	burn := rounds / 10
	state := start
	var inLo, counted uint64
	for t := uint64(0); t < rounds; t++ {
		state = c.StepFrom(state, r)
		if t < burn {
			continue
		}
		counted++
		if state <= loStates {
			inLo++
		}
	}
	if counted == 0 {
		return math.NaN()
	}
	return float64(inLo) / float64(counted)
}
