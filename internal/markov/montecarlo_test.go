package markov

import (
	"math"
	"testing"

	"routesync/internal/rng"
)

// TestMCAgreesWithExactG: Monte-Carlo hitting time N→1 matches the exact
// g(1) within sampling error. Down-hitting at a Tr where break-up is
// fast keeps the run cheap.
func TestMCAgreesWithExactG(t *testing.T) {
	c := mustNew(t, paperParams(0.35))
	exact := c.G1()
	mc := c.MCHitTime(20, 1, 400, 10_000_000, 7)
	if mc.Reached != mc.Trials {
		t.Fatalf("only %d/%d trials reached state 1", mc.Reached, mc.Trials)
	}
	if math.Abs(mc.MeanRounds-exact) > 5*mc.StdErr+0.05*exact {
		t.Fatalf("MC %.1f ± %.1f rounds vs exact %.1f", mc.MeanRounds, mc.StdErr, exact)
	}
}

// TestMCAgreesWithExactHitUp: the up-step 2→3 at moderate Tr, including
// excursions down to state 1 and back. The recursion h(2) = (1+q·h(1))/p
// prices the 1→2 return at h(1) = f(2); that matches the chain's own
// dynamics (a geometric 1/p(1,2) wait in state 1) exactly when f(2) is
// left to its 1/p(1,2) default, so the chain is built without an
// explicit F2.
func TestMCAgreesWithExactHitUp(t *testing.T) {
	c := mustNew(t, Params{N: 20, Tp: 121, Tr: 0.15, Tc: 0.11})
	exact := c.HitUp()[2]
	mc := c.MCHitTime(2, 3, 2000, 1_000_000, 11)
	if mc.Reached != mc.Trials {
		t.Fatalf("only %d/%d trials reached", mc.Reached, mc.Trials)
	}
	if math.Abs(mc.MeanRounds-exact) > 5*mc.StdErr+0.05*exact {
		t.Fatalf("MC %.1f ± %.2f vs exact %.1f", mc.MeanRounds, mc.StdErr, exact)
	}
}

// TestMCOccupancyMatchesStationary: long-run occupancy of low states
// matches the detailed-balance stationary distribution.
func TestMCOccupancyMatchesStationary(t *testing.T) {
	c := mustNew(t, paperParams(0.25))
	pi := c.Stationary()
	var exact float64
	for i := 1; i <= 5; i++ {
		exact += pi[i]
	}
	got := c.MCOccupancy(5, 5, 3_000_000, 13)
	if math.Abs(got-exact) > 0.03 {
		t.Fatalf("MC occupancy %.3f vs stationary %.3f", got, exact)
	}
}

func TestMCUnreachableTarget(t *testing.T) {
	// Tr below Tc/2: break-up impossible; hitting 1 from 20 never happens.
	c := mustNew(t, paperParams(0.05))
	mc := c.MCHitTime(20, 1, 5, 10_000, 3)
	if mc.Reached != 0 || !math.IsInf(mc.MeanRounds, 1) {
		t.Fatalf("unreachable target produced %+v", mc)
	}
}

func TestStepFromDistribution(t *testing.T) {
	c := mustNew(t, paperParams(0.2))
	r := rng.New(5)
	const trials = 200000
	up, down, stay := 0, 0, 0
	const state = 5
	for i := 0; i < trials; i++ {
		switch c.StepFrom(state, r) {
		case state + 1:
			up++
		case state - 1:
			down++
		case state:
			stay++
		default:
			t.Fatal("chain jumped more than one state")
		}
	}
	checkFrac := func(name string, got int, want float64) {
		f := float64(got) / trials
		if math.Abs(f-want) > 0.01 {
			t.Fatalf("%s fraction %.4f, want %.4f", name, f, want)
		}
	}
	checkFrac("up", up, c.PUp(state))
	checkFrac("down", down, c.PDown(state))
	checkFrac("stay", stay, c.PStay(state))
}

func TestMCPanics(t *testing.T) {
	c := mustNew(t, paperParams(0.2))
	for _, f := range []func(){
		func() { c.StepFrom(0, rng.New(1)) },
		func() { c.MCHitTime(0, 1, 10, 100, 1) },
		func() { c.MCHitTime(1, 99, 10, 100, 1) },
		func() { c.MCHitTime(1, 2, 0, 100, 1) },
		func() { c.MCOccupancy(0, 3, 100, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEvolveConservesMass(t *testing.T) {
	c := mustNew(t, paperParams(0.2))
	d := c.Evolve(c.PointMass(20), 1000)
	var sum float64
	for i := 1; i <= 20; i++ {
		if d[i] < -1e-15 {
			t.Fatalf("negative mass at %d: %v", i, d[i])
		}
		sum += d[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mass = %v", sum)
	}
}

func TestEvolveConvergesToStationary(t *testing.T) {
	c := mustNew(t, paperParams(0.25))
	pi := c.Stationary()
	d := c.Evolve(c.PointMass(10), 2_000_000)
	for i := 1; i <= 20; i++ {
		if math.Abs(d[i]-pi[i]) > 0.01 {
			t.Fatalf("state %d: evolved %v vs stationary %v", i, d[i], pi[i])
		}
	}
}

func TestEvolveMatchesMCOccupancy(t *testing.T) {
	// Transient occupancy of low states from a synchronized start agrees
	// between matrix evolution and Monte Carlo.
	c := mustNew(t, paperParams(0.3))
	const rounds = 5000
	d := c.Evolve(c.PointMass(20), rounds)
	var lowMass float64
	for i := 1; i <= 5; i++ {
		lowMass += d[i]
	}
	// MC: fraction of trajectories in low states at round `rounds`.
	r := rng.New(21)
	inLow := 0
	const trials = 3000
	for tr := 0; tr < trials; tr++ {
		state := 20
		for k := 0; k < rounds; k++ {
			state = c.StepFrom(state, r)
		}
		if state <= 5 {
			inLow++
		}
	}
	got := float64(inLow) / trials
	if math.Abs(got-lowMass) > 0.04 {
		t.Fatalf("MC low-state mass %v vs evolved %v", got, lowMass)
	}
}

func TestEvolvePanics(t *testing.T) {
	c := mustNew(t, paperParams(0.2))
	for _, f := range []func(){
		func() { c.Evolve(make([]float64, 3), 10) },
		func() { c.PointMass(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
