package markov

import "math"

// waitConditional returns the expected rounds the chain spends in state j
// before its next move, 1/(p(j,j−1)+p(j,j+1)). For a Markov chain the wait
// is geometric and independent of the move's direction, so this is the
// conditional move time t(j,j±1) the Eq 3/5 derivations need.
func (c *Chain) waitConditional(j int) float64 {
	tot := c.dn[j] + c.up[j]
	if tot == 0 {
		return math.Inf(1)
	}
	return 1 / tot
}

// tPrinted returns the paper's printed formula for t(j,j±1):
//
//	t(j,j+1) = p(j,j+1) / (p(j,j−1)+p(j,j+1))²
//	t(j,j−1) = p(j,j−1) / (p(j,j−1)+p(j,j+1))²
//
// These equal P(move in that direction) × E[wait], i.e. the *joint*
// expectation rather than the conditional one; substituting them into the
// Eq 3/5 recursions yields systematically smaller times. Both variants are
// exposed so the ablation (DESIGN.md A2) can quantify the difference.
func (c *Chain) tPrinted(j int, up bool) float64 {
	tot := c.dn[j] + c.up[j]
	if tot == 0 {
		return math.Inf(1)
	}
	num := c.dn[j]
	if up {
		num = c.up[j]
	}
	return num / (tot * tot)
}

// TVariant selects which conditional-move-time formula the printed
// recursions use.
type TVariant int

const (
	// TConditional uses t(j,·) = 1/(p(j,j−1)+p(j,j+1)), the value that
	// makes the paper's Eq 3/5 derivations exact; PaperF/PaperG then agree
	// with F/G to floating-point error.
	TConditional TVariant = iota
	// TPrinted uses the formulas as printed in the paper (§5.2).
	TPrinted
)

func (c *Chain) tval(j int, up bool, v TVariant) float64 {
	if v == TPrinted {
		return c.tPrinted(j, up)
	}
	return c.waitConditional(j)
}

// PaperF evaluates f(i) for i in 1..N via the paper's Eq 3 recursion
//
//	f(i) − ((p↓+p↑)/p↑)·f(i−1) + (p↓/p↑)·f(i−2) = c(i)
//	c(i) = t(i−1,i) + (p↓/p↑)·t(i−1,i−2)
//
// with p↓ = p(i−1,i−2), p↑ = p(i−1,i), f(1) = 0 and f(2) as configured,
// solved forward instead of through the paper's Eq 4 closed form (the two
// are algebraically equivalent; forward solution avoids the nested
// products' overflow). The v parameter picks the t(j,·) variant.
func (c *Chain) PaperF(v TVariant) []float64 {
	n := c.p.N
	f := make([]float64, n+1)
	if n < 2 {
		return f
	}
	f[1] = 0
	f[2] = c.f2
	for i := 3; i <= n; i++ {
		pDn := c.dn[i-1] // p(i−1,i−2)
		pUp := c.up[i-1] // p(i−1,i)
		if pUp == 0 {
			f[i] = math.Inf(1)
			continue
		}
		ci := c.tval(i-1, true, v) + (pDn/pUp)*c.tval(i-1, false, v)
		f[i] = ci + ((pDn+pUp)/pUp)*f[i-1] - (pDn/pUp)*f[i-2]
		if math.IsNaN(f[i]) { // Inf−Inf from an upstream impossible step
			f[i] = math.Inf(1)
		}
	}
	return f
}

// PaperG evaluates g(i) for i in 1..N via the paper's Eq 5 recursion
//
//	g(i) − ((p↑+p↓)/p↓)·g(i+1) + (p↑/p↓)·g(i+2) = d(i)
//	d(i) = t(i+1,i) + (p↑/p↓)·t(i+1,i+2)
//
// with p↑ = p(i+1,i+2), p↓ = p(i+1,i) and g(N) = 0, solved backward. As
// the paper notes, g does not depend on p(1,2) or f(2).
func (c *Chain) PaperG(v TVariant) []float64 {
	n := c.p.N
	g := make([]float64, n+2) // g[n+1] padding = 0 for the i = n−1 step
	for i := n - 1; i >= 1; i-- {
		pUp := c.up[i+1] // p(i+1,i+2)
		pDn := c.dn[i+1] // p(i+1,i)
		if pDn == 0 {
			g[i] = math.Inf(1)
			continue
		}
		di := c.tval(i+1, false, v) + (pUp/pDn)*c.tval(i+1, true, v)
		g[i] = di + ((pUp+pDn)/pDn)*g[i+1] - (pUp/pDn)*g[i+2]
		if math.IsNaN(g[i]) {
			g[i] = math.Inf(1)
		}
	}
	return g[:n+1]
}

// EstimateP12 estimates p(1,2): the per-round probability that some pair
// of lone routers merges. The paper leaves p(1,2) as a variable ("p(1,2)
// depends largely on Tr, the random change in the timer-offsets from one
// round to the next") and uses an unpublished approximate analysis for
// f(2); this estimator is our documented substitute (DESIGN.md §3.2).
//
// Model: adjacent lone routers are separated by an Exp(Tp/N) gap G (the
// paper's §5 spacing assumption with i = 1). In one round their relative
// displacement Δ is the difference of two independent U[−Tr, Tr] draws — a
// symmetric triangular variate on [−2Tr, 2Tr]. A pair merges when the new
// gap G + Δ falls below Tc. The per-pair probability is
// E[ P(Δ < Tc − G) ], integrated numerically over G, and with N routers
// there are N adjacent pairs, any of which may merge:
//
//	p(1,2) ≈ 1 − (1 − pPair)^N
//
// The estimate is clamped to [0, 1]; Tr = 0 yields pPair = P(G < Tc).
func EstimateP12(n int, tp, tr, tc float64) float64 {
	if n < 2 || tp <= 0 {
		return 0
	}
	mean := tp / float64(n)
	cdfTri := func(x float64) float64 { // CDF of triangular on [−2Tr, 2Tr]
		if tr == 0 {
			if x < 0 {
				return 0
			}
			return 1
		}
		w := 2 * tr
		switch {
		case x <= -w:
			return 0
		case x >= w:
			return 1
		case x <= 0:
			return (x + w) * (x + w) / (2 * w * w)
		default:
			return 1 - (w-x)*(w-x)/(2*w*w)
		}
	}
	// pPair = ∫_0^∞ (1/mean)·e^{−g/mean} · CDF_Δ(Tc − g) dg, trapezoid on
	// [0, hi] where the integrand is non-negligible.
	hi := tc + 2*tr + 10*mean
	const steps = 4000
	dg := hi / steps
	var acc float64
	for k := 0; k <= steps; k++ {
		g := float64(k) * dg
		w := 1.0
		if k == 0 || k == steps {
			w = 0.5
		}
		acc += w * math.Exp(-g/mean) / mean * cdfTri(tc-g)
	}
	pPair := acc * dg
	if pPair < 0 {
		pPair = 0
	}
	if pPair > 1 {
		pPair = 1
	}
	p := 1 - math.Pow(1-pPair, float64(n))
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}
