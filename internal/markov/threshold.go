package markov

import "math"

// CriticalTr locates the paper's transition threshold for a parameter
// set: the random component Tr at which the long-run fraction of time
// unsynchronized crosses 1/2. Below the returned value the system is
// predominately synchronized, above it predominately unsynchronized —
// the quantitative form of the paper's "clearly defined transition
// threshold" (§1).
//
// The fraction is monotone nondecreasing in Tr (more randomness never
// helps synchronization), so bisection on [Tc/2+ε, hi] suffices. The
// search returns:
//
//   - (tr, true) when the crossing lies inside the bracket;
//   - (0, false) if the system is already unsynchronized at the lower
//     edge (no threshold: any randomness suffices);
//   - (+Inf, false) if it is still synchronized at hi (the threshold
//     lies beyond the bracket).
//
// hi <= 0 selects Tp/2, the largest meaningful jitter.
func CriticalTr(n int, tp, tc, hi float64) (float64, bool) {
	if n < 2 || tp <= 0 || tc <= 0 {
		panic("markov: CriticalTr needs n >= 2, tp > 0, tc > 0")
	}
	if hi <= 0 {
		hi = tp / 2
	}
	frac := func(tr float64) float64 {
		ch, err := New(Params{N: n, Tp: tp, Tr: tr, Tc: tc})
		if err != nil {
			return math.NaN()
		}
		return ch.FractionUnsynchronized()
	}
	lo := tc/2 + 1e-9
	if frac(lo) >= 0.5 {
		return 0, false
	}
	if frac(hi) < 0.5 {
		return math.Inf(1), false
	}
	for i := 0; i < 200 && hi-lo > 1e-9*math.Max(1, hi); i++ {
		mid := (lo + hi) / 2
		if frac(mid) < 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}

// CriticalN locates the router count at which the network flips from
// predominately unsynchronized to predominately synchronized for a fixed
// Tr — the paper's "the addition of a single router will convert a
// completely unsynchronized traffic stream into a completely synchronized
// one" (§1), as a function. It returns the smallest N in [2, maxN] whose
// fraction unsynchronized is below 1/2, or (0, false) if none is.
func CriticalN(tp, tr, tc float64, maxN int) (int, bool) {
	if tp <= 0 || tr < 0 || tc <= 0 || maxN < 2 {
		panic("markov: CriticalN needs positive parameters and maxN >= 2")
	}
	// The fraction is monotone nonincreasing in N; binary search the
	// first N below 1/2.
	frac := func(n int) float64 {
		ch, err := New(Params{N: n, Tp: tp, Tr: tr, Tc: tc})
		if err != nil {
			return math.NaN()
		}
		return ch.FractionUnsynchronized()
	}
	if frac(maxN) >= 0.5 {
		return 0, false
	}
	lo, hi := 2, maxN // frac(lo) may already be < 0.5
	if frac(lo) < 0.5 {
		return lo, true
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if frac(mid) < 0.5 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}
