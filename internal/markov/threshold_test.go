package markov

import (
	"math"
	"testing"
)

func TestCriticalTrPaperParams(t *testing.T) {
	// For the paper's N=20, Tp=121, Tc=0.11 the Fig 14 transition sits
	// near 1.9·Tc.
	tr, ok := CriticalTr(20, 121, 0.11, 0)
	if !ok {
		t.Fatalf("no threshold found: %v", tr)
	}
	mult := tr / 0.11
	if mult < 1.5 || mult > 2.3 {
		t.Fatalf("critical Tr = %.3f (%.2f·Tc), want ~1.9·Tc", tr, mult)
	}
	// Verify it is actually the crossing.
	below, _ := New(Params{N: 20, Tp: 121, Tr: tr * 0.95, Tc: 0.11})
	above, _ := New(Params{N: 20, Tp: 121, Tr: tr * 1.05, Tc: 0.11})
	if below.FractionUnsynchronized() >= 0.5 {
		t.Fatalf("fraction below threshold = %v", below.FractionUnsynchronized())
	}
	if above.FractionUnsynchronized() < 0.5 {
		t.Fatalf("fraction above threshold = %v", above.FractionUnsynchronized())
	}
}

func TestCriticalTrGrowsWithN(t *testing.T) {
	// More routers need more randomness to stay unsynchronized.
	prev := 0.0
	for _, n := range []int{10, 20, 30, 40} {
		tr, ok := CriticalTr(n, 121, 0.11, 0)
		if !ok {
			t.Fatalf("no threshold at N=%d", n)
		}
		if tr <= prev {
			t.Fatalf("critical Tr not increasing: N=%d gives %v after %v", n, tr, prev)
		}
		prev = tr
	}
}

func TestCriticalTrPARCExample(t *testing.T) {
	// The §1 worked example: Tp=90, Tc=0.3 → threshold near 1 s.
	tr, ok := CriticalTr(20, 90, 0.3, 0)
	if !ok {
		t.Fatal("no threshold for PARC parameters")
	}
	if tr < 0.5 || tr > 1.5 {
		t.Fatalf("PARC critical Tr = %v, want ~1 s", tr)
	}
}

func TestCriticalTrNoBracket(t *testing.T) {
	// A tiny hi bracket below the threshold reports +Inf, not a bogus value.
	tr, ok := CriticalTr(20, 121, 0.11, 0.12)
	if ok || !math.IsInf(tr, 1) {
		t.Fatalf("got %v, %v; want +Inf, false", tr, ok)
	}
}

func TestCriticalNPaperParams(t *testing.T) {
	// Fig 15: at Tr=0.3, the flip happens near N=27.
	n, ok := CriticalN(121, 0.3, 0.11, 100)
	if !ok {
		t.Fatal("no critical N found")
	}
	if n < 25 || n > 29 {
		t.Fatalf("critical N = %d, want ~27", n)
	}
	// Check the flip property at the boundary.
	below, _ := New(Params{N: n - 1, Tp: 121, Tr: 0.3, Tc: 0.11})
	at, _ := New(Params{N: n, Tp: 121, Tr: 0.3, Tc: 0.11})
	if below.FractionUnsynchronized() < 0.5 {
		t.Fatalf("N-1 already synchronized: %v", below.FractionUnsynchronized())
	}
	if at.FractionUnsynchronized() >= 0.5 {
		t.Fatalf("N not synchronized: %v", at.FractionUnsynchronized())
	}
}

func TestCriticalNNotFound(t *testing.T) {
	// Massive jitter: no reasonable N synchronizes.
	n, ok := CriticalN(121, 60, 0.11, 60)
	if ok || n != 0 {
		t.Fatalf("got %d, %v; want 0, false", n, ok)
	}
}

func TestCriticalPanics(t *testing.T) {
	for _, f := range []func(){
		func() { CriticalTr(1, 121, 0.11, 0) },
		func() { CriticalTr(20, 0, 0.11, 0) },
		func() { CriticalN(121, 0.3, 0.11, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
