package netsim

// CPUMode selects how a busy router CPU treats the forwarding path.
type CPUMode int

const (
	// CPUModeLegacy stalls forwarding while the CPU is occupied with
	// routing-update work — the pre-fix NEARnet behaviour that caused the
	// paper's Figure 1 losses. Arriving data packets wait in a bounded
	// input queue; overflow is dropped.
	CPUModeLegacy CPUMode = iota
	// CPUModeFixed lets forwarding proceed during update processing —
	// the post-fix router software ("the router software has been
	// changed so that normal packet routing can be carried out while the
	// routers are dealing with routing update messages", §2).
	CPUModeFixed
)

// String returns the mode name.
func (m CPUMode) String() string {
	switch m {
	case CPUModeLegacy:
		return "legacy"
	case CPUModeFixed:
		return "fixed"
	default:
		return "unknown"
	}
}

// CPUConfig parameterizes a router CPU.
type CPUConfig struct {
	// Mode selects the forwarding interaction; the zero value is Legacy.
	Mode CPUMode
	// InputQueueCap bounds the packets held while the CPU blocks
	// forwarding (Legacy mode). Zero means no buffering: every packet
	// arriving during a busy period is dropped.
	InputQueueCap int
	// ForwardCost is seconds of CPU per forwarded packet (Legacy mode).
	// Zero means forwarding is free once the CPU is idle. A non-zero
	// cost makes queued packets drain serially after a routing-update
	// stall, producing the RTT ramps visible in the paper's Figure 1
	// alongside the outright drops.
	ForwardCost float64
}

// CPU models the router processor: routing-update work occupies it for
// real simulated time, serialized FIFO.
type CPU struct {
	node      *Node
	cfg       CPUConfig
	busyUntil float64
	queue     []*Packet
	drainFn   func() // hoisted method value; scheduled on every Occupy
	// TotalBusy accumulates occupied seconds, for utilization reports.
	TotalBusy float64
}

func newCPU(nd *Node, cfg CPUConfig) *CPU {
	if cfg.InputQueueCap < 0 {
		panic("netsim: negative input queue capacity")
	}
	if cfg.ForwardCost < 0 {
		panic("netsim: negative forward cost")
	}
	c := &CPU{node: nd, cfg: cfg}
	c.drainFn = c.drain
	return c
}

// Config returns the CPU configuration.
func (c *CPU) Config() CPUConfig { return c.cfg }

// Busy reports whether the CPU is currently occupied.
func (c *CPU) Busy() bool { return c.busyUntil > c.node.Now() }

// BusyUntil returns the time the current work backlog completes.
func (c *CPU) BusyUntil() float64 { return c.busyUntil }

// BlocksForwarding reports whether data packets arriving now would stall.
func (c *CPU) BlocksForwarding() bool {
	return c.cfg.Mode == CPUModeLegacy && c.Busy()
}

// Occupy appends d seconds of work to the CPU's FIFO backlog and returns
// the absolute time this work item completes. Negative d panics.
func (c *CPU) Occupy(d float64) float64 {
	if d < 0 {
		panic("netsim: negative CPU occupancy")
	}
	now := c.node.Now()
	if c.busyUntil < now {
		c.busyUntil = now
	}
	c.busyUntil += d
	c.TotalBusy += d
	done := c.busyUntil
	// Schedule a drain at this work item's completion; the drain is a
	// no-op if further work arrived in the meantime (a later drain will
	// handle the queue).
	c.node.Schedule(done, "cpu-drain", c.drainFn)
	return done
}

// OccupyThen is Occupy plus a completion callback, used by routing agents
// to re-arm their timers only after their processing finishes (the
// paper's §3 step 3 coupling).
func (c *CPU) OccupyThen(d float64, fn func()) {
	done := c.Occupy(d)
	c.node.Schedule(done, "cpu-work-done", fn)
}

// enqueueOrDrop buffers a data packet that arrived while forwarding is
// stalled, dropping on overflow.
func (c *CPU) enqueueOrDrop(pkt *Packet) {
	if len(c.queue) >= c.cfg.InputQueueCap {
		c.node.dropHere(pkt, DropCPUBusy)
		return
	}
	c.queue = append(c.queue, pkt)
}

// drain dispatches buffered packets once the CPU becomes idle. With a
// zero ForwardCost the whole queue flushes instantly; otherwise each
// packet consumes CPU and the queue drains serially (and a routing
// update arriving mid-drain stalls it again).
func (c *CPU) drain() {
	if c.Busy() {
		return // more work arrived; its own drain will run later
	}
	if c.cfg.ForwardCost == 0 {
		q := c.queue
		c.queue = nil
		for _, pkt := range q {
			c.node.dispatch(pkt)
		}
		return
	}
	if len(c.queue) == 0 {
		return
	}
	pkt := c.queue[0]
	c.queue = c.queue[1:]
	c.OccupyThen(c.cfg.ForwardCost, func() {
		c.node.dispatch(pkt)
		c.drain()
	})
}
