package netsim

// CPUMode selects how a busy router CPU treats the forwarding path.
type CPUMode int

const (
	// CPUModeLegacy stalls forwarding while the CPU is occupied with
	// routing-update work — the pre-fix NEARnet behaviour that caused the
	// paper's Figure 1 losses. Arriving data packets wait in a bounded
	// input queue; overflow is dropped.
	CPUModeLegacy CPUMode = iota
	// CPUModeFixed lets forwarding proceed during update processing —
	// the post-fix router software ("the router software has been
	// changed so that normal packet routing can be carried out while the
	// routers are dealing with routing update messages", §2).
	CPUModeFixed
)

// String returns the mode name.
func (m CPUMode) String() string {
	switch m {
	case CPUModeLegacy:
		return "legacy"
	case CPUModeFixed:
		return "fixed"
	default:
		return "unknown"
	}
}

// CPUConfig parameterizes a router CPU.
type CPUConfig struct {
	// Mode selects the forwarding interaction; the zero value is Legacy.
	Mode CPUMode
	// InputQueueCap bounds the packets held while the CPU blocks
	// forwarding (Legacy mode). Zero means no buffering: every packet
	// arriving during a busy period is dropped.
	InputQueueCap int
	// ForwardCost is seconds of CPU per forwarded packet (Legacy mode).
	// Zero means forwarding is free once the CPU is idle. A non-zero
	// cost makes queued packets drain serially after a routing-update
	// stall, producing the RTT ramps visible in the paper's Figure 1
	// alongside the outright drops.
	ForwardCost float64
}

// CPU models the router processor: routing-update work occupies it for
// real simulated time, serialized FIFO.
type CPU struct {
	node      *Node
	cfg       CPUConfig
	busyUntil float64
	// queue[qhead:] is the input queue of packets parked while forwarding
	// is stalled. The head index (instead of re-slicing from the front)
	// keeps the backing array's capacity, so enqueue/drain cycles stop
	// allocating once the queue has reached its high-water size.
	queue []*Packet
	qhead int
	// scratch is the drain double buffer: drain swaps it with queue so
	// dispatching can re-enter enqueueOrDrop without aliasing, and both
	// backing arrays are reused forever.
	scratch []*Packet
	// steps holds packets popped for per-packet ForwardCost work whose
	// cpu-work-done event has not fired yet (FIFO: completions are
	// scheduled in pop order at monotone times).
	steps   ring[*Packet]
	drainFn func() // hoisted method value; scheduled on every Occupy
	stepFn  func() // hoisted per-packet forward-cost completion
	// TotalBusy accumulates occupied seconds, for utilization reports.
	TotalBusy float64
}

func newCPU(nd *Node, cfg CPUConfig) *CPU {
	if cfg.InputQueueCap < 0 {
		panic("netsim: negative input queue capacity")
	}
	if cfg.ForwardCost < 0 {
		panic("netsim: negative forward cost")
	}
	c := &CPU{node: nd, cfg: cfg}
	c.drainFn = c.drain
	c.stepFn = func() {
		pkt := c.steps.pop()
		c.node.dispatch(pkt)
		c.drain()
	}
	return c
}

// Config returns the CPU configuration.
func (c *CPU) Config() CPUConfig { return c.cfg }

// Busy reports whether the CPU is currently occupied.
func (c *CPU) Busy() bool { return c.busyUntil > c.node.Now() }

// BusyUntil returns the time the current work backlog completes.
func (c *CPU) BusyUntil() float64 { return c.busyUntil }

// BlocksForwarding reports whether data packets arriving now would stall.
func (c *CPU) BlocksForwarding() bool {
	return c.cfg.Mode == CPUModeLegacy && c.Busy()
}

// Occupy appends d seconds of work to the CPU's FIFO backlog and returns
// the absolute time this work item completes. Negative d panics.
func (c *CPU) Occupy(d float64) float64 {
	if d < 0 {
		panic("netsim: negative CPU occupancy")
	}
	now := c.node.Now()
	if c.busyUntil < now {
		c.busyUntil = now
	}
	c.busyUntil += d
	c.TotalBusy += d
	done := c.busyUntil
	// Schedule a drain at this work item's completion; the drain is a
	// no-op if further work arrived in the meantime (a later drain will
	// handle the queue).
	c.node.Schedule(done, "cpu-drain", c.drainFn)
	return done
}

// OccupyThen is Occupy plus a completion callback, used by routing agents
// to re-arm their timers only after their processing finishes (the
// paper's §3 step 3 coupling).
func (c *CPU) OccupyThen(d float64, fn func()) {
	done := c.Occupy(d)
	c.node.Schedule(done, "cpu-work-done", fn)
}

// qlen returns the current input-queue occupancy.
func (c *CPU) qlen() int { return len(c.queue) - c.qhead }

// enqueueOrDrop buffers a data packet that arrived while forwarding is
// stalled, dropping on overflow.
func (c *CPU) enqueueOrDrop(pkt *Packet) {
	if c.qlen() >= c.cfg.InputQueueCap {
		c.node.dropHere(pkt, DropCPUBusy)
		return
	}
	c.queue = append(c.queue, pkt)
}

// flushQueue drops every queued packet (node crash), keeping the backing
// array's capacity for the node's next life.
func (c *CPU) flushQueue(why DropReason) {
	for i := c.qhead; i < len(c.queue); i++ {
		pkt := c.queue[i]
		c.queue[i] = nil
		c.node.dropHere(pkt, why)
	}
	c.queue = c.queue[:0]
	c.qhead = 0
}

// drain dispatches buffered packets once the CPU becomes idle. With a
// zero ForwardCost the whole queue flushes instantly; otherwise each
// packet consumes CPU and the queue drains serially (and a routing
// update arriving mid-drain stalls it again).
func (c *CPU) drain() {
	if c.Busy() {
		return // more work arrived; its own drain will run later
	}
	if c.cfg.ForwardCost == 0 {
		// Swap to the scratch buffer before dispatching: packets injected
		// by delivery handlers may re-enter enqueueOrDrop, which must not
		// append to the slice being iterated.
		q := c.queue[c.qhead:]
		c.queue, c.scratch = c.scratch[:0], c.queue
		c.qhead = 0
		for i, pkt := range q {
			q[i] = nil
			c.node.dispatch(pkt)
		}
		return
	}
	if c.qlen() == 0 {
		return
	}
	pkt := c.queue[c.qhead]
	c.queue[c.qhead] = nil
	c.qhead++
	if c.qhead == len(c.queue) {
		c.queue = c.queue[:0]
		c.qhead = 0
	}
	c.steps.push(pkt)
	c.OccupyThen(c.cfg.ForwardCost, c.stepFn)
}
