package netsim

import (
	"testing"
)

// linkBetweenNodes returns the point-to-point link joining a and b.
func linkBetweenNodes(a, b *Node) *Link {
	for _, m := range a.Media() {
		if l, ok := m.(*Link); ok && l.Peer(a) == b {
			return l
		}
	}
	panic("no link between nodes")
}

// TestDropReasonsExhaustive guards the fixed-array drop counters: every
// declared DropReason must round-trip through dropIndex into a distinct
// slot of dropReasons, so adding a reason without extending the index
// enum (or the table) can never silently truncate the commutative
// per-partition counter merge.
func TestDropReasonsExhaustive(t *testing.T) {
	declared := []DropReason{
		DropQueueOverflow, DropCPUBusy, DropNoRoute,
		DropTTLExpired, DropRandomLoss, DropLinkDown, DropNodeDown,
	}
	if len(declared) != numDropReasons {
		t.Fatalf("declared %d drop reasons, counter arrays sized for %d — extend the index enum",
			len(declared), numDropReasons)
	}
	seen := make(map[int]DropReason, numDropReasons)
	for _, r := range declared {
		i := dropIndex(r)
		if i < 0 || i >= numDropReasons {
			t.Fatalf("dropIndex(%q) = %d, out of [0,%d)", r, i, numDropReasons)
		}
		if prev, dup := seen[i]; dup {
			t.Fatalf("dropIndex collision: %q and %q both map to slot %d", prev, r, i)
		}
		seen[i] = r
		if dropReasons[i] != r {
			t.Fatalf("dropReasons[%d] = %q, want %q — table out of order", i, dropReasons[i], r)
		}
	}
	// The exported canonical list must agree with the declared set.
	pub := DropReasons()
	if len(pub) != numDropReasons {
		t.Fatalf("DropReasons() has %d entries, want %d", len(pub), numDropReasons)
	}
	for i, r := range pub {
		if r != declared[i] {
			t.Fatalf("DropReasons()[%d] = %q, want %q", i, r, declared[i])
		}
	}
	defer expectPanic(t, "dropIndex on unknown reason")
	dropIndex(DropReason("not-a-reason"))
}

// TestLinkScheduledFlap drives a link through FailAt/RestoreAt and
// checks packets are dropped exactly during the outage, with
// DropLinkDown accounting, and flow again after restore.
func TestLinkScheduledFlap(t *testing.T) {
	n, a, b, l := twoHosts(t, LinkConfig{Delay: 0.01})
	var arrivals []float64
	b.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { arrivals = append(arrivals, b.Now()) },
	}
	l.FailAt(1.0)
	l.RestoreAt(2.0)
	// One packet before the outage, two during, one after.
	for _, at := range []float64{0.5, 1.2, 1.7, 2.5} {
		at := at
		a.Schedule(at, "send", func() {
			n.Inject(n.NewPacket(KindData, a.ID, b.ID, 100))
		})
	}
	n.RunUntil(3)
	if len(arrivals) != 2 || arrivals[0] != 0.51 || arrivals[1] != 2.51 {
		t.Fatalf("arrivals = %v, want [0.51 2.51]", arrivals)
	}
	if c := n.Counters(); c.Drops[DropLinkDown] != 2 {
		t.Fatalf("link-down drops = %d, want 2 (counters %+v)", c.Drops[DropLinkDown], c)
	}
	if l.Down() {
		t.Fatal("link still down after RestoreAt fired")
	}
}

// TestLinkFailDropsInFlight: a packet serialized before the failure but
// still propagating when it hits is lost at the receiving end.
func TestLinkFailDropsInFlight(t *testing.T) {
	n, a, b, l := twoHosts(t, LinkConfig{Delay: 0.1})
	got := 0
	b.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { got++ },
	}
	a.Schedule(0.95, "send", func() {
		n.Inject(n.NewPacket(KindData, a.ID, b.ID, 100))
	})
	l.FailAt(1.0) // packet lands at 1.05, after the cut
	n.RunUntil(2)
	if got != 0 {
		t.Fatal("in-flight packet survived a link failure")
	}
	if c := n.Counters(); c.Drops[DropLinkDown] != 1 {
		t.Fatalf("drops = %+v, want one link-down", c.Drops)
	}
}

// TestLinkScheduledCost checks SetCostAt flips the per-end metric at the
// scheduled instant without touching packet forwarding.
func TestLinkScheduledCost(t *testing.T) {
	n, a, b, l := twoHosts(t, LinkConfig{Delay: 0.01})
	if l.CostFrom(a) != 1 || l.CostFrom(b) != 1 {
		t.Fatalf("default cost = %d/%d, want 1/1", l.CostFrom(a), l.CostFrom(b))
	}
	l.SetCostAt(1.0, 5)
	n.RunUntil(0.5)
	if l.CostFrom(a) != 1 {
		t.Fatal("cost changed before its scheduled time")
	}
	n.RunUntil(2)
	if l.CostFrom(a) != 5 || l.CostFrom(b) != 5 {
		t.Fatalf("cost after change = %d/%d, want 5/5", l.CostFrom(a), l.CostFrom(b))
	}
	got := 0
	b.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { got++ },
	}
	n.Inject(n.NewPacket(KindData, a.ID, b.ID, 100))
	n.RunUntil(3)
	if got != 1 {
		t.Fatal("metric change must not affect forwarding")
	}
}

// TestLANScheduledFailure gives broadcast segments the same failure
// semantics as links: frames transmitted or in flight during the outage
// are dropped as DropLinkDown, and traffic resumes after restore.
func TestLANScheduledFailure(t *testing.T) {
	n := NewNetwork(5)
	a := n.NewNode("a", nil)
	b := n.NewNode("b", nil)
	c := n.NewNode("c", nil)
	lan := n.NewLAN([]*Node{a, b, c}, LANConfig{Delay: 0.01})
	n.InstallStaticRoutes()
	got := 0
	b.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { got++ },
	}
	lan.FailAt(1.0)
	lan.RestoreAt(2.0)
	for _, at := range []float64{0.5, 1.5, 2.5} {
		at := at
		a.Schedule(at, "send", func() {
			n.Inject(n.NewPacket(KindData, a.ID, b.ID, 100))
		})
	}
	// In-flight loss: transmitted at 0.995, segment dies at 1.0, frame
	// would arrive at 1.005.
	a.Schedule(0.995, "send", func() {
		n.Inject(n.NewPacket(KindData, a.ID, b.ID, 100))
	})
	n.RunUntil(3)
	if got != 2 {
		t.Fatalf("delivered %d, want 2 (before outage + after restore)", got)
	}
	if cnt := n.Counters(); cnt.Drops[DropLinkDown] != 2 {
		t.Fatalf("drops = %+v, want two link-down", cnt.Drops)
	}
	if lan.Down() {
		t.Fatal("segment still down after RestoreAt fired")
	}
	// Setup helper keeps working in single-threaded phases.
	lan.SetDown(true)
	if !lan.Down() {
		t.Fatal("SetDown(true) not reflected")
	}
	lan.SetDown(false)
}

// TestNodeFailure checks SetFailed: arrivals drop as DropNodeDown, the
// CPU input queue is flushed on crash, local generation stops, and the
// node works again after restore.
func TestNodeFailure(t *testing.T) {
	n := NewNetwork(6)
	nodes := n.BuildChain([]string{"h1", "r", "h2"}, []*CPUConfig{
		nil, {Mode: CPUModeLegacy, InputQueueCap: 8}, nil,
	}, LinkConfig{Delay: 0.01})
	h1, r, h2 := nodes[0], nodes[1], nodes[2]
	got := 0
	h2.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { got++ },
	}
	send := func(at float64, src *Node, dst NodeID) {
		src.Schedule(at, "send", func() {
			n.Inject(n.NewPacket(KindData, src.ID, dst, 100))
		})
	}
	// Stall the router CPU, park a packet in its input queue, then crash:
	// the parked packet must be flushed as node-down.
	r.Schedule(0.5, "occupy", func() { r.CPU.Occupy(0.3) })
	send(0.59, h1, h2.ID) // arrives 0.6, parked behind the busy CPU
	r.Schedule(0.65, "crash", func() { r.SetFailed(true) })
	send(0.89, h1, h2.ID) // arrives 0.9 at a dead router
	send(1.5, r, h2.ID)   // a dead node generates nothing
	r.Schedule(2.0, "restore", func() { r.SetFailed(false) })
	send(2.49, h1, h2.ID) // arrives 2.5, forwarded normally
	n.RunUntil(3)
	if got != 1 {
		t.Fatalf("delivered %d, want 1 (only the post-restore packet)", got)
	}
	if c := n.Counters(); c.Drops[DropNodeDown] != 3 {
		t.Fatalf("node-down drops = %d, want 3 (counters %+v)", c.Drops[DropNodeDown], c)
	}
	if r.Failed() {
		t.Fatal("node still failed after restore")
	}
	st := r.Stats()
	if st.Dropped[DropNodeDown] != 2 {
		// The flushed queue packet and the dead-arrival; the dead *send*
		// is charged to the network only (never entered the arrival path).
		t.Fatalf("node-local node-down drops = %d, want 2", st.Dropped[DropNodeDown])
	}
}
