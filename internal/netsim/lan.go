package netsim

import "fmt"

// LANConfig parameterizes a broadcast segment.
type LANConfig struct {
	// Delay is the propagation time from any sender to any receiver.
	Delay float64
	// Bandwidth is the per-sender serialization rate in bits/s; 0 means
	// infinite. (The paper's model assumes zero transmission time and
	// ignores collisions; so does this LAN — it is an idealized Ethernet.)
	Bandwidth float64
	// QueueCap bounds each member's output queue; 0 uses DefaultQueueCap.
	QueueCap int
}

type lanFrame struct {
	pkt *Packet
	to  NodeID
}

type lanTx struct {
	busy bool
	// queue[qhead:] is the output queue; the head index keeps the backing
	// array's capacity across busy periods (see txState.qpop).
	queue []lanFrame
	qhead int
	// inflight holds serialized frames in propagation order; arrive pops
	// the head (arrival times are monotone per transmitter).
	inflight ring[lanFrame]
	// txDone frees the transmitter and pops the queue; arrive delivers
	// the head in-flight frame. Hoisted: no per-frame closures.
	txDone func()
	arrive func()
}

func (st *lanTx) qlen() int { return len(st.queue) - st.qhead }

func (st *lanTx) qpop() lanFrame {
	fr := st.queue[st.qhead]
	st.queue[st.qhead] = lanFrame{}
	st.qhead++
	if st.qhead == len(st.queue) {
		st.queue = st.queue[:0]
		st.qhead = 0
	}
	return fr
}

// LAN is an idealized broadcast segment (an Ethernet without collisions):
// a frame transmitted by one member is received by the addressed member,
// or by every other member for Broadcast frames. Each member has its own
// transmitter and drop-tail output queue.
//
// A LAN is a single synchronization domain: all members must be owned by
// the same partition (Partition enforces this), so broadcast delivery
// never crosses a boundary.
type LAN struct {
	net     *Network
	cfg     LANConfig
	members []*Node
	tx      map[NodeID]*lanTx
	// down marks the whole segment failed. One flag suffices (no per-end
	// views as on Link): a LAN lives wholly inside one partition, so only
	// that logical process ever touches it.
	down bool
}

// NewLAN creates a broadcast segment over the given members (at least 2).
func (n *Network) NewLAN(members []*Node, cfg LANConfig) *LAN {
	if len(members) < 2 {
		panic("netsim: a LAN needs at least two members")
	}
	if cfg.Delay < 0 || cfg.Bandwidth < 0 || cfg.QueueCap < 0 {
		panic("netsim: invalid LAN config")
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	l := &LAN{net: n, cfg: cfg, members: append([]*Node(nil), members...), tx: make(map[NodeID]*lanTx)}
	for _, m := range l.members {
		if _, dup := l.tx[m.ID]; dup {
			panic(fmt.Sprintf("netsim: node %v attached to LAN twice", m))
		}
		from, st := m, &lanTx{}
		st.txDone = func() {
			st.busy = false
			if st.qlen() > 0 {
				l.startTx(from, st, st.qpop())
			}
		}
		st.arrive = func() {
			fr := st.inflight.pop()
			l.deliver(fr.pkt, from, fr.to)
		}
		l.tx[m.ID] = st
		m.attachMedium(l)
	}
	return l
}

// Members returns a copy of the attached nodes.
func (l *LAN) Members() []*Node { return append([]*Node(nil), l.members...) }

// NumMembers returns the number of attached nodes.
func (l *LAN) NumMembers() int { return len(l.members) }

// Member returns the i-th attached node (attachment order) without
// copying the member list — the allocation-free companion to Members
// for per-packet paths.
func (l *LAN) Member(i int) *Node { return l.members[i] }

// Config returns the LAN configuration.
func (l *LAN) Config() LANConfig { return l.cfg }

// SetDown marks the segment failed (true) or restored (false). Frames
// transmitted or arriving while the segment is down are dropped as
// DropLinkDown, charged to the transmitter — the same accounting as a
// failed point-to-point link. Like Link.SetDown this is a setup helper
// for single-threaded phases; use FailAt/RestoreAt for mid-run
// transitions.
func (l *LAN) SetDown(down bool) {
	l.down = down
	l.net.bumpTopology()
}

// Down reports the segment's failure state.
func (l *LAN) Down() bool { return l.down }

// FailAt schedules the segment to fail at absolute time t, and
// RestoreAt to come back up. The transition is one keyed event at the
// first member — a LAN is wholly owned by one partition, so a single
// event keeps the flip deterministic under any partitioning.
func (l *LAN) FailAt(t float64)    { l.scheduleDown(t, true) }
func (l *LAN) RestoreAt(t float64) { l.scheduleDown(t, false) }

func (l *LAN) scheduleDown(t float64, down bool) {
	label := "lan-restore"
	if down {
		label = "lan-fail"
	}
	l.members[0].Schedule(t, label, func() {
		l.down = down
		l.net.bumpTopology()
	})
}

// Transmit implements Medium: unicast to the member with id `to`, or to
// every other member when to == Broadcast. Unknown unicast destinations
// are dropped as no-route.
func (l *LAN) Transmit(pkt *Packet, from *Node, to NodeID) {
	st, ok := l.tx[from.ID]
	if !ok {
		panic(fmt.Sprintf("netsim: %v is not attached to this LAN", from))
	}
	if l.down {
		l.net.dropAt(from, DropLinkDown)
		l.net.releaseAt(from, pkt)
		return
	}
	if st.busy {
		if st.qlen() >= l.cfg.QueueCap {
			l.net.dropAt(from, DropQueueOverflow)
			l.net.releaseAt(from, pkt)
			return
		}
		st.queue = append(st.queue, lanFrame{pkt: pkt, to: to})
		return
	}
	l.startTx(from, st, lanFrame{pkt: pkt, to: to})
}

func (l *LAN) serialization(pkt *Packet) float64 {
	if l.cfg.Bandwidth == 0 {
		return 0
	}
	return float64(pkt.Size*8) / l.cfg.Bandwidth
}

func (l *LAN) startTx(from *Node, st *lanTx, fr lanFrame) {
	st.busy = true
	ser := l.serialization(fr.pkt)
	sim := from.sim()
	st.inflight.push(fr)
	sim.ScheduleKeyed(sim.Now()+ser+l.cfg.Delay, from.nextKey(), "lan-arrival", st.arrive)
	sim.ScheduleKeyed(sim.Now()+ser, from.nextKey(), "lan-tx-done", st.txDone)
}

func (l *LAN) deliver(pkt *Packet, from *Node, to NodeID) {
	if l.down {
		// The segment failed while the frame was in flight: one drop per
		// frame, charged to the transmitter (mirroring Link, where the
		// receiving end accounts the loss once).
		l.net.dropAt(from, DropLinkDown)
		l.net.releaseAt(from, pkt)
		return
	}
	if to == Broadcast {
		for _, m := range l.members {
			if m == from {
				continue
			}
			// Each receiver gets its own pooled copy (same datagram id, own
			// TTL/payload/path) so per-node bookkeeping does not interfere;
			// the original frame's slot is released once every copy is out.
			m.receive(l.net.clonePacket(from, pkt), l)
		}
		l.net.releaseAt(from, pkt)
		return
	}
	for _, m := range l.members {
		if m.ID == to {
			m.receive(pkt, l)
			return
		}
	}
	l.net.dropAt(from, DropNoRoute)
	l.net.releaseAt(from, pkt)
}
