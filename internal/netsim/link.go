package netsim

import "fmt"

// LinkConfig parameterizes a point-to-point link.
type LinkConfig struct {
	// Delay is the one-way propagation time in seconds. On links that
	// cross partition boundaries it must be positive: it is the lookahead
	// that lets logical processes advance in parallel.
	Delay float64
	// Bandwidth is bits per second; 0 means infinite (no serialization).
	Bandwidth float64
	// QueueCap bounds each direction's output queue in packets while the
	// transmitter serializes; 0 uses DefaultQueueCap.
	QueueCap int
}

// DefaultQueueCap is the per-direction output queue bound when
// LinkConfig.QueueCap is zero.
const DefaultQueueCap = 64

// Link is a full-duplex point-to-point link: independent transmitter,
// drop-tail queue, serialization and propagation per direction.
type Link struct {
	net  *Network
	cfg  LinkConfig
	ends [2]*Node
	tx   [2]txState
	// down and cost are per-endpoint views of the link state, indexed
	// like ends. Each endpoint's view is only ever written by an event
	// executing at that endpoint (or during single-threaded setup), so a
	// link crossing a partition boundary never shares mutable state
	// between logical processes. FailAt/RestoreAt/SetCostAt schedule one
	// same-time keyed event per end, which keeps flapped runs
	// bit-identical for any partition count.
	down [2]bool
	cost [2]uint32
	// stats per direction
	txPackets [2]uint64
	txBytes   [2]uint64
}

// LinkStats is per-direction transmission accounting.
type LinkStats struct {
	Packets uint64
	Bytes   uint64
}

// StatsFrom returns the transmission counters for the direction whose
// sender is from.
func (l *Link) StatsFrom(from *Node) LinkStats {
	d := l.dir(from)
	return LinkStats{Packets: l.txPackets[d], Bytes: l.txBytes[d]}
}

// Utilization returns the fraction of the observation window the
// direction from `from` spent serializing, given the configured
// bandwidth; it returns 0 for infinite-bandwidth links.
func (l *Link) Utilization(from *Node, window float64) float64 {
	if l.cfg.Bandwidth == 0 || window <= 0 {
		return 0
	}
	d := l.dir(from)
	busy := float64(l.txBytes[d]*8) / l.cfg.Bandwidth
	return busy / window
}

// SetDown marks the link failed (true) or restored (false) at both ends
// at once. Packets in flight or transmitted while the link is down are
// dropped — the failure model behind the routing protocol's convergence
// tests.
//
// SetDown is a setup helper: call it only from single-threaded phases —
// before the run starts, or between RunUntil calls, when every logical
// process sits at a barrier. For transitions during a run use
// FailAt/RestoreAt, which flip each endpoint's view from a keyed event
// on the endpoint's own logical process; a direct mid-window SetDown on
// a cross-partition link is a data race and breaks the K-run
// bit-identity contract.
func (l *Link) SetDown(down bool) {
	l.down[0] = down
	l.down[1] = down
	l.net.bumpTopology()
}

// Down reports the link's failure state: true if either endpoint
// considers the link failed. Outside a transition instant both views
// agree.
func (l *Link) Down() bool { return l.down[0] || l.down[1] }

// FailAt schedules the link to fail at absolute time t, and RestoreAt
// to come back up. Each schedules one keyed event per endpoint at the
// same instant, so every logical process flips its own view itself and
// the transition is deterministic under any partitioning. Transitions
// must be scheduled after Partition (like all runtime events) and may
// be freely interleaved to model flapping.
func (l *Link) FailAt(t float64)    { l.scheduleDown(t, true) }
func (l *Link) RestoreAt(t float64) { l.scheduleDown(t, false) }

func (l *Link) scheduleDown(t float64, down bool) {
	label := "link-restore"
	if down {
		label = "link-fail"
	}
	for d := range l.ends {
		d := d
		l.ends[d].Schedule(t, label, func() {
			l.down[d] = down
			l.net.bumpTopology()
		})
	}
}

// CostFrom returns the routing metric endpoint nd currently charges for
// a hop over this link (at least 1; the zero value means hop count).
// Metric-weighted routing configs read it from their LinkCost hook.
func (l *Link) CostFrom(nd *Node) uint32 {
	if c := l.cost[l.dir(nd)]; c > 0 {
		return c
	}
	return 1
}

// SetCost sets the hop metric at both ends — a setup helper with the
// same single-threaded-phase discipline as SetDown.
func (l *Link) SetCost(c uint32) {
	if c < 1 {
		panic("netsim: link cost must be at least 1")
	}
	l.cost[0] = c
	l.cost[1] = c
	l.net.bumpTopology()
}

// SetCostAt schedules a metric change at absolute time t, one keyed
// event per endpoint — the deterministic mid-run counterpart of SetCost,
// like FailAt for SetDown.
func (l *Link) SetCostAt(t float64, c uint32) {
	if c < 1 {
		panic("netsim: link cost must be at least 1")
	}
	for d := range l.ends {
		d := d
		l.ends[d].Schedule(t, "link-metric", func() {
			l.cost[d] = c
			l.net.bumpTopology()
		})
	}
}

// Endpoints returns the link's two endpoint nodes in construction order.
func (l *Link) Endpoints() [2]*Node { return l.ends }

type txState struct {
	busy bool
	// queue[qhead:] is the output queue. Popping advances the head index
	// instead of re-slicing from the front, so the backing array's
	// capacity survives busy periods and steady state never reallocates.
	queue []*Packet
	qhead int
	// inflight holds serialized packets in propagation order; arrive pops
	// the head. Arrival times are monotone within a direction (the
	// transmitter is serial), so FIFO order is arrival order.
	inflight ring[*Packet]
	// txDone frees the transmitter and pops the queue; arrive delivers
	// the head in-flight packet. Both are hoisted so each packet
	// schedules them without allocating a fresh closure.
	txDone func()
	arrive func()
}

func (st *txState) qlen() int { return len(st.queue) - st.qhead }

func (st *txState) qpop() *Packet {
	pkt := st.queue[st.qhead]
	st.queue[st.qhead] = nil
	st.qhead++
	if st.qhead == len(st.queue) {
		st.queue = st.queue[:0]
		st.qhead = 0
	}
	return pkt
}

// Connect creates a link between a and b. It panics if a == b.
func (n *Network) Connect(a, b *Node, cfg LinkConfig) *Link {
	if a == b {
		panic("netsim: cannot link a node to itself")
	}
	if cfg.Delay < 0 || cfg.Bandwidth < 0 || cfg.QueueCap < 0 {
		panic("netsim: invalid link config")
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	l := &Link{net: n, cfg: cfg, ends: [2]*Node{a, b}}
	for d := range l.tx {
		d := d
		dst := l.ends[1-d]
		l.tx[d].txDone = func() {
			st := &l.tx[d]
			st.busy = false
			if st.qlen() > 0 {
				l.startTx(d, st.qpop())
			}
		}
		l.tx[d].arrive = func() {
			pkt := l.tx[d].inflight.pop()
			l.deliverTo(dst, pkt)
		}
	}
	a.attachMedium(l)
	b.attachMedium(l)
	return l
}

// deliverTo completes propagation at the receiving end. It runs on the
// receiver's simulator (the boundary path injects it there), so it
// consults the receiver's view of the link state.
func (l *Link) deliverTo(dst *Node, pkt *Packet) {
	if l.down[l.dir(dst)] {
		l.net.dropAt(dst, DropLinkDown)
		l.net.releaseAt(dst, pkt)
		return
	}
	dst.receive(pkt, l)
}

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Peer returns the node at the other end from nd. It panics if nd is not
// an endpoint.
func (l *Link) Peer(nd *Node) *Node {
	switch nd {
	case l.ends[0]:
		return l.ends[1]
	case l.ends[1]:
		return l.ends[0]
	default:
		panic(fmt.Sprintf("netsim: %v is not an endpoint of this link", nd))
	}
}

// QueueLen returns the output-queue length for the direction whose sender
// is from.
func (l *Link) QueueLen(from *Node) int {
	return l.tx[l.dir(from)].qlen()
}

func (l *Link) dir(from *Node) int {
	switch from {
	case l.ends[0]:
		return 0
	case l.ends[1]:
		return 1
	default:
		panic(fmt.Sprintf("netsim: %v is not an endpoint of this link", from))
	}
}

// Transmit implements Medium. The link-layer destination is implicit (the
// other end); `to` is accepted for interface symmetry and ignored except
// that Broadcast is also valid.
func (l *Link) Transmit(pkt *Packet, from *Node, _ NodeID) {
	d := l.dir(from)
	if l.down[d] {
		l.net.dropAt(from, DropLinkDown)
		l.net.releaseAt(from, pkt)
		return
	}
	st := &l.tx[d]
	if st.busy {
		if st.qlen() >= l.cfg.QueueCap {
			l.net.dropAt(from, DropQueueOverflow)
			l.net.releaseAt(from, pkt)
			return
		}
		st.queue = append(st.queue, pkt)
		return
	}
	l.startTx(d, pkt)
}

func (l *Link) serialization(pkt *Packet) float64 {
	if l.cfg.Bandwidth == 0 {
		return 0
	}
	return float64(pkt.Size*8) / l.cfg.Bandwidth
}

func (l *Link) startTx(d int, pkt *Packet) {
	st := &l.tx[d]
	st.busy = true
	l.txPackets[d]++
	l.txBytes[d] += uint64(pkt.Size)
	src := l.ends[d]
	dst := l.ends[1-d]
	sim := src.sim()
	ser := l.serialization(pkt)
	// Arrival at the far end after serialization + propagation. The key
	// is drawn from the sender *before* the tx-done key in both branches,
	// so the key sequence is identical whether or not the link crosses a
	// partition boundary.
	arriveAt := sim.Now() + ser + l.cfg.Delay
	arriveKey := src.nextKey()
	if dst.part == src.part {
		st.inflight.push(pkt)
		sim.ScheduleKeyed(arriveAt, arriveKey, "link-arrival", st.arrive)
	} else {
		// Cross-partition: hand the arrival to the receiver's logical
		// process at the next window barrier. The key travels with it, so
		// the receiver orders it exactly as a sequential run would.
		src.part.send(boundaryEvent{at: arriveAt, key: arriveKey, pkt: pkt, dst: dst, link: l})
	}
	// Transmitter frees after serialization; pop the queue.
	sim.ScheduleKeyed(sim.Now()+ser, src.nextKey(), "link-tx-done", st.txDone)
}
