package netsim

import "fmt"

// LinkConfig parameterizes a point-to-point link.
type LinkConfig struct {
	// Delay is the one-way propagation time in seconds.
	Delay float64
	// Bandwidth is bits per second; 0 means infinite (no serialization).
	Bandwidth float64
	// QueueCap bounds each direction's output queue in packets while the
	// transmitter serializes; 0 uses DefaultQueueCap.
	QueueCap int
}

// DefaultQueueCap is the per-direction output queue bound when
// LinkConfig.QueueCap is zero.
const DefaultQueueCap = 64

// Link is a full-duplex point-to-point link: independent transmitter,
// drop-tail queue, serialization and propagation per direction.
type Link struct {
	net  *Network
	cfg  LinkConfig
	ends [2]*Node
	tx   [2]txState
	down bool
	// stats per direction
	txPackets [2]uint64
	txBytes   [2]uint64
}

// LinkStats is per-direction transmission accounting.
type LinkStats struct {
	Packets uint64
	Bytes   uint64
}

// StatsFrom returns the transmission counters for the direction whose
// sender is from.
func (l *Link) StatsFrom(from *Node) LinkStats {
	d := l.dir(from)
	return LinkStats{Packets: l.txPackets[d], Bytes: l.txBytes[d]}
}

// Utilization returns the fraction of the observation window the
// direction from `from` spent serializing, given the configured
// bandwidth; it returns 0 for infinite-bandwidth links.
func (l *Link) Utilization(from *Node, window float64) float64 {
	if l.cfg.Bandwidth == 0 || window <= 0 {
		return 0
	}
	d := l.dir(from)
	busy := float64(l.txBytes[d]*8) / l.cfg.Bandwidth
	return busy / window
}

// SetDown marks the link failed (true) or restored (false). Packets in
// flight or transmitted while the link is down are dropped — the failure
// model behind the routing protocol's convergence tests.
func (l *Link) SetDown(down bool) {
	l.down = down
	l.net.bumpTopology()
}

// Down reports the link's failure state.
func (l *Link) Down() bool { return l.down }

type txState struct {
	busy  bool
	queue []*Packet
	// txDone frees the transmitter and pops the queue; hoisted so each
	// packet schedules it without allocating a fresh closure.
	txDone func()
}

// Connect creates a link between a and b. It panics if a == b.
func (n *Network) Connect(a, b *Node, cfg LinkConfig) *Link {
	if a == b {
		panic("netsim: cannot link a node to itself")
	}
	if cfg.Delay < 0 || cfg.Bandwidth < 0 || cfg.QueueCap < 0 {
		panic("netsim: invalid link config")
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	l := &Link{net: n, cfg: cfg, ends: [2]*Node{a, b}}
	for d := range l.tx {
		d := d
		l.tx[d].txDone = func() {
			st := &l.tx[d]
			st.busy = false
			if len(st.queue) > 0 {
				next := st.queue[0]
				st.queue = st.queue[1:]
				l.startTx(d, next)
			}
		}
	}
	a.attachMedium(l)
	b.attachMedium(l)
	return l
}

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Peer returns the node at the other end from nd. It panics if nd is not
// an endpoint.
func (l *Link) Peer(nd *Node) *Node {
	switch nd {
	case l.ends[0]:
		return l.ends[1]
	case l.ends[1]:
		return l.ends[0]
	default:
		panic(fmt.Sprintf("netsim: %v is not an endpoint of this link", nd))
	}
}

// QueueLen returns the output-queue length for the direction whose sender
// is from.
func (l *Link) QueueLen(from *Node) int {
	return len(l.tx[l.dir(from)].queue)
}

func (l *Link) dir(from *Node) int {
	switch from {
	case l.ends[0]:
		return 0
	case l.ends[1]:
		return 1
	default:
		panic(fmt.Sprintf("netsim: %v is not an endpoint of this link", from))
	}
}

// Transmit implements Medium. The link-layer destination is implicit (the
// other end); `to` is accepted for interface symmetry and ignored except
// that Broadcast is also valid.
func (l *Link) Transmit(pkt *Packet, from *Node, _ NodeID) {
	if l.down {
		l.net.drop(pkt, DropLinkDown)
		return
	}
	d := l.dir(from)
	st := &l.tx[d]
	if st.busy {
		if len(st.queue) >= l.cfg.QueueCap {
			l.net.drop(pkt, DropQueueOverflow)
			return
		}
		st.queue = append(st.queue, pkt)
		return
	}
	l.startTx(d, pkt)
}

func (l *Link) serialization(pkt *Packet) float64 {
	if l.cfg.Bandwidth == 0 {
		return 0
	}
	return float64(pkt.Size*8) / l.cfg.Bandwidth
}

func (l *Link) startTx(d int, pkt *Packet) {
	st := &l.tx[d]
	st.busy = true
	l.txPackets[d]++
	l.txBytes[d] += uint64(pkt.Size)
	ser := l.serialization(pkt)
	sim := l.net.Sim
	dst := l.ends[1-d]
	// Arrival at the far end after serialization + propagation.
	sim.After(ser+l.cfg.Delay, "link-arrival", func() {
		if l.down {
			l.net.drop(pkt, DropLinkDown)
			return
		}
		dst.receive(pkt, l)
	})
	// Transmitter frees after serialization; pop the queue.
	sim.After(ser, "link-tx-done", st.txDone)
}
