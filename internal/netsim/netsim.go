// Package netsim is an event-driven, packet-level network simulator:
// store-and-forward nodes, point-to-point links with propagation delay and
// serialization at a configured bandwidth, broadcast LAN segments,
// drop-tail queues, and a router CPU model in which routing-protocol
// processing can stall the forwarding path.
//
// The CPU model is the paper's §2 measurement result turned into a
// mechanism: the NEARnet core routers "were prevented from routing other
// packets while the synchronized routing updates were being processed",
// which produced the 90-second periodic losses of Figure 1. CPUModeLegacy
// reproduces that behaviour; CPUModeFixed models the post-fix software
// where forwarding continues during update processing.
//
// netsim deliberately shares no shortcut assumptions with
// internal/periodic: messages here are real packets crossing real links,
// so experiments built on it (Figs 1–3) exercise an independent
// implementation of the paper's mechanisms.
package netsim

import (
	"fmt"

	"routesync/internal/des"
	"routesync/internal/rng"
)

// NodeID identifies a node within one Network.
type NodeID int

// Kind classifies packets; forwarding treats kinds identically but
// delivery dispatches on them.
type Kind uint8

// Packet kinds.
const (
	KindData Kind = iota
	KindRouting
	KindEchoRequest
	KindEchoReply
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindRouting:
		return "routing"
	case KindEchoRequest:
		return "echo-request"
	case KindEchoReply:
		return "echo-reply"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Packet is one simulated datagram. Payload carries protocol data (e.g. an
// encoded routing update); the simulator never inspects it.
type Packet struct {
	ID      uint64
	Kind    Kind
	Src     NodeID
	Dst     NodeID // ignored for broadcast routing packets on a LAN
	Size    int    // bytes on the wire
	TTL     int
	Created float64 // injection time
	Payload []byte
	// Seq is workload-defined (ping number, audio frame number).
	Seq int64
	// RecordRoute, when set, makes every node that receives the packet
	// append a Hop — the record-route option, used by the traceroute
	// workload and by tests that assert forwarding paths.
	RecordRoute bool
	// Hops is the recorded path (only when RecordRoute is set).
	Hops []Hop
}

// Hop is one record-route entry.
type Hop struct {
	Node NodeID
	At   float64
}

// DropReason classifies packet losses for the counters.
type DropReason string

// Drop reasons.
const (
	DropQueueOverflow DropReason = "queue-overflow"
	DropCPUBusy       DropReason = "cpu-busy"
	DropNoRoute       DropReason = "no-route"
	DropTTLExpired    DropReason = "ttl-expired"
	DropRandomLoss    DropReason = "random-loss"
	DropLinkDown      DropReason = "link-down"
)

// Counters aggregates network-wide packet accounting.
type Counters struct {
	Injected  uint64
	Delivered uint64
	Forwarded uint64
	Drops     map[DropReason]uint64
}

// TotalDropped sums drops across reasons.
func (c *Counters) TotalDropped() uint64 {
	var t uint64
	for _, v := range c.Drops {
		t += v
	}
	return t
}

// Network owns the simulator, the topology and the counters.
type Network struct {
	Sim     *des.Simulator
	Rand    *rng.Source
	nodes   []*Node
	count   Counters
	pktID   uint64
	topoVer uint64
}

// NewNetwork creates an empty network with the given seed.
func NewNetwork(seed int64) *Network {
	return &Network{
		Sim:  des.New(),
		Rand: rng.New(seed),
	}
}

// Counters returns a snapshot of the accounting counters.
func (n *Network) Counters() Counters {
	snap := n.count
	snap.Drops = make(map[DropReason]uint64, len(n.count.Drops))
	for k, v := range n.count.Drops {
		snap.Drops[k] = v
	}
	return snap
}

func (n *Network) drop(_ *Packet, why DropReason) {
	if n.count.Drops == nil {
		n.count.Drops = make(map[DropReason]uint64)
	}
	n.count.Drops[why]++
}

// NewNode adds a node. A nil cpu means an infinitely fast node (hosts,
// ideal switches).
func (n *Network) NewNode(name string, cpu *CPUConfig) *Node {
	nd := &Node{
		ID:   NodeID(len(n.nodes)),
		Name: name,
		net:  n,
		FIB:  make(map[NodeID]Egress),
	}
	if cpu != nil {
		nd.CPU = newCPU(nd, *cpu)
	}
	n.nodes = append(n.nodes, nd)
	return nd
}

// Node returns the node with the given id. It panics on unknown ids.
func (n *Network) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("netsim: unknown node %d", id))
	}
	return n.nodes[id]
}

// Nodes returns all nodes in creation order.
func (n *Network) Nodes() []*Node { return append([]*Node(nil), n.nodes...) }

// NumNodes returns the number of nodes; node ids are dense in
// [0, NumNodes), which lets routing agents use slice-indexed scratch
// state instead of maps on their hot paths.
func (n *Network) NumNodes() int { return len(n.nodes) }

// TopologyVersion returns a counter that increments whenever the
// topology changes — a medium is attached or a link changes up/down
// state. Agents use it to invalidate cached adjacency.
func (n *Network) TopologyVersion() uint64 { return n.topoVer }

// bumpTopology invalidates topology-derived caches.
func (n *Network) bumpTopology() { n.topoVer++ }

// NewPacket allocates a packet with a fresh ID and the current timestamp.
func (n *Network) NewPacket(kind Kind, src, dst NodeID, size int) *Packet {
	n.pktID++
	return &Packet{
		ID:      n.pktID,
		Kind:    kind,
		Src:     src,
		Dst:     dst,
		Size:    size,
		TTL:     64,
		Created: n.Sim.Now(),
	}
}

// Inject introduces a packet at its source node as if generated locally,
// routing it toward pkt.Dst.
func (n *Network) Inject(pkt *Packet) {
	n.count.Injected++
	n.Node(pkt.Src).route(pkt)
}

// RunUntil advances the simulation to the horizon.
func (n *Network) RunUntil(t float64) { n.Sim.RunUntil(t) }
