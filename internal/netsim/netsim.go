// Package netsim is an event-driven, packet-level network simulator:
// store-and-forward nodes, point-to-point links with propagation delay and
// serialization at a configured bandwidth, broadcast LAN segments,
// drop-tail queues, and a router CPU model in which routing-protocol
// processing can stall the forwarding path.
//
// The CPU model is the paper's §2 measurement result turned into a
// mechanism: the NEARnet core routers "were prevented from routing other
// packets while the synchronized routing updates were being processed",
// which produced the 90-second periodic losses of Figure 1. CPUModeLegacy
// reproduces that behaviour; CPUModeFixed models the post-fix software
// where forwarding continues during update processing.
//
// netsim deliberately shares no shortcut assumptions with
// internal/periodic: messages here are real packets crossing real links,
// so experiments built on it (Figs 1–3) exercise an independent
// implementation of the paper's mechanisms.
//
// # Determinism and parallel execution
//
// Every event a simulation schedules is keyed by its origin node and a
// per-node sequence number (des.ScheduleKeyed), every random draw comes
// from a per-node stream, and packet ids and counters are per-node too —
// so the execution order at equal timestamps is a pure function of the
// simulated system, not of scheduling order. That is what lets Partition
// split a topology across K logical processes, each on its own
// des.Simulator, and still produce bit-identical results for any K
// (including K=1 and the unpartitioned network). See partition.go.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"routesync/internal/des"
	"routesync/internal/rng"
)

// NodeID identifies a node within one Network.
type NodeID int

// Kind classifies packets; forwarding treats kinds identically but
// delivery dispatches on them.
type Kind uint8

// Packet kinds.
const (
	KindData Kind = iota
	KindRouting
	KindEchoRequest
	KindEchoReply
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindRouting:
		return "routing"
	case KindEchoRequest:
		return "echo-request"
	case KindEchoReply:
		return "echo-reply"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Packet is one simulated datagram. Payload carries protocol data (e.g. an
// encoded routing update); the simulator never inspects it.
//
// Packets created through Network.NewPacket are pooled slots: a terminal
// sink (delivery, any drop) returns the slot to its logical process's
// free list, and the next NewPacket there reuses it — the hot path
// allocates nothing at steady state. See pktpool.go for the ownership
// rules and PacketRef for generation-checked handles. Packet literals
// built directly by tests bypass the pool and behave as before.
type Packet struct {
	ID      uint64
	Kind    Kind
	Src     NodeID
	Dst     NodeID // ignored for broadcast routing packets on a LAN
	Size    int    // bytes on the wire
	TTL     int
	Created float64 // injection time
	Payload []byte
	// Seq is workload-defined (ping number, audio frame number).
	Seq int64
	// RecordRoute, when set, makes every node that receives the packet
	// append a Hop — the record-route option, used by the traceroute
	// workload and by tests that assert forwarding paths.
	RecordRoute bool
	// Hops is the recorded path (only when RecordRoute is set). The
	// backing array is pooled scratch owned by the slot; handlers keeping
	// a path beyond their callback must copy it.
	Hops []Hop

	// Pool bookkeeping (see pktpool.go). gen is bumped on every release
	// so stale PacketRefs detect reuse; payloadBuf is the slot's retained
	// payload arena, sized by its high-water mark. home is the pool that
	// allocated the slot — a release on a foreign logical process parks
	// the slot for repatriation at the next window barrier instead of
	// adopting it. regIdx is the slot's position in its pool's live
	// registry when tracking is on (optimistic mode), -1 otherwise.
	gen        uint32
	pooled     bool
	live       bool
	payloadBuf []byte
	home       *pktPool
	regIdx     int32
}

// Hop is one record-route entry.
type Hop struct {
	Node NodeID
	At   float64
}

// DropReason classifies packet losses for the counters.
type DropReason string

// Drop reasons.
const (
	DropQueueOverflow DropReason = "queue-overflow"
	DropCPUBusy       DropReason = "cpu-busy"
	DropNoRoute       DropReason = "no-route"
	DropTTLExpired    DropReason = "ttl-expired"
	DropRandomLoss    DropReason = "random-loss"
	DropLinkDown      DropReason = "link-down"
	DropNodeDown      DropReason = "node-down"
)

// Drop-counter slots. Counting a drop is an array increment — no map
// lookup, no lazy allocation — and merging partition counters is a
// commutative array sum. The enum below, dropIndex and dropReasons must
// agree slot for slot: a new reason goes in all three, and
// TestDropReasonsExhaustive fails on any mismatch, so extending the
// reason list can never silently truncate the fixed counter arrays.
const (
	dropQueueOverflowIdx = iota
	dropCPUBusyIdx
	dropNoRouteIdx
	dropTTLExpiredIdx
	dropRandomLossIdx
	dropLinkDownIdx
	dropNodeDownIdx

	// numDropReasons sizes the fixed drop-counter arrays; it is the enum
	// length, so arrays grow automatically with the enum.
	numDropReasons
)

func dropIndex(r DropReason) int {
	switch r {
	case DropQueueOverflow:
		return dropQueueOverflowIdx
	case DropCPUBusy:
		return dropCPUBusyIdx
	case DropNoRoute:
		return dropNoRouteIdx
	case DropTTLExpired:
		return dropTTLExpiredIdx
	case DropRandomLoss:
		return dropRandomLossIdx
	case DropLinkDown:
		return dropLinkDownIdx
	case DropNodeDown:
		return dropNodeDownIdx
	default:
		panic(fmt.Sprintf("netsim: unknown drop reason %q", r))
	}
}

// dropReasons lists reasons in dropIndex order, for snapshots.
var dropReasons = [numDropReasons]DropReason{
	DropQueueOverflow, DropCPUBusy, DropNoRoute,
	DropTTLExpired, DropRandomLoss, DropLinkDown, DropNodeDown,
}

// DropReasons returns every defined drop reason in counter order — the
// canonical list for exhaustive reporting and for the exhaustiveness
// test that guards the fixed-array counters.
func DropReasons() []DropReason {
	return append([]DropReason(nil), dropReasons[:]...)
}

// counterSet is the internal accounting block. The unpartitioned network
// owns one; every partition owns its own, so logical processes never
// contend on shared counters, and Counters() merges them — all fields are
// commutative sums, so the merge is K-independent.
type counterSet struct {
	injected  uint64
	delivered uint64
	forwarded uint64
	drops     [numDropReasons]uint64
}

func (c *counterSet) add(o *counterSet) {
	c.injected += o.injected
	c.delivered += o.delivered
	c.forwarded += o.forwarded
	for i := range c.drops {
		c.drops[i] += o.drops[i]
	}
}

// Counters aggregates network-wide packet accounting.
type Counters struct {
	Injected  uint64
	Delivered uint64
	Forwarded uint64
	Drops     map[DropReason]uint64
}

// TotalDropped sums drops across reasons.
func (c *Counters) TotalDropped() uint64 {
	var t uint64
	for _, v := range c.Drops {
		t += v
	}
	return t
}

// Network owns the simulator, the topology and the counters.
type Network struct {
	// Sim is the root simulator. An unpartitioned network runs entirely
	// on it; after Partition it only orders pre-run setup (it must be
	// empty when Run starts — every runtime event lives in a partition).
	Sim *des.Simulator
	// Rand is build-time randomness (topology generation). Runtime draws
	// — per-arrival loss — come from per-node streams so the draw order
	// cannot depend on the partitioning.
	Rand  *rng.Source
	seed  int64
	nodes []*Node
	count counterSet
	// topoVer is atomic because scheduled fault transitions (Link.FailAt,
	// LAN.FailAt, node crashes) bump it from partition goroutines; the
	// increments commute, so the merged value stays K-invariant.
	topoVer atomic.Uint64
	parts   []*partition
	// lookahead is the minimum cross-partition link delay (see Lookahead).
	lookahead float64
	// optCfg is the resolved optimistic lease configuration; syncStats
	// accumulates per-round synchronization counters (both modes).
	// syncObs is the SyncObserver view of obs, cached at SetObserver so
	// the per-round notification costs one nil check.
	optCfg    OptimisticConfig
	syncStats SyncStats
	syncObs   SyncObserver
	// phantomPktSeq numbers packets whose src is not a real node.
	phantomPktSeq uint64
	obs           des.Observer
	// pool is the unpartitioned network's packet slot pool (also the
	// source for phantom-src packets); each partition owns its own.
	pool pktPool
	// wdone synchronizes partition worker goroutines with the window
	// coordinator (see runPartitioned).
	wdone sync.WaitGroup
}

// NewNetwork creates an empty network with the given seed.
func NewNetwork(seed int64) *Network {
	return &Network{
		Sim:  des.New(),
		Rand: rng.New(seed),
		seed: seed,
	}
}

// countersFor returns the counter set charged by events executing at nd:
// the owning partition's when the network is partitioned, the network's
// otherwise.
func (n *Network) countersFor(nd *Node) *counterSet {
	if nd.part != nil {
		return &nd.part.count
	}
	return &n.count
}

// Counters returns a snapshot of the accounting counters, merged across
// partitions. The merge order is fixed (partition index), and every field
// is a sum, so the snapshot is identical for any partition count.
func (n *Network) Counters() Counters {
	total := n.count
	for _, p := range n.parts {
		total.add(&p.count)
	}
	snap := Counters{
		Injected:  total.injected,
		Delivered: total.delivered,
		Forwarded: total.forwarded,
		Drops:     make(map[DropReason]uint64, numDropReasons),
	}
	for i, v := range total.drops {
		if v != 0 {
			snap.Drops[dropReasons[i]] = v
		}
	}
	return snap
}

// dropAt counts a drop charged to the node where it happened.
func (n *Network) dropAt(nd *Node, why DropReason) {
	n.countersFor(nd).drops[dropIndex(why)]++
}

// NewNode adds a node. A nil cpu means an infinitely fast node (hosts,
// ideal switches).
func (n *Network) NewNode(name string, cpu *CPUConfig) *Node {
	if n.parts != nil {
		panic("netsim: cannot add nodes to a partitioned network")
	}
	id := NodeID(len(n.nodes))
	nd := &Node{
		ID:   id,
		Name: name,
		net:  n,
		FIB:  make(map[NodeID]Egress),
		// A per-node stream: the (node, arrival) → draw mapping is then
		// independent of global event interleaving, which keeps loss
		// patterns identical across partition counts.
		rnd: rng.New(n.seed ^ (int64(id)+1)*0x9E3779B9),
	}
	if cpu != nil {
		nd.CPU = newCPU(nd, *cpu)
	}
	n.nodes = append(n.nodes, nd)
	return nd
}

// Node returns the node with the given id. It panics on unknown ids.
func (n *Network) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		panic(fmt.Sprintf("netsim: unknown node %d", id))
	}
	return n.nodes[id]
}

// Nodes returns a copy of all nodes in creation order. The copy makes it
// safe to hold across topology setup, but costs an allocation per call —
// it is a setup/reporting helper, not a hot-path accessor. Per-packet
// and per-event code should iterate NumNodes/Node(id) instead (ids are
// dense), which touches the live slice without copying.
func (n *Network) Nodes() []*Node { return append([]*Node(nil), n.nodes...) }

// NumNodes returns the number of nodes; node ids are dense in
// [0, NumNodes), which lets routing agents use slice-indexed scratch
// state instead of maps on their hot paths.
func (n *Network) NumNodes() int { return len(n.nodes) }

// TopologyVersion returns a counter that increments whenever the
// topology changes — a medium is attached or a link changes up/down
// state. Agents use it to invalidate cached adjacency.
func (n *Network) TopologyVersion() uint64 { return n.topoVer.Load() }

// bumpTopology invalidates topology-derived caches.
func (n *Network) bumpTopology() { n.topoVer.Add(1) }

// NewPacket returns a packet with a fresh id and the current timestamp,
// drawn from the creating logical process's slot pool (allocation-free at
// steady state — see pktpool.go). Ids are drawn from the source node's
// counter (high bits node, low bits per-node sequence) so id assignment
// commutes across partitions. A src outside the node table (tests
// injecting phantom senders) falls back to a network-level counter in a
// reserved id range and the network-level pool.
func (n *Network) NewPacket(kind Kind, src, dst NodeID, size int) *Packet {
	var pkt *Packet
	if int(src) >= 0 && int(src) < len(n.nodes) {
		nd := n.nodes[src]
		pkt = n.poolFor(nd).get()
		nd.pktSeq++
		pkt.ID = (uint64(src)+1)<<38 | nd.pktSeq
		pkt.Created = nd.Now()
	} else {
		pkt = n.pool.get()
		n.phantomPktSeq++
		pkt.ID = uint64(1)<<63 | n.phantomPktSeq
		pkt.Created = n.Now()
	}
	pkt.Kind = kind
	pkt.Src = src
	pkt.Dst = dst
	pkt.Size = size
	pkt.TTL = 64
	// Payload and Hops were cleared when the slot was released; the
	// workload-defined fields must be reset here.
	pkt.Seq = 0
	pkt.RecordRoute = false
	return pkt
}

// Inject introduces a packet at its source node as if generated locally,
// routing it toward pkt.Dst. In a partitioned run it must be called from
// the source node's partition (i.e. from an event scheduled at a node the
// same partition owns) or during single-threaded setup.
func (n *Network) Inject(pkt *Packet) {
	src := n.Node(pkt.Src)
	n.countersFor(src).injected++
	src.route(pkt)
}

// SetObserver installs a kernel observer on every simulator this network
// runs on (the root simulator and every partition's). In a partitioned
// run the observer is invoked concurrently from all partition goroutines,
// so implementations must be safe for concurrent use — the runner's
// atomic metrics observer is.
func (n *Network) SetObserver(obs des.Observer) {
	n.obs = obs
	n.syncObs, _ = obs.(SyncObserver)
	n.Sim.SetObserver(obs)
	for _, p := range n.parts {
		p.sim.SetObserver(obs)
	}
}

// Now returns the current simulation time: the root clock, or — in a
// partitioned network — the first partition's clock. Outside Run all
// partition clocks agree (RunUntil leaves every clock at the horizon), so
// this is well-defined whenever user code can observe it.
func (n *Network) Now() float64 {
	if len(n.parts) > 0 {
		return n.parts[0].sim.Now()
	}
	return n.Sim.Now()
}

// RunUntil advances the simulation to the horizon: sequentially on the
// root simulator, or — after Partition — by conservative bounded-window
// parallel execution across the partitions.
func (n *Network) RunUntil(t float64) {
	if len(n.parts) > 0 {
		n.runPartitioned(t)
		return
	}
	n.Sim.RunUntil(t)
}
