package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"routesync/internal/rng"
)

// twoHosts builds A —link— B with the given config and static routes.
func twoHosts(t *testing.T, cfg LinkConfig) (*Network, *Node, *Node, *Link) {
	t.Helper()
	n := NewNetwork(1)
	a := n.NewNode("a", nil)
	b := n.NewNode("b", nil)
	l := n.Connect(a, b, cfg)
	n.InstallStaticRoutes()
	return n, a, b, l
}

func TestDeliveryOverOneLink(t *testing.T) {
	n, a, b, _ := twoHosts(t, LinkConfig{Delay: 0.01})
	var deliveredAt float64 = -1
	b.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { deliveredAt = n.Sim.Now() },
	}
	pkt := n.NewPacket(KindData, a.ID, b.ID, 100)
	n.Inject(pkt)
	n.RunUntil(1)
	if deliveredAt != 0.01 {
		t.Fatalf("delivered at %v, want 0.01", deliveredAt)
	}
	c := n.Counters()
	if c.Injected != 1 || c.Delivered != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestSerializationDelay(t *testing.T) {
	// 1000-byte packet over 1 Mbit/s: 8 ms serialization + 2 ms prop.
	n, a, b, _ := twoHosts(t, LinkConfig{Delay: 0.002, Bandwidth: 1e6})
	var at float64 = -1
	b.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { at = n.Sim.Now() },
	}
	n.Inject(n.NewPacket(KindData, a.ID, b.ID, 1000))
	n.RunUntil(1)
	if math.Abs(at-0.010) > 1e-9 {
		t.Fatalf("delivered at %v, want 0.010", at)
	}
}

func TestLinkQueueingSerializesBackToBack(t *testing.T) {
	// Two packets injected at t=0 on a 1 Mbit/s link arrive 8 ms apart.
	n, a, b, _ := twoHosts(t, LinkConfig{Delay: 0, Bandwidth: 1e6})
	var arrivals []float64
	b.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { arrivals = append(arrivals, n.Sim.Now()) },
	}
	n.Inject(n.NewPacket(KindData, a.ID, b.ID, 1000))
	n.Inject(n.NewPacket(KindData, a.ID, b.ID, 1000))
	n.RunUntil(1)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if math.Abs(arrivals[0]-0.008) > 1e-9 || math.Abs(arrivals[1]-0.016) > 1e-9 {
		t.Fatalf("arrivals = %v, want [0.008 0.016]", arrivals)
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	n, a, b, l := twoHosts(t, LinkConfig{Delay: 0, Bandwidth: 1e6, QueueCap: 2})
	got := 0
	b.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { got++ },
	}
	// One serializing + 2 queued + 2 dropped.
	for i := 0; i < 5; i++ {
		n.Inject(n.NewPacket(KindData, a.ID, b.ID, 1000))
	}
	if q := l.QueueLen(a); q != 2 {
		t.Fatalf("queue length = %d, want 2", q)
	}
	n.RunUntil(1)
	if got != 3 {
		t.Fatalf("delivered %d, want 3", got)
	}
	c := n.Counters()
	if c.Drops[DropQueueOverflow] != 2 {
		t.Fatalf("overflow drops = %d, want 2", c.Drops[DropQueueOverflow])
	}
}

func TestChainForwarding(t *testing.T) {
	n := NewNetwork(2)
	nodes := n.BuildChain([]string{"h1", "r1", "r2", "h2"}, nil, LinkConfig{Delay: 0.005})
	var at float64 = -1
	last := nodes[3]
	last.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { at = n.Sim.Now() },
	}
	n.Inject(n.NewPacket(KindData, nodes[0].ID, last.ID, 100))
	n.RunUntil(1)
	if math.Abs(at-0.015) > 1e-9 {
		t.Fatalf("3-hop delivery at %v, want 0.015", at)
	}
	if c := n.Counters(); c.Forwarded != 2 {
		t.Fatalf("forwarded = %d, want 2 (two transit routers)", c.Forwarded)
	}
}

func TestNoRouteDrop(t *testing.T) {
	n := NewNetwork(3)
	a := n.NewNode("a", nil)
	b := n.NewNode("b", nil)
	n.Connect(a, b, LinkConfig{})
	// no static routes installed
	n.Inject(n.NewPacket(KindData, a.ID, b.ID, 100))
	n.RunUntil(1)
	if c := n.Counters(); c.Drops[DropNoRoute] != 1 {
		t.Fatalf("drops = %+v, want one no-route", c.Drops)
	}
}

func TestTTLExpiry(t *testing.T) {
	// Forwarding loop: a → b → a → ... TTL must kill the packet.
	n := NewNetwork(4)
	a := n.NewNode("a", nil)
	b := n.NewNode("b", nil)
	l := n.Connect(a, b, LinkConfig{})
	dst := n.NewNode("unreachable", nil)
	a.SetRoute(dst.ID, l, b.ID)
	b.SetRoute(dst.ID, l, a.ID) // loop back
	pkt := n.NewPacket(KindData, a.ID, dst.ID, 100)
	n.Inject(pkt)
	n.RunUntil(10)
	c := n.Counters()
	if c.Drops[DropTTLExpired] != 1 {
		t.Fatalf("drops = %+v, want one ttl-expired", c.Drops)
	}
	if c.Forwarded == 0 || c.Forwarded > 64 {
		t.Fatalf("forwarded = %d, want 1..64", c.Forwarded)
	}
}

func TestRandomLoss(t *testing.T) {
	n, a, b, _ := twoHosts(t, LinkConfig{})
	b.LossProb = 0.5
	got := 0
	b.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { got++ },
	}
	const total = 10000
	for i := 0; i < total; i++ {
		at := float64(i) * 0.001 // space injections so no queue overflows
		n.Sim.Schedule(at, "inject", func() {
			n.Inject(n.NewPacket(KindData, a.ID, b.ID, 100))
		})
	}
	n.RunUntil(11)
	c := n.Counters()
	lost := int(c.Drops[DropRandomLoss])
	if got+lost != total {
		t.Fatalf("conservation violated: %d + %d != %d", got, lost, total)
	}
	if math.Abs(float64(lost)/total-0.5) > 0.02 {
		t.Fatalf("loss rate = %v, want ~0.5", float64(lost)/total)
	}
}

func TestCPULegacyBlocksForwarding(t *testing.T) {
	// h1 — r (legacy CPU) — h2; occupy r's CPU, inject during busy.
	n := NewNetwork(5)
	nodes := n.BuildChain(
		[]string{"h1", "r", "h2"},
		[]*CPUConfig{nil, {Mode: CPUModeLegacy, InputQueueCap: 0}},
		LinkConfig{},
	)
	r, h2 := nodes[1], nodes[2]
	got := 0
	h2.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { got++ },
	}
	n.Sim.Schedule(1.0, "occupy", func() { r.CPU.Occupy(0.3) })
	// Packet during busy period: dropped.
	n.Sim.Schedule(1.1, "inject-busy", func() {
		n.Inject(n.NewPacket(KindData, nodes[0].ID, h2.ID, 100))
	})
	// Packet after busy period: delivered.
	n.Sim.Schedule(1.5, "inject-idle", func() {
		n.Inject(n.NewPacket(KindData, nodes[0].ID, h2.ID, 100))
	})
	n.RunUntil(10)
	if got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
	if c := n.Counters(); c.Drops[DropCPUBusy] != 1 {
		t.Fatalf("drops = %+v, want one cpu-busy", c.Drops)
	}
}

func TestCPULegacyInputQueueDrains(t *testing.T) {
	n := NewNetwork(6)
	nodes := n.BuildChain(
		[]string{"h1", "r", "h2"},
		[]*CPUConfig{nil, {Mode: CPUModeLegacy, InputQueueCap: 2}},
		LinkConfig{},
	)
	r, h2 := nodes[1], nodes[2]
	var arrivals []float64
	h2.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { arrivals = append(arrivals, n.Sim.Now()) },
	}
	n.Sim.Schedule(1.0, "occupy", func() { r.CPU.Occupy(0.5) })
	for _, at := range []float64{1.1, 1.2, 1.3} { // 2 queue, 1 drop
		at := at
		n.Sim.Schedule(at, "inject", func() {
			n.Inject(n.NewPacket(KindData, nodes[0].ID, h2.ID, 100))
		})
	}
	n.RunUntil(10)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v, want 2 drained packets", arrivals)
	}
	for _, at := range arrivals {
		if math.Abs(at-1.5) > 1e-9 {
			t.Fatalf("drained at %v, want 1.5 (CPU idle)", at)
		}
	}
	if c := n.Counters(); c.Drops[DropCPUBusy] != 1 {
		t.Fatalf("drops = %+v", c.Drops)
	}
}

func TestCPUFixedModeForwardsWhileBusy(t *testing.T) {
	n := NewNetwork(7)
	nodes := n.BuildChain(
		[]string{"h1", "r", "h2"},
		[]*CPUConfig{nil, {Mode: CPUModeFixed}},
		LinkConfig{},
	)
	r, h2 := nodes[1], nodes[2]
	got := 0
	h2.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { got++ },
	}
	n.Sim.Schedule(1.0, "occupy", func() { r.CPU.Occupy(10) })
	n.Sim.Schedule(2.0, "inject", func() {
		n.Inject(n.NewPacket(KindData, nodes[0].ID, h2.ID, 100))
	})
	n.RunUntil(20)
	if got != 1 {
		t.Fatalf("fixed-mode router dropped the packet (got %d)", got)
	}
}

func TestCPUOccupySerializesFIFO(t *testing.T) {
	n := NewNetwork(8)
	r := n.NewNode("r", &CPUConfig{})
	done1 := r.CPU.Occupy(1)
	done2 := r.CPU.Occupy(2)
	if done1 != 1 || done2 != 3 {
		t.Fatalf("completion times %v, %v; want 1, 3", done1, done2)
	}
	if r.CPU.TotalBusy != 3 {
		t.Fatalf("TotalBusy = %v", r.CPU.TotalBusy)
	}
	var order []int
	r.CPU.OccupyThen(1, func() { order = append(order, 3) })
	n.RunUntil(10)
	if r.CPU.Busy() {
		t.Fatal("CPU still busy after horizon")
	}
	if len(order) != 1 {
		t.Fatalf("OccupyThen callback ran %d times", len(order))
	}
}

func TestCPUOccupyNegativePanics(t *testing.T) {
	n := NewNetwork(9)
	r := n.NewNode("r", &CPUConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("negative occupy did not panic")
		}
	}()
	r.CPU.Occupy(-1)
}

func TestLANBroadcast(t *testing.T) {
	n := NewNetwork(10)
	var members []*Node
	for i := 0; i < 5; i++ {
		members = append(members, n.NewNode("m", nil))
	}
	lan := n.NewLAN(members, LANConfig{Delay: 0.001})
	got := make(map[NodeID]int)
	for _, m := range members {
		m := m
		m.OnRouting = func(p *Packet, _ Medium) { got[m.ID]++ }
	}
	pkt := n.NewPacket(KindRouting, members[0].ID, Broadcast, 512)
	members[0].SendOn(lan, Broadcast, pkt)
	n.RunUntil(1)
	if got[members[0].ID] != 0 {
		t.Fatal("sender received its own broadcast")
	}
	for _, m := range members[1:] {
		if got[m.ID] != 1 {
			t.Fatalf("member %v got %d copies, want 1", m, got[m.ID])
		}
	}
}

func TestLANUnicast(t *testing.T) {
	n := NewNetwork(11)
	a := n.NewNode("a", nil)
	b := n.NewNode("b", nil)
	c := n.NewNode("c", nil)
	lan := n.NewLAN([]*Node{a, b, c}, LANConfig{})
	gotB, gotC := 0, 0
	b.OnDeliver = map[Kind]func(*Packet){KindData: func(*Packet) { gotB++ }}
	c.OnDeliver = map[Kind]func(*Packet){KindData: func(*Packet) { gotC++ }}
	pkt := n.NewPacket(KindData, a.ID, b.ID, 100)
	a.SendOn(lan, b.ID, pkt)
	n.RunUntil(1)
	if gotB != 1 || gotC != 0 {
		t.Fatalf("unicast delivery b=%d c=%d, want 1,0", gotB, gotC)
	}
}

func TestLANUnknownUnicastDrops(t *testing.T) {
	n := NewNetwork(12)
	a := n.NewNode("a", nil)
	b := n.NewNode("b", nil)
	lan := n.NewLAN([]*Node{a, b}, LANConfig{})
	a.SendOn(lan, NodeID(99), n.NewPacket(KindData, a.ID, 99, 100))
	n.RunUntil(1)
	if c := n.Counters(); c.Drops[DropNoRoute] != 1 {
		t.Fatalf("drops = %+v", c.Drops)
	}
}

func TestLANSerializationQueues(t *testing.T) {
	n := NewNetwork(13)
	a := n.NewNode("a", nil)
	b := n.NewNode("b", nil)
	lan := n.NewLAN([]*Node{a, b}, LANConfig{Bandwidth: 8e3}) // 1 byte/ms
	var arrivals []float64
	b.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { arrivals = append(arrivals, n.Sim.Now()) },
	}
	for i := 0; i < 3; i++ {
		a.SendOn(lan, b.ID, n.NewPacket(KindData, a.ID, b.ID, 10)) // 10 ms each
	}
	n.RunUntil(1)
	want := []float64{0.01, 0.02, 0.03}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i, w := range want {
		if math.Abs(arrivals[i]-w) > 1e-9 {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestLANValidation(t *testing.T) {
	n := NewNetwork(14)
	a := n.NewNode("a", nil)
	for _, f := range []func(){
		func() { n.NewLAN([]*Node{a}, LANConfig{}) },
		func() { n.NewLAN([]*Node{a, a}, LANConfig{}) },
		func() { n.NewLAN([]*Node{a, n.NewNode("b", nil)}, LANConfig{Delay: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid LAN construction did not panic")
				}
			}()
			f()
		}()
	}
}

func TestConnectValidation(t *testing.T) {
	n := NewNetwork(15)
	a := n.NewNode("a", nil)
	for _, f := range []func(){
		func() { n.Connect(a, a, LinkConfig{}) },
		func() { n.Connect(a, n.NewNode("b", nil), LinkConfig{Delay: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Connect did not panic")
				}
			}()
			f()
		}()
	}
}

func TestStarTopologyRoutes(t *testing.T) {
	n := NewNetwork(16)
	_, leaves := n.BuildStar("hub", nil, []string{"l1", "l2", "l3"}, LinkConfig{Delay: 0.001})
	got := 0
	leaves[2].OnDeliver = map[Kind]func(*Packet){KindData: func(*Packet) { got++ }}
	n.Inject(n.NewPacket(KindData, leaves[0].ID, leaves[2].ID, 100))
	n.RunUntil(1)
	if got != 1 {
		t.Fatal("leaf-to-leaf delivery through hub failed")
	}
}

// TestConservationProperty: injected = delivered + dropped + in-flight,
// and after draining, in-flight = 0.
func TestConservationProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := NewNetwork(seed)
		k := 3 + r.Intn(6)
		names := make([]string, k)
		cpus := make([]*CPUConfig, k)
		for i := range names {
			names[i] = "n"
			if i > 0 && i < k-1 && r.Bernoulli(0.5) {
				cpus[i] = &CPUConfig{Mode: CPUModeLegacy, InputQueueCap: r.Intn(4)}
			}
		}
		nodes := n.BuildChain(names, cpus, LinkConfig{
			Delay:     r.Uniform(0, 0.01),
			Bandwidth: 1e6,
			QueueCap:  1 + r.Intn(8),
		})
		// random CPU occupancy storms
		for i := 0; i < 5; i++ {
			at := r.Uniform(0, 1)
			for _, nd := range nodes {
				if nd.CPU != nil {
					nd := nd
					n.Sim.Schedule(at, "occupy", func() { nd.CPU.Occupy(0.2) })
				}
			}
		}
		total := 50 + r.Intn(100)
		for i := 0; i < total; i++ {
			at := r.Uniform(0, 2)
			n.Sim.Schedule(at, "inject", func() {
				n.Inject(n.NewPacket(KindData, nodes[0].ID, nodes[k-1].ID, 100+r.Intn(900)))
			})
		}
		n.RunUntil(100)
		c := n.Counters()
		return c.Injected == uint64(total) &&
			c.Delivered+c.TotalDropped() == c.Injected
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	if KindData.String() != "data" || KindRouting.String() != "routing" ||
		KindEchoRequest.String() != "echo-request" || KindEchoReply.String() != "echo-reply" ||
		Kind(9).String() == "" {
		t.Fatal("Kind.String mismatch")
	}
	if CPUModeLegacy.String() != "legacy" || CPUModeFixed.String() != "fixed" || CPUMode(9).String() != "unknown" {
		t.Fatal("CPUMode.String mismatch")
	}
}

func TestNodeLookupPanics(t *testing.T) {
	n := NewNetwork(17)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown node lookup did not panic")
		}
	}()
	n.Node(5)
}

func TestForwardCostSerialDrain(t *testing.T) {
	n := NewNetwork(51)
	nodes := n.BuildChain(
		[]string{"h1", "r", "h2"},
		[]*CPUConfig{nil, {Mode: CPUModeLegacy, InputQueueCap: 8, ForwardCost: 0.05}},
		LinkConfig{},
	)
	r, h2 := nodes[1], nodes[2]
	var arrivals []float64
	h2.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { arrivals = append(arrivals, n.Sim.Now()) },
	}
	// Stall the router 1.0..1.5 while three packets arrive and queue.
	n.Sim.Schedule(1.0, "occupy", func() { r.CPU.Occupy(0.5) })
	for _, at := range []float64{1.1, 1.2, 1.3} {
		at := at
		n.Sim.Schedule(at, "inject", func() {
			n.Inject(n.NewPacket(KindData, nodes[0].ID, h2.ID, 100))
		})
	}
	n.RunUntil(10)
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	want := []float64{1.55, 1.60, 1.65} // serial 50 ms drain after the stall
	for i, w := range want {
		if math.Abs(arrivals[i]-w) > 1e-9 {
			t.Fatalf("arrivals = %v, want %v", arrivals, want)
		}
	}
}

func TestForwardCostZeroInstantDrain(t *testing.T) {
	n := NewNetwork(52)
	nodes := n.BuildChain(
		[]string{"h1", "r", "h2"},
		[]*CPUConfig{nil, {Mode: CPUModeLegacy, InputQueueCap: 8}},
		LinkConfig{},
	)
	r, h2 := nodes[1], nodes[2]
	var arrivals []float64
	h2.OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { arrivals = append(arrivals, n.Sim.Now()) },
	}
	n.Sim.Schedule(1.0, "occupy", func() { r.CPU.Occupy(0.5) })
	for _, at := range []float64{1.1, 1.2} {
		at := at
		n.Sim.Schedule(at, "inject", func() {
			n.Inject(n.NewPacket(KindData, nodes[0].ID, h2.ID, 100))
		})
	}
	n.RunUntil(10)
	for _, at := range arrivals {
		if math.Abs(at-1.5) > 1e-9 {
			t.Fatalf("instant drain expected at 1.5: %v", arrivals)
		}
	}
}

func TestForwardCostNegativePanics(t *testing.T) {
	n := NewNetwork(53)
	defer func() {
		if recover() == nil {
			t.Fatal("negative forward cost did not panic")
		}
	}()
	n.NewNode("r", &CPUConfig{ForwardCost: -1})
}

func TestRecordRouteHops(t *testing.T) {
	n := NewNetwork(54)
	nodes := n.BuildChain([]string{"a", "b", "c"}, nil, LinkConfig{Delay: 0.001})
	var hops []Hop
	nodes[2].OnDeliver = map[Kind]func(*Packet){
		KindData: func(p *Packet) { hops = p.Hops },
	}
	pkt := n.NewPacket(KindData, nodes[0].ID, nodes[2].ID, 64)
	pkt.RecordRoute = true
	n.Inject(pkt)
	n.RunUntil(1)
	if len(hops) != 2 || hops[0].Node != nodes[1].ID || hops[1].Node != nodes[2].ID {
		t.Fatalf("hops = %+v", hops)
	}
}

func TestLinkStatsAndUtilization(t *testing.T) {
	n, a, b, l := twoHosts(t, LinkConfig{Delay: 0, Bandwidth: 1e6})
	got := 0
	b.OnDeliver = map[Kind]func(*Packet){KindData: func(*Packet) { got++ }}
	for i := 0; i < 4; i++ {
		at := float64(i) * 0.1
		n.Sim.Schedule(at, "inject", func() {
			n.Inject(n.NewPacket(KindData, a.ID, b.ID, 1000))
		})
	}
	n.RunUntil(10)
	st := l.StatsFrom(a)
	if st.Packets != 4 || st.Bytes != 4000 {
		t.Fatalf("stats = %+v", st)
	}
	// 4×1000 B × 8 bits / 1 Mbit/s = 32 ms of serialization over 10 s.
	if u := l.Utilization(a, 10); math.Abs(u-0.0032) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.0032", u)
	}
	// Reverse direction carried nothing.
	if st := l.StatsFrom(b); st.Packets != 0 {
		t.Fatalf("reverse stats = %+v", st)
	}
	if u := l.Utilization(b, 10); u != 0 {
		t.Fatalf("reverse utilization = %v", u)
	}
}
