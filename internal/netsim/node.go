package netsim

import (
	"fmt"

	"routesync/internal/des"
	"routesync/internal/rng"
)

// Broadcast is the link-layer destination meaning "every member of the
// medium" (used for routing updates on a LAN).
const Broadcast NodeID = -1

// Medium is anything a node can transmit packets on: a point-to-point
// Link or a broadcast LAN segment.
type Medium interface {
	// Transmit sends pkt from the given node toward the link-layer
	// destination `to` (Broadcast for all members). The medium applies
	// serialization, queueing and propagation before delivering to the
	// receiving node(s).
	Transmit(pkt *Packet, from *Node, to NodeID)
}

// Egress is a forwarding-table entry: which medium to send on and the
// link-layer next hop.
type Egress struct {
	Via     Medium
	NextHop NodeID
}

// Node is a host or router. Hosts have nil CPU (forwarding and delivery
// are instantaneous); routers carry a CPU whose busy periods can stall
// forwarding (see CPUConfig).
type Node struct {
	ID   NodeID
	Name string
	net  *Network

	// FIB maps final destination to egress. Routing agents (or static
	// topology setup) populate it.
	FIB map[NodeID]Egress

	// CPU is the router processor model, nil for infinitely fast nodes.
	CPU *CPU

	// OnRouting receives routing packets addressed to (or broadcast at)
	// this node, along with the medium they arrived on (for split
	// horizon and next-hop bookkeeping). Routing agents install it. If
	// nil, routing packets are counted delivered and discarded.
	OnRouting func(*Packet, Medium)

	// OnDeliver receives non-routing packets whose Dst is this node,
	// keyed by packet kind; missing kinds are counted delivered and
	// discarded.
	OnDeliver map[Kind]func(*Packet)

	// LossProb is an independent per-arrival random loss probability,
	// modelling background noise (the "little blips ... randomly spread
	// along the time axis" in the paper's Figure 3).
	LossProb float64

	media []Medium
	stats nodeCount

	// failed marks a crashed node: every arriving packet is dropped as
	// DropNodeDown until the node is restored. Owned by the node's
	// logical process — only events executing at this node (or
	// single-threaded phases) may flip it.
	failed bool

	// rnd is the node's private random stream (per-arrival loss draws).
	rnd *rng.Source
	// part is the owning logical process, nil while unpartitioned.
	part *partition
	// evSeq numbers events this node originates; with the node id it
	// forms the des scheduling key, so the same-timestamp fire order is
	// (origin node, origin sequence) under any partitioning.
	evSeq uint64
	// pktSeq numbers packets created at this node (see NewPacket).
	pktSeq uint64
}

// nodeCount is the node's internal accounting block; drop reasons are a
// fixed array (see dropIndex) so the arrival path never allocates.
type nodeCount struct {
	received       uint64
	deliveredLocal uint64
	forwardedOut   uint64
	routingIn      uint64
	dropped        [numDropReasons]uint64
}

// NodeStats is a per-node packet accounting snapshot.
type NodeStats struct {
	// Received counts packets handed to this node by any medium.
	Received uint64
	// DeliveredLocal counts packets consumed here (Dst == this node).
	DeliveredLocal uint64
	// ForwardedOut counts transit packets sent onward.
	ForwardedOut uint64
	// RoutingIn counts routing packets handed to the agent.
	RoutingIn uint64
	// Dropped counts packets this node dropped, by reason.
	Dropped map[DropReason]uint64
}

// Stats returns a snapshot of the node's counters.
func (nd *Node) Stats() NodeStats {
	snap := NodeStats{
		Received:       nd.stats.received,
		DeliveredLocal: nd.stats.deliveredLocal,
		ForwardedOut:   nd.stats.forwardedOut,
		RoutingIn:      nd.stats.routingIn,
		Dropped:        make(map[DropReason]uint64, numDropReasons),
	}
	for i, v := range nd.stats.dropped {
		if v != 0 {
			snap.Dropped[dropReasons[i]] = v
		}
	}
	return snap
}

// dropHere counts a drop against this node and the network and releases
// the packet's slot — every node-level drop is a terminal sink.
func (nd *Node) dropHere(pkt *Packet, why DropReason) {
	nd.stats.dropped[dropIndex(why)]++
	nd.net.dropAt(nd, why)
	nd.net.releaseAt(nd, pkt)
}

// Net returns the owning network.
func (nd *Node) Net() *Network { return nd.net }

// String returns "name(id)".
func (nd *Node) String() string { return fmt.Sprintf("%s(%d)", nd.Name, nd.ID) }

// sim returns the simulator this node's events run on: its partition's,
// or the network root while unpartitioned.
func (nd *Node) sim() *des.Simulator {
	if nd.part != nil {
		return nd.part.sim
	}
	return nd.net.Sim
}

// Now returns the node's current simulation time (its logical process's
// clock in a partitioned run).
func (nd *Node) Now() float64 { return nd.sim().Now() }

// nextKey draws the node's next event-ordering key: node id in the high
// bits, a per-node sequence below. Keys are globally unique, so (time,
// key) totally orders netsim events — the order cannot depend on which
// simulator an event was inserted into, or when.
func (nd *Node) nextKey() uint64 {
	nd.evSeq++
	return (uint64(nd.ID)+1)<<38 | nd.evSeq
}

// Schedule queues fn at absolute time at, keyed and clocked by this node.
// All netsim-driven events — timers, workload injections, protocol work —
// must be scheduled through a node (not the raw root simulator) to stay
// deterministic under partitioning.
func (nd *Node) Schedule(at float64, label string, fn func()) des.Event {
	return nd.sim().ScheduleKeyed(at, nd.nextKey(), label, fn)
}

// After queues fn delay seconds from the node's now, keyed by this node.
func (nd *Node) After(delay float64, label string, fn func()) des.Event {
	s := nd.sim()
	return s.ScheduleKeyed(s.Now()+delay, nd.nextKey(), label, fn)
}

// Cancel removes an event previously scheduled via this node.
func (nd *Node) Cancel(e des.Event) bool { return nd.sim().Cancel(e) }

// attachMedium registers a medium the node is connected to.
func (nd *Node) attachMedium(m Medium) {
	nd.media = append(nd.media, m)
	nd.net.bumpTopology()
}

// Media returns the media this node is attached to, in attachment order.
func (nd *Node) Media() []Medium { return append([]Medium(nil), nd.media...) }

// NumMedia returns the number of attached media.
func (nd *Node) NumMedia() int { return len(nd.media) }

// MediumAt returns the i-th attached medium (attachment order) without
// copying the media list — the allocation-free companion to Media for
// per-packet paths.
func (nd *Node) MediumAt(i int) Medium { return nd.media[i] }

// Failed reports the node's crash state.
func (nd *Node) Failed() bool { return nd.failed }

// SetFailed crashes (true) or restores (false) the node. While failed,
// every packet handed to the node by any medium is dropped as
// DropNodeDown; crashing also discards any data packets parked in the
// CPU input queue (they were waiting on a processor that just lost
// power). SetFailed does not touch the FIB or any agent state — callers
// modelling a full router crash clear those too (routing.Agent.Crash
// does). Call it from an event executing at this node or from a
// single-threaded phase: the flag is owned by the node's logical
// process.
func (nd *Node) SetFailed(failed bool) {
	nd.failed = failed
	if failed && nd.CPU != nil {
		nd.CPU.flushQueue(DropNodeDown)
	}
}

// SetRoute installs a forwarding entry for dst.
func (nd *Node) SetRoute(dst NodeID, via Medium, nextHop NodeID) {
	nd.FIB[dst] = Egress{Via: via, NextHop: nextHop}
}

// SendOn transmits pkt directly on a medium, bypassing the FIB — the
// primitive routing agents use to broadcast updates to neighbors.
func (nd *Node) SendOn(m Medium, to NodeID, pkt *Packet) {
	m.Transmit(pkt, nd, to)
}

// receive is the arrival path: every packet handed to this node by a
// medium lands here.
func (nd *Node) receive(pkt *Packet, via Medium) {
	nd.stats.received++
	if nd.failed {
		nd.dropHere(pkt, DropNodeDown)
		return
	}
	if pkt.RecordRoute {
		pkt.Hops = append(pkt.Hops, Hop{Node: nd.ID, At: nd.Now()})
	}
	if nd.LossProb > 0 && nd.rnd.Bernoulli(nd.LossProb) {
		nd.dropHere(pkt, DropRandomLoss)
		return
	}
	if pkt.Kind == KindRouting {
		// Routing packets go to the agent regardless of CPU state — the
		// router must process them (that processing is exactly what
		// occupies the CPU).
		nd.stats.routingIn++
		if nd.OnRouting != nil {
			// Ownership transfers to the agent, which releases the slot
			// when it finishes processing the update.
			nd.OnRouting(pkt, via)
			return
		}
		nd.net.countersFor(nd).delivered++
		nd.net.releaseAt(nd, pkt)
		return
	}
	if nd.CPU != nil && nd.CPU.BlocksForwarding() {
		// Legacy router behaviour (paper §2): while routing updates are
		// being processed the forwarding path is stalled; a small input
		// queue absorbs what it can and the rest is lost.
		nd.CPU.enqueueOrDrop(pkt)
		return
	}
	nd.dispatch(pkt)
}

// dispatch delivers local packets and forwards transit ones.
func (nd *Node) dispatch(pkt *Packet) {
	if pkt.Dst == nd.ID {
		nd.deliverLocal(pkt)
		return
	}
	nd.forward(pkt)
}

// deliverLocal consumes a packet at its destination: the OnDeliver
// handler borrows it for the duration of the call, and the slot is
// released when the handler returns (handlers keeping payload or path
// data must copy it).
func (nd *Node) deliverLocal(pkt *Packet) {
	nd.net.countersFor(nd).delivered++
	nd.stats.deliveredLocal++
	if fn, ok := nd.OnDeliver[pkt.Kind]; ok {
		fn(pkt)
	}
	nd.net.releaseAt(nd, pkt)
}

// forward sends a transit packet toward its destination via the FIB.
func (nd *Node) forward(pkt *Packet) {
	pkt.TTL--
	if pkt.TTL <= 0 {
		nd.dropHere(pkt, DropTTLExpired)
		return
	}
	eg, ok := nd.FIB[pkt.Dst]
	if !ok {
		nd.dropHere(pkt, DropNoRoute)
		return
	}
	nd.net.countersFor(nd).forwarded++
	nd.stats.forwardedOut++
	eg.Via.Transmit(pkt, nd, eg.NextHop)
}

// route is the injection path for locally generated packets: deliver to
// self or forward, without a TTL charge for the first hop decision.
func (nd *Node) route(pkt *Packet) {
	if nd.failed {
		// A crashed node generates nothing; workloads scheduled on it
		// lose their packets at the source.
		nd.net.dropAt(nd, DropNodeDown)
		nd.net.releaseAt(nd, pkt)
		return
	}
	if pkt.Dst == nd.ID {
		nd.deliverLocal(pkt)
		return
	}
	eg, ok := nd.FIB[pkt.Dst]
	if !ok {
		// Counted network-wide but not against the node: the packet never
		// traversed the forwarding path.
		nd.net.dropAt(nd, DropNoRoute)
		nd.net.releaseAt(nd, pkt)
		return
	}
	eg.Via.Transmit(pkt, nd, eg.NextHop)
}
