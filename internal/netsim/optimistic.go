package netsim

import (
	"fmt"
	"math"
)

// This file implements optimistic (Time-Warp-style) parallel execution.
// Where the conservative coordinator (partition.go) holds every logical
// process inside a lookahead-bounded window, the optimistic one lets each
// LP speculate up to an adaptive lease past the round start, then commits
// the prefix no straggler can reach and rolls back only the LPs that
// overshot it:
//
//  1. Round start: t_start is the globally earliest pending event. Every
//     LP checkpoints (simulator + netsim state + registered components)
//     and runs strictly before min(t_start + lease, horizon).
//  2. Commit bound: T_c = min over all undelivered boundary arrivals and
//     all pending events — nothing at or after T_c is final, everything
//     before it is. With positive-delay boundary links T_c > t_start, so
//     every round makes progress.
//  3. LPs whose last executed event is at or past T_c roll back: restore
//     the checkpoint and deterministically replay to T_c. Replay
//     regenerates exactly the boundary sends the pre-rollback execution
//     produced before T_c (the keyed (at, key, seq) event order makes the
//     replay bit-identical), so speculative sends at or past T_c simply
//     never reappear in the outbox — anti-messages by reconstruction,
//     with nothing to annihilate at the receiver because boundary sends
//     quarantine in the sender's outbox until the barrier.
//  4. The other LPs park their clocks at T_c, arrivals are exchanged,
//     and leases adapt: shrink on rollback, grow on a clean round. The
//     floor is the conservative window, so adversarial straggler
//     schedules degrade to conservative performance, and the rollback
//     depth is bounded by the lease by construction (the cascade
//     stability condition of Manita & Simonot).
//
// Zero-delay boundary links make T_c == t_start possible (a same-instant
// cross-LP cascade). The coordinator then rolls every fired LP back to
// the round start and executes that single instant serially, picking the
// globally minimal (time, key) event across LPs and exchanging arrivals
// after every step — exactly the sequential order, at sequential speed,
// for that instant only.
//
// Safety: arrivals delivered at a barrier can never land in any LP's
// past. Every committed event executed before T_c; a boundary send it
// produced was in some outbox when T_c was computed, so its arrival time
// is at least T_c; and every LP's clock is parked exactly at T_c when
// the exchange happens.

// runOptimistic advances all logical processes to the horizon by
// speculate/commit/rollback rounds. Workers are already spawned by
// runPartitioned; a steady-state round allocates nothing (checkpoints
// reuse per-LP buffers).
func (n *Network) runOptimistic(horizon float64) {
	cfg := &n.optCfg
	for {
		// Round start: the globally earliest pending event.
		tstart := math.Inf(1)
		for _, p := range n.parts {
			if at := p.sim.NextAt(); at < tstart {
				tstart = at
			}
		}
		if tstart >= horizon {
			break
		}

		// Speculate: checkpoint every LP, then run it to its private
		// lease bound, in parallel.
		n.wdone.Add(len(n.parts))
		maxBound := tstart
		for _, p := range n.parts {
			bound := tstart + p.lease
			if bound > horizon {
				bound = horizon
			}
			if bound > maxBound {
				maxBound = bound
			}
			p.start <- windowCmd{wend: bound, save: true}
		}
		n.wdone.Wait()

		// Commit bound: the earliest timestamp a not-yet-delivered
		// boundary arrival or unexecuted event could still touch.
		tc := horizon
		for _, p := range n.parts {
			for i := range p.outbox {
				if at := p.outbox[i].at; at < tc {
					tc = at
				}
			}
			if at := p.sim.NextAt(); at < tc {
				tc = at
			}
		}

		// Roll back LPs that executed at or past the commit bound; the
		// rest just park their clocks there. Restore + replay runs in
		// parallel on the worker goroutines.
		rolled := 0
		var roundDepth float64
		for _, p := range n.parts {
			p.rolled = p.sim.LastFired() >= tc
			if p.rolled {
				rolled++
				// Depth must be read before the rollback replay moves
				// LastFired back to the committed prefix.
				d := p.sim.LastFired() - tc
				n.syncStats.TotalRollbackDepth += d
				if d > roundDepth {
					roundDepth = d
				}
			}
		}
		if rolled > 0 {
			n.wdone.Add(rolled)
			for _, p := range n.parts {
				if p.rolled {
					p.start <- windowCmd{wend: tc, rollback: true}
				}
			}
			n.wdone.Wait()
		}
		for _, p := range n.parts {
			if !p.rolled && p.sim.Now() != tc {
				p.sim.SyncClock(tc)
			}
		}

		// T_c == t_start means a zero-delay boundary send at the round
		// start erased all progress: resolve that instant serially.
		if tc == tstart {
			n.serialInstant(tc)
		}

		// Adapt leases and account the round.
		for _, p := range n.parts {
			if p.rolled {
				p.lease *= cfg.Shrink
				if p.lease < cfg.MinLease {
					p.lease = cfg.MinLease
				}
			} else {
				p.lease *= cfg.Grow
				if p.lease > cfg.MaxLease {
					p.lease = cfg.MaxLease
				}
			}
		}
		lag := maxBound - tc
		n.syncStats.Windows++
		n.syncStats.Rollbacks += uint64(rolled)
		if roundDepth > n.syncStats.MaxRollbackDepth {
			n.syncStats.MaxRollbackDepth = roundDepth
		}
		if lag > n.syncStats.MaxGVTLag {
			n.syncStats.MaxGVTLag = lag
		}
		if n.syncObs != nil {
			n.syncObs.SyncWindow(tc, lag, rolled, roundDepth)
		}
		n.exchange()
	}

	// Final pass: execute events exactly at the horizon and leave every
	// clock there. With positive lookahead their boundary sends arrive
	// strictly later and stay queued for the next call, exactly like the
	// conservative inclusive pass; with zero-delay boundary links the
	// horizon instant itself can cascade across LPs and runs serially.
	if n.lookahead > 0 {
		n.runWindow(windowCmd{wend: horizon, inclusive: true})
	} else {
		n.serialInstant(horizon)
		for _, p := range n.parts {
			if p.sim.Now() != horizon {
				p.sim.SyncClock(horizon)
			}
		}
	}
	n.syncStats.Windows++
	if n.syncObs != nil {
		n.syncObs.SyncWindow(horizon, 0, 0, 0)
	}
	n.runWindow(windowCmd{quit: true})
	n.exchange()
}

// serialInstant executes every event with timestamp exactly t, across all
// logical processes, in global (time, key) order on the coordinator
// goroutine, exchanging boundary arrivals after any step that produced
// them — the sequential tie-break order, reproduced exactly. Workers are
// parked at their channel receive, so the coordinator may touch their
// simulators: the preceding wdone.Wait ordered their writes before this,
// and the next command send orders these writes before theirs.
func (n *Network) serialInstant(t float64) {
	for {
		var best *partition
		var bestKey uint64
		for _, p := range n.parts {
			at, key, ok := p.sim.NextOrd()
			if ok && at == t && (best == nil || key < bestKey) {
				best, bestKey = p, key
			}
		}
		if best == nil {
			return
		}
		best.sim.Step()
		n.syncStats.SerialEvents++
		if len(best.outbox) > 0 {
			n.exchange()
		}
	}
}

// lpSnap is the reusable netsim-side checkpoint of one logical process:
// everything events can mutate that the des.Checkpoint does not cover.
// Buffers are reused across rounds; a warm snapshot allocates nothing.
type lpSnap struct {
	count counterSet
	nodes []nodeSnap
	links []linkDirSnap
	lans  []lanSnap
	pool  poolSnap
	// arrival-slot state: arrEvents[i] shadows allArr[i].e, and
	// arrFree/arrLive shadow the slot free list.
	arrEvents []boundaryEvent
	arrFree   []*arrival
	arrLive   int
}

// nodeSnap shadows one node's mutable state.
type nodeSnap struct {
	nd        *Node
	fib       map[NodeID]Egress
	failed    bool
	lossProb  float64
	evSeq     uint64
	pktSeq    uint64
	rndState  int64
	stats     nodeCount
	onRouting func(*Packet, Medium)
	// CPU state (unused when the node has no CPU).
	cpuBusyUntil float64
	cpuTotalBusy float64
	cpuQueue     []*Packet
	cpuSteps     []*Packet
}

// linkDirSnap shadows one owned link transmit direction plus the owning
// endpoint's view of the link state.
type linkDirSnap struct {
	l         *Link
	d         int
	busy      bool
	queue     []*Packet
	inflight  []*Packet
	txPackets uint64
	txBytes   uint64
	down      bool
	cost      uint32
}

// lanSnap shadows one wholly-owned LAN: the segment flag plus every
// member transmitter, in member order.
type lanSnap struct {
	l    *LAN
	down bool
	tx   []lanTxSnap
}

type lanTxSnap struct {
	busy     bool
	queue    []lanFrame
	inflight []lanFrame
}

// poolSnap shadows the LP's packet pool: the free list (slot pointers +
// generations) and the full contents of every live packet. The foreign
// list is always empty at round start (the preceding exchange
// repatriated it).
type poolSnap struct {
	created  uint64
	free     []*Packet
	freeGens []uint32
	live     []pktSnap
	scratch  []*Packet // rollback mark-and-sweep scratch
}

// pktSnap is one live packet's full contents. hops/payload are per-entry
// reused buffers.
type pktSnap struct {
	pkt         *Packet
	id          uint64
	kind        Kind
	src, dst    NodeID
	size, ttl   int
	created     float64
	seq         int64
	recordRoute bool
	gen         uint32
	hops        []Hop
	payload     []byte
	hasPayload  bool
}

// initSnapshots precomputes, for every partition, the media state it
// owns — link directions whose sender it owns, LANs it wholly owns —
// and sizes the per-node snapshot slots, so per-round checkpoints walk
// flat slices.
func (n *Network) initSnapshots() {
	seen := make(map[Medium]bool)
	for _, nd := range n.nodes {
		for _, m := range nd.media {
			if seen[m] {
				continue
			}
			seen[m] = true
			switch med := m.(type) {
			case *Link:
				for d := range med.ends {
					p := med.ends[d].part
					p.ownedLinks = append(p.ownedLinks, ownedLinkDir{l: med, d: d})
				}
			case *LAN:
				p := med.members[0].part
				p.ownedLANs = append(p.ownedLANs, med)
			}
		}
	}
	for _, p := range n.parts {
		s := &p.snap
		s.nodes = make([]nodeSnap, len(p.nodes))
		for i, nd := range p.nodes {
			s.nodes[i].nd = nd
			s.nodes[i].fib = make(map[NodeID]Egress, len(nd.FIB))
		}
		s.links = make([]linkDirSnap, len(p.ownedLinks))
		for i, od := range p.ownedLinks {
			s.links[i].l = od.l
			s.links[i].d = od.d
		}
		s.lans = make([]lanSnap, len(p.ownedLANs))
		for i, lan := range p.ownedLANs {
			s.lans[i].l = lan
			s.lans[i].tx = make([]lanTxSnap, len(lan.members))
		}
	}
}

// saveRound checkpoints this logical process at a round boundary: the
// simulator (event queue, clock, slot generations) plus every piece of
// netsim state its events can mutate, plus registered component hooks.
// Runs on the partition's worker goroutine.
func (p *partition) saveRound() {
	p.sim.Save(&p.ckp)
	s := &p.snap
	s.count = p.count

	for i := range s.nodes {
		ns := &s.nodes[i]
		nd := ns.nd
		for k := range ns.fib {
			delete(ns.fib, k)
		}
		for k, v := range nd.FIB {
			ns.fib[k] = v
		}
		ns.failed = nd.failed
		ns.lossProb = nd.LossProb
		ns.evSeq = nd.evSeq
		ns.pktSeq = nd.pktSeq
		ns.rndState = nd.rnd.State()
		ns.stats = nd.stats
		ns.onRouting = nd.OnRouting
		if c := nd.CPU; c != nil {
			ns.cpuBusyUntil = c.busyUntil
			ns.cpuTotalBusy = c.TotalBusy
			ns.cpuQueue = append(ns.cpuQueue[:0], c.queue[c.qhead:]...)
			ns.cpuSteps = c.steps.snapshot(ns.cpuSteps)
		}
	}

	for i := range s.links {
		ls := &s.links[i]
		l, d := ls.l, ls.d
		st := &l.tx[d]
		ls.busy = st.busy
		ls.queue = append(ls.queue[:0], st.queue[st.qhead:]...)
		ls.inflight = st.inflight.snapshot(ls.inflight)
		ls.txPackets = l.txPackets[d]
		ls.txBytes = l.txBytes[d]
		ls.down = l.down[d]
		ls.cost = l.cost[d]
	}

	for i := range s.lans {
		lans := &s.lans[i]
		lan := lans.l
		lans.down = lan.down
		for j, mem := range lan.members {
			ts := &lans.tx[j]
			st := lan.tx[mem.ID]
			ts.busy = st.busy
			ts.queue = append(ts.queue[:0], st.queue[st.qhead:]...)
			ts.inflight = st.inflight.snapshot(ts.inflight)
		}
	}

	p.savePool()

	s.arrEvents = s.arrEvents[:0]
	for _, ar := range p.allArr {
		s.arrEvents = append(s.arrEvents, ar.e)
	}
	s.arrFree = append(s.arrFree[:0], p.arrFree...)
	s.arrLive = p.arrLive

	for _, c := range p.chk {
		c.SaveCheckpoint()
	}
}

// savePool snapshots the packet pool: free-slot generations and every
// live packet's contents.
func (p *partition) savePool() {
	pp := &p.pool
	s := &p.snap.pool
	if len(pp.foreign) != 0 {
		panic("netsim: foreign slots present at a round boundary")
	}
	s.created = pp.created
	s.free = append(s.free[:0], pp.free...)
	s.freeGens = s.freeGens[:0]
	for _, pkt := range pp.free {
		s.freeGens = append(s.freeGens, pkt.gen)
	}
	// Resize the live-snapshot slice without discarding the per-entry
	// hop/payload buffers of entries beyond the previous length.
	if m := len(pp.live); m <= cap(s.live) {
		s.live = s.live[:m]
	} else {
		s.live = append(s.live[:cap(s.live)], make([]pktSnap, m-cap(s.live))...)
	}
	for i, pkt := range pp.live {
		ps := &s.live[i]
		ps.pkt = pkt
		ps.id = pkt.ID
		ps.kind = pkt.Kind
		ps.src = pkt.Src
		ps.dst = pkt.Dst
		ps.size = pkt.Size
		ps.ttl = pkt.TTL
		ps.created = pkt.Created
		ps.seq = pkt.Seq
		ps.recordRoute = pkt.RecordRoute
		ps.gen = pkt.gen
		ps.hops = append(ps.hops[:0], pkt.Hops...)
		if pkt.Payload != nil {
			ps.hasPayload = true
			ps.payload = append(ps.payload[:0], pkt.Payload...)
		} else {
			ps.hasPayload = false
		}
	}
}

// restoreRound rolls this logical process back to its round-start
// checkpoint. After it returns, replaying the simulator to any bound at
// or below the round's commit time is bit-identical to an execution that
// never speculated past it. Runs on the partition's worker goroutine.
func (p *partition) restoreRound() {
	p.sim.Rewind(&p.ckp)
	s := &p.snap
	p.count = s.count

	for i := range s.nodes {
		ns := &s.nodes[i]
		nd := ns.nd
		for k := range nd.FIB {
			delete(nd.FIB, k)
		}
		for k, v := range ns.fib {
			nd.FIB[k] = v
		}
		nd.failed = ns.failed
		nd.LossProb = ns.lossProb
		nd.evSeq = ns.evSeq
		nd.pktSeq = ns.pktSeq
		nd.rnd.Seed(ns.rndState)
		nd.stats = ns.stats
		nd.OnRouting = ns.onRouting
		if c := nd.CPU; c != nil {
			c.busyUntil = ns.cpuBusyUntil
			c.TotalBusy = ns.cpuTotalBusy
			for j := range c.queue {
				c.queue[j] = nil
			}
			c.queue = append(c.queue[:0], ns.cpuQueue...)
			c.qhead = 0
			c.steps.restore(ns.cpuSteps)
		}
	}

	for i := range s.links {
		ls := &s.links[i]
		l, d := ls.l, ls.d
		st := &l.tx[d]
		st.busy = ls.busy
		for j := range st.queue {
			st.queue[j] = nil
		}
		st.queue = append(st.queue[:0], ls.queue...)
		st.qhead = 0
		st.inflight.restore(ls.inflight)
		l.txPackets[d] = ls.txPackets
		l.txBytes[d] = ls.txBytes
		l.down[d] = ls.down
		l.cost[d] = ls.cost
	}

	for i := range s.lans {
		lans := &s.lans[i]
		lan := lans.l
		lan.down = lans.down
		for j, mem := range lan.members {
			ts := &lans.tx[j]
			st := lan.tx[mem.ID]
			st.busy = ts.busy
			for k := range st.queue {
				st.queue[k] = lanFrame{}
			}
			st.queue = append(st.queue[:0], ts.queue...)
			st.qhead = 0
			st.inflight.restore(ts.inflight)
		}
	}

	p.restorePool()

	for i, ar := range p.allArr {
		ar.e = s.arrEvents[i]
	}
	p.arrFree = append(p.arrFree[:0], s.arrFree...)
	p.arrLive = s.arrLive

	// Speculative boundary sends are cancelled wholesale: the replay
	// regenerates exactly the committed ones.
	for i := range p.outbox {
		p.outbox[i] = boundaryEvent{}
	}
	p.outbox = p.outbox[:0]

	for _, c := range p.chk {
		c.RestoreCheckpoint()
	}
}

// restorePool rolls the packet pool back: live packets regain their
// saved contents and generations, free slots regain their generations
// (so a replay mints identical (slot, generation) pairs), and slots
// created during the speculation join the free list.
func (p *partition) restorePool() {
	pp := &p.pool
	s := &p.snap.pool
	// Mark every slot currently anywhere in the pool as unaccounted.
	sc := s.scratch[:0]
	for _, pkt := range pp.live {
		pkt.regIdx = -3
		sc = append(sc, pkt)
	}
	for _, pkt := range pp.free {
		pkt.regIdx = -3
		sc = append(sc, pkt)
	}
	for _, pkt := range pp.foreign {
		pkt.regIdx = -3
		sc = append(sc, pkt)
	}
	if len(sc) != len(s.free)+len(s.live)+int(pp.created-s.created) {
		panic(fmt.Sprintf("netsim: pool slot accounting broken on rollback: %d slots, %d saved free, %d saved live, %d minted",
			len(sc), len(s.free), len(s.live), pp.created-s.created))
	}
	// Saved free slots: restore generations and scrub any speculative
	// reuse (a dirty slot must not leak a payload into its next draw —
	// release scrubs, but these slots' releases are being undone).
	pp.free = pp.free[:0]
	for i, pkt := range s.free {
		pkt.gen = s.freeGens[i]
		pkt.live = false
		pkt.Payload = nil
		pkt.Hops = pkt.Hops[:0]
		pkt.regIdx = -1
		pp.free = append(pp.free, pkt)
	}
	// Saved live packets: restore full contents.
	pp.live = pp.live[:0]
	for i := range s.live {
		ps := &s.live[i]
		pkt := ps.pkt
		pkt.ID = ps.id
		pkt.Kind = ps.kind
		pkt.Src = ps.src
		pkt.Dst = ps.dst
		pkt.Size = ps.size
		pkt.TTL = ps.ttl
		pkt.Created = ps.created
		pkt.Seq = ps.seq
		pkt.RecordRoute = ps.recordRoute
		pkt.gen = ps.gen
		pkt.live = true
		pkt.Hops = append(pkt.Hops[:0], ps.hops...)
		if ps.hasPayload {
			pkt.SetPayload(ps.payload)
		} else {
			pkt.Payload = nil
		}
		pkt.regIdx = int32(len(pp.live))
		pp.live = append(pp.live, pkt)
	}
	// Sweep: still-marked slots were minted during the speculation;
	// handles to them live only in discarded state. They stay allocated
	// (created is not rolled back) and join the free list scrubbed.
	for i, pkt := range sc {
		if pkt.regIdx == -3 {
			pkt.regIdx = -1
			pkt.live = false
			pkt.gen++
			pkt.Payload = nil
			pkt.Hops = pkt.Hops[:0]
			pp.free = append(pp.free, pkt)
		}
		sc[i] = nil
	}
	s.scratch = sc[:0]
	pp.foreign = pp.foreign[:0]
}
