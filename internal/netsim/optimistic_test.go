package netsim

import (
	"fmt"
	"reflect"
	"testing"

	"routesync/internal/des"
	"routesync/internal/rng"
)

// TestOptimisticDeterminism is the optimistic engine's central property:
// the speculate/rollback/replay rounds produce results bit-identical to
// the sequential (unpartitioned) run — same counters, same per-node
// stats, same delivery timeline with the same packet ids — for every
// partition count and both queue backends, on the same faulted,
// CPU-contended scale topology the conservative determinism test uses.
func TestOptimisticDeterminism(t *testing.T) {
	ref := runScaleTopo(t, des.BackendHeap, 0)
	if ref.counters.Delivered == 0 || ref.counters.TotalDropped() == 0 {
		t.Fatalf("degenerate reference run: %+v", ref.counters)
	}
	for _, backend := range []des.Backend{des.BackendHeap, des.BackendCalendar} {
		for _, k := range []int{1, 2, 4} {
			name := fmt.Sprintf("%v/k=%d", backend, k)
			got := runScaleTopo(t, backend, k, WithSyncMode(SyncOptimistic))
			if !reflect.DeepEqual(got.counters, ref.counters) {
				t.Errorf("%s: counters diverge:\n got %+v\nwant %+v", name, got.counters, ref.counters)
			}
			if !reflect.DeepEqual(got.nodeStats, ref.nodeStats) {
				for i := range got.nodeStats {
					if !reflect.DeepEqual(got.nodeStats[i], ref.nodeStats[i]) {
						t.Errorf("%s: node %d stats diverge:\n got %+v\nwant %+v",
							name, i, got.nodeStats[i], ref.nodeStats[i])
					}
				}
			}
			if !reflect.DeepEqual(got.deliveries, ref.deliveries) {
				t.Errorf("%s: delivery timelines diverge", name)
			}
		}
	}
}

// runZeroDelayCascade builds two hosts joined by a zero-delay link and
// drives same-instant cross-partition request/reply cascades through it:
// each delivery re-injects a response at the same timestamp until the
// packet's hop budget (carried in Seq) runs out. k == 0 runs
// unpartitioned; k == 2 must split the cascade across logical processes.
func runZeroDelayCascade(t *testing.T, k int) (records []deliveryRecord, stats SyncStats) {
	t.Helper()
	nw := NewNetwork(11)
	a := nw.NewNode("a", nil)
	b := nw.NewNode("b", nil)
	nw.Connect(a, b, LinkConfig{Delay: 0})
	nw.InstallStaticRoutes()
	if k > 0 {
		nw.Partition(k, func(id NodeID) int { return int(id) }, WithSyncMode(SyncOptimistic))
	}
	// Per-node record slices: each is appended (and rolled back) only on
	// its node's logical process.
	perNode := make([][]deliveryRecord, 2)
	bounce := func(ni int, self *Node, peer NodeID) func(*Packet) {
		return func(p *Packet) {
			perNode[ni] = append(perNode[ni], deliveryRecord{At: self.Now(), Src: p.Src, Seq: p.Seq, ID: p.ID})
			if p.Seq > 0 {
				reply := nw.NewPacket(KindData, self.ID, peer, 64)
				reply.Seq = p.Seq - 1
				nw.Inject(reply)
			}
		}
	}
	a.OnDeliver = map[Kind]func(*Packet){KindData: bounce(0, a, b.ID)}
	b.OnDeliver = map[Kind]func(*Packet){KindData: bounce(1, b, a.ID)}
	for ni, nd := range []*Node{a, b} {
		ni := ni
		saved := 0
		nw.RegisterCheckpoint(nd, CheckpointFuncs{
			Save:    func() { saved = len(perNode[ni]) },
			Restore: func() { perNode[ni] = perNode[ni][:saved] },
		})
	}
	// Cascades of varying depth, some sharing a start instant from both
	// ends, plus plain one-shot traffic between them.
	for i := 0; i < 20; i++ {
		i := i
		at := 0.1 + 0.13*float64(i)
		a.Schedule(at, "cascade", func() {
			pkt := nw.NewPacket(KindData, a.ID, b.ID, 64)
			pkt.Seq = int64(3 + i%5)
			nw.Inject(pkt)
		})
		b.Schedule(at, "cascade-b", func() {
			pkt := nw.NewPacket(KindData, b.ID, a.ID, 64)
			pkt.Seq = int64(i % 4)
			nw.Inject(pkt)
		})
	}
	for _, h := range []float64{1.3, 2.71, 4} {
		nw.RunUntil(h)
	}
	return append(append([]deliveryRecord{}, perNode[0]...), perNode[1]...), nw.SyncStats()
}

// TestOptimisticZeroDelay checks the serial-instant path: zero-delay
// boundary links are accepted in optimistic mode, same-instant cross-LP
// cascades execute in exact sequential order, and the serial-event
// counter proves that path actually ran.
func TestOptimisticZeroDelay(t *testing.T) {
	ref, _ := runZeroDelayCascade(t, 0)
	if len(ref) == 0 {
		t.Fatal("no deliveries; cascade is wired wrong")
	}
	got, stats := runZeroDelayCascade(t, 2)
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("zero-delay cascade diverges: got %d records, want %d", len(got), len(ref))
	}
	if stats.SerialEvents == 0 {
		t.Fatal("no serial events: the zero-delay instants never exercised serialInstant")
	}
	if stats.Mode != SyncOptimistic {
		t.Fatalf("mode = %v", stats.Mode)
	}
}

// runStragglerTopo builds an adversarial straggler schedule: partition 0
// executes a dense local event stream (it speculates deep into every
// round), while partition 1 sends boundary packets at irregular times
// that land just behind partition 0's progress, forcing rollbacks round
// after round.
func runStragglerTopo(t *testing.T, k int, opts ...PartitionOption) (snap partitionSnapshot, stats SyncStats) {
	t.Helper()
	nw := NewNetwork(23)
	fast := nw.NewNode("fast", nil)
	straggler := nw.NewNode("straggler", nil)
	nw.Connect(fast, straggler, LinkConfig{Delay: 0.01, Bandwidth: 10e6, QueueCap: 32})
	nw.InstallStaticRoutes()
	if k > 0 {
		nw.Partition(k, func(id NodeID) int { return int(id) % k }, opts...)
	}

	var recs []deliveryRecord
	if fast.OnDeliver == nil {
		fast.OnDeliver = make(map[Kind]func(*Packet))
	}
	fast.OnDeliver[KindData] = func(p *Packet) {
		recs = append(recs, deliveryRecord{At: fast.Now(), Src: p.Src, Seq: p.Seq, ID: p.ID})
	}
	saved := 0
	nw.RegisterCheckpoint(fast, CheckpointFuncs{
		Save:    func() { saved = len(recs) },
		Restore: func() { recs = recs[:saved] },
	})

	// Dense local work on the fast LP: an event per millisecond. The
	// counter is rolled back with the LP, so its final value proves
	// speculative re-execution was exactly compensated.
	fastCount := 0
	for i := 0; i < 4000; i++ {
		fast.Schedule(0.001*float64(i), "dense", func() { fastCount++ })
	}
	savedCount := 0
	nw.RegisterCheckpoint(fast, CheckpointFuncs{
		Save:    func() { savedCount = fastCount },
		Restore: func() { fastCount = savedCount },
	})
	// Irregular straggler sends clustered at ~20 Hz with jitter: each
	// arrival lands 10 ms downstream, far behind the fast LP's lease.
	r := rng.New(99)
	at := 0.05
	seq := int64(0)
	for at < 3.9 {
		at += 0.03 + 0.04*r.Float64()
		when, s := at, seq
		straggler.Schedule(when, "straggle", func() {
			pkt := nw.NewPacket(KindData, straggler.ID, fast.ID, 128)
			pkt.Seq = s
			nw.Inject(pkt)
		})
		seq++
	}
	for _, h := range []float64{1.1, 4} {
		nw.RunUntil(h)
	}
	snap = partitionSnapshot{deliveries: map[NodeID][]deliveryRecord{fast.ID: recs}}
	snap.counters = nw.Counters()
	if fastCount != 4000 {
		t.Fatalf("dense events fired %d times, want 4000", fastCount)
	}
	return snap, nw.SyncStats()
}

// TestOptimisticRollbackBound drives the adversarial straggler schedule
// and checks the two lease-bound properties: rollbacks actually happen
// (the schedule is adversarial), and no rollback is ever deeper than the
// configured maximum lease — the bounded-rollback guarantee.
func TestOptimisticRollbackBound(t *testing.T) {
	ref, _ := runStragglerTopo(t, 0)
	if ref.counters.Delivered == 0 {
		t.Fatalf("degenerate reference: %+v", ref.counters)
	}
	cfg := OptimisticConfig{MaxLease: 0.5}
	got, stats := runStragglerTopo(t, 2, WithOptimistic(cfg))
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("straggler run diverges:\n got %+v\nwant %+v", got.counters, ref.counters)
	}
	if stats.Rollbacks == 0 {
		t.Fatal("adversarial schedule produced no rollbacks; the test is inert")
	}
	if stats.MaxRollbackDepth > cfg.MaxLease {
		t.Errorf("MaxRollbackDepth %.4f exceeds MaxLease %.4f", stats.MaxRollbackDepth, cfg.MaxLease)
	}
	if stats.MaxGVTLag > cfg.MaxLease {
		t.Errorf("MaxGVTLag %.4f exceeds MaxLease %.4f", stats.MaxGVTLag, cfg.MaxLease)
	}
	if stats.TotalRollbackDepth < stats.MaxRollbackDepth {
		t.Errorf("TotalRollbackDepth %.4f < MaxRollbackDepth %.4f", stats.TotalRollbackDepth, stats.MaxRollbackDepth)
	}
}

// TestOptimisticStats sanity-checks the stats surface on a clean run:
// conservative runs report windows but never rollbacks, and the
// sync-mode accessors reflect the option.
func TestOptimisticStats(t *testing.T) {
	snap, stats := runStragglerTopo(t, 2, WithSyncMode(SyncConservative))
	if snap.counters.Delivered == 0 {
		t.Fatal("degenerate run")
	}
	if stats.Mode != SyncConservative {
		t.Fatalf("mode = %v", stats.Mode)
	}
	if stats.Windows == 0 {
		t.Fatal("conservative run reported no windows")
	}
	if stats.Rollbacks != 0 || stats.SerialEvents != 0 {
		t.Fatalf("conservative run reported optimistic work: %+v", stats)
	}
}
