package netsim

import (
	"fmt"
	"math"

	"routesync/internal/des"
)

// This file implements conservative parallel execution for the network
// simulator: the topology is split into K logical processes (LPs), each
// owning a subset of nodes and running its own des.Simulator, and the LPs
// advance together in bounded time windows (a barrier/YAWNS-style
// scheme). The propagation Delay of every cross-partition link is the
// lookahead: a packet transmitted during a window [W, W+L) cannot arrive
// at another LP before W+L, so each LP may run the whole window without
// hearing from its peers, and boundary arrivals are exchanged at the
// barrier.
//
// Determinism: every event carries a (origin node, origin sequence) key
// (see Node.nextKey) and des orders equal-time events by key, so the
// execution order inside any LP is a pure function of the simulated
// system — boundary arrivals injected at a barrier order exactly as the
// same arrivals scheduled directly in a sequential run. Random draws,
// packet ids and counters are all per-node or per-partition, so a
// partitioned run is bit-identical to the sequential run for any K.

// boundaryEvent is a packet arrival whose receiver is owned by another
// logical process. It carries the des ordering key drawn at transmission
// time, so the receiving LP schedules it exactly as a sequential run
// would have.
type boundaryEvent struct {
	at   float64
	key  uint64
	pkt  *Packet
	dst  *Node
	link *Link
}

// windowCmd is one coordinator→worker instruction: run a window to wend
// (strictly before, or inclusive for the final horizon pass), or quit.
// save first checkpoints the logical process (optimistic speculation);
// rollback first restores the round-start checkpoint, turning the window
// into a deterministic replay up to the commit bound.
type windowCmd struct {
	wend      float64
	inclusive bool
	quit      bool
	save      bool
	rollback  bool
}

// arrival is a pooled boundary-arrival slot: the event payload plus a
// closure allocated once per slot, so scheduling a cross-partition
// delivery never allocates at steady state. The closure recycles its own
// slot after firing.
type arrival struct {
	e  boundaryEvent
	fn func()
}

// partition is one logical process: a node subset on a private simulator
// with private counters, a private packet pool, and a private outbox of
// boundary arrivals.
type partition struct {
	idx   int
	sim   *des.Simulator
	nodes []*Node
	count counterSet
	net   *Network
	// pool is this logical process's packet slot pool (see pktpool.go).
	pool pktPool
	// outbox collects boundary arrivals produced while this partition
	// executes a window; only this partition's goroutine (or the
	// single-threaded setup phase) appends, and only the coordinator
	// drains it, strictly after the window barrier. The backing array is
	// reused across windows (drained to [:0], never reallocated).
	outbox []boundaryEvent
	// arrFree is the free list of arrival slots scheduled into this
	// partition's simulator; arrLive counts slots scheduled but not yet
	// fired. The coordinator pops slots between windows and each slot's
	// own firing (on this partition's goroutine) pushes it back — both
	// sides are ordered by the window barrier, so no lock is needed.
	arrFree []*arrival
	arrLive int
	// start carries window commands to this partition's worker goroutine;
	// runFn is the worker body. Both are created once at Partition so a
	// RunUntil call allocates neither channels nor closures.
	start chan windowCmd
	runFn func()

	// Optimistic-mode state (see optimistic.go). ckp/snap are the
	// round-start checkpoint of the simulator and of this LP's netsim
	// state; chk holds component checkpoint hooks (RegisterCheckpoint);
	// allArr registers every arrival slot ever minted so a rollback can
	// restore slots recycled by speculatively fired arrivals; lease is
	// the adaptive speculation bound and rolled the current round's
	// rollback flag; ownedLinks/ownedLANs are the media directions this
	// LP checkpoints, precomputed at Partition.
	ckp        des.Checkpoint
	snap       lpSnap
	chk        []Checkpointable
	allArr     []*arrival
	lease      float64
	rolled     bool
	ownedLinks []ownedLinkDir
	ownedLANs  []*LAN
}

// ownedLinkDir is one link transmit direction owned by a logical process
// (the direction whose sender the LP owns).
type ownedLinkDir struct {
	l *Link
	d int
}

func (p *partition) send(e boundaryEvent) { p.outbox = append(p.outbox, e) }

// getArrival pops a free arrival slot, or mints one (with its hoisted
// firing closure) when the pool is empty. Called only by the coordinator
// between windows.
func (p *partition) getArrival() *arrival {
	p.arrLive++
	if k := len(p.arrFree); k > 0 {
		ar := p.arrFree[k-1]
		p.arrFree = p.arrFree[:k-1]
		return ar
	}
	ar := &arrival{}
	ar.fn = func() {
		e := ar.e
		ar.e = boundaryEvent{}
		p.arrFree = append(p.arrFree, ar)
		p.arrLive--
		e.link.deliverTo(e.dst, e.pkt)
	}
	p.allArr = append(p.allArr, ar)
	return ar
}

// Partition splits the network into k logical processes. owner maps every
// node id to its partition index in [0, k). It must be called after the
// topology is built but before any events are scheduled; agents and
// workloads attached afterwards schedule through their nodes and land on
// the owning partition's simulator automatically.
//
// Options select the synchronization mode (WithSyncMode, WithOptimistic);
// without one the ROUTESYNC_SYNC_MODE environment variable decides,
// defaulting to conservative.
//
// Constraints checked here:
//   - every LAN must be wholly inside one partition (broadcast delivery
//     is synchronous within a segment);
//   - in conservative mode, every link between partitions must have
//     Delay > 0 — that delay is the lookahead the bounded-window advance
//     is built on. Optimistic mode accepts zero-delay boundary links
//     (same-instant cross-LP cascades are resolved serially).
func (n *Network) Partition(k int, owner func(NodeID) int, opts ...PartitionOption) {
	if k < 1 {
		panic("netsim: Partition needs k >= 1")
	}
	if n.parts != nil {
		panic("netsim: network is already partitioned")
	}
	if n.Sim.Pending() > 0 {
		panic("netsim: Partition called with events already scheduled; partition before attaching agents and workloads")
	}
	po := partitionOpts{mode: DefaultSyncMode()}
	for _, opt := range opts {
		opt(&po)
	}
	parts := make([]*partition, k)
	for i := range parts {
		sim := des.NewBackend(n.Sim.Backend())
		if n.obs != nil {
			sim.SetObserver(n.obs)
		}
		p := &partition{idx: i, sim: sim, net: n, start: make(chan windowCmd)}
		p.runFn = func() {
			for {
				cmd := <-p.start
				if cmd.quit {
					n.wdone.Done()
					return
				}
				if cmd.save {
					p.saveRound()
				}
				if cmd.rollback {
					p.restoreRound()
				}
				if cmd.inclusive {
					p.sim.RunUntil(cmd.wend)
				} else {
					p.sim.RunBefore(cmd.wend)
				}
				n.wdone.Done()
			}
		}
		parts[i] = p
	}
	for _, nd := range n.nodes {
		o := owner(nd.ID)
		if o < 0 || o >= k {
			panic(fmt.Sprintf("netsim: owner(%d) = %d out of range [0,%d)", nd.ID, o, k))
		}
		nd.part = parts[o]
		parts[o].nodes = append(parts[o].nodes, nd)
	}
	// Validate media against the assignment and derive the lookahead.
	lookahead := math.Inf(1)
	seen := make(map[Medium]bool)
	for _, nd := range n.nodes {
		for _, m := range nd.media {
			if seen[m] {
				continue
			}
			seen[m] = true
			switch med := m.(type) {
			case *Link:
				if med.ends[0].part != med.ends[1].part {
					if med.cfg.Delay <= 0 && po.mode == SyncConservative {
						panic(fmt.Sprintf("netsim: link %v—%v crosses partitions with zero delay; conservative mode needs Delay > 0 for lookahead (optimistic mode accepts zero-delay boundary links)",
							med.ends[0], med.ends[1]))
					}
					if med.cfg.Delay < lookahead {
						lookahead = med.cfg.Delay
					}
				}
			case *LAN:
				p0 := med.members[0].part
				for _, mem := range med.members[1:] {
					if mem.part != p0 {
						panic(fmt.Sprintf("netsim: LAN spans partitions (members %v and %v); keep each LAN inside one partition",
							med.members[0], mem))
					}
				}
			}
		}
	}
	n.parts = parts
	n.lookahead = lookahead
	n.syncStats.Mode = po.mode
	if po.mode == SyncOptimistic {
		n.optCfg = po.opt.withDefaults(lookahead)
		for _, p := range parts {
			p.pool.track = true
			p.lease = n.optCfg.InitialLease
		}
		if k > 1 {
			n.initSnapshots()
		}
	}
}

// NumPartitions returns the number of logical processes (0 while
// unpartitioned).
func (n *Network) NumPartitions() int { return len(n.parts) }

// PartitionOf returns the partition index owning the node, or -1 while
// unpartitioned.
func (n *Network) PartitionOf(id NodeID) int {
	nd := n.Node(id)
	if nd.part == nil {
		return -1
	}
	return nd.part.idx
}

// Lookahead returns the conservative synchronization window: the minimum
// propagation delay across partition-crossing links (+Inf when no link
// crosses, i.e. the partitions are independent).
func (n *Network) Lookahead() float64 { return n.lookahead }

// exchange drains every partition's outbox into the receiving partitions'
// simulators. Called only from the coordinator, strictly between windows
// (or during single-threaded setup/teardown), so no partition goroutine
// is running. Insertion order is irrelevant: the carried keys give
// boundary arrivals their sequential-run order. Each arrival rides a
// pooled slot with a pre-built closure, and the outbox is drained in
// place, so a steady-state window exchanges its whole batch without
// allocating.
func (n *Network) exchange() {
	for _, p := range n.parts {
		for i := range p.outbox {
			e := p.outbox[i]
			dp := e.dst.part
			if p.pool.track && e.pkt.pooled && e.pkt.regIdx >= 0 {
				// The packet changes logical process: move its live-registry
				// membership to the receiver so the receiver's rollback
				// snapshots cover it from here on.
				p.pool.regRemove(e.pkt)
				e.pkt.regIdx = int32(len(dp.pool.live))
				dp.pool.live = append(dp.pool.live, e.pkt)
			}
			ar := dp.getArrival()
			ar.e = e
			dp.sim.ScheduleKeyed(e.at, e.key, "boundary-arrival", ar.fn)
			p.outbox[i] = boundaryEvent{} // drop the packet reference
		}
		p.outbox = p.outbox[:0]
	}
	// Window barriers are also when released slots that drifted across
	// partitions go home (see pktPool.repatriate), killing the structural
	// alloc floor one-way cross-boundary flows would otherwise build.
	for _, p := range n.parts {
		p.pool.repatriate()
	}
}

// runWindow runs one synchronized window on every worker: signal all
// partitions, then wait for all to finish. The coordinator writes the
// command before the channel send, which orders it ahead of the worker's
// read; wdone.Wait orders every worker's writes before the coordinator
// continues.
func (n *Network) runWindow(cmd windowCmd) {
	n.wdone.Add(len(n.parts))
	for _, p := range n.parts {
		p.start <- cmd
	}
	n.wdone.Wait()
}

// runPartitioned advances all logical processes to the horizon with
// bounded-window barrier synchronization. Workers are spawned per call
// from per-partition bodies built at Partition time and told to quit
// after the final window, so a network never retains goroutines between
// runs and a steady-state call allocates nothing.
func (n *Network) runPartitioned(horizon float64) {
	if n.Sim.Pending() > 0 {
		panic("netsim: events pending on the root simulator of a partitioned network; schedule runtime events through nodes")
	}
	// Boundary arrivals produced at the very end of a previous call (by
	// events firing exactly at that call's horizon) are still in the
	// outboxes; deliver them before planning windows.
	n.exchange()

	if len(n.parts) == 1 {
		// One LP: no boundaries, no goroutines — this is exactly the
		// sequential execution on a private simulator.
		n.parts[0].sim.RunUntil(horizon)
		return
	}

	for _, p := range n.parts {
		go p.runFn()
	}

	if n.syncStats.Mode == SyncOptimistic {
		n.runOptimistic(horizon)
		return
	}

	for {
		// The next window starts at the globally earliest pending event.
		next := math.Inf(1)
		for _, p := range n.parts {
			if at := p.sim.NextAt(); at < next {
				next = at
			}
		}
		if next >= horizon {
			break
		}
		wend := horizon
		if w := next + n.lookahead; w < horizon {
			wend = w
		}
		// Strictly-before execution: an event exactly at wend must order
		// against boundary arrivals landing at wend, which are only
		// delivered at the barrier below.
		n.runWindow(windowCmd{wend: wend})
		n.syncStats.Windows++
		if n.syncObs != nil {
			n.syncObs.SyncWindow(wend, 0, 0, 0)
		}
		n.exchange()
	}
	// Inclusive pass: execute events exactly at the horizon and leave
	// every clock there. Boundary arrivals they produce land at
	// > horizon (positive delay) and stay queued for the next call.
	n.runWindow(windowCmd{wend: horizon, inclusive: true})
	n.syncStats.Windows++
	if n.syncObs != nil {
		n.syncObs.SyncWindow(horizon, 0, 0, 0)
	}
	n.runWindow(windowCmd{quit: true})
	n.exchange()
}
