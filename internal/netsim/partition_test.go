package netsim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"routesync/internal/des"
)

// partitionSnapshot is everything a run observes: global counters,
// per-node stats, and the exact delivery timeline at every sink.
type partitionSnapshot struct {
	counters   Counters
	nodeStats  []NodeStats
	deliveries map[NodeID][]deliveryRecord
}

type deliveryRecord struct {
	At  float64
	Src NodeID
	Seq int64
	ID  uint64
}

// buildScaleTopo builds a two-level AS topology with legacy CPUs and a
// CBR + bursty traffic pattern crossing domain boundaries, then runs it
// in several RunUntil slices (exercising leftover boundary events between
// calls). owner == nil runs unpartitioned.
func runScaleTopo(t *testing.T, backend des.Backend, k int, opts ...PartitionOption) partitionSnapshot {
	t.Helper()
	nw := newNetworkBackend(7, backend)
	const numAS, perAS = 6, 5
	topo := nw.BuildTwoLevelAS(TwoLevelASConfig{
		NumAS:        numAS,
		RoutersPerAS: perAS,
		IntraLink:    LinkConfig{Delay: 0.002, Bandwidth: 10e6, QueueCap: 16},
		InterLink:    LinkConfig{Delay: 0.01, Bandwidth: 1.5e6, QueueCap: 16},
		CPU:          &CPUConfig{Mode: CPUModeLegacy, InputQueueCap: 4, ForwardCost: 0.0002},
		Chords:       2,
	})
	// A couple of measurement hosts on distinct domains.
	hostA := nw.NewNode("hostA", nil)
	hostB := nw.NewNode("hostB", nil)
	nw.Connect(hostA, topo.Routers[0][2], LinkConfig{Delay: 0.001})
	nw.Connect(hostB, topo.Routers[numAS-1][3], LinkConfig{Delay: 0.001})
	// Random per-arrival loss at two transit routers.
	topo.Routers[1][0].LossProb = 0.05
	topo.Routers[3][1].LossProb = 0.05
	nw.InstallStaticRoutes()

	if k > 0 {
		nw.Partition(k, OwnerByBlock(perAS, numAS, k), opts...)
	}

	// Mid-run faults through the keyed event layer: flap two backbone
	// links (both cross partition boundaries for k ≥ 2) and crash/restore
	// one transit router while traffic flows. Scheduled transitions must
	// land after Partition, like every runtime event.
	l01 := linkBetweenNodes(topo.Gateways[0], topo.Gateways[1])
	l01.FailAt(1.1)
	l01.RestoreAt(2.3)
	l01.FailAt(6.8)
	l01.RestoreAt(8.0)
	l34 := linkBetweenNodes(topo.Gateways[3], topo.Gateways[4])
	l34.FailAt(0.9)
	l34.RestoreAt(4.2)
	crash := topo.Routers[numAS-1][3] // hostB's access router: transit for all host↔host CBR
	crash.Schedule(3.3, "crash", func() { crash.SetFailed(true) })
	crash.Schedule(5.1, "restore", func() { crash.SetFailed(false) })

	// Per-sink slices, not a shared map: each OnDeliver closure fires on
	// its sink's logical process, so every slice stays goroutine-confined.
	sinks := []*Node{hostA, hostB, topo.Routers[2][2]}
	perSink := make([][]deliveryRecord, len(sinks))
	for si, sink := range sinks {
		si, sink := si, sink
		if sink.OnDeliver == nil {
			sink.OnDeliver = make(map[Kind]func(*Packet))
		}
		sink.OnDeliver[KindData] = func(p *Packet) {
			perSink[si] = append(perSink[si],
				deliveryRecord{At: sink.Now(), Src: p.Src, Seq: p.Seq, ID: p.ID})
		}
		// Append-only recorder: its optimistic-rollback checkpoint is a
		// length to truncate to (no-op in conservative runs).
		saved := 0
		nw.RegisterCheckpoint(sink, CheckpointFuncs{
			Save:    func() { saved = len(perSink[si]) },
			Restore: func() { perSink[si] = perSink[si][:saved] },
		})
	}

	// Traffic: CBR host↔host both ways, plus bursts from every gateway to
	// the far host, plus CPU occupancy storms stalling legacy forwarding.
	sendCBR := func(src *Node, dst NodeID, start, gap float64, count int, size int) {
		for i := 0; i < count; i++ {
			i := i
			src.Schedule(start+float64(i)*gap, "cbr", func() {
				pkt := nw.NewPacket(KindData, src.ID, dst, size)
				pkt.Seq = int64(i)
				nw.Inject(pkt)
			})
		}
	}
	sendCBR(hostA, hostB.ID, 0.05, 0.0201, 400, 180)
	sendCBR(hostB, hostA.ID, 0.07, 0.0301, 300, 180)
	sendCBR(hostB, topo.Routers[2][2].ID, 0.11, 0.0507, 150, 512)
	for a := 0; a < numAS; a++ {
		gw := topo.Gateways[a]
		sendCBR(gw, hostB.ID, 0.2+0.01*float64(a), 0.11, 60, 256)
	}
	for a := 0; a < numAS; a++ {
		for i := 0; i < perAS; i++ {
			r := topo.Routers[a][i]
			at := 0.5 + 0.37*float64(a*perAS+i)
			r.Schedule(at, "occupy", func() { r.CPU.Occupy(0.05) })
		}
	}

	// Advance in uneven slices so boundary events straddle RunUntil calls.
	for _, h := range []float64{0.3, 0.31, 2.5, 7, 12} {
		nw.RunUntil(h)
	}
	snap := partitionSnapshot{deliveries: make(map[NodeID][]deliveryRecord)}
	for si, sink := range sinks {
		snap.deliveries[sink.ID] = perSink[si]
	}
	snap.counters = nw.Counters()
	for _, nd := range nw.Nodes() {
		snap.nodeStats = append(snap.nodeStats, nd.Stats())
	}
	return snap
}

// newNetworkBackend is a test helper constructing a Network on an
// explicit backend (NewNetwork uses the ambient default).
func newNetworkBackend(seed int64, b des.Backend) *Network {
	n := NewNetwork(seed)
	n.Sim = des.NewBackend(b)
	return n
}

// TestPartitionDeterminism is the central property: for every partition
// count K (including the unpartitioned network) and both queue backends,
// a run is bit-identical — same counters, same per-node stats, same
// delivery timeline with the same packet ids.
func TestPartitionDeterminism(t *testing.T) {
	ref := runScaleTopo(t, des.BackendHeap, 0)
	if ref.counters.Delivered == 0 || ref.counters.TotalDropped() == 0 {
		t.Fatalf("degenerate reference run: %+v", ref.counters)
	}
	if ref.counters.Drops[DropLinkDown] == 0 || ref.counters.Drops[DropNodeDown] == 0 {
		t.Fatalf("fault machinery inert — no down-state drops: %+v", ref.counters.Drops)
	}
	found := false
	for _, rec := range ref.deliveries {
		if len(rec) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no deliveries recorded; test topology is wired wrong")
	}
	for _, backend := range []des.Backend{des.BackendHeap, des.BackendCalendar} {
		for _, k := range []int{0, 1, 2, 3, 6} {
			if backend == des.BackendHeap && k == 0 {
				continue // the reference itself
			}
			name := fmt.Sprintf("%v/k=%d", backend, k)
			got := runScaleTopo(t, backend, k)
			if !reflect.DeepEqual(got.counters, ref.counters) {
				t.Errorf("%s: counters diverge:\n got %+v\nwant %+v", name, got.counters, ref.counters)
			}
			if !reflect.DeepEqual(got.nodeStats, ref.nodeStats) {
				for i := range got.nodeStats {
					if !reflect.DeepEqual(got.nodeStats[i], ref.nodeStats[i]) {
						t.Errorf("%s: node %d stats diverge:\n got %+v\nwant %+v",
							name, i, got.nodeStats[i], ref.nodeStats[i])
					}
				}
			}
			if !reflect.DeepEqual(got.deliveries, ref.deliveries) {
				t.Errorf("%s: delivery timelines diverge", name)
			}
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	t.Run("lan-span", func(t *testing.T) {
		nw := NewNetwork(1)
		a := nw.NewNode("a", nil)
		b := nw.NewNode("b", nil)
		nw.NewLAN([]*Node{a, b}, LANConfig{Delay: 0.001})
		defer expectPanic(t, "LAN spanning partitions")
		nw.Partition(2, func(id NodeID) int { return int(id) })
	})
	t.Run("zero-delay-boundary", func(t *testing.T) {
		// Pinned conservative: only that mode needs positive lookahead
		// (the suite may be swept with ROUTESYNC_SYNC_MODE=optimistic).
		nw := NewNetwork(1)
		a := nw.NewNode("a", nil)
		b := nw.NewNode("b", nil)
		nw.Connect(a, b, LinkConfig{Delay: 0})
		defer expectPanic(t, "zero-delay boundary link")
		nw.Partition(2, func(id NodeID) int { return int(id) }, WithSyncMode(SyncConservative))
	})
	t.Run("zero-delay-boundary-optimistic-ok", func(t *testing.T) {
		nw := NewNetwork(1)
		a := nw.NewNode("a", nil)
		b := nw.NewNode("b", nil)
		nw.Connect(a, b, LinkConfig{Delay: 0})
		nw.Partition(2, func(id NodeID) int { return int(id) }, WithSyncMode(SyncOptimistic))
		if nw.Lookahead() != 0 {
			t.Fatalf("Lookahead = %v, want 0", nw.Lookahead())
		}
	})
	t.Run("owner-range", func(t *testing.T) {
		nw := NewNetwork(1)
		nw.NewNode("a", nil)
		defer expectPanic(t, "owner out of range")
		nw.Partition(2, func(NodeID) int { return 7 })
	})
	t.Run("double-partition", func(t *testing.T) {
		nw := NewNetwork(1)
		nw.NewNode("a", nil)
		nw.Partition(1, func(NodeID) int { return 0 })
		defer expectPanic(t, "double partition")
		nw.Partition(1, func(NodeID) int { return 0 })
	})
	t.Run("pending-events", func(t *testing.T) {
		nw := NewNetwork(1)
		nd := nw.NewNode("a", nil)
		nd.Schedule(1, "x", func() {})
		defer expectPanic(t, "partition with pending events")
		nw.Partition(1, func(NodeID) int { return 0 })
	})
	t.Run("root-events-after-partition", func(t *testing.T) {
		nw := NewNetwork(1)
		a := nw.NewNode("a", nil)
		b := nw.NewNode("b", nil)
		nw.Connect(a, b, LinkConfig{Delay: 0.01})
		nw.Partition(2, func(id NodeID) int { return int(id) })
		nw.Sim.Schedule(1, "rogue", func() {})
		defer expectPanic(t, "root events in partitioned run")
		nw.RunUntil(2)
	})
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s did not panic", what)
	}
}

func TestPartitionAccessors(t *testing.T) {
	nw := NewNetwork(1)
	a := nw.NewNode("a", nil)
	b := nw.NewNode("b", nil)
	c := nw.NewNode("c", nil)
	nw.Connect(a, b, LinkConfig{Delay: 0.25})
	nw.Connect(b, c, LinkConfig{Delay: 0.125})
	if nw.NumPartitions() != 0 || nw.PartitionOf(a.ID) != -1 {
		t.Fatal("unpartitioned accessors wrong")
	}
	if !math.IsInf(nw.Lookahead(), 0) && nw.Lookahead() != 0 {
		t.Fatalf("lookahead before partition = %v", nw.Lookahead())
	}
	nw.Partition(2, func(id NodeID) int {
		if id == c.ID {
			return 1
		}
		return 0
	})
	if nw.NumPartitions() != 2 {
		t.Fatalf("NumPartitions = %d", nw.NumPartitions())
	}
	if nw.PartitionOf(a.ID) != 0 || nw.PartitionOf(c.ID) != 1 {
		t.Fatal("PartitionOf wrong")
	}
	// Only b—c crosses: lookahead is its delay.
	if nw.Lookahead() != 0.125 {
		t.Fatalf("Lookahead = %v, want 0.125", nw.Lookahead())
	}
	// Independent partitions: +Inf lookahead.
	nw2 := NewNetwork(2)
	nw2.NewNode("x", nil)
	nw2.NewNode("y", nil)
	nw2.Partition(2, func(id NodeID) int { return int(id) })
	if !math.IsInf(nw2.Lookahead(), 1) {
		t.Fatalf("disconnected lookahead = %v, want +Inf", nw2.Lookahead())
	}
	nw2.RunUntil(5)
	if nw2.Now() != 5 {
		t.Fatalf("Now = %v after RunUntil(5)", nw2.Now())
	}
}
