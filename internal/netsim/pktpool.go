package netsim

import "fmt"

// This file implements the pooled packet lifecycle: packets are slots
// drawn from a per-logical-process free list and returned to the free
// list of whichever logical process terminates them, exactly the slot
// pool + generation handle idiom internal/des uses for events.
//
// Ownership rules (documented for users in the README's "packet
// lifecycle & ownership" section):
//
//   - Network.NewPacket draws a slot from the pool of the creating
//     node's logical process (the network's own pool while
//     unpartitioned). The creator owns the packet.
//   - Transmitting a packet (Medium.Transmit, Node.SendOn,
//     Network.Inject) transfers ownership to the simulator, which either
//     drops it (every DropReason sink releases the slot) or delivers it.
//   - Local delivery lends the packet to the OnDeliver callback for the
//     duration of the call; the simulator releases the slot when the
//     callback returns. Handlers that need payload bytes or the Hops
//     path beyond the callback must copy them.
//   - Routing delivery (Kind == KindRouting with OnRouting installed)
//     transfers ownership to the routing agent, which releases the slot
//     once the update is processed — possibly later in simulated time,
//     after the CPU-occupancy model has charged the processing cost.
//
// Slots carry a generation counter bumped on every release. A PacketRef
// captures (slot, generation) and panics on access after the slot was
// released or recycled, so use-after-release and double-release are
// deterministic panics in tests instead of silent corruption.
//
// Free lists are confined to their logical process: NewPacket pops the
// creating LP's list, and a terminal sink pushes onto the list of the LP
// executing the sink. A packet that crossed a partition boundary and was
// terminated by the receiving LP is parked on that LP's foreign list and
// repatriated to its home pool's free list at the next window barrier —
// free lists never need locks, and one-way flows (e.g. valley-free BGP
// export) cannot drain a source pool into a structural alloc floor. The
// window barrier's happens-before edges make the migration race-free.

// pktPool is one logical process's packet slot pool.
type pktPool struct {
	free []*Packet
	// foreign holds released slots whose home is another pool; the
	// coordinator repatriates them at window barriers.
	foreign []*Packet
	// created counts slots this pool allocated from the heap; the
	// network-wide live-packet count is Σ created − Σ (free + foreign),
	// which stays correct while slots await repatriation.
	created uint64
	// track enables the live registry (optimistic mode only): every
	// drawn slot is indexed in live so a rollback can snapshot and
	// restore exactly the packets in flight on this logical process.
	track bool
	live  []*Packet
}

func (pp *pktPool) get() *Packet {
	var pkt *Packet
	if k := len(pp.free); k > 0 {
		pkt = pp.free[k-1]
		pp.free[k-1] = nil
		pp.free = pp.free[:k-1]
		pkt.live = true
	} else {
		pp.created++
		pkt = &Packet{pooled: true, live: true, home: pp, regIdx: -1}
	}
	if pp.track {
		pkt.regIdx = int32(len(pp.live))
		pp.live = append(pp.live, pkt)
	}
	return pkt
}

func (pp *pktPool) put(pkt *Packet) {
	if pkt.home == pp || pkt.home == nil {
		pp.free = append(pp.free, pkt)
		return
	}
	pp.foreign = append(pp.foreign, pkt)
}

// regRemove drops pkt from the live registry by swap-remove. Only called
// when tracking is on; the releasing logical process is always the
// registry owner (cross-partition packets change registries at the
// exchange barrier, before the receiving LP can touch them).
func (pp *pktPool) regRemove(pkt *Packet) {
	i := pkt.regIdx
	last := len(pp.live) - 1
	moved := pp.live[last]
	pp.live[i] = moved
	moved.regIdx = i
	pp.live[last] = nil
	pp.live = pp.live[:last]
	pkt.regIdx = -1
}

// repatriate returns every foreign slot to its home pool's free list.
// Only the partition coordinator calls it, between windows, when no
// logical process is running.
func (pp *pktPool) repatriate() {
	for i, pkt := range pp.foreign {
		pkt.home.free = append(pkt.home.free, pkt)
		pp.foreign[i] = nil
	}
	pp.foreign = pp.foreign[:0]
}

// poolFor returns the packet pool of the logical process executing at nd:
// the owning partition's pool when the network is partitioned, the
// network's otherwise. It mirrors countersFor.
func (n *Network) poolFor(nd *Node) *pktPool {
	if nd.part != nil {
		return &nd.part.pool
	}
	return &n.pool
}

// releaseAt returns pkt to the pool of the logical process executing at
// nd — the terminal-sink primitive behind every drop, delivery and
// agent release. Packets not drawn from a pool (tests building Packet
// literals) pass through untouched.
func (n *Network) releaseAt(nd *Node, pkt *Packet) {
	if !pkt.pooled {
		return
	}
	if !pkt.live {
		panic(fmt.Sprintf("netsim: double release of packet %d", pkt.ID))
	}
	pkt.live = false
	pkt.gen++
	// Drop payload and path references now: the slot may sit on the free
	// list for a while, and the backing arrays must not pin user data.
	// payloadBuf is retained — it is the slot's payload arena, sized by
	// its high-water mark.
	pkt.Payload = nil
	pkt.Hops = pkt.Hops[:0]
	pp := n.poolFor(nd)
	if pp.track {
		pp.regRemove(pkt)
	}
	pp.put(pkt)
}

// ReleasePacket returns a packet this node's logical process owns to the
// packet pool. Routing agents call it when they finish with an update;
// tests exercising the pool directly may too. Releasing a packet twice,
// or touching it through a stale PacketRef afterwards, panics.
func (nd *Node) ReleasePacket(pkt *Packet) { nd.net.releaseAt(nd, pkt) }

// SetPayload copies b into the packet's retained payload arena and
// points Payload at the copy. Protocol encoders use it so one scratch
// encode buffer can serve every outgoing packet: the bytes are copied
// into the slot, whose arena grows to the high-water payload size and
// is then reused for the slot's whole lifetime — no per-packet
// allocation at steady state. Assigning Payload directly remains valid
// for callers that manage their own buffers.
func (p *Packet) SetPayload(b []byte) {
	p.payloadBuf = append(p.payloadBuf[:0], b...)
	p.Payload = p.payloadBuf
}

// PacketRef is a generation-counted handle to a pooled packet, the
// packet analogue of des.Event: holding one does not keep the slot
// alive, and Get panics deterministically if the slot was released (and
// possibly recycled) since the handle was taken.
type PacketRef struct {
	pkt *Packet
	gen uint32
}

// Ref captures a handle to the packet's current lifetime.
func (p *Packet) Ref() PacketRef { return PacketRef{pkt: p, gen: p.gen} }

// Live reports whether the handle still refers to a live packet.
func (r PacketRef) Live() bool {
	return r.pkt != nil && (!r.pkt.pooled || (r.pkt.live && r.pkt.gen == r.gen))
}

// Get returns the referenced packet, panicking if the handle is stale —
// the slot was released, or released and reissued to a different packet.
func (r PacketRef) Get() *Packet {
	if r.pkt == nil {
		panic("netsim: Get on zero PacketRef")
	}
	if r.pkt.pooled && (!r.pkt.live || r.pkt.gen != r.gen) {
		panic("netsim: stale PacketRef: packet was released")
	}
	return r.pkt
}

// clonePacket draws a slot from the pool at nd and copies pkt into it:
// scalar fields, payload bytes (into the clone's own arena) and the
// recorded path. LAN broadcast uses it to give every receiver a private
// copy with independent TTL and bookkeeping; the clone keeps the
// original's ID (it is the same datagram) and draws no per-node
// sequence numbers, so cloning is invisible to the determinism keys.
func (n *Network) clonePacket(nd *Node, pkt *Packet) *Packet {
	cp := n.poolFor(nd).get()
	cp.ID = pkt.ID
	cp.Kind = pkt.Kind
	cp.Src = pkt.Src
	cp.Dst = pkt.Dst
	cp.Size = pkt.Size
	cp.TTL = pkt.TTL
	cp.Created = pkt.Created
	cp.Seq = pkt.Seq
	cp.RecordRoute = pkt.RecordRoute
	cp.Hops = append(cp.Hops[:0], pkt.Hops...)
	if pkt.Payload != nil {
		cp.SetPayload(pkt.Payload)
	} else {
		cp.Payload = nil
	}
	return cp
}

// LivePackets returns the number of pooled packets currently drawn and
// not yet released, summed over every logical process's pool. At a
// quiescent point (after RunUntil returns) every live packet must be
// parked somewhere — a transmit queue, an in-flight window, a CPU input
// queue, a boundary outbox or arrival, or a routing agent's pending
// queue — which is exactly what the leak tests assert against
// ParkedPackets.
func (n *Network) LivePackets() int {
	created, free := n.pool.created, len(n.pool.free)+len(n.pool.foreign)
	for _, p := range n.parts {
		created += p.pool.created
		free += len(p.pool.free) + len(p.pool.foreign)
	}
	return int(created) - free
}

// ParkedPackets counts the packets currently held inside the simulator's
// own structures: link and LAN transmit queues and in-flight windows,
// CPU input queues and forward-cost steps, and the partition boundary
// machinery (outboxes and scheduled-but-undelivered arrivals). Together
// with the agents' pending counts it accounts for every live packet at
// a quiescent point.
func (n *Network) ParkedPackets() int {
	total := 0
	seen := make(map[Medium]bool)
	for _, nd := range n.nodes {
		if nd.CPU != nil {
			total += nd.CPU.qlen() + nd.CPU.steps.len()
		}
		for _, m := range nd.media {
			if seen[m] {
				continue
			}
			seen[m] = true
			switch med := m.(type) {
			case *Link:
				for d := range med.tx {
					st := &med.tx[d]
					total += st.qlen() + st.inflight.len()
				}
			case *LAN:
				for _, st := range med.tx {
					total += st.qlen() + st.inflight.len()
				}
			}
		}
	}
	for _, p := range n.parts {
		total += len(p.outbox) + p.arrLive
	}
	return total
}
