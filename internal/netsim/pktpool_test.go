package netsim

import (
	"fmt"
	"testing"

	"routesync/internal/rng"
)

// panics runs fn and reports whether it panicked.
func panics(fn func()) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	fn()
	return false
}

// TestPacketPoolProperty drives the slot pool through a seeded random
// schedule of allocations, releases, stale-handle accesses and
// double-release attempts, checking the generation-handle contract at
// every step: live slots keep their payload bytes uncorrupted while
// other slots churn, stale PacketRefs panic on Get, and releasing a
// free slot panics instead of corrupting the free list.
func TestPacketPoolProperty(t *testing.T) {
	nw := NewNetwork(1)
	a := nw.NewNode("a", nil)
	b := nw.NewNode("b", nil)
	nw.Connect(a, b, LinkConfig{Delay: 0.001, Bandwidth: 1e6, QueueCap: 8})

	type held struct {
		ref    PacketRef
		marker byte
	}
	r := rng.New(42)
	var live []held
	var stale []PacketRef
	maxLive := 0

	for step := 0; step < 20000; step++ {
		switch op := int(r.Uniform(0, 4)); {
		case op == 0 || len(live) == 0: // allocate
			pkt := nw.NewPacket(KindData, a.ID, b.ID, 64)
			marker := byte(step)
			pkt.SetPayload([]byte{marker, marker, marker})
			pkt.Hops = append(pkt.Hops, Hop{Node: a.ID})
			live = append(live, held{ref: pkt.Ref(), marker: marker})
			if len(live) > maxLive {
				maxLive = len(live)
			}
		case op == 1: // release a live packet, verifying its bytes first
			i := int(r.Uniform(0, float64(len(live))))
			h := live[i]
			pkt := h.ref.Get() // must not panic: the handle is current
			if len(pkt.Payload) != 3 || pkt.Payload[0] != h.marker || pkt.Payload[2] != h.marker {
				t.Fatalf("step %d: live packet payload corrupted: %v (marker %d)", step, pkt.Payload, h.marker)
			}
			if len(pkt.Hops) != 1 {
				t.Fatalf("step %d: live packet Hops corrupted: %v", step, pkt.Hops)
			}
			a.ReleasePacket(pkt)
			stale = append(stale, h.ref)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case op == 2 && len(stale) > 0: // stale handle access must panic
			ref := stale[int(r.Uniform(0, float64(len(stale))))]
			if ref.Live() {
				t.Fatalf("step %d: released handle reports Live", step)
			}
			if !panics(func() { ref.Get() }) {
				t.Fatalf("step %d: Get on stale PacketRef did not panic", step)
			}
		case op == 3 && len(stale) > 0: // double release must panic
			ref := stale[int(r.Uniform(0, float64(len(stale))))]
			pkt := ref.pkt
			if pkt.live {
				// The slot was re-issued to a later packet; releasing
				// through the old pointer would be a single (legal) release
				// of the new packet, so skip it.
				continue
			}
			if !panics(func() { a.ReleasePacket(pkt) }) {
				t.Fatalf("step %d: double release did not panic", step)
			}
		}
	}

	if got := nw.LivePackets(); got != len(live) {
		t.Fatalf("LivePackets = %d, want %d outstanding", got, len(live))
	}
	// The pool must have recycled slots: far fewer created than the
	// 20000-step schedule allocated.
	if int(nw.pool.created) > maxLive {
		t.Fatalf("pool created %d slots for a schedule that never held more than %d",
			nw.pool.created, maxLive)
	}
}

// TestPacketPoolReuse checks the steady-state contract directly: a
// release followed by an allocation returns the same slot under a new
// generation, and the old handle stays dead.
func TestPacketPoolReuse(t *testing.T) {
	nw := NewNetwork(1)
	a := nw.NewNode("a", nil)
	b := nw.NewNode("b", nil)
	nw.Connect(a, b, LinkConfig{Delay: 0.001, Bandwidth: 1e6, QueueCap: 8})

	pkt := nw.NewPacket(KindData, a.ID, b.ID, 64)
	pkt.SetPayload([]byte("first"))
	old := pkt.Ref()
	a.ReleasePacket(pkt)

	pkt2 := nw.NewPacket(KindData, a.ID, b.ID, 64)
	if pkt2 != pkt {
		t.Fatalf("expected the released slot to be reused")
	}
	if pkt2.Payload != nil {
		t.Fatalf("reissued slot leaked payload: %q", pkt2.Payload)
	}
	if old.Live() {
		t.Fatal("old handle reports Live after slot reuse")
	}
	if !panics(func() { old.Get() }) {
		t.Fatal("Get on a reissued slot's old handle did not panic")
	}
	if got := pkt2.Ref().Get(); got != pkt2 {
		t.Fatal("fresh handle on reissued slot must resolve")
	}
}

// TestUnpooledPacketsPassThrough checks that Packet literals (tests,
// external constructions) flow through every release sink as no-ops and
// that their refs never go stale.
func TestUnpooledPacketsPassThrough(t *testing.T) {
	nw := NewNetwork(1)
	a := nw.NewNode("a", nil)
	b := nw.NewNode("b", nil)
	nw.Connect(a, b, LinkConfig{Delay: 0.001, Bandwidth: 1e6, QueueCap: 8})

	pkt := &Packet{Kind: KindData, Src: a.ID, Dst: b.ID, Size: 64, TTL: 4}
	ref := pkt.Ref()
	a.ReleasePacket(pkt) // no-op
	a.ReleasePacket(pkt) // still a no-op, not a double-release panic
	if !ref.Live() {
		t.Fatal("unpooled packet ref must stay live")
	}
	if ref.Get() != pkt {
		t.Fatal("unpooled packet ref must resolve")
	}
	if nw.LivePackets() != 0 {
		t.Fatalf("unpooled packet counted as live: %d", nw.LivePackets())
	}
}

// TestSetPayloadCopies checks the payload-arena contract: SetPayload
// detaches the packet from the caller's buffer, and the arena survives
// release/reuse cycles without leaking bytes across lifetimes.
func TestSetPayloadCopies(t *testing.T) {
	nw := NewNetwork(1)
	a := nw.NewNode("a", nil)
	b := nw.NewNode("b", nil)
	nw.Connect(a, b, LinkConfig{Delay: 0.001, Bandwidth: 1e6, QueueCap: 8})

	scratch := []byte("hello world")
	pkt := nw.NewPacket(KindData, a.ID, b.ID, 64)
	pkt.SetPayload(scratch)
	scratch[0] = 'X'
	if string(pkt.Payload) != "hello world" {
		t.Fatalf("SetPayload aliased the caller's buffer: %q", pkt.Payload)
	}
	// Shrinking reuse: a shorter payload must not expose old bytes.
	pkt.SetPayload([]byte("hi"))
	if string(pkt.Payload) != "hi" {
		t.Fatalf("payload after shrink = %q", pkt.Payload)
	}
}

// TestLivePacketsAcrossPartitions checks the created-minus-free
// accounting with per-partition pools: packets created in one LP and
// terminated in another keep the global count exact.
func TestLivePacketsAcrossPartitions(t *testing.T) {
	nw := NewNetwork(1)
	var nodes []*Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, nw.NewNode(fmt.Sprintf("n%d", i), nil))
	}
	for i := 0; i+1 < 4; i++ {
		nw.Connect(nodes[i], nodes[i+1], LinkConfig{Delay: 0.01, Bandwidth: 1e6, QueueCap: 8})
	}
	nw.InstallStaticRoutes()
	nw.Partition(2, func(id NodeID) int { return int(id) / 2 })

	// Round trips: n0 → n3 data, delivered (and released) in partition 1.
	for i := 0; i < 50; i++ {
		pkt := nw.NewPacket(KindData, nodes[0].ID, nodes[3].ID, 64)
		nw.Inject(pkt)
		nw.RunUntil(nw.Now() + 1)
		if got := nw.LivePackets(); got != 0 {
			t.Fatalf("round %d: LivePackets = %d after quiescence", i, got)
		}
	}
	// Nothing in transit either: queues, in-flight windows and boundary
	// machinery are all drained at quiescence.
	if nw.ParkedPackets() != 0 {
		t.Fatalf("ParkedPackets = %d at quiescence", nw.ParkedPackets())
	}
}
