package netsim

// ring is a growable circular FIFO. Media use rings for their in-flight
// packets: arrival times on one link direction (or one LAN transmitter)
// are monotone — serialization ends before the next transmission starts —
// so arrivals pop in push order and the hoisted arrival callback needs no
// per-packet closure. Steady state allocates nothing; the buffer grows to
// the peak in-flight count and is reused.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		grown := make([]T, max(4, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *ring[T]) pop() T {
	if r.n == 0 {
		panic("netsim: pop from empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // drop the reference for the garbage collector
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// snapshot appends the ring's contents in pop order to dst[:0] and
// returns it — the checkpoint primitive for in-flight windows. dst is
// reused across rounds, so a warm snapshot allocates nothing.
func (r *ring[T]) snapshot(dst []T) []T {
	dst = dst[:0]
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.buf[(r.head+i)%len(r.buf)])
	}
	return dst
}

// restore replaces the ring's contents with src in pop order, reusing
// the existing buffer.
func (r *ring[T]) restore(src []T) {
	var zero T
	for i := range r.buf {
		r.buf[i] = zero
	}
	r.head = 0
	r.n = 0
	for _, v := range src {
		r.push(v)
	}
}
