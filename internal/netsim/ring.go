package netsim

// ring is a growable circular FIFO. Media use rings for their in-flight
// packets: arrival times on one link direction (or one LAN transmitter)
// are monotone — serialization ends before the next transmission starts —
// so arrivals pop in push order and the hoisted arrival callback needs no
// per-packet closure. Steady state allocates nothing; the buffer grows to
// the peak in-flight count and is reused.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) len() int { return r.n }

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		grown := make([]T, max(4, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *ring[T]) pop() T {
	if r.n == 0 {
		panic("netsim: pop from empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // drop the reference for the garbage collector
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}
