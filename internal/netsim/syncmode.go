package netsim

import (
	"math"
	"os"
)

// SyncMode selects how a partitioned network's logical processes
// synchronize (see partition.go for the conservative scheme and
// optimistic.go for the Time-Warp-style one).
type SyncMode int

const (
	// SyncConservative is the default: bounded-window (YAWNS-style)
	// barrier execution, throttled by the cross-partition lookahead. It
	// is the reference implementation the optimistic mode is verified
	// against.
	SyncConservative SyncMode = iota
	// SyncOptimistic lets each logical process speculate past the
	// barrier under an adaptive lease, rolling back and replaying when a
	// straggler boundary arrival lands behind its clock. It wins when
	// the lookahead is much smaller than the inter-LP traffic gap
	// (metro/LAN topologies with sub-millisecond bridges).
	SyncOptimistic
)

// String returns the mode name used by ROUTESYNC_SYNC_MODE.
func (m SyncMode) String() string {
	switch m {
	case SyncOptimistic:
		return "optimistic"
	default:
		return "conservative"
	}
}

// SyncModeEnv is the environment variable selecting the ambient
// synchronization mode, mirroring ROUTESYNC_DES_BACKEND: it applies to
// every Partition call that does not pick a mode explicitly, so the full
// test suite can be swept under either mode without code changes.
const SyncModeEnv = "ROUTESYNC_SYNC_MODE"

// ParseSyncMode maps a mode name to a SyncMode; ok is false for names it
// does not recognize.
func ParseSyncMode(s string) (SyncMode, bool) {
	switch s {
	case "", "conservative":
		return SyncConservative, true
	case "optimistic":
		return SyncOptimistic, true
	default:
		return SyncConservative, false
	}
}

// DefaultSyncMode returns the mode selected by ROUTESYNC_SYNC_MODE,
// falling back to conservative when unset or unrecognized.
func DefaultSyncMode() SyncMode {
	m, _ := ParseSyncMode(os.Getenv(SyncModeEnv))
	return m
}

// OptimisticConfig tunes the optimistic coordinator's adaptive lease:
// how far past the round's start (the globally earliest pending event,
// which bounds the eventual commit time from below) each logical process
// may speculate. The lease shrinks multiplicatively when the LP rolls
// back and grows when it commits a clean round, so rollback cascades
// stay bounded (Manita & Simonot's stability regime) while quiet LPs
// stretch toward the maximum.
//
// Zero fields take defaults derived from the topology's lookahead L
// (or 1 µs when every boundary link is zero-delay): MinLease = L,
// InitialLease = 64·L, MaxLease = 65536·L, Grow = 2, Shrink = 0.5.
// MinLease = L makes the floor exactly the conservative window, so a
// worst-case adversarial straggler schedule degrades to conservative
// performance rather than below it.
type OptimisticConfig struct {
	InitialLease float64
	MinLease     float64
	MaxLease     float64
	Grow         float64
	Shrink       float64
}

// withDefaults resolves zero fields against the topology lookahead.
func (c OptimisticConfig) withDefaults(lookahead float64) OptimisticConfig {
	if c.MinLease <= 0 {
		if lookahead > 0 && !math.IsInf(lookahead, 1) {
			c.MinLease = lookahead
		} else {
			c.MinLease = 1e-6
		}
	}
	if c.InitialLease <= 0 {
		c.InitialLease = c.MinLease * 64
	}
	if c.MaxLease <= 0 {
		c.MaxLease = c.MinLease * 65536
	}
	if c.Grow <= 1 {
		c.Grow = 2
	}
	if c.Shrink <= 0 || c.Shrink >= 1 {
		c.Shrink = 0.5
	}
	// MaxLease is the hard speculation bound: the initial lease is
	// clamped into [MinLease, MaxLease] rather than ever widening it.
	if c.MaxLease < c.MinLease {
		c.MaxLease = c.MinLease
	}
	if c.InitialLease < c.MinLease {
		c.InitialLease = c.MinLease
	}
	if c.InitialLease > c.MaxLease {
		c.InitialLease = c.MaxLease
	}
	return c
}

// partitionOpts collects Partition's optional configuration.
type partitionOpts struct {
	mode    SyncMode
	modeSet bool
	opt     OptimisticConfig
}

// PartitionOption configures Partition beyond the node assignment.
type PartitionOption func(*partitionOpts)

// WithSyncMode selects the synchronization mode explicitly, overriding
// ROUTESYNC_SYNC_MODE.
func WithSyncMode(m SyncMode) PartitionOption {
	return func(o *partitionOpts) {
		o.mode = m
		o.modeSet = true
	}
}

// WithOptimistic selects optimistic mode with an explicit lease
// configuration (zero fields still take defaults).
func WithOptimistic(cfg OptimisticConfig) PartitionOption {
	return func(o *partitionOpts) {
		o.mode = SyncOptimistic
		o.modeSet = true
		o.opt = cfg
	}
}

// WithOptimisticConfig sets the lease configuration to use when the run
// is optimistic — via ROUTESYNC_SYNC_MODE or a WithSyncMode option —
// without selecting the mode itself. Scenario builders use it to bound
// speculation on topologies they know (a lease cap bounds rollback depth
// and every speculation buffer's high-water mark) while leaving the
// conservative/optimistic choice to the caller or the environment.
func WithOptimisticConfig(cfg OptimisticConfig) PartitionOption {
	return func(o *partitionOpts) { o.opt = cfg }
}

// SyncStats summarizes a partitioned network's synchronization work so
// far: how many coordination rounds ran, how much speculation was undone,
// and how far local clocks ran past the commit frontier (GVT). All
// counters are cumulative across RunUntil calls and are only updated
// between windows on the coordinator, so reading them between calls is
// race-free.
type SyncStats struct {
	Mode SyncMode
	// Windows counts coordination rounds (barriers in conservative mode,
	// speculate/commit rounds in optimistic mode).
	Windows uint64
	// Rollbacks counts LP-rounds undone: one per logical process per
	// round in which it executed past the commit bound.
	Rollbacks uint64
	// MaxRollbackDepth is the largest distance (simulated seconds)
	// between a rolled-back LP's last executed event and the commit
	// bound it was rolled back to. Bounded by MaxLease by construction.
	MaxRollbackDepth float64
	// TotalRollbackDepth sums that distance over all rollbacks.
	TotalRollbackDepth float64
	// MaxGVTLag is the largest distance any LP's clock ran past the
	// round's commit bound — the speculation depth the lease permitted.
	MaxGVTLag float64
	// SerialEvents counts events executed one-at-a-time by the
	// coordinator to resolve same-instant cascades across zero-delay
	// boundary links.
	SerialEvents uint64
}

// SyncStats returns the accumulated synchronization statistics.
func (n *Network) SyncStats() SyncStats { return n.syncStats }

// SyncMode returns the partitioned network's synchronization mode
// (conservative while unpartitioned).
func (n *Network) SyncMode() SyncMode { return n.syncStats.Mode }

// SyncObserver receives one callback per coordination round. A des
// Observer installed via SetObserver that also implements SyncObserver
// gets wired up automatically (the runner's metrics observer does).
// gvt is the round's commit frontier; lag is how far the furthest LP
// clock ran past it; rollbacks is the number of LPs rolled back this
// round and maxDepth the deepest of their rollbacks. Conservative
// windows report (windowEnd, 0, 0, 0). Called only from the
// coordinator, between windows.
type SyncObserver interface {
	SyncWindow(gvt, lag float64, rollbacks int, maxDepth float64)
}

// Checkpointable is state that must be saved and restored alongside a
// logical process's simulator in optimistic mode: routing tables, agent
// timers, workload accounting — anything mutated by events that might be
// rolled back. RestoreCheckpoint must leave the component bit-identical
// to its SaveCheckpoint state, so a deterministic replay regenerates
// exactly the speculated execution.
type Checkpointable interface {
	SaveCheckpoint()
	RestoreCheckpoint()
}

// CheckpointFuncs adapts a save/restore function pair to Checkpointable.
type CheckpointFuncs struct {
	Save    func()
	Restore func()
}

// SaveCheckpoint implements Checkpointable.
func (f CheckpointFuncs) SaveCheckpoint() { f.Save() }

// RestoreCheckpoint implements Checkpointable.
func (f CheckpointFuncs) RestoreCheckpoint() { f.Restore() }

// RegisterCheckpoint attaches per-component checkpoint hooks to the
// logical process owning the node. It is a no-op unless the network is
// partitioned in optimistic mode, so components register unconditionally
// from their constructors and pay nothing in other modes. The hooks run
// on the owner's partition goroutine at round boundaries.
func (n *Network) RegisterCheckpoint(owner *Node, c Checkpointable) {
	if n.syncStats.Mode != SyncOptimistic || owner.part == nil {
		return
	}
	owner.part.chk = append(owner.part.chk, c)
}
