package netsim

import "fmt"

// This file generates the larger topologies behind the scale experiments
// (the paper's §2 measurement setting is many routers exchanging periodic
// updates across a real internetwork): regular grids and two-level
// AS-like graphs, plus owner functions that map them onto partitions for
// conservative parallel execution.

// BuildGrid creates a rows×cols mesh of nodes connected by identical
// links (4-neighborhood). cpus[i] configures node i (nil or short slice:
// no CPU). Static routes are NOT installed — grids exist for scale runs,
// which route selectively. Returns the nodes in row-major order.
func (n *Network) BuildGrid(rows, cols int, cpus []*CPUConfig, link LinkConfig) []*Node {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("netsim: a grid needs at least two nodes")
	}
	nodes := make([]*Node, rows*cols)
	for i := range nodes {
		var cpu *CPUConfig
		if i < len(cpus) {
			cpu = cpus[i]
		}
		nodes[i] = n.NewNode(fmt.Sprintf("g%d.%d", i/cols, i%cols), cpu)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if c+1 < cols {
				n.Connect(nodes[i], nodes[i+1], link)
			}
			if r+1 < rows {
				n.Connect(nodes[i], nodes[i+cols], link)
			}
		}
	}
	return nodes
}

// TwoLevelASConfig parameterizes BuildTwoLevelAS.
type TwoLevelASConfig struct {
	// NumAS is the number of autonomous-system-like domains.
	NumAS int
	// RoutersPerAS is the number of routers inside each domain.
	RoutersPerAS int
	// IntraLink configures links inside a domain (a ring plus chords).
	IntraLink LinkConfig
	// InterLink configures the backbone links between domain gateways; it
	// must have Delay > 0 when the build is partitioned along domain
	// boundaries (the delay is the synchronization lookahead).
	InterLink LinkConfig
	// CPU configures every router's CPU; nil means no CPU model.
	CPU *CPUConfig
	// Chords adds this many deterministic shortcut chords inside each
	// domain (0 keeps pure rings).
	Chords int
}

// TwoLevelAS is the built topology: Routers[a][i] is router i of domain
// a; Gateways[a] is the router of domain a on the inter-domain backbone
// (its router 0). The backbone is a ring over the gateways plus skip
// links every 4 domains for shorter inter-domain paths.
type TwoLevelAS struct {
	Routers  [][]*Node
	Gateways []*Node
}

// BuildTwoLevelAS creates an AS-like two-level graph: NumAS domains of
// RoutersPerAS routers each (a ring plus Chords shortcut chords), joined
// by a backbone ring over the per-domain gateways. The layout is fully
// deterministic. No routes are installed and no CPU-free hosts are added;
// callers attach agents, hosts and workloads.
//
// Node ids are dense per domain — domain a owns ids [a·RoutersPerAS,
// (a+1)·RoutersPerAS) — which is what OwnerByBlock exploits to partition
// along domain boundaries without splitting a domain.
func (n *Network) BuildTwoLevelAS(cfg TwoLevelASConfig) *TwoLevelAS {
	if cfg.NumAS < 1 || cfg.RoutersPerAS < 1 || cfg.NumAS*cfg.RoutersPerAS < 2 {
		panic("netsim: BuildTwoLevelAS needs at least two routers")
	}
	t := &TwoLevelAS{
		Routers:  make([][]*Node, cfg.NumAS),
		Gateways: make([]*Node, cfg.NumAS),
	}
	for a := 0; a < cfg.NumAS; a++ {
		rs := make([]*Node, cfg.RoutersPerAS)
		for i := range rs {
			rs[i] = n.NewNode(fmt.Sprintf("as%d.r%d", a, i), cfg.CPU)
		}
		// Ring inside the domain.
		if cfg.RoutersPerAS > 1 {
			for i := 0; i+1 < len(rs); i++ {
				n.Connect(rs[i], rs[i+1], cfg.IntraLink)
			}
			if len(rs) > 2 {
				n.Connect(rs[len(rs)-1], rs[0], cfg.IntraLink)
			}
		}
		// Deterministic chords: i — (i + span) with span ~ half the ring,
		// starting points spread around it.
		span := cfg.RoutersPerAS/2 + 1
		for c := 0; c < cfg.Chords; c++ {
			i := (c * 2) % cfg.RoutersPerAS
			j := (i + span) % cfg.RoutersPerAS
			if i != j {
				n.Connect(rs[i], rs[j], cfg.IntraLink)
			}
		}
		t.Routers[a] = rs
		t.Gateways[a] = rs[0]
	}
	// Backbone: gateway ring plus skip links every 4 domains.
	if cfg.NumAS > 1 {
		for a := 0; a+1 < cfg.NumAS; a++ {
			n.Connect(t.Gateways[a], t.Gateways[a+1], cfg.InterLink)
		}
		if cfg.NumAS > 2 {
			n.Connect(t.Gateways[cfg.NumAS-1], t.Gateways[0], cfg.InterLink)
		}
		for a := 0; a+4 < cfg.NumAS; a += 4 {
			n.Connect(t.Gateways[a], t.Gateways[a+4], cfg.InterLink)
		}
	}
	return t
}

// OwnerByBlock returns an owner function assigning node ids to k
// partitions in contiguous blocks of the given size: ids [0, blockSize)
// share a partition, and blocks are dealt round-robin-free — block b goes
// to partition b·k/numBlocks — so partitions get contiguous runs of
// blocks and cross-partition edges are minimized for block-local
// topologies (BuildTwoLevelAS domains, grid rows).
//
// Nodes created after the blocked range (measurement hosts appended at
// the end) land with the final block.
func OwnerByBlock(blockSize, numBlocks, k int) func(NodeID) int {
	if blockSize < 1 || numBlocks < 1 || k < 1 {
		panic("netsim: OwnerByBlock needs positive sizes")
	}
	return func(id NodeID) int {
		b := int(id) / blockSize
		if b >= numBlocks {
			b = numBlocks - 1
		}
		return b * k / numBlocks
	}
}
