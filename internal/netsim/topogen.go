package netsim

import (
	"fmt"

	"routesync/internal/rng"
)

// This file generates the larger topologies behind the scale experiments
// (the paper's §2 measurement setting is many routers exchanging periodic
// updates across a real internetwork): regular grids and two-level
// AS-like graphs, plus owner functions that map them onto partitions for
// conservative parallel execution.

// BuildGrid creates a rows×cols mesh of nodes connected by identical
// links (4-neighborhood). cpus[i] configures node i (nil or short slice:
// no CPU). Static routes are NOT installed — grids exist for scale runs,
// which route selectively. Returns the nodes in row-major order.
func (n *Network) BuildGrid(rows, cols int, cpus []*CPUConfig, link LinkConfig) []*Node {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("netsim: a grid needs at least two nodes")
	}
	nodes := make([]*Node, rows*cols)
	for i := range nodes {
		var cpu *CPUConfig
		if i < len(cpus) {
			cpu = cpus[i]
		}
		nodes[i] = n.NewNode(fmt.Sprintf("g%d.%d", i/cols, i%cols), cpu)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if c+1 < cols {
				n.Connect(nodes[i], nodes[i+1], link)
			}
			if r+1 < rows {
				n.Connect(nodes[i], nodes[i+cols], link)
			}
		}
	}
	return nodes
}

// TwoLevelASConfig parameterizes BuildTwoLevelAS.
type TwoLevelASConfig struct {
	// NumAS is the number of autonomous-system-like domains.
	NumAS int
	// RoutersPerAS is the number of routers inside each domain.
	RoutersPerAS int
	// IntraLink configures links inside a domain (a ring plus chords).
	IntraLink LinkConfig
	// InterLink configures the backbone links between domain gateways; it
	// must have Delay > 0 when the build is partitioned along domain
	// boundaries (the delay is the synchronization lookahead).
	InterLink LinkConfig
	// CPU configures every router's CPU; nil means no CPU model.
	CPU *CPUConfig
	// Chords adds this many deterministic shortcut chords inside each
	// domain (0 keeps pure rings).
	Chords int
}

// TwoLevelAS is the built topology: Routers[a][i] is router i of domain
// a; Gateways[a] is the router of domain a on the inter-domain backbone
// (its router 0). The backbone is a ring over the gateways plus skip
// links every 4 domains for shorter inter-domain paths.
type TwoLevelAS struct {
	Routers  [][]*Node
	Gateways []*Node
}

// BuildTwoLevelAS creates an AS-like two-level graph: NumAS domains of
// RoutersPerAS routers each (a ring plus Chords shortcut chords), joined
// by a backbone ring over the per-domain gateways. The layout is fully
// deterministic. No routes are installed and no CPU-free hosts are added;
// callers attach agents, hosts and workloads.
//
// Node ids are dense per domain — domain a owns ids [a·RoutersPerAS,
// (a+1)·RoutersPerAS) — which is what OwnerByBlock exploits to partition
// along domain boundaries without splitting a domain.
func (n *Network) BuildTwoLevelAS(cfg TwoLevelASConfig) *TwoLevelAS {
	if cfg.NumAS < 1 || cfg.RoutersPerAS < 1 || cfg.NumAS*cfg.RoutersPerAS < 2 {
		panic("netsim: BuildTwoLevelAS needs at least two routers")
	}
	t := &TwoLevelAS{
		Routers:  make([][]*Node, cfg.NumAS),
		Gateways: make([]*Node, cfg.NumAS),
	}
	for a := 0; a < cfg.NumAS; a++ {
		rs := make([]*Node, cfg.RoutersPerAS)
		for i := range rs {
			rs[i] = n.NewNode(fmt.Sprintf("as%d.r%d", a, i), cfg.CPU)
		}
		// Ring inside the domain.
		if cfg.RoutersPerAS > 1 {
			for i := 0; i+1 < len(rs); i++ {
				n.Connect(rs[i], rs[i+1], cfg.IntraLink)
			}
			if len(rs) > 2 {
				n.Connect(rs[len(rs)-1], rs[0], cfg.IntraLink)
			}
		}
		// Deterministic chords: i — (i + span) with span ~ half the ring,
		// starting points spread around it.
		span := cfg.RoutersPerAS/2 + 1
		for c := 0; c < cfg.Chords; c++ {
			i := (c * 2) % cfg.RoutersPerAS
			j := (i + span) % cfg.RoutersPerAS
			if i != j {
				n.Connect(rs[i], rs[j], cfg.IntraLink)
			}
		}
		t.Routers[a] = rs
		t.Gateways[a] = rs[0]
	}
	// Backbone: gateway ring plus skip links every 4 domains.
	if cfg.NumAS > 1 {
		for a := 0; a+1 < cfg.NumAS; a++ {
			n.Connect(t.Gateways[a], t.Gateways[a+1], cfg.InterLink)
		}
		if cfg.NumAS > 2 {
			n.Connect(t.Gateways[cfg.NumAS-1], t.Gateways[0], cfg.InterLink)
		}
		for a := 0; a+4 < cfg.NumAS; a += 4 {
			n.Connect(t.Gateways[a], t.Gateways[a+4], cfg.InterLink)
		}
	}
	return t
}

// ASEdgeRel labels a generated inter-AS link with the business
// relationship that drives path-vector export policy.
type ASEdgeRel int8

const (
	// EdgeProviderCustomer: edge endpoint A sells transit to endpoint B.
	EdgeProviderCustomer ASEdgeRel = iota
	// EdgePeerPeer: settlement-free peering between A and B.
	EdgePeerPeer
)

// ASEdge is one generated inter-AS adjacency with its policy label.
type ASEdge struct {
	Link *Link
	// A and B are the endpoints; for EdgeProviderCustomer, A is the
	// provider and B the customer.
	A, B *Node
	Rel  ASEdgeRel
}

// ASGraph is a generated AS-level topology: one node per AS, and every
// edge labeled with its provider–customer or peer–peer relationship.
// Node ids are dense in creation order, so OwnerByBlock partitions the
// graph into contiguous id ranges.
type ASGraph struct {
	Nodes []*Node
	Edges []ASEdge
}

// PreferentialAttachmentConfig parameterizes BuildPreferentialAttachment.
type PreferentialAttachmentConfig struct {
	// N is the AS count; M the edges each arriving AS creates (the
	// Barabási–Albert parameter). N must exceed M.
	N, M int
	// Link configures every generated link; it needs Delay > 0 when the
	// build is partitioned (the delay is the synchronization lookahead).
	Link LinkConfig
	// CPU configures every AS's router CPU; nil means no CPU model.
	CPU *CPUConfig
	// Seed drives the attachment draws; the graph is a pure function of
	// (N, M, Seed) — independent, in particular, of partition count.
	Seed int64
}

// BuildPreferentialAttachment grows a Barabási–Albert power-law AS
// graph: a seed clique of M+1 peered ASes, then each arriving AS links
// to M distinct existing ASes chosen proportionally to degree. The
// arriving AS buys transit from its targets (it is their customer), so
// the provider–customer edges always point from an older AS to a newer
// one — the relation graph is acyclic by construction, and the
// early-clique hubs become the high-degree transit core, as in the
// measured internet. The graph is connected for the same reason.
func (n *Network) BuildPreferentialAttachment(cfg PreferentialAttachmentConfig) *ASGraph {
	if cfg.M < 1 || cfg.N <= cfg.M {
		panic("netsim: BuildPreferentialAttachment needs N > M ≥ 1")
	}
	r := rng.New(cfg.Seed ^ 0x41535F5041) // "AS_PA"
	g := &ASGraph{Nodes: make([]*Node, cfg.N)}
	for i := range g.Nodes {
		g.Nodes[i] = n.NewNode(fmt.Sprintf("as%d", i), cfg.CPU)
	}
	core := cfg.M + 1
	if core > cfg.N {
		core = cfg.N
	}
	// ball holds one entry per edge endpoint: sampling it uniformly is
	// degree-proportional sampling.
	ball := make([]int, 0, 2*(core*(core-1)/2+cfg.M*(cfg.N-core)))
	addEdge := func(a, b int, rel ASEdgeRel) {
		l := n.Connect(g.Nodes[a], g.Nodes[b], cfg.Link)
		g.Edges = append(g.Edges, ASEdge{Link: l, A: g.Nodes[a], B: g.Nodes[b], Rel: rel})
		ball = append(ball, a, b)
	}
	for i := 0; i < core; i++ {
		for j := i + 1; j < core; j++ {
			addEdge(i, j, EdgePeerPeer)
		}
	}
	picked := make([]int, 0, cfg.M)
	for v := core; v < cfg.N; v++ {
		picked = picked[:0]
		for len(picked) < cfg.M {
			t := ball[r.Intn(len(ball))]
			dup := false
			for _, p := range picked {
				if p == t {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, t)
			}
		}
		for _, t := range picked {
			addEdge(t, v, EdgeProviderCustomer) // t (older) provides transit to v
		}
	}
	return g
}

// ProviderCustomerConfig parameterizes BuildProviderCustomer.
type ProviderCustomerConfig struct {
	// Cores is the number of top-tier transit ASes (fully meshed with
	// settlement-free peering); Stubs the number of edge ASes.
	Cores, Stubs int
	// Homing is the number of distinct providers each stub buys transit
	// from (multihoming); zero means 2, clamped to Cores.
	Homing int
	// CoreLink / StubLink configure the peering and access links; both
	// need Delay > 0 when the build is partitioned.
	CoreLink, StubLink LinkConfig
	// CPU configures every AS's router CPU; nil means no CPU model.
	CPU *CPUConfig
	// Seed drives the provider assignment; the graph is a pure function
	// of the configuration.
	Seed int64
}

// BuildProviderCustomer generates a two-tier internet: a full mesh of
// peered core ASes, and stub ASes each multihomed to Homing distinct
// core providers. Core ids come first ([0, Cores)), stubs after, so the
// provider–customer relation is acyclic by construction and OwnerByBlock
// keeps each id range contiguous. Every stub reaches every other
// through the core, making the valley-free policy reachability total.
func (n *Network) BuildProviderCustomer(cfg ProviderCustomerConfig) *ASGraph {
	if cfg.Cores < 1 || cfg.Stubs < 0 {
		panic("netsim: BuildProviderCustomer needs at least one core")
	}
	homing := cfg.Homing
	if homing == 0 {
		homing = 2
	}
	if homing > cfg.Cores {
		homing = cfg.Cores
	}
	r := rng.New(cfg.Seed ^ 0x41535F3254) // "AS_2T"
	g := &ASGraph{Nodes: make([]*Node, 0, cfg.Cores+cfg.Stubs)}
	for i := 0; i < cfg.Cores; i++ {
		g.Nodes = append(g.Nodes, n.NewNode(fmt.Sprintf("core%d", i), cfg.CPU))
	}
	for i := 0; i < cfg.Stubs; i++ {
		g.Nodes = append(g.Nodes, n.NewNode(fmt.Sprintf("stub%d", i), cfg.CPU))
	}
	for i := 0; i < cfg.Cores; i++ {
		for j := i + 1; j < cfg.Cores; j++ {
			l := n.Connect(g.Nodes[i], g.Nodes[j], cfg.CoreLink)
			g.Edges = append(g.Edges, ASEdge{Link: l, A: g.Nodes[i], B: g.Nodes[j], Rel: EdgePeerPeer})
		}
	}
	picked := make([]int, 0, homing)
	for s := 0; s < cfg.Stubs; s++ {
		stub := g.Nodes[cfg.Cores+s]
		picked = picked[:0]
		for len(picked) < homing {
			c := r.Intn(cfg.Cores)
			dup := false
			for _, p := range picked {
				if p == c {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, c)
			}
		}
		for _, c := range picked {
			l := n.Connect(g.Nodes[c], stub, cfg.StubLink)
			g.Edges = append(g.Edges, ASEdge{Link: l, A: g.Nodes[c], B: stub, Rel: EdgeProviderCustomer})
		}
	}
	return g
}

// MetroLANConfig parameterizes BuildMetroLAN.
type MetroLANConfig struct {
	// Segments is the number of LAN segments; HostsPerSeg the number of
	// routers on each (including the segment's gateway).
	Segments, HostsPerSeg int
	// LAN configures each broadcast segment; a zero Delay means 50 µs at
	// 10 Mb/s (a classic shared Ethernet).
	LAN LANConfig
	// Bridge configures the gateway-to-gateway links joining the
	// segments; a zero Delay means 100 µs at 100 Mb/s (a metro fiber
	// bridge). The bridge delay is the synchronization lookahead when the
	// build is partitioned along segment boundaries — deliberately tiny
	// relative to any routing-protocol period, which is what makes this
	// the low-lookahead stress topology for the optimistic engine.
	Bridge LinkConfig
	// CPU configures every router's CPU; nil means no CPU model.
	CPU *CPUConfig
}

// MetroLAN is the built topology: Hosts[s][i] is router i of segment s,
// and Gateways[s] (== Hosts[s][0]) sits on the inter-segment bridge
// ring. Node ids are dense per segment, so OwnerByBlock(HostsPerSeg,
// Segments, k) partitions along segment boundaries without splitting a
// LAN (a LAN must live inside one partition).
type MetroLAN struct {
	Hosts    [][]*Node
	Gateways []*Node
	LANs     []*LAN
}

// BuildMetroLAN creates a metropolitan campus network: Segments broadcast
// LANs, each segment's router 0 acting as its gateway, joined by a
// bridge ring over the gateways plus skip links every 4 segments. The
// layout is fully deterministic. No routes are installed; callers attach
// agents and workloads.
//
// The interesting property is the ratio between the bridge delay (the
// partitioned lookahead, ~100 µs) and the inter-segment traffic gap
// (routing periods, seconds): a conservative engine must barrier every
// lookahead even though virtually no window moves a boundary packet,
// while an optimistic engine's leases stretch toward the real traffic
// spacing.
func (n *Network) BuildMetroLAN(cfg MetroLANConfig) *MetroLAN {
	if cfg.Segments < 1 || cfg.HostsPerSeg < 2 {
		panic("netsim: BuildMetroLAN needs segments of at least 2 hosts")
	}
	if cfg.LAN.Delay == 0 {
		cfg.LAN = LANConfig{Delay: 50e-6, Bandwidth: 10e6, QueueCap: cfg.LAN.QueueCap}
	}
	if cfg.Bridge.Delay == 0 {
		cfg.Bridge = LinkConfig{Delay: 100e-6, Bandwidth: 100e6, QueueCap: cfg.Bridge.QueueCap}
	}
	t := &MetroLAN{
		Hosts:    make([][]*Node, cfg.Segments),
		Gateways: make([]*Node, cfg.Segments),
		LANs:     make([]*LAN, cfg.Segments),
	}
	for s := 0; s < cfg.Segments; s++ {
		hosts := make([]*Node, cfg.HostsPerSeg)
		for i := range hosts {
			hosts[i] = n.NewNode(fmt.Sprintf("seg%d.h%d", s, i), cfg.CPU)
		}
		t.Hosts[s] = hosts
		t.Gateways[s] = hosts[0]
		t.LANs[s] = n.NewLAN(hosts, cfg.LAN)
	}
	if cfg.Segments > 1 {
		for s := 0; s+1 < cfg.Segments; s++ {
			n.Connect(t.Gateways[s], t.Gateways[s+1], cfg.Bridge)
		}
		if cfg.Segments > 2 {
			n.Connect(t.Gateways[cfg.Segments-1], t.Gateways[0], cfg.Bridge)
		}
		for s := 0; s+4 < cfg.Segments; s += 4 {
			n.Connect(t.Gateways[s], t.Gateways[s+4], cfg.Bridge)
		}
	}
	return t
}

// OwnerByBlock returns an owner function assigning node ids to k
// partitions in contiguous blocks of the given size: ids [0, blockSize)
// share a partition, and blocks are dealt round-robin-free — block b goes
// to partition b·k/numBlocks — so partitions get contiguous runs of
// blocks and cross-partition edges are minimized for block-local
// topologies (BuildTwoLevelAS domains, grid rows).
//
// Nodes created after the blocked range (measurement hosts appended at
// the end) land with the final block.
func OwnerByBlock(blockSize, numBlocks, k int) func(NodeID) int {
	if blockSize < 1 || numBlocks < 1 || k < 1 {
		panic("netsim: OwnerByBlock needs positive sizes")
	}
	return func(id NodeID) int {
		b := int(id) / blockSize
		if b >= numBlocks {
			b = numBlocks - 1
		}
		return b * k / numBlocks
	}
}
