package netsim

import (
	"fmt"
	"math"
	"testing"
)

func paGraph(t *testing.T, n, m int, seed int64) (*Network, *ASGraph) {
	t.Helper()
	nw := NewNetwork(seed)
	g := nw.BuildPreferentialAttachment(PreferentialAttachmentConfig{
		N: n, M: m,
		Link: LinkConfig{Delay: 0.01, Bandwidth: 10e6, QueueCap: 64},
		Seed: seed,
	})
	return nw, g
}

// degreeSlope fits the log-log slope of the degree CCDF by least
// squares over the degrees ≥ m.
func degreeSlope(g *ASGraph, minDeg int) float64 {
	deg := map[NodeID]int{}
	for _, e := range g.Edges {
		deg[e.A.ID]++
		deg[e.B.ID]++
	}
	// CCDF: fraction of nodes with degree ≥ k.
	maxDeg := 0
	hist := map[int]int{}
	for _, d := range deg {
		hist[d]++
		if d > maxDeg {
			maxDeg = d
		}
	}
	n := float64(len(g.Nodes))
	var xs, ys []float64
	ge := 0.0
	for k := maxDeg; k >= minDeg; k-- {
		ge += float64(hist[k])
		if hist[k] == 0 {
			continue
		}
		xs = append(xs, math.Log(float64(k)))
		ys = append(ys, math.Log(ge/n))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	m := float64(len(xs))
	return (m*sxy - sx*sy) / (m*sxx - sx*sx)
}

func TestPreferentialAttachmentPowerLaw(t *testing.T) {
	_, g := paGraph(t, 3000, 2, 42)
	if len(g.Nodes) != 3000 {
		t.Fatalf("node count %d", len(g.Nodes))
	}
	// 3 clique edges + 2 per arriving node.
	if want := 3 + 2*(3000-3); len(g.Edges) != want {
		t.Fatalf("edge count %d, want %d", len(g.Edges), want)
	}
	// A BA graph's degree CCDF falls as k^-(γ-1) with γ ≈ 3; accept a
	// broad band around it — the point is heavy-tailed, not Poisson (an
	// Erdős–Rényi graph at this density fits steeper than -4).
	slope := degreeSlope(g, 2)
	if slope > -1.2 || slope < -3.5 {
		t.Fatalf("degree CCDF slope %.2f outside the power-law band [-3.5, -1.2]", slope)
	}
}

func TestPreferentialAttachmentConnectivity(t *testing.T) {
	_, g := paGraph(t, 500, 1, 7) // M=1 is the sparsest, hardest case
	adj := map[NodeID][]NodeID{}
	for _, e := range g.Edges {
		adj[e.A.ID] = append(adj[e.A.ID], e.B.ID)
		adj[e.B.ID] = append(adj[e.B.ID], e.A.ID)
	}
	seen := map[NodeID]bool{g.Nodes[0].ID: true}
	queue := []NodeID{g.Nodes[0].ID}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(seen) != len(g.Nodes) {
		t.Fatalf("graph disconnected: reached %d of %d", len(seen), len(g.Nodes))
	}
}

// relationAcyclic verifies the provider→customer edges form a DAG via
// iterative DFS three-coloring.
func relationAcyclic(t *testing.T, g *ASGraph) {
	t.Helper()
	succ := map[NodeID][]NodeID{} // provider → customers
	for _, e := range g.Edges {
		if e.Rel == EdgeProviderCustomer {
			succ[e.A.ID] = append(succ[e.A.ID], e.B.ID)
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[NodeID]int{}
	for _, start := range g.Nodes {
		if color[start.ID] != white {
			continue
		}
		type frame struct {
			id NodeID
			i  int
		}
		stack := []frame{{id: start.ID}}
		color[start.ID] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(succ[f.id]) {
				nb := succ[f.id][f.i]
				f.i++
				switch color[nb] {
				case gray:
					t.Fatalf("provider–customer cycle through AS %d", nb)
				case white:
					color[nb] = gray
					stack = append(stack, frame{id: nb})
				}
				continue
			}
			color[f.id] = black
			stack = stack[:len(stack)-1]
		}
	}
}

func TestProviderCustomerAcyclicity(t *testing.T) {
	_, g := paGraph(t, 800, 2, 11)
	relationAcyclic(t, g)

	nw := NewNetwork(3)
	g2 := nw.BuildProviderCustomer(ProviderCustomerConfig{
		Cores: 8, Stubs: 400, Homing: 2,
		CoreLink: LinkConfig{Delay: 0.01, Bandwidth: 10e6, QueueCap: 64},
		StubLink: LinkConfig{Delay: 0.005, Bandwidth: 10e6, QueueCap: 64},
		Seed:     3,
	})
	relationAcyclic(t, g2)
	// Geometry: full core mesh + Homing access links per stub, homing
	// providers distinct.
	if want := 8*7/2 + 2*400; len(g2.Edges) != want {
		t.Fatalf("edge count %d, want %d", len(g2.Edges), want)
	}
	perStub := map[NodeID]map[NodeID]bool{}
	for _, e := range g2.Edges {
		if e.Rel != EdgeProviderCustomer {
			continue
		}
		if perStub[e.B.ID] == nil {
			perStub[e.B.ID] = map[NodeID]bool{}
		}
		if perStub[e.B.ID][e.A.ID] {
			t.Fatalf("stub %d multihomed twice to provider %d", e.B.ID, e.A.ID)
		}
		perStub[e.B.ID][e.A.ID] = true
	}
	for id, provs := range perStub {
		if len(provs) != 2 {
			t.Fatalf("stub %d has %d providers, want 2", id, len(provs))
		}
	}
}

// graphFingerprint renders the labeled edge list; two builds agree iff
// their fingerprints do.
func graphFingerprint(g *ASGraph) string {
	s := ""
	for _, e := range g.Edges {
		s += fmt.Sprintf("%d-%d:%d;", e.A.ID, e.B.ID, e.Rel)
	}
	return s
}

// TestGeneratorsSeedStable: generated topologies are pure functions of
// their configuration — identical across repeated builds (and therefore
// across -jobs values, which the generators never see; the experiment-
// level K-invariance test closes the loop end-to-end).
func TestGeneratorsSeedStable(t *testing.T) {
	_, g1 := paGraph(t, 400, 2, 13)
	_, g2 := paGraph(t, 400, 2, 13)
	if graphFingerprint(g1) != graphFingerprint(g2) {
		t.Fatal("preferential-attachment build not reproducible for a fixed seed")
	}
	_, g3 := paGraph(t, 400, 2, 14)
	if graphFingerprint(g1) == graphFingerprint(g3) {
		t.Fatal("preferential-attachment build ignored the seed")
	}
	build := func(seed int64) *ASGraph {
		nw := NewNetwork(1)
		return nw.BuildProviderCustomer(ProviderCustomerConfig{
			Cores: 6, Stubs: 100,
			CoreLink: LinkConfig{Delay: 0.01, Bandwidth: 10e6, QueueCap: 64},
			StubLink: LinkConfig{Delay: 0.005, Bandwidth: 10e6, QueueCap: 64},
			Seed:     seed,
		})
	}
	if graphFingerprint(build(5)) != graphFingerprint(build(5)) {
		t.Fatal("provider-customer build not reproducible for a fixed seed")
	}
}
