package netsim

import "routesync/internal/rng"

// neighbors enumerates (medium, peer) pairs reachable in one hop from nd.
func neighbors(nd *Node) []Egress {
	var out []Egress
	for _, m := range nd.media {
		switch t := m.(type) {
		case *Link:
			out = append(out, Egress{Via: t, NextHop: t.Peer(nd).ID})
		case *LAN:
			for _, peer := range t.Members() {
				if peer != nd {
					out = append(out, Egress{Via: t, NextHop: peer.ID})
				}
			}
		}
	}
	return out
}

// adjacency materializes every node's (medium, peer) list once, indexed
// by node id, so repeated BFS passes don't re-enumerate media.
func (n *Network) adjacency() [][]Egress {
	adj := make([][]Egress, len(n.nodes))
	for i, nd := range n.nodes {
		adj[i] = neighbors(nd)
	}
	return adj
}

// InstallStaticRoutes fills every node's FIB with shortest-path (hop
// count) routes computed by breadth-first search over the topology.
// Experiments that study forwarding behaviour rather than route
// computation (Figs 1–3) use this instead of running a routing protocol to
// convergence; the routing protocol's own tests verify it converges to
// the same routes.
//
// The cost is Θ(N·(N+E)) time and Θ(N²) FIB entries, which is fine for
// figure-scale topologies but not for thousands of routers — large-scale
// experiments route only toward their measured hosts with
// InstallRoutesToward instead.
func (n *Network) InstallStaticRoutes() {
	// BFS from each source over a pre-built adjacency, with slice-indexed
	// scratch reused across sources (node ids are dense).
	type qe struct {
		node  NodeID
		first Egress // egress src used to start this branch
	}
	adj := n.adjacency()
	visited := make([]bool, len(n.nodes))
	queue := make([]qe, 0, len(n.nodes))
	for _, src := range n.nodes {
		for i := range visited {
			visited[i] = false
		}
		queue = queue[:0]
		visited[src.ID] = true
		for _, eg := range adj[src.ID] {
			if visited[eg.NextHop] {
				continue
			}
			visited[eg.NextHop] = true
			src.SetRoute(eg.NextHop, eg.Via, eg.NextHop)
			queue = append(queue, qe{node: eg.NextHop, first: eg})
		}
		for qi := 0; qi < len(queue); qi++ {
			cur := queue[qi]
			for _, eg := range adj[cur.node] {
				if visited[eg.NextHop] {
					continue
				}
				visited[eg.NextHop] = true
				src.SetRoute(eg.NextHop, cur.first.Via, cur.first.NextHop)
				queue = append(queue, qe{node: eg.NextHop, first: cur.first})
			}
		}
	}
}

// InstallRoutesToward installs shortest-path routes from every node
// toward each of the given destinations only — Θ(D·(N+E)) instead of the
// all-pairs Θ(N·(N+E)), and Θ(D·N) FIB entries instead of Θ(N²). Used by
// the large-topology experiments, whose measured traffic flows to a
// handful of hosts while the routing protocol exercises the full graph.
//
// For each destination a reverse BFS labels every node with its
// distance, and each node routes via its first egress (media order) that
// decreases the distance. Paths are shortest; among equal-length paths
// the tie-break is deterministic but may differ from InstallStaticRoutes'
// branch order.
func (n *Network) InstallRoutesToward(dests []NodeID) {
	adj := n.adjacency()
	dist := make([]int, len(n.nodes))
	queue := make([]NodeID, 0, len(n.nodes))
	for _, dst := range dests {
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		dist[dst] = 0
		queue = append(queue, dst)
		for qi := 0; qi < len(queue); qi++ {
			cur := queue[qi]
			for _, eg := range adj[cur] {
				if dist[eg.NextHop] < 0 {
					dist[eg.NextHop] = dist[cur] + 1
					queue = append(queue, eg.NextHop)
				}
			}
		}
		for _, nd := range n.nodes {
			if nd.ID == dst || dist[nd.ID] < 0 {
				continue
			}
			// First egress (media order) that decreases the distance — the
			// same tie-break a forward BFS from nd would pick.
			for _, eg := range adj[nd.ID] {
				if dist[eg.NextHop] == dist[nd.ID]-1 {
					nd.SetRoute(dst, eg.Via, eg.NextHop)
					break
				}
			}
		}
	}
}

// BuildChain creates a linear chain of nodes connected by identical links:
// names[0] — names[1] — ... — names[k−1]. cpu[i] configures node i's CPU
// (nil entries or a short slice mean no CPU). Static routes are installed.
// The paper's Figure 1 path (Berkeley → ... NEARnet cores ... → MIT) is a
// chain like this.
func (n *Network) BuildChain(names []string, cpus []*CPUConfig, link LinkConfig) []*Node {
	if len(names) < 2 {
		panic("netsim: a chain needs at least two nodes")
	}
	nodes := make([]*Node, len(names))
	for i, name := range names {
		var cpu *CPUConfig
		if i < len(cpus) {
			cpu = cpus[i]
		}
		nodes[i] = n.NewNode(name, cpu)
	}
	for i := 0; i+1 < len(nodes); i++ {
		n.Connect(nodes[i], nodes[i+1], link)
	}
	n.InstallStaticRoutes()
	return nodes
}

// BuildRandomGraph creates n nodes wired as a uniformly random connected
// graph: a random spanning tree (node i > 0 links to a uniform j < i)
// plus extraEdges additional distinct random edges. cpus[i] configures
// node i (nil or short slice: no CPU). Static routes are NOT installed —
// random graphs exist to exercise the routing protocol's convergence, so
// callers attach agents instead. Returns the nodes and the links.
func (n *Network) BuildRandomGraph(r *rng.Source, count, extraEdges int, cpus []*CPUConfig, link LinkConfig) ([]*Node, []*Link) {
	if count < 2 {
		panic("netsim: a random graph needs at least two nodes")
	}
	nodes := make([]*Node, count)
	for i := range nodes {
		var cpu *CPUConfig
		if i < len(cpus) {
			cpu = cpus[i]
		}
		nodes[i] = n.NewNode("g", cpu)
	}
	var links []*Link
	connected := make(map[[2]int]bool)
	addEdge := func(a, b int) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if connected[key] {
			return false
		}
		connected[key] = true
		links = append(links, n.Connect(nodes[a], nodes[b], link))
		return true
	}
	for i := 1; i < count; i++ {
		addEdge(i, r.Intn(i))
	}
	for added := 0; added < extraEdges; {
		if addEdge(r.Intn(count), r.Intn(count)) {
			added++
		} else if len(links) == count*(count-1)/2 {
			break // complete graph; nothing left to add
		}
	}
	return nodes, links
}

// HopDistances returns the hop count from src to every node reachable
// over the current topology (ignoring FIBs), computed by BFS — the
// ground truth the routing protocol's tables are checked against.
func (n *Network) HopDistances(src *Node) map[NodeID]int {
	dist := map[NodeID]int{src.ID: 0}
	queue := []*Node{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, eg := range neighbors(cur) {
			if _, seen := dist[eg.NextHop]; seen {
				continue
			}
			dist[eg.NextHop] = dist[cur.ID] + 1
			queue = append(queue, n.Node(eg.NextHop))
		}
	}
	return dist
}

// BuildStar creates a hub node connected by identical links to k leaves
// and installs static routes. Returns (hub, leaves).
func (n *Network) BuildStar(hubName string, hubCPU *CPUConfig, leafNames []string, link LinkConfig) (*Node, []*Node) {
	if len(leafNames) < 1 {
		panic("netsim: a star needs at least one leaf")
	}
	hub := n.NewNode(hubName, hubCPU)
	leaves := make([]*Node, len(leafNames))
	for i, name := range leafNames {
		leaves[i] = n.NewNode(name, nil)
		n.Connect(hub, leaves[i], link)
	}
	n.InstallStaticRoutes()
	return hub, leaves
}
