// Package parallel is the repository's deterministic bounded job
// runner. The paper's evaluation is a batch of independent figure
// drivers, each of which is itself a batch of independent simulation
// replications; both layers parallelize cleanly as long as per-run
// randomness is partitioned up front (the paper's [Ca90] Park–Miller
// streams split into independent per-index streams) and results are
// reassembled in index order.
//
// Every function here guarantees: given a deterministic fn, the returned
// slice — and, for RunOrdered, the emit sequence — is byte-identical
// regardless of the worker count, including jobs=1. Worker scheduling
// can change *when* fn(i) runs, never *what* it computes or where its
// result lands.
package parallel

import (
	"runtime"

	"routesync/internal/rng"
)

// Workers normalizes a jobs request: values <= 0 mean one worker per
// available CPU (runtime.GOMAXPROCS).
func Workers(jobs int) int {
	if jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return jobs
}

// Run executes fn(i) for i in [0, n) on at most jobs concurrent workers
// (jobs <= 0 means one per CPU) and returns the results in index order.
// fn must not depend on shared mutable state; everything it needs should
// be derived from i.
func Run[T any](n, jobs int, fn func(i int) T) []T {
	return RunOrdered(n, jobs, fn, nil)
}

// RunOrdered is Run plus an in-order consumer: emit(i, result) is called
// from the caller's goroutine in strict index order, as soon as result i
// and all results before it are available — so a slow job 0 delays
// emission but not computation of jobs 1..n−1. A nil emit is allowed.
func RunOrdered[T any](n, jobs int, fn func(i int) T, emit func(i int, v T)) []T {
	if n <= 0 {
		return nil
	}
	jobs = Workers(jobs)
	out := make([]T, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	sem := make(chan struct{}, jobs)
	go func() {
		for i := 0; i < n; i++ {
			i := i
			sem <- struct{}{}
			go func() {
				defer func() { <-sem }()
				out[i] = fn(i)
				close(ready[i])
			}()
		}
	}()
	for i := 0; i < n; i++ {
		<-ready[i]
		if emit != nil {
			emit(i, out[i])
		}
	}
	return out
}

// RunSeeded is Run with randomness partitioned for the caller: it
// derives n independent Park–Miller streams from seed — serially, before
// any worker starts, so the derivation cannot race — and hands stream i
// to fn(i). The per-index streams depend only on (seed, i), never on the
// worker count or schedule, which is what makes replicated-simulation
// output byte-identical between jobs=1 and jobs=GOMAXPROCS.
func RunSeeded[T any](n, jobs int, seed int64, fn func(i int, src *rng.Source) T) []T {
	if n <= 0 {
		return nil
	}
	parent := rng.New(seed)
	streams := make([]*rng.Source, n)
	for i := range streams {
		streams[i] = parent.Split()
	}
	return Run(n, jobs, func(i int) T { return fn(i, streams[i]) })
}
