package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"routesync/internal/rng"
)

func TestRunIndexOrder(t *testing.T) {
	for _, jobs := range []int{1, 2, 7, 64} {
		got := Run(100, jobs, func(i int) int {
			if i%3 == 0 {
				time.Sleep(time.Microsecond) // shuffle completion order
			}
			return i * i
		})
		if len(got) != 100 {
			t.Fatalf("jobs=%d: len = %d", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestRunIdenticalAcrossWorkerCounts(t *testing.T) {
	fn := func(i int) float64 {
		s := rng.New(int64(i) + 1)
		var sum float64
		for k := 0; k < 100; k++ {
			sum += s.Float64()
		}
		return sum
	}
	serial := Run(50, 1, fn)
	for _, jobs := range []int{2, 8, runtime.GOMAXPROCS(0)} {
		par := Run(50, jobs, fn)
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("jobs=%d: out[%d] = %v, want %v", jobs, i, par[i], serial[i])
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const jobs = 3
	var inFlight, peak atomic.Int32
	Run(40, jobs, func(i int) int {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return i
	})
	if p := peak.Load(); p > jobs {
		t.Fatalf("observed %d concurrent jobs, cap is %d", p, jobs)
	}
}

func TestRunOrderedEmitsInOrder(t *testing.T) {
	var order []int
	vals := RunOrdered(30, 8, func(i int) int {
		if i == 0 {
			time.Sleep(2 * time.Millisecond) // hold back the first result
		}
		return i + 100
	}, func(i, v int) {
		order = append(order, i)
		if v != i+100 {
			t.Errorf("emit(%d) got %d", i, v)
		}
	})
	if len(order) != 30 || len(vals) != 30 {
		t.Fatalf("emitted %d, returned %d", len(order), len(vals))
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("emission %d was index %d", i, idx)
		}
	}
}

func TestRunSeededDeterministicAcrossWorkerCounts(t *testing.T) {
	fn := func(i int, src *rng.Source) []float64 {
		draws := make([]float64, 20)
		for k := range draws {
			draws[k] = src.Float64()
		}
		return draws
	}
	serial := RunSeeded(32, 1, 12345, fn)
	for _, jobs := range []int{3, 16} {
		par := RunSeeded(32, jobs, 12345, fn)
		for i := range serial {
			for k := range serial[i] {
				if serial[i][k] != par[i][k] {
					t.Fatalf("jobs=%d: stream %d draw %d = %v, want %v",
						jobs, i, k, par[i][k], serial[i][k])
				}
			}
		}
	}
	// Distinct indices must get distinct streams.
	if serial[0][0] == serial[1][0] && serial[0][1] == serial[1][1] {
		t.Fatal("streams 0 and 1 start identically")
	}
}

func TestRunEmptyAndZeroJobs(t *testing.T) {
	if got := Run(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0 returned %v", got)
	}
	if got := RunSeeded(0, 4, 1, func(i int, _ *rng.Source) int { return i }); got != nil {
		t.Fatalf("seeded n=0 returned %v", got)
	}
	// jobs <= 0 means one worker per CPU, not zero workers.
	got := Run(5, 0, func(i int) int { return i })
	if len(got) != 5 {
		t.Fatalf("jobs=0: len = %d", len(got))
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-3) != runtime.GOMAXPROCS(0) || Workers(6) != 6 {
		t.Fatal("Workers normalization wrong")
	}
}
