package pathvector

import (
	"fmt"
	"math/bits"

	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/protocol"
)

// Relation labels a neighbor from this AS's perspective: the business
// relationship that drives LOCAL_PREF and Gao–Rexford export policy.
type Relation int8

const (
	// RelCustomer: the peer pays us for transit.
	RelCustomer Relation = iota
	// RelPeer: settlement-free peering.
	RelPeer
	// RelProvider: we pay the peer for transit.
	RelProvider
)

func (r Relation) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	}
	return fmt.Sprintf("Relation(%d)", int8(r))
}

// localPref maps the learned-from relation to route preference: prefer
// customer routes (they pay) over peer routes over provider routes (we
// pay) — the standard Gao–Rexford preference. Self-originated prefixes
// outrank everything.
func localPref(r Relation) uint8 {
	switch r {
	case RelCustomer:
		return 100
	case RelPeer:
		return 80
	default:
		return 60
	}
}

// PeerConfig declares one BGP session: the link that carries it and the
// neighbor's relation to this AS.
type PeerConfig struct {
	Link *netsim.Link
	Rel  Relation
}

// MaxOrigins bounds the origin set: the per-peer dirty and
// advertised-state sets are single-word bitsets, which keeps the MRAI
// flush path allocation-free.
const MaxOrigins = 64

// Config assembles a path-vector agent.
type Config struct {
	// Origins is the bounded prefix set, shared by every agent in the
	// network: the ASes that originate a prefix, each identified by its
	// node id. At most MaxOrigins. Order must be identical across
	// agents (it indexes the RIB).
	Origins []netsim.NodeID
	// Peers lists the BGP sessions in deterministic order.
	Peers []PeerConfig
	// RefreshPeriod is the periodic re-advertisement interval: each AS
	// re-sends its reachable prefixes to every peer (a soft refresh that
	// renews the neighbor's hold timer), subject to MRAI batching. This
	// is the outer periodic timer the kernel owns.
	RefreshPeriod float64
	// Jitter yields refresh intervals; nil means the deterministic
	// period.
	Jitter jitter.Policy
	// MRAI is the per-peer minimum route advertisement interval: after a
	// flush to a peer, further updates for that peer batch until the
	// interval expires. Zero disables batching (every change sends
	// immediately).
	MRAI float64
	// MRAIJitter yields the per-peer batching intervals; nil means the
	// fixed MRAI. Ignored when MRAI is zero.
	MRAIJitter jitter.Policy
	// PrepareCost / ProcessCost are seconds of CPU to build one update
	// flush and to process one received update message.
	PrepareCost float64
	ProcessCost float64
	// HoldFactor: adj-in routes unrefreshed for HoldFactor·RefreshPeriod
	// are expired as implicit withdrawals (the hold timer); zero means 4.
	HoldFactor float64
	// Mode selects the refresh-timer re-arm rule (the paper's coupling
	// by default).
	Mode protocol.TimerMode
	// Seed drives the agent's jitter streams.
	Seed int64
}

// Stats counts agent activity.
type Stats struct {
	// Flushes is the number of update messages sent (MRAI rounds);
	// Advertised/Withdrawn count the entries inside them.
	Flushes    uint64
	Advertised uint64
	Withdrawn  uint64
	// Received counts accepted update messages; Entries the entries
	// inside them.
	Received uint64
	Entries  uint64
	// LoopRejected counts entries dropped because our own AS was already
	// in the path (the path-vector loop-prevention rule).
	LoopRejected uint64
	Malformed    uint64
	// BestChanges counts route-selection outcomes that changed the best
	// path for some origin (each one propagates).
	BestChanges uint64
	// Expired counts adj-in routes aged out by the hold timer.
	Expired uint64
	// TimerResets is the refresh-timer arm count (kernel-owned).
	TimerResets uint64
}

// adjSlot is one (origin, peer) cell of the Adj-RIB-In: the AS path the
// peer advertised, nil-length-with-has=false when none. The backing
// array is reused across re-advertisements, so steady-state integration
// allocates nothing once each slot reaches its high-water length.
type adjSlot struct {
	path    []netsim.NodeID
	has     bool
	updated float64
}

const (
	bestNone = -1 // origin currently unreachable
	bestSelf = -2 // self-originated
)

// pvAux carries the sending peer's index, resolved at receive time so
// the CPU-completion path needn't re-search.
type pvAux struct {
	peer int
}

type peerState struct {
	link *netsim.Link
	id   netsim.NodeID
	rel  Relation
	// dirty marks origins needing (re)advertisement to this peer; advOut
	// marks origins currently advertised (so transitions to
	// unreachable/unexportable send withdrawals exactly once).
	dirty  uint64
	advOut uint64
	// MRAI batching: while armed, flushes wait for the timer; the timer
	// re-arms only while traffic flows, so idle peers cost no events.
	mraiArmed bool
	mraiEv    des.Event
	mraiFn    func() // hoisted: one closure per peer per agent lifetime
	label     string
}

// Agent is one AS's path-vector process: a BGP-like protocol strategy
// over the shared protocol kernel, which owns the refresh timer, CPU
// and crash/restart machinery. MRAI timers are the agent's own — one
// per peer, outside the kernel's single periodic timer.
type Agent struct {
	k   *protocol.Kernel[pvAux]
	cfg Config

	peers     []peerState
	peerByID  map[netsim.NodeID]int
	origins   []netsim.NodeID
	originIdx map[netsim.NodeID]int
	selfIdx   int  // index of own prefix in origins, or -1
	localUp   bool // own prefix currently originated

	adjIn [][]adjSlot // [origin][peer]
	best  []int       // [origin] → bestSelf, bestNone, or peer index

	stats Stats

	// OnFlush, if set, observes every update message sent: the flush
	// time, the peer, and the entry counts. The MRAI-synchronization
	// experiment clusters these times.
	OnFlush func(t float64, peer netsim.NodeID, advertised, withdrawn int)
	// OnBestChange, if set, observes route-selection changes; path is
	// nil when the origin became unreachable. The path slice is reused —
	// observers keeping it must copy.
	OnBestChange func(origin netsim.NodeID, path []netsim.NodeID)
}

// NewAgent creates an agent on node. Call Start to begin.
func NewAgent(node *netsim.Node, cfg Config) *Agent {
	if cfg.RefreshPeriod <= 0 {
		panic("pathvector: refresh period must be positive")
	}
	if len(cfg.Origins) == 0 || len(cfg.Origins) > MaxOrigins {
		panic(fmt.Sprintf("pathvector: origin set must have 1..%d entries", MaxOrigins))
	}
	if cfg.PrepareCost < 0 || cfg.ProcessCost < 0 || cfg.MRAI < 0 {
		panic("pathvector: negative costs or MRAI")
	}
	if cfg.Jitter == nil {
		cfg.Jitter = jitter.None{Tp: cfg.RefreshPeriod}
	}
	if cfg.MRAI > 0 && cfg.MRAIJitter == nil {
		cfg.MRAIJitter = jitter.None{Tp: cfg.MRAI}
	}
	if cfg.HoldFactor == 0 {
		cfg.HoldFactor = 4
	}
	a := &Agent{
		cfg:       cfg,
		peerByID:  make(map[netsim.NodeID]int, len(cfg.Peers)),
		origins:   cfg.Origins,
		originIdx: make(map[netsim.NodeID]int, len(cfg.Origins)),
		selfIdx:   -1,
	}
	a.peers = make([]peerState, len(cfg.Peers))
	for i, pc := range cfg.Peers {
		if pc.Link == nil {
			panic("pathvector: peer without a link")
		}
		peer := pc.Link.Peer(node)
		a.peers[i] = peerState{
			link:  pc.Link,
			id:    peer.ID,
			rel:   pc.Rel,
			label: fmt.Sprintf("pv-mrai(%s->%s)", node.Name, peer.Name),
		}
		a.peerByID[peer.ID] = i
	}
	for i, o := range cfg.Origins {
		a.originIdx[o] = i
		if o == node.ID {
			a.selfIdx = i
			a.localUp = true
		}
	}
	a.adjIn = make([][]adjSlot, len(cfg.Origins))
	for i := range a.adjIn {
		a.adjIn[i] = make([]adjSlot, len(cfg.Peers))
	}
	a.best = make([]int, len(cfg.Origins))
	for i := range a.best {
		a.best[i] = bestNone
	}
	if a.selfIdx >= 0 {
		a.best[a.selfIdx] = bestSelf
	}
	a.k = protocol.New(protocol.Config{
		Name:       "pathvector",
		Node:       node,
		Seed:       cfg.Seed ^ int64(node.ID)*0x2545F4914F6CDD1D,
		Jitter:     cfg.Jitter,
		Mode:       cfg.Mode,
		TimerLabel: fmt.Sprintf("pv-refresh(%s)", node.Name),
		RearmLabel: "pv-rearm-wait",
		SweepLabel: "pv-hold-sweep",
		SweepEvery: cfg.RefreshPeriod,
	}, protocol.Hooks[pvAux]{
		Fire:    a.refresh,
		Receive: a.receive,
		Process: a.process,
		Sweep:   a.sweep,
		// A reboot loses the RIB and every session's batching state; the
		// origin set and peer sessions are configuration and survive.
		ResetVolatile: func() { a.resetRIB() },
	})
	for i := range a.peers {
		p := &a.peers[i]
		p.mraiFn = func() { a.onMRAI(p) }
	}
	return a
}

// Node returns the agent's node.
func (a *Agent) Node() *netsim.Node { return a.k.Node() }

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats {
	s := a.stats
	s.TimerResets = a.k.TimerResets()
	return s
}

// PendingPackets returns the number of received updates held while their
// processing cost drains through the CPU model (see the kernel).
func (a *Agent) PendingPackets() int { return a.k.PendingPackets() }

// resetRIB clears the volatile routing state in place: Adj-RIB-In, best
// selections, and per-peer dirty/advertised/MRAI state (cancelling any
// armed MRAI timers).
func (a *Agent) resetRIB() {
	for o := range a.adjIn {
		row := a.adjIn[o]
		for p := range row {
			row[p].has = false
			row[p].path = row[p].path[:0]
		}
		a.best[o] = bestNone
	}
	if a.selfIdx >= 0 && a.localUp {
		a.best[a.selfIdx] = bestSelf
	}
	a.cancelMRAIs()
	for i := range a.peers {
		a.peers[i].dirty = 0
		a.peers[i].advOut = 0
	}
}

func (a *Agent) cancelMRAIs() {
	node := a.k.Node()
	for i := range a.peers {
		p := &a.peers[i]
		if p.mraiArmed {
			node.Cancel(p.mraiEv)
			p.mraiEv = des.Event{}
			p.mraiArmed = false
		}
	}
}

// Start arms the first refresh to fire startOffset seconds from now.
// The initial advertisement of reachable prefixes rides that first
// refresh, so a shared startOffset models the synchronized post-restart
// state exactly as the distance-vector family does.
func (a *Agent) Start(startOffset float64) {
	a.k.StartTimer(startOffset)
	a.k.ScheduleSweep()
}

// Stop halts the agent: refresh, sweep and MRAI timers are cancelled
// and incoming updates are ignored; the RIB is left for inspection.
func (a *Agent) Stop() {
	a.k.Stop()
	a.cancelMRAIs()
}

// Crash models a power failure: the RIB and session batching state are
// lost and the node is marked failed until Restart (see the kernel).
func (a *Agent) Crash() { a.k.Crash() }

// Restart reboots a stopped agent and arms the first refresh
// startOffset seconds from now; after a Crash the agent cold-starts
// from an empty RIB and relies on the neighbors' periodic refreshes to
// relearn paths.
func (a *Agent) Restart(startOffset float64) {
	a.k.Restart()
	a.Start(startOffset)
}

// WithdrawLocal withdraws the agent's own prefix: selection falls back
// to any learned path (none, usually, for the true origin), and the
// withdrawal propagates — the trigger for path-exploration storms. Call
// it from an event executing at the agent's node. No-op unless this AS
// is an origin.
func (a *Agent) WithdrawLocal() {
	if a.selfIdx < 0 || !a.localUp {
		return
	}
	a.localUp = false
	if a.reselect(a.selfIdx, -1) {
		a.flushIdlePeers()
	}
}

// AnnounceLocal re-originates a withdrawn prefix.
func (a *Agent) AnnounceLocal() {
	if a.selfIdx < 0 || a.localUp {
		return
	}
	a.localUp = true
	if a.reselect(a.selfIdx, -1) {
		a.flushIdlePeers()
	}
}

// Reachable reports whether the agent currently has a route to origin,
// and the AS-path length (0 for a self-originated prefix).
func (a *Agent) Reachable(origin netsim.NodeID) (bool, int) {
	o, ok := a.originIdx[origin]
	if !ok {
		return false, 0
	}
	switch b := a.best[o]; b {
	case bestNone:
		return false, 0
	case bestSelf:
		return true, 0
	default:
		return true, len(a.adjIn[o][b].path)
	}
}

// BestPath appends the current best AS path toward origin (first hop
// first, origin last) onto dst and returns it; self-originated and
// unreachable prefixes append nothing.
func (a *Agent) BestPath(dst []netsim.NodeID, origin netsim.NodeID) []netsim.NodeID {
	o, ok := a.originIdx[origin]
	if !ok {
		return dst
	}
	if b := a.best[o]; b >= 0 {
		dst = append(dst, a.adjIn[o][b].path...)
	}
	return dst
}

// refresh is the kernel's periodic fire: re-advertise every reachable
// prefix to every peer (renewing the neighbors' hold timers), subject
// to per-peer MRAI batching, then charge the preparation cost and
// re-arm once the CPU drains — the paper's coupled reset discipline at
// the refresh-timer layer. Refreshes are deliberately not cascaded: a
// neighbor whose RIB is unchanged by our refresh stays silent, so hold
// renewal is Θ(degree) per period, not a network-wide wave.
func (a *Agent) refresh() {
	for o := range a.origins {
		if a.best[o] != bestNone {
			a.markDirtyAll(o)
		}
	}
	a.flushIdlePeers()
	a.k.FinishSend(a.cfg.PrepareCost, true)
}

// markDirtyAll marks origin o dirty toward every peer.
func (a *Agent) markDirtyAll(o int) {
	bit := uint64(1) << uint(o)
	for i := range a.peers {
		a.peers[i].dirty |= bit
	}
}

// flushIdlePeers flushes every peer with dirty state whose MRAI timer
// is not running; peers mid-interval keep batching until it expires.
func (a *Agent) flushIdlePeers() {
	for i := range a.peers {
		p := &a.peers[i]
		if p.dirty != 0 && !p.mraiArmed {
			a.flushPeer(p)
		}
	}
}

// flushPeer builds and sends one update message carrying the peer's
// dirty set — advertisements for exportable reachable origins,
// withdrawals for origins previously advertised and no longer
// exportable — then starts the MRAI interval. A flush whose dirty set
// produces no entries (nothing exportable, nothing to withdraw) sends
// nothing and does not arm the timer.
func (a *Agent) flushPeer(p *peerState) {
	node := a.k.Node()
	buf := AppendHeader(a.k.Enc[:0], node.ID)
	adv, wdr := 0, 0
	dirty := p.dirty
	p.dirty = 0
	for dirty != 0 {
		o := bits.TrailingZeros64(dirty)
		dirty &^= uint64(1) << uint(o)
		bit := uint64(1) << uint(o)
		if a.exportable(o, p) {
			var err error
			buf, err = AppendAdvertise(buf, a.origins[o], node.ID, a.bestPathFor(o))
			if err != nil {
				panic(err) // paths are bounded by the topology diameter
			}
			p.advOut |= bit
			adv++
		} else if p.advOut&bit != 0 {
			buf = AppendWithdraw(buf, a.origins[o])
			p.advOut &^= bit
			wdr++
		}
	}
	a.k.Enc = buf
	if adv+wdr == 0 {
		return
	}
	PatchCount(buf, adv+wdr)
	a.k.Send(p.link, p.id, buf)
	a.stats.Flushes++
	a.stats.Advertised += uint64(adv)
	a.stats.Withdrawn += uint64(wdr)
	if a.OnFlush != nil {
		a.OnFlush(node.Now(), p.id, adv, wdr)
	}
	if a.cfg.MRAI > 0 {
		// Per-peer MRAI interval through the jitter policy, drawn from the
		// kernel's stream with a per-peer id so PerRouterFixed-style
		// policies decorrelate sessions, not just routers.
		delay := a.cfg.MRAIJitter.Delay(a.k.RNG(), int(node.ID)*8191+int(p.id))
		p.mraiEv = node.After(delay, p.label, p.mraiFn)
		p.mraiArmed = true
	}
}

// onMRAI fires at a peer's MRAI expiration: flush any batched changes
// (restarting the interval), or go idle.
func (a *Agent) onMRAI(p *peerState) {
	if a.k.Stopped() {
		return
	}
	p.mraiArmed = false
	if p.dirty != 0 {
		a.flushPeer(p)
	}
}

// bestPathFor returns the stored AS path for origin o's best route —
// empty for a self-originated prefix. Callers must not mutate or keep
// it.
func (a *Agent) bestPathFor(o int) []netsim.NodeID {
	if b := a.best[o]; b >= 0 {
		return a.adjIn[o][b].path
	}
	return nil
}

// exportable applies Gao–Rexford export: self-originated and
// customer-learned routes go to everyone; peer- and provider-learned
// routes go to customers only (we don't provide free transit between
// our providers and peers). A peer already on the path is skipped —
// the sender-side half of loop prevention.
func (a *Agent) exportable(o int, p *peerState) bool {
	b := a.best[o]
	switch {
	case b == bestNone:
		return false
	case b == bestSelf:
		return true
	}
	learned := a.peers[b].rel
	if learned != RelCustomer && p.rel != RelCustomer {
		return false
	}
	// Sender-side loop suppression; hop 0 is the peer the best route was
	// learned from, so this also covers never echoing a route back to
	// its source.
	for _, h := range a.adjIn[o][b].path {
		if h == p.id {
			return false
		}
	}
	return true
}

// receive handles an incoming update: validate the frame, resolve the
// sending peer, and route it through the CPU model. netsim transfers
// packet ownership here; every path ends in ReleasePacket.
func (a *Agent) receive(pkt *netsim.Packet, via netsim.Medium) {
	router, _, err := PeekHeader(pkt.Payload)
	if err != nil {
		a.stats.Malformed++
		a.k.Node().ReleasePacket(pkt)
		return
	}
	pi, ok := a.peerByID[router]
	if !ok || a.peers[pi].link != via {
		// Not a configured session (or a spoofed arrival on the wrong
		// link): not our update.
		a.stats.Malformed++
		a.k.Node().ReleasePacket(pkt)
		return
	}
	a.stats.Received++
	a.k.Process(pkt, via, pvAux{peer: pi}, a.cfg.ProcessCost)
}

// process is the kernel's processing completion: integrate each entry,
// re-run selection for touched origins, and propagate changes.
func (a *Agent) process(pkt *netsim.Packet, _ netsim.Medium, aux pvAux) {
	if a.k.Stopped() {
		return
	}
	now := a.k.Node().Now()
	changed := false
	for c := NewCursor(pkt.Payload); c.Next(); {
		a.stats.Entries++
		o, ok := a.originIdx[c.Origin()]
		if !ok {
			continue // outside the configured origin set
		}
		if c.Withdraw() {
			if a.clearAdj(o, aux.peer) && a.reselect(o, -1) {
				changed = true
			}
			continue
		}
		if a.integrate(o, aux.peer, &c, now) && a.reselect(o, aux.peer) {
			changed = true
		}
	}
	if changed {
		a.flushIdlePeers()
	}
}

// integrate installs one advertised path into Adj-RIB-In[o][peer],
// reporting whether the stored route changed. Loop detection happens
// here: a path already containing our AS is treated as a withdrawal
// from that peer (the route is unusable, and if we previously used it,
// selection must move off it).
func (a *Agent) integrate(o, peer int, c *Cursor, now float64) bool {
	node := a.k.Node()
	n := c.PathLen()
	for i := 0; i < n; i++ {
		if c.PathAt(i) == node.ID {
			a.stats.LoopRejected++
			return a.clearAdj(o, peer)
		}
	}
	slot := &a.adjIn[o][peer]
	same := slot.has && len(slot.path) == n
	if same {
		for i := 0; i < n; i++ {
			if slot.path[i] != c.PathAt(i) {
				same = false
				break
			}
		}
	}
	slot.updated = now
	if same {
		return false // pure refresh: renew the hold timer, change nothing
	}
	slot.path = slot.path[:0]
	for i := 0; i < n; i++ {
		slot.path = append(slot.path, c.PathAt(i))
	}
	slot.has = true
	return true
}

// clearAdj removes Adj-RIB-In[o][peer], reporting whether it existed.
func (a *Agent) clearAdj(o, peer int) bool {
	slot := &a.adjIn[o][peer]
	if !slot.has {
		return false
	}
	slot.has = false
	slot.path = slot.path[:0]
	return true
}

// reselect re-runs route selection for origin o: highest LOCAL_PREF
// (customer > peer > provider), then shortest AS path, then lowest
// neighbor id — deterministic and independent of arrival order. touched
// is the peer whose adj-in slot the triggering change rewrote (so a
// content change under a stable winner still propagates), or -1 for
// removals and local origination toggles, whose effect is fully visible
// in the winner's identity. It reports whether the advertised best
// route changed, marking the origin dirty toward every peer when it
// did.
func (a *Agent) reselect(o, touched int) bool {
	prev := a.best[o]
	next := bestNone
	if a.selfIdx == o && a.localUp {
		next = bestSelf
	} else {
		var bPref uint8
		var bLen int
		for i := range a.peers {
			slot := &a.adjIn[o][i]
			if !slot.has {
				continue
			}
			pref, plen := localPref(a.peers[i].rel), len(slot.path)
			if next == bestNone || pref > bPref || (pref == bPref && (plen < bLen ||
				(plen == bLen && a.peers[i].id < a.peers[next].id))) {
				next, bPref, bLen = i, pref, plen
			}
		}
	}
	if next == prev && (prev < 0 || touched != prev) {
		// Same winner and the change was elsewhere (a losing slot, or a
		// removal that by construction wasn't the winner): the advertised
		// route is untouched.
		return false
	}
	a.best[o] = next
	a.stats.BestChanges++
	a.markDirtyAll(o)
	if a.OnBestChange != nil {
		a.OnBestChange(a.origins[o], a.bestPathFor(o))
	}
	return true
}

// sweep expires adj-in routes unrefreshed past the hold time — implicit
// withdrawals from dead or partitioned peers — and propagates any
// resulting selection changes. The kernel schedules it every
// RefreshPeriod.
func (a *Agent) sweep() {
	now := a.k.Node().Now()
	hold := a.cfg.HoldFactor * a.cfg.RefreshPeriod
	changed := false
	for o := range a.origins {
		row := a.adjIn[o]
		touched := false
		for p := range row {
			if row[p].has && now-row[p].updated > hold {
				row[p].has = false
				row[p].path = row[p].path[:0]
				a.stats.Expired++
				touched = true
			}
		}
		if touched && a.reselect(o, -1) {
			changed = true
		}
	}
	if changed {
		a.flushIdlePeers()
	}
}

