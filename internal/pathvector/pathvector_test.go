package pathvector

import (
	"testing"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
)

// buildChain wires AS0 — AS1 — ... — AS(k−1) over point-to-point links
// with AS(i+1) the customer of AS(i) — a provider chain hanging off
// AS0 — all ASes originating, and returns the network and agents.
func buildChain(t *testing.T, k int, cfg Config) (*netsim.Network, []*Agent) {
	t.Helper()
	net := netsim.NewNetwork(cfg.Seed + 4000)
	nodes := make([]*netsim.Node, k)
	for i := range nodes {
		nodes[i] = net.NewNode("as", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	}
	links := make([]*netsim.Link, k-1)
	for i := 0; i+1 < k; i++ {
		links[i] = net.Connect(nodes[i], nodes[i+1], netsim.LinkConfig{Delay: 0.01, Bandwidth: 10e6, QueueCap: 64})
	}
	origins := make([]netsim.NodeID, k)
	for i, nd := range nodes {
		origins[i] = nd.ID
	}
	agents := make([]*Agent, k)
	for i, nd := range nodes {
		c := cfg
		c.Origins = origins
		// AS(i+1) is AS(i)'s customer: downstream links face customers,
		// upstream links face providers.
		if i > 0 {
			c.Peers = append(c.Peers, PeerConfig{Link: links[i-1], Rel: RelProvider})
		}
		if i+1 < k {
			c.Peers = append(c.Peers, PeerConfig{Link: links[i], Rel: RelCustomer})
		}
		c.Seed = cfg.Seed*31 + int64(nd.ID)
		agents[i] = NewAgent(nd, c)
	}
	for i, a := range agents {
		a.Start(0.5 + 0.1*float64(i))
	}
	return net, agents
}

func defaultCfg() Config {
	return Config{
		RefreshPeriod: 30,
		Jitter:        jitter.HalfSpread{Tp: 30},
		PrepareCost:   0.002,
		ProcessCost:   0.001,
		Seed:          7,
	}
}

func TestChainConvergence(t *testing.T) {
	net, agents := buildChain(t, 6, defaultCfg())
	net.RunUntil(120)
	for i, a := range agents {
		for j, b := range agents {
			ok, plen := a.Reachable(b.Node().ID)
			if !ok {
				t.Fatalf("AS%d cannot reach AS%d", i, j)
			}
			want := i - j
			if want < 0 {
				want = -want
			}
			if plen != want {
				t.Fatalf("AS%d path length to AS%d = %d, want %d", i, j, plen, want)
			}
		}
	}
	// The best path toward the far end walks the chain.
	path := agents[0].BestPath(nil, agents[5].Node().ID)
	for h, id := range path {
		if id != agents[h+1].Node().ID {
			t.Fatalf("hop %d of AS0→AS5 path = %d, want %d", h, id, agents[h+1].Node().ID)
		}
	}
}

// TestGaoRexfordValley checks that peer-learned routes are not exported
// to peers or providers: two stubs hanging off two peered cores must
// reach each other through the peering, but a third core peered with
// both must not receive transit routes across the valley.
func TestGaoRexfordValley(t *testing.T) {
	cfg := defaultCfg()
	net := netsim.NewNetwork(99)
	lc := netsim.LinkConfig{Delay: 0.01, Bandwidth: 10e6, QueueCap: 64}
	coreA := net.NewNode("coreA", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	coreB := net.NewNode("coreB", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	coreC := net.NewNode("coreC", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	stubA := net.NewNode("stubA", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	stubB := net.NewNode("stubB", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	lAB := net.Connect(coreA, coreB, lc) // peer—peer
	lAC := net.Connect(coreA, coreC, lc) // peer—peer
	lBC := net.Connect(coreB, coreC, lc) // peer—peer
	lAs := net.Connect(coreA, stubA, lc) // provider—customer
	lBs := net.Connect(coreB, stubB, lc) // provider—customer

	origins := []netsim.NodeID{stubA.ID, stubB.ID}
	mk := func(nd *netsim.Node, peers []PeerConfig, seed int64) *Agent {
		c := cfg
		c.Origins = origins
		c.Peers = peers
		c.Seed = seed
		return NewAgent(nd, c)
	}
	agents := []*Agent{
		mk(coreA, []PeerConfig{{Link: lAB, Rel: RelPeer}, {Link: lAC, Rel: RelPeer}, {Link: lAs, Rel: RelCustomer}}, 1),
		mk(coreB, []PeerConfig{{Link: lAB, Rel: RelPeer}, {Link: lBC, Rel: RelPeer}, {Link: lBs, Rel: RelCustomer}}, 2),
		mk(coreC, []PeerConfig{{Link: lAC, Rel: RelPeer}, {Link: lBC, Rel: RelPeer}}, 3),
		mk(stubA, []PeerConfig{{Link: lAs, Rel: RelProvider}}, 4),
		mk(stubB, []PeerConfig{{Link: lBs, Rel: RelProvider}}, 5),
	}
	for i, a := range agents {
		a.Start(0.5 + 0.1*float64(i))
	}
	net.RunUntil(120)

	// The stubs reach each other via the peering (stub → provider → peer
	// provider → stub: 3 AS hops).
	sA, sB := agents[3], agents[4]
	if ok, plen := sA.Reachable(stubB.ID); !ok || plen != 3 {
		t.Fatalf("stubA → stubB reachable=%v len=%d, want true/3", ok, plen)
	}
	if ok, plen := sB.Reachable(stubA.ID); !ok || plen != 3 {
		t.Fatalf("stubB → stubA reachable=%v len=%d, want true/3", ok, plen)
	}
	// Core C hears both stubs from its peers A and B — customer routes
	// export to peers — but must never have been offered the valley path
	// (e.g. stubA via B: A would have to export a peer-learned route to
	// peer B first). Check C's best paths go straight through the owning
	// provider.
	cC := agents[2]
	pA := cC.BestPath(nil, stubA.ID)
	if len(pA) != 2 || pA[0] != coreA.ID {
		t.Fatalf("coreC best path to stubA = %v, want [coreA stubA]", pA)
	}
	pB := cC.BestPath(nil, stubB.ID)
	if len(pB) != 2 || pB[0] != coreB.ID {
		t.Fatalf("coreC best path to stubB = %v, want [coreB stubB]", pB)
	}
}

// TestLocalPrefOverridesPathLength: a customer-learned route must beat a
// shorter peer-learned route.
func TestLocalPrefOverridesPathLength(t *testing.T) {
	cfg := defaultCfg()
	net := netsim.NewNetwork(17)
	lc := netsim.LinkConfig{Delay: 0.01, Bandwidth: 10e6, QueueCap: 64}
	// origin ←customer— mid ←customer— self —peer→ origin (direct).
	self := net.NewNode("self", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	mid := net.NewNode("mid", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	origin := net.NewNode("origin", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	lSM := net.Connect(self, mid, lc)    // mid is self's customer
	lMO := net.Connect(mid, origin, lc)  // origin is mid's customer
	lSO := net.Connect(self, origin, lc) // self—origin peering

	origins := []netsim.NodeID{origin.ID}
	mk := func(nd *netsim.Node, peers []PeerConfig, seed int64) *Agent {
		c := cfg
		c.Origins = origins
		c.Peers = peers
		c.Seed = seed
		return NewAgent(nd, c)
	}
	aSelf := mk(self, []PeerConfig{{Link: lSM, Rel: RelCustomer}, {Link: lSO, Rel: RelPeer}}, 1)
	aMid := mk(mid, []PeerConfig{{Link: lSM, Rel: RelProvider}, {Link: lMO, Rel: RelCustomer}}, 2)
	aOrig := mk(origin, []PeerConfig{{Link: lMO, Rel: RelProvider}, {Link: lSO, Rel: RelPeer}}, 3)
	for i, a := range []*Agent{aSelf, aMid, aOrig} {
		a.Start(0.5 + 0.1*float64(i))
	}
	net.RunUntil(120)

	p := aSelf.BestPath(nil, origin.ID)
	if len(p) != 2 || p[0] != mid.ID {
		t.Fatalf("self's best path = %v, want the 2-hop customer route [mid origin]", p)
	}
}

// TestWithdrawPropagates: withdrawing the origin's prefix must make it
// unreachable everywhere, and re-announcing must restore it.
func TestWithdrawPropagates(t *testing.T) {
	net, agents := buildChain(t, 5, defaultCfg())
	net.RunUntil(100)
	last := agents[4]
	if ok, _ := agents[0].Reachable(last.Node().ID); !ok {
		t.Fatal("not converged before withdraw")
	}
	last.Node().Schedule(100, "withdraw", func() { last.WithdrawLocal() })
	net.RunUntil(150)
	for i := 0; i < 4; i++ {
		if ok, _ := agents[i].Reachable(last.Node().ID); ok {
			t.Fatalf("AS%d still reaches the withdrawn prefix", i)
		}
	}
	last.Node().Schedule(150, "announce", func() { last.AnnounceLocal() })
	net.RunUntil(220)
	for i := 0; i < 4; i++ {
		if ok, _ := agents[i].Reachable(last.Node().ID); !ok {
			t.Fatalf("AS%d did not relearn the re-announced prefix", i)
		}
	}
}

// TestLoopRejection: on a triangle of providers every AS must reject
// paths containing itself; convergence must still be loop-free with
// direct (1-hop) routes winning.
func TestLoopRejection(t *testing.T) {
	cfg := defaultCfg()
	net := netsim.NewNetwork(5)
	lc := netsim.LinkConfig{Delay: 0.01, Bandwidth: 10e6, QueueCap: 64}
	nodes := make([]*netsim.Node, 3)
	for i := range nodes {
		nodes[i] = net.NewNode("as", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	}
	l01 := net.Connect(nodes[0], nodes[1], lc)
	l12 := net.Connect(nodes[1], nodes[2], lc)
	l02 := net.Connect(nodes[0], nodes[2], lc)
	origins := []netsim.NodeID{nodes[0].ID, nodes[1].ID, nodes[2].ID}
	// All peers of each other: every route is peer-learned, so nothing is
	// re-exported (Gao–Rexford) — the loop check still guards the direct
	// advertisements that include the receiver.
	peersOf := [][]PeerConfig{
		{{Link: l01, Rel: RelPeer}, {Link: l02, Rel: RelPeer}},
		{{Link: l01, Rel: RelPeer}, {Link: l12, Rel: RelPeer}},
		{{Link: l02, Rel: RelPeer}, {Link: l12, Rel: RelPeer}},
	}
	agents := make([]*Agent, 3)
	for i, nd := range nodes {
		c := cfg
		c.Origins = origins
		c.Peers = peersOf[i]
		c.Seed = int64(i + 1)
		agents[i] = NewAgent(nd, c)
		agents[i].Start(0.5 + 0.1*float64(i))
	}
	net.RunUntil(100)
	for i, a := range agents {
		for j, b := range agents {
			if i == j {
				continue
			}
			ok, plen := a.Reachable(b.Node().ID)
			if !ok || plen != 1 {
				t.Fatalf("AS%d → AS%d reachable=%v len=%d, want direct", i, j, ok, plen)
			}
		}
	}
}

// TestMRAIBatches: with a large MRAI, rapid alternating withdraw and
// re-announce cycles at the origin must coalesce into far fewer flushes
// downstream than with MRAI disabled.
func TestMRAIBatches(t *testing.T) {
	run := func(mrai float64) uint64 {
		cfg := defaultCfg()
		cfg.MRAI = mrai
		net, agents := buildChain(t, 4, cfg)
		net.RunUntil(60)
		first := agents[0]
		for i := 0; i < 20; i++ {
			at := 60 + 0.3*float64(i)
			if i%2 == 0 {
				first.Node().Schedule(at, "withdraw", func() { first.WithdrawLocal() })
			} else {
				first.Node().Schedule(at, "announce", func() { first.AnnounceLocal() })
			}
		}
		net.RunUntil(90)
		var flushes uint64
		for _, a := range agents[1:] {
			flushes += a.Stats().Flushes
		}
		return flushes
	}
	unbatched := run(0)
	batched := run(5)
	if batched >= unbatched {
		t.Fatalf("MRAI=5 produced %d flushes, MRAI=0 produced %d: batching had no effect", batched, unbatched)
	}
}

// TestCrashRestartColdStart: a crashed AS loses its RIB, comes back
// empty, and relearns every prefix from the neighbors' periodic
// refreshes.
func TestCrashRestartColdStart(t *testing.T) {
	net, agents := buildChain(t, 4, defaultCfg())
	net.RunUntil(100)
	mid := agents[1]
	if ok, _ := mid.Reachable(agents[3].Node().ID); !ok {
		t.Fatal("not converged before crash")
	}
	mid.Node().Schedule(100, "crash", func() { mid.Crash() })
	mid.Node().Schedule(130, "restart", func() { mid.Restart(0.5) })
	net.RunUntil(131)
	if ok, _ := mid.Reachable(agents[3].Node().ID); ok {
		t.Fatal("RIB survived the crash")
	}
	net.RunUntil(400) // several refresh periods to relearn and re-export
	for i, a := range agents {
		for j, b := range agents {
			if i == j {
				continue
			}
			if ok, _ := a.Reachable(b.Node().ID); !ok {
				t.Fatalf("AS%d cannot reach AS%d after crash recovery", i, j)
			}
		}
	}
	if pp := mid.PendingPackets(); pp != 0 {
		t.Fatalf("pending packets after recovery: %d", pp)
	}
}

// TestHoldTimerExpiry: silencing an AS (Stop without withdraw) must age
// its prefix out of the neighbors' RIBs within the hold time.
func TestHoldTimerExpiry(t *testing.T) {
	net, agents := buildChain(t, 3, defaultCfg())
	net.RunUntil(100)
	last := agents[2]
	if ok, _ := agents[0].Reachable(last.Node().ID); !ok {
		t.Fatal("not converged before stop")
	}
	last.Node().Schedule(100, "stop", func() { last.Stop() })
	// Hold time is 4×30 s; give the sweep a full extra period to fire.
	net.RunUntil(100 + 6*30)
	for i := 0; i < 2; i++ {
		if ok, _ := agents[i].Reachable(last.Node().ID); ok {
			t.Fatalf("AS%d still reaches the silenced AS after the hold time", i)
		}
	}
	if agents[0].Stats().Expired == 0 && agents[1].Stats().Expired == 0 {
		t.Fatal("no hold-timer expirations recorded")
	}
}

// TestWireRoundTrip exercises the encoder/cursor pair, including
// withdrawals and multi-entry messages.
func TestWireRoundTrip(t *testing.T) {
	buf := AppendHeader(nil, 42)
	var err error
	buf, err = AppendAdvertise(buf, 7, 42, []netsim.NodeID{3, 9, 7})
	if err != nil {
		t.Fatal(err)
	}
	buf = AppendWithdraw(buf, 11)
	buf, err = AppendAdvertise(buf, 42, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	PatchCount(buf, 3)
	if want := WireSize([]int{4, 1}, 1); len(buf) != want {
		t.Fatalf("encoded size %d, want %d", len(buf), want)
	}
	router, count, err := PeekHeader(buf)
	if err != nil || router != 42 || count != 3 {
		t.Fatalf("PeekHeader = (%d, %d, %v)", router, count, err)
	}
	c := NewCursor(buf)
	if !c.Next() || c.Origin() != 7 || c.Withdraw() || c.PathLen() != 4 ||
		c.PathAt(0) != 42 || c.PathAt(1) != 3 || c.PathAt(3) != 7 {
		t.Fatalf("entry 0 mismatch")
	}
	if !c.Next() || c.Origin() != 11 || !c.Withdraw() || c.PathLen() != 0 {
		t.Fatalf("entry 1 mismatch")
	}
	if !c.Next() || c.Origin() != 42 || c.PathLen() != 1 || c.PathAt(0) != 42 {
		t.Fatalf("entry 2 mismatch")
	}
	if c.Next() {
		t.Fatal("cursor overran")
	}
	// Truncations must be caught by validation, never panic the cursor.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := PeekHeader(buf[:cut]); err == nil {
			t.Fatalf("PeekHeader accepted a %d-byte truncation of %d", cut, len(buf))
		}
	}
}
