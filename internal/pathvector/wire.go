// Package pathvector implements a BGP-like path-vector routing family
// over the netsim substrate and the shared protocol kernel: AS-path
// routes with loop detection, LOCAL_PREF/provider–customer (Gao–Rexford)
// export policies, per-peer MRAI batching timers driven by the jitter
// policies, and withdraw/path-exploration semantics.
//
// The family exists to replay the paper's result one layer up: the MRAI
// batching timer is itself a periodic timer, weakly coupled to its
// neighbors' timers through the updates it batches, so MRAI rounds
// across an internetwork can drift into lockstep exactly as RIP periods
// do in §4 — turning a steady trickle of updates into synchronized
// bursts ("Feasibility study on distributed simulations of BGP",
// Coudert et al., is the simulation-scale template).
//
// Modeling scale: one AS per node, and a bounded origin set — only
// designated origin ASes advertise a prefix (identified by the origin's
// node id), so RIB state is Θ(origins·degree) per AS rather than the
// Θ(N²) a full mesh of prefixes would cost at 10k ASes, mirroring how
// ext_netscale installs routes toward measured hosts only.
package pathvector

import (
	"encoding/binary"
	"errors"
	"fmt"

	"routesync/internal/netsim"
)

// Wire format constants.
const (
	magic      = 0x5056 // "PV"
	version    = 1
	headerLen  = 12
	entryFixed = 6 // origin uint32 | flags uint8 | pathLen uint8
	hopLen     = 4
	// entryWithdraw marks an entry that withdraws the origin's prefix
	// rather than advertising a path to it.
	entryWithdraw = 1 << 0
)

// MaxPathLen bounds the AS-path hops in one entry (fits the uint8
// length; internet AS paths are far shorter).
const MaxPathLen = 255

// MaxEntries bounds the entries in one update message.
const MaxEntries = 4096

// Errors returned by the decode paths.
var (
	ErrTruncated  = errors.New("pathvector: truncated message")
	ErrBadMagic   = errors.New("pathvector: bad magic")
	ErrBadVersion = errors.New("pathvector: unsupported version")
	ErrTooMany    = errors.New("pathvector: too many entries")
	ErrPathLong   = errors.New("pathvector: AS path too long")
)

// AppendHeader writes the 12-byte message header onto dst:
//
//	uint16 magic | uint8 version | uint8 flags(0) | uint32 router |
//	uint16 count | uint16 reserved
//
// count is patched afterwards by PatchCount, so a flush can append
// entries as it walks the dirty set without counting first.
func AppendHeader(dst []byte, router netsim.NodeID) []byte {
	var h [headerLen]byte
	binary.BigEndian.PutUint16(h[0:], magic)
	h[2] = version
	h[3] = 0
	binary.BigEndian.PutUint32(h[4:], uint32(router))
	binary.BigEndian.PutUint16(h[8:], 0)
	binary.BigEndian.PutUint16(h[10:], 0) // reserved
	return append(dst, h[:]...)
}

// PatchCount stores the final entry count into an encoded message.
func PatchCount(buf []byte, count int) {
	binary.BigEndian.PutUint16(buf[8:], uint16(count))
}

// AppendAdvertise appends one advertisement entry: the sender's AS
// (self) prepended to path, ending at the origin. The entry layout is
//
//	uint32 origin | uint8 flags | uint8 pathLen | pathLen × uint32 hop
func AppendAdvertise(dst []byte, origin, self netsim.NodeID, path []netsim.NodeID) ([]byte, error) {
	if 1+len(path) > MaxPathLen {
		return dst, fmt.Errorf("%w: %d", ErrPathLong, 1+len(path))
	}
	var e [entryFixed + hopLen]byte
	binary.BigEndian.PutUint32(e[0:], uint32(origin))
	e[4] = 0
	e[5] = uint8(1 + len(path))
	binary.BigEndian.PutUint32(e[6:], uint32(self))
	dst = append(dst, e[:]...)
	var hop [hopLen]byte
	for _, h := range path {
		binary.BigEndian.PutUint32(hop[:], uint32(h))
		dst = append(dst, hop[:]...)
	}
	return dst, nil
}

// AppendWithdraw appends one withdrawal entry (no path).
func AppendWithdraw(dst []byte, origin netsim.NodeID) []byte {
	var e [entryFixed]byte
	binary.BigEndian.PutUint32(e[0:], uint32(origin))
	e[4] = entryWithdraw
	e[5] = 0
	return append(dst, e[:]...)
}

// PeekHeader validates buf — magic, version, and that every entry is
// in-bounds — and returns the sending router and entry count without
// materializing anything: the agents' allocation-free receive path.
func PeekHeader(buf []byte) (router netsim.NodeID, count int, err error) {
	if len(buf) < headerLen {
		return 0, 0, ErrTruncated
	}
	if binary.BigEndian.Uint16(buf[0:]) != magic {
		return 0, 0, ErrBadMagic
	}
	if buf[2] != version {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	count = int(binary.BigEndian.Uint16(buf[8:]))
	if count > MaxEntries {
		return 0, 0, fmt.Errorf("%w: %d", ErrTooMany, count)
	}
	off := headerLen
	for i := 0; i < count; i++ {
		if off+entryFixed > len(buf) {
			return 0, 0, ErrTruncated
		}
		off += entryFixed + hopLen*int(buf[off+5])
	}
	if off > len(buf) {
		return 0, 0, ErrTruncated
	}
	router = netsim.NodeID(binary.BigEndian.Uint32(buf[4:]))
	return router, count, nil
}

// Cursor iterates a validated message's entries in place — no slices
// are materialized, so the integrate path reads paths hop-by-hop
// straight from the packet payload. Use by value:
//
//	for c := NewCursor(buf); c.Next(); { ... }
type Cursor struct {
	buf       []byte
	remaining int
	off       int // start of the current entry
	next      int // start of the following entry
}

// NewCursor positions a cursor before the first entry of a message that
// has passed PeekHeader.
func NewCursor(buf []byte) Cursor {
	return Cursor{
		buf:       buf,
		remaining: int(binary.BigEndian.Uint16(buf[8:])),
		next:      headerLen,
	}
}

// Next advances to the next entry, reporting whether one exists.
func (c *Cursor) Next() bool {
	if c.remaining == 0 {
		return false
	}
	c.remaining--
	c.off = c.next
	c.next = c.off + entryFixed + hopLen*int(c.buf[c.off+5])
	return true
}

// Origin returns the current entry's prefix (the originating AS).
func (c *Cursor) Origin() netsim.NodeID {
	return netsim.NodeID(binary.BigEndian.Uint32(c.buf[c.off:]))
}

// Withdraw reports whether the current entry withdraws the prefix.
func (c *Cursor) Withdraw() bool { return c.buf[c.off+4]&entryWithdraw != 0 }

// PathLen returns the current entry's AS-path length (0 for withdrawals).
func (c *Cursor) PathLen() int { return int(c.buf[c.off+5]) }

// PathAt returns hop i of the current entry's AS path; hop 0 is the
// sending AS, the last hop is the origin.
func (c *Cursor) PathAt(i int) netsim.NodeID {
	return netsim.NodeID(binary.BigEndian.Uint32(c.buf[c.off+entryFixed+hopLen*i:]))
}

// WireSize returns the encoded byte length of a message carrying the
// given advertisement path lengths and nWithdraw withdrawals (used by
// tests to cross-check encoders).
func WireSize(pathLens []int, nWithdraw int) int {
	n := headerLen + nWithdraw*entryFixed
	for _, pl := range pathLens {
		n += entryFixed + hopLen*pl
	}
	return n
}
