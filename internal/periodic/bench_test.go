package periodic

import (
	"fmt"
	"testing"

	"routesync/internal/jitter"
)

// BenchmarkStep compares the heap engine against the sort-based reference
// at several populations. The speedup grows with N: the heap pays
// O(k log N) per firing for cluster size k while the reference re-sorts
// all N expiries. The configuration pins the desynchronized steady state
// (Tp scaled with N, Tr far above the synchronization threshold) so k
// measures the engine, not the physics — see bench.PeriodicBenchConfig.
func BenchmarkStep(b *testing.B) {
	for _, n := range []int{20, 100, 1000} {
		for _, ref := range []bool{false, true} {
			name := fmt.Sprintf("N=%d/heap", n)
			if ref {
				name = fmt.Sprintf("N=%d/reference", n)
			}
			b.Run(name, func(b *testing.B) {
				tp := 6.05 * float64(n)
				s := New(Config{
					N:      n,
					Tc:     0.11,
					Jitter: jitter.Uniform{Tp: tp, Tr: tp / 20},
					Seed:   1,
				})
				s.ref = ref
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Step()
				}
			})
		}
	}
}
