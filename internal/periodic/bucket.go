package periodic

import (
	"fmt"
	"math"

	"routesync/internal/cluster"
)

// Engine selects the Step implementation behind a System.
type Engine int

const (
	// EngineAuto picks the bucket engine for N >= bucketEngineMinN and
	// the heap engine below it — the heap's cache-friendly constant wins
	// at small N, the bucket engine's O(k) coupling scan at large N.
	EngineAuto Engine = iota
	// EngineHeap is the indexed binary heap keyed by (expiry, id).
	EngineHeap
	// EngineBucket is the structure-of-arrays large-N engine: flat expiry
	// and day arrays, bucketed next-expiry lookup via intrusive linked
	// lists, O(k) work per cluster firing amortized over a round.
	EngineBucket
)

// String returns the engine name.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineHeap:
		return "heap"
	case EngineBucket:
		return "bucket"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// bucketEngineMinN is the population size at which EngineAuto switches
// from the heap to the bucket engine.
const bucketEngineMinN = 4096

// bucketMaxVB caps day indices so arithmetic on far-future expiries
// cannot overflow int64.
const bucketMaxVB = int64(1) << 62

// bucketState is the structure-of-arrays engine state. Time is cut into
// fixed-width "days" of w = Tp/N + Tc seconds — about one expiry per day
// in steady state — and day d maps to physical bucket d mod nb. Routers
// in one bucket form an intrusive doubly-linked list over the next/prev
// arrays, so link and unlink are O(1) with no per-router allocation. The
// width never adapts: Tp and N are fixed per System, so the steady-state
// expiry density is too.
type bucketState struct {
	w    float64 // day width in seconds
	mask int     // len(head)-1; power-of-two bucket count >= 2N
	head []int32 // per bucket: first router id, -1 when empty
	next []int32 // per router: next id in its bucket list, -1 at tail
	prev []int32 // per router: previous id, -1 at head
	vb   []int64 // per router: cached day of its pending expiry
	cur  int64   // day holding the earliest pending expiry
	min  float64 // the earliest pending expiry itself (NextExpiry cache)
	cand []int32 // scratch: the current day's candidates, sorted
}

// bvbFor maps an expiry to its day. Monotone in the expiry — float
// division then floor — which is what makes day-ordered processing agree
// exactly with the heap's (expiry, id) order: e1 < e2 implies
// day(e1) <= day(e2), and equal expiries share a day.
func (b *bucketState) bvbFor(e float64) int64 {
	q := e / b.w
	if !(q < float64(bucketMaxVB)) {
		return bucketMaxVB
	}
	return int64(q)
}

// bucketInit sizes the engine for cfg.N routers. Bucket count 2N at day
// width Tp/N + Tc covers more than a full period plus a saturated busy
// window, so pending days can never alias within one calendar cycle.
func (s *System) bucketInit() {
	b := &s.bucket
	nb := 1
	for nb < 2*s.cfg.N {
		nb <<= 1
	}
	b.mask = nb - 1
	b.head = make([]int32, nb)
	b.next = make([]int32, s.cfg.N)
	b.prev = make([]int32, s.cfg.N)
	b.vb = make([]int64, s.cfg.N)
	b.cand = make([]int32, 0, s.cfg.N)
	b.w = s.cfg.Jitter.Mean()/float64(s.cfg.N) + s.cfg.Tc
}

// bucketRebuild relinks every router from the expiry array; called
// whenever the expiry set changes wholesale.
func (s *System) bucketRebuild() {
	b := &s.bucket
	for i := range b.head {
		b.head[i] = -1
	}
	b.min = math.Inf(1)
	for i := 0; i < s.cfg.N; i++ {
		s.bucketLink(int32(i))
		if s.expiry[i] < b.min {
			b.min = s.expiry[i]
		}
	}
	b.cur = b.bvbFor(b.min)
}

// bucketLink inserts a router at the head of its day's bucket list.
func (s *System) bucketLink(id int32) {
	b := &s.bucket
	vb := b.bvbFor(s.expiry[id])
	b.vb[id] = vb
	bi := int(vb) & b.mask
	h := b.head[bi]
	b.next[id] = h
	b.prev[id] = -1
	if h >= 0 {
		b.prev[h] = id
	}
	b.head[bi] = id
}

// bucketUnlink removes a router from its bucket list.
func (s *System) bucketUnlink(id int32) {
	b := &s.bucket
	n, p := b.next[id], b.prev[id]
	if p >= 0 {
		b.next[p] = n
	} else {
		b.head[int(b.vb[id])&b.mask] = n
	}
	if n >= 0 {
		b.prev[n] = p
	}
}

// bucketGather fills b.cand with the routers whose expiry falls on the
// given day, sorted by (expiry, id) — the model's firing order.
func (s *System) bucketGather(day int64) {
	b := &s.bucket
	b.cand = b.cand[:0]
	for id := b.head[int(day)&b.mask]; id >= 0; id = b.next[id] {
		if b.vb[id] == day {
			b.cand = append(b.cand, id)
		}
	}
	if len(b.cand) > 1 {
		s.sortCand(0, len(b.cand)-1)
	}
}

// sortCand is an in-place quicksort (median-of-three, insertion sort for
// short runs, recursion on the smaller half) over b.cand keyed by
// (expiry, id). sort.Slice would allocate its closure on every Step;
// this keeps the hot path at zero.
func (s *System) sortCand(lo, hi int) {
	c := s.bucket.cand
	for hi-lo > 11 {
		mid := int(uint(lo+hi) >> 1)
		if s.heapLess(c[mid], c[lo]) {
			c[mid], c[lo] = c[lo], c[mid]
		}
		if s.heapLess(c[hi], c[mid]) {
			c[hi], c[mid] = c[mid], c[hi]
			if s.heapLess(c[mid], c[lo]) {
				c[mid], c[lo] = c[lo], c[mid]
			}
		}
		pivot := c[mid]
		i, j := lo, hi
		for i <= j {
			for s.heapLess(c[i], pivot) {
				i++
			}
			for s.heapLess(pivot, c[j]) {
				j--
			}
			if i <= j {
				c[i], c[j] = c[j], c[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			s.sortCand(lo, j)
			lo = i
		} else {
			s.sortCand(i, hi)
			hi = j
		}
	}
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && s.heapLess(c[j], c[j-1]); j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
}

// stepBucket is the bucket engine's Step. It walks days forward from the
// cached minimum's day, gathering and sorting each day's candidates, and
// runs the identical admission loop — the same floating-point window
// expression, the same (expiry, id) order, the same RNG call order — as
// the heap engine, so the two replay bit-identically. Per round the day
// cursor advances about one period, i.e. about N days of O(1) checks for
// N member firings: O(k) amortized per cluster against the heap's
// O(k log N).
func (s *System) stepBucket() Event {
	b := &s.bucket
	day := b.cur
	s.bucketGather(day)
	ci := 0
	for len(b.cand) == 0 {
		day++
		s.bucketGather(day)
	}

	id := b.cand[ci]
	ci++
	s.bucketUnlink(id)
	t := s.expiry[id]
	s.members[0] = cluster.Member{ID: int(id), Expiry: t}
	k := 1
	frontier := math.Inf(1)
	for k < s.cfg.N {
		if ci == len(b.cand) {
			day++
			s.bucketGather(day)
			ci = 0
			continue
		}
		e := s.expiry[b.cand[ci]]
		if e < t+float64(k)*s.cfg.Tc || e == t {
			id = b.cand[ci]
			ci++
			s.bucketUnlink(id)
			s.members[k] = cluster.Member{ID: int(id), Expiry: e}
			k++
			continue
		}
		frontier = e
		break
	}

	end := t + float64(k)*s.cfg.Tc
	s.now = end
	ev := Event{
		Start:    t,
		End:      end,
		Members:  s.evMembers[:k],
		Expiries: s.evExpiries[:k],
	}
	rearmMin := math.Inf(1)
	for i := 0; i < k; i++ {
		m := s.members[i]
		ev.Members[i] = m.ID
		ev.Expiries[i] = m.Expiry
		delay := s.cfg.Jitter.Delay(s.r, m.ID)
		var next float64
		switch s.cfg.Reset {
		case ResetOnExpiry:
			next = m.Expiry + delay
			if next < end {
				next = end
			}
		default: // ResetAfterProcessing, the paper's rule
			next = end + delay
		}
		s.expiry[m.ID] = next
		s.bucketLink(int32(m.ID))
		if next < rearmMin {
			rearmMin = next
		}
	}
	ev.Next = frontier
	if rearmMin < ev.Next {
		ev.Next = rearmMin
	}
	b.min = ev.Next
	b.cur = b.bvbFor(ev.Next)
	s.steps++
	if s.cfg.Observer != nil {
		s.cfg.Observer.RoundCompleted(s.now, k)
	}
	for _, fn := range s.onEvent {
		fn(ev)
	}
	return ev
}
