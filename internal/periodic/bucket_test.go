package periodic

import (
	"fmt"
	"testing"

	"routesync/internal/jitter"
)

// TestBucketMatchesHeap differential-tests the structure-of-arrays bucket
// engine against the heap engine: for a grid of seeds, reset rules and
// start states — with a TriggerUpdate injected mid-run — the two engines
// must produce identical Event sequences, bit for bit. N is forced well
// below the EngineAuto threshold so the test covers the engine override
// too; ties are exercised by the synchronized start (every expiry equal)
// and the trigger (every expiry collapsed to now).
func TestBucketMatchesHeap(t *testing.T) {
	const (
		n      = 25
		steps  = 400
		trigAt = 137
	)
	for seed := int64(1); seed <= 12; seed++ {
		for _, reset := range []TimerReset{ResetAfterProcessing, ResetOnExpiry} {
			for _, start := range []StartState{StartUnsynchronized, StartSynchronized} {
				name := fmt.Sprintf("seed=%d/%v/%v", seed, reset, start)
				t.Run(name, func(t *testing.T) {
					cfg := Config{
						N:      n,
						Tc:     0.11,
						Jitter: jitter.Uniform{Tp: 121, Tr: 0.5},
						Reset:  reset,
						Start:  start,
						Seed:   seed,
					}
					cfg.Engine = EngineHeap
					heap := New(cfg)
					cfg.Engine = EngineBucket
					bucket := New(cfg)
					for i := 0; i < steps; i++ {
						if i == trigAt {
							heap.TriggerUpdate()
							bucket.TriggerUpdate()
						}
						he, be := heap.Step(), bucket.Step()
						if !eventsEqual(he, be) {
							t.Fatalf("step %d diverged:\nheap:   %+v\nbucket: %+v", i, he, be)
						}
						if hn, bn := heap.NextExpiry(), bucket.NextExpiry(); hn != bn {
							t.Fatalf("step %d NextExpiry diverged: heap %v bucket %v", i, hn, bn)
						}
					}
					if heap.Now() != bucket.Now() {
						t.Fatalf("Now diverged: heap %v bucket %v", heap.Now(), bucket.Now())
					}
					hex, bex := heap.Expiries(), bucket.Expiries()
					for id := range hex {
						if hex[id] != bex[id] {
							t.Fatalf("router %d final expiry diverged: heap %v bucket %v",
								id, hex[id], bex[id])
						}
					}
					if hl, bl := heap.LargestPending(), bucket.LargestPending(); hl != bl {
						t.Fatalf("LargestPending diverged: heap %d bucket %d", hl, bl)
					}
				})
			}
		}
	}
}

// TestBucketMatchesHeapLargeN replays the two engines at a population
// above the EngineAuto threshold — the scale the bucket engine exists
// for — including the saturated synchronized start where a single
// cluster holds every router and the candidate sort sees N-way ties.
func TestBucketMatchesHeapLargeN(t *testing.T) {
	n := 6000
	steps := 3 * n // a few full rounds
	if testing.Short() {
		n, steps = 4500, 4500
	}
	for _, start := range []StartState{StartUnsynchronized, StartSynchronized} {
		t.Run(start.String(), func(t *testing.T) {
			tp := 6.05 * float64(n)
			cfg := Config{
				N:      n,
				Tc:     0.11,
				Jitter: jitter.Uniform{Tp: tp, Tr: tp / 20},
				Start:  start,
				Seed:   7,
			}
			cfg.Engine = EngineHeap
			heap := New(cfg)
			cfg.Engine = EngineAuto // must resolve to bucket at this N
			bucket := New(cfg)
			if !bucket.useBucket {
				t.Fatalf("EngineAuto did not pick the bucket engine at N=%d", n)
			}
			for i := 0; i < steps; i++ {
				he, be := heap.Step(), bucket.Step()
				if !eventsEqual(he, be) {
					t.Fatalf("step %d diverged:\nheap:   %+v\nbucket: %+v", i, he, be)
				}
			}
		})
	}
}

// TestBucketSetExpiries checks the bucket index is rebuilt correctly when
// the expiry set is overridden wholesale, including exact ties.
func TestBucketSetExpiries(t *testing.T) {
	cfg := Paper(10, 0.5, 42)
	cfg.Engine = EngineHeap
	heap := New(cfg)
	cfg.Engine = EngineBucket
	bucket := New(cfg)
	phases := []float64{5, 1, 5, 3, 1, 8, 1, 3, 5, 2}
	heap.SetExpiries(phases)
	bucket.SetExpiries(phases)
	for i := 0; i < 50; i++ {
		he, be := heap.Step(), bucket.Step()
		if !eventsEqual(he, be) {
			t.Fatalf("step %d diverged:\nheap:   %+v\nbucket: %+v", i, he, be)
		}
	}
}

// TestEngineString pins the engine names used in docs and benchmarks.
func TestEngineString(t *testing.T) {
	cases := map[Engine]string{EngineAuto: "auto", EngineHeap: "heap", EngineBucket: "bucket"}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("Engine(%d).String() = %q, want %q", int(e), e.String(), want)
		}
	}
}
