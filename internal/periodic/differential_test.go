package periodic

import (
	"fmt"
	"testing"

	"routesync/internal/jitter"
)

// TestHeapMatchesReference differential-tests the heap engine against the
// sort-based reference (stepReference via s.ref): for a grid of seeds,
// reset rules and start states — with a TriggerUpdate injected mid-run —
// the two engines must produce identical Event sequences, bit for bit.
func TestHeapMatchesReference(t *testing.T) {
	const (
		n      = 25
		steps  = 400
		trigAt = 137 // step index at which both runs inject TriggerUpdate
	)
	for seed := int64(1); seed <= 12; seed++ {
		for _, reset := range []TimerReset{ResetAfterProcessing, ResetOnExpiry} {
			for _, start := range []StartState{StartUnsynchronized, StartSynchronized} {
				name := fmt.Sprintf("seed=%d/%v/%v", seed, reset, start)
				t.Run(name, func(t *testing.T) {
					cfg := Config{
						N:      n,
						Tc:     0.11,
						Jitter: jitter.Uniform{Tp: 121, Tr: 0.5},
						Reset:  reset,
						Start:  start,
						Seed:   seed,
					}
					heap := New(cfg)
					ref := New(cfg)
					ref.ref = true
					for i := 0; i < steps; i++ {
						if i == trigAt {
							heap.TriggerUpdate()
							ref.TriggerUpdate()
						}
						he, re := heap.Step(), ref.Step()
						if !eventsEqual(he, re) {
							t.Fatalf("step %d diverged:\nheap: %+v\nref:  %+v", i, he, re)
						}
					}
					if heap.Now() != ref.Now() {
						t.Fatalf("Now diverged: heap %v ref %v", heap.Now(), ref.Now())
					}
					hex, rex := heap.Expiries(), ref.Expiries()
					for id := range hex {
						if hex[id] != rex[id] {
							t.Fatalf("router %d final expiry diverged: heap %v ref %v",
								id, hex[id], rex[id])
						}
					}
					if hl, rl := heap.LargestPending(), ref.LargestPending(); hl != rl {
						t.Fatalf("LargestPending diverged: heap %d ref %d", hl, rl)
					}
				})
			}
		}
	}
}

// TestHeapMatchesReferenceSetExpiries checks the heap is rebuilt correctly
// when the expiry set is overridden wholesale, including exact ties.
func TestHeapMatchesReferenceSetExpiries(t *testing.T) {
	cfg := Paper(10, 0.5, 42)
	heap := New(cfg)
	ref := New(cfg)
	ref.ref = true
	// Bespoke phases with duplicates to exercise the (expiry, id) tie-break.
	phases := []float64{5, 1, 5, 3, 1, 8, 1, 3, 5, 2}
	heap.SetExpiries(phases)
	ref.SetExpiries(phases)
	for i := 0; i < 50; i++ {
		he, re := heap.Step(), ref.Step()
		if !eventsEqual(he, re) {
			t.Fatalf("step %d diverged:\nheap: %+v\nref:  %+v", i, he, re)
		}
	}
}

func eventsEqual(a, b Event) bool {
	if a.Start != b.Start || a.End != b.End || a.Next != b.Next || len(a.Members) != len(b.Members) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] || a.Expiries[i] != b.Expiries[i] {
			return false
		}
	}
	return true
}
