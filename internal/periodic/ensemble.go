package periodic

import (
	"math"

	"routesync/internal/parallel"
	"routesync/internal/stats"
)

// EnsembleResult aggregates a replicated simulation study: the paper's
// figures average 20 independent runs; this utility runs them in
// parallel and reports distributional summaries rather than a bare mean.
type EnsembleResult struct {
	// Reached counts replications that met the condition before the
	// horizon.
	Reached int
	// Replications is the total runs.
	Replications int
	// Times holds the per-replication condition times (seconds) for the
	// replications that reached it, in seed order.
	Times []float64
	// Mean/Median/P10/P90 summarize Times (NaN when nothing reached).
	Mean   float64
	Median float64
	P10    float64
	P90    float64
}

func summarize(times []float64, total int) EnsembleResult {
	res := EnsembleResult{
		Reached:      len(times),
		Replications: total,
		Times:        times,
		Mean:         math.NaN(),
		Median:       math.NaN(),
		P10:          math.NaN(),
		P90:          math.NaN(),
	}
	if len(times) == 0 {
		return res
	}
	res.Mean = stats.Mean(times)
	res.Median = stats.Median(times)
	res.P10 = stats.Quantile(times, 0.1)
	res.P90 = stats.Quantile(times, 0.9)
	return res
}

// EnsembleJobs bounds the worker count used by the ensemble helpers;
// zero or negative means one worker per CPU. Results are identical for
// every value (see internal/parallel); the knob exists so tests and
// embedding tools can pin or serialize the pool.
var EnsembleJobs = 0

// runEnsemble executes fn for seeds base..base+replications−1 on the
// shared job runner, collecting the finite results in seed order.
func runEnsemble(replications int, base int64, fn func(seed int64) float64) []float64 {
	if replications < 1 {
		panic("periodic: ensemble needs at least one replication")
	}
	out := parallel.Run(replications, EnsembleJobs, func(i int) float64 {
		return fn(base + int64(i))
	})
	var times []float64
	for _, t := range out {
		if !math.IsInf(t, 1) {
			times = append(times, t)
		}
	}
	return times
}

// EnsembleSync runs `replications` independent simulations of cfg (seeds
// cfg.Seed, cfg.Seed+1, ...) from an unsynchronized start and summarizes
// the time to full synchronization.
func EnsembleSync(cfg Config, replications int, horizon float64) EnsembleResult {
	times := runEnsemble(replications, cfg.Seed, func(seed int64) float64 {
		c := cfg
		c.Seed = seed
		c.Start = StartUnsynchronized
		s := New(c)
		r := s.RunUntilSynchronized(horizon)
		if !r.Reached {
			return math.Inf(1)
		}
		return r.Time
	})
	return summarize(times, replications)
}

// EnsembleBreak runs `replications` simulations from a synchronized
// start and summarizes the time until the largest pending cluster is at
// or below threshold.
func EnsembleBreak(cfg Config, threshold, replications int, horizon float64) EnsembleResult {
	times := runEnsemble(replications, cfg.Seed, func(seed int64) float64 {
		c := cfg
		c.Seed = seed
		c.Start = StartSynchronized
		s := New(c)
		r := s.RunUntilBroken(threshold, horizon)
		if !r.Reached {
			return math.Inf(1)
		}
		return r.Time
	})
	return summarize(times, replications)
}
