package periodic

import (
	"math"
	"testing"

	"routesync/internal/jitter"
)

func TestEnsembleSyncSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated runs")
	}
	cfg := Paper(20, 0.1, 1)
	res := EnsembleSync(cfg, 8, 2e6)
	if res.Replications != 8 {
		t.Fatalf("replications = %d", res.Replications)
	}
	if res.Reached < 7 {
		t.Fatalf("only %d/8 synchronized at Tr=0.1 within 2e6s", res.Reached)
	}
	if math.IsNaN(res.Mean) || res.Mean <= 0 {
		t.Fatalf("mean = %v", res.Mean)
	}
	if !(res.P10 <= res.Median && res.Median <= res.P90) {
		t.Fatalf("quantiles disordered: %v %v %v", res.P10, res.Median, res.P90)
	}
	if res.Mean > res.P90*2 {
		t.Fatalf("mean %v implausibly above P90 %v", res.Mean, res.P90)
	}
}

func TestEnsembleDeterministicAcrossParallelism(t *testing.T) {
	// The parallel scheduler must not change results: each replication
	// is seeded independently, so two invocations agree exactly.
	cfg := Paper(10, 0.1, 5)
	a := EnsembleSync(cfg, 4, 5e5)
	b := EnsembleSync(cfg, 4, 5e5)
	if a.Reached != b.Reached || len(a.Times) != len(b.Times) {
		t.Fatalf("ensembles differ: %+v vs %+v", a, b)
	}
	// Times are collected in seed order, so they match elementwise.
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatalf("time %d differs: %v vs %v", i, a.Times[i], b.Times[i])
		}
	}
}

func TestEnsembleSyncByteIdenticalAcrossWorkerCounts(t *testing.T) {
	// Same config and seed must give elementwise-identical times whether
	// the pool runs serial or wide: replication i is seeded by index, so
	// worker scheduling cannot leak into the results.
	defer func() { EnsembleJobs = 0 }()
	cfg := Paper(10, 0.1, 5)
	EnsembleJobs = 1
	serial := EnsembleSync(cfg, 4, 5e5)
	EnsembleJobs = 4
	wide := EnsembleSync(cfg, 4, 5e5)
	if serial.Reached != wide.Reached || len(serial.Times) != len(wide.Times) {
		t.Fatalf("jobs=1 vs jobs=4 differ: %+v vs %+v", serial, wide)
	}
	for i := range serial.Times {
		if serial.Times[i] != wide.Times[i] {
			t.Fatalf("time %d: jobs=1 %v, jobs=4 %v", i, serial.Times[i], wide.Times[i])
		}
	}
	same := func(a, b float64) bool { return a == b || (math.IsNaN(a) && math.IsNaN(b)) }
	if !same(serial.Mean, wide.Mean) || !same(serial.Median, wide.Median) {
		t.Fatalf("summaries differ: %+v vs %+v", serial, wide)
	}
}

func TestEnsembleBreakHighJitter(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated runs")
	}
	cfg := Config{N: 20, Tc: 0.11, Jitter: jitter.Uniform{Tp: 121, Tr: 1.1}, Seed: 3}
	res := EnsembleBreak(cfg, 2, 6, 1e6)
	if res.Reached != 6 {
		t.Fatalf("only %d/6 broke up at Tr=10·Tc", res.Reached)
	}
	// 10·Tc jitter breaks synchronization within a few hundred rounds.
	if res.P90 > 2e5 {
		t.Fatalf("P90 break time = %v s, want < 2e5", res.P90)
	}
}

func TestEnsembleNoneReached(t *testing.T) {
	// Tr = Tp/2 never synchronizes: the summary degrades gracefully.
	cfg := Config{N: 20, Tc: 0.11, Jitter: jitter.Uniform{Tp: 121, Tr: 60}, Seed: 9}
	res := EnsembleSync(cfg, 3, 5e4)
	if res.Reached != 0 {
		t.Fatalf("reached = %d", res.Reached)
	}
	if !math.IsNaN(res.Mean) || !math.IsNaN(res.Median) {
		t.Fatalf("summary of empty ensemble: %+v", res)
	}
}

func TestEnsemblePanicsOnZeroReplications(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero replications did not panic")
		}
	}()
	EnsembleSync(Paper(5, 0.1, 1), 0, 1e4)
}
