package periodic_test

import (
	"fmt"

	"routesync/internal/periodic"
)

// ExampleSystem_RunUntilSynchronized runs the paper's Figure 4 scenario:
// twenty routers with 121-second timers, 0.11 s of processing per
// message, and only 0.1 s of incidental randomness, starting with
// uniformly random phases.
func ExampleSystem_RunUntilSynchronized() {
	s := periodic.New(periodic.Paper(20, 0.1, 1))
	res := s.RunUntilSynchronized(1e6)
	fmt.Printf("synchronized=%v after %.0f rounds\n", res.Reached, res.Rounds)
	// Output:
	// synchronized=true after 348 rounds
}

// ExampleSystem_OrderParameter shows the Kuramoto coherence jumping from
// the random-phase floor to 1 as the system synchronizes.
func ExampleSystem_OrderParameter() {
	s := periodic.New(periodic.Paper(20, 0.1, 1))
	before := s.OrderParameter()
	s.RunUntilSynchronized(1e6)
	after := s.OrderParameter()
	fmt.Printf("R before %.1f, after %.1f\n", before, after)
	// Output:
	// R before 0.1, after 1.0
}
