package periodic

import (
	"math"
	"sort"

	"routesync/internal/cluster"
)

// OrderParameter returns the Kuramoto phase-coherence of the pending
// timer expirations: R = |1/N · Σ exp(2πi·φ_k)| with φ_k the expiry time
// modulo the round window. R is 1 when every timer is in phase and near
// 1/√N for uniformly random phases. It is a continuous companion to the
// discrete largest-cluster statistic — useful for watching the approach
// to the phase transition rather than just its endpoints.
func (s *System) OrderParameter() float64 {
	window := s.RoundWindow()
	var re, im float64
	for _, e := range s.expiry {
		phase := 2 * math.Pi * math.Mod(e, window) / window
		re += math.Cos(phase)
		im += math.Sin(phase)
	}
	n := float64(s.cfg.N)
	return math.Hypot(re, im) / n
}

// ClusterSizes returns the sorted (descending) sizes of the clusters in
// the current pending-timer partition.
func (s *System) ClusterSizes() []int {
	ms := s.analysis
	for i := range ms {
		ms[i] = cluster.Member{ID: i, Expiry: s.expiry[i]}
	}
	cluster.SortMembers(ms)
	var sizes []int
	for len(ms) > 0 {
		c := cluster.GrowSorted(ms, s.cfg.Tc)
		sizes = append(sizes, c.Size())
		ms = ms[c.Size():]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// PhaseEntropy returns the normalized Shannon entropy of the pending
// phases over `bins` equal offset bins: 1 for perfectly uniform phases,
// 0 when every timer shares one bin. Another lens on the same
// transition; tests use it to confirm that synchronization collapses the
// phase distribution.
func (s *System) PhaseEntropy(bins int) float64 {
	if bins < 2 {
		panic("periodic: PhaseEntropy needs at least 2 bins")
	}
	window := s.RoundWindow()
	counts := make([]int, bins)
	for _, e := range s.expiry {
		b := int(math.Mod(e, window) / window * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	var h float64
	n := float64(s.cfg.N)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log(p)
	}
	max := math.Log(math.Min(n, float64(bins)))
	if max == 0 {
		return 0
	}
	return h / max
}

// CoherenceTrace runs the system to the horizon sampling the order
// parameter every sampleEvery seconds of simulated time. It returns
// parallel times and R values.
func (s *System) CoherenceTrace(horizon, sampleEvery float64) (times, r []float64) {
	if sampleEvery <= 0 {
		panic("periodic: CoherenceTrace needs a positive sampling interval")
	}
	next := sampleEvery
	pending := s.NextExpiry()
	for pending <= horizon {
		pending = s.Step().Next
		for s.now >= next {
			times = append(times, next)
			r = append(r, s.OrderParameter())
			next += sampleEvery
		}
	}
	return times, r
}
