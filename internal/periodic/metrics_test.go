package periodic

import (
	"math"
	"testing"

	"routesync/internal/jitter"
)

func TestOrderParameterSynchronized(t *testing.T) {
	cfg := Paper(20, 0.1, 1)
	cfg.Start = StartSynchronized
	s := New(cfg)
	if r := s.OrderParameter(); r < 0.9999 {
		t.Fatalf("synchronized order parameter = %v, want ~1", r)
	}
}

func TestOrderParameterUnsynchronized(t *testing.T) {
	// Uniform random phases: R concentrates near 1/sqrt(N); assert well
	// below the synchronized value across seeds.
	var worst float64
	for seed := int64(1); seed <= 10; seed++ {
		s := New(Paper(20, 0.1, seed))
		if r := s.OrderParameter(); r > worst {
			worst = r
		}
	}
	if worst > 0.6 {
		t.Fatalf("unsynchronized order parameter reached %v, want < 0.6", worst)
	}
}

func TestOrderParameterRisesThroughSynchronization(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	s := New(Paper(20, 0.1, 1))
	start := s.OrderParameter()
	res := s.RunUntilSynchronized(5e5)
	if !res.Reached {
		t.Skip("seed did not synchronize in horizon")
	}
	end := s.OrderParameter()
	if end < 0.95 {
		t.Fatalf("order parameter after synchronization = %v, want ~1", end)
	}
	if end <= start {
		t.Fatalf("order parameter did not rise: %v -> %v", start, end)
	}
}

func TestClusterSizesPartition(t *testing.T) {
	s := New(Paper(5, 0.1, 2))
	s.SetExpiries([]float64{10, 10.05, 10.15, 50, 80})
	sizes := s.ClusterSizes()
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 1 || sizes[2] != 1 {
		t.Fatalf("sizes = %v, want [3 1 1]", sizes)
	}
	total := 0
	for _, v := range sizes {
		total += v
	}
	if total != 5 {
		t.Fatalf("sizes don't cover all routers: %v", sizes)
	}
}

func TestPhaseEntropyExtremes(t *testing.T) {
	sync := New(Config{N: 20, Tc: 0.11, Jitter: jitter.Uniform{Tp: 121, Tr: 0.1}, Start: StartSynchronized, Seed: 1})
	if h := sync.PhaseEntropy(32); h > 0.01 {
		t.Fatalf("synchronized entropy = %v, want ~0", h)
	}
	unsync := New(Paper(20, 0.1, 3))
	if h := unsync.PhaseEntropy(32); h < 0.5 {
		t.Fatalf("unsynchronized entropy = %v, want high", h)
	}
}

func TestPhaseEntropyPanics(t *testing.T) {
	s := New(Paper(5, 0.1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("PhaseEntropy(1) did not panic")
		}
	}()
	s.PhaseEntropy(1)
}

func TestCoherenceTrace(t *testing.T) {
	s := New(Paper(20, 0.1, 1))
	times, r := s.CoherenceTrace(12111, 1211.1)
	if len(times) != len(r) || len(times) < 8 {
		t.Fatalf("trace lengths %d/%d", len(times), len(r))
	}
	for i, v := range r {
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("R[%d] = %v out of [0,1]", i, v)
		}
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatal("times not increasing")
		}
	}
}

func TestCoherenceTracePanics(t *testing.T) {
	s := New(Paper(5, 0.1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("zero sampling interval did not panic")
		}
	}()
	s.CoherenceTrace(100, 0)
}

func TestLargestPendingMatchesClusterSizes(t *testing.T) {
	s := New(Paper(20, 0.3, 9))
	for i := 0; i < 200; i++ {
		s.Step()
		sizes := s.ClusterSizes()
		if s.LargestPending() != sizes[0] {
			t.Fatalf("LargestPending=%d, ClusterSizes[0]=%d", s.LargestPending(), sizes[0])
		}
	}
}

func TestOrderParameterBounds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		s := New(Paper(10, 1.0, seed))
		for i := 0; i < 50; i++ {
			s.Step()
			r := s.OrderParameter()
			if r < -1e-12 || r > 1+1e-12 || math.IsNaN(r) {
				t.Fatalf("R = %v out of bounds", r)
			}
		}
	}
}
