package periodic

import (
	"testing"

	"routesync/internal/jitter"
)

type roundCounter struct {
	rounds  int
	lastNow float64
	maxSize int
}

func (c *roundCounter) RoundCompleted(now float64, size int) {
	c.rounds++
	c.lastNow = now
	if size > c.maxSize {
		c.maxSize = size
	}
}

func observedConfig(n int) Config {
	tp := 6.05 * float64(n)
	return Config{
		N:      n,
		Tc:     0.11,
		Jitter: jitter.Uniform{Tp: tp, Tr: tp / 20},
		Seed:   1,
	}
}

func TestObserverRoundsMatchSteps(t *testing.T) {
	cfg := observedConfig(20)
	obs := &roundCounter{}
	cfg.Observer = obs
	sys := New(cfg)
	const steps = 500
	for i := 0; i < steps; i++ {
		sys.Step()
	}
	if obs.rounds != steps {
		t.Fatalf("observer saw %d rounds over %d steps", obs.rounds, steps)
	}
	if obs.lastNow != sys.Now() {
		t.Fatalf("observer lastNow = %v, system now = %v", obs.lastNow, sys.Now())
	}
	if obs.maxSize < 1 || obs.maxSize > 20 {
		t.Fatalf("cluster size out of range: %d", obs.maxSize)
	}
}

func TestSetObserverEquivalentToConfig(t *testing.T) {
	obs := &roundCounter{}
	sys := New(observedConfig(20))
	sys.SetObserver(obs)
	sys.Step()
	if obs.rounds != 1 {
		t.Fatalf("SetObserver-installed observer saw %d rounds, want 1", obs.rounds)
	}
	sys.SetObserver(nil)
	sys.Step()
	if obs.rounds != 1 {
		t.Fatal("removed observer still notified")
	}
}

// TestObserverDoesNotPerturbTrajectory: observation must be pure — the
// observed and unobserved systems replay identical trajectories.
func TestObserverDoesNotPerturbTrajectory(t *testing.T) {
	plain := New(observedConfig(20))
	watched := New(observedConfig(20))
	watched.SetObserver(&roundCounter{})
	for i := 0; i < 1000; i++ {
		plain.Step()
		watched.Step()
		if plain.Now() != watched.Now() {
			t.Fatalf("trajectories diverged at step %d: %v vs %v", i, plain.Now(), watched.Now())
		}
	}
}

// TestStepObserverAllocParity is the alloc guard for the observer hook:
// a scalar-counting observer must add zero allocations on top of the
// engine's own steady-state cost, and the nil-observer path must match
// the pre-hook baseline exactly.
func TestStepObserverAllocParity(t *testing.T) {
	plain := New(observedConfig(100))
	for i := 0; i < 200; i++ { // settle into steady state
		plain.Step()
	}
	base := testing.AllocsPerRun(2000, func() { plain.Step() })

	watched := New(observedConfig(100))
	watched.SetObserver(&roundCounter{})
	for i := 0; i < 200; i++ {
		watched.Step()
	}
	observed := testing.AllocsPerRun(2000, func() { watched.Step() })

	if observed != base {
		t.Fatalf("observer changed Step allocs: %v → %v allocs/op", base, observed)
	}
}
