// Package periodic implements the paper's Periodic Messages model (§3) and
// its simulation semantics (§4): N routers, each with a routing timer drawn
// from a jitter policy (U[Tp−Tr, Tp+Tr] in the paper), a per-message
// processing cost Tc, and the weak coupling that arises because a router
// resets its timer only after it has finished sending its own routing
// message and processing any incoming ones.
//
// The simulation follows the paper's simplifying assumptions: routing
// message transmission time is zero and every router learns of a timer
// expiration immediately, so when the earliest pending timer fires at time
// t, the set of routers whose timers fire inside the growing busy window
// [t, t+k·Tc) forms a cluster of size k; all members finish processing at
// t+k·Tc and reset their timers simultaneously. Those shared resets are
// the synchronization mechanism the paper studies.
package periodic

import (
	"fmt"
	"math"

	"routesync/internal/cluster"
	"routesync/internal/jitter"
	"routesync/internal/rng"
)

// TimerReset selects when a router's timer is re-armed.
type TimerReset int

const (
	// ResetAfterProcessing is the paper's model (§3 step 3): the timer is
	// set only after the router finishes its outgoing message and all
	// incoming ones, so processing delays shift the next expiration. This
	// is the coupling that lets clusters form and drift.
	ResetAfterProcessing TimerReset = iota
	// ResetOnExpiry is the alternative suggested in RFC 1058 and §6: the
	// next expiration is scheduled from the previous expiration,
	// unaffected by processing time. Routers are then uncoupled — they
	// neither synchronize nor, once synchronized, desynchronize.
	ResetOnExpiry
)

// String returns the reset mode name.
func (t TimerReset) String() string {
	switch t {
	case ResetAfterProcessing:
		return "reset-after-processing"
	case ResetOnExpiry:
		return "reset-on-expiry"
	default:
		return fmt.Sprintf("TimerReset(%d)", int(t))
	}
}

// StartState selects the initial phase of the routers.
type StartState int

const (
	// StartUnsynchronized draws each router's first expiration uniformly
	// from [0, Tp] (paper §4: "the transit time for the first routing
	// message is chosen from the uniform distribution on [0, Tp]").
	StartUnsynchronized StartState = iota
	// StartSynchronized fires every router's first timer at time 0 — the
	// state a wave of triggered updates or a simultaneous restart leaves
	// the network in (paper Figs 8, 11).
	StartSynchronized
)

// String returns the start-state name.
func (s StartState) String() string {
	switch s {
	case StartUnsynchronized:
		return "unsynchronized"
	case StartSynchronized:
		return "synchronized"
	default:
		return fmt.Sprintf("StartState(%d)", int(s))
	}
}

// Config parameterizes a System.
type Config struct {
	// N is the number of routers (paper default 20).
	N int
	// Tc is the seconds of computation needed to process one incoming or
	// outgoing routing message (paper default 0.11 s).
	Tc float64
	// Jitter yields successive timer intervals (paper default
	// U[Tp−Tr, Tp+Tr] with Tp = 121 s, Tr = 0.1 s).
	Jitter jitter.Policy
	// Reset selects the timer re-arm rule; the zero value is the paper's.
	Reset TimerReset
	// Start selects the initial phase; the zero value is unsynchronized.
	Start StartState
	// Seed drives all randomness. Two runs with equal Config replay
	// identically.
	Seed int64
	// Engine selects the Step implementation. The zero value (EngineAuto)
	// picks by N; the choice never affects results, only speed — all
	// engines replay bit-identically.
	Engine Engine
	// Observer, when non-nil, is notified after every cluster firing.
	// Unlike OnEvent callbacks it receives only scalars, so counting
	// rounds costs no allocations. Nil (the default) costs one branch.
	Observer Observer
}

// Observer receives model lifecycle notifications. Methods are called
// synchronously from Step; implementations must not call back into the
// System. A nil observer is free apart from a single branch per event.
type Observer interface {
	// RoundCompleted fires after each cluster event: now is the busy-window
	// end the clock advanced to, size the number of routers in the cluster.
	RoundCompleted(now float64, size int)
}

// Paper returns the configuration used throughout the paper's §4
// simulations: N routers, Tp = 121 s, Tc = 0.11 s, and random component tr.
func Paper(n int, tr float64, seed int64) Config {
	return Config{
		N:      n,
		Tc:     0.11,
		Jitter: jitter.Uniform{Tp: 121, Tr: tr},
		Seed:   seed,
	}
}

// Event describes one cluster firing: the routers whose timers expired in
// one shared busy window.
//
// Members and Expiries are backed by scratch owned by the System and
// reused on the next Step — read or copy them before stepping again.
// Every run helper and observer in this repository consumes them
// immediately; the reuse is what keeps Step at zero steady-state
// allocations.
type Event struct {
	// Start is the first timer expiration (busy window opens).
	Start float64
	// End is Start + Size·Tc, when all members reset their timers.
	End float64
	// Members holds the router ids in expiry order; Members[0] is the
	// cluster head.
	Members []int
	// Expiries holds each member's timer-expiration time, parallel to
	// Members.
	Expiries []float64
	// Next is the earliest pending timer expiration after this event's
	// resets — what NextExpiry would return. Run loops use it to decide
	// whether to keep stepping without re-querying the system.
	Next float64
}

// Size returns the cluster size.
func (e Event) Size() int { return len(e.Members) }

// System is a running instance of the Periodic Messages model. It is not
// safe for concurrent use.
type System struct {
	cfg    Config
	r      *rng.Source
	expiry []float64 // next timer expiration per router
	now    float64
	steps  uint64
	// onEvent observers are invoked, in registration order, after every
	// cluster firing.
	onEvent []func(Event)
	// heap is a binary min-heap of router ids keyed by (expiry, id) — the
	// model's deterministic firing order. Step pops one cluster (k
	// members) and pushes the re-armed timers back, so each firing costs
	// O(k log N) instead of the O(N log N) full sort, and NextExpiry is an
	// O(1) peek.
	heap []int32
	// scratch buffers reused across steps
	members []cluster.Member
	// analysis is a second scratch for LargestPending/ClusterSizes, kept
	// separate from members so OnEvent observers may call them mid-Step.
	analysis []cluster.Member
	// evMembers/evExpiries back the Members/Expiries slices of returned
	// Events, reused every Step.
	evMembers  []int
	evExpiries []float64
	// useBucket routes Step through the structure-of-arrays bucket
	// engine; bucket holds its state.
	useBucket bool
	bucket    bucketState
	// ref switches Step to the original sort-based engine
	// (cluster.Grow over the full expiry set). The heap engine is
	// differential-tested against it; it is settable only from
	// package-internal tests.
	ref bool
}

// New constructs a System from cfg. It panics on invalid configuration:
// N < 1, Tc < 0, nil Jitter, or a jitter policy whose mean period does not
// exceed N·Tc (the network would spend all its time processing updates).
func New(cfg Config) *System {
	if cfg.N < 1 {
		panic("periodic: need at least one router")
	}
	if cfg.Tc < 0 {
		panic("periodic: negative Tc")
	}
	if cfg.Jitter == nil {
		panic("periodic: nil jitter policy")
	}
	if cfg.Jitter.Mean() <= float64(cfg.N)*cfg.Tc {
		panic("periodic: mean period must exceed N*Tc (system otherwise saturates)")
	}
	s := &System{
		cfg:        cfg,
		r:          rng.New(cfg.Seed),
		expiry:     make([]float64, cfg.N),
		members:    make([]cluster.Member, cfg.N),
		analysis:   make([]cluster.Member, cfg.N),
		evMembers:  make([]int, cfg.N),
		evExpiries: make([]float64, cfg.N),
	}
	s.useBucket = cfg.Engine == EngineBucket ||
		(cfg.Engine == EngineAuto && cfg.N >= bucketEngineMinN)
	if s.useBucket {
		s.bucketInit()
	} else {
		s.heap = make([]int32, cfg.N)
	}
	switch cfg.Start {
	case StartSynchronized:
		// all zero: one size-N cluster fires immediately
	default:
		tp := cfg.Jitter.Mean()
		for i := range s.expiry {
			s.expiry[i] = s.r.Uniform(0, tp)
		}
	}
	s.rebuild()
	return s
}

// rebuild refreshes the active engine's index of the expiry array.
func (s *System) rebuild() {
	if s.useBucket {
		s.bucketRebuild()
	} else {
		s.rebuildHeap()
	}
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Now returns the current simulation time (the End of the last event).
func (s *System) Now() float64 { return s.now }

// Steps returns the number of cluster events processed.
func (s *System) Steps() uint64 { return s.steps }

// NextExpiry returns the earliest pending timer expiration. With the heap
// engine this is an O(1) peek; callers inside run loops can avoid even
// that by reading Event.Next from the previous Step.
func (s *System) NextExpiry() float64 {
	if s.ref {
		min := math.Inf(1)
		for _, e := range s.expiry {
			if e < min {
				min = e
			}
		}
		return min
	}
	if s.useBucket {
		return s.bucket.min
	}
	return s.expiry[s.heap[0]]
}

// Expiries returns a copy of every router's pending expiration time.
func (s *System) Expiries() []float64 {
	return append([]float64(nil), s.expiry...)
}

// SetExpiries overrides the pending expirations (len must equal N); used
// by tests and by experiment drivers that construct bespoke phases.
func (s *System) SetExpiries(e []float64) {
	if len(e) != s.cfg.N {
		panic("periodic: SetExpiries length mismatch")
	}
	copy(s.expiry, e)
	s.rebuild()
}

// OnEvent registers an observer invoked after every cluster firing.
func (s *System) OnEvent(fn func(Event)) { s.onEvent = append(s.onEvent, fn) }

// SetObserver installs obs (nil to remove), equivalent to having set
// Config.Observer before construction.
func (s *System) SetObserver(obs Observer) { s.cfg.Observer = obs }

// TriggerUpdate models a major network change (§3 step 4): every router
// sends a triggered update immediately, without waiting for its timer. All
// timers are therefore re-armed from one shared busy window — the system
// collapses into a single cluster of size N on the next Step.
func (s *System) TriggerUpdate() {
	for i := range s.expiry {
		s.expiry[i] = s.now
	}
	s.rebuild()
}

// Step processes the next cluster firing and returns it.
func (s *System) Step() Event {
	if s.ref {
		return s.stepReference()
	}
	if s.useBucket {
		return s.stepBucket()
	}
	// Pop the cluster off the heap. The heap yields routers in
	// (expiry, id) order, so the admission loop sees exactly the sorted
	// prefix cluster.Grow would, and the window test below is the same
	// floating-point expression — the two engines replay bit-identically.
	head := s.heapPop()
	t := s.expiry[head]
	s.members[0] = cluster.Member{ID: int(head), Expiry: t}
	k := 1
	for len(s.heap) > 0 {
		e := s.expiry[s.heap[0]]
		if e < t+float64(k)*s.cfg.Tc || e == t {
			s.members[k] = cluster.Member{ID: int(s.heapPop()), Expiry: e}
			k++
			continue
		}
		break
	}
	end := t + float64(k)*s.cfg.Tc
	s.now = end
	ev := Event{
		Start:    t,
		End:      end,
		Members:  s.evMembers[:k],
		Expiries: s.evExpiries[:k],
	}
	for i := 0; i < k; i++ {
		m := s.members[i]
		ev.Members[i] = m.ID
		ev.Expiries[i] = m.Expiry
		delay := s.cfg.Jitter.Delay(s.r, m.ID)
		var next float64
		switch s.cfg.Reset {
		case ResetOnExpiry:
			next = m.Expiry + delay
			if next < end {
				// The timer would have fired during the busy window;
				// the message goes out as soon as processing finishes.
				next = end
			}
		default: // ResetAfterProcessing, the paper's rule
			next = end + delay
		}
		s.expiry[m.ID] = next
		s.heapPush(int32(m.ID))
	}
	ev.Next = s.expiry[s.heap[0]]
	s.steps++
	if s.cfg.Observer != nil {
		s.cfg.Observer.RoundCompleted(s.now, k)
	}
	for _, fn := range s.onEvent {
		fn(ev)
	}
	return ev
}

// stepReference is the original sort-based Step: rebuild the full member
// set and apply cluster.Grow. It is kept as the executable specification
// the heap engine is differential-tested against.
func (s *System) stepReference() Event {
	for i := range s.members {
		s.members[i] = cluster.Member{ID: i, Expiry: s.expiry[i]}
	}
	c := cluster.Grow(s.members, s.cfg.Tc)
	s.now = c.End
	ev := Event{
		Start:    c.Start,
		End:      c.End,
		Members:  s.evMembers[:c.Size()],
		Expiries: s.evExpiries[:c.Size()],
	}
	for i, m := range c.Members {
		ev.Members[i] = m.ID
		ev.Expiries[i] = m.Expiry
		delay := s.cfg.Jitter.Delay(s.r, m.ID)
		var next float64
		switch s.cfg.Reset {
		case ResetOnExpiry:
			next = m.Expiry + delay
			if next < c.End {
				next = c.End
			}
		default: // ResetAfterProcessing, the paper's rule
			next = c.End + delay
		}
		s.expiry[m.ID] = next
	}
	ev.Next = math.Inf(1)
	for _, e := range s.expiry {
		if e < ev.Next {
			ev.Next = e
		}
	}
	s.steps++
	if s.cfg.Observer != nil {
		s.cfg.Observer.RoundCompleted(s.now, c.Size())
	}
	for _, fn := range s.onEvent {
		fn(ev)
	}
	return ev
}

// RunUntil processes cluster firings while the earliest pending expiry is
// <= horizon. It returns the number of events processed.
func (s *System) RunUntil(horizon float64) uint64 {
	var n uint64
	next := s.NextExpiry()
	for next <= horizon {
		next = s.Step().Next
		n++
	}
	return n
}

// RoundWindow returns the nominal round length Tp + Tc used for
// time-offset plots and per-round largest-cluster tracking (paper Fig 4:
// "the time mod T, for T = Tp + Tc").
func (s *System) RoundWindow() float64 {
	return s.cfg.Jitter.Mean() + s.cfg.Tc
}

// heapLess reports whether router a's timer fires before router b's:
// earlier expiry, lower id on ties — the same order cluster.Grow sorts by.
func (s *System) heapLess(a, b int32) bool {
	ea, eb := s.expiry[a], s.expiry[b]
	if ea != eb {
		return ea < eb
	}
	return a < b
}

// rebuildHeap re-heapifies all N routers in O(N); called whenever the
// expiry set changes wholesale (construction, SetExpiries, TriggerUpdate).
func (s *System) rebuildHeap() {
	s.heap = s.heap[:0]
	for i := 0; i < s.cfg.N; i++ {
		s.heap = append(s.heap, int32(i))
	}
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

func (s *System) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(s.heap[i], s.heap[p]) {
			return
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *System) siftDown(i int) {
	n := len(s.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && s.heapLess(s.heap[r], s.heap[l]) {
			small = r
		}
		if !s.heapLess(s.heap[small], s.heap[i]) {
			return
		}
		s.heap[i], s.heap[small] = s.heap[small], s.heap[i]
		i = small
	}
}

func (s *System) heapPop() int32 {
	id := s.heap[0]
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	if n > 0 {
		s.siftDown(0)
	}
	return id
}

func (s *System) heapPush(id int32) {
	s.heap = append(s.heap, id)
	s.siftUp(len(s.heap) - 1)
}
