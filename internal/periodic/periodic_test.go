package periodic

import (
	"math"
	"testing"
	"testing/quick"

	"routesync/internal/jitter"
	"routesync/internal/rng"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero routers", Config{N: 0, Tc: 0.1, Jitter: jitter.Uniform{Tp: 121, Tr: 0.1}}},
		{"negative Tc", Config{N: 5, Tc: -1, Jitter: jitter.Uniform{Tp: 121, Tr: 0.1}}},
		{"nil jitter", Config{N: 5, Tc: 0.1}},
		{"saturating period", Config{N: 100, Tc: 2, Jitter: jitter.Uniform{Tp: 121, Tr: 0.1}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%s) did not panic", c.name)
				}
			}()
			New(c.cfg)
		})
	}
}

func TestPaperConfig(t *testing.T) {
	cfg := Paper(20, 0.1, 42)
	if cfg.N != 20 || cfg.Tc != 0.11 {
		t.Fatalf("Paper config = %+v", cfg)
	}
	u, ok := cfg.Jitter.(jitter.Uniform)
	if !ok || u.Tp != 121 || u.Tr != 0.1 {
		t.Fatalf("Paper jitter = %v", cfg.Jitter)
	}
}

func TestUnsynchronizedStartSpreadsPhases(t *testing.T) {
	s := New(Paper(20, 0.1, 1))
	for _, e := range s.Expiries() {
		if e < 0 || e >= 121 {
			t.Fatalf("initial expiry %v outside [0, Tp)", e)
		}
	}
}

func TestSynchronizedStartFormsFullCluster(t *testing.T) {
	cfg := Paper(20, 0.1, 1)
	cfg.Start = StartSynchronized
	s := New(cfg)
	ev := s.Step()
	if ev.Size() != 20 {
		t.Fatalf("first event size = %d, want 20", ev.Size())
	}
	if ev.Start != 0 || math.Abs(ev.End-20*0.11) > 1e-12 {
		t.Fatalf("event window = [%v, %v], want [0, 2.2]", ev.Start, ev.End)
	}
}

func TestStepAdvancesClockAndResetsMembers(t *testing.T) {
	cfg := Paper(3, 0.1, 7)
	s := New(cfg)
	s.SetExpiries([]float64{10, 50, 90})
	ev := s.Step()
	if ev.Size() != 1 || ev.Members[0] != 0 {
		t.Fatalf("event = %+v", ev)
	}
	if s.Now() != 10.11 {
		t.Fatalf("Now = %v, want 10.11", s.Now())
	}
	e := s.Expiries()
	// member 0 re-armed to End + U[120.9, 121.1]
	if e[0] < 10.11+120.9 || e[0] >= 10.11+121.1 {
		t.Fatalf("member re-arm = %v", e[0])
	}
	// non-members untouched
	if e[1] != 50 || e[2] != 90 {
		t.Fatalf("non-member expiries changed: %v", e)
	}
}

func TestClusterJoinSemantics(t *testing.T) {
	// Two routers expiring within Tc share a busy window and reset
	// together (paper Fig 5); a third far away does not.
	cfg := Paper(3, 0.1, 3)
	s := New(cfg)
	s.SetExpiries([]float64{20, 20.05, 60})
	ev := s.Step()
	if ev.Size() != 2 {
		t.Fatalf("cluster size = %d, want 2", ev.Size())
	}
	if math.Abs(ev.End-(20+2*0.11)) > 1e-12 {
		t.Fatalf("End = %v, want 20.22", ev.End)
	}
	e := s.Expiries()
	// Both members re-armed from the shared End: their next expiries
	// differ by at most 2·Tr = 0.2.
	if math.Abs(e[0]-e[1]) > 0.2 {
		t.Fatalf("cluster members diverged immediately: %v vs %v", e[0], e[1])
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		s := New(Paper(10, 0.1, 99))
		s.RunUntil(5000)
		return s.Expiries()
	}
	a, b := run(), b2(run)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at router %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func b2(f func() []float64) []float64 { return f() }

func TestRunUntilHorizon(t *testing.T) {
	s := New(Paper(5, 0.1, 5))
	n := s.RunUntil(1210) // ~10 rounds of 5 routers
	if n < 40 || n > 60 {
		t.Fatalf("events in 10 rounds = %d, want ~50", n)
	}
	if s.NextExpiry() <= 1210 {
		t.Fatal("RunUntil left an expiry before the horizon")
	}
}

func TestTriggerUpdateCollapsesToFullCluster(t *testing.T) {
	s := New(Paper(20, 0.1, 8))
	s.RunUntil(500)
	s.TriggerUpdate()
	ev := s.Step()
	if ev.Size() != 20 {
		t.Fatalf("triggered update produced size %d, want 20", ev.Size())
	}
}

// TestPaperSynchronizationEmerges is the headline behaviour (paper Fig 4):
// with the paper's parameters (N=20, Tp=121, Tc=0.11, Tr=0.1) an
// unsynchronized system becomes fully synchronized, typically within ~10^5
// seconds.
func TestPaperSynchronizationEmerges(t *testing.T) {
	if testing.Short() {
		t.Skip("long synchronization run")
	}
	synced := 0
	for seed := int64(1); seed <= 5; seed++ {
		s := New(Paper(20, 0.1, seed))
		res := s.RunUntilSynchronized(3e5)
		if res.Reached {
			synced++
		}
	}
	if synced < 4 {
		t.Fatalf("only %d/5 seeds synchronized within 3e5 s; paper expects near-certain synchronization", synced)
	}
}

// TestHighJitterPreventsSynchronization: with Tr = Tp/2 (the paper's §6
// recommendation) the system stays unsynchronized.
func TestHighJitterPreventsSynchronization(t *testing.T) {
	cfg := Config{N: 20, Tc: 0.11, Jitter: jitter.HalfSpread{Tp: 121}, Seed: 4}
	s := New(cfg)
	res := s.RunUntilSynchronized(3e5)
	if res.Reached {
		t.Fatalf("system synchronized at t=%v despite Tr = Tp/2", res.Time)
	}
}

// TestHighJitterBreaksSynchronization: started synchronized with a large
// random component, the system unsynchronizes (paper Fig 8, Tr = 2.8·Tc
// breaks up in ~300 rounds).
func TestHighJitterBreaksSynchronization(t *testing.T) {
	if testing.Short() {
		t.Skip("long break-up run")
	}
	cfg := Paper(20, 2.8*0.11, 11)
	cfg.Start = StartSynchronized
	s := New(cfg)
	res := s.RunUntilBroken(2, 3e6)
	if !res.Reached {
		t.Fatal("synchronization never broke with Tr = 2.8 Tc")
	}
}

// TestZeroJitterLocksSynchronization: with no random component a
// synchronized system can never break up (every timer resets identically).
func TestZeroJitterLocksSynchronization(t *testing.T) {
	cfg := Config{N: 10, Tc: 0.11, Jitter: jitter.None{Tp: 121}, Start: StartSynchronized, Seed: 1}
	s := New(cfg)
	for i := 0; i < 100; i++ {
		ev := s.Step()
		if ev.Size() != 10 {
			t.Fatalf("cluster broke without jitter at step %d: size %d", i, ev.Size())
		}
	}
}

// TestResetOnExpiryDecouples: with the RFC 1058 clock-driven timer the
// routers are uncoupled — an unsynchronized start never synchronizes, and
// with the same fixed default period a synchronized start never
// desynchronizes either (the drawback §6 points out: "there is no
// mechanism to break up synchronization if it does occur").
func TestResetOnExpiryDecouples(t *testing.T) {
	cfg := Paper(20, 0.1, 13)
	cfg.Reset = ResetOnExpiry
	s := New(cfg)
	if res := s.RunUntilSynchronized(3e5); res.Reached {
		t.Fatalf("reset-on-expiry synchronized at %v", res.Time)
	}

	cfg2 := Config{N: 20, Tc: 0.11, Jitter: jitter.None{Tp: 121}, Seed: 14}
	cfg2.Reset = ResetOnExpiry
	cfg2.Start = StartSynchronized
	s2 := New(cfg2)
	if res := s2.RunUntilBroken(19, 3e5); res.Reached {
		t.Fatalf("reset-on-expiry with fixed period desynchronized at %v", res.Time)
	}
}

// TestResetOnExpiryJitterDiffusesApart: reset-on-expiry plus a random
// component does slowly break up a synchronized start — the phases random-
// walk apart — but there is no abrupt, coupled break-up; contrast with the
// coupled model where large Tr breaks clusters within a few hundred rounds.
func TestResetOnExpiryJitterDiffusesApart(t *testing.T) {
	if testing.Short() {
		t.Skip("long diffusion run")
	}
	cfg := Paper(20, 0.3, 14)
	cfg.Reset = ResetOnExpiry
	cfg.Start = StartSynchronized
	s := New(cfg)
	res := s.RunUntilBroken(10, 5e6)
	if !res.Reached {
		t.Fatal("phases never diffused apart with jittered reset-on-expiry")
	}
}

// TestClusterDrift (paper §5.1): a cluster of size i advances its
// time-offset by about (i−1)·Tc − Tr·(i−1)/(i+1) per round relative to a
// lone router, because the cluster spends i·Tc busy but its earliest of i
// timers fires Tr·(i−1)/(i+1) early on average.
func TestClusterDrift(t *testing.T) {
	const (
		tp = 121.0
		tr = 0.05 // < Tc/2, so the cluster can never break (paper §5)
		tc = 0.11
		n  = 5 // all five in one cluster
	)
	cfg := Config{N: n, Tc: tc, Jitter: jitter.Uniform{Tp: tp, Tr: tr}, Start: StartSynchronized, Seed: 21}
	s := New(cfg)
	var firstStarts []float64
	prev := math.NaN()
	for i := 0; i < 4000; i++ {
		ev := s.Step()
		if ev.Size() != n {
			t.Fatalf("cluster broke during drift measurement at step %d (size %d); pick Tr < Tc/2", i, ev.Size())
		}
		if !math.IsNaN(prev) {
			firstStarts = append(firstStarts, ev.Start-prev)
		}
		prev = ev.Start
	}
	var sum float64
	for _, d := range firstStarts {
		sum += d
	}
	gotPeriod := sum / float64(len(firstStarts))
	wantPeriod := tp - tr*float64(n-1)/float64(n+1) + float64(n)*tc
	if math.Abs(gotPeriod-wantPeriod) > 0.01 {
		t.Fatalf("cluster period = %v, want %v (paper §5.1)", gotPeriod, wantPeriod)
	}
}

// TestLonePeriodMatchesTpPlusTc: an isolated router's average period is
// Tp + Tc (paper §4: "each router's timer expires, on the average, Tp+Tc
// seconds after that router's previous timer expiration").
func TestLonePeriodMatchesTpPlusTc(t *testing.T) {
	cfg := Config{N: 1, Tc: 0.11, Jitter: jitter.Uniform{Tp: 121, Tr: 0.1}, Seed: 31}
	s := New(cfg)
	var prev float64
	var gaps []float64
	for i := 0; i < 2000; i++ {
		ev := s.Step()
		if i > 0 {
			gaps = append(gaps, ev.Start-prev)
		}
		prev = ev.Start
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	if math.Abs(mean-121.11) > 0.02 {
		t.Fatalf("lone period = %v, want ~121.11", mean)
	}
}

// TestInvariantExpiryAfterNow: after every step each pending expiry is
// >= the clock (no timer in the past).
func TestInvariantExpiryAfterNow(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(15)
		tr := r.Uniform(0.01, 5)
		cfg := Config{N: n, Tc: 0.11, Jitter: jitter.Uniform{Tp: 121, Tr: tr}, Seed: seed}
		if r.Bernoulli(0.5) {
			cfg.Start = StartSynchronized
		}
		if r.Bernoulli(0.5) {
			cfg.Reset = ResetOnExpiry
		}
		s := New(cfg)
		for i := 0; i < 500; i++ {
			s.Step()
			for _, e := range s.Expiries() {
				if e < s.Now() {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestInvariantEventWindow: each event's expiries lie inside
// [Start, Start+Size·Tc) and End is exactly Start+Size·Tc.
func TestInvariantEventWindow(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		s := New(Paper(10, 1.0, seed))
		for i := 0; i < 300; i++ {
			ev := s.Step()
			if math.Abs(ev.End-(ev.Start+float64(ev.Size())*0.11)) > 1e-9 {
				return false
			}
			for _, e := range ev.Expiries {
				if e < ev.Start || e >= ev.End {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestInvariantMonotoneEventStarts: successive event windows never
// overlap: the next Start is >= the previous End only when the next timer
// is outside the old busy window... but at minimum starts are nondecreasing.
func TestInvariantMonotoneEventStarts(t *testing.T) {
	s := New(Paper(20, 0.1, 77))
	prevStart := math.Inf(-1)
	for i := 0; i < 2000; i++ {
		ev := s.Step()
		if ev.Start < prevStart {
			t.Fatalf("event start went backwards: %v after %v", ev.Start, prevStart)
		}
		prevStart = ev.Start
	}
}

func TestSetExpiriesLengthMismatchPanics(t *testing.T) {
	s := New(Paper(3, 0.1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("SetExpiries with wrong length did not panic")
		}
	}()
	s.SetExpiries([]float64{1, 2})
}

func TestStringers(t *testing.T) {
	if ResetAfterProcessing.String() != "reset-after-processing" ||
		ResetOnExpiry.String() != "reset-on-expiry" ||
		TimerReset(9).String() != "TimerReset(9)" {
		t.Fatal("TimerReset.String mismatch")
	}
	if StartUnsynchronized.String() != "unsynchronized" ||
		StartSynchronized.String() != "synchronized" ||
		StartState(9).String() != "StartState(9)" {
		t.Fatal("StartState.String mismatch")
	}
}
