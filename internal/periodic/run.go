package periodic

import (
	"math"

	"routesync/internal/cluster"
)

// SyncResult reports a synchronization (or break-up) search.
type SyncResult struct {
	// Reached tells whether the condition was met before the horizon.
	Reached bool
	// Time is the simulation time at which the condition was met.
	Time float64
	// Rounds is Time expressed in round windows (Tp+Tc), the unit the
	// paper reports ("synchronization after 498 rounds").
	Rounds float64
	// Events is the number of cluster firings processed.
	Events uint64
}

// RunUntilSynchronized advances the system until a cluster of size N fires
// (full synchronization) or the horizon passes.
func (s *System) RunUntilSynchronized(horizon float64) SyncResult {
	var events uint64
	next := s.NextExpiry()
	for next <= horizon {
		ev := s.Step()
		events++
		if ev.Size() == s.cfg.N {
			return SyncResult{Reached: true, Time: ev.Start, Rounds: ev.Start / s.RoundWindow(), Events: events}
		}
		next = ev.Next
	}
	return SyncResult{Reached: false, Time: s.now, Rounds: s.now / s.RoundWindow(), Events: events}
}

// LargestPending partitions the current pending timer expirations into
// clusters (the system's instantaneous state) and returns the largest
// cluster size. Unlike binning fired events into round windows, this is
// immune to the fact that a large cluster's true period Tp + i·Tc exceeds
// the nominal Tp + Tc round, which would otherwise leave some rounds
// without a cluster firing and falsely read as desynchronization.
func (s *System) LargestPending() int {
	ms := s.analysis
	for i := range ms {
		ms[i] = cluster.Member{ID: i, Expiry: s.expiry[i]}
	}
	cluster.SortMembers(ms)
	best := 0
	for len(ms) > 0 {
		c := cluster.GrowSorted(ms, s.cfg.Tc)
		if c.Size() > best {
			best = c.Size()
		}
		ms = ms[c.Size():]
	}
	return best
}

// RunUntilBroken advances the system until the largest pending cluster is
// <= threshold, or the horizon passes. A threshold of 1 demands complete
// desynchronization (no two routers share a busy window).
func (s *System) RunUntilBroken(threshold int, horizon float64) SyncResult {
	if threshold < 1 {
		threshold = 1
	}
	window := s.RoundWindow()
	var events uint64
	next := s.NextExpiry()
	for next <= horizon {
		next = s.Step().Next
		events++
		if s.LargestPending() <= threshold {
			return SyncResult{Reached: true, Time: s.now, Rounds: s.now / window, Events: events}
		}
	}
	return SyncResult{Reached: false, Time: s.now, Rounds: s.now / window, Events: events}
}

// FirstPassageUp records, for each cluster size i in [1, N], the first time
// a cluster of size >= i fires, simulating until full synchronization or
// the horizon. Sizes never reached hold +Inf. This regenerates one dashed
// line of the paper's Figure 10 (time to reach cluster size i from size 1).
func (s *System) FirstPassageUp(horizon float64) []float64 {
	times := make([]float64, s.cfg.N+1)
	for i := range times {
		times[i] = math.Inf(1)
	}
	times[0] = 0
	maxSoFar := 0
	next := s.NextExpiry()
	for next <= horizon && maxSoFar < s.cfg.N {
		ev := s.Step()
		next = ev.Next
		if ev.Size() > maxSoFar {
			for i := maxSoFar + 1; i <= ev.Size(); i++ {
				times[i] = ev.Start
			}
			maxSoFar = ev.Size()
		}
	}
	return times
}

// FirstPassageDown records, for each cluster size i in [1, N], the first
// time the largest pending cluster drops to <= i, simulating until
// complete break-up (largest == 1) or the horizon. Sizes never reached
// hold +Inf. This regenerates one dashed line of the paper's Figure 11
// (time to reach cluster size i from size N).
func (s *System) FirstPassageDown(horizon float64) []float64 {
	times := make([]float64, s.cfg.N+1)
	for i := range times {
		times[i] = math.Inf(1)
	}
	times[s.cfg.N] = 0
	minSoFar := s.cfg.N
	next := s.NextExpiry()
	for next <= horizon && minSoFar > 1 {
		next = s.Step().Next
		largest := s.LargestPending()
		if largest < minSoFar {
			for i := largest; i < minSoFar; i++ {
				times[i] = s.now
			}
			minSoFar = largest
		}
	}
	return times
}

// LargestPerRound runs the system to the horizon and returns the
// (round-start-time, largest-cluster) series — the paper's cluster graph
// (Figs 6–8).
func (s *System) LargestPerRound(horizon float64) (times []float64, sizes []int) {
	rt := cluster.NewRoundTracker(s.RoundWindow())
	s.OnEvent(func(ev Event) { rt.Observe(ev.Start, ev.Size()) })
	s.RunUntil(horizon)
	return rt.Finish()
}

// MessagePoint is one routing-message transmission for offset traces.
type MessagePoint struct {
	Router int
	// Time is the transmission time (the member's timer expiration).
	Time float64
	// Offset is Time mod the round window — the paper Fig 4 y-axis.
	Offset float64
}

// OffsetTrace runs the system to the horizon recording one MessagePoint
// per routing message (paper Fig 4). For long horizons this is large:
// ~N·horizon/Tp points.
func (s *System) OffsetTrace(horizon float64) []MessagePoint {
	window := s.RoundWindow()
	var pts []MessagePoint
	s.OnEvent(func(ev Event) {
		for i, id := range ev.Members {
			pts = append(pts, MessagePoint{
				Router: id,
				Time:   ev.Expiries[i],
				Offset: math.Mod(ev.Expiries[i], window),
			})
		}
	})
	s.RunUntil(horizon)
	return pts
}

// Mark is a timer event for the paper's Figure 5 ("x" = expiration,
// "o" = reset).
type Mark struct {
	Router int
	Time   float64
	Reset  bool // false: timer expiration; true: timer set
}

// EventMarks runs the system to horizon and returns every timer
// expiration and reset falling inside [from, horizon] — the raw material
// of the paper's Figure 5 enlargement.
func (s *System) EventMarks(from, horizon float64) []Mark {
	var marks []Mark
	s.OnEvent(func(ev Event) {
		if ev.End < from {
			return
		}
		for i, id := range ev.Members {
			marks = append(marks, Mark{Router: id, Time: ev.Expiries[i]})
			marks = append(marks, Mark{Router: id, Time: ev.End, Reset: true})
		}
	})
	s.RunUntil(horizon)
	return marks
}
