package periodic

import (
	"math"
	"testing"

	"routesync/internal/jitter"
)

func TestRunUntilSynchronizedImmediate(t *testing.T) {
	cfg := Paper(10, 0.1, 2)
	cfg.Start = StartSynchronized
	s := New(cfg)
	res := s.RunUntilSynchronized(1e6)
	if !res.Reached || res.Time != 0 || res.Events != 1 {
		t.Fatalf("res = %+v, want immediate sync at t=0", res)
	}
}

func TestRunUntilSynchronizedHorizonMiss(t *testing.T) {
	cfg := Config{N: 20, Tc: 0.11, Jitter: jitter.HalfSpread{Tp: 121}, Seed: 6}
	s := New(cfg)
	res := s.RunUntilSynchronized(10000)
	if res.Reached {
		t.Fatal("high-jitter system should not synchronize in 10^4 s")
	}
	if res.Time > 10000+122 {
		t.Fatalf("reported time %v far past horizon", res.Time)
	}
	if res.Rounds <= 0 {
		t.Fatalf("rounds = %v", res.Rounds)
	}
}

func TestRunUntilBrokenImmediate(t *testing.T) {
	// An unsynchronized high-jitter start breaks (round of lone firings)
	// almost immediately.
	cfg := Config{N: 10, Tc: 0.11, Jitter: jitter.HalfSpread{Tp: 121}, Seed: 9}
	s := New(cfg)
	res := s.RunUntilBroken(1, 1e5)
	if !res.Reached {
		t.Fatal("unsynchronized system not detected as broken")
	}
	if res.Time > 2000 {
		t.Fatalf("took %v s to observe an unsynchronized round", res.Time)
	}
}

func TestRunUntilBrokenThresholdClamp(t *testing.T) {
	cfg := Config{N: 10, Tc: 0.11, Jitter: jitter.HalfSpread{Tp: 121}, Seed: 9}
	s := New(cfg)
	res := s.RunUntilBroken(0, 1e5) // clamped to 1
	if !res.Reached {
		t.Fatal("threshold 0 (clamped to 1) never reached")
	}
}

func TestFirstPassageUpMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	s := New(Paper(20, 0.1, 3))
	times := s.FirstPassageUp(5e5)
	if len(times) != 21 {
		t.Fatalf("len = %d", len(times))
	}
	if times[1] == math.Inf(1) {
		t.Fatal("size 1 never reached")
	}
	prev := 0.0
	for i := 1; i <= 20; i++ {
		if times[i] < prev {
			t.Fatalf("first-passage times not monotone at %d: %v < %v", i, times[i], prev)
		}
		if !math.IsInf(times[i], 1) {
			prev = times[i]
		}
	}
	if math.IsInf(times[20], 1) {
		t.Fatal("never fully synchronized within 5e5 s (seed 3)")
	}
}

func TestFirstPassageDownMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	cfg := Paper(20, 0.3, 5)
	cfg.Start = StartSynchronized
	s := New(cfg)
	times := s.FirstPassageDown(5e6)
	if times[20] != 0 {
		t.Fatalf("times[N] = %v, want 0", times[20])
	}
	prev := math.Inf(1)
	for i := 19; i >= 1; i-- {
		if !math.IsInf(times[i], 1) && times[i] > prev && prev != math.Inf(1) {
			// going down, smaller sizes are reached later (larger times)
		}
		_ = prev
		prev = times[i]
	}
	// smaller target sizes take longer to reach
	last := 0.0
	for i := 19; i >= 1; i-- {
		if math.IsInf(times[i], 1) {
			continue
		}
		if times[i] < last {
			t.Fatalf("down passage times not nondecreasing toward small sizes: t[%d]=%v < %v", i, times[i], last)
		}
		last = times[i]
	}
	if math.IsInf(times[1], 1) {
		t.Fatal("never fully broke up within 5e6 s with Tr=0.3 (2.7 Tc)")
	}
}

func TestLargestPerRoundSeries(t *testing.T) {
	s := New(Paper(20, 0.1, 12))
	times, sizes := s.LargestPerRound(50000)
	if len(times) != len(sizes) || len(times) == 0 {
		t.Fatalf("series lengths %d/%d", len(times), len(sizes))
	}
	for i, sz := range sizes {
		if sz < 1 || sz > 20 {
			t.Fatalf("size out of range at %d: %d", i, sz)
		}
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("round times not increasing at %d", i)
		}
	}
}

func TestOffsetTrace(t *testing.T) {
	s := New(Paper(10, 0.1, 15))
	pts := s.OffsetTrace(12111) // ~100 rounds
	if len(pts) < 900 || len(pts) > 1100 {
		t.Fatalf("points = %d, want ~1000 (10 routers x ~100 rounds)", len(pts))
	}
	window := s.RoundWindow()
	for _, p := range pts {
		if p.Offset < 0 || p.Offset >= window {
			t.Fatalf("offset %v outside [0, %v)", p.Offset, window)
		}
		if p.Router < 0 || p.Router >= 10 {
			t.Fatalf("router id %d", p.Router)
		}
	}
}

func TestEventMarksWindow(t *testing.T) {
	s := New(Paper(5, 0.1, 18))
	marks := s.EventMarks(1000, 3000)
	if len(marks) == 0 {
		t.Fatal("no marks in window")
	}
	expiries, resets := 0, 0
	for _, m := range marks {
		if m.Time > 3000+121.5 {
			t.Fatalf("mark at %v beyond horizon", m.Time)
		}
		if m.Reset {
			resets++
		} else {
			expiries++
		}
	}
	if expiries != resets {
		t.Fatalf("expiries %d != resets %d (each expiration pairs with a reset)", expiries, resets)
	}
}

// TestSyncFasterWithMoreRouters: the phase-transition intuition — with the
// same Tr, more routers synchronize faster (clusters form more easily).
func TestSyncFasterWithMoreRouters(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	avgSync := func(n int) float64 {
		var sum float64
		const seeds = 3
		for seed := int64(1); seed <= seeds; seed++ {
			s := New(Paper(n, 0.1, seed))
			res := s.RunUntilSynchronized(2e6)
			if !res.Reached {
				return math.Inf(1)
			}
			sum += res.Time
		}
		return sum / seeds
	}
	t30 := avgSync(30)
	t15 := avgSync(15)
	if !(t30 < t15) {
		t.Fatalf("30 routers took %v, 15 routers took %v; want faster sync with more routers", t30, t15)
	}
}
