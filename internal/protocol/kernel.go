// Package protocol is the protocol-agnostic agent kernel: the shared
// lifecycle machinery every routing-protocol family on the netsim
// substrate needs — periodic/triggered timer arming with jitter
// policies, the CPU-model pending FIFO holding received packets by
// generation-checked handle, wire-encoding scratch, Crash/Restart with
// cold start, and zero-cost observer hooks.
//
// The distance-vector (internal/routing), link-state
// (internal/linkstate) and path-vector (internal/pathvector) agents are
// thin protocol strategies over one Kernel each: they supply the
// protocol behaviour — what to send on a timer fire, how to integrate a
// received update, what volatile state a crash loses — through Hooks,
// and the kernel owns when things run: timers re-armed only after the
// CPU backlog drains (the paper's §3 coupling), completions invalidated
// across reboots, packets released on every path.
package protocol

import (
	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/rng"
)

// TimerMode selects when the periodic timer is re-armed, mirroring
// internal/periodic's TimerReset for the packet-level implementations.
type TimerMode int

const (
	// TimerResetAfterProcessing re-arms the timer only once the CPU has
	// finished preparing the router's own update and processing any
	// updates that arrived meanwhile — the paper's §3 model and the
	// behaviour of the implementations it cites ([Li93]).
	TimerResetAfterProcessing TimerMode = iota
	// TimerResetOnExpiry re-arms relative to the previous expiration,
	// regardless of processing time (the RFC 1058 suggestion).
	TimerResetOnExpiry
)

// FIFO is a growable queue with a head index: pops keep the backing
// array, so steady-state push/pop cycles never allocate. The kernel uses
// it for work parked behind the CPU-occupancy model, and protocol
// strategies reuse it for their own pending queues (per-peer MRAI
// batches, flood backlogs).
type FIFO[T any] struct {
	buf  []T
	head int
}

// Len returns the number of queued items.
func (f *FIFO[T]) Len() int { return len(f.buf) - f.head }

// Push appends v.
func (f *FIFO[T]) Push(v T) { f.buf = append(f.buf, v) }

// Pop removes and returns the head; it panics on an empty FIFO.
func (f *FIFO[T]) Pop() T {
	v := f.buf[f.head]
	var zero T
	f.buf[f.head] = zero
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return v
}

// Snapshot appends the queued items, in pop order, to dst[:0] and
// returns it — the checkpoint primitive for optimistic execution. dst is
// reused across rounds, so a warm snapshot allocates nothing.
func (f *FIFO[T]) Snapshot(dst []T) []T {
	return append(dst[:0], f.buf[f.head:]...)
}

// Restore replaces the queue's contents with src in pop order, reusing
// the backing array.
func (f *FIFO[T]) Restore(src []T) {
	var zero T
	for i := range f.buf {
		f.buf[i] = zero
	}
	f.buf = append(f.buf[:0], src...)
	f.head = 0
}

// recvItem is one received packet awaiting CPU processing. The agent
// owns the packet (netsim transferred it at OnRouting) and the kernel
// holds it by generation-checked handle until the work completes, then
// releases it. Aux carries protocol-decoded header fields (the
// link-state family caches origin/seq, path-vector the peer) so the
// completion needn't re-parse.
type recvItem[A any] struct {
	ref netsim.PacketRef
	via netsim.Medium
	gen uint64
	aux A
}

// prepItem is one pending update-preparation completion.
type prepItem struct {
	resetTimer bool
	gen        uint64
}

// Hooks are the protocol strategy callbacks a family plugs into its
// kernel. Fire, Receive and Process are required; the rest are optional.
type Hooks[A any] struct {
	// Fire runs at each periodic-timer expiration (never after Stop):
	// the protocol prepares and sends its own update, then calls
	// FinishSend to charge the preparation cost and re-arm.
	Fire func()
	// Receive is the node's OnRouting handler; the kernel installs it at
	// New and reinstalls it at Restart. It owns the arriving packet and
	// must end every path in ReleasePacket — directly for drops and
	// synchronous work, or via Kernel.Process for CPU-queued work.
	Receive func(pkt *netsim.Packet, via netsim.Medium)
	// Process runs when a queued packet's CPU cost has drained (from the
	// generation current when it was queued). The kernel releases the
	// packet when Process returns; implementations keeping payload bytes
	// must copy them.
	Process func(pkt *netsim.Packet, via netsim.Medium, aux A)
	// Sweep runs at each housekeeping expiration (route aging, LSA
	// MaxAge, stale-path GC); the kernel re-schedules the next sweep.
	Sweep func()
	// TimerArmed observes every periodic re-arm with the absolute expiry
	// time; nil costs one predictable branch per re-arm.
	TimerArmed func(resetAt, expiresAt float64)
	// ResetVolatile clears the protocol state a power failure loses —
	// tables, databases, adjacency caches — during Crash, after the
	// kernel has stopped the agent and flushed the node FIB. Reset in
	// place where possible: reboot cycles should stop allocating once
	// the first life's high-water marks are reached.
	ResetVolatile func()
	// Restarted runs during Restart, after the node is restored but
	// before the receive hook is reinstalled — the place to reset rate
	// limiters and other wall-clock-relative state.
	Restarted func()
}

// Config assembles a kernel.
type Config struct {
	// Name is the protocol family name, used in panic messages.
	Name string
	// Node is the router this agent runs on.
	Node *netsim.Node
	// Seed is the fully mixed seed for the kernel's private jitter
	// stream (families mix their own node-id constant before passing).
	Seed int64
	// Jitter yields periodic-timer intervals; required (families
	// substitute jitter.None before constructing the kernel).
	Jitter jitter.Policy
	// Mode selects the re-arm rule; the zero value is the paper's.
	Mode TimerMode
	// TimerLabel, RearmLabel and SweepLabel name the kernel's events
	// (TimerLabel is per-agent — one fmt.Sprintf per agent, not per
	// re-arm).
	TimerLabel string
	RearmLabel string
	SweepLabel string
	// SweepEvery is the housekeeping interval; zero disables the sweep.
	SweepEvery float64
}

// Kernel owns one agent's protocol-agnostic lifecycle. The type
// parameter A is the aux data carried alongside CPU-queued packets.
type Kernel[A any] struct {
	node *netsim.Node
	r    *rng.Source
	jit  jitter.Policy
	mode TimerMode
	name string

	timerLabel string
	rearmLabel string
	sweepLabel string
	sweepEvery float64

	timerEv    des.Event
	sweepEv    des.Event
	waitEv     des.Event
	lastExpiry float64
	stopped    bool
	// gen counts agent lifetimes: Stop bumps it, and CPU-completion
	// callbacks issued before the stop compare their captured gen so a
	// reboot (Crash/Restart) never processes work from a previous life.
	gen         uint64
	timerResets uint64

	// Hoisted closures: one allocation per agent lifetime, not per
	// event. timerFn is the onTimer method value armAt re-schedules
	// every period.
	rearmFn func()
	sweepFn func()
	timerFn func()
	procFn  func()
	prepFn  func()

	// recvQ/prepQ park in-flight CPU work; CPU completions are FIFO
	// (each OccupyThen lands strictly later than the previous), so the
	// hoisted procFn/prepFn pop their queue heads in scheduling order.
	recvQ FIFO[recvItem[A]]
	prepQ FIFO[prepItem]

	// Enc is the wire-encoding scratch buffer: families encode with
	// EncodeInto(k.Enc[:0], ...) and store the result back, so
	// steady-state update encoding allocates nothing once the buffer
	// reaches its high-water size (SetPayload copies the bytes into the
	// packet's pooled payload arena).
	Enc []byte

	hooks Hooks[A]

	// ckpt is the kernel's optimistic-rollback shadow (see SaveCheckpoint).
	ckpt kernelCkpt[A]
}

// kernelCkpt shadows the kernel state a rolled-back logical process must
// restore: timer handles (valid across a des rewind by the checkpoint
// contract), lifecycle counters, the private random stream, and the
// in-flight CPU work queues. Enc is pure intra-event scratch and hooks
// are immutable, so neither is saved.
type kernelCkpt[A any] struct {
	timerEv     des.Event
	sweepEv     des.Event
	waitEv      des.Event
	lastExpiry  float64
	stopped     bool
	gen         uint64
	timerResets uint64
	rState      int64
	recvQ       []recvItem[A]
	prepQ       []prepItem
}

// SaveCheckpoint implements netsim.Checkpointable; the owning logical
// process calls it at each optimistic round boundary.
func (k *Kernel[A]) SaveCheckpoint() {
	c := &k.ckpt
	c.timerEv = k.timerEv
	c.sweepEv = k.sweepEv
	c.waitEv = k.waitEv
	c.lastExpiry = k.lastExpiry
	c.stopped = k.stopped
	c.gen = k.gen
	c.timerResets = k.timerResets
	c.rState = k.r.State()
	c.recvQ = k.recvQ.Snapshot(c.recvQ)
	c.prepQ = k.prepQ.Snapshot(c.prepQ)
}

// RestoreCheckpoint implements netsim.Checkpointable, rolling the kernel
// back to its SaveCheckpoint state.
func (k *Kernel[A]) RestoreCheckpoint() {
	c := &k.ckpt
	k.timerEv = c.timerEv
	k.sweepEv = c.sweepEv
	k.waitEv = c.waitEv
	k.lastExpiry = c.lastExpiry
	k.stopped = c.stopped
	k.gen = c.gen
	k.timerResets = c.timerResets
	k.r.Seed(c.rState)
	k.recvQ.Restore(c.recvQ)
	k.prepQ.Restore(c.prepQ)
}

// New creates a kernel on cfg.Node and installs hooks.Receive as the
// node's routing handler. Call StartTimer/ScheduleSweep (usually from
// the family's Start) to begin. It panics on an invalid configuration.
func New[A any](cfg Config, hooks Hooks[A]) *Kernel[A] {
	if cfg.Node == nil {
		panic(cfg.Name + ": kernel needs a node")
	}
	if cfg.Jitter == nil {
		panic(cfg.Name + ": kernel needs a jitter policy")
	}
	if hooks.Fire == nil || hooks.Receive == nil || hooks.Process == nil {
		panic(cfg.Name + ": kernel needs Fire, Receive and Process hooks")
	}
	if cfg.SweepEvery > 0 && hooks.Sweep == nil {
		panic(cfg.Name + ": sweep interval without a Sweep hook")
	}
	k := &Kernel[A]{
		node:       cfg.Node,
		r:          rng.New(cfg.Seed),
		jit:        cfg.Jitter,
		mode:       cfg.Mode,
		name:       cfg.Name,
		timerLabel: cfg.TimerLabel,
		rearmLabel: cfg.RearmLabel,
		sweepLabel: cfg.SweepLabel,
		sweepEvery: cfg.SweepEvery,
		hooks:      hooks,
	}
	k.rearmFn = k.rearmWhenIdle
	k.timerFn = k.onTimer
	k.sweepFn = func() {
		if k.stopped {
			return
		}
		k.hooks.Sweep()
		k.ScheduleSweep()
	}
	k.procFn = func() {
		it := k.recvQ.Pop()
		pkt := it.ref.Get()
		if k.gen == it.gen {
			k.hooks.Process(pkt, it.via, it.aux)
		}
		k.node.ReleasePacket(pkt)
	}
	k.prepFn = func() {
		it := k.prepQ.Pop()
		if it.resetTimer && k.gen == it.gen {
			k.rearmWhenIdle()
		}
	}
	cfg.Node.OnRouting = hooks.Receive
	// In optimistic partitioned runs the kernel's state must roll back
	// with its logical process; elsewhere this is a no-op.
	cfg.Node.Net().RegisterCheckpoint(cfg.Node, k)
	return k
}

// Node returns the agent's node.
func (k *Kernel[A]) Node() *netsim.Node { return k.node }

// RNG returns the kernel's private random stream — the one the jitter
// policy draws from. Families needing extra randomness (per-peer MRAI
// jitter) share it so an agent's draw sequence stays a pure function of
// its seed.
func (k *Kernel[A]) RNG() *rng.Source { return k.r }

// Gen returns the current lifetime generation. Completions captured
// under an older generation are stale; see Stop.
func (k *Kernel[A]) Gen() uint64 { return k.gen }

// Stopped reports whether the agent is stopped.
func (k *Kernel[A]) Stopped() bool { return k.stopped }

// TimerResets returns the number of periodic-timer arms over the
// agent's lifetimes.
func (k *Kernel[A]) TimerResets() uint64 { return k.timerResets }

// PendingPackets returns the number of received packets the kernel is
// holding while their processing cost drains through the CPU model —
// packets the agent owns but has not released yet. Leak audits add it
// to netsim's parked counts.
func (k *Kernel[A]) PendingPackets() int { return k.recvQ.Len() }

// StartTimer arms the first periodic expiration startOffset seconds
// from now. A shared startOffset of 0 across agents models the
// post-restart synchronized state; drawing offsets from U[0, Period]
// models the unsynchronized state.
func (k *Kernel[A]) StartTimer(startOffset float64) {
	if startOffset < 0 {
		panic(k.name + ": negative start offset")
	}
	now := k.node.Now()
	k.lastExpiry = now + startOffset
	k.armAt(now + startOffset)
}

// ScheduleSweep arms the next housekeeping sweep (a no-op when the
// configuration disables sweeping).
func (k *Kernel[A]) ScheduleSweep() {
	if k.stopped || k.sweepEvery <= 0 {
		return
	}
	k.sweepEv = k.node.After(k.sweepEvery, k.sweepLabel, k.sweepFn)
}

func (k *Kernel[A]) armAt(at float64) {
	k.timerEv = k.node.Schedule(at, k.timerLabel, k.timerFn)
	k.timerResets++
	if k.hooks.TimerArmed != nil {
		k.hooks.TimerArmed(k.node.Now(), at)
	}
}

// onTimer fires at a periodic timer expiration.
func (k *Kernel[A]) onTimer() {
	if k.stopped {
		return
	}
	k.lastExpiry = k.node.Now()
	k.hooks.Fire()
}

// FinishSend charges cost seconds of update-preparation CPU and, when
// resetTimer is set, re-arms the periodic timer once the CPU backlog
// (the router's own preparation plus any incoming updates that arrived
// during it) drains — the coupling mechanism of the paper (§3 step 3).
// Without a CPU (or with zero cost) the re-arm happens synchronously.
func (k *Kernel[A]) FinishSend(cost float64, resetTimer bool) {
	if k.node.CPU != nil && cost > 0 {
		k.prepQ.Push(prepItem{resetTimer: resetTimer, gen: k.gen})
		k.node.CPU.OccupyThen(cost, k.prepFn)
		return
	}
	if resetTimer {
		k.rearmWhenIdle()
	}
}

// Rearm re-arms the periodic timer once the CPU backlog drains —
// exposed for strategies that re-arm outside the FinishSend path.
func (k *Kernel[A]) Rearm() { k.rearmWhenIdle() }

func (k *Kernel[A]) rearmWhenIdle() {
	if k.stopped {
		return
	}
	if k.node.CPU != nil && k.node.CPU.Busy() {
		k.waitEv = k.node.Schedule(k.node.CPU.BusyUntil(), k.rearmLabel, k.rearmFn)
		return
	}
	k.node.Cancel(k.timerEv)
	delay := k.jit.Delay(k.r, int(k.node.ID))
	now := k.node.Now()
	var at float64
	switch k.mode {
	case TimerResetOnExpiry:
		at = k.lastExpiry + delay
		if at < now {
			at = now
		}
	default:
		at = now + delay
	}
	k.armAt(at)
}

// Process routes an arrived packet through the CPU model: with a CPU
// and a positive cost the packet parks on the pending FIFO — held by
// generation-checked handle — and hooks.Process runs when the cost
// drains; otherwise it runs synchronously. Either way the kernel
// releases the packet slot when processing completes.
func (k *Kernel[A]) Process(pkt *netsim.Packet, via netsim.Medium, aux A, cost float64) {
	if k.node.CPU != nil && cost > 0 {
		k.recvQ.Push(recvItem[A]{ref: pkt.Ref(), via: via, gen: k.gen, aux: aux})
		k.node.CPU.OccupyThen(cost, k.procFn)
		return
	}
	k.hooks.Process(pkt, via, aux)
	k.node.ReleasePacket(pkt)
}

// Send transmits payload as a routing-kind packet on m toward to
// (netsim.Broadcast for every member), with the 28-byte UDP/IP-style
// framing overhead every family charges. SetPayload copies the bytes
// into the packet's pooled arena, so the caller's scratch may be reused
// immediately.
func (k *Kernel[A]) Send(m netsim.Medium, to netsim.NodeID, payload []byte) {
	pkt := k.node.Net().NewPacket(netsim.KindRouting, k.node.ID, to, 28+len(payload))
	pkt.SetPayload(payload)
	k.node.SendOn(m, to, pkt)
}

// Stop halts the agent: the periodic timer, housekeeping sweep and any
// pending rearm wait are cancelled, in-flight CPU work from this life
// is invalidated, and incoming packets are ignored. Protocol state is
// left as-is for post-mortem inspection. Stop models an administrative
// shutdown; the neighbors' aging machinery times the dead router's
// routes out.
func (k *Kernel[A]) Stop() {
	k.stopped = true
	k.gen++
	k.node.Cancel(k.timerEv)
	k.timerEv = des.Event{}
	k.node.Cancel(k.sweepEv)
	k.sweepEv = des.Event{}
	k.node.Cancel(k.waitEv)
	k.waitEv = des.Event{}
	k.node.OnRouting = nil
}

// Crash models a power failure mid-run: the agent stops as in Stop, the
// router's volatile state — the node FIB plus whatever the family's
// ResetVolatile hook clears — is lost, and the node is marked failed so
// the data plane drops every arrival (DropNodeDown) until Restart. Call
// it from an event executing at the agent's node (internal/faults
// schedules exactly that) or from a single-threaded phase.
func (k *Kernel[A]) Crash() {
	k.Stop()
	for dst := range k.node.FIB {
		delete(k.node.FIB, dst)
	}
	if k.hooks.ResetVolatile != nil {
		k.hooks.ResetVolatile()
	}
	k.node.SetFailed(true)
}

// Restart reboots a stopped agent: the node is restored and the receive
// hook reinstalled; the calling family then runs its own Start to arm
// timers (and, RFC 1058-style, broadcast a cold-start request so
// recovery does not wait on the neighbors' periodic timers). After
// Crash the agent comes back with whatever ResetVolatile left — empty
// tables, as a real router reboot would; after a plain Stop it keeps
// its state (an administrative restart). Stats counters accumulate
// across reboots, and observer hooks stay installed. It panics on a
// running agent.
func (k *Kernel[A]) Restart() {
	if !k.stopped {
		panic(k.name + ": Restart on a running agent")
	}
	k.node.SetFailed(false)
	k.stopped = false
	if k.hooks.Restarted != nil {
		k.hooks.Restarted()
	}
	k.node.OnRouting = k.hooks.Receive
}
