package protocol

import (
	"testing"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
)

// testHooks returns a minimal valid hook set; fire/process default to
// no-ops the caller can override before New.
func testHooks() Hooks[int] {
	return Hooks[int]{
		Fire:    func() {},
		Receive: func(pkt *netsim.Packet, via netsim.Medium) {},
		Process: func(pkt *netsim.Packet, via netsim.Medium, aux int) {},
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestKernelNewValidation(t *testing.T) {
	net := netsim.NewNetwork(1)
	node := net.NewNode("r0", nil)
	base := Config{Name: "test", Node: node, Jitter: jitter.None{Tp: 10}}

	mustPanic(t, "nil node", func() {
		cfg := base
		cfg.Node = nil
		New(cfg, testHooks())
	})
	mustPanic(t, "nil jitter", func() {
		cfg := base
		cfg.Jitter = nil
		New(cfg, testHooks())
	})
	mustPanic(t, "missing Fire", func() {
		h := testHooks()
		h.Fire = nil
		New(base, h)
	})
	mustPanic(t, "missing Receive", func() {
		h := testHooks()
		h.Receive = nil
		New(base, h)
	})
	mustPanic(t, "missing Process", func() {
		h := testHooks()
		h.Process = nil
		New(base, h)
	})
	mustPanic(t, "sweep interval without hook", func() {
		cfg := base
		cfg.SweepEvery = 30
		New(cfg, testHooks())
	})

	k := New(base, testHooks())
	mustPanic(t, "negative start offset", func() { k.StartTimer(-1) })
	mustPanic(t, "restart running agent", func() { k.Restart() })
}

func TestFIFOHeadReuse(t *testing.T) {
	var f FIFO[int]
	for i := 0; i < 3; i++ {
		f.Push(i)
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	for i := 0; i < 3; i++ {
		if got := f.Pop(); got != i {
			t.Fatalf("Pop #%d = %d, want %d", i, got, i)
		}
	}
	// Draining must reset the head so the backing array is reused from
	// index 0 — the property that makes steady-state cycles allocation-free.
	if f.head != 0 || len(f.buf) != 0 || cap(f.buf) == 0 {
		t.Fatalf("after drain: head=%d len=%d cap=%d, want head 0, len 0, cap kept",
			f.head, len(f.buf), cap(f.buf))
	}

	// Warm to the high-water mark, then steady-state push/pop cycles
	// must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 3; i++ {
			f.Push(i)
		}
		for i := 0; i < 3; i++ {
			f.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f/op, want 0", allocs)
	}

	mustPanic(t, "pop empty", func() { f.Pop() })
}

// newTimerKernel builds a kernel whose Fire records expiry times and
// charges cost seconds of preparation CPU.
func newTimerKernel(mode TimerMode, tp, cost float64) (*netsim.Network, *Kernel[int], *[]float64) {
	net := netsim.NewNetwork(1)
	node := net.NewNode("r0", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy, InputQueueCap: 4})
	fires := &[]float64{}
	var k *Kernel[int]
	h := testHooks()
	h.Fire = func() {
		*fires = append(*fires, node.Now())
		k.FinishSend(cost, true)
	}
	k = New(Config{
		Name:       "test",
		Node:       node,
		Jitter:     jitter.None{Tp: tp},
		Mode:       mode,
		TimerLabel: "test-timer",
		RearmLabel: "test-rearm",
	}, h)
	return net, k, fires
}

func TestKernelTimerModes(t *testing.T) {
	// Tp=10, preparation cost 0.5, first expiry at t=1. AfterProcessing
	// re-arms from the CPU drain (1.5), OnExpiry from the expiry (1.0):
	// the half-second processing drift accumulates only in the first mode
	// — the paper's §3 coupling vs the RFC 1058 fixed-phase suggestion.
	cases := []struct {
		mode TimerMode
		want []float64
	}{
		{TimerResetAfterProcessing, []float64{1, 11.5, 22}},
		{TimerResetOnExpiry, []float64{1, 11, 21}},
	}
	for _, c := range cases {
		net, k, fires := newTimerKernel(c.mode, 10, 0.5)
		k.StartTimer(1)
		net.RunUntil(25)
		if len(*fires) != len(c.want) {
			t.Fatalf("mode %d: %d fires %v, want %d", c.mode, len(*fires), *fires, len(c.want))
		}
		for i, want := range c.want {
			if got := (*fires)[i]; got != want {
				t.Fatalf("mode %d: fire #%d at %g, want %g", c.mode, i, got, want)
			}
		}
		if k.TimerResets() == 0 {
			t.Fatalf("mode %d: TimerResets not counted", c.mode)
		}
	}
}

func TestKernelTimerOnExpiryClampsToNow(t *testing.T) {
	// When processing outlasts the period (cost 1.0 > Tp 0.2), the
	// expiry-relative arm time lands in the past and must clamp to now:
	// the next fire happens the instant the CPU drains, not before.
	net, k, fires := newTimerKernel(TimerResetOnExpiry, 0.2, 1.0)
	k.StartTimer(1)
	net.RunUntil(2.5)
	if len(*fires) < 2 {
		t.Fatalf("fires = %v, want at least 2", *fires)
	}
	if (*fires)[1] != 2.0 {
		t.Fatalf("clamped fire at %g, want 2.0 (CPU drain)", (*fires)[1])
	}
}

func TestKernelStopInvalidatesPendingWork(t *testing.T) {
	net := netsim.NewNetwork(1)
	node := net.NewNode("r0", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy, InputQueueCap: 4})
	processed := false
	h := testHooks()
	h.Process = func(pkt *netsim.Packet, via netsim.Medium, aux int) { processed = true }
	k := New(Config{Name: "test", Node: node, Jitter: jitter.None{Tp: 10}}, h)

	pkt := net.NewPacket(netsim.KindRouting, node.ID, node.ID, 64)
	node.Schedule(1, "test-arrival", func() { k.Process(pkt, nil, 7, 0.5) })
	node.Schedule(1.2, "test-stop", func() { k.Stop() })
	net.RunUntil(5)

	// The CPU completion at t=1.5 ran under a stale generation: the hook
	// must be skipped, but the parked packet still released.
	if processed {
		t.Fatal("stale CPU completion reached the Process hook after Stop")
	}
	if k.PendingPackets() != 0 {
		t.Fatalf("PendingPackets = %d after drain, want 0", k.PendingPackets())
	}
	if net.LivePackets() != 0 {
		t.Fatalf("LivePackets = %d, want 0 (kernel must release stale packets)", net.LivePackets())
	}
	if !k.Stopped() || k.Gen() != 1 {
		t.Fatalf("Stopped=%v Gen=%d, want stopped at generation 1", k.Stopped(), k.Gen())
	}
}

func TestKernelProcessSynchronousWithoutCPU(t *testing.T) {
	net := netsim.NewNetwork(1)
	node := net.NewNode("h0", nil)
	var gotAux int
	h := testHooks()
	h.Process = func(pkt *netsim.Packet, via netsim.Medium, aux int) { gotAux = aux }
	k := New(Config{Name: "test", Node: node, Jitter: jitter.None{Tp: 10}}, h)

	pkt := net.NewPacket(netsim.KindRouting, node.ID, node.ID, 64)
	k.Process(pkt, nil, 42, 0.5)
	if gotAux != 42 {
		t.Fatalf("aux = %d, want 42 (synchronous path without CPU)", gotAux)
	}
	if net.LivePackets() != 0 {
		t.Fatalf("LivePackets = %d, want 0 after synchronous Process", net.LivePackets())
	}
}

func TestKernelCrashRestart(t *testing.T) {
	net := netsim.NewNetwork(1)
	node := net.NewNode("r0", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy, InputQueueCap: 4})
	resets, restarts := 0, 0
	h := testHooks()
	h.ResetVolatile = func() { resets++ }
	h.Restarted = func() { restarts++ }
	k := New(Config{Name: "test", Node: node, Jitter: jitter.None{Tp: 10}}, h)
	k.StartTimer(0)
	node.FIB[99] = netsim.Egress{}

	k.Crash()
	if len(node.FIB) != 0 {
		t.Fatalf("FIB has %d entries after Crash, want 0", len(node.FIB))
	}
	if resets != 1 {
		t.Fatalf("ResetVolatile called %d times, want 1", resets)
	}
	if !node.Failed() || !k.Stopped() {
		t.Fatalf("Failed=%v Stopped=%v after Crash, want both true", node.Failed(), k.Stopped())
	}
	if node.OnRouting != nil {
		t.Fatal("receive hook still installed after Crash")
	}

	k.Restart()
	if node.Failed() || k.Stopped() {
		t.Fatalf("Failed=%v Stopped=%v after Restart, want both false", node.Failed(), k.Stopped())
	}
	if restarts != 1 {
		t.Fatalf("Restarted called %d times, want 1", restarts)
	}
	if node.OnRouting == nil {
		t.Fatal("receive hook not reinstalled by Restart")
	}
	// The new life runs under a fresh generation.
	if k.Gen() != 1 {
		t.Fatalf("Gen = %d after one reboot, want 1", k.Gen())
	}
}
