package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// TestKnownSequence pins the classic Park–Miller fixture: starting from
// seed 1, the 10,000th output of the minimal standard generator must be
// 1043618065 (Park & Miller, CACM 1988).
func TestKnownSequence(t *testing.T) {
	s := New(1)
	var v int64
	for i := 0; i < 10000; i++ {
		v = s.Next()
	}
	if v != 1043618065 {
		t.Fatalf("10000th value from seed 1 = %d, want 1043618065", v)
	}
}

func TestFirstValues(t *testing.T) {
	// First few outputs from seed 1: 16807, 282475249, 1622650073, ...
	want := []int64{16807, 282475249, 1622650073, 984943658, 1144108930}
	s := New(1)
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("value %d from seed 1 = %d, want %d", i, got, w)
		}
	}
	if err := ValidateStream(1, want); err != nil {
		t.Fatalf("ValidateStream: %v", err)
	}
	if err := ValidateStream(2, want); err != ErrBadStream {
		t.Fatalf("ValidateStream with wrong seed: got %v, want ErrBadStream", err)
	}
}

func TestSeedFolding(t *testing.T) {
	cases := []struct {
		seed int64
		want int64
	}{
		{0, 1},            // zero is a fixed point, folded to 1
		{Modulus, 1},      // multiple of modulus folds to 1
		{-1, Modulus - 1}, // negatives fold up
		{Modulus + 5, 5},  // wraps
		{-Modulus - 3, Modulus - 3},
	}
	for _, c := range cases {
		s := New(c.seed)
		if s.State() != c.want {
			t.Errorf("New(%d).State() = %d, want %d", c.seed, s.State(), c.want)
		}
	}
}

func TestNextRange(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Next()
			if v < 1 || v >= Modulus {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 50; i++ {
			if a.Next() != b.Next() {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(42)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUniform(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(120.89, 121.11)
		if v < 120.89 || v >= 121.11 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	s := New(3)
	if v := s.Uniform(5, 5); v != 5 {
		t.Fatalf("Uniform(5,5) = %v, want 5", v)
	}
}

func TestUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(1,0) did not panic")
		}
	}()
	New(1).Uniform(1, 0)
}

func TestIntnRangeAndCoverage(t *testing.T) {
	s := New(11)
	seen := make(map[int]int)
	const n = 7
	for i := 0; i < 70000; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		seen[v]++
	}
	for i := 0; i < n; i++ {
		if seen[i] < 7000 {
			t.Errorf("value %d underrepresented: %d draws", i, seen[i])
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExponentialMean(t *testing.T) {
	s := New(5)
	const mean = 6.05 // Tp/(N−i+1) with paper's Tp=121, N=20
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exponential(mean)
		if v < 0 {
			t.Fatalf("Exponential < 0: %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exponential mean = %v, want ~%v", got, mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestTriangularRangeAndSymmetry(t *testing.T) {
	s := New(9)
	const half = 0.11
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Triangular(half)
		if v <= -2*half || v >= 2*half {
			t.Fatalf("Triangular out of range: %v", v)
		}
		sum += v
	}
	if math.Abs(sum/n) > 0.002 {
		t.Fatalf("Triangular mean = %v, want ~0", sum/n)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(13)
	const p = 0.3
	count := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			count++
		}
	}
	got := float64(count) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency = %v", p, got)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
	}
	// Bernoulli(1): Float64 < 1 always, so always true.
	for i := 0; i < 100; i++ {
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		s := New(seed)
		n := 1 + s.Intn(50)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitStreamsDiffer(t *testing.T) {
	parent := New(1234)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams agree on %d/100 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	mk := func() []int64 {
		p := New(99)
		c := p.Split()
		out := make([]int64, 10)
		for i := range out {
			out[i] = c.Next()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Split not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkNext(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

func BenchmarkUniform(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uniform(120.89, 121.11)
	}
}
