package routing

import (
	"fmt"
	"math"

	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/rng"
)

// TimerMode selects when the routing timer is re-armed, mirroring
// internal/periodic's TimerReset for the packet-level implementation.
type TimerMode int

const (
	// TimerResetAfterProcessing re-arms the timer only once the CPU has
	// finished preparing the router's own update and processing any
	// updates that arrived meanwhile — the paper's §3 model and the
	// behaviour of the implementations it cites ([Li93]).
	TimerResetAfterProcessing TimerMode = iota
	// TimerResetOnExpiry re-arms relative to the previous expiration,
	// regardless of processing time (the RFC 1058 suggestion).
	TimerResetOnExpiry
)

// Costs models router CPU consumption per routing message, following the
// paper's Xerox PARC measurement of roughly 1 ms per route.
type Costs struct {
	// PerRoutePrepare is seconds of CPU per route to build an update.
	PerRoutePrepare float64
	// PerRouteProcess is seconds of CPU per route to process a received
	// update.
	PerRouteProcess float64
	// MinPrepare / MinProcess floor the per-message cost (header
	// parsing, scheduling) regardless of route count.
	MinPrepare float64
	MinProcess float64
}

// DefaultCosts returns the paper's measured cost model: 1 ms per route
// each way with a 1 ms floor.
func DefaultCosts() Costs {
	return Costs{PerRoutePrepare: 0.001, PerRouteProcess: 0.001, MinPrepare: 0.001, MinProcess: 0.001}
}

// Config assembles an agent's behaviour.
type Config struct {
	// Profile holds the protocol constants (period, infinity, ...).
	Profile Profile
	// Jitter yields timer intervals; nil means the deterministic period
	// (jitter.None), the configuration the paper warns about.
	Jitter jitter.Policy
	// Costs models CPU consumption; the zero value means free processing
	// (useful for pure-convergence tests).
	Costs Costs
	// TimerMode selects the re-arm rule; zero value is the paper's.
	TimerMode TimerMode
	// TriggeredResetsTimer controls whether a triggered update re-arms
	// the periodic timer (§3 step 4 does; some real implementations do
	// not [Li93]).
	TriggeredResetsTimer bool
	// TriggerHoldoff rate-limits triggered updates (seconds); zero means
	// 1 s.
	TriggerHoldoff float64
	// ExtraRoutes inflates the advertised table with this many synthetic
	// routes, modelling routers that carry many more destinations than
	// the simulated topology (the PARC routers carried ~300 routes).
	ExtraRoutes int
	// RequestOnStart broadcasts a table request when the agent starts
	// (RFC 1058 §3.4.1), so a rebooted router converges without waiting
	// up to a full period for its neighbors' timers.
	RequestOnStart bool
	// LinkCost returns the metric charged for a hop over the given
	// medium (>= 1). Nil means hop count (cost 1 everywhere). Delay-
	// weighted protocols like Hello supply costs derived from the
	// medium's latency.
	LinkCost func(netsim.Medium) uint32
	// Seed drives the agent's private jitter stream.
	Seed int64
}

// Stats counts agent activity.
type Stats struct {
	PeriodicSent     uint64
	TriggeredSent    uint64
	Received         uint64
	Malformed        uint64
	TimerResets      uint64
	RouteChanges     uint64
	ExpiredRoutes    uint64
	DeletedRoutes    uint64
	RequestsSent     uint64
	RequestsAnswered uint64
}

// fifo is a growable FIFO with a head index: pops keep the backing
// array, so steady-state push/pop cycles never allocate. The agents use
// it for work parked behind the CPU-occupancy model.
type fifo[T any] struct {
	buf  []T
	head int
}

func (f *fifo[T]) len() int { return len(f.buf) - f.head }

func (f *fifo[T]) push(v T) { f.buf = append(f.buf, v) }

func (f *fifo[T]) pop() T {
	v := f.buf[f.head]
	var zero T
	f.buf[f.head] = zero
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return v
}

// recvItem is one received update awaiting CPU processing. The agent
// owns the packet (netsim transferred it at OnRouting) and holds it by
// generation-checked handle until the work completes, then releases it.
type recvItem struct {
	ref netsim.PacketRef
	via netsim.Medium
	gen uint64
}

// prepItem is one pending update-preparation completion.
type prepItem struct {
	resetTimer bool
	gen        uint64
}

// Agent is one router's routing process.
type Agent struct {
	node *netsim.Node
	cfg  Config
	r    *rng.Source

	table      *Table
	timerEv    des.Event
	sweepEv    des.Event
	waitEv     des.Event
	timerLabel string // hoisted: one fmt.Sprintf per agent, not per re-arm
	rearmFn    func() // hoisted rearmWhenIdle closure
	sweepFn    func() // hoisted sweep closure
	timerFn    func() // hoisted onTimer method value (armAt runs per period)
	procFn     func() // hoisted receive-processing completion (pops recvQ)
	prepFn     func() // hoisted preparation completion (pops prepQ)
	lastExpiry float64
	lastTrig   float64
	stats      Stats
	stopped    bool
	// gen counts agent lifetimes: Stop bumps it, and CPU-completion
	// callbacks issued before the stop compare their captured gen so a
	// reboot (Crash/Restart) never processes work from a previous life.
	gen uint64

	// recvQ/prepQ park in-flight CPU work; CPU completions are FIFO
	// (each OccupyThen lands strictly later than the previous), so the
	// hoisted procFn/prepFn pop their queue heads in scheduling order.
	recvQ fifo[recvItem]
	prepQ fifo[prepItem]
	// Scratch buffers for the steady-state update cycle: entries exported
	// for an outgoing update, its encoded bytes (copied into the packet's
	// pooled payload arena by SetPayload), and entries decoded from an
	// incoming one.
	expScratch []Entry
	encScratch []byte
	entScratch []Entry

	// OnSend, if set, observes every update transmission (experiments
	// use it for cluster detection on the packet-level substrate).
	OnSend func(t float64, triggered bool)
	// OnTimerReset, if set, observes every timer re-arm with the
	// absolute expiry time.
	OnTimerReset func(resetAt, expiresAt float64)
	// OnRouteChange, if set, observes forwarding-state transitions for a
	// destination: reachable == true when a route is (re)programmed into
	// the FIB, false when the destination becomes unreachable or its
	// route is expired. The age-of-information instrumentation in
	// internal/faults hangs off this hook; nil costs one predictable
	// branch per transition.
	OnRouteChange func(dest netsim.NodeID, metric uint32, reachable bool)
}

// NewAgent creates an agent on node and installs its receive hook. Call
// Start to arm the first timer. It panics on invalid configuration.
func NewAgent(node *netsim.Node, cfg Config) *Agent {
	if err := cfg.Profile.Validate(); err != nil {
		panic(err)
	}
	if cfg.Jitter == nil {
		cfg.Jitter = jitter.None{Tp: cfg.Profile.Period}
	}
	if cfg.TriggerHoldoff == 0 {
		cfg.TriggerHoldoff = 1
	}
	if cfg.Costs.PerRoutePrepare < 0 || cfg.Costs.PerRouteProcess < 0 ||
		cfg.Costs.MinPrepare < 0 || cfg.Costs.MinProcess < 0 {
		panic("routing: negative costs")
	}
	if cfg.ExtraRoutes < 0 || cfg.ExtraRoutes > MaxEntries/2 {
		panic("routing: ExtraRoutes out of range")
	}
	a := &Agent{
		node:  node,
		cfg:   cfg,
		r:     rng.New(cfg.Seed ^ int64(node.ID)*0x9E3779B9),
		table: NewTable(cfg.Profile.Infinity),
	}
	a.table.SetHoldDown(cfg.Profile.HoldDown)
	a.timerLabel = fmt.Sprintf("routing-timer(%s)", node.Name)
	a.rearmFn = a.rearmWhenIdle
	a.timerFn = a.onTimer
	a.sweepFn = func() {
		if a.stopped {
			return
		}
		a.sweep()
		a.scheduleSweep()
	}
	a.procFn = func() {
		it := a.recvQ.pop()
		pkt := it.ref.Get()
		if a.gen == it.gen {
			a.integrateWire(pkt.Payload, it.via)
		}
		a.node.ReleasePacket(pkt)
	}
	a.prepFn = func() {
		it := a.prepQ.pop()
		if it.resetTimer && a.gen == it.gen {
			a.rearmWhenIdle()
		}
	}
	node.OnRouting = a.receive
	return a
}

// Node returns the agent's node.
func (a *Agent) Node() *netsim.Node { return a.node }

// Table returns the agent's routing table.
func (a *Agent) Table() *Table { return a.table }

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats { return a.stats }

// Start installs the router's own route and arms the first timer to fire
// at startOffset seconds from now. A shared startOffset of 0 across
// agents models the post-restart synchronized state; drawing offsets from
// U[0, Period] models the unsynchronized state.
func (a *Agent) Start(startOffset float64) {
	if startOffset < 0 {
		panic("routing: negative start offset")
	}
	now := a.node.Now()
	a.table.SetLocal(a.node.ID, now)
	a.lastExpiry = now + startOffset
	a.armAt(now + startOffset)
	// Housekeeping sweep, offset to avoid colliding with the timer.
	a.scheduleSweep()
	if a.cfg.RequestOnStart {
		a.sendRequest()
	}
}

// sendRequest broadcasts a table request on every medium.
func (a *Agent) sendRequest() {
	net := a.node.Net()
	payload, err := EncodeInto(a.encScratch[:0], Message{Router: a.node.ID, Request: true})
	if err != nil {
		panic(err)
	}
	a.encScratch = payload
	for i := 0; i < a.node.NumMedia(); i++ {
		pkt := net.NewPacket(netsim.KindRouting, a.node.ID, netsim.Broadcast, 28+len(payload))
		pkt.SetPayload(payload)
		a.node.SendOn(a.node.MediumAt(i), netsim.Broadcast, pkt)
	}
	a.stats.RequestsSent++
}

func (a *Agent) armAt(at float64) {
	a.timerEv = a.node.Schedule(at, a.timerLabel, a.timerFn)
	a.stats.TimerResets++
	if a.OnTimerReset != nil {
		a.OnTimerReset(a.node.Now(), at)
	}
}

func (a *Agent) cancelTimer() {
	a.node.Cancel(a.timerEv)
	a.timerEv = des.Event{}
}

// Stop halts the agent: the periodic timer, housekeeping sweep and any
// pending rearm wait are cancelled, in-flight CPU work from this life is
// invalidated, and incoming packets are ignored. The routing table is
// left as-is for post-mortem inspection. Stop models an administrative
// shutdown; the neighbors' route-timeout machinery ages the dead
// router's routes out.
func (a *Agent) Stop() {
	a.stopped = true
	a.gen++
	a.cancelTimer()
	a.node.Cancel(a.sweepEv)
	a.sweepEv = des.Event{}
	a.node.Cancel(a.waitEv)
	a.waitEv = des.Event{}
	a.node.OnRouting = nil
}

// Crash models a power failure mid-run: the agent stops as in Stop, the
// router's volatile state — routing table, hold-down windows, FIB — is
// lost, and the node is marked failed so the data plane drops every
// arrival (DropNodeDown) until Restart. Call it from an event executing
// at the agent's node (internal/faults schedules exactly that) or from
// a single-threaded phase.
func (a *Agent) Crash() {
	a.Stop()
	for dst := range a.node.FIB {
		delete(a.node.FIB, dst)
	}
	// Reset in place: the table's map buckets, route structs and scratch
	// survive onto the free lists, so repeated crash/reboot cycles stop
	// allocating once the first life's high-water marks are reached.
	a.table.Reset()
	a.node.SetFailed(true)
}

// Restart reboots a stopped agent: the node is restored, the receive
// hook reinstalled, and the first periodic timer armed startOffset
// seconds from now. After Crash the agent comes back with empty tables,
// as a real router reboot would; after a plain Stop it keeps its old
// table (an administrative restart). With Config.RequestOnStart set the
// agent broadcasts a table request immediately (RFC 1058 §3.4.1), so
// recovery does not wait on the neighbors' periodic timers. Stats
// counters accumulate across reboots, and observer hooks (OnSend,
// OnRouteChange, ...) stay installed. It panics on a running agent.
func (a *Agent) Restart(startOffset float64) {
	if !a.stopped {
		panic("routing: Restart on a running agent")
	}
	a.node.SetFailed(false)
	a.stopped = false
	a.lastTrig = a.node.Now() - a.cfg.TriggerHoldoff
	a.node.OnRouting = a.receive
	a.Start(startOffset)
}

// onTimer fires at a periodic timer expiration: prepare and send the
// router's own update (§3 step 1).
func (a *Agent) onTimer() {
	if a.stopped {
		return
	}
	a.lastExpiry = a.node.Now()
	a.sendUpdate(false, true)
}

// sendUpdate broadcasts an update and charges the preparation cost to the
// CPU. The broadcast leaves immediately — the paper's §4 simulation
// assumption that "the other nodes are immediately notified that node A
// will be sending a routing message", which reflects real multi-packet
// updates whose first packets arrive while the sender is still preparing
// the rest. The preparation cost then occupies the CPU, and when
// resetTimer is set the periodic timer is re-armed only after the CPU
// backlog (own preparation plus any incoming updates) drains (§3 step 3).
func (a *Agent) sendUpdate(triggered, resetTimer bool) {
	a.broadcast(triggered)
	prep := math.Max(a.cfg.Costs.MinPrepare,
		a.cfg.Costs.PerRoutePrepare*float64(a.table.Len()+a.cfg.ExtraRoutes))
	if a.node.CPU != nil && prep > 0 {
		a.prepQ.push(prepItem{resetTimer: resetTimer, gen: a.gen})
		a.node.CPU.OccupyThen(prep, a.prepFn)
		return
	}
	if resetTimer {
		a.rearmWhenIdle()
	}
}

// rearmWhenIdle re-arms the periodic timer once the CPU backlog (the
// router's own preparation plus any incoming updates that arrived during
// it) drains — the coupling mechanism of the paper.
func (a *Agent) rearmWhenIdle() {
	if a.stopped {
		return
	}
	if a.node.CPU != nil && a.node.CPU.Busy() {
		a.waitEv = a.node.Schedule(a.node.CPU.BusyUntil(), "routing-rearm-wait", a.rearmFn)
		return
	}
	a.cancelTimer()
	delay := a.cfg.Jitter.Delay(a.r, int(a.node.ID))
	now := a.node.Now()
	var at float64
	switch a.cfg.TimerMode {
	case TimerResetOnExpiry:
		at = a.lastExpiry + delay
		if at < now {
			at = now
		}
	default:
		at = now + delay
	}
	a.armAt(at)
}

// broadcast transmits the table on every attached medium, applying split
// horizon per medium. Export, encode and payload all ride per-agent (or
// per-packet-slot) scratch, so a steady-state update allocates nothing.
func (a *Agent) broadcast(triggered bool) {
	net := a.node.Net()
	for i := 0; i < a.node.NumMedia(); i++ {
		m := a.node.MediumAt(i)
		a.expScratch = a.table.ExportInto(a.expScratch[:0], m, a.cfg.Profile.SplitHorizon, a.cfg.Profile.PoisonReverse)
		a.expScratch = a.padSynthetic(a.expScratch)
		payload, err := EncodeInto(a.encScratch[:0], Message{Router: a.node.ID, Triggered: triggered, Entries: a.expScratch})
		if err != nil {
			panic(err) // table size is bounded by MaxEntries via ExtraRoutes validation
		}
		a.encScratch = payload
		pkt := net.NewPacket(netsim.KindRouting, a.node.ID, netsim.Broadcast, 28+len(payload))
		pkt.SetPayload(payload)
		a.node.SendOn(m, netsim.Broadcast, pkt)
	}
	if triggered {
		a.stats.TriggeredSent++
	} else {
		a.stats.PeriodicSent++
	}
	if a.OnSend != nil {
		a.OnSend(a.node.Now(), triggered)
	}
}

// padSynthetic appends the configured synthetic routes, advertised as
// unreachable-1 so they never win over real ones. They exist to make
// update preparation/processing cost realistic (the PARC ~300-route
// tables).
func (a *Agent) padSynthetic(entries []Entry) []Entry {
	if a.cfg.ExtraRoutes == 0 {
		return entries
	}
	base := netsim.NodeID(1 << 20) // far outside real node-id space
	for i := 0; i < a.cfg.ExtraRoutes; i++ {
		entries = append(entries, Entry{
			Dest:   base + netsim.NodeID(int(a.node.ID)*MaxEntries+i),
			Metric: a.cfg.Profile.Infinity - 1,
		})
	}
	return entries
}

// receive handles an incoming routing packet: consume CPU, then fold the
// update into the table (§3 steps 2/4). netsim transfers packet
// ownership here; every path ends in ReleasePacket — immediately for
// drops, synchronous processing and request replies, or from procFn once
// the CPU finishes for queued work.
func (a *Agent) receive(pkt *netsim.Packet, via netsim.Medium) {
	router, _, request, count, err := PeekHeader(pkt.Payload)
	if err != nil {
		a.stats.Malformed++
		a.node.ReleasePacket(pkt)
		return
	}
	if router == a.node.ID {
		a.node.ReleasePacket(pkt) // our own broadcast reflected back; ignore
		return
	}
	a.stats.Received++
	if request {
		// Answer with a full update without resetting our own timer
		// (RFC 1058: responses to requests are not regular updates).
		a.stats.RequestsAnswered++
		a.sendUpdate(false, false)
		a.node.ReleasePacket(pkt)
		return
	}
	proc := math.Max(a.cfg.Costs.MinProcess,
		a.cfg.Costs.PerRouteProcess*float64(count))
	if a.node.CPU != nil && proc > 0 {
		a.recvQ.push(recvItem{ref: pkt.Ref(), via: via, gen: a.gen})
		a.node.CPU.OccupyThen(proc, a.procFn)
		return
	}
	a.integrateWire(pkt.Payload, via)
	a.node.ReleasePacket(pkt)
}

// integrateWire decodes a validated update into per-agent scratch and
// integrates it — the allocation-free path behind both the synchronous
// branch of receive and the CPU completion.
func (a *Agent) integrateWire(payload []byte, via netsim.Medium) {
	router, triggered, _, _, err := PeekHeader(payload)
	if err != nil {
		panic("routing: integrateWire on unvalidated payload")
	}
	a.entScratch = AppendEntries(a.entScratch[:0], payload)
	a.integrate(Message{Router: router, Triggered: triggered, Entries: a.entScratch}, via)
}

// PendingPackets returns the number of received updates the agent is
// holding while their processing cost drains through the CPU model —
// packets the agent owns but has not released yet. Leak audits add it to
// netsim's parked counts.
func (a *Agent) PendingPackets() int { return a.recvQ.len() }

// integrate applies a decoded update and reacts: FIB programming,
// triggered-update propagation.
func (a *Agent) integrate(msg Message, via netsim.Medium) {
	now := a.node.Now()
	cost := uint32(1)
	if a.cfg.LinkCost != nil {
		cost = a.cfg.LinkCost(via)
	}
	res := a.table.ApplyCost(msg, via, now, cost)
	if res.Changed {
		a.stats.RouteChanges++
	}
	for _, dest := range res.Installed {
		r := a.table.Get(dest)
		if r != nil && !r.Local && r.Metric < a.table.Infinity() {
			a.node.SetRoute(dest, r.Via, r.NextHop)
			if a.OnRouteChange != nil {
				a.OnRouteChange(dest, r.Metric, true)
			}
		}
	}
	for _, dest := range res.Unreachable {
		delete(a.node.FIB, dest)
		if a.OnRouteChange != nil {
			a.OnRouteChange(dest, a.table.Infinity(), false)
		}
	}
	if !a.cfg.Profile.TriggeredUpdates {
		return
	}
	// §3 step 4: an incoming triggered update that changes the table, or
	// any worsening, provokes our own triggered update ("the first
	// triggered update results in a wave of triggered updates").
	if (msg.Triggered && res.Changed) || res.Worsened {
		a.triggerUpdate()
	}
}

// triggerUpdate sends a rate-limited triggered update.
func (a *Agent) triggerUpdate() {
	now := a.node.Now()
	if now-a.lastTrig < a.cfg.TriggerHoldoff {
		return
	}
	a.lastTrig = now
	a.sendUpdate(true, a.cfg.TriggeredResetsTimer)
}

// scheduleSweep arms the periodic route-aging housekeeping.
func (a *Agent) scheduleSweep() {
	if a.stopped {
		return
	}
	a.sweepEv = a.node.After(a.cfg.Profile.Period, "routing-sweep", a.sweepFn)
}

func (a *Agent) sweep() {
	now := a.node.Now()
	timeout := a.cfg.Profile.TimeoutFactor * a.cfg.Profile.Period
	gc := a.cfg.Profile.GCFactor * a.cfg.Profile.Period
	unreachable, deleted := a.table.Expire(now, timeout, gc)
	a.stats.ExpiredRoutes += uint64(len(unreachable))
	a.stats.DeletedRoutes += uint64(len(deleted))
	for _, dest := range unreachable {
		delete(a.node.FIB, dest)
		if a.OnRouteChange != nil {
			a.OnRouteChange(dest, a.table.Infinity(), false)
		}
	}
	if len(unreachable) > 0 && a.cfg.Profile.TriggeredUpdates {
		a.triggerUpdate()
	}
}
