package routing

import (
	"fmt"
	"math"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/protocol"
)

// TimerMode selects when the routing timer is re-armed; it is the
// kernel's TimerMode, re-exported so distance-vector call sites keep
// reading naturally.
type TimerMode = protocol.TimerMode

const (
	// TimerResetAfterProcessing re-arms the timer only once the CPU has
	// finished preparing the router's own update and processing any
	// updates that arrived meanwhile — the paper's §3 model and the
	// behaviour of the implementations it cites ([Li93]).
	TimerResetAfterProcessing = protocol.TimerResetAfterProcessing
	// TimerResetOnExpiry re-arms relative to the previous expiration,
	// regardless of processing time (the RFC 1058 suggestion).
	TimerResetOnExpiry = protocol.TimerResetOnExpiry
)

// Costs models router CPU consumption per routing message, following the
// paper's Xerox PARC measurement of roughly 1 ms per route.
type Costs struct {
	// PerRoutePrepare is seconds of CPU per route to build an update.
	PerRoutePrepare float64
	// PerRouteProcess is seconds of CPU per route to process a received
	// update.
	PerRouteProcess float64
	// MinPrepare / MinProcess floor the per-message cost (header
	// parsing, scheduling) regardless of route count.
	MinPrepare float64
	MinProcess float64
}

// DefaultCosts returns the paper's measured cost model: 1 ms per route
// each way with a 1 ms floor.
func DefaultCosts() Costs {
	return Costs{PerRoutePrepare: 0.001, PerRouteProcess: 0.001, MinPrepare: 0.001, MinProcess: 0.001}
}

// Config assembles an agent's behaviour.
type Config struct {
	// Profile holds the protocol constants (period, infinity, ...).
	Profile Profile
	// Jitter yields timer intervals; nil means the deterministic period
	// (jitter.None), the configuration the paper warns about.
	Jitter jitter.Policy
	// Costs models CPU consumption; the zero value means free processing
	// (useful for pure-convergence tests).
	Costs Costs
	// TimerMode selects the re-arm rule; zero value is the paper's.
	TimerMode TimerMode
	// TriggeredResetsTimer controls whether a triggered update re-arms
	// the periodic timer (§3 step 4 does; some real implementations do
	// not [Li93]).
	TriggeredResetsTimer bool
	// TriggerHoldoff rate-limits triggered updates (seconds); zero means
	// 1 s.
	TriggerHoldoff float64
	// ExtraRoutes inflates the advertised table with this many synthetic
	// routes, modelling routers that carry many more destinations than
	// the simulated topology (the PARC routers carried ~300 routes).
	ExtraRoutes int
	// RequestOnStart broadcasts a table request when the agent starts
	// (RFC 1058 §3.4.1), so a rebooted router converges without waiting
	// up to a full period for its neighbors' timers.
	RequestOnStart bool
	// LinkCost returns the metric charged for a hop over the given
	// medium (>= 1). Nil means hop count (cost 1 everywhere). Delay-
	// weighted protocols like Hello supply costs derived from the
	// medium's latency.
	LinkCost func(netsim.Medium) uint32
	// Seed drives the agent's private jitter stream.
	Seed int64
}

// Stats counts agent activity.
type Stats struct {
	PeriodicSent     uint64
	TriggeredSent    uint64
	Received         uint64
	Malformed        uint64
	TimerResets      uint64
	RouteChanges     uint64
	ExpiredRoutes    uint64
	DeletedRoutes    uint64
	RequestsSent     uint64
	RequestsAnswered uint64
}

// Agent is one router's routing process: a distance-vector protocol
// strategy over the shared protocol kernel, which owns the timer, CPU
// and crash/restart machinery.
type Agent struct {
	k   *protocol.Kernel[struct{}]
	cfg Config

	table    *Table
	lastTrig float64
	stats    Stats

	// Scratch buffers for the steady-state update cycle: entries
	// exported for an outgoing update and entries decoded from an
	// incoming one (the encode scratch lives on the kernel).
	expScratch []Entry
	entScratch []Entry

	// OnSend, if set, observes every update transmission (experiments
	// use it for cluster detection on the packet-level substrate).
	OnSend func(t float64, triggered bool)
	// OnTimerReset, if set, observes every timer re-arm with the
	// absolute expiry time.
	OnTimerReset func(resetAt, expiresAt float64)
	// OnRouteChange, if set, observes forwarding-state transitions for a
	// destination: reachable == true when a route is (re)programmed into
	// the FIB, false when the destination becomes unreachable or its
	// route is expired. The age-of-information instrumentation in
	// internal/faults hangs off this hook; nil costs one predictable
	// branch per transition.
	OnRouteChange func(dest netsim.NodeID, metric uint32, reachable bool)

	// ckpt shadows the agent's rollback state (table, trigger holdoff,
	// counters); the kernel checkpoints its own state separately.
	ckpt agentCkpt
}

type agentCkpt struct {
	lastTrig float64
	stats    Stats
	table    tableCkpt
}

// SaveCheckpoint implements netsim.Checkpointable for optimistic
// partitioned runs.
func (a *Agent) SaveCheckpoint() {
	// First save: stock the route pool to the destination universe, so
	// restore/replay churn never grows it mid-round (O(1) once warm).
	a.table.Prewarm(a.k.Node().Net().NumNodes())
	a.ckpt.lastTrig = a.lastTrig
	a.ckpt.stats = a.stats
	a.table.saveInto(&a.ckpt.table)
}

// RestoreCheckpoint implements netsim.Checkpointable.
func (a *Agent) RestoreCheckpoint() {
	a.lastTrig = a.ckpt.lastTrig
	a.stats = a.ckpt.stats
	a.table.restoreFrom(&a.ckpt.table)
}

// NewAgent creates an agent on node and installs its receive hook. Call
// Start to arm the first timer. It panics on invalid configuration.
func NewAgent(node *netsim.Node, cfg Config) *Agent {
	if err := cfg.Profile.Validate(); err != nil {
		panic(err)
	}
	if cfg.Jitter == nil {
		cfg.Jitter = jitter.None{Tp: cfg.Profile.Period}
	}
	if cfg.TriggerHoldoff == 0 {
		cfg.TriggerHoldoff = 1
	}
	if cfg.Costs.PerRoutePrepare < 0 || cfg.Costs.PerRouteProcess < 0 ||
		cfg.Costs.MinPrepare < 0 || cfg.Costs.MinProcess < 0 {
		panic("routing: negative costs")
	}
	if cfg.ExtraRoutes < 0 || cfg.ExtraRoutes > MaxEntries/2 {
		panic("routing: ExtraRoutes out of range")
	}
	a := &Agent{
		cfg:   cfg,
		table: NewTable(cfg.Profile.Infinity),
	}
	a.table.SetHoldDown(cfg.Profile.HoldDown)
	a.k = protocol.New(protocol.Config{
		Name:       "routing",
		Node:       node,
		Seed:       cfg.Seed ^ int64(node.ID)*0x9E3779B9,
		Jitter:     cfg.Jitter,
		Mode:       cfg.TimerMode,
		TimerLabel: fmt.Sprintf("routing-timer(%s)", node.Name),
		RearmLabel: "routing-rearm-wait",
		SweepLabel: "routing-sweep",
		SweepEvery: cfg.Profile.Period,
	}, protocol.Hooks[struct{}]{
		Fire:    a.onTimer,
		Receive: a.receive,
		Process: a.process,
		Sweep:   a.sweep,
		TimerArmed: func(resetAt, expiresAt float64) {
			if a.OnTimerReset != nil {
				a.OnTimerReset(resetAt, expiresAt)
			}
		},
		// Reset in place: the table's map buckets, route structs and
		// scratch survive onto the free lists, so repeated crash/reboot
		// cycles stop allocating once the first life's high-water marks
		// are reached.
		ResetVolatile: func() { a.table.Reset() },
		Restarted: func() {
			a.lastTrig = a.k.Node().Now() - a.cfg.TriggerHoldoff
		},
	})
	node.Net().RegisterCheckpoint(node, a)
	return a
}

// Node returns the agent's node.
func (a *Agent) Node() *netsim.Node { return a.k.Node() }

// Table returns the agent's routing table.
func (a *Agent) Table() *Table { return a.table }

// Stats returns a snapshot of the counters.
func (a *Agent) Stats() Stats {
	s := a.stats
	s.TimerResets = a.k.TimerResets()
	return s
}

// Start installs the router's own route and arms the first timer to fire
// at startOffset seconds from now. A shared startOffset of 0 across
// agents models the post-restart synchronized state; drawing offsets from
// U[0, Period] models the unsynchronized state.
func (a *Agent) Start(startOffset float64) {
	node := a.k.Node()
	a.table.SetLocal(node.ID, node.Now())
	a.k.StartTimer(startOffset)
	// Housekeeping sweep, offset to avoid colliding with the timer.
	a.k.ScheduleSweep()
	if a.cfg.RequestOnStart {
		a.sendRequest()
	}
}

// sendRequest broadcasts a table request on every medium.
func (a *Agent) sendRequest() {
	node := a.k.Node()
	payload, err := EncodeInto(a.k.Enc[:0], Message{Router: node.ID, Request: true})
	if err != nil {
		panic(err)
	}
	a.k.Enc = payload
	for i := 0; i < node.NumMedia(); i++ {
		a.k.Send(node.MediumAt(i), netsim.Broadcast, payload)
	}
	a.stats.RequestsSent++
}

// Stop halts the agent; see the kernel's Stop. The routing table is
// left as-is for post-mortem inspection.
func (a *Agent) Stop() { a.k.Stop() }

// Crash models a power failure mid-run: the volatile routing state —
// table, hold-down windows, FIB — is lost and the node is marked failed
// until Restart; see the kernel's Crash.
func (a *Agent) Crash() { a.k.Crash() }

// Restart reboots a stopped agent and arms the first periodic timer
// startOffset seconds from now; see the kernel's Restart. With
// Config.RequestOnStart set the agent broadcasts a table request
// immediately (RFC 1058 §3.4.1), so recovery does not wait on the
// neighbors' periodic timers.
func (a *Agent) Restart(startOffset float64) {
	a.k.Restart()
	a.Start(startOffset)
}

// onTimer fires at a periodic timer expiration: prepare and send the
// router's own update (§3 step 1).
func (a *Agent) onTimer() {
	a.sendUpdate(false, true)
}

// sendUpdate broadcasts an update and charges the preparation cost to the
// CPU. The broadcast leaves immediately — the paper's §4 simulation
// assumption that "the other nodes are immediately notified that node A
// will be sending a routing message", which reflects real multi-packet
// updates whose first packets arrive while the sender is still preparing
// the rest. The preparation cost then occupies the CPU, and when
// resetTimer is set the periodic timer is re-armed only after the CPU
// backlog (own preparation plus any incoming updates) drains (§3 step 3).
func (a *Agent) sendUpdate(triggered, resetTimer bool) {
	a.broadcast(triggered)
	prep := math.Max(a.cfg.Costs.MinPrepare,
		a.cfg.Costs.PerRoutePrepare*float64(a.table.Len()+a.cfg.ExtraRoutes))
	a.k.FinishSend(prep, resetTimer)
}

// broadcast transmits the table on every attached medium, applying split
// horizon per medium. Export, encode and payload all ride per-agent (or
// per-packet-slot) scratch, so a steady-state update allocates nothing.
func (a *Agent) broadcast(triggered bool) {
	node := a.k.Node()
	for i := 0; i < node.NumMedia(); i++ {
		m := node.MediumAt(i)
		a.expScratch = a.table.ExportInto(a.expScratch[:0], m, a.cfg.Profile.SplitHorizon, a.cfg.Profile.PoisonReverse)
		a.expScratch = a.padSynthetic(a.expScratch)
		payload, err := EncodeInto(a.k.Enc[:0], Message{Router: node.ID, Triggered: triggered, Entries: a.expScratch})
		if err != nil {
			panic(err) // table size is bounded by MaxEntries via ExtraRoutes validation
		}
		a.k.Enc = payload
		a.k.Send(m, netsim.Broadcast, payload)
	}
	if triggered {
		a.stats.TriggeredSent++
	} else {
		a.stats.PeriodicSent++
	}
	if a.OnSend != nil {
		a.OnSend(node.Now(), triggered)
	}
}

// padSynthetic appends the configured synthetic routes, advertised as
// unreachable-1 so they never win over real ones. They exist to make
// update preparation/processing cost realistic (the PARC ~300-route
// tables).
func (a *Agent) padSynthetic(entries []Entry) []Entry {
	if a.cfg.ExtraRoutes == 0 {
		return entries
	}
	node := a.k.Node()
	base := netsim.NodeID(1 << 20) // far outside real node-id space
	for i := 0; i < a.cfg.ExtraRoutes; i++ {
		entries = append(entries, Entry{
			Dest:   base + netsim.NodeID(int(node.ID)*MaxEntries+i),
			Metric: a.cfg.Profile.Infinity - 1,
		})
	}
	return entries
}

// receive handles an incoming routing packet: consume CPU, then fold the
// update into the table (§3 steps 2/4). netsim transfers packet
// ownership here; every path ends in ReleasePacket — immediately for
// drops, synchronous processing and request replies, or from the
// kernel's pending FIFO once the CPU finishes for queued work.
func (a *Agent) receive(pkt *netsim.Packet, via netsim.Medium) {
	node := a.k.Node()
	router, _, request, count, err := PeekHeader(pkt.Payload)
	if err != nil {
		a.stats.Malformed++
		node.ReleasePacket(pkt)
		return
	}
	if router == node.ID {
		node.ReleasePacket(pkt) // our own broadcast reflected back; ignore
		return
	}
	a.stats.Received++
	if request {
		// Answer with a full update without resetting our own timer
		// (RFC 1058: responses to requests are not regular updates).
		a.stats.RequestsAnswered++
		a.sendUpdate(false, false)
		node.ReleasePacket(pkt)
		return
	}
	proc := math.Max(a.cfg.Costs.MinProcess,
		a.cfg.Costs.PerRouteProcess*float64(count))
	a.k.Process(pkt, via, struct{}{}, proc)
}

// process is the kernel's processing completion: decode and integrate
// the validated update (the synchronous no-CPU path lands here too).
func (a *Agent) process(pkt *netsim.Packet, via netsim.Medium, _ struct{}) {
	a.integrateWire(pkt.Payload, via)
}

// integrateWire decodes a validated update into per-agent scratch and
// integrates it — the allocation-free path behind both the synchronous
// branch of receive and the CPU completion.
func (a *Agent) integrateWire(payload []byte, via netsim.Medium) {
	router, triggered, _, _, err := PeekHeader(payload)
	if err != nil {
		panic("routing: integrateWire on unvalidated payload")
	}
	a.entScratch = AppendEntries(a.entScratch[:0], payload)
	a.integrate(Message{Router: router, Triggered: triggered, Entries: a.entScratch}, via)
}

// PendingPackets returns the number of received updates the agent is
// holding while their processing cost drains through the CPU model —
// packets the agent owns but has not released yet. Leak audits add it to
// netsim's parked counts.
func (a *Agent) PendingPackets() int { return a.k.PendingPackets() }

// integrate applies a decoded update and reacts: FIB programming,
// triggered-update propagation.
func (a *Agent) integrate(msg Message, via netsim.Medium) {
	node := a.k.Node()
	now := node.Now()
	cost := uint32(1)
	if a.cfg.LinkCost != nil {
		cost = a.cfg.LinkCost(via)
	}
	res := a.table.ApplyCost(msg, via, now, cost)
	if res.Changed {
		a.stats.RouteChanges++
	}
	for _, dest := range res.Installed {
		r := a.table.Get(dest)
		if r != nil && !r.Local && r.Metric < a.table.Infinity() {
			node.SetRoute(dest, r.Via, r.NextHop)
			if a.OnRouteChange != nil {
				a.OnRouteChange(dest, r.Metric, true)
			}
		}
	}
	for _, dest := range res.Unreachable {
		delete(node.FIB, dest)
		if a.OnRouteChange != nil {
			a.OnRouteChange(dest, a.table.Infinity(), false)
		}
	}
	if !a.cfg.Profile.TriggeredUpdates {
		return
	}
	// §3 step 4: an incoming triggered update that changes the table, or
	// any worsening, provokes our own triggered update ("the first
	// triggered update results in a wave of triggered updates").
	if (msg.Triggered && res.Changed) || res.Worsened {
		a.triggerUpdate()
	}
}

// triggerUpdate sends a rate-limited triggered update.
func (a *Agent) triggerUpdate() {
	now := a.k.Node().Now()
	if now-a.lastTrig < a.cfg.TriggerHoldoff {
		return
	}
	a.lastTrig = now
	a.sendUpdate(true, a.cfg.TriggeredResetsTimer)
}

// sweep is the periodic route-aging housekeeping body; the kernel
// schedules it every Profile.Period.
func (a *Agent) sweep() {
	node := a.k.Node()
	now := node.Now()
	timeout := a.cfg.Profile.TimeoutFactor * a.cfg.Profile.Period
	gc := a.cfg.Profile.GCFactor * a.cfg.Profile.Period
	unreachable, deleted := a.table.Expire(now, timeout, gc)
	a.stats.ExpiredRoutes += uint64(len(unreachable))
	a.stats.DeletedRoutes += uint64(len(deleted))
	for _, dest := range unreachable {
		delete(node.FIB, dest)
		if a.OnRouteChange != nil {
			a.OnRouteChange(dest, a.table.Infinity(), false)
		}
	}
	if len(unreachable) > 0 && a.cfg.Profile.TriggeredUpdates {
		a.triggerUpdate()
	}
}
