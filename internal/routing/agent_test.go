package routing

import (
	"math"
	"testing"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
)

// lanOfRouters builds n routers on one zero-delay LAN, each running an
// agent with the given config; agents are started with the given offsets
// (cycled if shorter than n).
func lanOfRouters(n int, cfg Config, offsets []float64) (*netsim.Network, []*Agent) {
	net := netsim.NewNetwork(cfg.Seed + 1000)
	nodes := make([]*netsim.Node, n)
	for i := range nodes {
		nodes[i] = net.NewNode("r", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy})
	}
	net.NewLAN(nodes, netsim.LANConfig{})
	agents := make([]*Agent, n)
	for i, nd := range nodes {
		agents[i] = NewAgent(nd, cfg)
	}
	for i, a := range agents {
		off := 0.0
		if len(offsets) > 0 {
			off = offsets[i%len(offsets)]
		}
		a.Start(off)
	}
	return net, agents
}

func TestConvergenceOnLAN(t *testing.T) {
	cfg := Config{Profile: RIP(), Jitter: jitter.HalfSpread{Tp: 30}, Seed: 1}
	net, agents := lanOfRouters(5, cfg, []float64{1, 3, 5, 7, 9})
	net.RunUntil(120) // a few periods
	for i, a := range agents {
		for j := range agents {
			if i == j {
				continue
			}
			r := a.Table().Get(agents[j].Node().ID)
			if r == nil {
				t.Fatalf("router %d has no route to %d", i, j)
			}
			if r.Metric != 1 {
				t.Fatalf("router %d metric to %d = %d, want 1", i, j, r.Metric)
			}
		}
	}
}

// chainOfRouters builds r0 — r1 — ... — r(k−1) over point-to-point links.
func chainOfRouters(k int, cfg Config) (*netsim.Network, []*Agent, []*netsim.Link) {
	net := netsim.NewNetwork(cfg.Seed + 2000)
	nodes := make([]*netsim.Node, k)
	for i := range nodes {
		nodes[i] = net.NewNode("r", &netsim.CPUConfig{Mode: netsim.CPUModeFixed})
	}
	links := make([]*netsim.Link, k-1)
	for i := 0; i+1 < k; i++ {
		links[i] = net.Connect(nodes[i], nodes[i+1], netsim.LinkConfig{Delay: 0.001})
	}
	agents := make([]*Agent, k)
	for i, nd := range nodes {
		agents[i] = NewAgent(nd, cfg)
		agents[i].Start(float64(i) * 2)
	}
	return net, agents, links
}

func TestConvergenceOnChain(t *testing.T) {
	cfg := Config{Profile: RIP(), Jitter: jitter.HalfSpread{Tp: 30}, Seed: 2}
	net, agents, _ := chainOfRouters(5, cfg)
	net.RunUntil(300)
	// End router reaches the far end at metric 4 (hops).
	far := agents[4].Node().ID
	r := agents[0].Table().Get(far)
	if r == nil || r.Metric != 4 {
		t.Fatalf("r0 route to r4 = %+v, want metric 4", r)
	}
	// And the FIB actually forwards: send a data packet end to end.
	got := 0
	agents[4].Node().OnDeliver = map[netsim.Kind]func(*netsim.Packet){
		netsim.KindData: func(*netsim.Packet) { got++ },
	}
	net.Inject(net.NewPacket(netsim.KindData, agents[0].Node().ID, far, 100))
	net.RunUntil(301)
	if got != 1 {
		t.Fatal("data packet not delivered over protocol-built FIB")
	}
}

func TestLinkFailureConvergence(t *testing.T) {
	cfg := Config{Profile: RIP(), Jitter: jitter.HalfSpread{Tp: 30}, Seed: 3}
	net, agents, links := chainOfRouters(4, cfg)
	net.RunUntil(300)
	far := agents[3].Node().ID
	if r := agents[0].Table().Get(far); r == nil || r.Metric != 3 {
		t.Fatalf("pre-failure route = %+v", r)
	}
	// Fail the last link; after timeout sweeps the route ages out.
	links[2].SetDown(true)
	net.RunUntil(300 + 6*30 + 90) // timeout factor 6 + slack
	r := agents[0].Table().Get(far)
	if r != nil && r.Metric < 16 {
		t.Fatalf("route to unreachable dest still alive: %+v", r)
	}
	if _, ok := agents[0].Node().FIB[far]; ok {
		t.Fatal("FIB entry survived unreachability")
	}
	// Much later the entry is garbage collected entirely.
	net.RunUntil(300 + 10*30 + 300)
	if agents[0].Table().Get(far) != nil {
		t.Fatal("route not garbage collected")
	}
	// Triggered updates were sent along the way.
	var trig uint64
	for _, a := range agents {
		trig += a.Stats().TriggeredSent
	}
	if trig == 0 {
		t.Fatal("no triggered updates after a link failure")
	}
}

func TestLinkRestoreReconverges(t *testing.T) {
	cfg := Config{Profile: RIP(), Jitter: jitter.HalfSpread{Tp: 30}, Seed: 4}
	net, agents, links := chainOfRouters(3, cfg)
	net.RunUntil(200)
	far := agents[2].Node().ID
	links[1].SetDown(true)
	net.RunUntil(200 + 300)
	links[1].SetDown(false)
	net.RunUntil(200 + 300 + 150)
	r := agents[0].Table().Get(far)
	if r == nil || r.Metric != 2 {
		t.Fatalf("route after restore = %+v, want metric 2", r)
	}
}

// TestLockStepCoupling is the paper's mechanism on the packet substrate:
// two routers with deterministic timers and overlapping busy periods fall
// into lock-step, resetting their timers at the same instant.
func TestLockStepCoupling(t *testing.T) {
	cfg := Config{
		Profile:              RIP(),
		Jitter:               jitter.None{Tp: 30},
		Costs:                Costs{MinPrepare: 0.1, MinProcess: 0.1},
		TriggeredResetsTimer: true,
		Seed:                 5,
	}
	sends := make(map[int][]float64)
	net, agents := lanOfRouters(2, cfg, []float64{1.0, 1.05})
	for i, a := range agents {
		i := i
		a.OnSend = func(at float64, trig bool) {
			if !trig {
				sends[i] = append(sends[i], at)
			}
		}
	}
	net.RunUntil(400)
	s0, s1 := sends[0], sends[1]
	if len(s0) < 5 || len(s1) < 5 {
		t.Fatalf("too few sends: %d/%d", len(s0), len(s1))
	}
	// First sends differ by the start offsets.
	if math.Abs((s1[0]-s0[0])-0.05) > 1e-9 {
		t.Fatalf("first send gap = %v, want 0.05", s1[0]-s0[0])
	}
	// From the second round on, sends coincide exactly: both routers
	// reset their timers at the same busy-window end.
	for i := 1; i < 5; i++ {
		if s0[i] != s1[i] {
			t.Fatalf("round %d sends differ: %v vs %v (not lock-step)", i, s0[i], s1[i])
		}
	}
}

// TestResetOnExpiryKeepsOffsets: the RFC 1058 timer mode removes the
// coupling — the 50 ms phase offset persists.
func TestResetOnExpiryKeepsOffsets(t *testing.T) {
	cfg := Config{
		Profile:   RIP(),
		Jitter:    jitter.None{Tp: 30},
		Costs:     Costs{MinPrepare: 0.1, MinProcess: 0.1},
		TimerMode: TimerResetOnExpiry,
		Seed:      6,
	}
	sends := make(map[int][]float64)
	net, agents := lanOfRouters(2, cfg, []float64{1.0, 1.05})
	for i, a := range agents {
		i := i
		a.OnSend = func(at float64, trig bool) {
			if !trig {
				sends[i] = append(sends[i], at)
			}
		}
	}
	net.RunUntil(400)
	s0, s1 := sends[0], sends[1]
	for i := 0; i < 5 && i < len(s0) && i < len(s1); i++ {
		if math.Abs((s1[i]-s0[i])-0.05) > 1e-9 {
			t.Fatalf("round %d gap = %v, want 0.05 preserved", i, s1[i]-s0[i])
		}
	}
}

// TestTriggeredWave: a triggered update from one router provokes
// triggered updates from neighbors whose tables changed (§3: "a wave of
// triggered updates").
func TestTriggeredWave(t *testing.T) {
	cfg := Config{
		Profile:              RIP(),
		Jitter:               jitter.HalfSpread{Tp: 30},
		TriggeredResetsTimer: true,
		Seed:                 7,
	}
	net, agents, links := chainOfRouters(5, cfg)
	net.RunUntil(300)
	before := make([]uint64, len(agents))
	for i, a := range agents {
		before[i] = a.Stats().TriggeredSent
	}
	// Fail an interior link; the timeout sweep marks routes unreachable
	// and triggers a wave.
	links[1].SetDown(true)
	net.RunUntil(300 + 400)
	waved := 0
	for i, a := range agents {
		if a.Stats().TriggeredSent > before[i] {
			waved++
		}
	}
	if waved < 2 {
		t.Fatalf("only %d routers sent triggered updates; want a wave", waved)
	}
}

func TestAgentStatsAndMalformed(t *testing.T) {
	cfg := Config{Profile: RIP(), Jitter: jitter.HalfSpread{Tp: 30}, Seed: 8}
	net, agents := lanOfRouters(2, cfg, []float64{0.5, 1})
	net.RunUntil(100)
	st := agents[0].Stats()
	if st.PeriodicSent == 0 || st.Received == 0 || st.TimerResets == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Hand-deliver a garbage routing packet.
	pkt := net.NewPacket(netsim.KindRouting, 99, netsim.Broadcast, 10)
	pkt.Payload = []byte{1, 2, 3}
	agents[0].Node().OnRouting(pkt, nil)
	if agents[0].Stats().Malformed != 1 {
		t.Fatal("malformed packet not counted")
	}
}

func TestAgentConfigValidation(t *testing.T) {
	net := netsim.NewNetwork(1)
	nd := net.NewNode("r", nil)
	bad := []Config{
		{Profile: Profile{Name: "bad", Period: 0, Infinity: 16, TimeoutFactor: 3, GCFactor: 6}},
		{Profile: RIP(), Costs: Costs{MinPrepare: -1}},
		{Profile: RIP(), ExtraRoutes: -1},
		{Profile: RIP(), ExtraRoutes: MaxEntries},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			NewAgent(nd, cfg)
		}()
	}
}

func TestAgentNegativeStartPanics(t *testing.T) {
	net := netsim.NewNetwork(1)
	nd := net.NewNode("r", nil)
	a := NewAgent(nd, Config{Profile: RIP()})
	defer func() {
		if recover() == nil {
			t.Fatal("negative start offset did not panic")
		}
	}()
	a.Start(-1)
}

func TestExtraRoutesInflateUpdates(t *testing.T) {
	cfg := Config{Profile: IGRP(), Jitter: jitter.HalfSpread{Tp: 90}, ExtraRoutes: 300, Seed: 9}
	var sizes []int
	net := netsim.NewNetwork(10)
	a := net.NewNode("a", nil)
	b := net.NewNode("b", nil)
	net.NewLAN([]*netsim.Node{a, b}, netsim.LANConfig{})
	agA := NewAgent(a, cfg)
	agB := NewAgent(b, cfg)
	_ = agB
	agA.Start(1)
	agB.Start(2)
	b.OnRouting = func(p *netsim.Packet, _ netsim.Medium) {
		sizes = append(sizes, len(p.Payload))
	}
	net.RunUntil(100)
	if len(sizes) == 0 {
		t.Fatal("no updates observed")
	}
	if sizes[0] < WireSize(300) {
		t.Fatalf("update payload %d bytes, want >= %d (300 synthetic routes)", sizes[0], WireSize(300))
	}
}

// TestSyntheticRoutesDoNotPollute: synthetic padding routes must never be
// installed as usable routes by receivers.
func TestSyntheticRoutesDoNotPollute(t *testing.T) {
	cfg := Config{Profile: RIP(), Jitter: jitter.HalfSpread{Tp: 30}, ExtraRoutes: 10, Seed: 11}
	net, agents := lanOfRouters(2, cfg, []float64{1, 2})
	net.RunUntil(100)
	for _, r := range agents[0].Table().Routes() {
		if r.Dest >= 1<<20 && r.Metric < agents[0].Table().Infinity() {
			t.Fatalf("synthetic route installed as reachable: %+v", r)
		}
	}
}

func TestAgentStop(t *testing.T) {
	cfg := Config{Profile: RIP(), Jitter: jitter.HalfSpread{Tp: 30}, Seed: 41}
	net, agents := lanOfRouters(3, cfg, []float64{1, 2, 3})
	net.RunUntil(100)
	stopped := agents[0]
	sentBefore := stopped.Stats().PeriodicSent
	stopped.Stop()
	net.RunUntil(100 + 120)
	if got := stopped.Stats().PeriodicSent; got != sentBefore {
		t.Fatalf("stopped agent kept sending: %d -> %d", sentBefore, got)
	}
	// Neighbors age the dead router's routes out.
	net.RunUntil(100 + 120 + 6*30 + 60)
	dead := stopped.Node().ID
	r := agents[1].Table().Get(dead)
	if r != nil && r.Metric < 16 {
		t.Fatalf("dead router still routable: %+v", r)
	}
}
