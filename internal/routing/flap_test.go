package routing

import (
	"fmt"
	"math"
	"testing"

	"routesync/internal/netsim"
)

// flapTransition is one forwarding-state edge for the watched
// destination at the observer.
type flapTransition struct {
	at      float64
	up      bool
	nextHop netsim.NodeID
	metric  uint32
}

// runFlapScenario drives a two-path topology through repeated flaps of
// the short path's last link and records every route transition for D
// at observer A:
//
//	A — B — D        (short path, metric 2 at A)
//	A — C1 — C2 — D  (alternate, metric 3 at A)
//
// The B–D link flaps twice via scheduled FailAt/RestoreAt. Returns A's
// transition timeline for dest D and the final table entry.
func runFlapScenario(t *testing.T, mode TimerMode, holdDown float64) ([]flapTransition, *Route) {
	t.Helper()
	n := netsim.NewNetwork(17)
	mk := func(name string) *netsim.Node { return n.NewNode(name, nil) }
	a, b, c1, c2, d := mk("a"), mk("b"), mk("c1"), mk("c2"), mk("d")
	link := netsim.LinkConfig{Delay: 0.01}
	n.Connect(a, b, link)
	bd := n.Connect(b, d, link)
	n.Connect(a, c1, link)
	n.Connect(c1, c2, link)
	n.Connect(c2, d, link)

	// A compressed RIP-like profile (5 s period, 15 s timeout, 25 s GC)
	// so two full flap cycles plus reconvergence fit a short run.
	prof := Profile{
		Name: "flap-test", Period: 5, Infinity: 16,
		TimeoutFactor: 3, GCFactor: 5,
		TriggeredUpdates: true, SplitHorizon: true,
		HoldDown: holdDown,
	}
	cfg := Config{Profile: prof, TimerMode: mode, Seed: 5}
	var agents []*Agent
	for i, nd := range []*netsim.Node{a, b, c1, c2, d} {
		ag := NewAgent(nd, cfg)
		ag.Start(0.1 + 0.37*float64(i))
		agents = append(agents, ag)
	}

	obs := agents[0] // A
	var timeline []flapTransition
	obs.OnRouteChange = func(dest netsim.NodeID, metric uint32, up bool) {
		if dest != d.ID {
			return
		}
		tr := flapTransition{at: a.Now(), up: up, metric: metric}
		if r := obs.Table().Get(dest); r != nil {
			tr.nextHop = r.NextHop
		}
		timeline = append(timeline, tr)
	}

	// Two flap cycles, spaced so timeout (15 s) + hold-down (≤ 20 s)
	// resolve inside each cycle, then a long settle window.
	bd.FailAt(40)
	bd.RestoreAt(75)
	bd.FailAt(115)
	bd.RestoreAt(150)
	n.RunUntil(230)
	return timeline, obs.Table().Get(d.ID)
}

// TestHoldDownUnderRepeatedFlaps is the hold-down × triggered-update
// interaction matrix: under repeated flaps of the primary path, with
// hold-down on, the observer must never resurrect the destination via a
// different next hop inside the hold window; with hold-down off, it
// must fail over to the alternate path well before a hold window would
// have expired. In both configurations convergence after the final
// restore is bounded. Both timer re-arm modes are covered.
func TestHoldDownUnderRepeatedFlaps(t *testing.T) {
	const holdDown = 20.0
	for _, mode := range []TimerMode{TimerResetAfterProcessing, TimerResetOnExpiry} {
		for _, hd := range []float64{0, holdDown} {
			name := fmt.Sprintf("mode=%d/holddown=%v", int(mode), hd)
			t.Run(name, func(t *testing.T) {
				timeline, final := runFlapScenario(t, mode, hd)
				if len(timeline) < 4 {
					t.Fatalf("timeline too short (%d transitions): flaps did not propagate", len(timeline))
				}
				if timeline[0].up != true {
					t.Fatalf("first transition is not the initial convergence: %+v", timeline[0])
				}
				lastRestore := 150.0
				var lossAt = math.NaN()
				var lastUpHop netsim.NodeID = -1
				sawFailover := false
				recovered := math.NaN()
				for i, tr := range timeline {
					if tr.up {
						// Recovery after the final restore may be a plain
						// metric improvement (hold-down off: the alternate
						// path was already carrying the route), so any
						// up-edge counts.
						if tr.at > lastRestore && math.IsNaN(recovered) {
							recovered = tr.at
						}
						if !math.IsNaN(lossAt) {
							// Recovery edge: inside the hold window only the
							// pre-loss next hop may reinstall the route.
							if hd > 0 && tr.at < lossAt+hd && tr.nextHop != lastUpHop {
								t.Errorf("resurrection inside hold window: lost %.2f, back %.2f via %d (was %d)",
									lossAt, tr.at, tr.nextHop, lastUpHop)
							}
							if tr.nextHop != lastUpHop {
								sawFailover = true
								if hd == 0 && tr.at-lossAt > 15 {
									t.Errorf("failover without hold-down took %.2f s (lost %.2f, back %.2f), want < 15",
										tr.at-lossAt, lossAt, tr.at)
								}
							}
							lossAt = math.NaN()
						}
						lastUpHop = tr.nextHop
					} else if math.IsNaN(lossAt) {
						lossAt = tr.at
						_ = i
					}
				}
				// Bounded convergence tail: the final restore at t=150 must
				// be followed by a recovery well under GC + hold + a few
				// periods.
				if math.IsNaN(recovered) {
					t.Fatal("no recovery after the final restore")
				}
				if tail := recovered - lastRestore; tail > 50 {
					t.Errorf("convergence tail after final restore = %.2f s, want ≤ 50", tail)
				}
				if final == nil || final.Metric >= 16 {
					t.Fatalf("destination unreachable at end of run: %+v", final)
				}
				if final.Metric != 2 {
					t.Errorf("final metric = %d, want 2 (short path restored)", final.Metric)
				}
				if !sawFailover {
					t.Error("alternate path never used: flap scenario is inert")
				}
			})
		}
	}
}
