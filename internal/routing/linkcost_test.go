package routing

import (
	"testing"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
)

func TestApplyCostWeighted(t *testing.T) {
	tb := NewTable(1000)
	m := &fakeMedium{"slow"}
	res := tb.ApplyCost(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 10}}}, m, 0, 7)
	if !res.Changed {
		t.Fatal("no change")
	}
	if r := tb.Get(5); r.Metric != 17 {
		t.Fatalf("metric = %d, want 10+7", r.Metric)
	}
	if r := tb.Get(1); r.Metric != 7 {
		t.Fatalf("neighbor metric = %d, want 7", r.Metric)
	}
}

func TestApplyCostOverflowCapsAtInfinity(t *testing.T) {
	tb := NewTable(1 << 30)
	m := &fakeMedium{"x"}
	tb.ApplyCost(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: ^uint32(0) - 2}}}, m, 0, 7)
	if r := tb.Get(5); r != nil && r.Metric < 7 {
		t.Fatalf("overflowed metric: %+v", r)
	}
}

func TestApplyCostZeroPanics(t *testing.T) {
	tb := NewTable(16)
	defer func() {
		if recover() == nil {
			t.Fatal("zero cost did not panic")
		}
	}()
	tb.ApplyCost(Message{Router: 1}, &fakeMedium{"x"}, 0, 0)
}

// TestWeightedProtocolPrefersCheapDetour: a diamond where the direct link
// is expensive (cost 10) and the two-hop detour is cheap (1+1): a
// cost-aware agent must route around, a hop-count agent straight through.
func TestWeightedProtocolPrefersCheapDetour(t *testing.T) {
	build := func(costAware bool) (src, dst *netsim.Node, agSrc *Agent, net *netsim.Network) {
		net = netsim.NewNetwork(61)
		src = net.NewNode("src", nil)
		mid := net.NewNode("mid", nil)
		dst = net.NewNode("dst", nil)
		slow := net.Connect(src, dst, netsim.LinkConfig{Delay: 0.05}) // satellite hop
		net.Connect(src, mid, netsim.LinkConfig{Delay: 0.001})
		net.Connect(mid, dst, netsim.LinkConfig{Delay: 0.001})

		prof := Hello() // delay-weighted protocol profile
		cfg := Config{Profile: prof, Jitter: jitter.HalfSpread{Tp: prof.Period}, Seed: 5}
		if costAware {
			cfg.LinkCost = func(m netsim.Medium) uint32 {
				if m == netsim.Medium(slow) {
					return 10
				}
				return 1
			}
		}
		for i, nd := range []*netsim.Node{src, mid, dst} {
			ag := NewAgent(nd, cfg)
			ag.Start(float64(i) + 1)
			if nd == src {
				agSrc = ag
			}
		}
		net.RunUntil(6 * prof.Period)
		return src, dst, agSrc, net
	}

	_, dst, agHop, _ := build(false)
	if r := agHop.Table().Get(dst.ID); r == nil || r.Metric != 1 {
		t.Fatalf("hop-count route = %+v, want direct (metric 1)", r)
	}

	_, dst2, agCost, _ := build(true)
	r := agCost.Table().Get(dst2.ID)
	if r == nil || r.Metric != 2 {
		t.Fatalf("cost-aware route = %+v, want detour (metric 2)", r)
	}
}
