package routing

import (
	"testing"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
)

func TestExportPoisonReverse(t *testing.T) {
	tb := NewTable(16)
	tb.SetLocal(0, 0)
	lan := &fakeMedium{"lan"}
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 1}}}, lan, 1)

	got := tb.Export(lan, true, true)
	byDest := map[netsim.NodeID]uint32{}
	for _, e := range got {
		byDest[e.Dest] = e.Metric
	}
	// LAN-learned routes advertised poisoned, not omitted.
	if byDest[1] != 16 || byDest[5] != 16 {
		t.Fatalf("poison reverse metrics = %v", byDest)
	}
	if byDest[0] != 0 {
		t.Fatalf("local route metric = %d", byDest[0])
	}
	if len(got) != 3 {
		t.Fatalf("export = %v", got)
	}
}

func TestHoldDownBlocksResurrection(t *testing.T) {
	tb := NewTable(16)
	tb.SetHoldDown(100)
	m := &fakeMedium{"lan"}
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 1}}}, m, 0)
	// Next hop declares dest 5 dead at t=10 → hold until t=110.
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 16}}}, m, 10)
	if !tb.HeldDown(5, 50) {
		t.Fatal("destination not held down")
	}
	// Another neighbor claims a path during the hold: rejected.
	tb.Apply(Message{Router: 2, Entries: []Entry{{Dest: 5, Metric: 3}}}, m, 50)
	if r := tb.Get(5); r.Metric != 16 {
		t.Fatalf("hold-down violated: %+v", r)
	}
	// After the hold expires the same news is accepted.
	tb.Apply(Message{Router: 2, Entries: []Entry{{Dest: 5, Metric: 3}}}, m, 120)
	if r := tb.Get(5); r.Metric != 4 || r.NextHop != 2 {
		t.Fatalf("post-hold adoption failed: %+v", r)
	}
}

func TestHoldDownAfterTimeout(t *testing.T) {
	tb := NewTable(16)
	tb.SetHoldDown(100)
	m := &fakeMedium{"lan"}
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 1}}}, m, 0)
	tb.Expire(200, 180, 1000) // times out → hold until 300
	if !tb.HeldDown(5, 250) {
		t.Fatal("timeout did not start hold-down")
	}
	tb.Apply(Message{Router: 2, Entries: []Entry{{Dest: 5, Metric: 2}}}, m, 250)
	if r := tb.Get(5); r.Metric != 16 {
		t.Fatalf("hold-down after timeout violated: %+v", r)
	}
}

func TestHoldDownBlocksRelearnAfterGC(t *testing.T) {
	tb := NewTable(16)
	tb.SetHoldDown(500)
	m := &fakeMedium{"lan"}
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 1}}}, m, 0)
	tb.Apply(Message{Router: 1, Entries: []Entry{{Dest: 5, Metric: 16}}}, m, 10) // hold until 510
	tb.Expire(400, 180, 300)                                                     // GC deletes the dead entry
	if tb.Get(5) != nil {
		t.Fatal("route not deleted")
	}
	// A fresh advertisement inside the hold window is still rejected.
	tb.Apply(Message{Router: 2, Entries: []Entry{{Dest: 5, Metric: 1}}}, m, 450)
	if tb.Get(5) != nil {
		t.Fatal("hold-down bypassed after GC")
	}
	// And accepted after it.
	tb.Apply(Message{Router: 2, Entries: []Entry{{Dest: 5, Metric: 1}}}, m, 600)
	if r := tb.Get(5); r == nil || r.Metric != 2 {
		t.Fatalf("post-hold relearn failed: %+v", r)
	}
}

func TestSetHoldDownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative hold-down did not panic")
		}
	}()
	NewTable(16).SetHoldDown(-1)
}

// countToInfinityScenario builds A — B — C, converges, kills B—C, and
// returns the time B took to declare C unreachable plus the total
// updates exchanged after the failure.
func countToInfinityScenario(t *testing.T, prof Profile) (declareSeconds float64, updates uint64) {
	t.Helper()
	net := netsim.NewNetwork(42)
	a := net.NewNode("a", nil)
	b := net.NewNode("b", nil)
	c := net.NewNode("c", nil)
	net.Connect(a, b, netsim.LinkConfig{Delay: 0.001})
	lbc := net.Connect(b, c, netsim.LinkConfig{Delay: 0.001})
	cfg := Config{Profile: prof, Jitter: jitter.HalfSpread{Tp: prof.Period}, Seed: 9}
	agents := []*Agent{NewAgent(a, cfg), NewAgent(b, cfg), NewAgent(c, cfg)}
	for i, ag := range agents {
		ag.Start(float64(i) + 1)
	}
	warm := 6 * prof.Period
	net.RunUntil(warm)
	if r := agents[0].Table().Get(c.ID); r == nil || r.Metric != 2 {
		t.Fatalf("pre-failure convergence failed: %+v", r)
	}
	before := agents[0].Stats().PeriodicSent + agents[0].Stats().TriggeredSent +
		agents[1].Stats().PeriodicSent + agents[1].Stats().TriggeredSent

	lbc.SetDown(true)
	// Step until B's route to C is unreachable or gone.
	deadline := warm + 100*prof.Period
	for net.Sim.Now() < deadline {
		net.RunUntil(net.Sim.Now() + prof.Period/4)
		r := agents[1].Table().Get(c.ID)
		if r == nil || r.Metric >= prof.Infinity {
			after := agents[0].Stats().PeriodicSent + agents[0].Stats().TriggeredSent +
				agents[1].Stats().PeriodicSent + agents[1].Stats().TriggeredSent
			return net.Sim.Now() - warm, after - before
		}
	}
	t.Fatalf("%s: B never declared C unreachable", prof.Name)
	return 0, 0
}

// TestSplitHorizonDampsCountToInfinity: without split horizon, A's echo
// of B's own route can ping-pong the metric upward before infinity is
// reached; with split horizon (and especially poison reverse) the
// unreachability settles without the metric race.
func TestSplitHorizonDampsCountToInfinity(t *testing.T) {
	plain := RIP()
	plain.SplitHorizon = false
	plain.PoisonReverse = false
	plain.HoldDown = 0

	sh := RIP()
	sh.HoldDown = 0

	tPlain, _ := countToInfinityScenario(t, plain)
	tSH, _ := countToInfinityScenario(t, sh)
	if tSH > tPlain*2 {
		t.Fatalf("split horizon slower than plain: %.0fs vs %.0fs", tSH, tPlain)
	}
	// Both must settle well inside the horizon; the stronger check is
	// that split horizon never *loses* to plain by more than noise,
	// verified above, and that the metric race (route bouncing between
	// reachable values after failure) does not occur with split horizon,
	// verified in TestNoMetricRaceWithSplitHorizon.
}

// TestNoMetricRaceWithSplitHorizon: after the failure, with split
// horizon B's route to C must never be re-learned from A (a loop).
func TestNoMetricRaceWithSplitHorizon(t *testing.T) {
	net := netsim.NewNetwork(43)
	a := net.NewNode("a", nil)
	b := net.NewNode("b", nil)
	c := net.NewNode("c", nil)
	net.Connect(a, b, netsim.LinkConfig{Delay: 0.001})
	lbc := net.Connect(b, c, netsim.LinkConfig{Delay: 0.001})
	prof := RIP()
	prof.HoldDown = 0
	cfg := Config{Profile: prof, Jitter: jitter.HalfSpread{Tp: 30}, Seed: 10}
	agA, agB := NewAgent(a, cfg), NewAgent(b, cfg)
	agC := NewAgent(c, cfg)
	agA.Start(1)
	agB.Start(2)
	agC.Start(3)
	net.RunUntil(180)
	lbc.SetDown(true)
	for net.Sim.Now() < 180+600 {
		net.RunUntil(net.Sim.Now() + 5)
		r := agB.Table().Get(c.ID)
		if r != nil && r.Metric < prof.Infinity && r.NextHop == a.ID {
			t.Fatalf("split horizon violated: B routes to C via A (metric %d)", r.Metric)
		}
	}
}

// TestHoldDownPreventsFlapAdoption: with hold-down enabled, after C
// fails, B ignores transiently stale claims about C until the hold
// expires, even from third parties.
func TestHoldDownPreventsFlapAdoption(t *testing.T) {
	prof := RIP()
	prof.SplitHorizon = false // make A echo stale routes
	prof.PoisonReverse = false
	prof.HoldDown = 120

	net := netsim.NewNetwork(44)
	a := net.NewNode("a", nil)
	b := net.NewNode("b", nil)
	c := net.NewNode("c", nil)
	net.Connect(a, b, netsim.LinkConfig{Delay: 0.001})
	lbc := net.Connect(b, c, netsim.LinkConfig{Delay: 0.001})
	cfg := Config{Profile: prof, Jitter: jitter.HalfSpread{Tp: 30}, Seed: 11}
	agB := NewAgent(b, cfg)
	NewAgent(a, cfg).Start(1)
	agB.Start(2)
	NewAgent(c, cfg).Start(3)
	net.RunUntil(180)
	lbc.SetDown(true)

	// Wait until B first marks C unreachable, then confirm it stays
	// unreachable for the hold window despite A's stale advertisements.
	var deadAt float64 = -1
	for net.Sim.Now() < 180+900 {
		net.RunUntil(net.Sim.Now() + 5)
		r := agB.Table().Get(c.ID)
		if deadAt < 0 {
			if r == nil || r.Metric >= prof.Infinity {
				deadAt = net.Sim.Now()
			}
			continue
		}
		if net.Sim.Now() < deadAt+prof.HoldDown-10 {
			if r != nil && r.Metric < prof.Infinity {
				t.Fatalf("hold-down violated at %.0fs (dead at %.0fs): %+v",
					net.Sim.Now(), deadAt, r)
			}
		} else {
			break
		}
	}
	if deadAt < 0 {
		t.Fatal("B never marked C unreachable")
	}
}
