package routing

import (
	"fmt"
	"reflect"
	"testing"

	"routesync/internal/des"
	"routesync/internal/jitter"
	"routesync/internal/netsim"
)

// routingPartitionSnap captures everything a full-protocol run computes:
// converged tables, agent counters, network counters, and the exact
// per-agent update-transmission timeline.
type routingPartitionSnap struct {
	tables   [][]routeVal
	stats    []Stats
	counters netsim.Counters
	sends    [][]float64
}

type routeVal struct {
	Dest    netsim.NodeID
	Metric  uint32
	NextHop netsim.NodeID
	Updated float64
}

// runRoutingAS runs RIP agents on a 4×4 two-level AS topology with a
// mid-run inter-domain link failure, partitioned into k logical processes
// (k == 0: unpartitioned), and snapshots the outcome.
func runRoutingAS(backend des.Backend, k int) routingPartitionSnap {
	const numAS, perAS = 4, 4
	n := netsim.NewNetwork(91)
	n.Sim = des.NewBackend(backend)
	topo := n.BuildTwoLevelAS(netsim.TwoLevelASConfig{
		NumAS:        numAS,
		RoutersPerAS: perAS,
		IntraLink:    netsim.LinkConfig{Delay: 0.002, Bandwidth: 1.5e6, QueueCap: 16},
		InterLink:    netsim.LinkConfig{Delay: 0.012, Bandwidth: 1.5e6, QueueCap: 16},
		CPU:          &netsim.CPUConfig{Mode: netsim.CPUModeLegacy, InputQueueCap: 4},
		Chords:       1,
	})
	if k > 0 {
		n.Partition(k, netsim.OwnerByBlock(perAS, numAS, k))
	}

	total := numAS * perAS
	agents := make([]*Agent, 0, total)
	sends := make([][]float64, total)
	cfg := Config{
		Profile: RIP(),
		Jitter:  jitter.HalfSpread{Tp: 30},
		Costs:   DefaultCosts(),
		Seed:    7,
	}
	idx := 0
	for a := 0; a < numAS; a++ {
		for i := 0; i < perAS; i++ {
			ag := NewAgent(topo.Routers[a][i], cfg)
			j := idx
			// Each OnSend fires only on the owning logical process, so the
			// per-agent slices are goroutine-confined. The recorder is
			// append-only; its rollback checkpoint (exercised when the
			// suite is swept with ROUTESYNC_SYNC_MODE=optimistic) is a
			// length to truncate to.
			ag.OnSend = func(at float64, trig bool) { sends[j] = append(sends[j], at) }
			saved := 0
			n.RegisterCheckpoint(topo.Routers[a][i], netsim.CheckpointFuncs{
				Save:    func() { saved = len(sends[j]) },
				Restore: func() { sends[j] = sends[j][:saved] },
			})
			ag.Start(float64(idx) * 0.83)
			agents = append(agents, ag)
			idx++
		}
	}
	// Fail one backbone link as a scheduled keyed event: it fires in the
	// middle of a parallel window (not at a RunUntil barrier), which is
	// exactly the case the old direct SetDown mutation could not handle.
	backbone := linkBetween(topo.Gateways[1], topo.Gateways[2])
	backbone.FailAt(150.5)
	n.RunUntil(150)
	n.RunUntil(400)

	snap := routingPartitionSnap{counters: n.Counters(), sends: sends}
	for _, ag := range agents {
		snap.stats = append(snap.stats, ag.Stats())
		var tbl []routeVal
		for _, r := range ag.Table().Routes() {
			tbl = append(tbl, routeVal{Dest: r.Dest, Metric: r.Metric, NextHop: r.NextHop, Updated: r.Updated})
		}
		snap.tables = append(snap.tables, tbl)
	}
	return snap
}

func linkBetween(a, b *netsim.Node) *netsim.Link {
	for _, m := range a.Media() {
		if l, ok := m.(*netsim.Link); ok && l.Peer(a) == b {
			return l
		}
	}
	panic("no link between nodes")
}

// TestPartitionDeterminismRouting is the CI determinism gate: a full
// routing-protocol run (periodic updates, triggered updates after a
// backbone failure, CPU contention) is bit-identical across partition
// counts and DES backends. Run under -race this also exercises the
// parallel engine for data races.
func TestPartitionDeterminismRouting(t *testing.T) {
	ref := runRoutingAS(des.BackendHeap, 0)
	var updatesIn uint64
	for _, s := range ref.stats {
		updatesIn += s.Received
	}
	if len(ref.sends[0]) == 0 || updatesIn == 0 {
		t.Fatalf("degenerate reference run: no routing traffic (%+v)", ref.counters)
	}
	// The failed backbone must have forced some route through metric
	// changes — make sure the scenario actually re-converged.
	sawTriggered := false
	for _, s := range ref.stats {
		if s.TriggeredSent > 0 {
			sawTriggered = true
		}
	}
	if !sawTriggered {
		t.Fatal("no triggered updates; the failure scenario is inert")
	}
	for _, backend := range []des.Backend{des.BackendHeap, des.BackendCalendar} {
		for _, k := range []int{1, 2, 4} {
			name := fmt.Sprintf("%v/k=%d", backend, k)
			got := runRoutingAS(backend, k)
			if !reflect.DeepEqual(got.counters, ref.counters) {
				t.Errorf("%s: network counters diverge:\n got %+v\nwant %+v", name, got.counters, ref.counters)
			}
			if !reflect.DeepEqual(got.stats, ref.stats) {
				t.Errorf("%s: agent stats diverge", name)
			}
			if !reflect.DeepEqual(got.tables, ref.tables) {
				t.Errorf("%s: routing tables diverge", name)
			}
			if !reflect.DeepEqual(got.sends, ref.sends) {
				t.Errorf("%s: send timelines diverge", name)
			}
		}
	}
}
