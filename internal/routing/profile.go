package routing

// Profile captures a routing protocol's constants. The periods are the
// ones the paper quotes in §3: RIP every 30 s, IGRP every 90 s, DECnet
// DNA Phase IV every 120 s, EGP every 180 s.
type Profile struct {
	// Name identifies the protocol in logs and stats.
	Name string
	// Period is the nominal update interval Tp in seconds.
	Period float64
	// Infinity is the unreachable metric (RIP: 16).
	Infinity uint32
	// TimeoutFactor: a route not refreshed within TimeoutFactor·Period
	// is marked unreachable (RIP: 180 s = 6 periods).
	TimeoutFactor float64
	// GCFactor: an unreachable route is deleted after GCFactor·Period
	// without refresh (RIP: 300 s = 10 periods).
	GCFactor float64
	// TriggeredUpdates enables immediate updates on topology change
	// (present in RIP, IGRP and DNA Phase IV per §3).
	TriggeredUpdates bool
	// SplitHorizon omits routes from updates sent on the medium they
	// were learned over.
	SplitHorizon bool
	// PoisonReverse advertises routes on their learning medium with the
	// infinity metric instead of omitting them (stronger loop breaking
	// at the cost of bigger updates). Only meaningful with SplitHorizon.
	PoisonReverse bool
	// HoldDown, in seconds, freezes a destination after it becomes
	// unreachable: better news from a different next hop is rejected
	// until the hold expires (IGRP-style damping of count-to-infinity
	// rumors). Zero disables hold-down.
	HoldDown float64
}

// RIP returns the Routing Information Protocol profile (RFC 1058): 30 s
// updates, infinity 16.
func RIP() Profile {
	return Profile{
		Name:             "rip",
		Period:           30,
		Infinity:         16,
		TimeoutFactor:    6,
		GCFactor:         10,
		TriggeredUpdates: true,
		SplitHorizon:     true,
	}
}

// IGRP returns an IGRP-shaped profile: 90 s updates (the period behind
// the paper's Figure 1 NEARnet losses). The real IGRP composite metric is
// out of scope; hop count with a large infinity preserves the periodic
// behaviour under study.
func IGRP() Profile {
	return Profile{
		Name:             "igrp",
		Period:           90,
		Infinity:         256,
		TimeoutFactor:    3,
		GCFactor:         7,
		TriggeredUpdates: true,
		SplitHorizon:     true,
		PoisonReverse:    true,
		HoldDown:         280, // ~3 periods + 10 s, the classic IGRP default
	}
}

// DECnet returns a DNA Phase IV-shaped profile: 120 s updates — the
// protocol whose synchronized updates on the authors' own Ethernet
// started this investigation in 1988 (§2).
func DECnet() Profile {
	return Profile{
		Name:             "decnet",
		Period:           120,
		Infinity:         1024,
		TimeoutFactor:    3,
		GCFactor:         6,
		TriggeredUpdates: true,
		SplitHorizon:     false,
	}
}

// EGP returns an EGP-shaped profile: 180 s updates (§3: "EGP routers send
// update messages every three minutes").
func EGP() Profile {
	return Profile{
		Name:             "egp",
		Period:           180,
		Infinity:         255,
		TimeoutFactor:    3,
		GCFactor:         6,
		TriggeredUpdates: false,
		SplitHorizon:     false,
	}
}

// Hello returns a Hello-protocol-shaped profile (RFC 891 DCN): frequent
// small updates.
func Hello() Profile {
	return Profile{
		Name:             "hello",
		Period:           30,
		Infinity:         30000, // Hello metrics are milliseconds of delay
		TimeoutFactor:    4,
		GCFactor:         8,
		TriggeredUpdates: true,
		SplitHorizon:     false,
	}
}

// Validate reports whether the profile's constants are usable.
func (p Profile) Validate() error {
	switch {
	case p.Period <= 0:
		return errBad("period", p.Name)
	case p.Infinity < 2:
		return errBad("infinity", p.Name)
	case p.TimeoutFactor <= 0:
		return errBad("timeout factor", p.Name)
	case p.GCFactor < p.TimeoutFactor:
		return errBad("gc factor below timeout factor", p.Name)
	case p.HoldDown < 0:
		return errBad("negative hold-down", p.Name)
	}
	return nil
}

type profileError struct {
	field, name string
}

func errBad(field, name string) error { return &profileError{field: field, name: name} }

func (e *profileError) Error() string {
	return "routing: invalid profile " + e.name + ": bad " + e.field
}
