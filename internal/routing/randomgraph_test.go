package routing

import (
	"testing"
	"testing/quick"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/rng"
)

// TestConvergesToShortestPathsOnRandomGraphs is the protocol's strongest
// correctness property: on arbitrary connected topologies, after enough
// periods every router's metric to every destination equals the BFS hop
// distance.
func TestConvergesToShortestPathsOnRandomGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("many protocol runs")
	}
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		net := netsim.NewNetwork(seed)
		count := 4 + r.Intn(8)
		extra := r.Intn(count)
		nodes, _ := net.BuildRandomGraph(r, count, extra, nil, netsim.LinkConfig{Delay: 0.001})
		cfg := Config{Profile: RIP(), Jitter: jitter.HalfSpread{Tp: 30}, Seed: seed}
		agents := make([]*Agent, count)
		for i, nd := range nodes {
			agents[i] = NewAgent(nd, cfg)
			agents[i].Start(r.Uniform(0, 30))
		}
		// Diameter <= count; each period propagates one hop; generous slack.
		net.RunUntil(float64(count+4) * 30 * 2)
		for i, ag := range agents {
			want := net.HopDistances(nodes[i])
			for j, other := range nodes {
				if i == j {
					continue
				}
				rt := ag.Table().Get(other.ID)
				if rt == nil {
					t.Logf("seed %d: router %d missing route to %d", seed, i, j)
					return false
				}
				if int(rt.Metric) != want[other.ID] {
					t.Logf("seed %d: router %d metric to %d = %d, BFS = %d",
						seed, i, j, rt.Metric, want[other.ID])
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestRandomGraphFailureReconvergence: kill a random non-bridge link and
// verify the protocol reconverges to the new BFS distances.
func TestRandomGraphFailureReconvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("long reconvergence run")
	}
	r := rng.New(99)
	net := netsim.NewNetwork(99)
	nodes, links := net.BuildRandomGraph(r, 6, 5, nil, netsim.LinkConfig{Delay: 0.001})
	prof := RIP()
	prof.HoldDown = 0
	cfg := Config{Profile: prof, Jitter: jitter.HalfSpread{Tp: 30}, Seed: 99}
	agents := make([]*Agent, len(nodes))
	for i, nd := range nodes {
		agents[i] = NewAgent(nd, cfg)
		agents[i].Start(r.Uniform(0, 30))
	}
	net.RunUntil(400)

	// Fail an extra (non-tree) link: connectivity survives.
	failed := links[len(links)-1]
	failed.SetDown(true)
	net.RunUntil(400 + 500) // timeout + reconvergence

	for i, ag := range agents {
		want := hopDistancesAvoiding(net, nodes[i], failed)
		for j, other := range nodes {
			if i == j {
				continue
			}
			rt := ag.Table().Get(other.ID)
			if rt == nil || int(rt.Metric) != want[other.ID] {
				t.Fatalf("router %d to %d: got %+v, BFS says %d", i, j, rt, want[other.ID])
			}
		}
	}
}

// hopDistancesAvoiding computes BFS distances skipping the failed link.
func hopDistancesAvoiding(net *netsim.Network, src *netsim.Node, down *netsim.Link) map[netsim.NodeID]int {
	dist := map[netsim.NodeID]int{src.ID: 0}
	queue := []*netsim.Node{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, m := range cur.Media() {
			l, ok := m.(*netsim.Link)
			if !ok || l == down {
				continue
			}
			peer := l.Peer(cur)
			if _, seen := dist[peer.ID]; seen {
				continue
			}
			dist[peer.ID] = dist[cur.ID] + 1
			queue = append(queue, peer)
		}
	}
	return dist
}
