package routing

import (
	"testing"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
)

func TestWireRequestFlag(t *testing.T) {
	buf, err := Encode(Message{Router: 3, Request: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Request || got.Triggered || got.Router != 3 {
		t.Fatalf("round trip = %+v", got)
	}
	// Both flags together survive too.
	buf2, _ := Encode(Message{Router: 4, Request: true, Triggered: true})
	got2, _ := Decode(buf2)
	if !got2.Request || !got2.Triggered {
		t.Fatalf("combined flags = %+v", got2)
	}
}

// TestRequestOnStartAcceleratesConvergence: a router joining late with
// RequestOnStart learns the topology within a couple of seconds instead
// of waiting for its neighbors' periodic timers (up to 30 s).
func TestRequestOnStartAcceleratesConvergence(t *testing.T) {
	net := netsim.NewNetwork(21)
	a := net.NewNode("a", nil)
	b := net.NewNode("b", nil)
	late := net.NewNode("late", nil)
	net.NewLAN([]*netsim.Node{a, b, late}, netsim.LANConfig{})
	base := Config{Profile: RIP(), Jitter: jitter.HalfSpread{Tp: 30}, Seed: 1}
	agA := NewAgent(a, base)
	agB := NewAgent(b, base)
	agA.Start(1)
	agB.Start(2)
	net.RunUntil(100) // a and b converged long ago

	// The late router starts at t=100; its request draws immediate
	// responses. Its first own periodic timer is ~25 s away, and its
	// neighbors' next updates up to 30+ s away — yet it converges within
	// 2 s.
	cfgLate := base
	cfgLate.RequestOnStart = true
	agLate := NewAgent(late, cfgLate)
	agLate.Start(25)
	net.RunUntil(102)
	if r := agLate.Table().Get(a.ID); r == nil || r.Metric != 1 {
		t.Fatalf("late router did not learn a: %+v", r)
	}
	if r := agLate.Table().Get(b.ID); r == nil || r.Metric != 1 {
		t.Fatalf("late router did not learn b: %+v", r)
	}
	if agLate.Stats().RequestsSent != 1 {
		t.Fatalf("requests sent = %d", agLate.Stats().RequestsSent)
	}
	if agA.Stats().RequestsAnswered != 1 || agB.Stats().RequestsAnswered != 1 {
		t.Fatalf("answers = %d/%d", agA.Stats().RequestsAnswered, agB.Stats().RequestsAnswered)
	}
}

// TestWithoutRequestConvergenceIsSlow: the same scenario without the
// request leaves the late router ignorant until a neighbor's timer fires.
func TestWithoutRequestConvergenceIsSlow(t *testing.T) {
	net := netsim.NewNetwork(22)
	a := net.NewNode("a", nil)
	late := net.NewNode("late", nil)
	net.NewLAN([]*netsim.Node{a, late}, netsim.LANConfig{})
	// Give a a long-deterministic timer so its next update is far out.
	agA := NewAgent(a, Config{Profile: RIP(), Jitter: jitter.None{Tp: 30}, Seed: 2})
	agA.Start(1)
	net.RunUntil(10) // a sent its update at t=1; next at ~31
	agLate := NewAgent(late, Config{Profile: RIP(), Jitter: jitter.None{Tp: 30}, Seed: 3})
	agLate.Start(25)
	net.RunUntil(12)
	if r := agLate.Table().Get(a.ID); r != nil {
		t.Fatalf("late router learned a without any update: %+v", r)
	}
	net.RunUntil(40) // a's t=31 update arrives
	if r := agLate.Table().Get(a.ID); r == nil {
		t.Fatal("late router still ignorant after neighbor's periodic update")
	}
}

// TestRequestDoesNotResetResponderTimer: answering a request must not
// perturb the responder's periodic schedule (no timer reset).
func TestRequestDoesNotResetResponderTimer(t *testing.T) {
	net := netsim.NewNetwork(23)
	a := net.NewNode("a", nil)
	late := net.NewNode("late", nil)
	net.NewLAN([]*netsim.Node{a, late}, netsim.LANConfig{})
	var sends []float64
	agA := NewAgent(a, Config{Profile: RIP(), Jitter: jitter.None{Tp: 30}, Seed: 4})
	agA.OnSend = func(at float64, trig bool) { sends = append(sends, at) }
	agA.Start(1)
	cfg := Config{Profile: RIP(), Jitter: jitter.None{Tp: 30}, Seed: 5, RequestOnStart: true}
	agLate := NewAgent(late, cfg)
	agLate.Start(20)
	net.RunUntil(70)
	// agA's periodic sends at 1, 31, 61 plus the response at ~10... the
	// response shows as an extra send, but the periodic cadence must
	// stay anchored at 1 + k·30.
	var periodic []float64
	for _, s := range sends {
		if s == 1 || s == 31 || s == 61 {
			periodic = append(periodic, s)
		}
	}
	if len(periodic) != 3 {
		t.Fatalf("periodic cadence disturbed: sends = %v", sends)
	}
}
