package routing

import (
	"testing"
	"testing/quick"

	"routesync/internal/jitter"
	"routesync/internal/netsim"
	"routesync/internal/rng"
)

// TestAgentSurvivesGarbage: arbitrary byte soup delivered as routing
// packets must never panic the agent, and the table must stay internally
// consistent (metrics capped, local route intact).
func TestAgentSurvivesGarbage(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		net := netsim.NewNetwork(seed)
		a := net.NewNode("a", nil)
		b := net.NewNode("b", nil)
		lan := net.NewLAN([]*netsim.Node{a, b}, netsim.LANConfig{})
		ag := NewAgent(a, Config{Profile: RIP(), Jitter: jitter.HalfSpread{Tp: 30}, Seed: seed})
		ag.Start(1)
		net.RunUntil(5)
		for i := 0; i < 50; i++ {
			buf := make([]byte, r.Intn(120))
			for j := range buf {
				buf[j] = byte(r.Intn(256))
			}
			pkt := net.NewPacket(netsim.KindRouting, b.ID, netsim.Broadcast, 28+len(buf))
			pkt.Payload = buf
			b.SendOn(lan, netsim.Broadcast, pkt)
			net.RunUntil(net.Sim.Now() + 0.1)
		}
		// Table invariants survived the fuzzing.
		for _, rt := range ag.Table().Routes() {
			if rt.Metric > ag.Table().Infinity() {
				return false
			}
		}
		local := ag.Table().Get(a.ID)
		return local != nil && local.Local && local.Metric == 0
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestAgentSurvivesHostileValidMessages: syntactically valid but
// adversarial updates (absurd metrics, self-routes, huge destination ids,
// claimed-triggered floods) never corrupt the table.
func TestAgentSurvivesHostileValidMessages(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		net := netsim.NewNetwork(seed)
		a := net.NewNode("a", nil)
		b := net.NewNode("b", nil)
		lan := net.NewLAN([]*netsim.Node{a, b}, netsim.LANConfig{})
		ag := NewAgent(a, Config{Profile: RIP(), Jitter: jitter.HalfSpread{Tp: 30}, Seed: seed})
		ag.Start(1)
		net.RunUntil(5)
		for i := 0; i < 30; i++ {
			m := Message{
				Router:    netsim.NodeID(r.Intn(1 << 20)),
				Triggered: r.Bernoulli(0.5),
			}
			for k := 0; k < r.Intn(20); k++ {
				m.Entries = append(m.Entries, Entry{
					Dest:   netsim.NodeID(r.Intn(1 << 20)),
					Metric: uint32(r.Intn(1 << 30)),
				})
			}
			// Sometimes advertise the victim's own address.
			if r.Bernoulli(0.3) {
				m.Entries = append(m.Entries, Entry{Dest: a.ID, Metric: 0})
			}
			buf, err := Encode(m)
			if err != nil {
				return true // over-long message; Encode correctly refuses
			}
			pkt := net.NewPacket(netsim.KindRouting, b.ID, netsim.Broadcast, 28+len(buf))
			pkt.Payload = buf
			b.SendOn(lan, netsim.Broadcast, pkt)
			net.RunUntil(net.Sim.Now() + 0.1)
		}
		inf := ag.Table().Infinity()
		for _, rt := range ag.Table().Routes() {
			if rt.Metric > inf {
				return false
			}
			if rt.Local && rt.Dest != a.ID {
				return false
			}
		}
		local := ag.Table().Get(a.ID)
		return local != nil && local.Local && local.Metric == 0
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestManyAgentsSoak: a denser topology (two LANs bridged by a router)
// with failures injected mid-run; the invariant is global: no panics, all
// tables capped, FIBs only point at live media.
func TestManyAgentsSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	net := netsim.NewNetwork(77)
	var lanA, lanB []*netsim.Node
	for i := 0; i < 5; i++ {
		lanA = append(lanA, net.NewNode("a", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy}))
		lanB = append(lanB, net.NewNode("b", &netsim.CPUConfig{Mode: netsim.CPUModeLegacy}))
	}
	bridge := net.NewNode("bridge", &netsim.CPUConfig{Mode: netsim.CPUModeFixed})
	net.NewLAN(append(append([]*netsim.Node{}, lanA...), bridge), netsim.LANConfig{})
	net.NewLAN(append(append([]*netsim.Node{}, lanB...), bridge), netsim.LANConfig{})

	cfg := Config{
		Profile: RIP(),
		Jitter:  jitter.HalfSpread{Tp: 30},
		Costs:   DefaultCosts(),
		Seed:    7,
	}
	var agents []*Agent
	all := append(append([]*netsim.Node{}, lanA...), lanB...)
	all = append(all, bridge)
	for i, nd := range all {
		ag := NewAgent(nd, cfg)
		ag.Start(float64(i))
		agents = append(agents, ag)
	}
	net.RunUntil(600)

	// Cross-LAN reachability through the bridge.
	if r := agents[0].Table().Get(lanB[0].ID); r == nil || r.Metric != 2 {
		t.Fatalf("cross-LAN route = %+v, want metric 2 via bridge", r)
	}
	for _, ag := range agents {
		for _, rt := range ag.Table().Routes() {
			if rt.Metric > ag.Table().Infinity() {
				t.Fatalf("metric overflow: %+v", rt)
			}
		}
	}
}
